package smt

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestQueryCacheLRU: capacity bounds the cache, eviction drops the least
// recently used key, and hits refresh recency.
func TestQueryCacheLRU(t *testing.T) {
	c := NewQueryCache(2)
	solves := 0
	get := func(key string) {
		t.Helper()
		sat, err := c.load(key, DefaultMaxNodes, func() (bool, int, error) {
			solves++
			return true, 1, nil
		})
		if err != nil || !sat {
			t.Fatalf("load(%s) = %v, %v", key, sat, err)
		}
	}
	get("a")
	get("b")
	get("a") // refresh a: b is now LRU
	get("c") // evicts b
	if solves != 3 {
		t.Fatalf("solves = %d, want 3", solves)
	}
	get("a")
	get("c")
	if solves != 3 {
		t.Fatalf("solves after warm hits = %d, want 3", solves)
	}
	get("b") // was evicted: re-solves
	if solves != 4 {
		t.Fatalf("solves after evicted key = %d, want 4", solves)
	}
}

// TestQueryCacheNeverCachesErrors: a failed solve is not stored; the next
// caller re-solves.
func TestQueryCacheNeverCachesErrors(t *testing.T) {
	c := NewQueryCache(4)
	calls := 0
	boom := errors.New("boom")
	if _, err := c.load("k", 100, func() (bool, int, error) {
		calls++
		return false, 0, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	sat, err := c.load("k", 100, func() (bool, int, error) {
		calls++
		return true, 1, nil
	})
	if err != nil || !sat || calls != 2 {
		t.Fatalf("after error: sat=%v err=%v calls=%d, want true/nil/2", sat, err, calls)
	}
	if _, err := c.load("k", 100, func() (bool, int, error) {
		calls++
		return false, 0, nil
	}); err != nil || calls != 2 {
		t.Fatalf("warm hit re-solved: calls=%d err=%v", calls, err)
	}
}

// TestQueryCacheBudgetAwareHits: a hit is only served when the cached
// decision fit inside the caller's node budget, so ErrBudget surfaces
// byte-identically warm or cold.
func TestQueryCacheBudgetAwareHits(t *testing.T) {
	c := NewQueryCache(4)
	if _, err := c.load("k", 1000, func() (bool, int, error) { return true, 50, nil }); err != nil {
		t.Fatal(err)
	}
	// A caller allowed fewer nodes than the decision needed must re-solve
	// (and here, run out of budget exactly as a cold process would).
	if _, err := c.load("k", 10, func() (bool, int, error) { return false, 0, ErrBudget }); !errors.Is(err, ErrBudget) {
		t.Fatalf("small-budget caller: err = %v, want ErrBudget", err)
	}
	// A caller whose budget covers the cached decision hits without solving.
	solved := false
	sat, err := c.load("k", 50, func() (bool, int, error) { solved = true; return false, 0, nil })
	if err != nil || !sat || solved {
		t.Fatalf("covered-budget caller: sat=%v err=%v solved=%v, want hit", sat, err, solved)
	}
}

// TestSolverCacheConcurrent hammers the process-wide solver cache from 8
// goroutines over a shared formula pool; every answer must match the
// reference solver's. Runs under -race in verify.sh.
func TestSolverCacheConcurrent(t *testing.T) {
	r := newTestRng(99)
	formulas := make([]Formula, 0, 64)
	for len(formulas) < 64 {
		f := genDiffFormula(r, 3)
		if _, isConst := f.(*Const); isConst {
			continue
		}
		formulas = append(formulas, f)
	}
	want := make([]bool, len(formulas))
	for i, f := range formulas {
		sat, _, err := ReferenceSolve(f, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = sat
	}
	errs := make(chan error, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := newTestRng(int64(1000 + g))
			for iter := 0; iter < 500; iter++ {
				i := rng.intn(len(formulas))
				sat, err := SATErr(formulas[i])
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: SATErr(%s): %v", g, formulas[i], err)
					return
				}
				if sat != want[i] {
					errs <- fmt.Errorf("goroutine %d: SATErr(%s) = %v, want %v", g, formulas[i], sat, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestQueryCacheDisabledStillCorrect: the ablation toggle routes queries
// straight to the solver with identical answers.
func TestQueryCacheDisabledStillCorrect(t *testing.T) {
	defer SetQueryCacheEnabled(SetQueryCacheEnabled(false))
	r := newTestRng(5)
	for i := 0; i < 200; i++ {
		f := genDiffFormula(r, 3)
		got, err := SATErr(f)
		if err != nil {
			t.Fatal(err)
		}
		wantSat, _, err := ReferenceSolve(f, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if got != wantSat {
			t.Fatalf("#%d %s: cache-off SATErr = %v, reference = %v", i, f, got, wantSat)
		}
	}
}
