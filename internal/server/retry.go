package server

import (
	"fmt"
	"math/rand"
	"time"
)

// Remote-transport resilience: the client classifies every failure of a
// daemon round-trip (connection refused, timed out, 503-drain, overload
// shed, or a plain HTTP error), retries the transient kinds under a
// seeded-deterministic jittered exponential backoff, and reports what
// actually went wrong — so `lisa gate -remote` can distinguish "daemon
// dead" (fail over to local execution) from "change rejected" (a real
// verdict), and scripts can branch on distinct exit codes instead of one
// opaque error string.

// RemoteErrorKind classifies why a remote request failed.
type RemoteErrorKind int

const (
	// RemoteConnect: the daemon was unreachable — connection refused or
	// reset, DNS failure, or a response cut off mid-body (the daemon died
	// while replying). Retryable; the failover trigger.
	RemoteConnect RemoteErrorKind = iota
	// RemoteTimeout: the attempt or overall deadline expired. Retryable
	// per attempt (the next attempt may land on a healthier daemon); the
	// failover trigger once the budget is spent.
	RemoteTimeout
	// RemoteDrain: the daemon answered 503 because it is draining for
	// shutdown. Retryable — a restarting daemon comes back — and the
	// failover trigger once retries are exhausted.
	RemoteDrain
	// RemoteOverload: the daemon shed the request (503 queue-full / watch
	// shed) or the client's quota class is exhausted (429). Retryable,
	// honoring the server's Retry-After as the backoff floor.
	RemoteOverload
	// RemoteHTTP: any other HTTP-level failure (400 bad request, 404
	// unknown case, 422, 500). Not retryable: the request itself is wrong
	// or the server genuinely failed it, and a retry reproduces it.
	RemoteHTTP
)

// String names the kind the way error text and logs spell it.
func (k RemoteErrorKind) String() string {
	switch k {
	case RemoteConnect:
		return "connection failed"
	case RemoteTimeout:
		return "timed out"
	case RemoteDrain:
		return "server draining"
	case RemoteOverload:
		return "server overloaded"
	case RemoteHTTP:
		return "request failed"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// RemoteError is the classified failure of a remote call after all
// configured retries.
type RemoteError struct {
	// Kind is the classification of the final attempt.
	Kind RemoteErrorKind
	// Attempts is how many round-trips were tried.
	Attempts int
	// Err is the final attempt's underlying error.
	Err error
}

func (e *RemoteError) Error() string {
	if e.Attempts > 1 {
		return fmt.Sprintf("remote: %s after %d attempts: %v", e.Kind, e.Attempts, e.Err)
	}
	return fmt.Sprintf("remote: %s: %v", e.Kind, e.Err)
}

func (e *RemoteError) Unwrap() error { return e.Err }

// Transient reports whether the failure class can heal on its own —
// exactly the kinds worth retrying, and (minus overload) the kinds worth
// failing over to local execution for.
func (e *RemoteError) Transient() bool {
	switch e.Kind {
	case RemoteConnect, RemoteTimeout, RemoteDrain, RemoteOverload:
		return true
	}
	return false
}

// Default retry posture of the lisa CLI's -remote mode; the
// -remote-retries / -remote-timeout flags override it.
const (
	// DefaultRemoteRetries is how many times a transient failure is
	// retried after the first attempt.
	DefaultRemoteRetries = 3
	// DefaultRetryBaseDelay seeds the exponential backoff.
	DefaultRetryBaseDelay = 50 * time.Millisecond
	// DefaultRetryMaxDelay caps any single backoff sleep.
	DefaultRetryMaxDelay = 2 * time.Second
)

// RetryPolicy configures the client's resilience. The zero value means
// "one attempt, no deadlines" — the historical behavior of NewClient.
type RetryPolicy struct {
	// Retries is how many additional attempts follow a transient failure
	// (total attempts = Retries + 1).
	Retries int
	// BaseDelay is the pre-jitter backoff before the first retry; each
	// further retry doubles it (0 = DefaultRetryBaseDelay when Retries>0).
	BaseDelay time.Duration
	// MaxDelay caps the pre-jitter backoff (0 = DefaultRetryMaxDelay).
	MaxDelay time.Duration
	// Seed makes the jitter deterministic: the same seed yields the same
	// delay sequence. The CLI leaves it zero, so a replayed invocation
	// sleeps the exact same schedule.
	Seed int64
	// AttemptTimeout bounds one round-trip (0 = none). The CLI derives it
	// from the -run-timeout budget plus transport slack: one attempt is
	// one server-side run, bounded by the same budget.
	AttemptTimeout time.Duration
	// OverallTimeout bounds all attempts plus backoff sleeps (0 = none).
	// The CLI sets it from -remote-timeout.
	OverallTimeout time.Duration
}

// DefaultRetryPolicy is the CLI's -remote posture: 3 retries, 50ms base,
// 2s cap, no deadlines beyond the request budget.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		Retries:   DefaultRemoteRetries,
		BaseDelay: DefaultRetryBaseDelay,
		MaxDelay:  DefaultRetryMaxDelay,
	}
}

// backoff computes the sleep before retry number attempt (1-based): an
// exponential from BaseDelay, capped at MaxDelay, jittered to 50–100% by
// rng, and floored at the server's Retry-After hint when one was given.
func (p RetryPolicy) backoff(attempt int, retryAfter time.Duration, rng *rand.Rand) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = DefaultRetryBaseDelay
	}
	max := p.MaxDelay
	if max <= 0 {
		max = DefaultRetryMaxDelay
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	d = d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}
