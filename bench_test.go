// Package lisa's root benchmark harness: one testing.B per reproduced
// figure/table (driving the same code as cmd/lisabench) plus
// micro-benchmarks for every substrate. Run with:
//
//	go test -bench=. -benchmem
package lisa

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"lisa/internal/callgraph"
	"lisa/internal/concolic"
	"lisa/internal/contract"
	"lisa/internal/core"
	"lisa/internal/corpus"
	"lisa/internal/diffutil"
	"lisa/internal/embedding"
	"lisa/internal/experiments"
	"lisa/internal/infer"
	"lisa/internal/interp"
	"lisa/internal/minij"
	"lisa/internal/program"
	"lisa/internal/sched"
	"lisa/internal/smt"
	"lisa/internal/store"
	"lisa/internal/ticket"
)

// benchExperiment runs one named experiment per iteration.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	c := corpus.Load()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := experiments.Run(name, c)
		if err != nil || len(out) == 0 {
			b.Fatalf("experiment %s: err=%v len=%d", name, err, len(out))
		}
	}
}

// BenchmarkStudyCorpus regenerates the §2.1 study table (E-S1).
func BenchmarkStudyCorpus(b *testing.B) { benchExperiment(b, "study") }

// BenchmarkTimelineReplay regenerates Figure 1 (E-F1): history replay with
// enforcement.
func BenchmarkTimelineReplay(b *testing.B) { benchExperiment(b, "timeline") }

// BenchmarkEphemeralRegression regenerates Figures 2-3 (E-F2/F3): the
// ZooKeeper ephemeral-node walkthrough.
func BenchmarkEphemeralRegression(b *testing.B) { benchExperiment(b, "ephemeral") }

// BenchmarkComparisonSweep regenerates Figure 4 (E-F4): testing vs LISA vs
// exhaustive checking across the corpus.
func BenchmarkComparisonSweep(b *testing.B) { benchExperiment(b, "comparison") }

// BenchmarkWorkflowEndToEnd regenerates Figure 5 (E-F5): one full pipeline
// run with stage timings.
func BenchmarkWorkflowEndToEnd(b *testing.B) { benchExperiment(b, "workflow") }

// BenchmarkGeneralization regenerates Figure 6 (E-F6): literal vs
// generalized rules.
func BenchmarkGeneralization(b *testing.B) { benchExperiment(b, "generalize") }

// BenchmarkHBaseSnapshotBug regenerates §4 Bug #1 (E-B1).
func BenchmarkHBaseSnapshotBug(b *testing.B) { benchExperiment(b, "hbase") }

// BenchmarkHDFSObserverBug regenerates §4 Bug #2 (E-B2).
func BenchmarkHDFSObserverBug(b *testing.B) { benchExperiment(b, "hdfs") }

// BenchmarkReliabilityCrossCheck runs a reduced E-Q1 sweep per iteration
// (one noise level, one seed) — the full sweep is the lisabench run.
func BenchmarkReliabilityCrossCheck(b *testing.B) {
	c := corpus.Load()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := experiments.ReliabilitySweep(c, []float64{0.3}, 1)
		if len(pts) != 1 {
			b.Fatal("sweep failed")
		}
	}
}

// BenchmarkComposition regenerates the E-Q3 composition study.
func BenchmarkComposition(b *testing.B) { benchExperiment(b, "compose") }

// BenchmarkAblations runs the design-choice ablations (E-A1).
func BenchmarkAblations(b *testing.B) { benchExperiment(b, "ablations") }

// --- Substrate micro-benchmarks -------------------------------------------

func flagshipTicket() *ticket.Ticket {
	return corpus.Load().Get("zk-ephemeral").Tickets[0]
}

// BenchmarkMiniJParse measures parsing + resolving a corpus system.
func BenchmarkMiniJParse(b *testing.B) {
	src := flagshipTicket().FixedSource
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, err := minij.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		if err := minij.Check(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpreter measures a full test execution under the
// interpreter.
func BenchmarkInterpreter(b *testing.B) {
	cs := corpus.Load().Get("zk-ephemeral")
	tc := cs.Tests[0]
	prog, err := minij.Parse(cs.Head() + "\n" + tc.Source)
	if err != nil {
		b.Fatal(err)
	}
	if err := minij.Check(prog); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := interp.New(prog)
		if _, err := in.CallStatic(tc.Class, tc.Method); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSMTSolver measures the complement check on the paper's worked
// example.
func BenchmarkSMTSolver(b *testing.B) {
	checker := smt.MustParsePredicate(`s != null && s.isClosing() == false && s.ttl > 0`)
	pc := smt.MustParsePredicate(`s != null && s.isClosing() == false`)
	comp := smt.Complement(checker)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !smt.SAT(smt.NewAnd(pc, comp)) {
			b.Fatal("expected SAT (violation)")
		}
	}
}

// solverHotPathQueries builds the gate-shaped query mix: a handful of
// complement checks and prefix conditions over shared integer bounds and
// string modes, discharged over and over the way a CI gate re-asserts the
// same rules across every test's path conditions.
func solverHotPathQueries() []smt.Formula {
	checker := smt.MustParsePredicate(`s != null && s.isClosing() == false && s.ttl > 0 && s.retries < 8`)
	comp := smt.Complement(checker)
	queries := make([]smt.Formula, 0, 12)
	for i := 0; i < 6; i++ {
		pc := smt.MustParsePredicate(fmt.Sprintf(
			`s != null && s.isClosing() == false && q.len >= %d && q.len <= %d && x > %d && x < y && y <= z && z <= 40 && mode == "sync"`,
			i, i+20, i))
		queries = append(queries, pc, smt.NewAnd(pc, comp))
	}
	return queries
}

// BenchmarkSolverHotPath compares the pre-PR solver (per-node closure
// recomputation, no result cache) against the optimized hot path
// (incremental theory propagation + process-wide query cache) on the
// repeated-query workload the assertion gate actually produces.
func BenchmarkSolverHotPath(b *testing.B) {
	queries := solverHotPathQueries()
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, f := range queries {
				if _, _, err := smt.ReferenceSolve(f, smt.Limits{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("incremental-nocache", func(b *testing.B) {
		defer smt.SetQueryCacheEnabled(smt.SetQueryCacheEnabled(false))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, f := range queries {
				if _, err := smt.SATErr(f); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("optimized", func(b *testing.B) {
		smt.ResetQueryCache()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, f := range queries {
				if _, err := smt.SATErr(f); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkStaticPaths measures per-site path enumeration + verdicts.
func BenchmarkStaticPaths(b *testing.B) {
	tk := flagshipTicket()
	prog, err := minij.Parse(tk.FixedSource)
	if err != nil {
		b.Fatal(err)
	}
	if err := minij.Check(prog); err != nil {
		b.Fatal(err)
	}
	res, err := (&infer.PatchAnalyzer{}).Infer(tk)
	if err != nil || len(res.Semantics) == 0 {
		b.Fatalf("infer: %v", err)
	}
	sites := contract.Match(res.Semantics[0], prog)
	if len(sites) == 0 {
		b.Fatal("no sites")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, site := range sites {
			paths, _ := concolic.StaticPaths(prog, site, concolic.Options{})
			for _, p := range paths {
				_ = concolic.CheckStaticPath(p)
			}
		}
	}
}

// BenchmarkConcolicRun measures one dynamic concolic test replay.
func BenchmarkConcolicRun(b *testing.B) {
	cs := corpus.Load().Get("zk-ephemeral")
	tk := cs.Tickets[1]
	full := tk.FixedSource
	tc := cs.Tests[0]
	full += "\n" + tc.Source
	prog, err := minij.Parse(full)
	if err != nil {
		b.Fatal(err)
	}
	if err := minij.Check(prog); err != nil {
		b.Fatal(err)
	}
	res, err := (&infer.PatchAnalyzer{}).Infer(tk)
	if err != nil || len(res.Semantics) == 0 {
		b.Fatalf("infer: %v", err)
	}
	sites := contract.Match(res.Semantics[0], prog)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := concolic.NewRunner(prog, sites, interp.Options{})
		if err := r.RunStatic(tc.Name, tc.Class, tc.Method); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInference measures full guard extraction from a ticket bundle.
func BenchmarkInference(b *testing.B) {
	tk := flagshipTicket()
	pa := &infer.PatchAnalyzer{Generalize: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pa.Infer(tk)
		if err != nil || len(res.Semantics) == 0 {
			b.Fatalf("infer: %v", err)
		}
	}
}

// BenchmarkCallGraph measures call-graph + execution-tree construction.
func BenchmarkCallGraph(b *testing.B) {
	tk := flagshipTicket()
	prog, err := minij.Parse(tk.FixedSource)
	if err != nil {
		b.Fatal(err)
	}
	if err := minij.Check(prog); err != nil {
		b.Fatal(err)
	}
	target := prog.Method("DataTree", "createEphemeral")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := callgraph.Build(prog)
		tree := g.ExecutionTree(target, callgraph.TreeOptions{})
		if len(tree.Paths) == 0 {
			b.Fatal("no paths")
		}
	}
}

// BenchmarkDiff measures the Myers diff on a corpus patch.
func BenchmarkDiff(b *testing.B) {
	tk := flagshipTicket()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		edits := diffutil.Diff(tk.BuggySource, tk.FixedSource)
		if !diffutil.Changed(edits) {
			b.Fatal("no changes")
		}
	}
}

// BenchmarkEmbeddingQuery measures test-corpus retrieval.
func BenchmarkEmbeddingQuery(b *testing.B) {
	var docs []embedding.Doc
	for _, cs := range corpus.Load().Cases {
		for _, tc := range cs.Tests {
			docs = append(docs, embedding.Doc{ID: tc.Name, Text: tc.Name + " " + tc.Description})
		}
	}
	ix := embedding.NewIndex(docs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := ix.Query("ephemeral node created on closing session", 3); len(got) == 0 {
			b.Fatal("no matches")
		}
	}
}

// BenchmarkFullAssert measures one engine assertion over a regressed
// version with the full test suite.
func BenchmarkFullAssert(b *testing.B) {
	cs := corpus.Load().Get("zk-ephemeral")
	e := core.New()
	if _, err := e.ProcessTicket(cs.Tickets[0]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := e.Assert(cs.Tickets[1].BuggySource, cs.Tests)
		if err != nil || rep.Counts.Violations == 0 {
			b.Fatalf("assert: err=%v violations=%d", err, rep.Counts.Violations)
		}
	}
}

// BenchmarkMutationSweep runs the guard-weakening mutation experiment
// (E-M1): every mutant of every head, tests vs semantic assertion.
func BenchmarkMutationSweep(b *testing.B) { benchExperiment(b, "mutation") }

// BenchmarkSnapshotReuse measures the front-end cost of the E-F1 timeline
// replay — every version of every corpus case visited once per iteration,
// each visit needing the parse → resolve → call-graph pipeline. "cold"
// recompiles per visit (the pre-snapshot behavior of every call site);
// "warm" serves visits from the snapshot cache, where the pipeline runs
// exactly once per distinct version — verified by the cache's compile and
// graph-build counters.
func BenchmarkSnapshotReuse(b *testing.B) {
	var visits []string
	distinct := map[string]bool{}
	for _, cs := range corpus.Load().Cases {
		for _, tk := range cs.Tickets {
			visits = append(visits, tk.BuggySource, tk.FixedSource)
			distinct[tk.BuggySource] = true
			distinct[tk.FixedSource] = true
		}
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, src := range visits {
				prog, err := program.Compile(src)
				if err != nil {
					b.Fatal(err)
				}
				if g := callgraph.Build(prog); g == nil {
					b.Fatal("nil graph")
				}
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		cache := program.NewCache(program.DefaultCapacity)
		replay := func() {
			for _, src := range visits {
				snap, err := cache.Load(src)
				if err != nil {
					b.Fatal(err)
				}
				if g := snap.Graph(); g == nil {
					b.Fatal("nil graph")
				}
			}
		}
		replay() // prime
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			replay()
		}
		b.StopTimer()
		st := cache.Stats()
		if st.Compiles != uint64(len(distinct)) || st.GraphBuilds != uint64(len(distinct)) {
			b.Fatalf("front end ran more than once per distinct version: %d compiles, %d graph builds, %d distinct",
				st.Compiles, st.GraphBuilds, len(distinct))
		}
	})
	// seedStoreDir populates a fresh store directory with every distinct
	// version's snap.v2 record (binary AST + canon digest + derived
	// artifacts), the way a previous process would have left it.
	seedStoreDir := func(b *testing.B) string {
		b.Helper()
		dir := b.TempDir()
		disk, err := store.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		seed := program.NewCache(program.DefaultCapacity)
		seed.SetStore(disk)
		for _, src := range visits {
			snap, err := seed.Load(src)
			if err != nil {
				b.Fatal(err)
			}
			snap.Graph()
		}
		if err := disk.Flush(); err != nil {
			b.Fatal(err)
		}
		disk.Close()
		return dir
	}
	// "warmstore" is a cold process over a store a previous process
	// populated: an empty memory LRU warms itself entirely by restoring
	// persisted records — the compile counter must stay at zero — and then
	// replays at memory-tier speed. The delta to "warm" is the one-time
	// restore tax (decode + digest per distinct version, amortized over the
	// iterations) plus graph re-anchoring from persisted summaries.
	b.Run("warmstore", func(b *testing.B) {
		disk, err := store.Open(seedStoreDir(b))
		if err != nil {
			b.Fatal(err)
		}
		defer disk.Close()
		cache := program.NewCache(program.DefaultCapacity)
		cache.SetStore(disk)
		replay := func() {
			for _, src := range visits {
				snap, err := cache.Load(src)
				if err != nil {
					b.Fatal(err)
				}
				if g := snap.Graph(); g == nil {
					b.Fatal("nil graph")
				}
			}
		}
		replay() // the cold process warms itself from the store
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			replay()
		}
		b.StopTimer()
		st := cache.Stats()
		if st.Compiles != 0 || st.GraphBuilds != 0 {
			b.Fatalf("cold process on warm store recompiled: %d compiles, %d graph builds (want 0, all restored)",
				st.Compiles, st.GraphBuilds)
		}
		if st.Restores != uint64(len(distinct)) {
			b.Fatalf("restored %d of %d distinct versions", st.Restores, len(distinct))
		}
	})
	// The restore tax itself, isolated: every iteration is a brand-new cold
	// cache restoring all distinct versions from the store. "warmstore-decoded"
	// is the snap.v2 path (binary AST decode + canon digest; deep verify
	// sampled out), "warmstore-reparse" forces a deep verify on every
	// restore — re-parse + check + re-render, the pre-codec restore cost.
	// The E-D2 row in EXPERIMENTS.md tracks the ratio (target: >= 3x).
	restoreTax := func(deepVerifyEvery int, wantDecoded, wantDeepVerified bool) func(*testing.B) {
		return func(b *testing.B) {
			disk, err := store.Open(seedStoreDir(b))
			if err != nil {
				b.Fatal(err)
			}
			defer disk.Close()
			var cache *program.Cache
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cache = program.NewCache(program.DefaultCapacity)
				cache.SetStore(disk)
				cache.SetDeepVerifyEvery(deepVerifyEvery)
				for _, src := range visits {
					if _, err := cache.Load(src); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			st := cache.Stats()
			if st.Compiles != 0 || st.Restores != uint64(len(distinct)) {
				b.Fatalf("restore tax run compiled: %d compiles, %d restores (want 0, %d)",
					st.Compiles, st.Restores, len(distinct))
			}
			if wantDecoded && st.RestoresDecoded != uint64(len(distinct)) {
				b.Fatalf("decoded %d of %d restores", st.RestoresDecoded, len(distinct))
			}
			if wantDeepVerified && st.RestoresDeepVerified != uint64(len(distinct)) {
				b.Fatalf("deep-verified %d of %d restores", st.RestoresDeepVerified, len(distinct))
			}
		}
	}
	b.Run("warmstore-decoded", restoreTax(1<<30, true, false))
	b.Run("warmstore-reparse", restoreTax(1, false, true))
}

// schedWorkload builds a registry of n contracts over n independent
// feature replicas — n*2 guarded call sites, each with branching caller
// chains — so the scheduler has a wide wave of comparable-cost site jobs.
func schedWorkload(b *testing.B, n int) (*core.Engine, string) {
	b.Helper()
	var src, spec strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&src, `
class Session%d {
	bool closing;
}

class DataTree%d {
	map nodes;

	void createEphemeral(string path, Session%d owner) {
		nodes.put(path, owner);
	}
}

class Prep%d {
	DataTree%d tree;

	void processCreate(string path, Session%d s, int mode) {
		if (s == null || s.closing) {
			throw "KeeperException";
		}
		if (mode > 2) {
			tree.createEphemeral(path, s);
		} else {
			tree.createEphemeral(path, s);
		}
	}

	void route(string path, Session%d s, int mode) {
		if (mode == 1) {
			processCreate(path, s, mode);
		} else {
			if (mode == 2) {
				processCreate(path, s, mode);
			} else {
				processCreate(path, s, mode);
			}
		}
	}

	void frontend(string path, Session%d s, int mode, int retries) {
		if (retries > 0) {
			route(path, s, mode);
		} else {
			route(path, s, mode);
		}
	}
}
`, i, i, i, i, i, i, i, i)
		fmt.Fprintf(&spec, `
rule eph-%d
description: ephemeral create requires a live session (replica %d)
target: DataTree%d.createEphemeral
bind: s = arg 1
require: s != null && s.closing == false
`, i, i, i)
	}
	sems, err := contract.ParseSpec(spec.String())
	if err != nil {
		b.Fatal(err)
	}
	e := core.New()
	for _, sem := range sems {
		if err := e.Registry.Add(sem); err != nil {
			b.Fatal(err)
		}
	}
	return e, src.String()
}

// BenchmarkScheduledAssert compares the sequential engine loop against the
// scheduler: cold parallel runs (one independent site job per contract
// site, pool width GOMAXPROCS) and warm fingerprint-cache runs (every job
// served from cache). On a multi-core machine the parallel run scales with
// the pool; warm runs skip the static stages entirely on any core count.
func BenchmarkScheduledAssert(b *testing.B) {
	e, src := schedWorkload(b, 24)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := e.Assert(src, nil)
			if err != nil || rep.Counts.Verified == 0 || rep.Counts.Violations != 0 {
				b.Fatalf("assert: err=%v counts=%+v", err, rep.Counts)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		workers := runtime.GOMAXPROCS(0)
		for i := 0; i < b.N; i++ {
			rep, _, err := sched.New().Assert(e, src, nil, sched.Options{Workers: workers})
			if err != nil || rep.Counts.Verified == 0 || rep.Counts.Violations != 0 {
				b.Fatalf("assert: err=%v", err)
			}
		}
	})
	b.Run("warm-cache", func(b *testing.B) {
		s := sched.New()
		if _, _, err := s.Assert(e, src, nil, sched.Options{Workers: runtime.GOMAXPROCS(0)}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, stats, err := s.Assert(e, src, nil, sched.Options{Workers: runtime.GOMAXPROCS(0)})
			if err != nil || rep.Counts.Verified == 0 || stats.Executed != 0 {
				b.Fatalf("warm run: err=%v executed=%d", err, stats.Executed)
			}
		}
	})
}
