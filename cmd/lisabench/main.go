// Command lisabench regenerates every table and figure of the paper from
// the simulated corpus. Run one experiment with -exp <name>, or all of
// them with -exp all (the default).
//
// Usage:
//
//	lisabench [-exp study|timeline|ephemeral|comparison|workflow|
//	                generalize|hbase|hdfs|reliability|compose|ablations|all]
package main

import (
	"flag"
	"fmt"
	"os"

	"lisa/internal/corpus"
	"lisa/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (use 'all' for every experiment); one of "+experiments.Names())
	flag.Parse()

	c := corpus.Load()
	out, err := experiments.Run(*exp, c)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lisabench:", err)
		os.Exit(2)
	}
	fmt.Print(out)
}
