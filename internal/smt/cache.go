package smt

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"lisa/internal/faultinject"
)

// SolverStats is a snapshot of the process-wide solver counters.
type SolverStats struct {
	// Queries counts public satisfiability queries (SAT*/Solve*; Implies
	// and Equiv count each underlying SAT call).
	Queries uint64 `json:"queries"`
	// CacheHits / CacheMisses / CacheEvictions describe the boolean result
	// cache. Queries that bypass the cache (model queries, cache disabled,
	// fault injection armed) count in neither bucket.
	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheEvictions uint64 `json:"cache_evictions"`
	// Solves counts DPLL searches actually run; Nodes the search-tree nodes
	// across all of them.
	Solves uint64 `json:"solves"`
	Nodes  uint64 `json:"nodes"`
	// SolveTime is wall clock inside the solver; TheoryTime the portion
	// spent in incremental theory asserts.
	SolveTime  time.Duration `json:"solve_time_ns"`
	TheoryTime time.Duration `json:"theory_time_ns"`
}

var stats struct {
	queries, hits, misses, evictions, solves, nodes atomic.Uint64
	solveNS, theoryNS                               atomic.Int64
}

// Stats returns a snapshot of the process-wide solver counters.
func Stats() SolverStats {
	return SolverStats{
		Queries:        stats.queries.Load(),
		CacheHits:      stats.hits.Load(),
		CacheMisses:    stats.misses.Load(),
		CacheEvictions: stats.evictions.Load(),
		Solves:         stats.solves.Load(),
		Nodes:          stats.nodes.Load(),
		SolveTime:      time.Duration(stats.solveNS.Load()),
		TheoryTime:     time.Duration(stats.theoryNS.Load()),
	}
}

// Sub returns the field-wise counter delta s − base. Long-lived holders
// (the lisa serve daemon, per-run scheduler stats) snapshot the
// process-wide counters at a baseline and attribute later growth to their
// own traffic. The attribution is exact while the holder is the only
// solver user in the process (several servers created in sequence each
// start from a correct baseline) and approximate when other runs share the
// process concurrently — the counters themselves are process-global.
func (s SolverStats) Sub(base SolverStats) SolverStats {
	return SolverStats{
		Queries:        s.Queries - base.Queries,
		CacheHits:      s.CacheHits - base.CacheHits,
		CacheMisses:    s.CacheMisses - base.CacheMisses,
		CacheEvictions: s.CacheEvictions - base.CacheEvictions,
		Solves:         s.Solves - base.Solves,
		Nodes:          s.Nodes - base.Nodes,
		SolveTime:      s.SolveTime - base.SolveTime,
		TheoryTime:     s.TheoryTime - base.TheoryTime,
	}
}

// DefaultQueryCacheCap bounds the process-wide solver result cache. Corpus
// runs issue a few thousand distinct queries; the cap is a memory backstop,
// not a tuning knob.
const DefaultQueryCacheCap = 4096

// queryCache is a bounded LRU of decided boolean queries keyed by the
// formula's canonical render (TestRenderParseRoundTrip pins down that equal
// renders imply equivalent formulas, so the render is a sound key). It has
// singleflight semantics: concurrent misses on one key run a single solve,
// and followers wait on the leader instead of duplicating work. Modeled on
// internal/program.Cache.
type queryCache struct {
	mu       sync.Mutex
	cap      int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used; values are *cacheEntry
	inflight map[string]*inflightQuery
}

// cacheEntry remembers the verdict and how many search nodes deciding it
// consumed. Hits are only served to callers whose node budget covers that
// count, so budget-limited callers behave byte-identically warm or cold.
type cacheEntry struct {
	key   string
	sat   bool
	nodes int
}

type inflightQuery struct {
	done  chan struct{}
	sat   bool
	nodes int
	err   error
}

func newQueryCache(capacity int) *queryCache {
	return &queryCache{
		cap:      capacity,
		entries:  map[string]*list.Element{},
		order:    list.New(),
		inflight: map[string]*inflightQuery{},
	}
}

var (
	cacheEnabled atomic.Bool
	queryResults = newQueryCache(DefaultQueryCacheCap)
)

func init() { cacheEnabled.Store(true) }

// SetQueryCacheEnabled toggles the process-wide solver result cache
// (ablation runs and tests) and returns the previous setting.
func SetQueryCacheEnabled(on bool) bool { return cacheEnabled.Swap(on) }

// ResetQueryCache drops every cached query result. Counters are kept;
// in-flight solves complete and store into the emptied cache.
func ResetQueryCache() {
	queryResults.mu.Lock()
	defer queryResults.mu.Unlock()
	queryResults.entries = map[string]*list.Element{}
	queryResults.order.Init()
}

// satCached answers a boolean satisfiability query through the result
// cache. Errors (budget, cancellation) are never cached. While fault
// injection is armed the cache is bypassed entirely — no reads and no
// writes — so injected faults fire with the cadence a cold process would
// see and results computed under injection never poison later runs.
func satCached(f Formula, lim Limits) (bool, error) {
	stats.queries.Add(1)
	if c, ok := f.(*Const); ok {
		return c.Value, nil
	}
	if !cacheEnabled.Load() || faultinject.Armed() {
		sat, _, _, err := solveCore(f, lim)
		return sat, err
	}
	max := lim.MaxNodes
	if max <= 0 {
		max = DefaultMaxNodes
	}
	return queryResults.load(f.String(), max, func() (bool, int, error) {
		sat, _, nodes, err := solveCore(f, lim)
		return sat, nodes, err
	})
}

// load returns the cached verdict for key, joining or becoming the leader
// of an in-flight solve on miss. A cached or in-flight result is only
// reused when its node count fits maxNodes; otherwise this caller re-solves
// under its own limits so ErrBudget surfaces exactly as it would uncached.
func (c *queryCache) load(key string, maxNodes int, solve func() (bool, int, error)) (bool, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		if e.nodes <= maxNodes {
			c.order.MoveToFront(el)
			c.mu.Unlock()
			stats.hits.Add(1)
			return e.sat, nil
		}
	}
	if fl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-fl.done
		if fl.err == nil && fl.nodes <= maxNodes {
			stats.hits.Add(1)
			return fl.sat, nil
		}
		// The leader was degraded (budget, cancellation) or needed more
		// nodes than we may spend; solve under our own limits.
		stats.misses.Add(1)
		sat, nodes, err := solve()
		if err == nil {
			c.store(key, sat, nodes)
		}
		return sat, err
	}
	fl := &inflightQuery{done: make(chan struct{})}
	c.inflight[key] = fl
	c.mu.Unlock()
	stats.misses.Add(1)
	fl.sat, fl.nodes, fl.err = solve()
	close(fl.done)
	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	if fl.err == nil {
		c.store(key, fl.sat, fl.nodes)
	}
	return fl.sat, fl.err
}

// store inserts a decided query, evicting from the LRU tail past capacity.
func (c *queryCache) store(key string, sat bool, nodes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, sat: sat, nodes: nodes})
	for c.order.Len() > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
		stats.evictions.Add(1)
	}
}
