// Package contract defines LISA's low-level semantics: the machine-checkable
// form that inferred rules take. Per §3.1 of the paper, a low-level semantic
// has two components: a concise natural-language description and a safety
// contract <P> s <Q>, where s is a target statement identified from a past
// bug fix and P, Q are conjunctions of implementation-local predicates over
// the program state.
//
// Two contract kinds exist:
//
//   - State contracts bind predicate slots at a target statement (e.g.
//     "<session.isClosing == false> createEphemeralNode <>") and are checked
//     against path conditions with the complement construction.
//   - Structural contracts capture generalized system-level behaviors (e.g.
//     "no blocking I/O within synchronized blocks", the Figure 6
//     generalization) and are checked against program structure and runtime
//     events.
package contract

import (
	"fmt"
	"sort"
	"strings"

	"lisa/internal/minij"
	"lisa/internal/smt"
)

// Kind discriminates contract representations.
type Kind int

// Contract kinds.
const (
	StateKind Kind = iota
	StructuralKind
)

// String names the kind.
func (k Kind) String() string {
	if k == StructuralKind {
		return "structural"
	}
	return "state"
}

// Semantic is one low-level semantic.
type Semantic struct {
	// ID is a stable identifier, e.g. "zk-ephemeral-closing".
	ID string
	// Description is the concise natural-language low-level semantic.
	Description string
	// HighLevel is the system-level property this semantic protects.
	HighLevel string
	// Origin lists the failure tickets the semantic was inferred from.
	Origin []string

	Kind Kind

	// Target locates the statement s of the safety contract (state
	// contracts only).
	Target TargetPattern
	// Pre is the condition statement P over slot-rooted paths: the
	// predicate that must hold whenever the target statement executes.
	Pre smt.Formula
	// Post is the optional postcondition Q.
	Post smt.Formula

	// Structural is set for StructuralKind semantics.
	Structural StructuralRule
}

// Validate checks internal consistency: state contracts must have a target
// and a precondition whose roots are all bound by the target pattern.
func (s *Semantic) Validate() error {
	if s.ID == "" {
		return fmt.Errorf("contract: semantic without ID")
	}
	switch s.Kind {
	case StructuralKind:
		if s.Structural == nil {
			return fmt.Errorf("contract %s: structural kind without rule", s.ID)
		}
		return nil
	case StateKind:
		if s.Target.Callee == "" {
			return fmt.Errorf("contract %s: state kind without target callee", s.ID)
		}
		if s.Pre == nil {
			return fmt.Errorf("contract %s: state kind without precondition", s.ID)
		}
		bound := map[string]bool{}
		for slot := range s.Target.Bind {
			bound[slot] = true
		}
		for root := range smt.Roots(s.Pre) {
			if !bound[root] {
				return fmt.Errorf("contract %s: precondition root %q is not bound by the target pattern", s.ID, root)
			}
		}
		return nil
	}
	return fmt.Errorf("contract %s: unknown kind %d", s.ID, s.Kind)
}

// String renders the safety contract in the paper's <P> s <Q> notation.
func (s *Semantic) String() string {
	if s.Kind == StructuralKind {
		return fmt.Sprintf("[%s] structural: %s", s.ID, s.Structural.Name())
	}
	post := ""
	if s.Post != nil {
		post = s.Post.String()
	}
	return fmt.Sprintf("[%s] <%s> %s <%s>", s.ID, s.Pre, s.Target.Callee, post)
}

// TargetPattern locates target statements: calls to a given callee method,
// optionally restricted to an enclosing method, with slot bindings mapping
// predicate roots to call operands.
type TargetPattern struct {
	// Callee is the qualified method the target statement calls, e.g.
	// "DataTree.createEphemeral".
	Callee string
	// Within optionally restricts matches to statements inside the given
	// "Class.method"; empty matches anywhere.
	Within string
	// Bind maps slot names used in Pre/Post to operands of the matched
	// call: argument index >= 0, or ReceiverSlot for the call's receiver.
	Bind map[string]int
}

// ReceiverSlot binds a slot to the call receiver expression.
const ReceiverSlot = -1

// Site is a matched target statement occurrence.
type Site struct {
	Semantic *Semantic
	Stmt     minij.Stmt
	Call     *minij.Call
	Method   *minij.Method // enclosing method
	// Bindings maps slot name -> operand expression.
	Bindings map[string]minij.Expr
	// BindErr records why slot binding failed (complex operand), if it did.
	BindErr error
}

// String renders the site location.
func (st *Site) String() string {
	return fmt.Sprintf("%s @%s (%s)", st.Method.FullName(), st.Stmt.Pos(), minij.CanonStmt(st.Stmt))
}

// BindingPath returns the dotted path of the operand bound to slot, if the
// operand is a simple access chain (identifier or field chain); otherwise
// ok is false and the site requires developer review.
func (st *Site) BindingPath(slot string) (string, bool) {
	e, ok := st.Bindings[slot]
	if !ok {
		return "", false
	}
	return ExprPath(e)
}

// ExprPath converts an access-chain expression to a dotted path: an
// identifier, a chain of field accesses, or a nullary method call in getter
// position. Non-chain expressions are not path-convertible.
func ExprPath(e minij.Expr) (string, bool) {
	switch n := e.(type) {
	case *minij.Ident:
		return n.Name, true
	case *minij.FieldAccess:
		base, ok := ExprPath(n.Recv)
		if !ok {
			return "", false
		}
		return base + "." + n.Name, true
	case *minij.Call:
		if n.Recv == nil || len(n.Args) != 0 {
			return "", false
		}
		base, ok := ExprPath(n.Recv)
		if !ok {
			return "", false
		}
		return base + "." + n.Name, true
	}
	return "", false
}

// Match finds every target-statement occurrence of sem in prog. The program
// must be resolved. Matching keys on the callee's qualified name (receiver
// static type for instance calls, class name for static calls), so renamed
// locals and new call paths still match — this is what lets a rule inferred
// from one fix catch the same mistake on a different path.
func Match(sem *Semantic, prog *minij.Program) []*Site {
	if sem.Kind != StateKind {
		return nil
	}
	var sites []*Site
	for _, m := range prog.Methods() {
		if sem.Target.Within != "" && m.FullName() != sem.Target.Within {
			continue
		}
		minij.WalkStmts(m.Body, func(s minij.Stmt) {
			for _, call := range immediateCalls(s) {
				if CalleeName(prog, m, call) != sem.Target.Callee {
					continue
				}
				site := &Site{
					Semantic: sem,
					Stmt:     s,
					Call:     call,
					Method:   m,
					Bindings: map[string]minij.Expr{},
				}
				for slot, idx := range sem.Target.Bind {
					var operand minij.Expr
					switch {
					case idx == ReceiverSlot:
						operand = call.Recv
					case idx >= 0 && idx < len(call.Args):
						operand = call.Args[idx]
					}
					if operand == nil {
						site.BindErr = fmt.Errorf("contract %s: slot %q binds operand %d of %s, which does not exist",
							sem.ID, slot, idx, minij.CanonExpr(call))
						continue
					}
					site.Bindings[slot] = operand
				}
				sites = append(sites, site)
			}
		})
	}
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].Method.FullName() != sites[j].Method.FullName() {
			return sites[i].Method.FullName() < sites[j].Method.FullName()
		}
		return sites[i].Stmt.Pos().Before(sites[j].Stmt.Pos())
	})
	return sites
}

// immediateCalls returns the call expressions belonging to statement s
// itself (not to nested statements), so a target statement is the statement
// that directly performs the call.
func immediateCalls(s minij.Stmt) []*minij.Call {
	var out []*minij.Call
	for _, e := range stmtOwnExprs(s) {
		collectCalls(e, &out)
	}
	return out
}

func stmtOwnExprs(s minij.Stmt) []minij.Expr {
	switch n := s.(type) {
	case *minij.VarDecl:
		if n.Init != nil {
			return []minij.Expr{n.Init}
		}
	case *minij.Assign:
		return []minij.Expr{n.Target, n.Value}
	case *minij.If:
		return []minij.Expr{n.Cond}
	case *minij.While:
		return []minij.Expr{n.Cond}
	case *minij.ForEach:
		return []minij.Expr{n.Iter}
	case *minij.Return:
		if n.Value != nil {
			return []minij.Expr{n.Value}
		}
	case *minij.Throw:
		return []minij.Expr{n.Value}
	case *minij.Sync:
		return []minij.Expr{n.Lock}
	case *minij.ExprStmt:
		return []minij.Expr{n.E}
	}
	return nil
}

func collectCalls(e minij.Expr, out *[]*minij.Call) {
	switch n := e.(type) {
	case *minij.Call:
		*out = append(*out, n)
		if n.Recv != nil {
			collectCalls(n.Recv, out)
		}
		for _, a := range n.Args {
			collectCalls(a, out)
		}
	case *minij.FieldAccess:
		collectCalls(n.Recv, out)
	case *minij.New:
		for _, a := range n.Args {
			collectCalls(a, out)
		}
	case *minij.Unary:
		collectCalls(n.X, out)
	case *minij.Binary:
		collectCalls(n.X, out)
		collectCalls(n.Y, out)
	}
}

// CalleeName resolves the qualified "Class.method" name a call refers to,
// or "" when unresolvable. caller is the enclosing method (for unqualified
// sibling calls).
func CalleeName(prog *minij.Program, caller *minij.Method, call *minij.Call) string {
	switch call.Kind {
	case minij.CallSelf:
		return caller.Class.Name + "." + call.Name
	case minij.CallStatic:
		if id, ok := call.Recv.(*minij.Ident); ok {
			return id.Name + "." + call.Name
		}
	case minij.CallInstance:
		rt := prog.TypeOf(call.Recv)
		if rt.Kind == minij.TypeObject {
			return rt.Class + "." + call.Name
		}
	case minij.CallBuiltin:
		return "builtin." + call.Name
	}
	return ""
}

// SiteChecker instantiates the semantic's precondition at a site by
// renaming each slot root to the concrete operand path. The returned
// formula is expressed over the site's variable names, ready to compare
// with recorded path conditions. Slots whose operands are not simple access
// chains make ok false; such sites need developer review (the paper's
// normalization step covers simple chains only).
func SiteChecker(site *Site) (smt.Formula, bool) {
	sem := site.Semantic
	f := sem.Pre
	for slot := range sem.Target.Bind {
		path, ok := site.BindingPath(slot)
		if !ok {
			return nil, false
		}
		f = smt.RenameRoot(f, slot, path)
	}
	return f, true
}

// Registry is an ordered collection of semantics, the "executable contract"
// store that a CI/CD pipeline enforces.
type Registry struct {
	sems []*Semantic
	byID map[string]*Semantic
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: map[string]*Semantic{}}
}

// Add validates and registers a semantic. Re-adding an existing ID replaces
// the previous version (a refined rule supersedes the old one).
func (r *Registry) Add(s *Semantic) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if old, ok := r.byID[s.ID]; ok {
		for i, e := range r.sems {
			if e == old {
				r.sems[i] = s
				break
			}
		}
	} else {
		r.sems = append(r.sems, s)
	}
	r.byID[s.ID] = s
	return nil
}

// Get returns the semantic with the given ID, or nil.
func (r *Registry) Get(id string) *Semantic { return r.byID[id] }

// All returns the registered semantics in registration order.
func (r *Registry) All() []*Semantic {
	out := make([]*Semantic, len(r.sems))
	copy(out, r.sems)
	return out
}

// Len returns the number of registered semantics.
func (r *Registry) Len() int { return len(r.sems) }

// Summary renders a short multi-line listing.
func (r *Registry) Summary() string {
	var sb strings.Builder
	for _, s := range r.sems {
		sb.WriteString(s.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
