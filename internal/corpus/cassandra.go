package corpus

import "lisa/internal/ticket"

// ---------------------------------------------------------------------------
// Case 14: cassandra-tombstone-gc — a tombstone may be purged only after
// gc_grace has elapsed on every replica; early purges resurrect deleted
// rows.
// ---------------------------------------------------------------------------

const cassandraTombstoneBase = `
class Tombstone {
	string key;
	bool gcEligible;

	bool isGcEligible() {
		return gcEligible;
	}
}

class SSTableStore {
	list purged;

	void init() {
		purged = newList();
	}

	void purge(Tombstone t) {
		purged.add(t.key);
	}

	bool wasPurged(string key) {
		return purged.contains(key);
	}
}

class CompactionTask {
	SSTableStore store;

	void init(SSTableStore s) {
		store = s;
	}

	void compactTombstone(Tombstone t) {
		if (t == null || !t.isGcEligible()) {
			return;
		}
		store.purge(t);
	}
}
`

const cassandraTombstoneSingleFixed = `
class SinglePartitionCompaction {
	SSTableStore store;

	void init(SSTableStore s) {
		store = s;
	}

	void compactPartition(Tombstone t) {
		if (t == null || !t.isGcEligible()) {
			return;
		}
		store.purge(t);
	}
}
`

func caseCassandraTombstoneGC() *ticket.Case {
	v2 := cassandraTombstoneBase
	v1 := weaken(v2, "	void compactTombstone(Tombstone t) {\n		if (t == null || !t.isGcEligible()) {",
		"	void compactTombstone(Tombstone t) {\n		if (t == null) {")
	v4 := cassandraTombstoneBase + cassandraTombstoneSingleFixed
	v3 := weaken(v4, "	void compactPartition(Tombstone t) {\n		if (t == null || !t.isGcEligible()) {",
		"	void compactPartition(Tombstone t) {\n		if (t == null) {")

	tests := []ticket.TestCase{
		{
			Name:        "TombstoneTest.purgeEligibleTombstone",
			Description: "compaction purges a tombstone after gc grace elapsed",
			Class:       "TombstoneTest", Method: "purgeEligibleTombstone",
			Source: `
class TombstoneTest {
	static void purgeEligibleTombstone() {
		SSTableStore s = new SSTableStore();
		CompactionTask c = new CompactionTask(s);
		Tombstone t = new Tombstone();
		t.key = "k1";
		t.gcEligible = true;
		c.compactTombstone(t);
		assertTrue(s.wasPurged("k1"), "purged");
	}
}
`,
		},
		{
			Name:        "TombstoneTest.keepTombstoneBeforeGrace",
			Description: "compaction keeps a tombstone whose gc grace has not elapsed",
			Class:       "TombstoneTest", Method: "keepTombstoneBeforeGrace",
			Source: `
class TombstoneTest {
	static void keepTombstoneBeforeGrace() {
		SSTableStore s = new SSTableStore();
		CompactionTask c = new CompactionTask(s);
		Tombstone t = new Tombstone();
		t.key = "k2";
		t.gcEligible = false;
		c.compactTombstone(t);
		assertTrue(!s.wasPurged("k2"), "kept");
	}
}
`,
		},
		{
			Name:        "TombstoneTest.singlePartitionCompaction",
			Description: "single partition compaction path handles per-partition tombstones",
			Class:       "TombstoneTest", Method: "singlePartitionCompaction",
			Source: `
class TombstoneTest {
	static void singlePartitionCompaction() {
		SSTableStore s = new SSTableStore();
		SinglePartitionCompaction c = new SinglePartitionCompaction(s);
		Tombstone t = new Tombstone();
		t.key = "k3";
		t.gcEligible = false;
		c.compactPartition(t);
	}
}
`,
		},
	}

	return &ticket.Case{
		ID:      "cassandra-tombstone-gc",
		System:  "cassandrasim",
		Feature: "tombstone garbage collection",
		Description: "Purging a tombstone before gc_grace elapses on all replicas resurrects deleted " +
			"rows during the next repair.",
		FirstReported: 2012, LastReported: 2021, FeatureBugCount: 14,
		Tickets: []*ticket.Ticket{
			{
				ID:    "CAS-6117",
				Title: "Deleted rows resurrected after compaction",
				Description: "Major compaction purged tombstones before gc_grace, so repairs copied the " +
					"deleted rows back from replicas that never saw the delete.",
				Discussion:      []string{"Purge only gc-eligible tombstones."},
				BuggySource:     v1,
				FixedSource:     v2,
				RegressionTests: []ticket.TestCase{tests[1]},
			},
			{
				ID:    "CAS-10944",
				Title: "Single-partition compaction purges early",
				Description: "The single-partition compaction strategy repeats the CAS-6117 omission on " +
					"its own purge path.",
				Discussion:      []string{"Same gc-grace gate on every purge path."},
				BuggySource:     v3,
				FixedSource:     v4,
				RegressionTests: []ticket.TestCase{tests[2]},
			},
		},
		Tests: tests,
	}
}

// ---------------------------------------------------------------------------
// Case 15: cassandra-hint-delivery — hints may be delivered only to live
// nodes that are still cluster members; three delivery paths repeated the
// mistake over the years.
// ---------------------------------------------------------------------------

const cassandraHintV6 = `
class Endpoint {
	string addr;
	bool alive;

	bool isAlive() {
		return alive;
	}
}

class HintTransport {
	list sent;

	void init() {
		sent = newList();
	}

	void sendHint(Endpoint node, string hint) {
		sent.add(node.addr + ":" + hint);
	}
}

class HintDispatcher {
	HintTransport transport;

	void init(HintTransport t) {
		transport = t;
	}

	void deliver(Endpoint node, string hint) {
		if (node == null || !node.isAlive()) {
			return;
		}
		transport.sendHint(node, hint);
	}
}

class StartupReplayer {
	HintTransport transport;

	void init(HintTransport t) {
		transport = t;
	}

	void replayOnStartup(Endpoint node, list hints) {
		if (node == null || !node.isAlive()) {
			return;
		}
		for (h in hints) {
			transport.sendHint(node, h);
		}
	}
}

class DecommissionFlusher {
	HintTransport transport;

	void init(HintTransport t) {
		transport = t;
	}

	void flushBeforeDecommission(Endpoint node, string hint) {
		if (node == null || !node.isAlive()) {
			return;
		}
		transport.sendHint(node, hint);
	}
}
`

func caseCassandraHintDelivery() *ticket.Case {
	v6 := cassandraHintV6
	v5 := weaken(v6, "	void flushBeforeDecommission(Endpoint node, string hint) {\n		if (node == null || !node.isAlive()) {",
		"	void flushBeforeDecommission(Endpoint node, string hint) {\n		if (node == null) {")
	v4 := v6
	v3 := weaken(v4, "	void replayOnStartup(Endpoint node, list hints) {\n		if (node == null || !node.isAlive()) {",
		"	void replayOnStartup(Endpoint node, list hints) {\n		if (node == null) {")
	v2 := v4
	v1 := weaken(v2, "	void deliver(Endpoint node, string hint) {\n		if (node == null || !node.isAlive()) {",
		"	void deliver(Endpoint node, string hint) {\n		if (node == null) {")

	tests := []ticket.TestCase{
		{
			Name:        "HintTest.deliverToLiveNode",
			Description: "hints are delivered to a live endpoint",
			Class:       "HintTest", Method: "deliverToLiveNode",
			Source: `
class HintTest {
	static void deliverToLiveNode() {
		HintTransport t = new HintTransport();
		HintDispatcher d = new HintDispatcher(t);
		Endpoint n = new Endpoint();
		n.addr = "10.0.0.1";
		n.alive = true;
		d.deliver(n, "mutation1");
		assertTrue(t.sent.size() == 1, "hint sent");
	}
}
`,
		},
		{
			Name:        "HintTest.skipDeadNode",
			Description: "hints for a dead endpoint are parked not delivered",
			Class:       "HintTest", Method: "skipDeadNode",
			Source: `
class HintTest {
	static void skipDeadNode() {
		HintTransport t = new HintTransport();
		HintDispatcher d = new HintDispatcher(t);
		Endpoint n = new Endpoint();
		n.addr = "10.0.0.2";
		n.alive = false;
		d.deliver(n, "mutation2");
		assertTrue(t.sent.size() == 0, "dead node skipped");
	}
}
`,
		},
		{
			Name:        "HintTest.startupReplay",
			Description: "startup replay delivers queued hints for an endpoint",
			Class:       "HintTest", Method: "startupReplay",
			Source: `
class HintTest {
	static void startupReplay() {
		HintTransport t = new HintTransport();
		StartupReplayer r = new StartupReplayer(t);
		Endpoint n = new Endpoint();
		n.addr = "10.0.0.3";
		n.alive = false;
		list hints = newList();
		hints.add("m3");
		r.replayOnStartup(n, hints);
	}
}
`,
		},
		{
			Name:        "HintTest.decommissionFlush",
			Description: "decommission flush forwards remaining hints before leaving the ring",
			Class:       "HintTest", Method: "decommissionFlush",
			Source: `
class HintTest {
	static void decommissionFlush() {
		HintTransport t = new HintTransport();
		DecommissionFlusher f = new DecommissionFlusher(t);
		Endpoint n = new Endpoint();
		n.addr = "10.0.0.4";
		n.alive = false;
		f.flushBeforeDecommission(n, "m4");
	}
}
`,
		},
	}

	return &ticket.Case{
		ID:      "cassandra-hint-delivery",
		System:  "cassandrasim",
		Feature: "hinted handoff",
		Description: "Delivering hints to dead or departed endpoints blocks the hint queue and loses " +
			"mutations; all three delivery paths shipped without the liveness check at some point.",
		FirstReported: 2011, LastReported: 2023, FeatureBugCount: 18,
		Tickets: []*ticket.Ticket{
			{
				ID:    "CAS-5179",
				Title: "Hints delivered to dead node block the queue",
				Description: "The dispatcher sent hints to endpoints that failure detection had already " +
					"declared dead, stalling the handoff queue behind timeouts.",
				Discussion:      []string{"Check liveness before sending."},
				BuggySource:     v1,
				FixedSource:     v2,
				RegressionTests: []ticket.TestCase{tests[1]},
			},
			{
				ID:    "CAS-8285",
				Title: "Startup replay sends hints to dead nodes",
				Description: "The startup replay path repeats CAS-5179: queued hints go to endpoints " +
					"that died while the node was down.",
				Discussion:      []string{"Same liveness gate on replay."},
				BuggySource:     v3,
				FixedSource:     v4,
				RegressionTests: []ticket.TestCase{tests[2]},
			},
			{
				ID:    "CAS-13440",
				Title: "Decommission flush targets departed endpoints",
				Description: "Third occurrence: the decommission flush forwards hints without the " +
					"liveness check.",
				Discussion:      []string{"The invariant spans every transport.sendHint caller."},
				BuggySource:     v5,
				FixedSource:     v6,
				RegressionTests: []ticket.TestCase{tests[3]},
			},
		},
		Tests: tests,
	}
}

// ---------------------------------------------------------------------------
// Case 16: cassandra-repair-stream — ranges may be streamed only within a
// validated repair session; unvalidated streams ship inconsistent data.
// ---------------------------------------------------------------------------

const cassandraRepairBase = `
class RepairSession {
	string id;
	bool validated;

	bool isValidated() {
		return validated;
	}
}

class RangeStreamer {
	list streamed;

	void init() {
		streamed = newList();
	}

	void streamRange(RepairSession s, string range) {
		streamed.add(s.id + ":" + range);
	}
}

class RepairJob {
	RangeStreamer streamer;

	void init(RangeStreamer st) {
		streamer = st;
	}

	void runRepair(RepairSession s, string range) {
		if (s == null || !s.isValidated()) {
			throw "RepairValidationException";
		}
		streamer.streamRange(s, range);
	}
}
`

const cassandraRepairIncrementalFixed = `
class IncrementalRepairJob {
	RangeStreamer streamer;

	void init(RangeStreamer st) {
		streamer = st;
	}

	void runIncremental(RepairSession s, list ranges) {
		if (s == null || !s.isValidated()) {
			throw "RepairValidationException";
		}
		for (r in ranges) {
			streamer.streamRange(s, r);
		}
	}
}
`

func caseCassandraRepairStream() *ticket.Case {
	v2 := cassandraRepairBase
	v1 := weaken(v2, "	void runRepair(RepairSession s, string range) {\n		if (s == null || !s.isValidated()) {",
		"	void runRepair(RepairSession s, string range) {\n		if (s == null) {")
	v4 := cassandraRepairBase + cassandraRepairIncrementalFixed
	v3 := weaken(v4, "	void runIncremental(RepairSession s, list ranges) {\n		if (s == null || !s.isValidated()) {",
		"	void runIncremental(RepairSession s, list ranges) {\n		if (s == null) {")

	tests := []ticket.TestCase{
		{
			Name:        "RepairTest.streamValidatedSession",
			Description: "repair streams a range once the session validated",
			Class:       "RepairTest", Method: "streamValidatedSession",
			Source: `
class RepairTest {
	static void streamValidatedSession() {
		RangeStreamer st = new RangeStreamer();
		RepairJob j = new RepairJob(st);
		RepairSession s = new RepairSession();
		s.id = "rs1";
		s.validated = true;
		j.runRepair(s, "(0,100]");
		assertTrue(st.streamed.size() == 1, "range streamed");
	}
}
`,
		},
		{
			Name:        "RepairTest.rejectUnvalidatedSession",
			Description: "repair refuses to stream before validation completes",
			Class:       "RepairTest", Method: "rejectUnvalidatedSession",
			Source: `
class RepairTest {
	static void rejectUnvalidatedSession() {
		RangeStreamer st = new RangeStreamer();
		RepairJob j = new RepairJob(st);
		RepairSession s = new RepairSession();
		s.id = "rs2";
		s.validated = false;
		bool rejected = false;
		try {
			j.runRepair(s, "(100,200]");
		} catch (e) {
			rejected = true;
		}
		assertTrue(rejected, "unvalidated repair rejected");
	}
}
`,
		},
		{
			Name:        "RepairTest.incrementalStreamsRanges",
			Description: "incremental repair streams every dirty range of the session",
			Class:       "RepairTest", Method: "incrementalStreamsRanges",
			Source: `
class RepairTest {
	static void incrementalStreamsRanges() {
		RangeStreamer st = new RangeStreamer();
		IncrementalRepairJob j = new IncrementalRepairJob(st);
		RepairSession s = new RepairSession();
		s.id = "rs3";
		s.validated = false;
		list ranges = newList();
		ranges.add("(0,50]");
		try {
			j.runIncremental(s, ranges);
		} catch (e) {
			log(e);
		}
	}
}
`,
		},
	}

	return &ticket.Case{
		ID:      "cassandra-repair-stream",
		System:  "cassandrasim",
		Feature: "repair streaming",
		Description: "Streaming ranges from an unvalidated repair session ships inconsistent data to " +
			"replicas; the incremental path repeated the full-repair mistake.",
		FirstReported: 2013, LastReported: 2020, FeatureBugCount: 10,
		Tickets: []*ticket.Ticket{
			{
				ID:    "CAS-7909",
				Title: "Repair streams ranges before validation completes",
				Description: "runRepair streamed ranges from sessions whose merkle-tree validation had " +
					"not finished, shipping inconsistent data.",
				Discussion:      []string{"Gate streaming on session validation."},
				BuggySource:     v1,
				FixedSource:     v2,
				RegressionTests: []ticket.TestCase{tests[1]},
			},
			{
				ID:    "CAS-12877",
				Title: "Incremental repair bypasses validation gate",
				Description: "The incremental repair feature streams ranges without the validation " +
					"check — CAS-7909 on the new path.",
				Discussion:      []string{"Same validation gate on incremental streaming."},
				BuggySource:     v3,
				FixedSource:     v4,
				RegressionTests: []ticket.TestCase{tests[2]},
			},
		},
		Tests: tests,
	}
}
