package corpus

import "lisa/internal/ticket"

// extraTests returns additional feature tests per case, written against the
// case's newest source. They broaden behavioral coverage beyond the
// contract-adjacent scenarios and thicken the retrieval corpus the selector
// ranks over.
func extraTests(caseID string) []ticket.TestCase {
	switch caseID {
	case "zk-ephemeral":
		return []ticket.TestCase{
			{
				Name:        "EphemeralTest.deleteRemovesNode",
				Description: "deleting a node removes it from the tree and the ephemeral index",
				Class:       "EphemeralTest", Method: "deleteRemovesNode",
				Source: `
class EphemeralTest {
	static void deleteRemovesNode() {
		DataTree t = new DataTree();
		t.createNode("/cfg", "v1");
		assertTrue(t.exists("/cfg"), "created");
		t.deleteNode("/cfg");
		assertTrue(!t.exists("/cfg"), "deleted");
	}
}
`,
			},
			{
				Name:        "EphemeralTest.createRejectsNullSession",
				Description: "create request with a null session is rejected with SessionExpired",
				Class:       "EphemeralTest", Method: "createRejectsNullSession",
				Source: `
class EphemeralTest {
	static void createRejectsNullSession() {
		DataTree t = new DataTree();
		PrepRequestProcessor p = new PrepRequestProcessor(t);
		Session none = null;
		bool rejected = false;
		try {
			p.pRequest2TxnCreate("/x", none, true);
		} catch (e) {
			rejected = true;
		}
		assertTrue(rejected, "null session rejected");
	}
}
`,
			},
		}
	case "zk-sync-serialize":
		return []ticket.TestCase{
			{
				Name:        "SyncTest.repeatedSnapshotsCount",
				Description: "each snapshot pass increments the serialization counter",
				Class:       "SyncTest", Method: "repeatedSnapshotsCount",
				Source: `
class SyncTest {
	static void repeatedSnapshotsCount() {
		SyncRequestProcessor sp = new SyncRequestProcessor();
		sp.addNode("/a");
		sp.serializeNode("/");
		sp.serializeNode("/");
		assertTrue(sp.scount == 2, "two passes");
	}
}
`,
			},
		}
	case "zk-session-expiry":
		return []ticket.TestCase{
			{
				Name:        "ExpiryTest.touchNullSessionRefused",
				Description: "touching a null session returns false without renewing anything",
				Class:       "ExpiryTest", Method: "touchNullSessionRefused",
				Source: `
class ExpiryTest {
	static void touchNullSessionRefused() {
		LeaseStore st = new LeaseStore();
		SessionManager m = new SessionManager(st);
		ZSession none = null;
		assertTrue(!m.touch(none), "null refused");
	}
}
`,
			},
		}
	case "zk-watch-trigger":
		return []ticket.TestCase{
			{
				Name:        "WatchTest.noWatcherNoDelivery",
				Description: "triggering a path with no registered watcher delivers nothing",
				Class:       "WatchTest", Method: "noWatcherNoDelivery",
				Source: `
class WatchTest {
	static void noWatcherNoDelivery() {
		EventDispatcher d = new EventDispatcher();
		WatchManager m = new WatchManager(d);
		m.triggerWatch("/unwatched", "NodeCreated");
		assertTrue(d.delivered.size() == 0, "nothing delivered");
		assertTrue(d.dropped.size() == 0, "nothing dropped");
	}
}
`,
			},
		}
	case "zk-quota":
		return []ticket.TestCase{
			{
				Name:        "QuotaTest.chargesAccumulate",
				Description: "repeated set data operations accumulate charges on the ledger",
				Class:       "QuotaTest", Method: "chargesAccumulate",
				Source: `
class QuotaTest {
	static void chargesAccumulate() {
		QuotaLedger l = new QuotaLedger();
		SetDataProcessor p = new SetDataProcessor(l);
		Quota q = new Quota();
		q.path = "/acc";
		q.exceeded = false;
		p.setData(q, 100);
		p.setData(q, 50);
		assertTrue(l.charged("/acc") == 150, "accumulated");
	}
}
`,
			},
		}
	case "hdfs-observer-locations":
		return []ticket.TestCase{
			{
				Name:        "ObserverTest.unknownBlockIgnored",
				Description: "listing an unknown block id produces no entries",
				Class:       "ObserverTest", Method: "unknownBlockIgnored",
				Source: `
class ObserverTest {
	static void unknownBlockIgnored() {
		BlockManager bm = new BlockManager();
		ObserverNameNode nn = new ObserverNameNode(bm);
		list ids = newList();
		ids.add("missing");
		ListingResult r = nn.getListing(ids);
		assertTrue(r.entries.size() == 0, "nothing listed");
	}
}
`,
			},
			{
				Name:        "ObserverTest.batchRespectsSize",
				Description: "batched listing returns at most batchSize entries",
				Class:       "ObserverTest", Method: "batchRespectsSize",
				Source: `
class ObserverTest {
	static void batchRespectsSize() {
		BlockManager bm = new BlockManager();
		list ids = newList();
		for (int i = 0; i < 5; i = i + 1) {
			LocatedBlock b = new LocatedBlock();
			b.blockId = "blk" + str(i);
			b.located = true;
			bm.report(b);
			ids.add(b.blockId);
		}
		BatchedListingServer bs = new BatchedListingServer(bm);
		ListingResult r = bs.getBatchedListing(ids, 3);
		assertTrue(r.entries.size() == 3, "batch capped");
	}
}
`,
			},
		}
	case "hdfs-lease-recovery":
		return []ticket.TestCase{
			{
				Name:        "LeaseTest.appendsPreserveOrder",
				Description: "sequential appends land on the block chain in order",
				Class:       "LeaseTest", Method: "appendsPreserveOrder",
				Source: `
class LeaseTest {
	static void appendsPreserveOrder() {
		BlockChain c = new BlockChain();
		FSNamesystem fs = new FSNamesystem(c);
		Lease l = new Lease();
		l.holder = "w";
		l.expired = false;
		fs.appendFile(l, "first");
		fs.appendFile(l, "second");
		assertTrue(c.appended.size() == 2, "two blocks");
		assertTrue(c.appended.get(0) == "w:first", "order kept");
	}
}
`,
			},
		}
	case "hdfs-decommission":
		return []ticket.TestCase{
			{
				Name:        "DecomTest.unknownNodeNotDecommissioned",
				Description: "a node never submitted is not reported decommissioned",
				Class:       "DecomTest", Method: "unknownNodeNotDecommissioned",
				Source: `
class DecomTest {
	static void unknownNodeNotDecommissioned() {
		NodeRegistry r = new NodeRegistry();
		assertTrue(!r.isDecommissioned("ghost"), "unknown node");
	}
}
`,
			},
		}
	case "hdfs-safemode":
		return []ticket.TestCase{
			{
				Name:        "SafeModeTest.renameAppliesWhenActive",
				Description: "rename logs an edit once the namenode leaves safe mode",
				Class:       "SafeModeTest", Method: "renameAppliesWhenActive",
				Source: `
class SafeModeTest {
	static void renameAppliesWhenActive() {
		EditLog e = new EditLog();
		RenameHandler r = new RenameHandler(e);
		FSState st = new FSState();
		st.safeMode = false;
		r.renamePath(st, "/a", "/b");
		assertTrue(e.ops.size() == 1, "edit logged");
	}
}
`,
			},
		}
	case "hbase-snapshot-ttl":
		return []ticket.TestCase{
			{
				Name:        "SnapshotTest.scanFreshSnapshot",
				Description: "scanning a fresh snapshot serves it to the client",
				Class:       "SnapshotTest", Method: "scanFreshSnapshot",
				Source: `
class SnapshotTest {
	static void scanFreshSnapshot() {
		SnapshotManager m = new SnapshotManager();
		ScanHandler sc = new ScanHandler(m);
		Snapshot s = new Snapshot();
		s.name = "fresh";
		s.expired = false;
		sc.scanSnapshot(s);
		assertTrue(m.servedCount() == 1, "scanned");
	}
}
`,
			},
		}
	case "hbase-region-state":
		return []ticket.TestCase{
			{
				Name:        "RegionTest.repeatedGetsServe",
				Description: "repeated gets against an online region each serve a read",
				Class:       "RegionTest", Method: "repeatedGetsServe",
				Source: `
class RegionTest {
	static void repeatedGetsServe() {
		ReadServer s = new ReadServer();
		GetHandler g = new GetHandler(s);
		Region r = new Region();
		r.name = "r9";
		r.online = true;
		g.get(r, "k1");
		g.get(r, "k2");
		assertTrue(s.reads.size() == 2, "two reads served");
	}
}
`,
			},
		}
	case "hbase-wal-append":
		return []ticket.TestCase{
			{
				Name:        "WalTest.entriesTagByLog",
				Description: "entries are tagged with their write ahead log name",
				Class:       "WalTest", Method: "entriesTagByLog",
				Source: `
class WalTest {
	static void entriesTagByLog() {
		WALStore s = new WALStore();
		WALWriter w = new WALWriter(s);
		WAL wal = new WAL();
		wal.name = "walX";
		wal.closed = false;
		w.append(wal, "e1");
		assertTrue(s.entries.get(0) == "walX:e1", "tagged");
	}
}
`,
			},
		}
	case "hbase-meta-cache":
		return []ticket.TestCase{
			{
				Name:        "MetaTest.routeCarriesOperation",
				Description: "routing records the destination server and the operation",
				Class:       "MetaTest", Method: "routeCarriesOperation",
				Source: `
class MetaTest {
	static void routeCarriesOperation() {
		ClientRouter r = new ClientRouter();
		MetaLookup m = new MetaLookup(r);
		MetaEntry e = new MetaEntry();
		e.regionName = "rz";
		e.server = "rs9";
		e.stale = false;
		m.lookup(e, "scan");
		assertTrue(r.routed.get(0) == "rs9/scan", "route recorded");
	}
}
`,
			},
		}
	case "cassandra-tombstone-gc":
		return []ticket.TestCase{
			{
				Name:        "TombstoneTest.purgeManyEligible",
				Description: "compaction purges every gc-eligible tombstone in the run",
				Class:       "TombstoneTest", Method: "purgeManyEligible",
				Source: `
class TombstoneTest {
	static void purgeManyEligible() {
		SSTableStore s = new SSTableStore();
		CompactionTask c = new CompactionTask(s);
		for (int i = 0; i < 3; i = i + 1) {
			Tombstone t = new Tombstone();
			t.key = "k" + str(i);
			t.gcEligible = true;
			c.compactTombstone(t);
		}
		assertTrue(s.purged.size() == 3, "all purged");
	}
}
`,
			},
		}
	case "cassandra-hint-delivery":
		return []ticket.TestCase{
			{
				Name:        "HintTest.deliverToMultipleLiveNodes",
				Description: "hints fan out to each live endpoint",
				Class:       "HintTest", Method: "deliverToMultipleLiveNodes",
				Source: `
class HintTest {
	static void deliverToMultipleLiveNodes() {
		HintTransport t = new HintTransport();
		HintDispatcher d = new HintDispatcher(t);
		Endpoint a = new Endpoint();
		a.addr = "10.0.0.7";
		a.alive = true;
		Endpoint b = new Endpoint();
		b.addr = "10.0.0.8";
		b.alive = true;
		d.deliver(a, "m1");
		d.deliver(b, "m2");
		assertTrue(t.sent.size() == 2, "both delivered");
	}
}
`,
			},
		}
	case "cassandra-repair-stream":
		return []ticket.TestCase{
			{
				Name:        "RepairTest.streamsMultipleRanges",
				Description: "a validated session streams each requested range",
				Class:       "RepairTest", Method: "streamsMultipleRanges",
				Source: `
class RepairTest {
	static void streamsMultipleRanges() {
		RangeStreamer st = new RangeStreamer();
		IncrementalRepairJob j = new IncrementalRepairJob(st);
		RepairSession s = new RepairSession();
		s.id = "rs9";
		s.validated = true;
		list ranges = newList();
		ranges.add("(0,10]");
		ranges.add("(10,20]");
		j.runIncremental(s, ranges);
		assertTrue(st.streamed.size() == 2, "both ranges streamed");
	}
}
`,
			},
		}
	}
	return nil
}
