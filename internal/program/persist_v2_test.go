package program

// Tests for the snap.v2 parse-free restore path: the decoded/deep-verified
// split, the sampling knob, legacy v1 compatibility with migration, and
// the corruption story (a damaged record is always a miss, never a wrong
// snapshot).

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lisa/internal/faultinject"
	"lisa/internal/minij"
	"lisa/internal/store"
)

func openStoreDir(t *testing.T, dir string) (*store.Store, error) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	t.Cleanup(func() { st.Close() })
	return st, nil
}

// TestRestoreDecodedSkipsParse: with deep verification pushed out of
// sampling range, a cold cache restores purely by decode + digest — no
// compile, no deep verify — and still yields a Verify-clean snapshot with
// all derived artifacts intact.
func TestRestoreDecodedSkipsParse(t *testing.T) {
	st := openStoreT(t)
	built := warmStore(t, st, testSource)

	cold := NewCache(8)
	cold.SetStore(st)
	cold.SetDeepVerifyEvery(1 << 30)
	snap, err := cold.Load(testSource)
	if err != nil {
		t.Fatal(err)
	}
	stats := cold.Stats()
	if stats.Compiles != 0 || stats.Restores != 1 || stats.RestoresDecoded != 1 || stats.RestoresDeepVerified != 0 {
		t.Fatalf("stats = %+v, want exactly one decoded restore", stats)
	}
	if snap.Canon() != built.Canon() || snap.CanonHash() != built.CanonHash() {
		t.Fatal("decoded canon differs from built canon")
	}
	if snap.MethodCanon("PrepProcessor.processCreate") != built.MethodCanon("PrepProcessor.processCreate") {
		t.Fatal("decoded method canon differs")
	}
	if err := snap.Verify(); err != nil {
		t.Fatalf("decoded snapshot fails Verify: %v", err)
	}
	ts := cold.TierStats()
	if ts.DiskHitsDecoded != 1 || ts.DiskHitsVerified != 0 {
		t.Fatalf("tier stats = %+v, want the decoded/verified split", ts)
	}
}

// TestDeepVerifySampling: every Nth restore runs the full re-parse
// comparison; the rest decode.
func TestDeepVerifySampling(t *testing.T) {
	st := openStoreT(t)
	sources := make([]string, 4)
	for i := range sources {
		sources[i] = variant(i)
		warmStore(t, st, sources[i])
	}

	cold := NewCache(8)
	cold.SetStore(st)
	cold.SetDeepVerifyEvery(2)
	for _, src := range sources {
		if _, err := cold.Load(src); err != nil {
			t.Fatal(err)
		}
	}
	stats := cold.Stats()
	if stats.Compiles != 0 || stats.Restores != 4 || stats.RestoresDecoded != 2 || stats.RestoresDeepVerified != 2 {
		t.Fatalf("stats = %+v, want 2 decoded + 2 deep-verified of 4 restores", stats)
	}
}

// TestDeepVerifyAlwaysUnderFaultinject: an armed plan (whatever its rules)
// forces the deep path on every restore, preserving the chaos-run
// corruption-detection cadence from PR 7.
func TestDeepVerifyAlwaysUnderFaultinject(t *testing.T) {
	st := openStoreT(t)
	warmStore(t, st, testSource)

	cold := NewCache(8)
	cold.SetStore(st)
	faultinject.Arm(faultinject.NewPlan(7).Set("unrelated.point", faultinject.Panic))
	defer faultinject.Disarm()
	if _, err := cold.Load(testSource); err != nil {
		t.Fatal(err)
	}
	if stats := cold.Stats(); stats.RestoresDeepVerified != 1 || stats.RestoresDecoded != 0 {
		t.Fatalf("stats = %+v, want an armed restore to deep-verify", stats)
	}
}

// TestCorruptASTDegradesToMiss: a bit flip inside the persisted binary AST
// (which the store's CRC cannot see — the JSON record is intact) is caught
// by the codec's own checksum; the load degrades to a recompute miss and
// the result is correct.
func TestCorruptASTDegradesToMiss(t *testing.T) {
	st := openStoreT(t)
	built := warmStore(t, st, testSource)

	raw, ok := st.Get(snapNamespace, Hash(testSource))
	if !ok {
		t.Fatal("no persisted record")
	}
	rec, ok := decodeRecord(raw)
	if !ok {
		t.Fatal("persisted record does not decode")
	}
	rec.AST[len(rec.AST)/2] ^= 0x40
	st.Put(snapNamespace, Hash(testSource), encodeRecord(rec))
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	cold := NewCache(8)
	cold.SetStore(st)
	cold.SetDeepVerifyEvery(1 << 30) // decode path only: the codec checksum must catch it
	snap, err := cold.Load(testSource)
	if err != nil {
		t.Fatal(err)
	}
	stats := cold.Stats()
	if stats.Restores != 0 || stats.Compiles != 1 {
		t.Fatalf("stats = %+v, want a recompute miss", stats)
	}
	if snap.Canon() != built.Canon() {
		t.Fatal("fallback snapshot canon differs")
	}
	if err := snap.Verify(); err != nil {
		t.Fatalf("fallback snapshot fails Verify: %v", err)
	}
}

// TestDeepVerifyCatchesConsistentForgery: a record whose canon and digest
// were rewritten together passes the cheap check by construction; the
// deep-verify pass (forced via the knob) still re-derives from source and
// refuses it.
func TestDeepVerifyCatchesConsistentForgery(t *testing.T) {
	st := openStoreT(t)
	warmStore(t, st, testSource)

	raw, ok := st.Get(snapNamespace, Hash(testSource))
	if !ok {
		t.Fatal("no persisted record")
	}
	rec, ok := decodeRecord(raw)
	if !ok {
		t.Fatal("persisted record does not decode")
	}
	rec.Canon += "\n// drifted"
	rec.CanonSHA = Hash(rec.Canon)
	st.Put(snapNamespace, Hash(testSource), encodeRecord(rec))
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	cold := NewCache(8)
	cold.SetStore(st)
	cold.SetDeepVerifyEvery(1) // deep-verify every restore
	snap, err := cold.Load(testSource)
	if err != nil {
		t.Fatal(err)
	}
	if stats := cold.Stats(); stats.Restores != 0 || stats.Compiles != 1 {
		t.Fatalf("stats = %+v, want the forged record refused", stats)
	}
	if err := snap.Verify(); err != nil {
		t.Fatalf("fallback snapshot fails Verify: %v", err)
	}
}

// TestDecodedRestoreFasterThanReparse is the enforced form of the E-D2
// claim: on a program large enough that front-end work dominates the
// shared per-restore overhead (store read, digest), the decode path must
// beat deep-verify-every-restore (which re-parses, the PR-7 behavior) by
// at least 2× — a deliberately loose floor under the ~3.7× measured by
// BenchmarkSnapshotReuse/warmstore-{decoded,reparse}, so a loaded CI box
// does not flake but a restore-path regression to re-parse cost fails.
func TestDecodedRestoreFasterThanReparse(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&sb, `
class Tree%[1]d {
	map nodes;

	void create(string path, int mode) {
		if (mode > 2) {
			nodes.put(path, mode);
		} else {
			nodes.put(path, mode - 1);
		}
	}

	void route(string path, int mode) {
		if (mode == 1) {
			create(path, mode);
		} else {
			create(path, mode + 1);
		}
	}
}
`, i)
	}
	src := sb.String()
	st := openStoreT(t)
	warmStore(t, st, src)

	measure := func(every int, wantDecoded bool) time.Duration {
		var best time.Duration
		for trial := 0; trial < 3; trial++ {
			c := NewCache(8)
			c.SetStore(st)
			c.SetDeepVerifyEvery(every)
			start := time.Now()
			if _, err := c.Load(src); err != nil {
				t.Fatal(err)
			}
			d := time.Since(start)
			if best == 0 || d < best {
				best = d
			}
			stats := c.Stats()
			if stats.Compiles != 0 || stats.Restores != 1 ||
				(stats.RestoresDecoded == 1) != wantDecoded {
				t.Fatalf("stats = %+v, want restore with decoded=%v", stats, wantDecoded)
			}
		}
		return best
	}
	decoded := measure(1<<30, true)
	reparse := measure(1, false)
	if decoded*2 > reparse {
		t.Errorf("decoded restore %v is not >=2x faster than re-parse restore %v", decoded, reparse)
	}
}

// TestStoreReadCorruptionDegradesToMiss: a store.read fault flips bytes in
// the record frame on its way off disk. The store's CRC (and, for anything
// that slipped past it, the restore path's digest/codec checks) must turn
// that into a recompute miss with a correct, Verify-clean result — the
// chaos contract for the parse-free restore path.
func TestStoreReadCorruptionDegradesToMiss(t *testing.T) {
	st := openStoreT(t)
	built := warmStore(t, st, testSource)

	cold := NewCache(8)
	cold.SetStore(st)
	faultinject.Arm(faultinject.NewPlan(1).Set(store.FaultPointRead, faultinject.Corrupt))
	defer faultinject.Disarm()
	snap, err := cold.Load(testSource)
	if err != nil {
		t.Fatal(err)
	}
	if stats := cold.Stats(); stats.Restores != 0 || stats.Compiles != 1 {
		t.Fatalf("stats = %+v, want a recompute miss under read corruption", stats)
	}
	if snap.Canon() != built.Canon() {
		t.Fatal("fallback snapshot canon differs")
	}
	if err := snap.Verify(); err != nil {
		t.Fatalf("fallback snapshot fails Verify: %v", err)
	}
}

// TestRecordEnvelopeRoundTrip: the binary record envelope is deterministic
// and lossless, and any malformed envelope (truncation, garbage header) is
// rejected rather than misread.
func TestRecordEnvelopeRoundTrip(t *testing.T) {
	st := openStoreT(t)
	warmStore(t, st, testSource)
	raw, ok := st.Get(snapNamespace, Hash(testSource))
	if !ok {
		t.Fatal("no persisted record")
	}
	rec, ok := decodeRecord(raw)
	if !ok {
		t.Fatal("persisted record does not decode")
	}
	again := encodeRecord(rec)
	if string(again) != string(raw) {
		t.Fatal("re-encoding a decoded record changed its bytes")
	}
	for cut := 0; cut < len(raw); cut++ {
		if _, ok := decodeRecord(raw[:cut]); ok {
			t.Fatalf("truncated record (%d of %d bytes) decoded", cut, len(raw))
		}
	}
	garbage := append([]byte{}, raw...)
	garbage[0] = 'X'
	if _, ok := decodeRecord(garbage); ok {
		t.Fatal("bad magic decoded")
	}
}

// TestLegacyV1StoreFixture opens a committed PR-7-era store directory (one
// snap.v1 record, no binary AST): the snapshot must restore through the
// legacy re-parse path with zero compiles, and the restore must migrate
// the record to snap.v2 so the next cold process decodes instead.
func TestLegacyV1StoreFixture(t *testing.T) {
	dir := t.TempDir()
	log, err := os.ReadFile(filepath.Join("testdata", "v1store", "store.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "store.log"), log, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := openStoreDir(t, dir)
	if err != nil {
		t.Fatal(err)
	}

	legacy := NewCache(8)
	legacy.SetStore(st)
	snap, err := legacy.Load(testSource)
	if err != nil {
		t.Fatal(err)
	}
	stats := legacy.Stats()
	if stats.Compiles != 0 || stats.Restores != 1 || stats.RestoresDeepVerified != 1 {
		t.Fatalf("stats = %+v, want one deep-verified legacy restore", stats)
	}
	if err := snap.Verify(); err != nil {
		t.Fatalf("legacy snapshot fails Verify: %v", err)
	}
	if snap.Graph() == nil {
		t.Fatal("legacy snapshot lost its graph summary")
	}
	if g := legacy.Stats(); g.GraphBuilds != 0 || g.GraphRestores != 1 {
		t.Fatalf("graph stats = %+v, want the summary re-anchored", g)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	// Migration happened: a v2 record now exists, and a second cold
	// process restores parse-free.
	if _, ok := st.Get(snapNamespace, Hash(testSource)); !ok {
		t.Fatal("legacy restore did not migrate the record to snap.v2")
	}
	cold := NewCache(8)
	cold.SetStore(st)
	cold.SetDeepVerifyEvery(1 << 30)
	if _, err := cold.Load(testSource); err != nil {
		t.Fatal(err)
	}
	if s := cold.Stats(); s.Compiles != 0 || s.RestoresDecoded != 1 {
		t.Fatalf("post-migration stats = %+v, want a decoded restore", s)
	}
}

// TestMigratedRecordMatchesFreshPersist: the record a legacy restore
// migrates must decode to the same canon a fresh build would persist.
func TestMigratedRecordMatchesFreshPersist(t *testing.T) {
	st := openStoreT(t)

	// Write a v1-only store the way PR 7 did.
	prog, err := minij.Parse(testSource)
	if err != nil {
		t.Fatal(err)
	}
	if err := minij.Check(prog); err != nil {
		t.Fatal(err)
	}
	rec := snapRecordV1{Canon: minij.FormatProgram(prog)}
	raw, _ := json.Marshal(&rec)
	st.Put(snapLegacyNamespace, Hash(testSource), raw)
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	legacy := NewCache(8)
	legacy.SetStore(st)
	if _, err := legacy.Load(testSource); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	v2raw, ok := st.Get(snapNamespace, Hash(testSource))
	if !ok {
		t.Fatal("no migrated v2 record")
	}
	v2, ok := decodeRecord(v2raw)
	if !ok {
		t.Fatal("migrated record does not decode")
	}
	dec, err := minij.DecodeProgram(v2.AST)
	if err != nil {
		t.Fatalf("migrated AST does not decode: %v", err)
	}
	if minij.FormatProgram(dec) != rec.Canon || v2.CanonSHA != Hash(rec.Canon) {
		t.Fatal("migrated record disagrees with the v1 canon")
	}
}
