// Package concolic implements LISA's path-condition machinery over MiniJ:
// a static intraprocedural path enumerator that collects the guard
// conditions protecting a contract's target statement, and a dynamic
// concolic runner that replays tests under the interpreter while recording
// the symbolic form of every relevant branch taken. Both feed the §3.2
// complement check: a path violates a semantic iff its recorded condition
// is satisfiable together with the complement of the site's checker
// formula. This package plays the role WeBridge plays in the paper.
package concolic

import (
	"strconv"

	"lisa/internal/minij"
	"lisa/internal/smt"
)

// ConstVal is a compile-time-known constant used for normalization:
// "replace constant variables with their actual value rather than ignoring
// them" (§3.2).
type ConstVal struct {
	Kind minij.TypeKind // TypeInt, TypeBool, TypeString, TypeNull
	Int  int64
	Bool bool
	Str  string
}

// IntConst wraps an integer constant.
func IntConst(v int64) ConstVal { return ConstVal{Kind: minij.TypeInt, Int: v} }

// BoolConst wraps a boolean constant.
func BoolConst(v bool) ConstVal { return ConstVal{Kind: minij.TypeBool, Bool: v} }

// StrConst wraps a string constant.
func StrConst(v string) ConstVal { return ConstVal{Kind: minij.TypeString, Str: v} }

// NullConst is the null constant.
func NullConst() ConstVal { return ConstVal{Kind: minij.TypeNull} }

// Env resolves identifiers during guard translation: a name maps to a
// dotted path (its symbolic identity), a known constant, or neither
// (opaque).
type Env interface {
	// PathOf returns the symbolic path an identifier currently aliases,
	// if any.
	PathOf(name string) (string, bool)
	// ConstOf returns the constant a path currently holds, if known.
	ConstOf(path string) (ConstVal, bool)
}

// ProgramProvider is an optional Env extension. When the environment can
// name the resolved program, the translator normalizes nullary getters by
// inlining their bodies (s.isValid() over `return !expired;` becomes
// !(s.expired)), so path conditions, mined rules, and developer-authored
// rules all speak the same field vocabulary — the §3.2 normalization step.
type ProgramProvider interface {
	Program() *minij.Program
}

// maxGetterDepth bounds nested getter inlining.
const maxGetterDepth = 4

// getterEnv resolves identifiers inside an inlined getter body: fields of
// the receiver class map under the receiver path; anything else is opaque.
// Constants still resolve through the outer environment.
type getterEnv struct {
	recvPath string
	class    *minij.Class
	outer    Env
	prog     *minij.Program
	depth    int
}

func (g *getterEnv) PathOf(name string) (string, bool) {
	if g.class.Field(name) != nil {
		return g.recvPath + "." + name, true
	}
	return "", false
}

func (g *getterEnv) ConstOf(path string) (ConstVal, bool) { return g.outer.ConstOf(path) }

func (g *getterEnv) Program() *minij.Program { return g.prog }

// envProgram extracts the resolved program and remaining inline depth from
// an environment.
func envProgram(env Env) (*minij.Program, int) {
	switch e := env.(type) {
	case *getterEnv:
		return e.prog, e.depth
	case ProgramProvider:
		return e.Program(), maxGetterDepth
	}
	return nil, 0
}

// getterBody returns the single returned expression of a pure nullary
// getter, or nil.
func getterBody(prog *minij.Program, class string, method string) minij.Expr {
	m := prog.Method(class, method)
	if m == nil || m.Static || len(m.Params) != 0 || len(m.Body.Stmts) != 1 {
		return nil
	}
	ret, ok := m.Body.Stmts[0].(*minij.Return)
	if !ok || ret.Value == nil {
		return nil
	}
	return ret.Value
}

// inlineGetterEnv prepares the environment for inlining a getter call, or
// nil when the call is not an inlinable getter.
func inlineGetterEnv(call *minij.Call, env Env) (*getterEnv, minij.Expr) {
	prog, depth := envProgram(env)
	if prog == nil || depth <= 0 || call.Recv == nil || len(call.Args) != 0 {
		return nil, nil
	}
	rt := prog.TypeOf(call.Recv)
	if rt.Kind != minij.TypeObject {
		return nil, nil
	}
	body := getterBody(prog, rt.Class, call.Name)
	if body == nil {
		return nil, nil
	}
	recv, ok := translateTerm(call.Recv, env)
	if !ok || !recv.isPath {
		return nil, nil
	}
	return &getterEnv{
		recvPath: recv.path,
		class:    prog.Class(rt.Class),
		outer:    env,
		prog:     prog,
		depth:    depth - 1,
	}, body
}

// inlineGetterBool inlines a nullary getter used in boolean position,
// returning the body's formula under the receiver's field vocabulary.
func inlineGetterBool(call *minij.Call, env Env) (smt.Formula, bool) {
	genv, body := inlineGetterEnv(call, env)
	if genv == nil {
		return nil, false
	}
	return translateBool(body, genv)
}

// symTerm is the translated form of a non-boolean subexpression.
type symTerm struct {
	isPath  bool
	path    string
	isConst bool
	c       ConstVal
}

// Translate converts a MiniJ boolean guard expression into a predicate
// formula over dotted paths, substituting known constants. ok is false when
// the guard contains subexpressions outside the predicate fragment
// (arithmetic on unknowns, calls with arguments, container operations); the
// paper's pruning simply skips such branches.
func Translate(e minij.Expr, env Env) (smt.Formula, bool) {
	return translateBool(e, env)
}

func translateBool(e minij.Expr, env Env) (smt.Formula, bool) {
	switch n := e.(type) {
	case *minij.BoolLit:
		if n.Value {
			return smt.True(), true
		}
		return smt.False(), true
	case *minij.Unary:
		if n.Op != "!" {
			return nil, false
		}
		x, ok := translateBool(n.X, env)
		if !ok {
			return nil, false
		}
		return smt.NewNot(x), true
	case *minij.Binary:
		switch n.Op {
		case "&&":
			x, ok1 := translateBool(n.X, env)
			y, ok2 := translateBool(n.Y, env)
			if !ok1 || !ok2 {
				return nil, false
			}
			return smt.NewAnd(x, y), true
		case "||":
			x, ok1 := translateBool(n.X, env)
			y, ok2 := translateBool(n.Y, env)
			if !ok1 || !ok2 {
				return nil, false
			}
			return smt.NewOr(x, y), true
		case "==", "!=", "<", "<=", ">", ">=":
			return translateCmp(n, env)
		}
		return nil, false
	default:
		// A nullary getter in boolean position inlines to its body's
		// formula (normalization).
		if call, isCall := e.(*minij.Call); isCall {
			if f, ok := inlineGetterBool(call, env); ok {
				return f, true
			}
		}
		// A bare term used as a boolean: path becomes a state predicate,
		// constant folds.
		t, ok := translateTerm(e, env)
		if !ok {
			return nil, false
		}
		if t.isConst {
			if t.c.Kind == minij.TypeBool {
				if t.c.Bool {
					return smt.True(), true
				}
				return smt.False(), true
			}
			return nil, false
		}
		return smt.NewAtom(smt.BoolAtom(t.path)), true
	}
}

var cmpOps = map[string]smt.CmpOp{
	"==": smt.OpEq, "!=": smt.OpNe, "<": smt.OpLt,
	"<=": smt.OpLe, ">": smt.OpGt, ">=": smt.OpGe,
}

func translateCmp(n *minij.Binary, env Env) (smt.Formula, bool) {
	op := cmpOps[n.Op]
	// Getter-vs-boolean-constant comparisons inline the getter side so
	// `l.isValid() == false` and `!l.isValid()` normalize identically.
	if op == smt.OpEq || op == smt.OpNe {
		if f, ok := cmpBoolInline(n.X, n.Y, op, env); ok {
			return f, true
		}
		if f, ok := cmpBoolInline(n.Y, n.X, op, env); ok {
			return f, true
		}
	}
	x, ok1 := translateTerm(n.X, env)
	y, ok2 := translateTerm(n.Y, env)
	if !ok1 || !ok2 {
		return nil, false
	}
	// Orient path-vs-const comparisons path-first.
	if x.isConst && y.isPath {
		x, y = y, x
		op = op.Flip()
	}
	switch {
	case x.isPath && y.isPath:
		return smt.NewAtom(smt.CmpVAtom(x.path, op, y.path)), true
	case x.isPath && y.isConst:
		return atomForPathConst(x.path, op, y.c)
	case x.isConst && y.isConst:
		return foldConstCmp(x.c, op, y.c)
	}
	return nil, false
}

// cmpBoolInline handles `getterCall (==|!=) boolConst` by inlining the
// getter body.
func cmpBoolInline(callSide, constSide minij.Expr, op smt.CmpOp, env Env) (smt.Formula, bool) {
	call, isCall := callSide.(*minij.Call)
	if !isCall {
		return nil, false
	}
	c, isConst := translateTerm(constSide, env)
	if !isConst || !c.isConst || c.c.Kind != minij.TypeBool {
		return nil, false
	}
	f, ok := inlineGetterBool(call, env)
	if !ok {
		return nil, false
	}
	if (op == smt.OpEq) == c.c.Bool {
		return f, true
	}
	return smt.NNF(smt.NewNot(f)), true
}

func atomForPathConst(path string, op smt.CmpOp, c ConstVal) (smt.Formula, bool) {
	switch c.Kind {
	case minij.TypeInt:
		return smt.NewAtom(smt.CmpCAtom(path, op, c.Int)), true
	case minij.TypeNull:
		switch op {
		case smt.OpEq:
			return smt.NewAtom(smt.NullAtom(path)), true
		case smt.OpNe:
			return smt.NewNot(smt.NewAtom(smt.NullAtom(path))), true
		}
		return nil, false
	case minij.TypeBool:
		if op != smt.OpEq && op != smt.OpNe {
			return nil, false
		}
		pos := (op == smt.OpEq) == c.Bool
		if pos {
			return smt.NewAtom(smt.BoolAtom(path)), true
		}
		return smt.NewNot(smt.NewAtom(smt.BoolAtom(path))), true
	case minij.TypeString:
		if op != smt.OpEq && op != smt.OpNe {
			return nil, false
		}
		return smt.NewAtom(smt.StrEqAtom(path, op, c.Str)), true
	}
	return nil, false
}

func foldConstCmp(a ConstVal, op smt.CmpOp, b ConstVal) (smt.Formula, bool) {
	if a.Kind != b.Kind {
		// null vs string etc. — only equality folds.
		if op == smt.OpEq {
			return smt.False(), true
		}
		if op == smt.OpNe {
			return smt.True(), true
		}
		return nil, false
	}
	var res bool
	switch a.Kind {
	case minij.TypeInt:
		switch op {
		case smt.OpEq:
			res = a.Int == b.Int
		case smt.OpNe:
			res = a.Int != b.Int
		case smt.OpLt:
			res = a.Int < b.Int
		case smt.OpLe:
			res = a.Int <= b.Int
		case smt.OpGt:
			res = a.Int > b.Int
		case smt.OpGe:
			res = a.Int >= b.Int
		}
	case minij.TypeBool:
		switch op {
		case smt.OpEq:
			res = a.Bool == b.Bool
		case smt.OpNe:
			res = a.Bool != b.Bool
		default:
			return nil, false
		}
	case minij.TypeString:
		switch op {
		case smt.OpEq:
			res = a.Str == b.Str
		case smt.OpNe:
			res = a.Str != b.Str
		default:
			return nil, false
		}
	case minij.TypeNull:
		switch op {
		case smt.OpEq:
			res = true
		case smt.OpNe:
			res = false
		default:
			return nil, false
		}
	}
	if res {
		return smt.True(), true
	}
	return smt.False(), true
}

// translateTerm resolves a term to a path or a constant.
func translateTerm(e minij.Expr, env Env) (symTerm, bool) {
	switch n := e.(type) {
	case *minij.IntLit:
		return symTerm{isConst: true, c: IntConst(n.Value)}, true
	case *minij.BoolLit:
		return symTerm{isConst: true, c: BoolConst(n.Value)}, true
	case *minij.StrLit:
		return symTerm{isConst: true, c: StrConst(n.Value)}, true
	case *minij.NullLit:
		return symTerm{isConst: true, c: NullConst()}, true
	case *minij.Unary:
		if n.Op == "-" {
			t, ok := translateTerm(n.X, env)
			if ok && t.isConst && t.c.Kind == minij.TypeInt {
				t.c.Int = -t.c.Int
				return t, true
			}
		}
		return symTerm{}, false
	case *minij.Ident:
		if p, ok := env.PathOf(n.Name); ok {
			return resolveConst(p, env), true
		}
		return symTerm{}, false
	case *minij.FieldAccess:
		base, ok := translateTerm(n.Recv, env)
		if !ok || !base.isPath {
			return symTerm{}, false
		}
		return resolveConst(base.path+"."+n.Name, env), true
	case *minij.Call:
		if n.Recv == nil || len(n.Args) != 0 {
			return symTerm{}, false
		}
		// A pure getter whose body is itself a term inlines directly
		// (s.isClosing() over `return closing;` becomes s.closing).
		if genv, body := inlineGetterEnv(n, env); genv != nil {
			if t, ok := translateTerm(body, genv); ok {
				return t, true
			}
		}
		// Otherwise the nullary call canonicalizes to a path
		// (s.isClosing() -> s.isClosing), per the predicate language.
		base, ok := translateTerm(n.Recv, env)
		if !ok || !base.isPath {
			return symTerm{}, false
		}
		return resolveConst(base.path+"."+n.Name, env), true
	}
	return symTerm{}, false
}

func resolveConst(path string, env Env) symTerm {
	if c, ok := env.ConstOf(path); ok {
		return symTerm{isConst: true, c: c}
	}
	return symTerm{isPath: true, path: path}
}

// LiteralConst extracts a ConstVal from a literal expression, if it is one.
func LiteralConst(e minij.Expr) (ConstVal, bool) {
	switch n := e.(type) {
	case *minij.IntLit:
		return IntConst(n.Value), true
	case *minij.BoolLit:
		return BoolConst(n.Value), true
	case *minij.StrLit:
		return StrConst(n.Value), true
	case *minij.NullLit:
		return NullConst(), true
	case *minij.Unary:
		if n.Op == "-" {
			if c, ok := LiteralConst(n.X); ok && c.Kind == minij.TypeInt {
				c.Int = -c.Int
				return c, true
			}
		}
	}
	return ConstVal{}, false
}

// FormatConst renders a constant for diagnostics.
func FormatConst(c ConstVal) string {
	switch c.Kind {
	case minij.TypeInt:
		return strconv.FormatInt(c.Int, 10)
	case minij.TypeBool:
		return strconv.FormatBool(c.Bool)
	case minij.TypeString:
		return strconv.Quote(c.Str)
	case minij.TypeNull:
		return "null"
	}
	return "<?const>"
}
