package minij

// WalkStmts visits s and every statement nested within it, in source order,
// calling fn on each. Nil statements are skipped.
func WalkStmts(s Stmt, fn func(Stmt)) {
	if s == nil {
		return
	}
	fn(s)
	switch n := s.(type) {
	case *Block:
		for _, st := range n.Stmts {
			WalkStmts(st, fn)
		}
	case *If:
		WalkStmts(n.Then, fn)
		WalkStmts(n.Else, fn)
	case *While:
		WalkStmts(n.Body, fn)
	case *For:
		WalkStmts(n.Init, fn)
		WalkStmts(n.Post, fn)
		WalkStmts(n.Body, fn)
	case *ForEach:
		WalkStmts(n.Body, fn)
	case *Try:
		WalkStmts(n.Body, fn)
		WalkStmts(n.Catch, fn)
	case *Sync:
		WalkStmts(n.Body, fn)
	}
}

// WalkExprs visits every expression contained in statement s (including
// nested statements' expressions), calling fn on each expression node and
// its subexpressions in evaluation order.
func WalkExprs(s Stmt, fn func(Expr)) {
	WalkStmts(s, func(st Stmt) {
		for _, e := range stmtExprs(st) {
			walkExpr(e, fn)
		}
	})
}

// stmtExprs returns the immediate expressions of a statement (not those of
// nested statements).
func stmtExprs(s Stmt) []Expr {
	switch n := s.(type) {
	case *VarDecl:
		if n.Init != nil {
			return []Expr{n.Init}
		}
	case *Assign:
		return []Expr{n.Target, n.Value}
	case *If:
		return []Expr{n.Cond}
	case *While:
		return []Expr{n.Cond}
	case *For:
		if n.Cond != nil {
			return []Expr{n.Cond}
		}
	case *ForEach:
		return []Expr{n.Iter}
	case *Return:
		if n.Value != nil {
			return []Expr{n.Value}
		}
	case *Throw:
		return []Expr{n.Value}
	case *Sync:
		return []Expr{n.Lock}
	case *ExprStmt:
		return []Expr{n.E}
	}
	return nil
}

// walkExpr visits e and its subexpressions.
func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch n := e.(type) {
	case *FieldAccess:
		walkExpr(n.Recv, fn)
	case *Call:
		walkExpr(n.Recv, fn)
		for _, a := range n.Args {
			walkExpr(a, fn)
		}
	case *New:
		for _, a := range n.Args {
			walkExpr(a, fn)
		}
	case *Unary:
		walkExpr(n.X, fn)
	case *Binary:
		walkExpr(n.X, fn)
		walkExpr(n.Y, fn)
	}
}

// Calls returns every call expression appearing anywhere in s.
func Calls(s Stmt) []*Call {
	var out []*Call
	WalkExprs(s, func(e Expr) {
		if c, ok := e.(*Call); ok {
			out = append(out, c)
		}
	})
	return out
}

// IdentsIn returns the set of bare identifier names appearing in expression e.
func IdentsIn(e Expr) map[string]bool {
	out := map[string]bool{}
	walkExpr(e, func(x Expr) {
		if id, ok := x.(*Ident); ok {
			out[id.Name] = true
		}
	})
	return out
}
