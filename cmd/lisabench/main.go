// Command lisabench regenerates every table and figure of the paper from
// the simulated corpus. Run one experiment with -exp <name>, or all of
// them with -exp all (the default). Full runs end with a wall-clock
// ledger showing where the sweep spent its time, plus cache and solver
// summaries; -json writes the same numbers to a machine-readable file so
// the perf trajectory can be tracked across PRs (BENCH_N.json).
//
// Usage:
//
//	lisabench [-exp study|timeline|ephemeral|comparison|workflow|
//	                generalize|hbase|hdfs|reliability|compose|ablations|
//	                chaos|stress|all]
//	          [-timings=false] [-seed N] [-json FILE] [-stress-sites N]
//	lisabench -diff BENCH_N.json
//	    Perf-regression gate: run the full sweep quietly and compare the
//	    deterministic cost counters of the tracked hot paths (solver
//	    queries/searches/nodes, snapshot compiles/graph builds) against
//	    the committed baseline; exits 1 on >25% growth. Wall clocks and
//	    hit rates are printed for context but never gate (they depend on
//	    machine load; the counters are exactly reproducible).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"lisa/internal/corpus"
	"lisa/internal/experiments"
	"lisa/internal/program"
	"lisa/internal/report"
	"lisa/internal/smt"
	"lisa/internal/store"
)

// benchOutput is the machine-readable summary -json writes: experiment
// wall clocks plus the process-wide cache and solver counters. Benchmarks
// carries externally-measured go-test bench results when a committed
// BENCH_N.json merges them in.
type benchOutput struct {
	ExperimentsMS map[string]float64 `json:"experiments_ms"`
	Snapshot      program.CacheStats `json:"snapshot_cache"`
	Solver        smt.SolverStats    `json:"solver"`
	Benchmarks    map[string]string  `json:"benchmarks,omitempty"`
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (use 'all' for every experiment); one of "+experiments.Names())
	timings := flag.Bool("timings", true, "print the per-experiment wall-clock ledger after a full run")
	seed := flag.Int64("seed", 1, "deterministic seed for seeded experiments (chaos fault plan)")
	jsonPath := flag.String("json", "", "write bench/summary numbers (experiment wall clock, cache and solver stats) to this file")
	diffPath := flag.String("diff", "", "run the full sweep quietly and diff its counters against this committed BENCH_*.json; exit non-zero on >25% regression in the tracked hot-path counters")
	storeDir := flag.String("store", "", "back the process-wide snapshot and solver caches with an on-disk store at this directory (default off: counters then match a store-less run exactly)")
	stressSites := flag.Int("stress-sites", experiments.StressSites, "guarded call sites the E-P1 stress corpus generates (the paper-scale run uses 10000; the stress run uses private caches, so the -diff counters are unaffected)")
	flag.Parse()

	experiments.ChaosSeed = *seed
	experiments.StressSites = *stressSites
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lisabench: open store:", err)
			os.Exit(2)
		}
		program.DefaultCache().SetStore(st)
		smt.DefaultQueryCache().SetStore(st)
		defer func() {
			st.Flush()
			// The store's own ledger, write failures included: a bench run
			// whose persistence silently failed is not a baseline.
			s := st.Stats()
			fmt.Printf("store: %d records, %d puts, %d appends, %d write errors\n",
				s.Records, s.Puts, s.Writes, s.WriteErrors)
			if s.WriteErrors > 0 {
				fmt.Printf("store: last write error: %s\n", s.LastWriteError)
			}
			st.Close()
		}()
	}

	c := corpus.Load()
	if *diffPath != "" {
		if runDiff(*diffPath, c) > 0 {
			os.Exit(1)
		}
		return
	}
	if *exp == "all" {
		// Drive the registry directly so each experiment's wall clock is
		// recorded; the output matches experiments.Run("all", c).
		tm := report.NewTimings()
		for _, e := range experiments.Registry {
			fmt.Print(report.Section("EXPERIMENT " + e.Name + ": " + e.Title))
			var out string
			tm.Time(e.Name, func() { out = e.Run(c) })
			fmt.Print(out)
		}
		if *timings {
			fmt.Print(tm.Render("Wall clock by experiment"))
			// Experiments replay the same corpus versions over and over;
			// the snapshot cache shows how much front-end work was shared.
			st := program.Stats()
			fmt.Printf("snapshot cache: %d loads, %d hits, %d distinct versions compiled, %d call graphs built, %d evictions\n",
				st.Hits+st.Misses, st.Hits, st.Compiles, st.GraphBuilds, st.Evictions)
			// The solver sits under every verdict; its ledger shows how the
			// sweep's SMT time splits between search and theory, and how
			// much the query cache absorbed.
			ss := smt.Stats()
			sv := report.NewTimings()
			sv.Record("dpll search", ss.SolveTime-ss.TheoryTime)
			sv.Record("theory propagation", ss.TheoryTime)
			fmt.Print(sv.Render("Solver wall clock"))
			fmt.Print(solverLine(ss))
		}
		if *jsonPath != "" {
			writeJSON(*jsonPath, tm)
		}
		return
	}
	tm := report.NewTimings()
	var out string
	var err error
	tm.Time(*exp, func() { out, err = experiments.Run(*exp, c) })
	if err != nil {
		fmt.Fprintln(os.Stderr, "lisabench:", err)
		os.Exit(2)
	}
	fmt.Print(out)
	if *jsonPath != "" {
		writeJSON(*jsonPath, tm)
	}
}

// solverLine renders the one-line solver summary shown after a full sweep
// (the line quoted in the README).
func solverLine(ss smt.SolverStats) string {
	return fmt.Sprintf("solver: %d queries, %d cache hits, %d misses, %d evictions; %d solves over %d search nodes\n",
		ss.Queries, ss.CacheHits, ss.CacheMisses, ss.CacheEvictions, ss.Solves, ss.Nodes)
}

// writeJSON dumps the run's summary numbers for the perf trajectory.
func writeJSON(path string, tm *report.Timings) {
	out := benchOutput{
		ExperimentsMS: map[string]float64{},
		Snapshot:      program.Stats(),
		Solver:        smt.Stats(),
	}
	for _, name := range tm.Names() {
		out.ExperimentsMS[name] = float64(tm.Get(name)) / float64(time.Millisecond)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "lisabench: encode json:", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "lisabench: write json:", err)
		os.Exit(2)
	}
}
