package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"lisa/internal/corpus"
)

// TestGracefulShutdown: while a request is in flight, Drain refuses new
// requests immediately, waits for the in-flight one to finish, and the
// history ring can then be flushed with the completed request in it.
func TestGracefulShutdown(t *testing.T) {
	srv := New(Config{Corpus: corpus.Load()})
	srv.testRequestDelay = 200 * time.Millisecond
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := NewClient(ts.URL)
	cs := corpusCase(t, "zk-ephemeral")

	type result struct {
		resp *GateResponse
		err  error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := cl.Gate(GateRequest{Case: cs.ID, Change: cs.Head()})
		inflight <- result{resp, err}
	}()

	// The test delay holds the request open long enough to observe it.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Inflight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()

	// New requests are refused as soon as draining starts, while the old
	// one is still running.
	refuseDeadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := cl.Gate(GateRequest{Case: cs.ID, Change: cs.Head()}); err != nil {
			break // refused (503) — draining is visible
		}
		if time.Now().After(refuseDeadline) {
			t.Fatal("server kept accepting requests during drain")
		}
	}

	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	got := <-inflight
	if got.err != nil {
		t.Fatalf("in-flight request should complete during drain, got %v", got.err)
	}
	if got.resp.Report == "" {
		t.Fatal("in-flight request returned an empty report")
	}

	// The completed request is auditable post-drain.
	var buf bytes.Buffer
	if err := srv.History().Flush(&buf); err != nil {
		t.Fatal(err)
	}
	var entries []HistoryEntry
	if err := json.Unmarshal(buf.Bytes(), &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 || entries[len(entries)-1].Kind != "gate" {
		t.Fatalf("flushed history missing the drained gate: %+v", entries)
	}
}

// TestDrainDeadline: a Drain whose context expires while a request is
// still running reports it instead of hanging.
func TestDrainDeadline(t *testing.T) {
	srv := New(Config{Corpus: corpus.Load()})
	srv.testRequestDelay = 300 * time.Millisecond
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := NewClient(ts.URL)
	cs := corpusCase(t, "zk-ephemeral")

	done := make(chan struct{})
	go func() {
		cl.Gate(GateRequest{Case: cs.ID, Change: cs.Head()})
		close(done)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Inflight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err == nil {
		t.Fatal("drain with expired deadline and an in-flight request should error")
	}
	<-done

	// A later unbounded drain settles cleanly.
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestDrainIdempotentOnIdleServer: draining an idle server returns
// immediately and keeps refusing.
func TestDrainIdempotentOnIdleServer(t *testing.T) {
	srv, cl, done := newTestServer(t, Config{})
	defer done()
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Gate(GateRequest{Case: "zk-ephemeral", Change: "class X {}"}); err == nil {
		t.Fatal("drained server accepted a request")
	}
	if err := cl.Health(); err == nil {
		t.Fatal("health should report draining")
	}
}
