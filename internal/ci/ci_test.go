package ci

import (
	"strings"
	"testing"

	"lisa/internal/contract"
	"lisa/internal/core"
	"lisa/internal/sched"
	"lisa/internal/ticket"
)

const sysFixed = `
class Session {
	bool closing;
}

class DataTree {
	map nodes;

	void createEphemeral(string path, Session owner) {
		nodes.put(path, owner);
	}
}

class PrepProcessor {
	DataTree tree;

	void processCreate(string path, Session s) {
		if (s == null || s.closing) {
			throw "KeeperException";
		}
		tree.createEphemeral(path, s);
	}
}
`

const sysRegressed = sysFixed + `
class SessionTracker {
	DataTree tree;

	void touchAndRegister(string path, Session s) {
		if (s == null) {
			return;
		}
		tree.createEphemeral(path, s);
	}
}
`

const sysSafeChange = sysFixed + `
class SessionTracker {
	DataTree tree;

	void touchAndRegister(string path, Session s) {
		if (s == null || s.closing) {
			return;
		}
		tree.createEphemeral(path, s);
	}
}
`

func engineWithRule(t *testing.T) *core.Engine {
	t.Helper()
	e := core.New()
	_, err := e.ProcessTicket(&ticket.Ticket{
		ID:          "ZK-1208",
		Title:       "Ephemeral node on closing session",
		BuggySource: strings.Replace(sysFixed, " || s.closing", "", 1),
		FixedSource: sysFixed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestGateBlocksRegression(t *testing.T) {
	e := engineWithRule(t)
	res, err := Gate(e, Change{
		Author:    "dev",
		Summary:   "add session tracker fast path",
		OldSource: sysFixed,
		NewSource: sysRegressed,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Fatalf("regression passed the gate:\n%s", res.Summary())
	}
	sum := res.Summary()
	if !strings.Contains(sum, "BLOCKED") || !strings.Contains(sum, "SessionTracker.touchAndRegister") {
		t.Errorf("summary:\n%s", sum)
	}
	if res.DiffStat == "" {
		t.Error("missing diff stat")
	}
}

func TestGatePassesSafeChange(t *testing.T) {
	e := engineWithRule(t)
	res, err := Gate(e, Change{
		Summary:   "add session tracker with proper guard",
		OldSource: sysFixed,
		NewSource: sysSafeChange,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("safe change blocked:\n%s", res.Summary())
	}
}

func TestGateBlocksBrokenBuild(t *testing.T) {
	e := engineWithRule(t)
	res, err := Gate(e, Change{NewSource: "class Broken {"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Error("broken build passed")
	}
	if !strings.Contains(res.Summary(), "does not build") {
		t.Errorf("summary:\n%s", res.Summary())
	}
}

func TestGateWarnsOnUncoveredPath(t *testing.T) {
	e := engineWithRule(t)
	tests := []ticket.TestCase{{
		Name:        "T.unrelated",
		Description: "unrelated arithmetic",
		Class:       "T",
		Method:      "unrelated",
		Source: `
class T {
	static void unrelated() {
		assertTrue(true, "ok");
	}
}
`,
	}}
	res, err := Gate(e, Change{NewSource: sysSafeChange}, tests)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("blocked:\n%s", res.Summary())
	}
	warned := false
	for _, f := range res.Findings {
		if f.Severity == "WARN" && strings.Contains(f.Text, "no selected test") {
			warned = true
		}
	}
	if !warned {
		t.Errorf("expected uncovered-path warning:\n%s", res.Summary())
	}
}

// TestGateBlocksPostconditionViolation: an authored contract with an
// ensure-clause blocks a change whose implementation stops establishing the
// postcondition.
func TestGateBlocksPostconditionViolation(t *testing.T) {
	source := `
class Txn {
	string id;
	bool applied;
}

class Ledger {
	list entries;

	void init() {
		entries = newList();
	}

	void commit(Txn t) {
		entries.add(t.id);
		t.applied = true;
	}
}

class API {
	Ledger ledger;

	void init(Ledger l) {
		ledger = l;
	}

	void submit(Txn t) {
		if (t == null) {
			throw "NullTxn";
		}
		ledger.commit(t);
	}
}
`
	broken := strings.Replace(source, "\t\tentries.add(t.id);\n\t\tt.applied = true;", "\t\tentries.add(t.id);", 1)
	if broken == source {
		t.Fatal("mutation failed")
	}
	sems, err := contract.ParseSpec(`
rule txn-applied
description: Committing a transaction marks it applied.
target: Ledger.commit
bind: t = arg 0
require: t != null
ensure: t.applied == true
`)
	if err != nil {
		t.Fatal(err)
	}
	e := core.New()
	for _, sem := range sems {
		if err := e.Registry.Add(sem); err != nil {
			t.Fatal(err)
		}
	}
	tests := []ticket.TestCase{{
		Name:        "LedgerTest.submitCommits",
		Description: "submitting a transaction commits it to the ledger applied",
		Class:       "LedgerTest", Method: "submitCommits",
		Source: `
class LedgerTest {
	static void submitCommits() {
		Ledger l = new Ledger();
		API api = new API(l);
		Txn t = new Txn();
		t.id = "tx1";
		api.submit(t);
	}
}
`,
	}}
	good, err := Gate(e, Change{Summary: "baseline", NewSource: source}, tests)
	if err != nil {
		t.Fatal(err)
	}
	if !good.Pass {
		t.Fatalf("baseline blocked:\n%s", good.Summary())
	}
	bad, err := Gate(e, Change{Summary: "drop applied flag", OldSource: source, NewSource: broken}, tests)
	if err != nil {
		t.Fatal(err)
	}
	if bad.Pass {
		t.Fatalf("postcondition regression passed the gate:\n%s", bad.Summary())
	}
	if !strings.Contains(bad.Summary(), "postcondition violated") {
		t.Errorf("summary:\n%s", bad.Summary())
	}
}

// TestGateWithScheduler: the scheduled gate reaches the same decision as
// the sequential gate, and the second gate on the same scheduler skips
// every cached contract.
func TestGateWithScheduler(t *testing.T) {
	e := engineWithRule(t)
	s := sched.New()
	opts := GateOptions{Scheduler: s, Workers: 4, Incremental: true}
	first, err := GateWith(e, Change{
		Summary:   "add session tracker fast path",
		OldSource: sysFixed,
		NewSource: sysRegressed,
	}, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Pass {
		t.Fatalf("regression passed the scheduled gate:\n%s", first.Summary())
	}
	if first.Sched == nil || first.Asserted == 0 {
		t.Fatalf("missing scheduler stats: %+v", first.Sched)
	}
	seq, err := Gate(e, Change{OldSource: sysFixed, NewSource: sysRegressed}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Pass != first.Pass || len(seq.Findings) != len(first.Findings) {
		t.Errorf("scheduled gate diverged from sequential:\n%s\nvs\n%s", first.Summary(), seq.Summary())
	}

	second, err := GateWith(e, Change{
		Summary:   "resubmit unchanged",
		OldSource: sysRegressed,
		NewSource: sysRegressed,
	}, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.Pass {
		t.Error("unchanged regression passed on resubmit")
	}
	if second.Skipped == 0 || second.Sched.Executed != 0 {
		t.Errorf("resubmit did not hit cache: asserted=%d skipped=%d executed=%d",
			second.Asserted, second.Skipped, second.Sched.Executed)
	}
}

// TestSummaryGolden pins the exact summary text, including the
// asserted-vs-skipped contract counts and scheduler job lines.
func TestSummaryGolden(t *testing.T) {
	res := &Result{
		Pass:     false,
		DiffStat: "+7 -0 lines",
		Report:   &core.AssertReport{},
		Asserted: 1,
		Skipped:  2,
		Sched: &sched.Stats{
			Workers: 4, Jobs: 6, Executed: 2, CacheHits: 4,
			ImpactedJobs: 2, DirtyMethods: []string{"SessionTracker.touchAndRegister"},
		},
		Findings: []Finding{
			{Severity: "BLOCK", Text: "[zk-1208] violation"},
			{Severity: "WARN", Text: "[zk-1208] uncovered path"},
		},
	}
	want := `GATE: BLOCKED (+7 -0 lines)
  contracts: 1 asserted, 2 skipped (cached)
  jobs: 6 total, 2 executed, 4 cache hits (workers=4)
  dirty: SessionTracker.touchAndRegister (2 of 6 jobs impacted)
  BLOCK [zk-1208] violation
  WARN  [zk-1208] uncovered path
`
	if got := res.Summary(); got != want {
		t.Errorf("summary mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	seq := &Result{Pass: true, Report: &core.AssertReport{}, Asserted: 3}
	wantSeq := `GATE: PASS
  contracts: 3 asserted, 0 skipped (cached)
`
	if got := seq.Summary(); got != wantSeq {
		t.Errorf("sequential summary mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, wantSeq)
	}

	broken := &Result{Pass: false, Findings: []Finding{{Severity: "BLOCK", Text: "change does not build: x"}}}
	wantBroken := `GATE: BLOCKED
  BLOCK change does not build: x
`
	if got := broken.Summary(); got != wantBroken {
		t.Errorf("broken-build summary mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, wantBroken)
	}
}
