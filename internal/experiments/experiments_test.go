package experiments

import (
	"fmt"
	"strings"
	"testing"

	"lisa/internal/corpus"
)

func TestEveryExperimentRuns(t *testing.T) {
	c := corpus.Load()
	for _, e := range Registry {
		out := e.Run(c)
		if strings.Contains(out, "error:") {
			t.Errorf("experiment %s reported an error:\n%s", e.Name, out)
		}
		if len(out) < 100 {
			t.Errorf("experiment %s output suspiciously short:\n%s", e.Name, out)
		}
	}
}

func TestRunByName(t *testing.T) {
	c := corpus.Load()
	out, err := Run("study", c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "regression cases") || !strings.Contains(out, "16") {
		t.Errorf("study output:\n%s", out)
	}
	if _, err := Run("nope", c); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestTimelineCatchesAllRecurrences(t *testing.T) {
	c := corpus.Load()
	out := RunTimeline(c)
	if !strings.Contains(out, "18/18 recurrences would have been blocked") {
		t.Errorf("timeline note missing or wrong:\n%s", out)
	}
}

func TestComparisonShape(t *testing.T) {
	c := corpus.Load()
	out := RunComparison(c)
	// Testing misses every regression; LISA and exhaustive catch all 18.
	if !strings.Contains(out, "0/18") {
		t.Errorf("testing baseline should miss all regressions:\n%s", out)
	}
	if strings.Count(out, "18/18") != 2 {
		t.Errorf("LISA and exhaustive should both detect 18/18:\n%s", out)
	}
}

func TestGeneralizeShape(t *testing.T) {
	c := corpus.Load()
	out := RunGeneralize(c)
	if !strings.Contains(out, "literal (site-specific)") {
		t.Fatalf("output:\n%s", out)
	}
	// Literal misses (0 violations, no), generalized catches.
	lines := strings.Split(out, "\n")
	var litLine, genLine string
	for _, l := range lines {
		if strings.Contains(l, "literal (site-specific)") {
			litLine = l
		}
		if strings.Contains(l, "generalized (behavior class)") {
			genLine = l
		}
	}
	if !strings.Contains(litLine, "no") {
		t.Errorf("literal line: %s", litLine)
	}
	if !strings.Contains(genLine, "yes") {
		t.Errorf("general line: %s", genLine)
	}
	if !strings.Contains(out, "0 false positives") {
		t.Errorf("expected zero false positives on fixed heads:\n%s", out)
	}
}

func TestLatestScans(t *testing.T) {
	c := corpus.Load()
	hb := RunHBaseBug(c)
	if !strings.Contains(hb, "2 previously unknown unguarded path(s)") {
		t.Errorf("hbase scan:\n%s", hb)
	}
	hd := RunHDFSBug(c)
	if !strings.Contains(hd, "1 previously unknown unguarded path(s)") {
		t.Errorf("hdfs scan:\n%s", hd)
	}
}

func TestReliabilitySweepShape(t *testing.T) {
	c := corpus.Load()
	points := ReliabilitySweep(c, []float64{0, 0.3}, 2)
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	clean := points[0]
	if clean.RawPrecision < 0.999 || clean.RawRecall < 0.999 {
		t.Errorf("zero-noise point should be perfect: %+v", clean)
	}
	noisy := points[1]
	if noisy.RawPrecision >= clean.RawPrecision {
		t.Errorf("noise should hurt raw precision: %+v vs %+v", noisy, clean)
	}
	if noisy.CheckedPrecision < noisy.RawPrecision {
		t.Errorf("cross-checking should not hurt precision: %+v", noisy)
	}
	if noisy.CheckedPrecision < 0.95 {
		t.Errorf("cross-checked precision should stay high: %+v", noisy)
	}
	if noisy.RejectedPerturbed == 0 {
		t.Error("cross-check rejected no perturbed rules at 0.3 noise")
	}
}

func TestComposeStudy(t *testing.T) {
	c := corpus.Load()
	results := ComposeStudy(c)
	if len(results) < 14 {
		t.Fatalf("compose results = %d, want >= 14 (state-rule cases)", len(results))
	}
	for _, r := range results {
		if !r.Consistent {
			t.Errorf("case %s: inconsistent composition", r.CaseID)
		}
		if !r.Entails {
			t.Errorf("case %s: composition does not entail components", r.CaseID)
		}
	}
}

func TestAblationOutput(t *testing.T) {
	c := corpus.Load()
	out := RunAblations(c)
	for _, want := range []string{
		"relevant-variable pruning",
		"complement check vs naive",
		"similarity-based test selection",
		"VIOLATION",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q:\n%s", want, out)
		}
	}
	// The naive check must pass the omitted-ttl trace that the complement
	// check flags.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "omits the ttl check") {
			if !strings.Contains(line, "VIOLATION") || strings.Count(line, "VERIFIED") != 1 {
				t.Errorf("ttl line should show complement=VIOLATION naive=VERIFIED: %s", line)
			}
		}
	}
}

func TestMutationSweepShape(t *testing.T) {
	c := corpus.Load()
	out := RunMutation(c)
	// Semantic assertion must catch every guard-weakening mutant; suite
	// replay catches only the scenarios pinned by regression tests.
	if !strings.Contains(out, "56/56 mutants caught by semantic assertion") {
		t.Errorf("mutation sweep note:\n%s", out)
	}
	var lisaTotal, testTotal int
	if _, err := fmt.Sscanf(lastNote(out), "note: %d/56 mutants caught by semantic assertion vs %d/56", &lisaTotal, &testTotal); err == nil {
		if testTotal >= lisaTotal {
			t.Errorf("tests should catch strictly fewer mutants: lisa=%d tests=%d", lisaTotal, testTotal)
		}
	}
}

func lastNote(out string) string {
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for i := len(lines) - 1; i >= 0; i-- {
		if strings.Contains(lines[i], "note:") {
			return strings.TrimSpace(lines[i])
		}
	}
	return ""
}
