package concolic

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"lisa/internal/contract"
	"lisa/internal/faultinject"
	"lisa/internal/minij"
	"lisa/internal/smt"
)

// GuardStep records one branch decision along a static path, for reports.
type GuardStep struct {
	Guard string // canonical guard text
	Taken bool
	Pos   minij.Pos
}

// String renders the step.
func (g GuardStep) String() string {
	if g.Taken {
		return g.Guard
	}
	return "!(" + g.Guard + ")"
}

// StaticPath is one intraprocedural branch path from the entry of the
// site's enclosing method to the target statement.
type StaticPath struct {
	Site *contract.Site
	// Cond is the relevance-filtered path condition: the conjunction of
	// recorded guard formulas whose roots intersect the slot operand roots
	// (the paper's pruning).
	Cond smt.Formula
	// FullCond is the unfiltered path condition (for the pruning ablation).
	FullCond smt.Formula
	// Bindings maps slot names to their operand paths at emission.
	Bindings map[string]string
	// Guards lists the branch decisions along the path in order.
	Guards []GuardStep
}

// String renders the path's decisions.
func (p *StaticPath) String() string {
	if len(p.Guards) == 0 {
		return "(unconditional)"
	}
	parts := make([]string, len(p.Guards))
	for i, g := range p.Guards {
		parts[i] = g.String()
	}
	return strings.Join(parts, " ; ")
}

// Options configure static path enumeration.
type Options struct {
	// MaxPaths bounds emitted paths per site (0 = DefaultMaxPaths).
	MaxPaths int
	// NoPrune disables relevance filtering, so Cond equals FullCond
	// (the pruning ablation).
	NoPrune bool
	// Ctx, when non-nil, is polled during enumeration; cancellation stops
	// the walk early and reports the result as truncated (callers check
	// the context themselves to distinguish cancellation from a full
	// budget).
	Ctx context.Context
	// Lim bounds the prefix-pruning satisfiability queries issued during
	// enumeration (zero value: solver defaults, no cancellation).
	Lim smt.Limits
	// NoPrefixPrune disables unsat-prefix subtree pruning (the ablation):
	// statically infeasible branch suffixes are then enumerated and
	// discharged path by path as before.
	NoPrefixPrune bool
}

// ctxPollMask throttles the walker's cooperative-cancellation poll: the
// context is checked whenever states&ctxPollMask == 0. The 256-state
// cadence mirrors smt's search poll (and interp's wider step poll) —
// frequent enough that cancellation lands promptly, rare enough that the
// select stays off the enumeration hot path.
const ctxPollMask = 1<<8 - 1

// DefaultMaxPaths bounds path enumeration per site.
const DefaultMaxPaths = 512

// StaticPaths enumerates the intraprocedural branch paths of the site's
// enclosing method that reach the target statement, collecting translated
// guard conditions. Loops contribute at most one iteration per path (their
// guards are recorded once on entry); guards outside the predicate fragment
// fork without contributing a constraint, exactly like the paper's
// "skipped" branches. Paths are deduplicated by their contribution: two
// branch histories with the same filtered condition and bindings are one
// logical path.
func StaticPaths(prog *minij.Program, site *contract.Site, opts Options) (paths []*StaticPath, truncated bool) {
	return staticPathsFrom(prog, site, opts, []*sframe{newSFrame(prog)})
}

// staticPathsFrom enumerates paths to the site's statement starting from
// the given seed states (each carrying conditions inherited from callers).
func staticPathsFrom(prog *minij.Program, site *contract.Site, opts Options, seeds []*sframe) (paths []*StaticPath, truncated bool) {
	if faultinject.Armed() {
		if k, ok := faultinject.At("concolic.paths:" + site.Method.FullName()); ok && k == faultinject.Panic {
			panic("faultinject: concolic.paths " + site.Method.FullName())
		}
	}
	maxPaths := opts.MaxPaths
	if maxPaths <= 0 {
		maxPaths = DefaultMaxPaths
	}
	collector := &siteCollector{site: site, opts: opts, seen: map[string]bool{}}
	trunc := false
	for _, seed := range seeds {
		w := &staticWalker{
			prog:      prog,
			method:    site.Method,
			targetID:  site.Stmt.ID(),
			maxPaths:  maxPaths,
			ctx:       opts.Ctx,
			lim:       opts.Lim,
			prune:     !opts.NoPrefixPrune,
			seedPrune: !opts.NoPrefixPrune,
			emit:      collector.emit,
		}
		// A seed carrying an unsatisfiable inherited prefix can reach
		// nothing; one query kills the whole walk.
		if w.seedPrune && len(seed.conds) > 0 && !w.prefixSat(seed) {
			continue
		}
		w.walkSeq(site.Method.Body.Stmts, 0, seed, walkCtx{}, func(*sframe) {})
		trunc = trunc || w.trunc
	}
	sort.Slice(collector.out, func(i, j int) bool {
		return collector.out[i].Cond.String() < collector.out[j].Cond.String()
	})
	return collector.out, trunc
}

// walkStatesTo enumerates the symbolic states reaching an arbitrary target
// statement of a method from the given seeds (used by chain analysis to
// reach call sites of the next frame).
func walkStatesTo(prog *minij.Program, m *minij.Method, targetID, maxStates int, seeds []*sframe, opts Options) (states []*sframe, truncated bool) {
	trunc := false
	for _, seed := range seeds {
		w := &staticWalker{
			prog:     prog,
			method:   m,
			targetID: targetID,
			maxPaths: maxStates,
			ctx:      opts.Ctx,
			lim:      opts.Lim,
			// Fork-level pruning is deliberately off here: chain states
			// carrying an unsatisfiable prefix die at the next frame's
			// seed check (one query per seed), which costs far less than
			// checking every fork of every intermediate state.
			seedPrune: !opts.NoPrefixPrune,
			emit: func(st *sframe) {
				if len(states) < maxStates {
					states = append(states, st.clone())
				}
			},
		}
		if w.seedPrune && len(seed.conds) > 0 && !w.prefixSat(seed) {
			continue
		}
		w.walkSeq(m.Body.Stmts, 0, seed, walkCtx{}, func(*sframe) {})
		trunc = trunc || w.trunc
		if len(states) >= maxStates {
			return states, true
		}
	}
	return states, trunc
}

// siteCollector converts emitted walker states into deduplicated
// StaticPaths with slot bindings and relevance filtering.
type siteCollector struct {
	site *contract.Site
	opts Options
	seen map[string]bool
	out  []*StaticPath
}

func (c *siteCollector) emit(st *sframe) {
	bindings := map[string]string{}
	relevant := map[string]bool{}
	for slot := range c.site.Semantic.Target.Bind {
		operand, ok := c.site.Bindings[slot]
		if !ok {
			continue
		}
		if t, tok := translateTerm(operand, st); tok && t.isPath {
			bindings[slot] = t.path
			relevant[smt.Root(t.path)] = true
		}
	}
	var filtered, full []smt.Formula
	var guards []GuardStep
	for _, rc := range st.conds {
		full = append(full, rc.f)
		keep := c.opts.NoPrune
		if !keep {
			for r := range smt.Roots(rc.f) {
				if relevant[r] {
					keep = true
					break
				}
			}
		}
		if keep {
			filtered = append(filtered, rc.f)
			guards = append(guards, rc.guard)
		}
	}
	// Known constants over relevant paths are state facts guaranteed on
	// this path (a guard mentioning them folded during translation); they
	// belong in the path condition or the complement check would treat
	// them as unconstrained.
	facts := constFacts(st, relevant)
	filtered = append(filtered, facts...)
	full = append(full, facts...)
	p := &StaticPath{
		Site:     c.site,
		Cond:     smt.NewAnd(filtered...),
		FullCond: smt.NewAnd(full...),
		Bindings: bindings,
		Guards:   guards,
	}
	key := p.dedupKey()
	if c.seen[key] {
		return
	}
	c.seen[key] = true
	c.out = append(c.out, p)
}

// constFacts materializes the environment's constant knowledge about
// relevant paths as formulas, in deterministic order.
func constFacts(st *sframe, relevant map[string]bool) []smt.Formula {
	var keys []string
	for path := range st.consts {
		if relevant[smt.Root(path)] {
			keys = append(keys, path)
		}
	}
	sort.Strings(keys)
	var out []smt.Formula
	for _, path := range keys {
		c := st.consts[path]
		switch c.Kind {
		case minij.TypeBool:
			if c.Bool {
				out = append(out, smt.NewAtom(smt.BoolAtom(path)))
			} else {
				out = append(out, smt.NewNot(smt.NewAtom(smt.BoolAtom(path))))
			}
		case minij.TypeInt:
			out = append(out, smt.NewAtom(smt.CmpCAtom(path, smt.OpEq, c.Int)))
		case minij.TypeString:
			out = append(out, smt.NewAtom(smt.StrEqAtom(path, smt.OpEq, c.Str)))
		case minij.TypeNull:
			out = append(out, smt.NewAtom(smt.NullAtom(path)))
		}
	}
	return out
}

// sframe is the symbolic state of one enumeration branch.
type sframe struct {
	prog     *minij.Program
	aliases  map[string]string
	consts   map[string]ConstVal
	versions map[string]int
	assigned map[string]bool
	conds    []recordedCond
}

type recordedCond struct {
	f     smt.Formula
	guard GuardStep
	// roots memoizes f's variable roots at record time so the
	// prefix-pruning disjointness test in fork does not rewalk every prior
	// condition. A small sorted slice: guards mention a handful of roots,
	// so linear scans beat map allocation on this hot path.
	roots []string
}

// condRoots collects f's distinct variable roots as a sorted slice without
// allocating intermediate maps (unlike smt.Roots).
func condRoots(f smt.Formula) []string {
	var roots []string
	add := func(p string) {
		r := smt.Root(p)
		for _, have := range roots {
			if have == r {
				return
			}
		}
		roots = append(roots, r)
	}
	smt.VisitAtoms(f, func(a smt.Atom) bool {
		add(a.Path)
		if a.Kind == smt.AtomCmpV {
			add(a.Path2)
		}
		return true
	})
	sort.Strings(roots)
	return roots
}

func newSFrame(prog *minij.Program) *sframe {
	return &sframe{
		prog:     prog,
		aliases:  map[string]string{},
		consts:   map[string]ConstVal{},
		versions: map[string]int{},
		assigned: map[string]bool{},
	}
}

func (st *sframe) clone() *sframe {
	c := &sframe{
		prog:     st.prog,
		aliases:  make(map[string]string, len(st.aliases)),
		consts:   make(map[string]ConstVal, len(st.consts)),
		versions: make(map[string]int, len(st.versions)),
		assigned: make(map[string]bool, len(st.assigned)),
		conds:    make([]recordedCond, len(st.conds)),
	}
	for k, v := range st.aliases {
		c.aliases[k] = v
	}
	for k, v := range st.consts {
		c.consts[k] = v
	}
	for k, v := range st.versions {
		c.versions[k] = v
	}
	for k, v := range st.assigned {
		c.assigned[k] = v
	}
	copy(c.conds, st.conds)
	return c
}

// PathOf implements Env: locals resolve through aliases and versioning;
// unknown names are their own root.
func (st *sframe) PathOf(name string) (string, bool) {
	if p, ok := st.aliases[name]; ok {
		return p, true
	}
	if v := st.versions[name]; v > 0 {
		return fmt.Sprintf("%s#%d", name, v), true
	}
	return name, true
}

// ConstOf implements Env.
func (st *sframe) ConstOf(path string) (ConstVal, bool) {
	c, ok := st.consts[path]
	return c, ok
}

// Program implements ProgramProvider, enabling getter normalization.
func (st *sframe) Program() *minij.Program { return st.prog }

// store records the effect of an assignment to name (a bare identifier).
func (st *sframe) store(name string, value minij.Expr) {
	// Invalidate previous knowledge about the old path of this name.
	delete(st.aliases, name)
	cur, _ := st.PathOf(name)
	st.invalidate(cur)
	first := !st.assigned[name]
	st.assigned[name] = true
	if c, ok := LiteralConst(value); ok {
		st.consts[cur] = c
		return
	}
	if t, ok := translateTerm(value, st); ok && t.isPath {
		st.aliases[name] = t.path
		return
	}
	// Opaque: the first binding keeps the bare name as its root; a
	// rebinding bumps the version so stale atoms do not conflate values.
	if !first {
		st.versions[name]++
	}
}

// storePath records the effect of an assignment to a field path.
func (st *sframe) storePath(path string, value minij.Expr) {
	st.invalidate(path)
	if c, ok := LiteralConst(value); ok {
		st.consts[path] = c
	}
}

// invalidate forgets constants for path and everything below it.
func (st *sframe) invalidate(path string) {
	delete(st.consts, path)
	prefix := path + "."
	for k := range st.consts {
		if strings.HasPrefix(k, prefix) {
			delete(st.consts, k)
		}
	}
}

// walkCtx carries control-flow context: the continuation after the
// innermost loop and the active catch handlers.
type walkCtx struct {
	loopExit func(*sframe)
	handlers []handler
}

type handler struct {
	catch *minij.Block
	ctx   walkCtx
	k     func(*sframe)
}

type staticWalker struct {
	prog      *minij.Program
	method    *minij.Method
	targetID  int
	maxPaths  int
	ctx       context.Context
	lim       smt.Limits
	prune     bool
	seedPrune bool
	emit      func(*sframe)
	emitted   int
	states    int
	trunc     bool
	cancelled bool
}

// prefixCond conjoins the state's recorded (unfiltered) conditions.
func prefixCond(st *sframe) smt.Formula {
	fs := make([]smt.Formula, len(st.conds))
	for i, rc := range st.conds {
		fs[i] = rc.f
	}
	return smt.NewAnd(fs...)
}

// prefixDisjoint reports whether f shares no variable roots with the
// state's recorded conditions. Models over disjoint roots merge, so
// conjoining a root-disjoint condition onto a satisfiable prefix is
// satisfiable iff the condition alone is — fork can then discharge the
// much cheaper (and far more cacheable) single-condition query instead of
// re-solving the whole prefix.
// prefixOverlaps reports whether any recorded condition mentions one of
// roots. Both sides are small sorted slices; linear scans allocate nothing.
func prefixOverlaps(roots []string, conds []recordedCond) bool {
	for _, rc := range conds {
		if intersects(rc.roots, roots) {
			return true
		}
	}
	return false
}

// trivSat reports formulas satisfiable by construction, so fork can skip
// the solver for the overwhelmingly common case of a fresh guard over
// untouched variables: a lone literal always has a model (pick the
// variable's value), and a disjunction is satisfiable when any disjunct
// is. The only literal without a model is a self-comparison like x < x —
// those (and anything structurally richer, like a conjunction) fall
// through to the solver.
func trivSat(f smt.Formula) bool {
	switch n := f.(type) {
	case *smt.AtomF:
		return n.Atom.Kind != smt.AtomCmpV || n.Atom.Path != n.Atom.Path2
	case *smt.Not:
		if a, ok := n.X.(*smt.AtomF); ok {
			return a.Atom.Kind != smt.AtomCmpV || a.Atom.Path != a.Atom.Path2
		}
	case *smt.Or:
		for _, x := range n.Xs {
			if trivSat(x) {
				return true
			}
		}
	case *smt.And:
		// A conjunction of bool/null literals is satisfiable whenever no
		// proposition appears in both polarities: distinct propositional
		// atoms never interact through a theory, unlike integer or string
		// comparisons over a shared path (which fall through to the
		// solver). Quadratic over a handful of conjuncts — still far
		// cheaper than rendering a cache key.
		for i, x := range n.Xs {
			a, neg, ok := literalAtom(x)
			if !ok || (a.Kind != smt.AtomBool && a.Kind != smt.AtomNull) {
				return false
			}
			for _, y := range n.Xs[:i] {
				if b, bneg, _ := literalAtom(y); b.Kind == a.Kind && b.Path == a.Path && bneg != neg {
					return false
				}
			}
		}
		return true
	}
	return false
}

// literalAtom unwraps a literal — an atom or a negated atom.
func literalAtom(f smt.Formula) (a smt.Atom, neg, ok bool) {
	switch n := f.(type) {
	case *smt.AtomF:
		return n.Atom, false, true
	case *smt.Not:
		if x, isAtom := n.X.(*smt.AtomF); isAtom {
			return x.Atom, true, true
		}
	}
	return smt.Atom{}, false, false
}

// componentCond conjoins the prefix conditions transitively root-connected
// to the state's newest condition (which must be last in st.conds).
// Conditions over disjoint root sets constrain independent variables, so
// the full prefix is satisfiable iff every root-connected component is —
// and every *other* component was already verified satisfiable when its own
// newest condition was appended. Querying just the newest component is
// therefore as strong as re-solving the whole prefix, while rendering a
// much shorter (and far more cacheable) formula: sibling subtrees that
// differ only in unrelated guards share the component query verbatim.
func componentCond(st *sframe) smt.Formula {
	conds := st.conds
	last := len(conds) - 1
	inComp := make([]bool, len(conds))
	inComp[last] = true
	roots := append([]string(nil), conds[last].roots...)
	for changed := true; changed; {
		changed = false
		for i, rc := range conds[:last] {
			if inComp[i] || !intersects(rc.roots, roots) {
				continue
			}
			inComp[i] = true
			changed = true
			for _, r := range rc.roots {
				if !contains(roots, r) {
					roots = append(roots, r)
				}
			}
		}
	}
	fs := make([]smt.Formula, 0, len(conds))
	for i, rc := range conds {
		if inComp[i] {
			fs = append(fs, rc.f)
		}
	}
	return smt.NewAnd(fs...)
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func intersects(xs, ys []string) bool {
	for _, x := range xs {
		if contains(ys, x) {
			return true
		}
	}
	return false
}

// prefixSat reports whether the state's path-condition prefix is
// satisfiable. Every path in the subtree below this state carries the
// prefix, so one UNSAT query kills the whole subtree instead of letting
// each descendant path be enumerated and discharged separately; shared
// prefixes across sibling subtrees resolve out of the solver's result
// cache. Solver errors — budget, cancellation, injected faults — keep the
// subtree: pruning is an optimization and must not change which paths
// exist under degraded semantics.
func (w *staticWalker) prefixSat(st *sframe) bool {
	sat, err := smt.SATLim(prefixCond(st), w.lim)
	if err != nil {
		return true
	}
	return sat
}

func (w *staticWalker) full() bool {
	return w.cancelled || w.emitted >= w.maxPaths || w.states > w.maxPaths*64
}

// walkSeq walks stmts[i:], calling k when the sequence completes normally.
func (w *staticWalker) walkSeq(stmts []minij.Stmt, i int, st *sframe, ctx walkCtx, k func(*sframe)) {
	w.states++
	if w.ctx != nil && w.states&ctxPollMask == 0 {
		select {
		case <-w.ctx.Done():
			w.cancelled = true
		default:
		}
	}
	if w.full() {
		w.trunc = true
		return
	}
	if i >= len(stmts) {
		k(st)
		return
	}
	s := stmts[i]
	next := func(st2 *sframe) { w.walkSeq(stmts, i+1, st2, ctx, k) }
	if s.ID() == w.targetID {
		w.emitted++
		w.emit(st)
		return
	}
	switch n := s.(type) {
	case *minij.Block:
		w.walkSeq(n.Stmts, 0, st, ctx, next)
	case *minij.VarDecl:
		if n.Init != nil {
			st.store(n.Name, n.Init)
		} else {
			st.store(n.Name, zeroLiteral(n.Type))
		}
		next(st)
	case *minij.Assign:
		switch t := n.Target.(type) {
		case *minij.Ident:
			st.store(t.Name, n.Value)
		case *minij.FieldAccess:
			if term, ok := translateTerm(t, st); ok && term.isPath {
				st.storePath(term.path, n.Value)
			}
		}
		next(st)
	case *minij.If:
		w.fork(n, n.Cond, st, true, func(st2 *sframe) {
			w.walkSeq(n.Then.Stmts, 0, st2, ctx, next)
		})
		w.fork(n, n.Cond, st, false, func(st2 *sframe) {
			if n.Else != nil {
				w.walkSeq([]minij.Stmt{n.Else}, 0, st2, ctx, next)
			} else {
				next(st2)
			}
		})
	case *minij.While:
		w.walkLoop(n, n.Cond, n.Body, st, ctx, next)
	case *minij.For:
		st2 := st.clone()
		if n.Init != nil {
			w.applyEffect(n.Init, st2)
		}
		w.walkLoop(n, n.Cond, n.Body, st2, ctx, next)
	case *minij.ForEach:
		// Skip the loop entirely...
		next(st.clone())
		// ...or take one iteration with an opaque element binding.
		st2 := st.clone()
		if st2.assigned[n.Var] {
			st2.versions[n.Var]++
		}
		st2.assigned[n.Var] = true
		delete(st2.aliases, n.Var)
		w.walkSeq(n.Body.Stmts, 0, st2, walkCtx{loopExit: next, handlers: ctx.handlers}, next)
	case *minij.Return:
		// The path leaves the method without reaching the target: drop.
	case *minij.Throw:
		w.unwind(st, ctx)
	case *minij.Try:
		inner := ctx
		inner.handlers = append(append([]handler{}, ctx.handlers...), handler{catch: n.Catch, ctx: ctx, k: next})
		w.walkSeq(n.Body.Stmts, 0, st, inner, next)
	case *minij.Sync:
		w.walkSeq(n.Body.Stmts, 0, st, ctx, next)
	case *minij.ExprStmt:
		next(st)
	case *minij.Break, *minij.Continue:
		// One-iteration unrolling: both exit the loop body.
		if ctx.loopExit != nil {
			ctx.loopExit(st)
		}
	default:
		next(st)
	}
}

// applyEffect applies a simple statement's state effect (for-init/post).
func (w *staticWalker) applyEffect(s minij.Stmt, st *sframe) {
	switch n := s.(type) {
	case *minij.VarDecl:
		if n.Init != nil {
			st.store(n.Name, n.Init)
		}
	case *minij.Assign:
		if t, ok := n.Target.(*minij.Ident); ok {
			st.store(t.Name, n.Value)
		}
	}
}

// walkLoop unrolls a condition-guarded loop zero-or-one times.
func (w *staticWalker) walkLoop(s minij.Stmt, cond minij.Expr, body *minij.Block, st *sframe, ctx walkCtx, next func(*sframe)) {
	if cond != nil {
		// Skip the loop: condition false.
		w.fork(s, cond, st, false, next)
		// One iteration: condition true, then exit unconditionally (the
		// exit test after an executed iteration is deliberately not
		// recorded; it would contradict the entry condition for loops
		// whose counters we do not model).
		w.fork(s, cond, st, true, func(st2 *sframe) {
			w.walkSeq(body.Stmts, 0, st2, walkCtx{loopExit: next, handlers: ctx.handlers}, next)
		})
		return
	}
	// for(;;): the body must reach the target or the path dies.
	w.walkSeq(body.Stmts, 0, st.clone(), walkCtx{loopExit: next, handlers: ctx.handlers}, next)
}

// fork explores one direction of a branch, recording the guard when it is
// translatable.
func (w *staticWalker) fork(s minij.Stmt, cond minij.Expr, st *sframe, taken bool, k func(*sframe)) {
	st2 := st.clone()
	if f, ok := Translate(cond, st2); ok {
		if !taken {
			f = smt.NNF(smt.NewNot(f))
		}
		// Constant-folded guards prune impossible directions outright.
		if c, isConst := f.(*smt.Const); isConst {
			if !c.Value {
				return
			}
		} else {
			var roots []string
			if w.prune {
				roots = condRoots(f)
			}
			st2.conds = append(st2.conds, recordedCond{
				f:     f,
				guard: GuardStep{Guard: minij.CanonExpr(cond), Taken: taken, Pos: cond.Pos()},
				roots: roots,
			})
			if w.prune {
				// Solver errors keep the subtree, exactly as in prefixSat.
				check := f
				if prefixOverlaps(roots, st.conds) {
					check = componentCond(st2)
				}
				if !trivSat(check) {
					if sat, err := smt.SATLim(check, w.lim); err == nil && !sat {
						return
					}
				}
			}
		}
	}
	k(st2)
}

// unwind transfers control to the innermost catch handler, or drops the
// path when the exception escapes the method.
func (w *staticWalker) unwind(st *sframe, ctx walkCtx) {
	if len(ctx.handlers) == 0 {
		return
	}
	h := ctx.handlers[len(ctx.handlers)-1]
	w.walkSeq(h.catch.Stmts, 0, st.clone(), h.ctx, h.k)
}

// Key fingerprints the path's logical contribution (bindings plus filtered
// condition); paths from different chains with the same key are one
// finding.
func (p *StaticPath) Key() string { return p.dedupKey() }

func (p *StaticPath) dedupKey() string {
	var sb strings.Builder
	slots := make([]string, 0, len(p.Bindings))
	for s := range p.Bindings {
		slots = append(slots, s)
	}
	sort.Strings(slots)
	for _, s := range slots {
		sb.WriteString(s)
		sb.WriteByte('=')
		sb.WriteString(p.Bindings[s])
		sb.WriteByte(';')
	}
	sb.WriteString(p.Cond.String())
	return sb.String()
}

// zeroLiteral synthesizes the literal for a declared type's zero value.
func zeroLiteral(t minij.Type) minij.Expr {
	switch t.Kind {
	case minij.TypeInt:
		return &minij.IntLit{Value: 0}
	case minij.TypeBool:
		return &minij.BoolLit{Value: false}
	case minij.TypeString:
		return &minij.StrLit{Value: ""}
	default:
		return &minij.NullLit{}
	}
}
