// §4 Bug #1 reproduction: scanning the latest hbasesim head with the rules
// learned from the two historical snapshot-TTL fixes uncovers two paths
// (export and scan) that still materialize expired snapshots — the
// previously unknown, maintainer-confirmed bug class.
//
//	go run ./examples/hbase-snapshot
package main

import (
	"fmt"
	"log"

	"lisa/internal/concolic"
	"lisa/internal/core"
	"lisa/internal/corpus"
)

func main() {
	cs := corpus.Load().Get("hbase-snapshot-ttl")
	fmt.Printf("Case %s: %s\n\n", cs.ID, cs.Description)

	engine := core.New()
	for _, tk := range cs.Tickets {
		rep, err := engine.ProcessTicket(tk)
		if err != nil {
			log.Fatal(err)
		}
		for _, sem := range rep.Registered {
			fmt.Printf("from %s: %s\n", tk.ID, sem)
		}
		for _, sem := range rep.AlreadyKnown {
			fmt.Printf("from %s: re-derives known rule %s — the same semantics, violated twice\n", tk.ID, sem.ID)
		}
	}

	fmt.Println("\nScanning the latest head for inconsistent protection...")
	ar, err := engine.Assert(cs.Latest, cs.Tests)
	if err != nil {
		log.Fatal(err)
	}
	var unknown int
	for _, sr := range ar.Semantics {
		for _, site := range sr.Sites {
			for _, p := range site.Paths {
				fmt.Printf("  %-9s %s  cond={%s}\n", p.Verdict, site.Site, p.Static.Cond)
				if p.Verdict == concolic.VerdictViolation {
					unknown++
				}
			}
		}
	}
	fmt.Printf("\n%d new unguarded path(s) found in the latest version.\n", unknown)
	fmt.Println("Proposed fix: add the timestamp check to the export and scan paths.")
}
