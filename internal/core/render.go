package core

import (
	"fmt"
	"sort"
	"strings"
)

// Render dumps the full assertion report as deterministic text: counts,
// then every semantic, site, and path with verdicts, coverage, and dynamic
// attributions. Two reports are equivalent iff their renderings are
// byte-identical — this is the contract the scheduler's merged output is
// held to against the sequential run (wall-clock timings are excluded; they
// are the only nondeterministic part of a report).
func (r *AssertReport) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "counts: verified=%d violations=%d unknown=%d uncovered=%d post-violations=%d inconclusive=%d failures=%d\n",
		r.Counts.Verified, r.Counts.Violations, r.Counts.Unknown, r.Counts.Uncovered, r.Counts.PostViolations,
		r.Counts.Inconclusive, r.Counts.Failures)
	fmt.Fprintf(&sb, "tests-run=%d static-only=%v\n", r.TestsRun, r.StaticOnly)
	for _, sr := range r.Semantics {
		fmt.Fprintf(&sb, "semantic %s sanity=%v outcome=%s\n", sr.Semantic.ID, sr.SanityOK, sr.Outcome())
		for _, f := range sr.Failures {
			// Stacks are deliberately excluded: they vary run to run, and
			// Render is the byte-identity contract between the sequential
			// engine and the scheduler.
			fmt.Fprintf(&sb, "  failure %s reason=%s detail=%q\n", f.Job, f.Reason, f.Detail)
		}
		for i, v := range sr.Structural {
			fmt.Fprintf(&sb, "  structural %s", v)
			if tests := sr.StructuralConfirmedBy[i]; len(tests) > 0 {
				fmt.Fprintf(&sb, " confirmed-by %s", strings.Join(tests, ","))
			}
			sb.WriteByte('\n')
		}
		for _, site := range sr.Sites {
			fmt.Fprintf(&sb, "  site %s truncated=%v", site.Site, site.TreeTruncated)
			if len(site.SelectedTests) > 0 {
				fmt.Fprintf(&sb, " selected=%s", strings.Join(site.SelectedTests, ","))
			}
			sb.WriteByte('\n')
			for _, ch := range site.Chains {
				fmt.Fprintf(&sb, "    chain %s\n", ch)
			}
			for _, p := range site.Paths {
				fmt.Fprintf(&sb, "    path %-9s cond={%s} {%s}", p.Verdict, p.Static.Cond, p.Static)
				if len(p.CoveredBy) > 0 {
					fmt.Fprintf(&sb, " covered-by %s", strings.Join(p.CoveredBy, ","))
				}
				if len(p.PostViolatedBy) > 0 {
					fmt.Fprintf(&sb, " post-violated-by %s", strings.Join(p.PostViolatedBy, ","))
				}
				sb.WriteByte('\n')
				var names []string
				for name := range p.DynamicVerdicts {
					names = append(names, name)
				}
				sort.Strings(names)
				for _, name := range names {
					fmt.Fprintf(&sb, "      dynamic %s=%s\n", name, p.DynamicVerdicts[name])
				}
			}
		}
	}
	return sb.String()
}
