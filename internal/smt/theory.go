package smt

import "time"

// theory is the persistent theory state one DPLL search carries through its
// descent: a difference-bound matrix over the integer paths of the query's
// atom alphabet plus string equality/disequality sets, all backtrackable
// through a trail. Where the reference solver rebuilds the matrix and runs
// O(n³) Floyd–Warshall at every search node, this state is updated
// incrementally on each atom assignment (O(n²) worst case per new bound,
// usually far less) and popped in O(changes) on backtrack. Assignments that
// touch only boolean, null, or string atoms never consult the integer
// matrix at all.
type theory struct {
	// idx maps integer paths to matrix nodes; node 0 is the zero node, so
	// constant bounds are edges to/from 0. The alphabet is fixed at solver
	// construction, so the matrix never grows mid-search.
	idx map[string]int
	n   int
	// dist is the row-major shortest-path closure: dist[u*n+v] = c encodes
	// the tightest known bound u - v <= c (inf = unbounded). The diagonal
	// stays 0; a would-be negative diagonal is rejected at edge-add time.
	dist []int64

	diseqC []diseqConst
	diseqV []diseqPair

	strEq map[string]string          // path -> required value
	strNe map[string]map[string]bool // path -> excluded values

	trail []undo
	marks []int

	// elapsed accumulates wall clock spent in assertions (flows into the
	// package solver stats once per query).
	elapsed time.Duration
}

// undo is one trail entry; kind selects which fields matter.
type undo struct {
	kind    uint8
	i, j    int    // undoDist: matrix cell
	old     int64  // undoDist: previous bound
	path    string // undoStrEq / undoStrNe
	sval    string // undoStrNe: excluded value to forget
	hadPrev bool   // undoStrEq: whether path had a previous requirement
	prev    string // undoStrEq: the previous requirement
}

const (
	undoDist uint8 = iota
	undoDiseqC
	undoDiseqV
	undoStrEq
	undoStrNe
)

// newTheory builds the theory state for a fixed atom alphabet, registering
// every integer path up front so the matrix dimension is stable.
func newTheory(atoms []Atom) *theory {
	t := &theory{
		idx:   map[string]int{"": 0},
		strEq: map[string]string{},
		strNe: map[string]map[string]bool{},
	}
	reg := func(p string) {
		if _, ok := t.idx[p]; !ok {
			t.idx[p] = len(t.idx)
		}
	}
	for _, a := range atoms {
		switch a.Kind {
		case AtomCmpC:
			reg(a.Path)
		case AtomCmpV:
			reg(a.Path)
			reg(a.Path2)
		}
	}
	t.n = len(t.idx)
	t.dist = make([]int64, t.n*t.n)
	for i := 0; i < t.n; i++ {
		for j := 0; j < t.n; j++ {
			if i == j {
				t.dist[i*t.n+j] = 0
			} else {
				t.dist[i*t.n+j] = inf
			}
		}
	}
	return t
}

// mark opens a backtrack point; the matching pop rewinds every change made
// after it.
func (t *theory) mark() { t.marks = append(t.marks, len(t.trail)) }

// pop rewinds the trail to the last mark.
func (t *theory) pop() {
	m := t.marks[len(t.marks)-1]
	t.marks = t.marks[:len(t.marks)-1]
	for len(t.trail) > m {
		u := t.trail[len(t.trail)-1]
		t.trail = t.trail[:len(t.trail)-1]
		switch u.kind {
		case undoDist:
			t.dist[u.i*t.n+u.j] = u.old
		case undoDiseqC:
			t.diseqC = t.diseqC[:len(t.diseqC)-1]
		case undoDiseqV:
			t.diseqV = t.diseqV[:len(t.diseqV)-1]
		case undoStrEq:
			if u.hadPrev {
				t.strEq[u.path] = u.prev
			} else {
				delete(t.strEq, u.path)
			}
		case undoStrNe:
			delete(t.strNe[u.path], u.sval)
		}
	}
}

// assert adds one atom assignment to the theory state and reports whether
// the state stays consistent. On inconsistency the partial changes remain on
// the trail; the caller pops to its mark either way.
func (t *theory) assert(a Atom, v bool) bool {
	start := time.Now()
	ok := t.assertAtom(a, v)
	t.elapsed += time.Since(start)
	return ok
}

func (t *theory) assertAtom(a Atom, v bool) bool {
	switch a.Kind {
	case AtomBool, AtomNull:
		// Propositional: no theory content.
		return true
	case AtomCmpC:
		return t.assertCmpC(a, v)
	case AtomCmpV:
		return t.assertCmpV(a, v)
	case AtomStrEq:
		return t.assertStr(a, v)
	}
	return true
}

// assertCmpC adds a normalized constant comparison (Op in Eq, Le, Lt).
func (t *theory) assertCmpC(a Atom, v bool) bool {
	x := t.idx[a.Path]
	op := a.Op
	if !v {
		op = op.Negate()
	}
	switch op {
	case OpEq:
		return t.addEdge(x, 0, a.IntVal) && t.addEdge(0, x, -a.IntVal)
	case OpNe:
		return t.addDiseqC(x, a.IntVal)
	case OpLe:
		return t.addEdge(x, 0, a.IntVal)
	case OpLt:
		return t.addEdge(x, 0, a.IntVal-1)
	case OpGe:
		return t.addEdge(0, x, -a.IntVal)
	case OpGt:
		return t.addEdge(0, x, -a.IntVal-1)
	}
	return true
}

// assertCmpV adds a normalized variable comparison.
func (t *theory) assertCmpV(a Atom, v bool) bool {
	x, y := t.idx[a.Path], t.idx[a.Path2]
	op := a.Op
	if !v {
		op = op.Negate()
	}
	switch op {
	case OpEq:
		return t.addEdge(x, y, 0) && t.addEdge(y, x, 0)
	case OpNe:
		return t.addDiseqV(x, y)
	case OpLe:
		return t.addEdge(x, y, 0)
	case OpLt:
		return t.addEdge(x, y, -1)
	case OpGe:
		return t.addEdge(y, x, 0)
	case OpGt:
		return t.addEdge(y, x, -1)
	}
	return true
}

// addEdge inserts the bound u - v <= c and incrementally re-closes the
// shortest-path matrix through it. A bound that would close a negative
// cycle is rejected before any cell changes; a bound no tighter than the
// existing closure is a no-op. Otherwise one O(n²) relaxation pass updates
// exactly the cells the new edge improves, each recorded on the trail.
func (t *theory) addEdge(u, v int, c int64) bool {
	n := t.n
	if u == v {
		return c >= 0
	}
	if dvu := t.dist[v*n+u]; dvu != inf && dvu+c < 0 {
		return false
	}
	if c >= t.dist[u*n+v] {
		return true
	}
	for i := 0; i < n; i++ {
		diu := t.dist[i*n+u]
		if diu == inf {
			continue
		}
		base := diu + c
		for j := 0; j < n; j++ {
			dvj := t.dist[v*n+j]
			if dvj == inf {
				continue
			}
			if nd := base + dvj; nd < t.dist[i*n+j] {
				t.trail = append(t.trail, undo{kind: undoDist, i: i, j: j, old: t.dist[i*n+j]})
				t.dist[i*n+j] = nd
			}
		}
	}
	// Tightened bounds can force an equality a standing disequality
	// excludes.
	return t.diseqsOK()
}

// addDiseqC records x != c and checks it against the current closure.
func (t *theory) addDiseqC(x int, c int64) bool {
	t.diseqC = append(t.diseqC, diseqConst{x: x, c: c})
	t.trail = append(t.trail, undo{kind: undoDiseqC})
	n := t.n
	return !(t.dist[x*n+0] == c && t.dist[0*n+x] == -c)
}

// addDiseqV records x != y and checks it against the current closure.
func (t *theory) addDiseqV(x, y int) bool {
	t.diseqV = append(t.diseqV, diseqPair{x: x, y: y})
	t.trail = append(t.trail, undo{kind: undoDiseqV})
	n := t.n
	return !(t.dist[x*n+y] == 0 && t.dist[y*n+x] == 0)
}

// diseqsOK re-checks every active disequality against forced equalities.
// As in the reference solver, the pass is complete for forced point values
// and forced variable equalities; exotic finite-domain disequality chains
// err toward SAT.
func (t *theory) diseqsOK() bool {
	n := t.n
	for _, dq := range t.diseqC {
		if t.dist[dq.x*n+0] == dq.c && t.dist[0*n+dq.x] == -dq.c {
			return false
		}
	}
	for _, dq := range t.diseqV {
		if t.dist[dq.x*n+dq.y] == 0 && t.dist[dq.y*n+dq.x] == 0 {
			return false
		}
	}
	return true
}

// assertStr adds a string (dis)equality. Normalized StrEq atoms always have
// OpEq, so v selects equality vs. disequality.
func (t *theory) assertStr(a Atom, v bool) bool {
	if v {
		if prev, ok := t.strEq[a.Path]; ok {
			return prev == a.StrVal
		}
		if t.strNe[a.Path][a.StrVal] {
			return false
		}
		t.trail = append(t.trail, undo{kind: undoStrEq, path: a.Path})
		t.strEq[a.Path] = a.StrVal
		return true
	}
	if eq, ok := t.strEq[a.Path]; ok && eq == a.StrVal {
		return false
	}
	if t.strNe[a.Path] == nil {
		t.strNe[a.Path] = map[string]bool{}
	}
	if !t.strNe[a.Path][a.StrVal] {
		t.strNe[a.Path][a.StrVal] = true
		t.trail = append(t.trail, undo{kind: undoStrNe, path: a.Path, sval: a.StrVal})
	}
	return true
}
