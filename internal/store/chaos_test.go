package store

// The crash-recovery chaos campaign: a helper process writes a
// deterministic record stream into a store while a store-scoped Crash rule
// is armed at store.write, store.flush, or store.compact with a per-round
// skip count, so the process dies at a different spot in the write stream
// every round (mid-append with a half frame on disk, post-append
// pre-sync, at compaction entry, or with a complete temp file one rename
// short of committing). The parent then reopens the directory and demands
// the invariants the store advertises: Open always succeeds, no key ever
// serves a value that was never written for it (CRC catches torn and
// rotted frames — they read as misses, not garbage), a second cold open
// sees the identical record set (recovery is deterministic and complete,
// not deferred), and the store is immediately writable again.

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"

	"lisa/internal/faultinject"
)

const (
	chaosKeys   = 8  // keys k0..k7, overwritten round-robin
	chaosWrites = 64 // puts per helper run, each followed by a Flush
)

// chaosVal is the deterministic value for write i of the campaign stream:
// both helper and parent compute it, so the parent can recognize every
// legitimate historical value for a key without a side channel.
func chaosVal(seed int64, i int) []byte {
	v := make([]byte, 96+((i*7)%32))
	for j := range v {
		v[j] = byte(int(seed) + i*131 + j*17)
	}
	return v
}

// TestStoreChaosHelper is not a test: it is the victim process of
// TestStoreCrashRecoveryCampaign. It arms the round's Crash rule and
// writes the deterministic stream until the injected crash kills it.
func TestStoreChaosHelper(t *testing.T) {
	if os.Getenv("LISA_STORE_CHAOS") != "1" {
		t.Skip("helper process for TestStoreCrashRecoveryCampaign")
	}
	dir := os.Getenv("LISA_STORE_CHAOS_DIR")
	point := os.Getenv("LISA_STORE_CHAOS_POINT")
	skip, _ := strconv.Atoi(os.Getenv("LISA_STORE_CHAOS_SKIP"))
	seed, _ := strconv.ParseInt(os.Getenv("LISA_STORE_CHAOS_SEED"), 10, 64)

	s, err := Open(dir)
	if err != nil {
		t.Fatalf("chaos helper Open: %v", err)
	}
	s.compactMin = 64 // small floor so the stream crosses compaction
	faultinject.Arm(faultinject.NewPlan(seed).
		SetAfter(point, faultinject.Crash, skip).
		ScopeStore())
	for i := 0; i < chaosWrites; i++ {
		s.Put("chaos", fmt.Sprintf("k%d", i%chaosKeys), chaosVal(seed, i))
		s.Flush() // errors irrelevant: the crash kills us first
	}
	// Reaching here means the rule never fired — the parent treats a clean
	// exit as a campaign bug (the skip outran the point's visits).
	s.Close()
}

// chaosRound describes one kill point of the campaign.
type chaosRound struct {
	point string
	skip  int
}

// TestStoreCrashRecoveryCampaign runs the seeded multi-round campaign:
// >= 20 kill points across append, sync, and both compaction crash sites.
// Skipped in -short runs (each round spawns a process).
func TestStoreCrashRecoveryCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("crash campaign spawns a process per round")
	}
	const seed int64 = 8
	var rounds []chaosRound
	// store.write fires once per non-dedup append; store.flush once per
	// batch. 64 single-put batches per run, so skips up to 34 stay live.
	for _, skip := range []int{0, 1, 2, 3, 5, 8, 13, 21, 34} {
		rounds = append(rounds, chaosRound{FaultPointWrite, skip})
		rounds = append(rounds, chaosRound{FaultPointFlush, skip})
	}
	// store.compact is consulted twice per compaction: at entry (log
	// untouched) and after the temp file is synced, pre-rename (orphan
	// temp left behind). The stream compacts within ~20 writes.
	rounds = append(rounds,
		chaosRound{FaultPointCompact, 0},
		chaosRound{FaultPointCompact, 1},
	)
	if len(rounds) < 20 {
		t.Fatalf("campaign has %d rounds, want >= 20", len(rounds))
	}

	// All legitimate values each key ever holds, for the serve check.
	legit := make(map[string][][]byte)
	for i := 0; i < chaosWrites; i++ {
		key := fmt.Sprintf("k%d", i%chaosKeys)
		legit[key] = append(legit[key], chaosVal(seed, i))
	}

	for _, r := range rounds {
		r := r
		t.Run(fmt.Sprintf("%s_skip%d", r.point, r.skip), func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(os.Args[0], "-test.run", "^TestStoreChaosHelper$", "-test.v")
			cmd.Env = append(os.Environ(),
				"LISA_STORE_CHAOS=1",
				"LISA_STORE_CHAOS_DIR="+dir,
				"LISA_STORE_CHAOS_POINT="+r.point,
				"LISA_STORE_CHAOS_SKIP="+strconv.Itoa(r.skip),
				"LISA_STORE_CHAOS_SEED="+strconv.FormatInt(seed, 10),
			)
			out, err := cmd.CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ExitCode() != faultinject.CrashExitCode {
				t.Fatalf("helper did not die at the kill point (err=%v):\n%s", err, out)
			}

			// First cold open: tail recovery runs here if needed.
			s1, err := Open(dir)
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			seen := readAll(t, s1, legit)
			if st := s1.Stats(); st.Corruptions != 0 {
				t.Fatalf("corrupted record served after recovery: %+v", st)
			}
			// The store must be writable immediately after recovery.
			s1.Put("chaos", "post-crash", []byte("alive"))
			if err := s1.Flush(); err != nil {
				t.Fatalf("post-recovery Flush: %v", err)
			}
			s1.Close()

			// Second cold open: recovery must have been complete — same
			// record set, no further repairs, no orphan temp file.
			s2, err := Open(dir)
			if err != nil {
				t.Fatalf("second reopen: %v", err)
			}
			defer s2.Close()
			seen2 := readAll(t, s2, legit)
			delete(seen2, "post-crash")
			if len(seen) != len(seen2) {
				t.Fatalf("record set changed across cold opens: %d then %d", len(seen), len(seen2))
			}
			for k, v := range seen {
				if !bytes.Equal(v, seen2[k]) {
					t.Fatalf("key %s differs across cold opens", k)
				}
			}
			if st := s2.Stats(); st.Recoveries != 0 {
				t.Fatalf("second open still repairing: %+v", st)
			}
			if v, ok := s2.Get("chaos", "post-crash"); !ok || string(v) != "alive" {
				t.Fatalf("post-recovery write lost: %q, %v", v, ok)
			}
			if _, err := os.Stat(filepath.Join(dir, logName+".tmp")); !os.IsNotExist(err) {
				t.Fatalf("orphan compaction temp file survived reopen: %v", err)
			}
		})
	}
}

// readAll fetches every campaign key from the store, fails the test on any
// value that was never legitimately written, and returns the served set.
func readAll(t *testing.T, s *Store, legit map[string][][]byte) map[string][]byte {
	t.Helper()
	seen := map[string][]byte{}
	for i := 0; i < chaosKeys; i++ {
		key := fmt.Sprintf("k%d", i)
		v, ok := s.Get("chaos", key)
		if !ok {
			continue // lost to the crash: acceptable, serving garbage is not
		}
		valid := false
		for _, want := range legit[key] {
			if bytes.Equal(v, want) {
				valid = true
				break
			}
		}
		if !valid {
			t.Fatalf("key %s serves a value that was never written (%d bytes)", key, len(v))
		}
		seen[key] = v
	}
	if v, ok := s.Get("chaos", "post-crash"); ok {
		seen["post-crash"] = v
	}
	return seen
}
