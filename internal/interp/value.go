// Package interp implements a deterministic concrete interpreter for MiniJ
// programs. It is the execution substrate for both plain test replay and the
// concolic engine: every branch decision, statement execution, method call,
// and builtin invocation can be observed through Hooks.
//
// The interpreter is single-threaded by design. The paper's checking is
// path-based rather than schedule-based, so concurrency-triggered states
// (e.g. "the session transitioned to CLOSING between the check and the use")
// are modeled explicitly as reachable program states driven by test inputs.
package interp

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"lisa/internal/minij"
)

// Value is a MiniJ runtime value. The dynamic types are:
//
//	Int, Bool, Str, Null — immutable primitives
//	*Object, *List, *Map — heap references compared by identity
//
// All of them are comparable, so a Value can key a Go map directly.
type Value interface{ valueKind() string }

// Int is a MiniJ integer.
type Int int64

// Bool is a MiniJ boolean.
type Bool bool

// Str is a MiniJ string.
type Str string

// Null is the MiniJ null reference.
type Null struct{}

func (Int) valueKind() string  { return "int" }
func (Bool) valueKind() string { return "bool" }
func (Str) valueKind() string  { return "string" }
func (Null) valueKind() string { return "null" }

// Object is a class instance with named fields.
type Object struct {
	Class  *minij.Class
	Fields map[string]Value
}

func (*Object) valueKind() string { return "object" }

// List is a MiniJ list.
type List struct {
	Elems []Value
}

func (*List) valueKind() string { return "list" }

// Map is a MiniJ map with deterministic (insertion-ordered) iteration.
type Map struct {
	entries map[Value]Value
	order   []Value
}

func (*Map) valueKind() string { return "map" }

// NewMap returns an empty map value.
func NewMap() *Map {
	return &Map{entries: map[Value]Value{}}
}

// Put inserts or replaces the entry for k.
func (m *Map) Put(k, v Value) {
	if _, ok := m.entries[k]; !ok {
		m.order = append(m.order, k)
	}
	m.entries[k] = v
}

// Get returns the value for k, or Null if absent.
func (m *Map) Get(k Value) Value {
	if v, ok := m.entries[k]; ok {
		return v
	}
	return Null{}
}

// Has reports whether k is present.
func (m *Map) Has(k Value) bool {
	_, ok := m.entries[k]
	return ok
}

// Remove deletes k, returning the removed value or Null.
func (m *Map) Remove(k Value) Value {
	v, ok := m.entries[k]
	if !ok {
		return Null{}
	}
	delete(m.entries, k)
	for i, kk := range m.order {
		if kk == k {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	return v
}

// Len returns the number of entries.
func (m *Map) Len() int { return len(m.entries) }

// Keys returns the keys in insertion order.
func (m *Map) Keys() []Value {
	out := make([]Value, len(m.order))
	copy(out, m.order)
	return out
}

// Clear removes all entries.
func (m *Map) Clear() {
	m.entries = map[Value]Value{}
	m.order = nil
}

// IsNull reports whether v is the null value.
func IsNull(v Value) bool {
	_, ok := v.(Null)
	return ok
}

// Truthy converts a Value used as a condition, reporting an error for
// non-bool values.
func Truthy(v Value) (bool, bool) {
	b, ok := v.(Bool)
	return bool(b), ok
}

// Equal implements MiniJ ==: value equality for primitives and strings,
// reference identity for objects, lists, and maps. Null equals only null.
func Equal(a, b Value) bool {
	switch x := a.(type) {
	case Int:
		y, ok := b.(Int)
		return ok && x == y
	case Bool:
		y, ok := b.(Bool)
		return ok && x == y
	case Str:
		y, ok := b.(Str)
		return ok && x == y
	case Null:
		return IsNull(b)
	default:
		return a == b
	}
}

// Format renders a value for logging and the str() builtin.
func Format(v Value) string {
	switch x := v.(type) {
	case Int:
		return strconv.FormatInt(int64(x), 10)
	case Bool:
		if x {
			return "true"
		}
		return "false"
	case Str:
		return string(x)
	case Null:
		return "null"
	case *Object:
		var sb strings.Builder
		sb.WriteString(x.Class.Name)
		sb.WriteByte('{')
		names := make([]string, 0, len(x.Fields))
		for n := range x.Fields {
			names = append(names, n)
		}
		sort.Strings(names)
		for i, n := range names {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(n)
			sb.WriteByte('=')
			sb.WriteString(formatShallow(x.Fields[n]))
		}
		sb.WriteByte('}')
		return sb.String()
	case *List:
		var sb strings.Builder
		sb.WriteByte('[')
		for i, e := range x.Elems {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(formatShallow(e))
		}
		sb.WriteByte(']')
		return sb.String()
	case *Map:
		var sb strings.Builder
		sb.WriteByte('{')
		for i, k := range x.order {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(formatShallow(k))
			sb.WriteString(": ")
			sb.WriteString(formatShallow(x.entries[k]))
		}
		sb.WriteByte('}')
		return sb.String()
	}
	return fmt.Sprintf("<?%T>", v)
}

// formatShallow avoids unbounded recursion through cyclic heaps.
func formatShallow(v Value) string {
	switch x := v.(type) {
	case *Object:
		return x.Class.Name + "{...}"
	case *List:
		return fmt.Sprintf("list(%d)", len(x.Elems))
	case *Map:
		return fmt.Sprintf("map(%d)", x.Len())
	default:
		return Format(v)
	}
}

// ZeroOf returns the zero value for a declared type: 0, false, "" for
// primitives and null for references.
func ZeroOf(t minij.Type) Value {
	switch t.Kind {
	case minij.TypeInt:
		return Int(0)
	case minij.TypeBool:
		return Bool(false)
	case minij.TypeString:
		return Str("")
	default:
		return Null{}
	}
}
