package ticket

import (
	"strings"
	"testing"
)

func sample() *Ticket {
	return &Ticket{
		ID:          "SYS-1",
		Title:       "Thing breaks",
		Description: "The thing broke under load.",
		Discussion:  []string{"root cause is the missing guard", "add the check"},
		BuggySource: "class A {\n\tvoid m() {\n\t\tlog(1);\n\t}\n}\n",
		FixedSource: "class A {\n\tvoid m() {\n\t\tlog(2);\n\t}\n}\n",
	}
}

func TestTicketDiff(t *testing.T) {
	d := sample().Diff()
	if !strings.Contains(d, "-\t\tlog(1);") || !strings.Contains(d, "+\t\tlog(2);") {
		t.Errorf("diff:\n%s", d)
	}
	if !strings.Contains(d, "SYS-1.mj") {
		t.Errorf("diff missing file name:\n%s", d)
	}
}

func TestTicketBundle(t *testing.T) {
	b := sample().Bundle()
	for _, want := range []string{
		"TICKET SYS-1: Thing breaks",
		"Failure description",
		"The thing broke under load.",
		"root cause is the missing guard",
		"Code patch",
		"Source after patch",
		"log(2);",
	} {
		if !strings.Contains(b, want) {
			t.Errorf("bundle missing %q", want)
		}
	}
}

func TestCaseHead(t *testing.T) {
	cs := &Case{
		Tickets: []*Ticket{
			{ID: "T1", FixedSource: "v2"},
			{ID: "T2", FixedSource: "v4"},
		},
	}
	if cs.Head() != "v4" {
		t.Errorf("head = %q, want last fixed source", cs.Head())
	}
	cs.Latest = "v5"
	if cs.Head() != "v5" {
		t.Errorf("head = %q, want latest", cs.Head())
	}
	if cs.Bugs() != 2 {
		t.Errorf("bugs = %d", cs.Bugs())
	}
}

func TestCorpusStats(t *testing.T) {
	c := &Corpus{}
	c.Add(&Case{ID: "a", System: "x", Tickets: []*Ticket{{}, {}},
		Tests: []TestCase{{Name: "t1"}}, FirstReported: 2010, LastReported: 2020})
	c.Add(&Case{ID: "b", System: "x", Tickets: []*Ticket{{}},
		Tests: []TestCase{{Name: "t2"}, {Name: "t3"}}, FirstReported: 2015, LastReported: 2018})
	c.Add(&Case{ID: "c", System: "y", Tickets: []*Ticket{{}, {}, {}}})
	st := c.ComputeStats()
	if st.Cases != 3 || st.Bugs != 6 || st.Systems != 2 || st.TestFiles != 3 {
		t.Errorf("stats = %+v", st)
	}
	if st.BySystem["x"].Cases != 2 || st.BySystem["x"].Bugs != 3 || st.BySystem["x"].Span != 10 {
		t.Errorf("x stats = %+v", st.BySystem["x"])
	}
	if c.Get("b") == nil || c.Get("zzz") != nil {
		t.Error("Get broken")
	}
	names := c.SystemNames()
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Errorf("names = %v", names)
	}
}
