package testsel

import (
	"testing"

	"lisa/internal/contract"
	"lisa/internal/minij"
	"lisa/internal/smt"
	"lisa/internal/ticket"
)

func suite() []ticket.TestCase {
	return []ticket.TestCase{
		{Name: "EphemeralTest.createLive", Description: "create ephemeral node on live session",
			Source: "class EphemeralTest { static void createLive() { } }"},
		{Name: "EphemeralTest.rejectClosing", Description: "reject ephemeral creation on closing session",
			Source: "class EphemeralTest { static void rejectClosing() { } }"},
		{Name: "SnapshotTest.restoreTTL", Description: "snapshot restore checks ttl expiration",
			Source: "class SnapshotTest { static void restoreTTL() { } }"},
		{Name: "QuotaTest.charge", Description: "quota ledger charges bytes for writes",
			Source: "class QuotaTest { static void charge() { } }"},
	}
}

func sessionSite(t *testing.T) *contract.Site {
	t.Helper()
	src := `
class Session {
	bool closing;
}

class DataTree {
	map nodes;

	void createEphemeral(string path, Session s) {
		nodes.put(path, s);
	}
}

class Prep {
	DataTree tree;

	void processCreate(string path, Session s) {
		if (s == null || s.closing) {
			throw "err";
		}
		tree.createEphemeral(path, s);
	}
}
`
	prog, err := minij.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := minij.Check(prog); err != nil {
		t.Fatal(err)
	}
	sem := &contract.Semantic{
		ID:          "r1",
		Kind:        contract.StateKind,
		Description: "no ephemeral node on a closing session",
		Target: contract.TargetPattern{
			Callee: "DataTree.createEphemeral",
			Bind:   map[string]int{"s": 1},
		},
		Pre: smt.MustParsePredicate(`s != null && s.closing == false`),
	}
	sites := contract.Match(sem, prog)
	if len(sites) != 1 {
		t.Fatalf("sites = %d", len(sites))
	}
	return sites[0]
}

func TestSelectRanksRelevantTests(t *testing.T) {
	sel := New(suite())
	site := sessionSite(t)
	feature := PathFeature(site, nil, nil)
	got := sel.Select(feature, 2)
	if len(got) == 0 {
		t.Fatal("no tests selected")
	}
	for _, tc := range got {
		if tc.Name == "QuotaTest.charge" {
			t.Errorf("quota test selected for an ephemeral feature: %v", got)
		}
	}
	names := map[string]bool{}
	for _, tc := range got {
		names[tc.Name] = true
	}
	if !names["EphemeralTest.createLive"] && !names["EphemeralTest.rejectClosing"] {
		t.Errorf("ephemeral tests not selected: %v", got)
	}
}

func TestSelectForSiteUnions(t *testing.T) {
	sel := New(suite())
	site := sessionSite(t)
	got := sel.SelectForSite(site, nil, nil, 2)
	if len(got) == 0 {
		t.Fatal("empty union")
	}
	seen := map[string]int{}
	for _, tc := range got {
		seen[tc.Name]++
	}
	for name, n := range seen {
		if n > 1 {
			t.Errorf("test %s selected %d times (union must dedup)", name, n)
		}
	}
}

func TestAllBaseline(t *testing.T) {
	sel := New(suite())
	if got := sel.All(); len(got) != 4 || got[0].Name != "EphemeralTest.createLive" {
		t.Errorf("All = %v", got)
	}
	if sel.Len() != 4 {
		t.Errorf("Len = %d", sel.Len())
	}
}
