package main

import (
	"fmt"
	"os"
	"os/exec"
	"strconv"

	"lisa/internal/shard"
)

// spawnShards is the parent side of `lisa assert/gate -shards N`: it
// launches one child `lisa <sub>` process per shard, each restricted (via
// the internal -shard-index flag) to the semantics its shard covers, all
// sharing one on-disk store directory. Children execute their shard's jobs
// and write the results through; the parent then runs the full job set
// against the warmed store — the merge — so its report is produced by the
// ordinary registry-order path and stays byte-identical to a sequential
// run.
//
// storeDir may be empty: a temporary directory is created and shared, and
// the returned cleanup removes it (callers must invoke cleanup on every
// exit path, including before os.Exit). The returned dir is the store the
// parent's own merge run must attach.
func spawnShards(sub string, args []string, shards int, storeDir string) (results []shard.Result, dir string, cleanup func(), err error) {
	cleanup = func() {}
	exe, err := os.Executable()
	if err != nil {
		return nil, "", cleanup, fmt.Errorf("resolve executable for shard children: %w", err)
	}
	dir = storeDir
	if dir == "" {
		dir, err = os.MkdirTemp("", "lisa-shards-")
		if err != nil {
			return nil, "", cleanup, err
		}
		tmp := dir
		cleanup = func() { os.RemoveAll(tmp) }
	}
	results = shard.Run(shards, func(i int) *exec.Cmd {
		childArgs := append([]string{sub}, args...)
		childArgs = append(childArgs, "-shard-index", strconv.Itoa(i))
		if storeDir == "" {
			childArgs = append(childArgs, "-store", dir)
		}
		return exec.Command(exe, childArgs...)
	})
	for _, r := range results {
		if r.Err != nil {
			cleanup()
			return nil, "", func() {}, fmt.Errorf("shard %d failed: %v\n%s", r.Index, r.Err, r.Output)
		}
	}
	return results, dir, cleanup, nil
}
