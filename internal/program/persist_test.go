package program

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"lisa/internal/faultinject"
	"lisa/internal/store"
)

func openStoreT(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// warmStore compiles source into a store-attached cache far enough to
// trigger persistence (the graph build), then flushes.
func warmStore(t *testing.T, st *store.Store, source string) *Snapshot {
	t.Helper()
	warm := NewCache(8)
	warm.SetStore(st)
	snap, err := warm.Load(source)
	if err != nil {
		t.Fatal(err)
	}
	snap.Graph()
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestSnapshotRestore: a cold cache on a warm store restores the snapshot
// without compiling — zero Compiles, the graph re-anchored from its
// summary, and every derived artifact identical to the built original.
func TestSnapshotRestore(t *testing.T) {
	st := openStoreT(t)
	built := warmStore(t, st, testSource)

	cold := NewCache(8)
	cold.SetStore(st)
	snap, err := cold.Load(testSource)
	if err != nil {
		t.Fatal(err)
	}
	if stats := cold.Stats(); stats.Compiles != 0 || stats.Restores != 1 {
		t.Fatalf("cold stats = %+v, want 0 compiles and 1 restore", stats)
	}
	if snap.Canon() != built.Canon() || snap.CanonHash() != built.CanonHash() {
		t.Fatal("restored canon differs from built canon")
	}
	if snap.Shape() != built.Shape() {
		t.Fatal("restored shape differs")
	}
	if snap.MethodCanon("PrepProcessor.processCreate") != built.MethodCanon("PrepProcessor.processCreate") {
		t.Fatal("restored method canon differs")
	}
	if err := snap.Verify(); err != nil {
		t.Fatalf("restored snapshot fails Verify: %v", err)
	}
	g := snap.Graph()
	if g == nil {
		t.Fatal("restored snapshot has no graph")
	}
	gotSum, _ := json.Marshal(g.Summary())
	wantSum, _ := json.Marshal(built.Graph().Summary())
	if string(gotSum) != string(wantSum) {
		t.Fatalf("restored graph differs:\n got %s\nwant %s", gotSum, wantSum)
	}
	if stats := cold.Stats(); stats.GraphBuilds != 0 || stats.GraphRestores != 1 {
		t.Fatalf("cold graph stats = %+v, want 0 builds and 1 restore", stats)
	}
}

// TestRestoreRejectsTamperedRecord: a record whose canon does not match
// what the source actually renders to is refused — the Verify machinery on
// the load path — and the snapshot falls back to a full compile.
func TestRestoreRejectsTamperedRecord(t *testing.T) {
	st := openStoreT(t)
	warmStore(t, st, testSource)

	// Forge the record: well-formed envelope, wrong canon (so the canon no
	// longer matches its stored digest).
	raw, ok := st.Get(snapNamespace, Hash(testSource))
	if !ok {
		t.Fatal("no persisted record")
	}
	rec, ok := decodeRecord(raw)
	if !ok {
		t.Fatal("persisted record does not decode")
	}
	rec.Canon = rec.Canon + "\n// drifted"
	st.Put(snapNamespace, Hash(testSource), encodeRecord(rec))
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	cold := NewCache(8)
	cold.SetStore(st)
	snap, err := cold.Load(testSource)
	if err != nil {
		t.Fatal(err)
	}
	if stats := cold.Stats(); stats.Compiles != 1 || stats.Restores != 0 {
		t.Fatalf("stats = %+v, want fallback compile", stats)
	}
	if err := snap.Verify(); err != nil {
		t.Fatalf("fallback snapshot fails Verify: %v", err)
	}
}

// TestNegativeEntriesNeverPersisted: a compile error is cached in memory
// (negative entry) but must never reach the disk tier.
func TestNegativeEntriesNeverPersisted(t *testing.T) {
	st := openStoreT(t)
	c := NewCache(8)
	c.SetStore(st)
	bad := "class Broken {\n\tvoid f() {\n\t\tundefined_name + 1;\n\t}\n}\n"
	if _, err := c.Load(bad); err == nil {
		t.Fatal("bad source compiled")
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(snapNamespace, Hash(bad)); ok {
		t.Fatal("negative entry reached the disk tier")
	}
	if s := st.Stats(); s.Records != 0 {
		t.Fatalf("store has %d records, want 0", s.Records)
	}
}

// TestArmedRunsNeverPersist: snapshots compiled while a faultinject plan
// is armed (even one whose rules never fire) leave the store untouched.
func TestArmedRunsNeverPersist(t *testing.T) {
	st := openStoreT(t)
	dir := st.Dir()
	c := NewCache(8)
	c.SetStore(st)

	faultinject.Arm(faultinject.NewPlan(7).Set("unrelated.point", faultinject.Panic))
	defer faultinject.Disarm()
	snap, err := c.Load(testSource)
	if err != nil {
		t.Fatal(err)
	}
	snap.Graph()
	faultinject.Disarm()
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "store.log")); err == nil {
		b, _ := os.ReadFile(filepath.Join(dir, "store.log"))
		if len(b) != 0 {
			t.Fatalf("armed run wrote %d bytes to the store", len(b))
		}
	}
}

// TestCorruptedASTNeverPersisted: the program.load Corrupt point damages
// the AST after the canon is captured; the persist path must detect the
// mismatch (Verify) and refuse to write even if the plan is disarmed
// before the graph build triggers persistence.
func TestCorruptedASTNeverPersisted(t *testing.T) {
	st := openStoreT(t)
	c := NewCache(8)
	c.SetStore(st)

	faultinject.Arm(faultinject.NewPlan(7).Set("program.load", faultinject.Corrupt))
	snap, err := c.Load(testSource)
	faultinject.Disarm()
	if err != nil {
		t.Fatal(err)
	}
	snap.Graph() // persist trigger — must refuse the corrupted snapshot
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(snapNamespace, Hash(testSource)); ok {
		t.Fatal("corrupted snapshot reached the disk tier")
	}
}
