package server

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"lisa/internal/sched"
)

// watchExts are the file extensions the watcher treats as MiniJ sources.
var watchExts = map[string]bool{".mj": true, ".minij": true}

// watcher polls registered directory roots for MiniJ source files and
// pre-warms the expensive front end on every change: the new version is
// loaded into the server's snapshot cache (parse, resolve, canonical
// hash), its call graph is built, and — when the previous content of the
// file is known — the dirty set against it is computed, so a gate request
// that follows the edit finds all of that work already done. Polling is
// deliberate: it needs no platform notification APIs, walks in
// deterministic (lexical) order, and a missed poll only costs warmth,
// never correctness.
type watcher struct {
	srv      *Server
	interval time.Duration

	mu      sync.Mutex
	roots   []string
	seen    map[string]string // file path → raw source at last poll
	stats   WatcherStats
	started bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	// testPrewarmDelay stretches every prewarm and testPrewarmStarted (when
	// non-nil) is signalled as one begins (tests only: together they make
	// "a prewarm is in flight while Drain runs" deterministic).
	testPrewarmDelay   time.Duration
	testPrewarmStarted chan struct{}
}

func newWatcher(srv *Server, interval time.Duration) *watcher {
	if interval <= 0 {
		interval = DefaultWatchInterval
	}
	return &watcher{
		srv:      srv,
		interval: interval,
		seen:     map[string]string{},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// addRoot registers dir and starts the polling loop on first use. The
// first poll treats every existing file as new (pre-warmed, but with no
// previous version to diff a dirty set against).
func (w *watcher) addRoot(dir string) error {
	info, err := os.Stat(dir)
	if err != nil {
		return err
	}
	if !info.IsDir() {
		return fmt.Errorf("watch root %s is not a directory", dir)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return err
	}
	w.mu.Lock()
	for _, r := range w.roots {
		if r == abs {
			w.mu.Unlock()
			return nil
		}
	}
	w.roots = append(w.roots, abs)
	w.stats.Roots = len(w.roots)
	start := !w.started
	w.started = true
	w.mu.Unlock()
	if start {
		go w.run()
	}
	return nil
}

func (w *watcher) run() {
	defer close(w.done)
	tick := time.NewTicker(w.interval)
	defer tick.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-tick.C:
			w.poll()
		}
	}
}

// halt stops the polling loop and waits for an in-flight poll to finish.
// Safe to call more than once and on a watcher that never started.
func (w *watcher) halt() {
	w.stopOnce.Do(func() { close(w.stop) })
	w.mu.Lock()
	started := w.started
	w.mu.Unlock()
	if started {
		<-w.done
	}
}

// poll walks every registered root once, synchronously (the server exposes
// it as PollNow so tests and operators can force a deterministic scan).
// Scanning and pre-warming are split so the seen map is updated under the
// lock while the expensive front-end work runs outside it.
func (w *watcher) poll() WatcherStats {
	w.mu.Lock()
	roots := append([]string(nil), w.roots...)
	w.mu.Unlock()

	type event struct {
		path   string
		source string
		old    string
		isNew  bool
	}
	var events []event
	scanned := uint64(0)
	for _, root := range roots {
		filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() || !watchExts[strings.ToLower(filepath.Ext(path))] {
				return nil
			}
			data, rerr := os.ReadFile(path)
			if rerr != nil {
				return nil
			}
			scanned++
			src := string(data)
			w.mu.Lock()
			old, known := w.seen[path]
			if !known || old != src {
				w.seen[path] = src
				events = append(events, event{path: path, source: src, old: old, isNew: !known})
			}
			w.mu.Unlock()
			return nil
		})
	}

	for _, ev := range events {
		if w.srv.adm.saturated() {
			// The overload breaker: prewarm warmth is the first work a
			// saturated server sheds. Forgetting the observation makes the
			// next poll re-detect the change and warm it once load falls —
			// a missed prewarm costs warmth, never correctness.
			w.mu.Lock()
			if ev.isNew {
				delete(w.seen, ev.path)
			} else {
				w.seen[ev.path] = ev.old
			}
			w.stats.PrewarmsShed++
			w.mu.Unlock()
			w.srv.hist.Add(HistoryEntry{
				Time:    time.Now(),
				Kind:    "watch",
				Target:  ev.path,
				Verdict: "SHED",
				Detail:  "prewarm shed: server saturated",
			})
			continue
		}
		w.prewarm(ev.path, ev.source, ev.old, ev.isNew)
	}

	w.mu.Lock()
	w.stats.Polls++
	w.stats.FilesScanned += scanned
	st := w.stats
	w.mu.Unlock()
	return st
}

// prewarm loads the changed file into the server's snapshot cache, builds
// its call graph, computes the dirty set against the previous content when
// there is one, and records the event in the request history.
func (w *watcher) prewarm(path, source, old string, isNew bool) {
	start := time.Now()
	if w.testPrewarmStarted != nil {
		select {
		case w.testPrewarmStarted <- struct{}{}:
		default:
		}
	}
	if w.testPrewarmDelay > 0 {
		time.Sleep(w.testPrewarmDelay)
	}
	snapBefore := w.srv.snapshots.Stats()
	var detail string
	snap, err := w.srv.snapshots.Load(source)
	switch {
	case err != nil:
		detail = fmt.Sprintf("does not build: %v", err)
	case isNew:
		snap.Graph()
		detail = "new file"
	default:
		snap.Graph()
		detail = "changed"
		if oldSnap, oerr := w.srv.snapshots.Load(old); oerr == nil {
			d := sched.ComputeDirtySnapshots(oldSnap, snap)
			w.mu.Lock()
			w.stats.DirtySets++
			w.mu.Unlock()
			switch {
			case d.All:
				detail = "changed; dirty: whole program"
			case len(d.SortedMethods()) > 0:
				detail = "changed; dirty: " + strings.Join(d.SortedMethods(), ", ")
			default:
				detail = "changed; dirty: none (formatting only)"
			}
		}
	}
	w.mu.Lock()
	if err == nil {
		w.stats.Prewarmed++
	}
	if !isNew {
		w.stats.Changes++
		w.stats.LastChange = path
	}
	w.mu.Unlock()
	snapDelta := w.srv.snapshots.Stats().Sub(snapBefore)
	w.srv.hist.Add(HistoryEntry{
		Time:       start,
		Kind:       "watch",
		Target:     path,
		Verdict:    "PREWARMED",
		Detail:     detail,
		DurationMS: float64(time.Since(start)) / float64(time.Millisecond),
		Cache: CacheDelta{
			SnapshotHits:     snapDelta.Hits,
			SnapshotMisses:   snapDelta.Misses,
			SnapshotCompiles: snapDelta.Compiles,
		},
	})
}

// statsSnapshot returns a copy of the watcher counters.
func (w *watcher) statsSnapshot() WatcherStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}
