// Package callgraph builds static call graphs over resolved MiniJ programs
// and enumerates execution trees: for a contract's target statement, the set
// of entry→target call paths that concolic execution must cover. This plays
// the role Soot plays in the paper's prototype.
package callgraph

import (
	"fmt"
	"sort"
	"strings"

	"lisa/internal/minij"
)

// CallSite is one static call edge occurrence.
type CallSite struct {
	Caller *minij.Method
	Callee *minij.Method
	Call   *minij.Call
	// Dynamic marks edges added conservatively because the receiver's
	// static type was unknown (container elements).
	Dynamic bool
}

// String renders the edge.
func (cs CallSite) String() string {
	return fmt.Sprintf("%s -> %s @%s", cs.Caller.FullName(), cs.Callee.FullName(), cs.Call.Pos())
}

// Graph is a static call graph.
type Graph struct {
	Prog    *minij.Program
	Callees map[*minij.Method][]CallSite
	Callers map[*minij.Method][]CallSite
}

// Build constructs the call graph of a resolved program. Instance calls on
// statically unknown receivers link conservatively to every compatible
// method (same name and arity) in the program.
func Build(prog *minij.Program) *Graph {
	g := &Graph{
		Prog:    prog,
		Callees: map[*minij.Method][]CallSite{},
		Callers: map[*minij.Method][]CallSite{},
	}
	for _, caller := range prog.Methods() {
		minij.WalkExprs(caller.Body, func(e minij.Expr) {
			call, ok := e.(*minij.Call)
			if !ok {
				return
			}
			for _, edge := range g.resolveCall(caller, call) {
				g.Callees[caller] = append(g.Callees[caller], edge)
				g.Callers[edge.Callee] = append(g.Callers[edge.Callee], edge)
			}
		})
	}
	return g
}

func (g *Graph) resolveCall(caller *minij.Method, call *minij.Call) []CallSite {
	switch call.Kind {
	case minij.CallSelf:
		if m := caller.Class.Method(call.Name); m != nil {
			return []CallSite{{Caller: caller, Callee: m, Call: call}}
		}
	case minij.CallStatic:
		className := call.Recv.(*minij.Ident).Name
		if m := g.Prog.Method(className, call.Name); m != nil {
			return []CallSite{{Caller: caller, Callee: m, Call: call}}
		}
	case minij.CallInstance:
		rt := g.Prog.TypeOf(call.Recv)
		if rt.Kind == minij.TypeObject {
			if m := g.Prog.Method(rt.Class, call.Name); m != nil {
				return []CallSite{{Caller: caller, Callee: m, Call: call}}
			}
			return nil
		}
		if rt.Kind == minij.TypeAny {
			// Conservative: any class method with matching name and arity.
			var edges []CallSite
			for _, c := range g.Prog.Classes {
				if m := c.Method(call.Name); m != nil && !m.Static && len(m.Params) == len(call.Args) {
					edges = append(edges, CallSite{Caller: caller, Callee: m, Call: call, Dynamic: true})
				}
			}
			return edges
		}
	}
	return nil
}

// Roots returns the methods with no callers, sorted by qualified name.
// These are the default entry functions of an execution tree.
func (g *Graph) Roots() []*minij.Method {
	var out []*minij.Method
	for _, m := range g.Prog.Methods() {
		if len(g.Callers[m]) == 0 {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}

// Reachable returns the set of methods reachable from the given roots.
func (g *Graph) Reachable(roots []*minij.Method) map[*minij.Method]bool {
	seen := map[*minij.Method]bool{}
	var visit func(m *minij.Method)
	visit = func(m *minij.Method) {
		if seen[m] {
			return
		}
		seen[m] = true
		for _, e := range g.Callees[m] {
			visit(e.Callee)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return seen
}

// Path is a call chain from an entry method down to a target method:
// Path[0].Caller is the entry and Path[len-1].Callee is the target's
// enclosing method. An empty path means the target method is itself an
// entry.
type Path []CallSite

// Entry returns the entry method of the path given the target method (used
// when the path is empty).
func (p Path) Entry(target *minij.Method) *minij.Method {
	if len(p) == 0 {
		return target
	}
	return p[0].Caller
}

// String renders the chain "A.entry -> B.mid -> C.target".
func (p Path) String() string {
	if len(p) == 0 {
		return "(direct)"
	}
	parts := []string{p[0].Caller.FullName()}
	for _, cs := range p {
		parts = append(parts, cs.Callee.FullName())
	}
	return strings.Join(parts, " -> ")
}

// Tree is the execution tree rooted at a target method: every acyclic
// entry→target call chain.
type Tree struct {
	Target *minij.Method
	Paths  []Path
	// Truncated reports that enumeration hit MaxPaths or MaxDepth and the
	// tree is incomplete; the checker must surface this to developers
	// rather than report full coverage.
	Truncated bool
}

// Enumeration limits.
const (
	DefaultMaxDepth = 24
	DefaultMaxPaths = 4096
)

// TreeOptions bound execution-tree enumeration.
type TreeOptions struct {
	// IsEntry designates entry methods. Nil means "methods with no
	// callers".
	IsEntry func(*minij.Method) bool
	// MaxDepth bounds call-chain length (0 = DefaultMaxDepth).
	MaxDepth int
	// MaxPaths bounds the number of enumerated paths (0 = DefaultMaxPaths).
	MaxPaths int
}

// ExecutionTree enumerates all acyclic call paths from entry methods to the
// target method by walking the caller relation backwards from the target,
// exactly as §3.2 describes ("statically building a call graph and
// traversing all paths to each target").
func (g *Graph) ExecutionTree(target *minij.Method, opts TreeOptions) *Tree {
	isEntry := opts.IsEntry
	if isEntry == nil {
		isEntry = func(m *minij.Method) bool { return len(g.Callers[m]) == 0 }
	}
	maxDepth := opts.MaxDepth
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	maxPaths := opts.MaxPaths
	if maxPaths <= 0 {
		maxPaths = DefaultMaxPaths
	}
	tree := &Tree{Target: target}
	onPath := map[*minij.Method]bool{}

	// walk ascends from m toward entries; suffix is the call chain from m
	// down to the target (in top-down order).
	var walk func(m *minij.Method, suffix Path, depth int)
	walk = func(m *minij.Method, suffix Path, depth int) {
		if len(tree.Paths) >= maxPaths {
			tree.Truncated = true
			return
		}
		if isEntry(m) {
			cp := make(Path, len(suffix))
			copy(cp, suffix)
			tree.Paths = append(tree.Paths, cp)
			// An entry can also have callers (a public API called
			// internally); fall through and keep ascending too.
		}
		if depth >= maxDepth {
			tree.Truncated = true
			return
		}
		onPath[m] = true
		defer delete(onPath, m)
		for _, edge := range g.Callers[m] {
			if onPath[edge.Caller] {
				continue // break recursion cycles
			}
			walk(edge.Caller, append(Path{edge}, suffix...), depth+1)
		}
	}
	walk(target, nil, 0)
	sort.Slice(tree.Paths, func(i, j int) bool {
		return pathLess(tree.Paths[i], tree.Paths[j], target)
	})
	return tree
}

func pathLess(a, b Path, target *minij.Method) bool {
	as, bs := a.String(), b.String()
	if as != bs {
		return as < bs
	}
	return len(a) < len(b)
}

// MethodsOnPath returns the ordered methods traversed by a path ending at
// target.
func MethodsOnPath(p Path, target *minij.Method) []*minij.Method {
	if len(p) == 0 {
		return []*minij.Method{target}
	}
	out := []*minij.Method{p[0].Caller}
	for _, cs := range p {
		out = append(out, cs.Callee)
	}
	return out
}
