package callgraph

import (
	"fmt"

	"lisa/internal/minij"
)

// EdgeSummary is one call edge in serializable form: methods by qualified
// name, the call expression by source position within the caller.
type EdgeSummary struct {
	Caller  string `json:"caller"`
	Callee  string `json:"callee"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Dynamic bool   `json:"dynamic,omitempty"`
}

// Summary is a call graph flattened to data, suitable for persisting next
// to a program's canonical form. Edges keep the exact order Build
// discovered them in, so a graph rebuilt by FromSummary is
// indistinguishable — including iteration order — from one Build produced.
type Summary struct {
	Edges []EdgeSummary `json:"edges"`
}

// Summary flattens the graph. The edge order is Build's discovery order:
// callers in program order, each caller's call sites in AST walk order.
func (g *Graph) Summary() *Summary {
	sum := &Summary{}
	for _, caller := range g.Prog.Methods() {
		for _, e := range g.Callees[caller] {
			pos := e.Call.Pos()
			sum.Edges = append(sum.Edges, EdgeSummary{
				Caller:  e.Caller.FullName(),
				Callee:  e.Callee.FullName(),
				Line:    pos.Line,
				Col:     pos.Col,
				Dynamic: e.Dynamic,
			})
		}
	}
	return sum
}

// FromSummary re-anchors a persisted summary onto a freshly parsed program:
// methods resolve by qualified name, call expressions by position within
// the caller's body. Any anchor that fails to resolve (or resolves
// ambiguously) is an error, and the caller falls back to Build — a stale
// or corrupt summary must never produce a silently wrong graph.
func FromSummary(prog *minij.Program, sum *Summary) (*Graph, error) {
	methods := map[string]*minij.Method{}
	for _, m := range prog.Methods() {
		methods[m.FullName()] = m
	}
	type callKey struct {
		method *minij.Method
		line   int
		col    int
	}
	calls := map[callKey]*minij.Call{}
	for _, m := range prog.Methods() {
		minij.WalkExprs(m.Body, func(e minij.Expr) {
			call, ok := e.(*minij.Call)
			if !ok {
				return
			}
			pos := call.Pos()
			k := callKey{m, pos.Line, pos.Col}
			if _, dup := calls[k]; dup {
				calls[k] = nil // ambiguous anchor: poison it
				return
			}
			calls[k] = call
		})
	}
	g := &Graph{
		Prog:    prog,
		Callees: map[*minij.Method][]CallSite{},
		Callers: map[*minij.Method][]CallSite{},
	}
	for _, e := range sum.Edges {
		caller, ok := methods[e.Caller]
		if !ok {
			return nil, fmt.Errorf("callgraph: summary caller %s not in program", e.Caller)
		}
		callee, ok := methods[e.Callee]
		if !ok {
			return nil, fmt.Errorf("callgraph: summary callee %s not in program", e.Callee)
		}
		call, ok := calls[callKey{caller, e.Line, e.Col}]
		if !ok || call == nil {
			return nil, fmt.Errorf("callgraph: no unambiguous call at %s %d:%d", e.Caller, e.Line, e.Col)
		}
		edge := CallSite{Caller: caller, Callee: callee, Call: call, Dynamic: e.Dynamic}
		g.Callees[caller] = append(g.Callees[caller], edge)
		g.Callers[callee] = append(g.Callers[callee], edge)
	}
	return g, nil
}
