package smt

import "context"

// ReferenceSolve decides satisfiability with the retained naive solver: the
// pre-optimization DPLL search that rebuilds a difference-bound matrix and
// runs full Floyd–Warshall at every node. It is kept as the differential
// oracle for the optimized pipeline and as the pre-PR baseline for
// BenchmarkSolverHotPath; production callers use Solve/SAT and friends.
// Limits semantics match SolveLim — ErrBudget on node exhaustion, the
// context's error on cancellation — but there is no fault injection, no
// caching, and no stats accounting.
func ReferenceSolve(f Formula, lim Limits) (sat bool, model Model, err error) {
	max := lim.MaxNodes
	if max <= 0 {
		max = DefaultMaxNodes
	}
	atoms := Atoms(f)
	keys := make([]string, len(atoms))
	byKey := make(map[string]Atom, len(atoms))
	for i, a := range atoms {
		k, _ := a.Key()
		keys[i] = k
		byKey[k] = a
	}
	s := &refSolver{f: f, keys: keys, byKey: byKey, assign: Model{}, max: max, ctx: lim.Ctx}
	ok, err := s.search(0)
	if err != nil {
		return false, nil, err
	}
	if !ok {
		return false, nil, nil
	}
	return true, s.witness, nil
}

// refSolver is the pre-optimization search: atoms are decided in canonical
// key order and the whole theory state is rebuilt at every node.
type refSolver struct {
	f       Formula
	keys    []string
	byKey   map[string]Atom
	assign  Model
	witness Model
	nodes   int
	max     int
	ctx     context.Context
}

// search assigns atoms keys[i:] and reports whether a consistent satisfying
// assignment exists.
func (s *refSolver) search(i int) (bool, error) {
	s.nodes++
	if s.nodes > s.max {
		return false, ErrBudget
	}
	if s.ctx != nil && s.nodes&ctxPollMask == 0 {
		select {
		case <-s.ctx.Done():
			return false, s.ctx.Err()
		default:
		}
	}
	switch eval3(s.f, s.assign) {
	case triFalse:
		return false, nil
	case triTrue:
		if s.theoryConsistent() {
			s.witness = make(Model, len(s.assign))
			for k, v := range s.assign {
				s.witness[k] = v
			}
			return true, nil
		}
		return false, nil
	}
	if i >= len(s.keys) {
		// All atoms assigned yet value unknown cannot happen; defensive.
		return false, nil
	}
	k := s.keys[i]
	for _, v := range []bool{true, false} {
		s.assign[k] = v
		if s.theoryConsistent() {
			ok, err := s.search(i + 1)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		delete(s.assign, k)
	}
	return false, nil
}

// theoryConsistent checks the currently assigned literals against the
// integer difference-bound theory and the string equality theory.
func (s *refSolver) theoryConsistent() bool {
	dbm := newDBM()
	strEq := map[string]string{}   // path -> required value
	strNe := map[string][]string{} // path -> excluded values
	for k, v := range s.assign {
		a := s.byKey[k]
		switch a.Kind {
		case AtomCmpC:
			dbm.addCmpC(a, v)
		case AtomCmpV:
			dbm.addCmpV(a, v)
		case AtomStrEq:
			// Normalized atoms always have OpEq.
			if v {
				if prev, ok := strEq[a.Path]; ok && prev != a.StrVal {
					return false
				}
				strEq[a.Path] = a.StrVal
			} else {
				strNe[a.Path] = append(strNe[a.Path], a.StrVal)
			}
		}
	}
	for p, val := range strEq {
		for _, ex := range strNe[p] {
			if ex == val {
				return false
			}
		}
	}
	return dbm.consistent()
}

// dbm is a difference-bound matrix over integer paths plus a zero node.
// Edge u→v with weight c encodes u - v <= c.
type dbm struct {
	idx    map[string]int
	names  []string
	edges  []dbmEdge
	diseqC []diseqConst
	diseqV []diseqPair
}

type dbmEdge struct {
	u, v int
	c    int64
}

type diseqConst struct {
	x int
	c int64
}

type diseqPair struct{ x, y int }

func newDBM() *dbm {
	return &dbm{idx: map[string]int{"": 0}, names: []string{""}}
}

func (d *dbm) node(path string) int {
	if i, ok := d.idx[path]; ok {
		return i
	}
	i := len(d.names)
	d.idx[path] = i
	d.names = append(d.names, path)
	return i
}

func (d *dbm) add(u, v int, c int64) {
	d.edges = append(d.edges, dbmEdge{u: u, v: v, c: c})
}

// addCmpC encodes a normalized constant comparison (Op in Eq, Le, Lt) with
// the given truth value.
func (d *dbm) addCmpC(a Atom, v bool) {
	x := d.node(a.Path)
	op := a.Op
	if !v {
		op = op.Negate()
	}
	switch op {
	case OpEq:
		d.add(x, 0, a.IntVal)
		d.add(0, x, -a.IntVal)
	case OpNe:
		d.diseqC = append(d.diseqC, diseqConst{x: x, c: a.IntVal})
	case OpLe:
		d.add(x, 0, a.IntVal)
	case OpLt:
		d.add(x, 0, a.IntVal-1)
	case OpGe:
		d.add(0, x, -a.IntVal)
	case OpGt:
		d.add(0, x, -a.IntVal-1)
	}
}

// addCmpV encodes a normalized variable comparison with the given truth
// value.
func (d *dbm) addCmpV(a Atom, v bool) {
	x, y := d.node(a.Path), d.node(a.Path2)
	op := a.Op
	if !v {
		op = op.Negate()
	}
	switch op {
	case OpEq:
		d.add(x, y, 0)
		d.add(y, x, 0)
	case OpNe:
		d.diseqV = append(d.diseqV, diseqPair{x: x, y: y})
	case OpLe:
		d.add(x, y, 0)
	case OpLt:
		d.add(x, y, -1)
	case OpGe:
		d.add(y, x, 0)
	case OpGt:
		d.add(y, x, -1)
	}
}

const inf = int64(1) << 60

// consistent runs Floyd–Warshall and checks for negative cycles, then
// verifies disequalities against forced equalities. The disequality pass is
// complete for forced point values and forced variable equalities; exotic
// finite-domain disequality chains may be declared consistent (erring
// toward SAT).
func (d *dbm) consistent() bool {
	n := len(d.names)
	if n == 1 && len(d.diseqC) == 0 && len(d.diseqV) == 0 {
		return true
	}
	if len(d.edges) == 0 {
		// Short-circuit for string-only or disequality-only assignments:
		// with no difference bounds there is nothing to propagate and no
		// forced equality, so the matrix cannot reject anything. The one
		// exception is a degenerate self-disequality (x != x), which is
		// false with or without bounds.
		for _, dq := range d.diseqV {
			if dq.x == dq.y {
				return false
			}
		}
		return true
	}
	dist := make([][]int64, n)
	for i := range dist {
		dist[i] = make([]int64, n)
		for j := range dist[i] {
			if i == j {
				dist[i][j] = 0
			} else {
				dist[i][j] = inf
			}
		}
	}
	for _, e := range d.edges {
		if e.c < dist[e.u][e.v] {
			dist[e.u][e.v] = e.c
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if dist[i][k] == inf {
				continue
			}
			for j := 0; j < n; j++ {
				if dist[k][j] == inf {
					continue
				}
				if s := dist[i][k] + dist[k][j]; s < dist[i][j] {
					dist[i][j] = s
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if dist[i][i] < 0 {
			return false
		}
	}
	for _, dq := range d.diseqC {
		// x != c conflicts iff bounds force x == c.
		if dist[dq.x][0] == dq.c && dist[0][dq.x] == -dq.c {
			return false
		}
	}
	for _, dq := range d.diseqV {
		// x != y conflicts iff bounds force x == y.
		if dist[dq.x][dq.y] == 0 && dist[dq.y][dq.x] == 0 {
			return false
		}
	}
	return true
}
