package infer

import (
	"strings"
	"testing"

	"lisa/internal/contract"
	"lisa/internal/smt"
	"lisa/internal/ticket"
)

// The ZK-1208 analogue: the buggy processCreate only checks for null; the
// fix strengthens the guard to reject closing sessions.
const zkBuggy = `
class Session {
	bool closing;
}

class DataTree {
	map nodes;

	void createEphemeral(string path, Session owner) {
		nodes.put(path, owner);
	}
}

class PrepProcessor {
	DataTree tree;

	void processCreate(string path, Session s) {
		if (s == null) {
			throw "KeeperException";
		}
		tree.createEphemeral(path, s);
	}
}
`

const zkFixed = `
class Session {
	bool closing;
}

class DataTree {
	map nodes;

	void createEphemeral(string path, Session owner) {
		nodes.put(path, owner);
	}
}

class PrepProcessor {
	DataTree tree;

	void processCreate(string path, Session s) {
		if (s == null || s.closing) {
			throw "KeeperException";
		}
		tree.createEphemeral(path, s);
	}
}
`

func zkTicket() *ticket.Ticket {
	return &ticket.Ticket{
		ID:          "ZK-1208",
		Title:       "Ephemeral node not removed after the client session is long gone",
		Description: "A concurrency bug allowed creation of an ephemeral node on a closing session, leaving stale data after the session terminated.",
		Discussion:  []string{"Reject the create request if the session is closing."},
		BuggySource: zkBuggy,
		FixedSource: zkFixed,
		RegressionTests: []ticket.TestCase{
			{
				Name:        "PrepTest.rejectClosingSession",
				Description: "create ephemeral on closing session must be rejected",
				Class:       "PrepTest",
				Method:      "rejectClosingSession",
				Source: `
class PrepTest {
	static void rejectClosingSession() {
		PrepProcessor p = new PrepProcessor();
		p.tree = new DataTree();
		p.tree.nodes = newMap();
		Session s = new Session();
		s.closing = false;
		p.processCreate("/live", s);
		assertTrue(p.tree.nodes.has("/live"), "live session creates node");
	}
}
`,
			},
		},
	}
}

func TestInferZKEphemeralRule(t *testing.T) {
	pa := &PatchAnalyzer{}
	res, err := pa.Infer(zkTicket())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Semantics) != 1 {
		t.Fatalf("semantics = %d (%v), want 1", len(res.Semantics), res.Semantics)
	}
	sem := res.Semantics[0]
	if sem.Target.Callee != "DataTree.createEphemeral" {
		t.Errorf("target = %q", sem.Target.Callee)
	}
	if idx, ok := sem.Target.Bind["s"]; !ok || idx != 1 {
		t.Errorf("bind = %v, want s->arg1", sem.Target.Bind)
	}
	want := "s != null && !(s.closing)"
	if sem.Pre.String() != want {
		t.Errorf("pre = %q, want %q", sem.Pre, want)
	}
	if len(res.Reasoning) < 3 {
		t.Errorf("reasoning too thin: %v", res.Reasoning)
	}
	if !strings.Contains(res.HighLevel, "ZK-1208") {
		t.Errorf("high level = %q", res.HighLevel)
	}
}

func TestInferWrappingGuard(t *testing.T) {
	buggy := `
class Block {
	bool located;

	bool hasLocations() {
		return located;
	}
}

class Listing {
	list out;

	void addBlock(Block b) {
		out.add(b);
	}
}

class NameNode {
	Listing listing;

	void serve(Block b) {
		listing.addBlock(b);
	}
}
`
	fixed := strings.Replace(buggy, `	void serve(Block b) {
		listing.addBlock(b);
	}`, `	void serve(Block b) {
		if (b.hasLocations()) {
			listing.addBlock(b);
		}
	}`, 1)
	tk := &ticket.Ticket{
		ID: "HDFS-13924", Title: "Handle blockmissingexception when reading from observer",
		BuggySource: buggy, FixedSource: fixed,
	}
	res, err := (&PatchAnalyzer{}).Infer(tk)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Semantics) != 1 {
		t.Fatalf("semantics = %v", res.Semantics)
	}
	sem := res.Semantics[0]
	if sem.Target.Callee != "Listing.addBlock" {
		t.Errorf("target = %q", sem.Target.Callee)
	}
	// Getter normalization inlines hasLocations() to its backing field.
	if sem.Pre.String() != "b.located" {
		t.Errorf("pre = %q", sem.Pre)
	}
	if idx := sem.Target.Bind["b"]; idx != 0 {
		t.Errorf("bind = %v", sem.Target.Bind)
	}
}

func TestInferNoChange(t *testing.T) {
	tk := &ticket.Ticket{ID: "X-1", BuggySource: zkBuggy, FixedSource: zkBuggy}
	res, err := (&PatchAnalyzer{}).Infer(tk)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Semantics) != 0 {
		t.Errorf("semantics = %v, want none", res.Semantics)
	}
}

const syncBuggy = `
class SyncProcessor {
	list nodes;

	void serializeNode(string path) {
		synchronized (nodes) {
			ioWrite("node", path);
			nodes.add(path);
		}
	}
}
`

const syncFixed = `
class SyncProcessor {
	list nodes;

	void serializeNode(string path) {
		synchronized (nodes) {
			nodes.add(path);
		}
		ioWrite("node", path);
	}
}
`

func TestInferGeneralizesBlockingRule(t *testing.T) {
	tk := &ticket.Ticket{
		ID:          "ZK-2201",
		Title:       "Zombie cluster: serialization stuck inside synchronized block",
		BuggySource: syncBuggy, FixedSource: syncFixed,
	}
	res, err := (&PatchAnalyzer{Generalize: true}).Infer(tk)
	if err != nil {
		t.Fatal(err)
	}
	var literal, general *contract.Semantic
	for _, s := range res.Semantics {
		if s.Kind != contract.StructuralKind {
			continue
		}
		if strings.Contains(s.ID, "literal") {
			literal = s
		} else {
			general = s
		}
	}
	if literal == nil || general == nil {
		t.Fatalf("expected literal+general structural semantics, got %v", res.Semantics)
	}
	rule := literal.Structural.(contract.NoBlockingInSync)
	if !rule.Only["SyncProcessor.serializeNode"] {
		t.Errorf("literal scope = %v", rule.Only)
	}
	if len(general.Structural.(contract.NoBlockingInSync).Only) != 0 {
		t.Error("general rule should be unscoped")
	}
	// Without Generalize, no structural semantics appear.
	res2, _ := (&PatchAnalyzer{}).Infer(tk)
	for _, s := range res2.Semantics {
		if s.Kind == contract.StructuralKind {
			t.Errorf("ungeneralized inference emitted structural rule %s", s.ID)
		}
	}
}

func TestCrossCheckAcceptsTrueRule(t *testing.T) {
	tk := zkTicket()
	res, err := (&PatchAnalyzer{}).Infer(tk)
	if err != nil {
		t.Fatal(err)
	}
	cc := CrossCheck(res.Semantics[0], tk)
	if !cc.Grounded {
		t.Errorf("true rule rejected: %s", cc.Reason)
	}
	if !cc.Confirmed {
		t.Errorf("true rule not dynamically confirmed: %s", cc.Reason)
	}
}

func TestCrossCheckRejectsMutatedAndHallucinated(t *testing.T) {
	tk := zkTicket()
	res, err := (&PatchAnalyzer{}).Infer(tk)
	if err != nil {
		t.Fatal(err)
	}
	base := res.Semantics[0]

	// Flipped polarity: "session must be closing" contradicts the patch.
	mutated := *base
	mutated.ID = base.ID + "-mutated"
	mutated.Pre = smt.MustParsePredicate(`s != null && s.closing == true`)
	if cc := CrossCheck(&mutated, tk); cc.Grounded {
		t.Errorf("mutated rule accepted: %s", cc.Reason)
	}

	// Fabricated conjunct over a nonexistent predicate: no path checks it.
	hallucinated := *base
	hallucinated.ID = base.ID + "-hallucinated"
	hallucinated.Pre = smt.NewAnd(base.Pre, smt.NewAtom(smt.BoolAtom("s.phantomFlag")))
	if cc := CrossCheck(&hallucinated, tk); cc.Grounded {
		t.Errorf("hallucinated rule accepted: %s", cc.Reason)
	}

	// Rule that matches nothing.
	unmatched := *base
	unmatched.ID = "ghost"
	unmatched.Target = contract.TargetPattern{Callee: "Ghost.method", Bind: map[string]int{"s": 0}}
	if cc := CrossCheck(&unmatched, tk); cc.Grounded {
		t.Errorf("unmatched rule accepted: %s", cc.Reason)
	}
}

func TestStochasticInferencerDeterministicPerSeed(t *testing.T) {
	tk := zkTicket()
	mk := func(seed int64) []string {
		si := &StochasticInferencer{
			Base: &PatchAnalyzer{}, Seed: seed,
			DropRate: 0.3, MutateRate: 0.3, HallucinateRate: 0.3,
		}
		res, err := si.Infer(tk)
		if err != nil {
			t.Fatal(err)
		}
		var ids []string
		for _, s := range res.Semantics {
			ids = append(ids, s.ID+"|"+s.Pre.String())
		}
		return ids
	}
	a1, a2 := mk(7), mk(7)
	if strings.Join(a1, ",") != strings.Join(a2, ",") {
		t.Errorf("same seed diverged: %v vs %v", a1, a2)
	}
	// Across many seeds, perturbations must actually occur.
	var sawDrop, sawPerturb bool
	for seed := int64(0); seed < 40; seed++ {
		ids := mk(seed)
		if len(ids) == 0 {
			sawDrop = true
			continue
		}
		for _, id := range ids {
			if IsPerturbed(strings.SplitN(id, "|", 2)[0]) {
				sawPerturb = true
			}
		}
	}
	if !sawDrop || !sawPerturb {
		t.Errorf("noise never manifested: drop=%v perturb=%v", sawDrop, sawPerturb)
	}
}

func TestFilterGrounded(t *testing.T) {
	tk := zkTicket()
	si := &StochasticInferencer{
		Base: &PatchAnalyzer{}, Seed: 3,
		MutateRate: 1.0, // always corrupt
	}
	res, err := si.Infer(tk)
	if err != nil {
		t.Fatal(err)
	}
	kept, rejected := FilterGrounded(res, tk)
	if len(kept) != 0 {
		t.Errorf("kept corrupted semantics: %v", kept)
	}
	if len(rejected) == 0 {
		t.Error("nothing rejected")
	}
}

// TestInferElseIfGuard: a guard strengthened inside an else-if rung is
// still extracted, protecting the statements after the ladder.
func TestInferElseIfGuard(t *testing.T) {
	buggy := `
class Res {
	bool open;
	int mode;
}

class Store {
	list ops;

	void apply(Res r, string op) {
		ops.add(op);
	}
}

class Handler {
	Store store;

	void handle(Res r, string op, bool fast) {
		if (fast) {
			log("fast path");
		} else if (r == null) {
			throw "NoResource";
		}
		store.apply(r, op);
	}
}
`
	fixed := strings.Replace(buggy, `} else if (r == null) {`, `} else if (r == null || !r.open) {`, 1)
	tk := &ticket.Ticket{
		ID: "ELSE-1", Title: "apply on closed resource",
		BuggySource: buggy, FixedSource: fixed,
	}
	res, err := (&PatchAnalyzer{}).Infer(tk)
	if err != nil {
		t.Fatal(err)
	}
	var found *contract.Semantic
	for _, sem := range res.Semantics {
		if sem.Target.Callee == "Store.apply" {
			found = sem
		}
	}
	if found == nil {
		t.Fatalf("else-if guard not extracted: %v", res.Semantics)
	}
	if found.Pre.String() != "r != null && r.open" {
		t.Errorf("pre = %q", found.Pre)
	}
}
