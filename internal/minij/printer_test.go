package minij

import (
	"testing"
	"testing/quick"
)

func TestCanonExpr(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`a + b * c`, `a + b * c`},
		{`(a + b) * c`, `(a + b) * c`},
		{`a == null || a.closing`, `a == null || a.closing`},
		{`!(a && b)`, `!(a && b)`},
		{`x.get(1).f`, `x.get(1).f`},
		{`new Foo(1, "two")`, `new Foo(1, "two")`},
		{`a - (b - c)`, `a - (b - c)`},
		{`a - b - c`, `a - b - c`},
		{`s.isClosing() == false`, `s.isClosing() == false`},
	}
	for _, c := range cases {
		src := "class T { void m(int a, int b, int c, int x, string s) { log(" + c.src + "); } }"
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%s): %v", c.src, err)
		}
		call := prog.Method("T", "m").Body.Stmts[0].(*ExprStmt).E.(*Call)
		if got := CanonExpr(call.Args[0]); got != c.want {
			t.Errorf("CanonExpr(%s) = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestCanonStmt(t *testing.T) {
	src := `
class T {
	void m(Session s) {
		int x = 1;
		x = x + 1;
		if (s == null || s.closing) {
			throw "err";
		}
		return;
	}
}

class Session {
	bool closing;
}
`
	prog := mustParseAndCheck(t, src)
	m := prog.Method("T", "m")
	got := []string{}
	for _, s := range m.Body.Stmts {
		got = append(got, CanonStmt(s))
	}
	want := []string{
		"int x = 1;",
		"x = x + 1;",
		"if (s == null || s.closing)",
		"return;",
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("stmt %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestFormatRoundTrip checks the pretty-printer/parser round-trip property:
// formatting a program, re-parsing it, and formatting again must be a fixed
// point.
func TestFormatRoundTrip(t *testing.T) {
	prog := mustParseAndCheck(t, sampleProgram)
	once := FormatProgram(prog)
	reparsed, err := Parse(once)
	if err != nil {
		t.Fatalf("reparse formatted output: %v\n%s", err, once)
	}
	twice := FormatProgram(reparsed)
	if once != twice {
		t.Errorf("format not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", once, twice)
	}
}

// TestCanonExprRoundTrip property: canonical text of a generated expression
// re-parses to the same canonical text.
func TestCanonExprRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		e := genExpr(newRng(seed), 4)
		text := CanonExpr(e)
		src := "class T { void m(int a, int b, int c, bool p, bool q) { log(" + text + "); } }"
		prog, err := Parse(src)
		if err != nil {
			t.Logf("reparse %q: %v", text, err)
			return false
		}
		call := prog.Method("T", "m").Body.Stmts[0].(*ExprStmt).E.(*Call)
		return CanonExpr(call.Args[0]) == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// newRng is a tiny deterministic linear congruential generator so property
// tests stay stdlib-only and reproducible.
type rng struct{ state uint64 }

func newRng(seed int64) *rng {
	return &rng{state: uint64(seed)*2862933555777941757 + 3037000493}
}

func (r *rng) next() uint64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return r.state >> 16
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// genExpr generates a random well-typed-ish int/bool expression tree for the
// round-trip property. Only int-valued leaves feed arithmetic and only
// bool-valued subtrees feed logic, so the result always resolves.
func genExpr(r *rng, depth int) Expr {
	return genBool(r, depth)
}

func genBool(r *rng, depth int) Expr {
	if depth <= 0 {
		leaves := []string{"p", "q"}
		return &Ident{Name: leaves[r.intn(len(leaves))]}
	}
	switch r.intn(5) {
	case 0:
		return &Binary{Op: "&&", X: genBool(r, depth-1), Y: genBool(r, depth-1)}
	case 1:
		return &Binary{Op: "||", X: genBool(r, depth-1), Y: genBool(r, depth-1)}
	case 2:
		return &Unary{Op: "!", X: genBool(r, depth-1)}
	case 3:
		ops := []string{"<", "<=", ">", ">=", "==", "!="}
		return &Binary{Op: ops[r.intn(len(ops))], X: genInt(r, depth-1), Y: genInt(r, depth-1)}
	default:
		leaves := []string{"p", "q", "true", "false"}
		name := leaves[r.intn(len(leaves))]
		if name == "true" {
			return &BoolLit{Value: true}
		}
		if name == "false" {
			return &BoolLit{Value: false}
		}
		return &Ident{Name: name}
	}
}

func genInt(r *rng, depth int) Expr {
	if depth <= 0 {
		if r.intn(2) == 0 {
			return &IntLit{Value: int64(r.intn(100))}
		}
		leaves := []string{"a", "b", "c"}
		return &Ident{Name: leaves[r.intn(len(leaves))]}
	}
	ops := []string{"+", "-", "*", "/", "%"}
	return &Binary{Op: ops[r.intn(len(ops))], X: genInt(r, depth-1), Y: genInt(r, depth-1)}
}
