package experiments

import (
	"fmt"
	"strings"
	"time"

	"lisa/internal/concolic"
	"lisa/internal/contract"
	"lisa/internal/core"
	"lisa/internal/infer"
	"lisa/internal/interp"
	"lisa/internal/minij"
	"lisa/internal/program"
	"lisa/internal/report"
	"lisa/internal/smt"
	"lisa/internal/ticket"
)

// RunEphemeral regenerates the Figures 2-3 walkthrough: infer the rule from
// the ZKS-1208 fix, show the recovered contract, and assert it on the
// ZKS-1496 regression.
func RunEphemeral(c *ticket.Corpus) string {
	cs := c.Get("zk-ephemeral")
	var sb strings.Builder

	e := core.New()
	rep, err := e.ProcessTicket(cs.Tickets[0])
	if err != nil {
		return "error: " + err.Error()
	}
	sb.WriteString(report.Section("Recovered rule from " + cs.Tickets[0].ID))
	for _, sem := range rep.Registered {
		fmt.Fprintf(&sb, "  %s\n  description: %s\n", sem, sem.Description)
	}
	sb.WriteString("\n  reasoning trace:\n")
	for _, r := range rep.Result.Reasoning {
		fmt.Fprintf(&sb, "    - %s\n", r)
	}

	regressed := cs.Tickets[1].BuggySource
	ar, err := e.Assert(regressed, cs.Tests)
	if err != nil {
		return "error: " + err.Error()
	}
	t := &report.Table{
		Title:   "Assertion over the ZKS-1496 regression (one year later)",
		Headers: []string{"site", "path condition", "verdict", "covered by"},
	}
	for _, sr := range ar.Semantics {
		for _, site := range sr.Sites {
			for _, p := range site.Paths {
				t.AddRow(site.Site.Method.FullName(), p.Static.Cond.String(),
					p.Verdict.String(), strings.Join(p.CoveredBy, ","))
			}
		}
	}
	t.AddNote("the patched PrepRequestProcessor path verifies (the paper's sanity check); the new SessionTracker path violates.")
	sb.WriteString(t.Render())

	fixed, err := e.Assert(cs.Tickets[1].FixedSource, nil)
	if err != nil {
		return "error: " + err.Error()
	}
	fmt.Fprintf(&sb, "\nAfter applying the ZKS-1496 fix: %d violation(s), %d verified path(s).\n",
		fixed.Counts.Violations, fixed.Counts.Verified)
	return sb.String()
}

// RunComparison regenerates Figure 4: for every regression in the corpus,
// compare (a) replaying the tests that existed at the time, (b) LISA's
// semantic assertion, and (c) exhaustive checking without pruning or test
// selection — detection and cost.
func RunComparison(c *ticket.Corpus) string {
	type row struct {
		detected int
		total    int
		dur      time.Duration
		paths    int
	}
	var testing, lisa, exhaustive row

	for _, cs := range c.Cases {
		for i, tk := range cs.Tickets[1:] {
			_ = i
			// Tests available before this ticket's fix landed: the suite
			// minus the regression tests this ticket added and minus tests
			// referencing classes newer than this version.
			available := availableTests(cs, tk)

			// (a) Testing: replay the available tests on the buggy version.
			t0 := time.Now()
			failed := false
			for _, tc := range available {
				full := tk.BuggySource + "\n" + tc.Source
				prog, err := compileQuiet(full)
				if err != nil {
					continue // test references classes newer than this version
				}
				in := interp.New(prog)
				if _, err := in.CallStatic(tc.Class, tc.Method); err != nil {
					failed = true
				}
			}
			testing.dur += time.Since(t0)
			testing.total++
			if failed {
				testing.detected++
			}

			// (b) LISA: rule from the first fix, pruned static assertion
			// plus similarity-selected tests.
			t0 = time.Now()
			e := core.New()
			if _, err := e.ProcessTicket(cs.Tickets[0]); err == nil {
				if rep, err := e.Assert(tk.BuggySource, available); err == nil {
					lisa.total++
					if rep.Counts.Violations > 0 {
						lisa.detected++
					}
					lisa.paths += rep.Counts.Verified + rep.Counts.Violations + rep.Counts.Unknown
				}
			}
			lisa.dur += time.Since(t0)

			// (c) Exhaustive: no pruning, full suite, full path budget.
			t0 = time.Now()
			e2 := core.New()
			e2.NoPrune = true
			e2.RunAllTests = true
			if _, err := e2.ProcessTicket(cs.Tickets[0]); err == nil {
				if rep, err := e2.Assert(tk.BuggySource, available); err == nil {
					exhaustive.total++
					if rep.Counts.Violations > 0 {
						exhaustive.detected++
					}
					exhaustive.paths += rep.Counts.Verified + rep.Counts.Violations + rep.Counts.Unknown
				}
			}
			exhaustive.dur += time.Since(t0)
		}
	}

	t := &report.Table{
		Title:   "Detection and cost across the corpus regressions",
		Headers: []string{"approach", "regressions detected", "paths examined", "wall clock"},
	}
	t.AddRow("regression-test replay", fmt.Sprintf("%d/%d", testing.detected, testing.total), "-", testing.dur.Round(time.Millisecond))
	t.AddRow("LISA (pruned + selected tests)", fmt.Sprintf("%d/%d", lisa.detected, lisa.total), lisa.paths, lisa.dur.Round(time.Millisecond))
	t.AddRow("exhaustive (no prune, all tests)", fmt.Sprintf("%d/%d", exhaustive.detected, exhaustive.total), exhaustive.paths, exhaustive.dur.Round(time.Millisecond))
	t.AddNote("testing encodes one scenario per test and misses the regressions; LISA detects them all at a fraction of the exhaustive cost — the middle ground of Figure 4.")
	return t.Render()
}

// RunWorkflow regenerates Figure 5: one end-to-end run over the flagship
// case with per-stage wall-clock.
func RunWorkflow(c *ticket.Corpus) string {
	cs := c.Get("zk-ephemeral")
	e := core.New()
	t0 := time.Now()
	tr, err := e.ProcessTicket(cs.Tickets[0])
	inferDur := time.Since(t0)
	if err != nil {
		return "error: " + err.Error()
	}
	rep, err := e.Assert(cs.Tickets[1].BuggySource, cs.Tests)
	if err != nil {
		return "error: " + err.Error()
	}
	t := &report.Table{
		Title:   "Workflow stages (Figure 5)",
		Headers: []string{"stage", "role", "wall clock"},
	}
	t.AddRow("infer+translate", "ticket bundle -> low-level semantics -> checkable contract", inferDur.Round(time.Microsecond))
	roles := map[string]string{
		"compile":      "parse + resolve system and tests",
		"callgraph":    "build the static call graph",
		"match":        "locate target statements",
		"exec-tree":    "enumerate entry->target chains",
		"static-paths": "collect path conditions per site",
		"test-index":   "embed the test corpus",
		"test-select":  "similarity-select concrete inputs",
		"concolic":     "replay tests, record conditions, complement check",
		"structural":   "structural rule scan",
	}
	for _, name := range rep.SortedStageNames() {
		t.AddRow(name, roles[name], rep.StageTimings[name].Round(time.Microsecond))
	}
	t.AddNote("registered %d contract(s); asserting them found %d violation(s), %d verified path(s), %d test executions.",
		len(tr.Registered), rep.Counts.Violations, rep.Counts.Verified, rep.TestsRun)
	return t.Render()
}

// RunGeneralize regenerates Figure 6: the literal rule from the first
// serialization fix misses the ACL-cache recurrence; the generalized rule
// ("no blocking I/O within synchronized blocks") catches it.
func RunGeneralize(c *ticket.Corpus) string {
	cs := c.Get("zk-sync-serialize")
	pa := &infer.PatchAnalyzer{Generalize: true}
	res, err := pa.Infer(cs.Tickets[0])
	if err != nil {
		return "error: " + err.Error()
	}
	var literal, general *contract.Semantic
	for _, s := range res.Semantics {
		if s.Kind != contract.StructuralKind {
			continue
		}
		if len(s.Structural.(contract.NoBlockingInSync).Only) > 0 {
			literal = s
		} else {
			general = s
		}
	}
	if literal == nil || general == nil {
		return "error: generalization did not produce both rule forms"
	}
	t := &report.Table{
		Title:   "Rule reach on the ZKS-3531 regression (new serialization function)",
		Headers: []string{"rule form", "scope", "violations found", "catches regression"},
	}
	regressed, err := compileQuiet(cs.Tickets[1].BuggySource)
	if err != nil {
		return "error: " + err.Error()
	}
	litV := literal.Structural.Check(regressed)
	genV := general.Structural.Check(regressed)
	t.AddRow("literal (site-specific)", "SyncRequestProcessor.serializeNode", len(litV), report.Bool(len(litV) > 0))
	t.AddRow("generalized (behavior class)", "every synchronized block", len(genV), report.Bool(len(genV) > 0))
	for _, v := range genV {
		t.AddNote("generalized rule finding: %s", v)
	}

	// False-positive control: the generalized rule on every fixed head.
	fps := 0
	for _, other := range c.Cases {
		prog, err := compileQuiet(other.Head())
		if err != nil {
			continue
		}
		fps += len(general.Structural.Check(prog))
	}
	t.AddNote("generalized rule on all 16 fixed heads: %d false positives (abstracting to the behavior class, not naive broadening).", fps)
	return t.Render()
}

// RunHBaseBug regenerates §4 Bug #1: rules inferred from the two historical
// snapshot-TTL fixes flag the export and scan paths still unguarded at
// head.
func RunHBaseBug(c *ticket.Corpus) string {
	return runLatestScan(c, "hbase-snapshot-ttl",
		"expired snapshots must not be materialized (HBS-27671, HBS-28704)")
}

// RunHDFSBug regenerates §4 Bug #2: rules from the observer-location fixes
// flag getBatchedListing at head.
func RunHDFSBug(c *ticket.Corpus) string {
	return runLatestScan(c, "hdfs-observer-locations",
		"listings must not return blocks without locations (HDF-13924, HDF-16732)")
}

func runLatestScan(c *ticket.Corpus, caseID, ruleDesc string) string {
	cs := c.Get(caseID)
	e := core.New()
	for _, tk := range cs.Tickets {
		if _, err := e.ProcessTicket(tk); err != nil {
			return "error: " + err.Error()
		}
	}
	rep, err := e.Assert(cs.Latest, cs.Tests)
	if err != nil {
		return "error: " + err.Error()
	}
	t := &report.Table{
		Title:   "Scan of the latest head (" + ruleDesc + ")",
		Headers: []string{"site", "path condition", "verdict"},
	}
	for _, sr := range rep.Semantics {
		for _, site := range sr.Sites {
			for _, p := range site.Paths {
				t.AddRow(site.Site.Method.FullName(), p.Static.Cond.String(), p.Verdict.String())
			}
		}
	}
	t.AddNote("%d previously unknown unguarded path(s) reported; the guarded paths verify (sanity).", rep.Counts.Violations)
	t.AddNote("proposed fix: add the same check to the flagged paths — accepted by the simulated maintainers.")
	return t.Render()
}

// compileQuiet loads a version through the shared snapshot cache,
// returning an error instead of test helpers' fatals. Experiment replays
// therefore share front-end work with the engine (which loads the same
// versions through the same cache) instead of holding private ASTs.
func compileQuiet(src string) (*minij.Program, error) {
	snap, err := program.Load(src)
	if err != nil {
		return nil, err
	}
	return snap.Program(), nil
}

// naiveVerdict is the ablation comparator for the complement check: it
// declares a violation only when the recorded conditions contradict the
// checker outright, treating missing checks as satisfied. The §3.2 worked
// example shows why this is wrong: an omitted s.ttl check passes silently.
func naiveVerdict(pathCond, checker smt.Formula) concolic.Verdict {
	sat, err := smt.SATErr(smt.NewAnd(pathCond, checker))
	if err != nil {
		return concolic.VerdictInconclusive
	}
	if !sat {
		return concolic.VerdictViolation
	}
	return concolic.VerdictVerified
}
