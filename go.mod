module lisa

go 1.24
