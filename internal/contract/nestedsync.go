package contract

import (
	"sort"

	"lisa/internal/callgraph"
	"lisa/internal/interp"
	"lisa/internal/minij"
)

// NoNestedSync is a second structural rule demonstrating the framework's
// generality beyond the paper's blocking-I/O example: no synchronized block
// may be entered while another is already held, on any path — the classic
// lock-ordering deadlock risk. The zero value applies program-wide; Only
// restricts it to specific methods.
type NoNestedSync struct {
	// Only, when non-empty, restricts findings to outer synchronized
	// blocks inside the named methods ("Class.method").
	Only map[string]bool
}

// Name implements StructuralRule.
func (r NoNestedSync) Name() string {
	if len(r.Only) > 0 {
		return "no-nested-sync(scoped)"
	}
	return "no-nested-sync"
}

// Describe implements StructuralRule.
func (NoNestedSync) Describe() string {
	return "No synchronized block may be entered while another lock is held."
}

// Check implements StructuralRule with an interprocedural may-lock
// analysis: a method may lock if it contains a synchronized block or
// (transitively) calls a method that does. Every statement inside a
// synchronized block that is itself a synchronized block, or calls a
// may-lock method, is a finding.
func (r NoNestedSync) Check(prog *minij.Program) []*StructuralViolation {
	g := callgraph.Build(prog)

	directLock := map[*minij.Method]bool{}
	for _, m := range prog.Methods() {
		minij.WalkStmts(m.Body, func(s minij.Stmt) {
			if _, ok := s.(*minij.Sync); ok {
				directLock[m] = true
			}
		})
	}
	mayLock := map[*minij.Method]bool{}
	for m := range directLock {
		mayLock[m] = true
	}
	for changed := true; changed; {
		changed = false
		for _, m := range prog.Methods() {
			if mayLock[m] {
				continue
			}
			for _, e := range g.Callees[m] {
				if mayLock[e.Callee] {
					mayLock[m] = true
					changed = true
					break
				}
			}
		}
	}

	var lockChain func(m *minij.Method, seen map[*minij.Method]bool) []string
	lockChain = func(m *minij.Method, seen map[*minij.Method]bool) []string {
		if directLock[m] {
			return []string{m.FullName(), "synchronized"}
		}
		seen[m] = true
		for _, e := range g.Callees[m] {
			if seen[e.Callee] || !mayLock[e.Callee] {
				continue
			}
			if chain := lockChain(e.Callee, seen); chain != nil {
				return append([]string{m.FullName()}, chain...)
			}
		}
		return nil
	}

	var out []*StructuralViolation
	for _, m := range prog.Methods() {
		if len(r.Only) > 0 && !r.Only[m.FullName()] {
			continue
		}
		minij.WalkStmts(m.Body, func(s minij.Stmt) {
			sync, ok := s.(*minij.Sync)
			if !ok {
				return
			}
			minij.WalkStmts(sync.Body, func(inner minij.Stmt) {
				if _, nested := inner.(*minij.Sync); nested {
					out = append(out, &StructuralViolation{
						Rule:    r.Name(),
						Method:  m,
						Stmt:    inner,
						Builtin: "synchronized",
						Chain:   []string{"synchronized"},
					})
					return
				}
				for _, call := range immediateCalls(inner) {
					if call.Kind == minij.CallBuiltin {
						continue
					}
					for _, edge := range calleesOf(g, m, call) {
						if !mayLock[edge] {
							continue
						}
						chain := lockChain(edge, map[*minij.Method]bool{})
						if chain == nil {
							continue
						}
						out = append(out, &StructuralViolation{
							Rule:    r.Name(),
							Method:  m,
							Stmt:    inner,
							Builtin: "synchronized",
							Chain:   chain,
						})
					}
				}
			})
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Method.FullName() != out[j].Method.FullName() {
			return out[i].Method.FullName() < out[j].Method.FullName()
		}
		return out[i].Stmt.Pos().Before(out[j].Stmt.Pos())
	})
	return out
}

// RuntimeNestedLockMonitor records synchronized entries that occur while a
// lock is already held — the dynamic counterpart of NoNestedSync. It works
// off the interpreter's lock-depth accounting via a statement hook.
type RuntimeNestedLockMonitor struct {
	// Events records (method, position) pairs for nested acquisitions.
	Events []NestedLockEvent
}

// NestedLockEvent is one observed nested acquisition.
type NestedLockEvent struct {
	Method string
	Pos    minij.Pos
	Depth  int
}

// Attach chains the monitor onto the interpreter's OnStmt hook, preserving
// any existing hook.
func (mon *RuntimeNestedLockMonitor) Attach(in *interp.Interp) {
	prev := in.Hooks.OnStmt
	in.Hooks.OnStmt = func(s minij.Stmt, fr *interp.Frame) {
		if _, ok := s.(*minij.Sync); ok && in.LocksHeld() > 0 {
			mon.Events = append(mon.Events, NestedLockEvent{
				Method: fr.Method.FullName(),
				Pos:    s.Pos(),
				Depth:  in.LocksHeld() + 1,
			})
		}
		if prev != nil {
			prev(s, fr)
		}
	}
}

// Violated reports whether any nested acquisition was observed.
func (mon *RuntimeNestedLockMonitor) Violated() bool { return len(mon.Events) > 0 }
