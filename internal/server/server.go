// Package server exposes the assertion pipeline as a long-lived HTTP/JSON
// daemon: `lisa serve`. A cold `lisa gate` process pays the whole front
// end — ticket inference, parse/resolve/call-graph, site fingerprints,
// solver queries — on every invocation and throws the warm caches away at
// exit. The daemon instead owns process-lifetime instances of the hot
// state (a private program snapshot cache, one scheduler fingerprint cache
// per corpus case, and the process-wide solver query cache) and serves
// concurrent /gate and /assert requests against them, so a fleet of CI
// runners pays the front end once and every subsequent request runs at
// warm-cache speed.
//
// Concurrency contract: requests on different cases run concurrently;
// requests on one case serialize on that case's runtime (its engine,
// budget, and fingerprint cache are shared state, and the warm caches make
// repeats cheap). Under that discipline every report returned over the
// wire is byte-identical — per core.AssertReport.Render — to what a local
// sequential run over the same inputs produces, under arbitrary request
// interleaving, and the package is race-clean.
//
// Delta accounting: the /stats endpoint and per-request cache deltas are
// scoped to this server instance. The snapshot cache is a private
// program.Cache, so its numbers are exact per server. Each case engine
// carries a private solver query cache (core.Engine.Solver), so solver
// deltas are exact per request and per case no matter what the rest of the
// process is doing; /stats reports their field-wise sum. Snapshot-cache
// per-request deltas remain exact under serial load and approximate across
// concurrently running cases (the cache is shared between cases).
//
// Two-tier mode: when Config.Store is set, the snapshot cache, every
// case's fingerprint cache, and every case engine's solver cache are
// backed by the shared on-disk store, so a restarted daemon starts warm.
// /stats then also reports the store ledger and per-cache tier counters.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"lisa/internal/ci"
	"lisa/internal/core"
	"lisa/internal/program"
	"lisa/internal/sched"
	"lisa/internal/smt"
	"lisa/internal/store"
	"lisa/internal/ticket"
)

const (
	// DefaultHistorySize bounds the request history ring.
	DefaultHistorySize = 256
	// DefaultWatchInterval is the file watcher's polling period.
	DefaultWatchInterval = 2 * time.Second
	// DefaultDrainTimeout bounds how long Drain waits for in-flight
	// requests before giving up.
	DefaultDrainTimeout = 10 * time.Second
)

// Config configures a Server.
type Config struct {
	// Corpus provides the cases whose rules the daemon serves. Nil means
	// the full study corpus (corpus.Load from the caller; the server does
	// not load it implicitly to keep the dependency one-way).
	Corpus *ticket.Corpus
	// Workers is the default scheduler pool width for requests that do not
	// specify one (0 = GOMAXPROCS).
	Workers int
	// HistorySize bounds the history ring (0 = DefaultHistorySize).
	HistorySize int
	// WatchInterval is the watcher polling period (0 = default).
	WatchInterval time.Duration
	// FailOpen makes every gate downgrade INCONCLUSIVE to warnings unless
	// the request says otherwise.
	FailOpen bool
	// Budget is the default per-request budget (zero = no deadlines,
	// package defaults).
	Budget core.Budget
	// SnapshotCapacity bounds the server's private snapshot cache
	// (0 = program.DefaultCapacity).
	SnapshotCapacity int
	// DeepVerifyEvery sets the snapshot cache's deep-verification
	// sampling interval: every Nth disk restore re-parses the source and
	// compares canons instead of trusting the decoded binary AST
	// (0 = program.DefaultDeepVerifyEvery, 1 = every restore).
	DeepVerifyEvery int
	// Store, when set, is the shared on-disk tier behind every cache the
	// daemon owns (snapshots, per-case fingerprints, per-case solver
	// results). The caller opens and closes it; the server only attaches.
	Store *store.Store
	// MaxConcurrent bounds how many /gate, /assert, and /watch requests
	// run at once (0 = unlimited: admission control off, the historical
	// behavior). Past the bound, interactive requests queue up to MaxQueue
	// and /watch registrations are shed immediately.
	MaxConcurrent int
	// MaxQueue bounds requests waiting for an admission slot
	// (0 = DefaultMaxQueue when admission is enabled).
	MaxQueue int
	// Quotas maps an X-Lisa-Token header value to its admission class; the
	// "" key is the class for requests with no (or an unknown) token.
	// Quotas apply even when MaxConcurrent is 0.
	Quotas map[string]QuotaClass
}

// caseRuntime is the long-lived per-case state: the engine with the case's
// rules registered, and the scheduler whose fingerprint cache accumulates
// across requests. mu serializes assertion runs on the case.
type caseRuntime struct {
	cs   *ticket.Case
	once sync.Once
	err  error

	mu     sync.Mutex
	engine *core.Engine
	sched  *sched.Scheduler
	primed bool // head fingerprints warmed (incremental gates)
}

// Server is the daemon. Create with New, mount Handler on an http.Server
// (or call ServeHTTP directly), and Drain before exit.
type Server struct {
	cfg       Config
	corpus    *ticket.Corpus
	snapshots *program.Cache
	hist      *History
	watch     *watcher
	adm       *admission

	started time.Time

	casesMu sync.Mutex
	cases   map[string]*caseRuntime

	// stateMu guards draining and the inflight count; idle is signalled
	// when the last in-flight request finishes during a drain.
	stateMu  sync.Mutex
	draining bool
	inflight int
	idle     chan struct{}

	reqGate    uint64
	reqAssert  uint64
	reqRefused uint64

	// testRequestDelay stretches every admitted request (tests only: it
	// makes "a request is in flight while Drain runs" deterministic).
	testRequestDelay time.Duration
}

// New returns a daemon over cfg.Corpus. Solver accounting is exact per
// case: every case engine gets a private query cache at first use.
func New(cfg Config) *Server {
	s := &Server{
		cfg:       cfg,
		corpus:    cfg.Corpus,
		snapshots: program.NewCache(cfg.SnapshotCapacity),
		hist:      NewHistory(cfg.HistorySize),
		started:   time.Now(),
		cases:     map[string]*caseRuntime{},
		idle:      make(chan struct{}, 1),
		adm:       newAdmission(cfg.MaxConcurrent, cfg.MaxQueue, cfg.Quotas),
	}
	s.snapshots.SetStore(cfg.Store)
	s.snapshots.SetDeepVerifyEvery(cfg.DeepVerifyEvery)
	s.watch = newWatcher(s, cfg.WatchInterval)
	return s
}

// History exposes the audit ring (for flushing on shutdown).
func (s *Server) History() *History { return s.hist }

// RegisterRoot adds a directory to the file watcher and starts the polling
// loop on first use.
func (s *Server) RegisterRoot(dir string) error { return s.watch.addRoot(dir) }

// PollNow runs one synchronous watcher poll over the registered roots and
// returns the watcher counters afterwards.
func (s *Server) PollNow() WatcherStats { return s.watch.poll() }

// Inflight returns the number of requests currently being served.
func (s *Server) Inflight() int {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.inflight
}

// runtime returns the long-lived runtime for a case, building it on first
// use: a fresh engine wired to the server's private snapshot cache with
// every ticket of the case processed (inference + registration), plus a
// scheduler whose fingerprint cache persists for the server's lifetime.
func (s *Server) runtime(id string) (*caseRuntime, error) {
	if s.corpus == nil {
		return nil, fmt.Errorf("server has no corpus configured")
	}
	cs := s.corpus.Get(id)
	if cs == nil {
		return nil, fmt.Errorf("unknown case %q", id)
	}
	s.casesMu.Lock()
	rt, ok := s.cases[id]
	if !ok {
		rt = &caseRuntime{cs: cs}
		s.cases[id] = rt
	}
	s.casesMu.Unlock()
	rt.once.Do(func() {
		e := core.New()
		e.Snapshots = s.snapshots
		e.Solver = smt.NewQueryCache(0)
		e.Solver.SetStore(s.cfg.Store)
		for _, tk := range cs.Tickets {
			if _, err := e.ProcessTicket(tk); err != nil {
				rt.err = fmt.Errorf("process %s: %w", tk.ID, err)
				return
			}
		}
		rt.engine = e
		rt.sched = sched.New()
		rt.sched.Cache().SetStore(s.cfg.Store)
	})
	return rt, rt.err
}

// begin admits one request unless the server is draining. The matching
// end() must be called when the request finishes.
func (s *Server) begin() bool {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if s.draining {
		s.reqRefused++
		return false
	}
	s.inflight++
	return true
}

func (s *Server) end() {
	s.stateMu.Lock()
	s.inflight--
	signal := s.draining && s.inflight == 0
	s.stateMu.Unlock()
	if signal {
		select {
		case s.idle <- struct{}{}:
		default:
		}
	}
}

// Drain puts the server into shutdown: new requests are refused with 503,
// the watcher is stopped, and Drain blocks until every in-flight request
// has finished or ctx expires (in which case it reports how many were
// still running). Safe to call once; the server stays refusing afterwards.
func (s *Server) Drain(ctx context.Context) error {
	s.stateMu.Lock()
	s.draining = true
	pending := s.inflight
	s.stateMu.Unlock()
	// Evict queued-but-not-admitted requests first (they 503 and release
	// their inflight slot), then let in-flight work finish.
	s.adm.beginDrain()
	s.watch.halt()
	for pending > 0 {
		select {
		case <-s.idle:
		case <-ctx.Done():
			s.stateMu.Lock()
			pending = s.inflight
			s.stateMu.Unlock()
			return fmt.Errorf("drain: %d request(s) still in flight: %w", pending, ctx.Err())
		}
		s.stateMu.Lock()
		pending = s.inflight
		s.stateMu.Unlock()
	}
	return nil
}

// admitClass says how an endpoint meets admission control: observability
// endpoints bypass it entirely, interactive work may queue for a slot, and
// watch registrations are shed at saturation (warmth before traffic).
type admitClass int

const (
	admitNone admitClass = iota
	admitQueued
	admitShed
)

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/gate", s.guard("POST", admitQueued, s.handleGate))
	mux.HandleFunc("/assert", s.guard("POST", admitQueued, s.handleAssert))
	mux.HandleFunc("/history", s.guard("GET", admitNone, s.handleHistory))
	mux.HandleFunc("/stats", s.guard("GET", admitNone, s.handleStats))
	mux.HandleFunc("/watch", s.guard("POST", admitShed, s.handleWatch))
	mux.HandleFunc("/healthz", s.handleHealth)
	return mux
}

// ServeHTTP serves the daemon routes (Server is itself a handler).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.Handler().ServeHTTP(w, r)
}

// guard wraps a handler with method checking, the drain gate, and — for
// classed endpoints — admission control, and tracks the in-flight count.
func (s *Server) guard(method string, class admitClass, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed (want %s)", r.Method, method))
			return
		}
		if !s.begin() {
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server is draining; no new requests"))
			return
		}
		defer s.end()
		if class != admitNone {
			release, dec := s.adm.admit(r.Header.Get(clientTokenHeader), class == admitQueued)
			if release == nil {
				s.noteOverload(r, dec)
				if dec.retryAfter > 0 {
					w.Header().Set("Retry-After", strconv.Itoa(dec.retryAfter))
				}
				writeError(w, dec.status, dec.err)
				return
			}
			defer release()
		}
		if s.testRequestDelay > 0 {
			time.Sleep(s.testRequestDelay)
		}
		h(w, r)
	}
}

// clientTokenHeader carries the client identity admission quotas key on.
const clientTokenHeader = "X-Lisa-Token"

// noteOverload records a shed/rejected request in the audit ring, so an
// operator reading /history sees overload alongside the work it displaced.
func (s *Server) noteOverload(r *http.Request, dec admitDecision) {
	verdict := "SHED"
	if dec.status == http.StatusTooManyRequests {
		verdict = "QUOTA"
	}
	s.hist.Add(HistoryEntry{
		Time:    time.Now(),
		Kind:    "overload",
		Target:  r.URL.Path,
		Verdict: verdict,
		Detail:  dec.err.Error(),
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.stateMu.Lock()
	draining := s.draining
	s.stateMu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("draining"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleGate(w http.ResponseWriter, r *http.Request) {
	var req GateRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Case == "" || req.Change == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("need case and change"))
		return
	}
	rt, err := s.runtime(req.Case)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	s.stateMu.Lock()
	s.reqGate++
	s.stateMu.Unlock()

	workers := req.Workers
	if workers == 0 {
		workers = s.cfg.Workers
	}
	if workers <= 0 {
		// Explicitly resolve the default here so responses report the
		// actual pool width instead of 0.
		workers = runtime.GOMAXPROCS(0)
	}
	budget := s.cfg.Budget
	if req.Budget != nil {
		budget = req.Budget.Budget()
	}
	summary := req.Summary
	if summary == "" {
		summary = "proposed change"
	}

	rt.mu.Lock()
	defer rt.mu.Unlock()
	start := time.Now()
	solverBefore := rt.engine.Solver.Stats()
	snapBefore := s.snapshots.Stats()
	if req.Incremental && !rt.primed {
		// Warm the fingerprint cache on the current head once per case, so
		// incremental gates re-execute only the jobs the change impacts —
		// the same priming the CLI does per invocation, paid once here.
		if _, _, err := rt.sched.Assert(rt.engine, rt.cs.Head(), rt.cs.Tests, sched.Options{Workers: workers}); err != nil {
			writeError(w, http.StatusInternalServerError, fmt.Errorf("priming cache on head: %w", err))
			return
		}
		rt.primed = true
	}
	res, err := ci.GateWith(rt.engine, ci.Change{
		Summary:   summary,
		OldSource: rt.cs.Head(),
		NewSource: req.Change,
	}, rt.cs.Tests, ci.GateOptions{
		Scheduler:   rt.sched,
		Workers:     workers,
		Incremental: req.Incremental,
		FailOpen:    req.FailOpen || s.cfg.FailOpen,
		Budget:      &budget,
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	delta := s.cacheDelta(rt, solverBefore, snapBefore, res.Sched)
	resp := &GateResponse{
		Case:       req.Case,
		Pass:       res.Pass,
		Verdict:    gateVerdict(res.Pass),
		Summary:    res.Summary(),
		Asserted:   res.Asserted,
		Skipped:    res.Skipped,
		DurationMS: float64(time.Since(start)) / float64(time.Millisecond),
		Cache:      delta,
	}
	for _, f := range res.Findings {
		resp.Findings = append(resp.Findings, Finding{Severity: f.Severity, Text: f.Text})
	}
	if res.Report != nil {
		resp.Report = res.Report.Render()
	}
	s.hist.Add(HistoryEntry{
		Time:       start,
		Kind:       "gate",
		Case:       req.Case,
		Target:     shortHash(req.Change),
		Verdict:    resp.Verdict,
		Detail:     gateDetail(res),
		Workers:    workers,
		DurationMS: resp.DurationMS,
		Cache:      delta,
	})
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAssert(w http.ResponseWriter, r *http.Request) {
	var req AssertRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Case == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("need case"))
		return
	}
	rt, err := s.runtime(req.Case)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	target, err := resolveTarget(rt.cs, req.Version, req.Source)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.stateMu.Lock()
	s.reqAssert++
	s.stateMu.Unlock()

	workers := req.Workers
	if workers == 0 {
		workers = s.cfg.Workers
	}
	if workers <= 0 {
		// Explicitly resolve the default here so responses report the
		// actual pool width instead of 0.
		workers = runtime.GOMAXPROCS(0)
	}
	var tests []ticket.TestCase
	if req.Tests {
		tests = rt.cs.Tests
	}
	budget := s.cfg.Budget
	if req.Budget != nil {
		budget = req.Budget.Budget()
	}

	rt.mu.Lock()
	defer rt.mu.Unlock()
	start := time.Now()
	solverBefore := rt.engine.Solver.Stats()
	snapBefore := s.snapshots.Stats()
	prevBudget := rt.engine.Budget
	rt.engine.Budget = budget
	rep, stats, err := rt.sched.Assert(rt.engine, target, tests, sched.Options{Workers: workers})
	rt.engine.Budget = prevBudget
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	delta := s.cacheDelta(rt, solverBefore, snapBefore, stats)
	resp := &AssertResponse{
		Case:    req.Case,
		Verdict: assertVerdict(rep.Counts.Violations),
		Counts: AssertCounts{
			Verified:   rep.Counts.Verified,
			Violations: rep.Counts.Violations,
			Unknown:    rep.Counts.Unknown,
			Uncovered:  rep.Counts.Uncovered,
		},
		TestsRun:   rep.TestsRun,
		Report:     rep.Render(),
		DurationMS: float64(time.Since(start)) / float64(time.Millisecond),
		Cache:      delta,
	}
	s.hist.Add(HistoryEntry{
		Time:       start,
		Kind:       "assert",
		Case:       req.Case,
		Target:     shortHash(target),
		Verdict:    resp.Verdict,
		Detail:     fmt.Sprintf("verified=%d violations=%d unknown=%d uncovered=%d", resp.Counts.Verified, resp.Counts.Violations, resp.Counts.Unknown, resp.Counts.Uncovered),
		Workers:    workers,
		DurationMS: resp.DurationMS,
		Cache:      delta,
	})
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad n %q", q))
			return
		}
		n = v
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total":   s.hist.Seq(),
		"entries": s.hist.Last(n),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.casesMu.Lock()
	ids := make([]string, 0, len(s.cases))
	for id := range s.cases {
		ids = append(ids, id)
	}
	s.casesMu.Unlock()
	sort.Strings(ids)
	var cases []CaseStats
	var solver smt.QueryCacheStats
	var tiers []store.TierStats
	if s.cfg.Store != nil {
		tiers = append(tiers, s.snapshots.TierStats())
	}
	for _, id := range ids {
		s.casesMu.Lock()
		rt := s.cases[id]
		s.casesMu.Unlock()
		if rt.sched == nil {
			continue
		}
		qs := rt.engine.Solver.Stats()
		solver = solver.Add(qs)
		cases = append(cases, CaseStats{Case: id, SchedCache: rt.sched.Cache().Stats(), Solver: qs})
		if s.cfg.Store != nil {
			tiers = append(tiers,
				withCase(rt.sched.Cache().TierStats(), id),
				withCase(rt.engine.Solver.TierStats(), id))
		}
	}
	s.stateMu.Lock()
	resp := &StatsResponse{
		UptimeMS: float64(time.Since(s.started)) / float64(time.Millisecond),
		Draining: s.draining,
		Inflight: s.inflight - 1, // exclude this /stats request itself
		Requests: RequestCounts{Gate: s.reqGate, Assert: s.reqAssert, Refused: s.reqRefused},
	}
	s.stateMu.Unlock()
	resp.Admission = s.adm.snapshot()
	resp.Cases = cases
	resp.Snapshot = s.snapshots.Stats()
	resp.Solver = solver
	if s.cfg.Store != nil {
		ss := s.cfg.Store.Stats()
		resp.Store = &ss
		resp.Tiers = tiers
	}
	resp.Watcher = s.watch.statsSnapshot()
	resp.HistoryLen = s.hist.Len()
	writeJSON(w, http.StatusOK, resp)
}

// withCase qualifies a tier-stats cache name with its case id (the
// snapshot cache is server-wide; fingerprint and solver tiers are per
// case).
func withCase(ts store.TierStats, id string) store.TierStats {
	ts.Cache = ts.Cache + ":" + id
	return ts
}

func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	var req WatchRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Root == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("need root"))
		return
	}
	if err := s.RegisterRoot(req.Root); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, s.watch.statsSnapshot())
}

// cacheDelta assembles the per-request cache ledger from the scheduler's
// run stats and the counter growth observed across the run. The solver
// delta is read from the case engine's private query cache, so it is exact
// even when other cases run concurrently.
func (s *Server) cacheDelta(rt *caseRuntime, solverBefore smt.QueryCacheStats, snapBefore program.CacheStats, st *sched.Stats) CacheDelta {
	d := CacheDelta{}
	if st != nil {
		d.SchedJobs = st.Jobs
		d.SchedExecuted = st.Executed
		d.SchedCacheHits = st.CacheHits
	}
	qd := rt.engine.Solver.Stats().Sub(solverBefore)
	d.SolverQueries = qd.Queries
	d.SolverCacheHits = qd.Hits
	sd := s.snapshots.Stats().Sub(snapBefore)
	d.SnapshotHits = sd.Hits
	d.SnapshotMisses = sd.Misses
	d.SnapshotCompiles = sd.Compiles
	return d
}

func gateVerdict(pass bool) string {
	if pass {
		return "PASS"
	}
	return "BLOCKED"
}

func assertVerdict(violations int) string {
	if violations > 0 {
		return "VIOLATED"
	}
	return "PASS"
}

// gateDetail summarizes a gate result for the history ring: the diffstat
// plus the finding severity split.
func gateDetail(res *ci.Result) string {
	blocks, warns := 0, 0
	for _, f := range res.Findings {
		switch f.Severity {
		case "BLOCK":
			blocks++
		case "WARN":
			warns++
		}
	}
	detail := fmt.Sprintf("%d block, %d warn", blocks, warns)
	if res.DiffStat != "" {
		detail = res.DiffStat + "; " + detail
	}
	return detail
}

// shortHash is the content address of a source, truncated for audit logs.
func shortHash(source string) string {
	h := program.Hash(source)
	if len(h) > 12 {
		h = h[:12]
	}
	return h
}

func decodeJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode request: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
