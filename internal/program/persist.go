package program

import (
	"encoding/json"

	"lisa/internal/faultinject"

	"lisa/internal/callgraph"
	"lisa/internal/minij"
	"lisa/internal/store"
)

// snapNamespace versions the snapshot records in the on-disk store; bump
// it when the record encoding changes so stale stores read as misses.
const snapNamespace = "snap.v1"

// snapRecord is the persisted form of a fully-warmed snapshot: the
// canonical form (for the Verify check on restore), the derived artifacts
// that are expensive to recompute, and the call-graph summary. The raw
// source is NOT stored — the record is addressed by sha256(source), and a
// restoring process always holds the source it is asking about.
// Compile-error (negative) entries are never persisted: a record's
// existence asserts that the source compiles.
type snapRecord struct {
	Canon   string             `json:"canon"`
	Shape   string             `json:"shape"`
	Methods map[string]string  `json:"methods"`
	Graph   *callgraph.Summary `json:"graph,omitempty"`
}

// SetStore attaches (nil: detaches) the on-disk tier behind this cache.
// Safe to call concurrently with loads.
func (c *Cache) SetStore(st *store.Store) { c.disk.Store(st) }

// CacheName identifies this cache in unified tier stats.
func (c *Cache) CacheName() string { return "snapshot" }

// TierStats reports the two-tier counters in the unified shape. MemHits /
// MemMisses are the LRU's counters; DiskHits counts successful restores
// (record fetched, re-parsed, and verified), DiskMisses both absent
// records and records that failed verification.
func (c *Cache) TierStats() store.TierStats {
	c.mu.Lock()
	hits, misses := c.hits, c.misses
	c.mu.Unlock()
	ts := store.TierStats{
		Cache:      c.CacheName(),
		MemHits:    hits,
		MemMisses:  misses,
		DiskHits:   c.restores.Load(),
		DiskMisses: c.diskMisses.Load(),
		DiskWrites: c.diskWrites.Load(),
	}
	if st := c.disk.Load(); st != nil {
		ts.DiskWriteErrors = st.NamespaceWriteErrors(snapNamespace)
	}
	return ts
}

var _ store.CacheBackend = (*Cache)(nil)

// compile populates the snapshot exactly once: from the disk tier when a
// verified record exists, else by the full front-end build (which is then
// persisted, so the next process can restore it).
func (s *Snapshot) compile() {
	if s.cache != nil {
		if st := s.cache.disk.Load(); st != nil {
			if raw, ok := st.Get(snapNamespace, s.hash); ok {
				var rec snapRecord
				if json.Unmarshal(raw, &rec) == nil && s.restore(&rec) {
					return
				}
			}
			s.cache.diskMisses.Add(1)
		}
	}
	s.build()
	s.persist()
}

// restore adopts a persisted record: the source is re-parsed and
// re-checked (the AST cannot be persisted), and the canonical render must
// byte-match the record — the same Verify() machinery that catches mutated
// snapshots catches stale or corrupt records here, falling back to a full
// build. The derived artifacts (shape, per-method canon, graph summary)
// are adopted without recomputation; the graph itself is re-anchored
// lazily on first use.
func (s *Snapshot) restore(rec *snapRecord) bool {
	prog, err := minij.Parse(s.source)
	if err != nil {
		return false
	}
	if err := minij.Check(prog); err != nil {
		return false
	}
	if minij.FormatProgram(prog) != rec.Canon {
		return false
	}
	s.prog = prog
	s.canon = rec.Canon
	s.canonHash = Hash(rec.Canon)
	s.restored = true
	if rec.Shape != "" {
		s.shapeOnce.Do(func() { s.shape = rec.Shape })
	}
	if len(rec.Methods) > 0 {
		s.methodsOnce.Do(func() { s.methodCanon = rec.Methods })
	}
	s.graphSummary = rec.Graph
	s.cache.restores.Add(1)
	// The program.load fault-injection point fires on restored snapshots
	// exactly as on built ones (after the canon is captured), so a chaos
	// run keeps its cold-process fault cadence against a warm store.
	if faultinject.Armed() {
		if k, ok := faultinject.At("program.load"); ok && k == faultinject.Corrupt {
			corruptProgram(prog)
		}
	}
	return true
}

// persist writes a built snapshot to the disk tier: once right after the
// front-end build (derived artifacts, no graph yet), and again after the
// call graph is first built — the second record supersedes the first, so a
// snapshot whose graph is never requested still restores without a
// compile. A snapshot that fails its own Verify (the program.load
// fault-injection point corrupts the AST after the canon is captured) is
// never persisted, and store.Put additionally drops all writes while a
// faultinject plan is armed — unless the plan is store-scoped
// (faultinject.ScopeStore), in which case the computation is clean and the
// store's own fault handling is what's under test.
func (s *Snapshot) persist() {
	if s.cache == nil || s.err != nil || s.restored {
		return
	}
	st := s.cache.disk.Load()
	if st == nil {
		return
	}
	if s.Verify() != nil {
		return
	}
	rec := snapRecord{
		Canon:   s.canon,
		Shape:   s.Shape(),
		Methods: s.methodCanons(),
	}
	if s.graph != nil {
		rec.Graph = s.graph.Summary()
	}
	raw, err := json.Marshal(&rec)
	if err != nil {
		return
	}
	st.Put(snapNamespace, s.hash, raw)
	s.cache.diskWrites.Add(1)
}

// methodCanons returns the full per-method canonical map, building it once
// through the same path MethodCanon uses.
func (s *Snapshot) methodCanons() map[string]string {
	s.MethodCanon("")
	return s.methodCanon
}
