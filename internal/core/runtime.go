package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"lisa/internal/concolic"
	"lisa/internal/contract"
	"lisa/internal/faultinject"
	"lisa/internal/interp"
	"lisa/internal/smt"
)

// Budget bounds one assertion run. The zero value imposes no deadlines and
// keeps the per-package defaults for node and step ceilings, so existing
// callers behave exactly as before.
type Budget struct {
	// RunTimeout caps the whole run's wall clock (0 = none). The run
	// context it derives is threaded through every stage; jobs that
	// outlive it fail with reason "timeout" or "cancelled" instead of
	// hanging the gate.
	RunTimeout time.Duration
	// JobTimeout caps each contained job — one structural scan, one
	// per-site static stage, one per-semantic replay (0 = none).
	JobTimeout time.Duration
	// SolverNodes caps DPLL search nodes per SMT query
	// (0 = smt.DefaultMaxNodes).
	SolverNodes int
	// StepBudget caps interpreter statements per test replay
	// (0 = interp.DefaultStepBudget).
	StepBudget int
}

// RunContext derives the run-wide context from parent (Background when
// nil), applying RunTimeout when set. The caller owns the cancel func.
func (b Budget) RunContext(parent context.Context) (context.Context, context.CancelFunc) {
	if parent == nil {
		parent = context.Background()
	}
	if b.RunTimeout > 0 {
		return context.WithTimeout(parent, b.RunTimeout)
	}
	return context.WithCancel(parent)
}

// jobContext derives one job's context, applying JobTimeout when set.
func (b Budget) jobContext(parent context.Context) (context.Context, context.CancelFunc) {
	if b.JobTimeout > 0 {
		return context.WithTimeout(parent, b.JobTimeout)
	}
	return context.WithCancel(parent)
}

// solverLimits are the SMT query limits every job of this engine runs
// under: the job context, the configured node ceiling, and the engine's
// private solver cache when it has one.
func (e *Engine) solverLimits(ctx context.Context) smt.Limits {
	return smt.Limits{Ctx: ctx, MaxNodes: e.Budget.SolverNodes, Cache: e.Solver}
}

// Failure reasons, in decreasing order of surprise: a panic is a contained
// crash, a timeout/cancellation is the budget runtime working as designed,
// a budget failure is a resource ceiling (solver nodes, interpreter
// steps), and an error is any other stage failure.
const (
	FailPanic     = "panic"
	FailTimeout   = "timeout"
	FailCancelled = "cancelled"
	FailBudget    = "budget"
	FailError     = "error"
)

// JobFailure records one contained job failure. It is merged into the
// semantic's report deterministically — the same jobs fail with the same
// reasons at any worker count — and turns the semantic's outcome
// INCONCLUSIVE rather than letting partial results pose as PASS.
type JobFailure struct {
	// Job is the stable job name ("structural:<sem>", "site:<sem>#<i>",
	// "dynamic:<sem>").
	Job string
	// Semantic is the owning contract's ID.
	Semantic string
	// Reason is one of the Fail* constants.
	Reason string
	// Detail is a deterministic one-line description (rendered in
	// reports, so it must not embed wall-clock or addresses).
	Detail string
	// Stack is the goroutine stack captured at a panic. It is kept for
	// logs and debugging but excluded from Render: stacks are
	// nondeterministic across runs and worker counts.
	Stack string
}

// String renders the failure without the stack.
func (f *JobFailure) String() string {
	return fmt.Sprintf("job %s %s: %s", f.Job, f.Reason, f.Detail)
}

// Job names shared by the sequential loop and the scheduler: panic
// containment, caching, and fault injection all key on them, so both
// execution strategies must decompose a run into identically named jobs.

// JobNameStructural names a semantic's structural-scan job.
func JobNameStructural(semID string) string { return "structural:" + semID }

// JobNameSite names the static-path job of a semantic's i-th matched site
// (in MatchSites order).
func JobNameSite(semID string, i int) string { return fmt.Sprintf("site:%s#%d", semID, i) }

// JobNameDynamic names a semantic's test-replay job.
func JobNameDynamic(semID string) string { return "dynamic:" + semID }

// ExecJob runs f as a contained job: a panic inside f is recovered into a
// JobFailure instead of killing the process, errors are classified by
// reason, and the job context enforces Budget.JobTimeout. A nil return
// means the job completed and its results are authoritative; a non-nil
// return means the caller must discard partial results (the job wrappers
// below do) and record the failure.
//
// ExecJob also hosts the "job:<name>" fault-injection point (Panic, Slow,
// and Budget kinds).
func (e *Engine) ExecJob(ctx context.Context, name, semID string, f func(context.Context) error) (fail *JobFailure) {
	jctx, cancel := e.Budget.jobContext(ctx)
	defer cancel()
	defer func() {
		if r := recover(); r != nil {
			fail = &JobFailure{
				Job: name, Semantic: semID, Reason: FailPanic,
				Detail: fmt.Sprint(r), Stack: string(debug.Stack()),
			}
		}
	}()
	if faultinject.Armed() {
		switch k, ok := faultinject.At("job:" + name); {
		case ok && k == faultinject.Panic:
			panic("faultinject: job " + name)
		case ok && k == faultinject.Slow:
			// A job that never finishes. Park on the job deadline; a job
			// with no deadline configured reports the timeout immediately
			// instead of deadlocking the worker pool.
			if _, has := jctx.Deadline(); has {
				<-jctx.Done()
			}
			return &JobFailure{Job: name, Semantic: semID, Reason: FailTimeout, Detail: "job deadline exceeded"}
		case ok && k == faultinject.Budget:
			return &JobFailure{Job: name, Semantic: semID, Reason: FailBudget, Detail: smt.ErrBudget.Error()}
		}
	}
	err := f(jctx)
	if err == nil {
		return nil
	}
	reason, detail := classifyJobError(err)
	return &JobFailure{Job: name, Semantic: semID, Reason: reason, Detail: detail}
}

// classifyJobError maps a stage error to a failure reason and a
// deterministic detail line. Timeout and cancellation details are fixed
// text: the triggering instant is wall-clock-dependent, so the report must
// not leak it.
func classifyJobError(err error) (reason, detail string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return FailTimeout, "job deadline exceeded"
	case errors.Is(err, context.Canceled):
		return FailCancelled, "run cancelled"
	case errors.Is(err, smt.ErrBudget), errors.Is(err, interp.ErrStepBudget), errors.Is(err, interp.ErrStackDepth):
		return FailBudget, err.Error()
	default:
		return FailError, err.Error()
	}
}

// StructuralJob runs the structural stage for sem as a contained job. The
// returned report is never nil: on failure it is a fresh, empty report
// carrying the failure, so a crashed scan degrades to INCONCLUSIVE
// identically in sequential and scheduled runs.
func (e *Engine) StructuralJob(rctx context.Context, ctx *AssertContext, name string, sem *contract.Semantic, tm StageTimings) *SemanticReport {
	var sr *SemanticReport
	fail := e.ExecJob(rctx, name, sem.ID, func(jctx context.Context) error {
		sr = e.StructuralReport(jctx, ctx, sem, tm)
		// A scan cut short by cancellation is a failed job, not a clean
		// report with silently fewer confirmations.
		return jctx.Err()
	})
	if fail != nil || sr == nil {
		sr = &SemanticReport{Semantic: sem, SanityOK: true}
	}
	if fail != nil {
		sr.Failures = append(sr.Failures, fail)
	}
	return sr
}

// SiteJob runs the static-path stage for one planned site as a contained
// job. On failure the site's partial paths are cleared and the tree marked
// truncated, so both execution strategies render the same degraded site.
func (e *Engine) SiteJob(rctx context.Context, ctx *AssertContext, name string, siteRep *SiteReport, tm StageTimings) *JobFailure {
	fail := e.ExecJob(rctx, name, siteRep.Site.Semantic.ID, func(jctx context.Context) error {
		return e.SitePaths(jctx, ctx, siteRep, tm)
	})
	if fail != nil {
		siteRep.Paths = nil
		siteRep.TreeTruncated = true
	}
	return fail
}

// DynamicJob runs the per-semantic replay stage as a contained job,
// returning the number of tests replayed. On failure every dynamic overlay
// (selected tests, coverage, dynamic verdicts, post violations) is
// discarded: partial replay output depends on where the failure struck, so
// only a clean job may contribute dynamic results.
func (e *Engine) DynamicJob(rctx context.Context, ctx *AssertContext, name string, sr *SemanticReport, tm StageTimings) (int, *JobFailure) {
	testsRun := 0
	fail := e.ExecJob(rctx, name, sr.Semantic.ID, func(jctx context.Context) error {
		n, err := e.DynamicReplay(jctx, ctx, sr, tm)
		testsRun = n
		return err
	})
	if fail != nil {
		testsRun = 0
		for _, siteRep := range sr.Sites {
			siteRep.SelectedTests = nil
			for _, p := range siteRep.Paths {
				p.CoveredBy = nil
				p.DynamicVerdicts = map[string]concolic.Verdict{}
				p.PostViolatedBy = nil
			}
		}
	}
	return testsRun, fail
}
