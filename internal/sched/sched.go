// Package sched turns an engine assertion run into schedulable jobs: a
// planner decomposes Engine.Assert into independent (semantic × site)
// static jobs, per-semantic replay jobs, and structural jobs; a worker
// pool fans them out across goroutines and merges results back in registry
// order, byte-identical to the sequential run; a fingerprint cache serves
// unchanged jobs from previous runs; and a dirty-set computer maps a
// proposed change (diffutil + callgraph) to the jobs it can reach, so an
// incremental CI gate re-asserts only what the diff impacts.
package sched

import (
	"context"
	"runtime"
	"sync"

	"lisa/internal/contract"
	"lisa/internal/core"
	"lisa/internal/minij"
	"lisa/internal/program"
	"lisa/internal/shard"
	"lisa/internal/smt"
	"lisa/internal/ticket"
)

// Options configure one scheduled assertion run.
type Options struct {
	// Workers is the pool width; 0 or negative means GOMAXPROCS.
	Workers int
	// Incremental computes a dirty set against Base/BaseSource and reports
	// which jobs the change impacts; unimpacted jobs are served from cache
	// when present.
	Incremental bool
	// Base is the pre-change system snapshot the dirty set diffs against
	// (the gate loads it once and shares it). When nil, BaseSource is
	// loaded through the snapshot cache instead.
	Base *program.Snapshot
	// BaseSource is the pre-change system source (typically
	// ci.Change.OldSource); used when Base is nil.
	BaseSource string
	// BatchSize groups jobs into units dispatched to a worker as one
	// message, amortizing the channel handoff and letting the batch answer
	// its cache lookups in one lock pass; <= 0 means DefaultBatchSize.
	BatchSize int
	// ShardIndex/ShardCount restrict the run to the registry semantics that
	// shard.Assign hashes to ShardIndex of ShardCount. Count <= 1 means
	// unsharded. The partition is per semantic so a semantic's structural,
	// site, and dynamic jobs stay in one process (dynamic replay reads
	// every site result of its semantic).
	ShardIndex int
	ShardCount int
}

// Stats describes what one scheduled run did: the job breakdown, how much
// executed versus served from cache, and the dirty-set classification.
type Stats struct {
	Workers int
	// Jobs counts planned jobs; Executed + CacheHits == Jobs.
	Jobs      int
	Executed  int
	CacheHits int
	// Per-kind breakdown of planned jobs.
	StructuralJobs int
	SiteJobs       int
	DynamicJobs    int
	// ImpactedJobs counts jobs the dirty set classified as reachable from
	// the change (equal to Jobs on non-incremental runs).
	ImpactedJobs int
	// Failures counts jobs that ended in a contained failure (panic,
	// timeout, budget); their semantics report INCONCLUSIVE.
	Failures int
	// DiskHits counts the cache hits served from the fingerprint cache's
	// disk tier (a subset of CacheHits; zero unless a store is attached).
	DiskHits uint64
	// SnapshotRestores counts program snapshots this run adopted from the
	// snapshot cache's disk tier instead of compiling, split by restore
	// path: decoded (binary AST + canon digest, the parse-free fast path)
	// vs deep-verified (sampled full re-parse comparison, and every
	// legacy snap.v1 record). Exact when the engine carries a private
	// snapshot cache (core.Engine.Snapshots); otherwise process-wide
	// deltas, approximate under concurrent runs.
	SnapshotRestores             uint64
	SnapshotRestoresDecoded      uint64
	SnapshotRestoresDeepVerified uint64
	// AssertedSemantics/SkippedSemantics partition the registry: a
	// semantic is skipped when every one of its jobs was served from
	// cache, i.e. the gate re-used its previous verdicts wholesale.
	AssertedSemantics int
	SkippedSemantics  int
	// DirtyMethods lists the changed methods (incremental runs).
	DirtyMethods []string
	// DirtyAll marks a change that could not be localized to method bodies.
	DirtyAll bool
	// SolverQueries and SolverCacheHits count the satisfiability queries
	// the run issued and how many the solver result cache answered.
	// Exact when the engine carries a private solver cache (core.Engine
	// .Solver); otherwise they are deltas of the process-wide smt
	// counters, approximate when other runs share the process.
	SolverQueries   uint64
	SolverCacheHits uint64
	// ShardIndex/ShardCount echo the shard spec (0/0 when unsharded);
	// ShardSkippedSemantics counts registry semantics hashed to other
	// shards and therefore never planned in this run.
	ShardIndex            int
	ShardCount            int
	ShardSkippedSemantics int
}

// Scheduler executes assertion runs over a persistent fingerprint cache.
// One scheduler is meant to live as long as its registry does (e.g. for
// the lifetime of a CI gate), accumulating cache entries across runs.
type Scheduler struct {
	cache *Cache
}

// New returns a scheduler with an empty cache.
func New() *Scheduler { return &Scheduler{cache: NewCache()} }

// Cache exposes the scheduler's fingerprint cache (for stats).
func (s *Scheduler) Cache() *Cache { return s.cache }

type jobKind int

const (
	jobStructural jobKind = iota
	jobSite
	jobDynamic
)

// job is one schedulable unit of assertion work.
type job struct {
	kind jobKind
	// name is the stable job name shared with the sequential engine loop
	// (core.JobName*): panic containment and fault injection key on it.
	name string
	sem  *contract.Semantic
	// sr is the semantic report the job contributes to (structural jobs
	// produce their own).
	sr *core.SemanticReport
	// siteRep is the site under work (site jobs only), pre-seeded with the
	// execution-tree chains by the planner.
	siteRep *core.SiteReport
	// closure is the site job's read closure (for dirty-set impact).
	closure []*minij.Method
	fp      string
	// impacted records the dirty-set classification (true on cold runs).
	impacted bool

	cacheHit bool
	executed bool
	testsRun int
	// failure records the contained job failure, if any (site and dynamic
	// jobs; structural jobs carry theirs inside their own report). It is
	// attached to the semantic report at merge time, single-threaded, so
	// workers never append to a shared slice.
	failure *core.JobFailure
}

// semPlan groups one semantic's jobs.
type semPlan struct {
	sem        *contract.Semantic
	sr         *core.SemanticReport
	structural *job
	sites      []*job
	dynamic    *job
}

// Assert runs every registered contract of e over source, scheduling the
// work across a worker pool and serving unchanged jobs from the cache. The
// merged report is byte-identical (per core.AssertReport.Render) to what
// the sequential Engine.Assert produces for the same inputs.
func (s *Scheduler) Assert(e *core.Engine, source string, tests []ticket.TestCase, opts Options) (*core.AssertReport, *Stats, error) {
	return s.AssertCtx(context.Background(), e, source, tests, opts)
}

// AssertCtx is Assert under an external context: cancelling ctx promptly
// drains the pool, failing in-flight jobs with reason "cancelled".
func (s *Scheduler) AssertCtx(ctx context.Context, e *core.Engine, source string, tests []ticket.TestCase, opts Options) (*core.AssertReport, *Stats, error) {
	tm := core.StageTimings{}
	before := snapshotStats(e)
	actx, err := e.Prepare(source, tests, tm)
	if err != nil {
		return nil, nil, err
	}
	rep, stats, err := s.assertContext(ctx, e, actx, tm, opts)
	applySnapshotDelta(stats, e, before)
	return rep, stats, err
}

// AssertSnapshot is Assert over an already-loaded system snapshot (the CI
// gate's path: head and proposed change are loaded once and shared across
// every job of the run).
func (s *Scheduler) AssertSnapshot(e *core.Engine, snap *program.Snapshot, tests []ticket.TestCase, opts Options) (*core.AssertReport, *Stats, error) {
	return s.AssertSnapshotCtx(context.Background(), e, snap, tests, opts)
}

// AssertSnapshotCtx is AssertSnapshot under an external context.
func (s *Scheduler) AssertSnapshotCtx(ctx context.Context, e *core.Engine, snap *program.Snapshot, tests []ticket.TestCase, opts Options) (*core.AssertReport, *Stats, error) {
	tm := core.StageTimings{}
	before := snapshotStats(e)
	actx, err := e.PrepareSnapshot(snap, tests, tm)
	if err != nil {
		return nil, nil, err
	}
	rep, stats, err := s.assertContext(ctx, e, actx, tm, opts)
	applySnapshotDelta(stats, e, before)
	return rep, stats, err
}

// snapshotStats reads the counters of whichever snapshot cache the engine
// loads through (its private one, else the process-wide cache).
func snapshotStats(e *core.Engine) program.CacheStats {
	if e.Snapshots != nil {
		return e.Snapshots.Stats()
	}
	return program.Stats()
}

// applySnapshotDelta records the run's snapshot-restore split (how the
// system and system+tests snapshots were obtained: compiled, decoded from
// the disk tier, or deep-verified against source).
func applySnapshotDelta(stats *Stats, e *core.Engine, before program.CacheStats) {
	if stats == nil {
		return
	}
	d := snapshotStats(e).Sub(before)
	stats.SnapshotRestores = d.Restores
	stats.SnapshotRestoresDecoded = d.RestoresDecoded
	stats.SnapshotRestoresDeepVerified = d.RestoresDeepVerified
}

func (s *Scheduler) assertContext(parent context.Context, e *core.Engine, ctx *core.AssertContext, tm core.StageTimings, opts Options) (*core.AssertReport, *Stats, error) {
	rctx, cancel := e.Budget.RunContext(parent)
	defer cancel()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	stats := &Stats{Workers: workers}
	diskBefore := s.cache.diskHits.Load()
	defer func() { stats.DiskHits = s.cache.diskHits.Load() - diskBefore }()
	if e.Solver != nil {
		// A private solver cache gives an exact per-run delta no matter
		// what the rest of the process does concurrently.
		before := e.Solver.Stats()
		defer func() {
			d := e.Solver.Stats().Sub(before)
			stats.SolverQueries = d.Queries
			stats.SolverCacheHits = d.Hits
		}()
	} else {
		solverBefore := smt.Stats()
		defer func() {
			solverAfter := smt.Stats()
			stats.SolverQueries = solverAfter.Queries - solverBefore.Queries
			stats.SolverCacheHits = solverAfter.CacheHits - solverBefore.CacheHits
		}()
	}

	var dirty *Dirty
	if opts.Incremental && (opts.Base != nil || opts.BaseSource != "") {
		tm.Time("dirty-set", func() {
			if opts.Base != nil {
				dirty = ComputeDirtySnapshots(opts.Base, ctx.Snapshot)
			} else {
				dirty = ComputeDirty(opts.BaseSource, ctx.Source)
			}
		})
		stats.DirtyAll = dirty.All
		stats.DirtyMethods = dirty.SortedMethods()
	}

	spec := shard.Spec{Index: opts.ShardIndex, Count: opts.ShardCount}
	if spec.Enabled() {
		stats.ShardIndex = spec.Index
		stats.ShardCount = spec.Count
	}
	var plans []*semPlan
	tm.Time("plan", func() { plans = s.plan(e, ctx, dirty, spec, stats) })

	// Wave 1: structural checks and per-site static stages — fully
	// independent. Wave 2: per-semantic replay, which reads every site
	// result of its semantic.
	var wave1, wave2 []*job
	for _, sp := range plans {
		if sp.structural != nil {
			wave1 = append(wave1, sp.structural)
		}
		wave1 = append(wave1, sp.sites...)
		if sp.dynamic != nil {
			wave2 = append(wave2, sp.dynamic)
		}
	}
	batchSize := opts.BatchSize
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	batches1 := makeBatches(wave1, batchSize)
	batches2 := makeBatches(wave2, batchSize)
	s.runBatches(rctx, e, ctx, batches1, workers)
	s.runBatches(rctx, e, ctx, batches2, workers)
	for _, b := range batches1 {
		tm.AddAll(b.tm)
	}
	for _, b := range batches2 {
		tm.AddAll(b.tm)
	}

	// Deterministic merge: registry order, site order.
	report := &core.AssertReport{StageTimings: tm, StaticOnly: len(ctx.Tests) == 0}
	for _, sp := range plans {
		jobs := sp.jobs()
		executed := 0
		for _, j := range jobs {
			stats.Jobs++
			if j.impacted {
				stats.ImpactedJobs++
			}
			if j.cacheHit {
				stats.CacheHits++
			} else {
				stats.Executed++
			}
			if j.executed {
				executed++
			}
			switch j.kind {
			case jobStructural:
				stats.StructuralJobs++
			case jobSite:
				stats.SiteJobs++
			case jobDynamic:
				stats.DynamicJobs++
			}
		}
		if len(jobs) > 0 && executed == 0 {
			stats.SkippedSemantics++
		} else {
			stats.AssertedSemantics++
		}
		sr := sp.sr
		if sp.structural != nil {
			sr = sp.structural.sr
		}
		// Attach contained failures in jobs() order — the same order the
		// sequential loop records them in — single-threaded, after the pool
		// drained. Structural jobs already carry theirs inside their report.
		for _, j := range jobs {
			if j.failure != nil {
				sr.Failures = append(sr.Failures, j.failure)
			}
		}
		stats.Failures += len(sr.Failures)
		if sp.dynamic != nil {
			report.TestsRun += sp.dynamic.testsRun
		}
		report.Absorb(sr)
	}
	return report, stats, nil
}

func (sp *semPlan) jobs() []*job {
	var out []*job
	if sp.structural != nil {
		out = append(out, sp.structural)
	}
	out = append(out, sp.sites...)
	if sp.dynamic != nil {
		out = append(out, sp.dynamic)
	}
	return out
}

// plan decomposes the registry into jobs with fingerprints, skipping
// semantics the shard spec assigns elsewhere (their matching, chain
// enumeration, and fingerprint hashing are all avoided, not just their
// execution). Site matching and execution trees are computed here (they
// are cheap and their outputs participate in the fingerprints); the
// expensive stages — path enumeration with SMT verdicts, structural scans,
// concolic replay — are deferred to the jobs.
func (s *Scheduler) plan(e *core.Engine, ctx *core.AssertContext, dirty *Dirty, spec shard.Spec, stats *Stats) []*semPlan {
	// The system program's identity is the snapshot's canonical content
	// address — memoized, so a warm replay never re-renders the program.
	progFP := ctx.Snapshot.CanonHash()
	corpusFP := corpusFingerprint(ctx.Tests)
	// Site fingerprints hash every method in the site's closure; closures
	// overlap heavily across sites, so each method's canonical text is
	// digested once per plan and the per-site hash covers digests, not
	// full texts.
	canonFPs := map[*minij.Method]string{}
	methodFP := func(m *minij.Method) string {
		fp, ok := canonFPs[m]
		if !ok {
			fp = hashParts("canon", ctx.MethodCanon(m))
			canonFPs[m] = fp
		}
		return fp
	}
	var plans []*semPlan
	for _, sem := range e.Registry.All() {
		if !spec.Covers(sem.ID) {
			stats.ShardSkippedSemantics++
			continue
		}
		semFP := semFingerprint(sem)
		sp := &semPlan{sem: sem}
		if sem.Kind == contract.StructuralKind {
			sp.structural = &job{
				kind:     jobStructural,
				name:     core.JobNameStructural(sem.ID),
				sem:      sem,
				fp:       structuralFingerprint(semFP, progFP, corpusFP),
				impacted: dirty == nil || dirty.Any(),
			}
			plans = append(plans, sp)
			continue
		}
		sp.sr = &core.SemanticReport{Semantic: sem}
		occ := map[string]int{}
		var siteFPs []string
		anyImpacted := false
		for _, site := range e.MatchSites(ctx, sem, nil) {
			siteRep := e.SiteChains(ctx, site, nil)
			sp.sr.Sites = append(sp.sr.Sites, siteRep)
			key := site.Method.FullName() + "\x00" + minij.CanonStmt(site.Stmt)
			closure := siteClosure(ctx.Graph, siteRep)
			j := &job{
				kind:     jobSite,
				name:     core.JobNameSite(sem.ID, len(sp.sites)),
				sem:      sem,
				sr:       sp.sr,
				siteRep:  siteRep,
				closure:  closure,
				fp:       siteFingerprint(e, semFP, siteRep, closure, occ[key], methodFP),
				impacted: dirty == nil || dirty.impactsClosure(closure),
			}
			occ[key]++
			siteFPs = append(siteFPs, j.fp)
			anyImpacted = anyImpacted || j.impacted
			sp.sites = append(sp.sites, j)
		}
		if len(ctx.Tests) > 0 {
			sp.dynamic = &job{
				kind: jobDynamic,
				name: core.JobNameDynamic(sem.ID),
				sem:  sem,
				sr:   sp.sr,
				fp:   dynamicFingerprint(e, semFP, progFP, corpusFP, siteFPs),
				// Replay executes arbitrary reachable code, so any change
				// anywhere impacts it.
				impacted: dirty == nil || dirty.Any() || anyImpacted,
			}
		}
		plans = append(plans, sp)
	}
	return plans
}

// runJob executes or cache-serves one job, recording stage timings into
// the enclosing batch's tm (jobs of one batch run on one worker, so the
// shared map is race-free). Site jobs arrive with the memory tier already
// answered by the batch precheck (runBatch), so their lookup starts at the
// disk tier. Cache hits are re-anchored onto the current run's report
// objects so downstream stages and rendering always see current sites.
// Execution goes through the engine's contained job wrappers — the same
// decomposition the sequential loop uses — so a panicking or over-budget
// job degrades instead of killing the worker. Failed jobs are never
// cached: a cached entry must be an authoritative result, and the next run
// should retry.
func (s *Scheduler) runJob(rctx context.Context, e *core.Engine, ctx *core.AssertContext, j *job, tm core.StageTimings) {
	switch j.kind {
	case jobStructural:
		if sr, ok := s.cache.getStructural(j.fp); ok {
			j.sr = sr
			j.cacheHit = true
			return
		}
		if sr, ok := s.cache.diskGetStructural(j.fp, j.sem, ctx.ProgSys); ok {
			j.sr = sr
			s.cache.putStructural(j.fp, sr)
			j.cacheHit = true
			return
		}
		j.sr = e.StructuralJob(rctx, ctx, j.name, j.sem, tm)
		if len(j.sr.Failures) == 0 {
			s.cache.putStructural(j.fp, j.sr)
			s.cache.diskPutStructural(j.fp, j.sr)
		}
		j.executed = true
	case jobSite:
		if paths, truncated, ok := s.cache.diskGetSite(j.fp, j.siteRep.Site); ok {
			j.siteRep.Paths = paths
			j.siteRep.TreeTruncated = truncated
			s.cache.putSite(j.fp, j.siteRep)
			j.cacheHit = true
			return
		}
		j.failure = e.SiteJob(rctx, ctx, j.name, j.siteRep, tm)
		if j.failure == nil {
			s.cache.putSite(j.fp, j.siteRep)
			s.cache.diskPutSite(j.fp, j.siteRep)
		}
		j.executed = true
	case jobDynamic:
		if ov, ok := s.cache.getDynamic(j.fp); ok {
			applyOverlay(j.sr, ov)
			j.testsRun = ov.testsRun
			j.cacheHit = true
			return
		}
		if ov, ok := s.cache.diskGetDynamic(j.fp); ok {
			applyOverlay(j.sr, ov)
			j.testsRun = ov.testsRun
			s.cache.putDynamic(j.fp, ov)
			j.cacheHit = true
			return
		}
		j.testsRun, j.failure = e.DynamicJob(rctx, ctx, j.name, j.sr, tm)
		if j.failure == nil {
			ov := extractOverlay(j.sr, j.testsRun)
			s.cache.putDynamic(j.fp, ov)
			s.cache.diskPutDynamic(j.fp, ov)
		}
		j.executed = true
	}
}

// DefaultBatchSize bounds how many jobs ride one worker dispatch. Jobs in
// the corpus run sub-millisecond, so a dispatch has to carry enough of
// them to amortize the channel round trip; 32 keeps dispatch overhead
// under ~3% of even the cheapest batch while still feeding an 8-wide pool
// from modest job sets.
const DefaultBatchSize = 32

// batchUnit is the unit of worker dispatch: a contiguous run of planned
// jobs (wave order is registry order, so a chunk's site jobs share their
// semantic and read overlapping closures) plus the stage-timing map they
// share.
type batchUnit struct {
	jobs []*job
	tm   core.StageTimings
}

// makeBatches chunks jobs into units of at most size, preserving order.
func makeBatches(jobs []*job, size int) []*batchUnit {
	var batches []*batchUnit
	for len(jobs) > 0 {
		n := size
		if n > len(jobs) {
			n = len(jobs)
		}
		batches = append(batches, &batchUnit{jobs: jobs[:n]})
		jobs = jobs[n:]
	}
	return batches
}

// runBatch executes one batch on the calling goroutine. The batch's site
// jobs answer their memory-tier lookups in a single lock pass first; the
// remaining jobs then run in order.
func (s *Scheduler) runBatch(rctx context.Context, e *core.Engine, ctx *core.AssertContext, b *batchUnit) {
	b.tm = core.StageTimings{}
	var siteJobs []*job
	for _, j := range b.jobs {
		if j.kind == jobSite {
			siteJobs = append(siteJobs, j)
		}
	}
	if len(siteJobs) > 0 {
		fps := make([]string, len(siteJobs))
		for i, j := range siteJobs {
			fps[i] = j.fp
		}
		for i, hit := range s.cache.getSiteBatch(fps) {
			if hit == nil {
				continue
			}
			j := siteJobs[i]
			j.siteRep.Paths = hit.paths
			j.siteRep.TreeTruncated = hit.truncated
			j.cacheHit = true
		}
	}
	for _, j := range b.jobs {
		if !j.cacheHit {
			s.runJob(rctx, e, ctx, j, b.tm)
		}
	}
}

// runBatches fans batches out over a fixed-width worker pool. Width 1
// runs everything inline on the calling goroutine — no channels, no
// goroutine handoff — which is the deterministic baseline the parallel
// runs are checked against and the fix for the old width-1 pool paying
// dispatch overhead for nothing.
func (s *Scheduler) runBatches(rctx context.Context, e *core.Engine, ctx *core.AssertContext, batches []*batchUnit, workers int) {
	if workers <= 1 || len(batches) <= 1 {
		for _, b := range batches {
			s.runBatch(rctx, e, ctx, b)
		}
		return
	}
	ch := make(chan *batchUnit)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range ch {
				s.runBatch(rctx, e, ctx, b)
			}
		}()
	}
	for _, b := range batches {
		ch <- b
	}
	close(ch)
	wg.Wait()
}
