package smt

import (
	"errors"
	"testing"

	"lisa/internal/store"
)

// TestQueryCacheDiskTier: a second cache instance on the same store serves
// persisted verdicts without solving, and promotes them to its memory
// tier.
func TestQueryCacheDiskTier(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	warm := NewQueryCache(8)
	warm.SetStore(st)
	if sat, err := warm.load("p > 0", DefaultMaxNodes, func() (bool, int, error) { return true, 7, nil }); err != nil || !sat {
		t.Fatalf("warm load = %v, %v", sat, err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	cold := NewQueryCache(8)
	cold.SetStore(st)
	sat, err := cold.load("p > 0", DefaultMaxNodes, func() (bool, int, error) {
		return false, 0, errors.New("cold instance should not solve")
	})
	if err != nil || !sat {
		t.Fatalf("cold load = %v, %v", sat, err)
	}
	cs := cold.Stats()
	if cs.DiskHits != 1 || cs.Solves != 0 {
		t.Fatalf("cold stats = %+v, want 1 disk hit and 0 solves", cs)
	}
	// Promoted: the next load is a memory hit, no store round trip.
	if _, err := cold.load("p > 0", DefaultMaxNodes, func() (bool, int, error) {
		return false, 0, errors.New("should be a memory hit")
	}); err != nil {
		t.Fatal(err)
	}
	if cs := cold.Stats(); cs.Hits != 2 || cs.DiskHits != 1 {
		t.Fatalf("promoted stats = %+v, want 2 hits and still 1 disk hit", cs)
	}
}

// TestQueryCacheDiskTierBudgetAware: a persisted verdict whose node count
// exceeds the caller's budget is not served — the caller re-solves under
// its own limits, so ErrBudget surfaces exactly as a cold process would.
func TestQueryCacheDiskTierBudgetAware(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	warm := NewQueryCache(8)
	warm.SetStore(st)
	if _, err := warm.load("q", DefaultMaxNodes, func() (bool, int, error) { return true, 50, nil }); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	cold := NewQueryCache(8)
	cold.SetStore(st)
	if _, err := cold.load("q", 10, func() (bool, int, error) { return false, 0, ErrBudget }); !errors.Is(err, ErrBudget) {
		t.Fatalf("small-budget disk read: err = %v, want ErrBudget", err)
	}
	if _, err := cold.load("q", 50, func() (bool, int, error) {
		return false, 0, errors.New("covered budget should hit disk")
	}); err != nil {
		t.Fatal(err)
	}
}
