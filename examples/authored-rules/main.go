// §5's second open question made concrete: instead of mining rules from
// history, a developer writes low-level semantics directly in the
// structured spec template, and LISA enforces them. Mined rules can also be
// exported into the same syntax for review and editing.
//
//	go run ./examples/authored-rules
package main

import (
	"fmt"
	"log"

	"lisa/internal/contract"
	"lisa/internal/core"
	"lisa/internal/corpus"
)

// A developer encodes the team's lease discipline by hand — before any
// incident has ever occurred.
const authoredSpec = `
# Lease discipline for the storage tier. Written by a developer, not mined.

rule lease-validity-manual
description: Block mutations require a present, unexpired lease.
high-level: At most one writer mutates a file's block chain at any time.
target: BlockChain.appendBlock
bind: l = arg 0
require: l != null && l.expired == false

rule no-io-under-locks-manual
description: Never block on I/O while holding a lock.
structural: no-blocking-io-in-sync
`

func main() {
	sems, err := contract.ParseSpec(authoredSpec)
	if err != nil {
		log.Fatal(err)
	}
	engine := core.New()
	for _, sem := range sems {
		if err := engine.Registry.Add(sem); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("authored: %s\n", sem)
	}

	// Assert the authored rules over the hdfs-lease history: the authored
	// lease rule flags both historical bugs without ever seeing a ticket.
	cs := corpus.Load().Get("hdfs-lease-recovery")
	for _, tk := range cs.Tickets {
		rep, err := engine.Assert(tk.BuggySource, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s (pre-fix code): %d violation(s)\n", tk.ID, rep.Counts.Violations)
		for _, v := range rep.Violations() {
			fmt.Println("  ", v)
		}
	}

	// And the round trip: mined rules export into the same editable syntax.
	mined := core.New()
	if _, err := mined.ProcessTicket(cs.Tickets[0]); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nMined rules exported for developer review:")
	fmt.Print(contract.FormatSpec(mined.Registry.All()))
}
