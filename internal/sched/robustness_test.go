package sched

import (
	"strings"
	"testing"

	"lisa/internal/contract"
	"lisa/internal/core"
	"lisa/internal/faultinject"
	"lisa/internal/ticket"
)

// sysLedger extends the shared fixture with a second guarded subsystem, so
// the engine can hold two independent semantics over one program.
const sysLedger = sysFixed + `
class Account {
	bool sealed;
}

class Ledger {
	map entries;

	void append(string key, Account a) {
		entries.put(key, a);
	}
}

class Auditor {
	Ledger book;

	void record(string key, Account a) {
		if (a == null || a.sealed) {
			throw "AuditException";
		}
		book.append(key, a);
	}
}
`

// engineWithTwoRules registers two semantics with distinct targets: the
// ZK-1208 ephemeral guard and a mirrored ledger guard.
func engineWithTwoRules(t *testing.T) *core.Engine {
	t.Helper()
	e := core.New()
	tickets := []*ticket.Ticket{
		{
			ID:          "ZK-1208",
			Title:       "Ephemeral node on closing session",
			BuggySource: strings.Replace(sysLedger, " || s.closing", "", 1),
			FixedSource: sysLedger,
		},
		{
			ID:          "LG-77",
			Title:       "Ledger entry on sealed account",
			BuggySource: strings.Replace(sysLedger, " || a.sealed", "", 1),
			FixedSource: sysLedger,
		},
	}
	for _, tk := range tickets {
		if _, err := e.ProcessTicket(tk); err != nil {
			t.Fatalf("%s: %v", tk.ID, err)
		}
	}
	if e.Registry.Len() != 2 {
		t.Fatalf("registered %d semantics, want 2", e.Registry.Len())
	}
	return e
}

// findSemantic returns the registered semantic whose target mentions the
// given callee substring.
func findSemantic(t *testing.T, e *core.Engine, callee string) *contract.Semantic {
	t.Helper()
	for _, sem := range e.Registry.All() {
		if strings.Contains(sem.Target.Callee, callee) {
			return sem
		}
	}
	t.Fatalf("no semantic targeting %q", callee)
	return nil
}

// renderSemantic renders one semantic's report in isolation so healthy
// semantics can be compared between a clean run and a faulted run.
func renderSemantic(sr *core.SemanticReport, staticOnly bool) string {
	r := &core.AssertReport{StaticOnly: staticOnly}
	r.Absorb(sr)
	return r.Render()
}

// TestWorkerPanicIsolation: a panic injected into one semantic's site job is
// contained to that job — the worker pool survives, the victim semantic
// reports a structured panic failure and turns INCONCLUSIVE, and the other
// semantic's result is byte-identical to a clean run at every worker count.
func TestWorkerPanicIsolation(t *testing.T) {
	e := engineWithTwoRules(t)
	victim := findSemantic(t, e, "Ledger.append")
	healthy := findSemantic(t, e, "DataTree.createEphemeral")

	clean, _, err := New().Assert(e, sysLedger, testSuite(), Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	cleanHealthy := renderSemantic(clean.Semantic(healthy.ID), clean.StaticOnly)

	faultinject.Arm(faultinject.NewPlan(1).
		Set("job:"+core.JobNameSite(victim.ID, 0), faultinject.Panic))
	defer faultinject.Disarm()

	var renders []string
	for _, workers := range []int{1, 8} {
		rep, stats, err := New().Assert(e, sysLedger, testSuite(), Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: injected panic escaped the pool: %v", workers, err)
		}
		sr := rep.Semantic(victim.ID)
		if sr == nil {
			t.Fatalf("workers=%d: victim semantic missing from report", workers)
		}
		if len(sr.Failures) != 1 {
			t.Fatalf("workers=%d: victim has %d failures, want 1", workers, len(sr.Failures))
		}
		f := sr.Failures[0]
		if f.Reason != core.FailPanic {
			t.Errorf("workers=%d: failure reason = %q, want %q", workers, f.Reason, core.FailPanic)
		}
		if f.Stack == "" {
			t.Errorf("workers=%d: panic failure carries no stack trace", workers)
		}
		if got := sr.Outcome(); got != core.OutcomeInconclusive {
			t.Errorf("workers=%d: victim outcome = %s, want %s", workers, got, core.OutcomeInconclusive)
		}
		if stats.Failures == 0 {
			t.Errorf("workers=%d: stats.Failures = 0, want >0", workers)
		}
		hs := rep.Semantic(healthy.ID)
		if got := hs.Outcome(); got != core.OutcomePass {
			t.Errorf("workers=%d: healthy outcome = %s, want %s", workers, got, core.OutcomePass)
		}
		if got := renderSemantic(hs, rep.StaticOnly); got != cleanHealthy {
			t.Errorf("workers=%d: healthy semantic drifted under fault\n--- clean ---\n%s\n--- faulted ---\n%s",
				workers, cleanHealthy, got)
		}
		renders = append(renders, rep.Render())
	}
	if renders[0] != renders[1] {
		t.Errorf("faulted reports differ between workers=1 and workers=8\n--- w1 ---\n%s\n--- w8 ---\n%s",
			renders[0], renders[1])
	}

	// Disarmed, a fresh scheduler recovers completely: no residue.
	faultinject.Disarm()
	after, _, err := New().Assert(e, sysLedger, testSuite(), Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := after.Semantic(victim.ID).Outcome(); got != core.OutcomePass {
		t.Errorf("after disarm: victim outcome = %s, want %s", got, core.OutcomePass)
	}
}
