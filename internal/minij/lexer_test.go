package minij

import (
	"strings"
	"testing"
)

func TestLexBasicTokens(t *testing.T) {
	toks, err := Lex(`class Foo { int x; }`)
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	want := []struct {
		kind TokenKind
		text string
	}{
		{TokKeyword, "class"}, {TokIdent, "Foo"}, {TokPunct, "{"},
		{TokKeyword, "int"}, {TokIdent, "x"}, {TokPunct, ";"},
		{TokPunct, "}"}, {TokEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = %v %q, want %v %q", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex(`== != <= >= && || < > + - * / % ! =`)
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	wantOps := []string{"==", "!=", "<=", ">=", "&&", "||", "<", ">", "+", "-", "*", "/", "%", "!", "="}
	for i, op := range wantOps {
		if toks[i].Kind != TokOp || toks[i].Text != op {
			t.Errorf("token %d = %q, want operator %q", i, toks[i].Text, op)
		}
	}
}

func TestLexIntLiteral(t *testing.T) {
	toks, err := Lex("12345")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	if toks[0].Kind != TokInt || toks[0].Int != 12345 {
		t.Errorf("got %+v, want int 12345", toks[0])
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := Lex(`"a\nb\t\"c\\"`)
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	if got, want := toks[0].Text, "a\nb\t\"c\\"; got != want {
		t.Errorf("string = %q, want %q", got, want)
	}
}

func TestLexComments(t *testing.T) {
	src := `
// line comment
class /* block
comment */ A { }
`
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	if toks[0].Text != "class" || toks[1].Text != "A" {
		t.Errorf("comments not skipped: %v", toks[:2])
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  bb")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("a at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("bb at %v, want 2:3", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`"unterminated`, "unterminated string"},
		{`"bad \q escape"`, "unknown escape"},
		{"/* open", "unterminated block comment"},
		{"@", "unexpected character"},
		{"\"line\nbreak\"", "newline in string"},
	}
	for _, c := range cases {
		_, err := Lex(c.src)
		if err == nil {
			t.Errorf("Lex(%q): expected error containing %q, got nil", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Lex(%q) error = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestPosOrdering(t *testing.T) {
	a, b := Pos{1, 5}, Pos{2, 1}
	if !a.Before(b) || b.Before(a) {
		t.Error("line ordering broken")
	}
	c, d := Pos{3, 2}, Pos{3, 9}
	if !c.Before(d) || d.Before(c) {
		t.Error("column ordering broken")
	}
	if (Pos{}).IsValid() {
		t.Error("zero Pos should be invalid")
	}
}
