package concolic

import (
	"strings"
	"testing"

	"lisa/internal/callgraph"
	"lisa/internal/contract"
	"lisa/internal/smt"
)

// The caller-guard scenario: the internal helper performs the protected
// operation without its own guard, but its only production caller checks
// the rule first. Intraprocedural analysis alone would flag the helper;
// chain analysis inherits the caller's condition and verifies it.
const callerGuardSrc = `
class Session {
	bool closing;
}

class DataTree {
	map nodes;

	void createEphemeral(string path, Session owner) {
		nodes.put(path, owner);
	}
}

class Registrar {
	DataTree tree;

	void registerUnchecked(string path, Session sess) {
		tree.createEphemeral(path, sess);
	}
}

class Router {
	Registrar registrar;

	void routeCreate(string path, Session s) {
		if (s == null || s.closing) {
			throw "SessionExpired";
		}
		registrar.registerUnchecked(path, s);
	}
}
`

func TestChainInheritsCallerGuard(t *testing.T) {
	prog := compile(t, callerGuardSrc)
	sem := ephemeralSemantic()
	site := contract.Match(sem, prog)[0]

	// Intraprocedural: the helper has no guard — flagged.
	intra, _ := StaticPaths(prog, site, Options{})
	if len(intra) != 1 || CheckStaticPath(intra[0]) != VerdictViolation {
		t.Fatalf("intraprocedural should flag the helper: %v", intra)
	}

	// Chain through the guarded router: the condition is inherited and the
	// path verifies.
	g := callgraph.Build(prog)
	tree := g.ExecutionTree(site.Method, callgraph.TreeOptions{})
	if len(tree.Paths) != 1 || len(tree.Paths[0]) != 1 {
		t.Fatalf("tree paths = %v", tree.Paths)
	}
	paths, truncated := ChainStaticPaths(prog, site, tree.Paths[0], Options{})
	if truncated {
		t.Error("unexpected truncation")
	}
	if len(paths) != 1 {
		t.Fatalf("chain paths = %d", len(paths))
	}
	cond := paths[0].Cond.String()
	if !strings.Contains(cond, "sess != null") || !strings.Contains(cond, "!(sess.closing)") {
		t.Errorf("inherited condition = %q", cond)
	}
	if v := CheckStaticPath(paths[0]); v != VerdictVerified {
		t.Errorf("chain verdict = %v, want VERIFIED", v)
	}
	// Inherited guards are labeled.
	foundInherited := false
	for _, gd := range paths[0].Guards {
		if strings.Contains(gd.Guard, "(inherited)") {
			foundInherited = true
		}
	}
	if !foundInherited {
		t.Errorf("guards = %v, want an inherited marker", paths[0].Guards)
	}
}

func TestChainEmptyFallsBackToIntra(t *testing.T) {
	prog := compile(t, callerGuardSrc)
	sem := ephemeralSemantic()
	site := contract.Match(sem, prog)[0]
	direct, _ := StaticPaths(prog, site, Options{})
	viaChain, _ := ChainStaticPaths(prog, site, nil, Options{})
	if len(direct) != len(viaChain) {
		t.Fatalf("empty chain should equal intraprocedural: %d vs %d", len(direct), len(viaChain))
	}
	if direct[0].Cond.String() != viaChain[0].Cond.String() {
		t.Errorf("conds differ: %q vs %q", direct[0].Cond, viaChain[0].Cond)
	}
}

func TestChainUnguardedCallerStillViolates(t *testing.T) {
	// Add a second, unguarded entry: its chain must violate even though the
	// router chain verifies.
	src := callerGuardSrc + `
class AdminBackdoor {
	Registrar registrar;

	void forceCreate(string path, Session s) {
		if (s == null) {
			return;
		}
		registrar.registerUnchecked(path, s);
	}
}
`
	prog := compile(t, src)
	sem := ephemeralSemantic()
	site := contract.Match(sem, prog)[0]
	g := callgraph.Build(prog)
	tree := g.ExecutionTree(site.Method, callgraph.TreeOptions{})
	if len(tree.Paths) != 2 {
		t.Fatalf("tree paths = %v", tree.Paths)
	}
	verdictByEntry := map[string]Verdict{}
	for _, chain := range tree.Paths {
		paths, _ := ChainStaticPaths(prog, site, chain, Options{})
		for _, p := range paths {
			entry := chain.Entry(site.Method).FullName()
			v := CheckStaticPath(p)
			if old, ok := verdictByEntry[entry]; !ok || v == VerdictViolation {
				_ = old
				verdictByEntry[entry] = v
			}
		}
	}
	if verdictByEntry["Router.routeCreate"] != VerdictVerified {
		t.Errorf("router chain = %v", verdictByEntry["Router.routeCreate"])
	}
	if verdictByEntry["AdminBackdoor.forceCreate"] != VerdictViolation {
		t.Errorf("backdoor chain = %v", verdictByEntry["AdminBackdoor.forceCreate"])
	}
}

func TestChainConstantArgumentPropagates(t *testing.T) {
	// A caller passing a literal propagates it as a known constant.
	src := `
class Store {
	list ops;

	void write(bool force, string op) {
		if (force) {
			apply(op);
		}
	}

	void apply(string op) {
		ops.add(op);
	}
}

class Caller {
	Store store;

	void flush(string op) {
		store.write(true, op);
	}
}
`
	prog := compile(t, src)
	sem := &contract.Semantic{
		ID:   "store-rule",
		Kind: contract.StateKind,
		Target: contract.TargetPattern{
			Callee: "Store.apply",
			Bind:   map[string]int{"op": 0},
		},
		Pre: smt.MustParsePredicate(`op != ""`),
	}
	if err := sem.Validate(); err != nil {
		t.Fatal(err)
	}
	site := contract.Match(sem, prog)[0]
	g := callgraph.Build(prog)
	tree := g.ExecutionTree(site.Method, callgraph.TreeOptions{})
	// The site lives in Store.write (the statement calling apply), so the
	// chain is Caller.flush -> Store.write: one edge carrying force=true.
	var longest callgraph.Path
	for _, ch := range tree.Paths {
		if len(ch) > len(longest) {
			longest = ch
		}
	}
	if len(longest) != 1 {
		t.Fatalf("chains = %v", tree.Paths)
	}
	paths, _ := ChainStaticPaths(prog, site, longest, Options{})
	// The inherited constant force=true folds the guard away: exactly one
	// unconditional-in-force path reaches apply.
	if len(paths) != 1 {
		t.Fatalf("paths = %d", len(paths))
	}
	for _, gd := range paths[0].Guards {
		if strings.Contains(gd.Guard, "force") {
			t.Errorf("force guard should have folded to a constant: %v", paths[0].Guards)
		}
	}
}

// TestChainTwoHopInheritance: conditions split across two caller levels
// both reach the site — the router checks null, the dispatcher checks the
// state flag, and the helper checks nothing.
func TestChainTwoHopInheritance(t *testing.T) {
	src := `
class Session {
	bool closing;
}

class DataTree {
	map nodes;

	void createEphemeral(string path, Session owner) {
		nodes.put(path, owner);
	}
}

class Helper {
	DataTree tree;

	void register(string path, Session sess) {
		tree.createEphemeral(path, sess);
	}
}

class Dispatcher {
	Helper helper;

	void dispatch(string path, Session d) {
		if (d.closing) {
			throw "SessionExpired";
		}
		helper.register(path, d);
	}
}

class Router {
	Dispatcher dispatcher;

	void route(string path, Session r) {
		if (r == null) {
			throw "BadRequest";
		}
		dispatcher.dispatch(path, r);
	}
}
`
	prog := compile(t, src)
	sem := ephemeralSemantic()
	site := contract.Match(sem, prog)[0]
	if site.Method.FullName() != "Helper.register" {
		t.Fatalf("site = %s", site)
	}
	g := callgraph.Build(prog)
	tree := g.ExecutionTree(site.Method, callgraph.TreeOptions{})
	if len(tree.Paths) != 1 || len(tree.Paths[0]) != 2 {
		t.Fatalf("chains = %v", tree.Paths)
	}
	paths, _ := ChainStaticPaths(prog, site, tree.Paths[0], Options{})
	if len(paths) != 1 {
		t.Fatalf("paths = %d", len(paths))
	}
	cond := paths[0].Cond.String()
	// The null check from Router and the closing check from Dispatcher both
	// arrive renamed into the helper's parameter vocabulary.
	if !strings.Contains(cond, "sess != null") || !strings.Contains(cond, "!(sess.closing)") {
		t.Errorf("two-hop inherited condition = %q", cond)
	}
	if v := CheckStaticPath(paths[0]); v != VerdictVerified {
		t.Errorf("verdict = %v", v)
	}
}
