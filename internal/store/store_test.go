package store

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"

	"lisa/internal/faultinject"
)

func openT(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func putFlush(t *testing.T, s *Store, ns, key string, val []byte) {
	t.Helper()
	s.Put(ns, key, val)
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
}

func logBytes(t *testing.T, dir string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		t.Fatalf("read log: %v", err)
	}
	return b
}

func TestPutGetReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	putFlush(t, s, "a", "k1", []byte("v1"))
	putFlush(t, s, "a", "k2", []byte("v2"))
	putFlush(t, s, "b", "k1", []byte("other-ns"))

	if v, ok := s.Get("a", "k1"); !ok || string(v) != "v1" {
		t.Fatalf("Get a/k1 = %q, %v", v, ok)
	}
	if v, ok := s.Get("b", "k1"); !ok || string(v) != "other-ns" {
		t.Fatalf("Get b/k1 = %q, %v", v, ok)
	}
	if _, ok := s.Get("a", "nope"); ok {
		t.Fatal("Get of absent key succeeded")
	}
	s.Close()

	// A fresh open rebuilds the index from the log.
	s2 := openT(t, dir)
	for _, tc := range []struct{ ns, key, want string }{
		{"a", "k1", "v1"}, {"a", "k2", "v2"}, {"b", "k1", "other-ns"},
	} {
		if v, ok := s2.Get(tc.ns, tc.key); !ok || string(v) != tc.want {
			t.Fatalf("after reopen Get %s/%s = %q, %v (want %q)", tc.ns, tc.key, v, ok, tc.want)
		}
	}
	if st := s2.Stats(); st.Records != 3 {
		t.Fatalf("records = %d, want 3", st.Records)
	}
}

func TestLastWriteWins(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	putFlush(t, s, "a", "k", []byte("first"))
	putFlush(t, s, "a", "k", []byte("second"))
	if v, ok := s.Get("a", "k"); !ok || string(v) != "second" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	s.Close()
	s2 := openT(t, dir)
	if v, ok := s2.Get("a", "k"); !ok || string(v) != "second" {
		t.Fatalf("after reopen Get = %q, %v", v, ok)
	}
}

func TestIdenticalPutNotRewritten(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	putFlush(t, s, "a", "k", []byte("same"))
	before := logBytes(t, dir)
	putFlush(t, s, "a", "k", []byte("same"))
	after := logBytes(t, dir)
	if !bytes.Equal(before, after) {
		t.Fatalf("identical re-put grew the log: %d -> %d bytes", len(before), len(after))
	}
}

// TestTornTailRecovery truncates the log mid-record (a crashed writer's
// torn tail) and checks that reopening recovers: the torn record is
// dropped, every earlier record survives, and new writes land cleanly.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	putFlush(t, s, "a", "keep1", []byte("alpha"))
	putFlush(t, s, "a", "keep2", []byte("beta"))
	putFlush(t, s, "a", "torn", []byte("this record will be cut in half"))
	s.Close()

	path := filepath.Join(dir, logName)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-10); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir)
	if st := s2.Stats(); st.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", st.Recoveries)
	}
	if v, ok := s2.Get("a", "keep1"); !ok || string(v) != "alpha" {
		t.Fatalf("keep1 = %q, %v", v, ok)
	}
	if v, ok := s2.Get("a", "keep2"); !ok || string(v) != "beta" {
		t.Fatalf("keep2 = %q, %v", v, ok)
	}
	if _, ok := s2.Get("a", "torn"); ok {
		t.Fatal("torn record survived recovery")
	}
	// The tail is clean again: appends work and survive another reopen.
	putFlush(t, s2, "a", "torn", []byte("recomputed"))
	s2.Close()
	s3 := openT(t, dir)
	if v, ok := s3.Get("a", "torn"); !ok || string(v) != "recomputed" {
		t.Fatalf("recomputed torn = %q, %v", v, ok)
	}
}

// TestTornTailGarbage dumps raw garbage on the tail instead of a clean
// truncation; recovery must still find the frame boundary.
func TestTornTailGarbage(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	putFlush(t, s, "a", "keep", []byte("alpha"))
	s.Close()

	path := filepath.Join(dir, logName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("\x00\x01garbage that is no frame"))
	f.Close()

	s2 := openT(t, dir)
	if st := s2.Stats(); st.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", st.Recoveries)
	}
	if v, ok := s2.Get("a", "keep"); !ok || string(v) != "alpha" {
		t.Fatalf("keep = %q, %v", v, ok)
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.compactMin = 64 // lower the dead-byte floor so a small test compacts
	val := make([]byte, 128)
	for i := 0; i < 32; i++ {
		for j := range val {
			val[j] = byte(i + j)
		}
		putFlush(t, s, "a", "churn", val)
		putFlush(t, s, "a", fmt.Sprintf("live%d", i%4), val)
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction ran: %+v", st)
	}
	if st.DeadBytes > st.LiveBytes {
		t.Fatalf("dead %d > live %d after compaction", st.DeadBytes, st.LiveBytes)
	}
	// Everything live is still readable, here and after a reopen.
	if v, ok := s.Get("a", "churn"); !ok || !bytes.Equal(v, val) {
		t.Fatalf("churn after compaction = %v, %v", v, ok)
	}
	s.Close()
	s2 := openT(t, dir)
	if v, ok := s2.Get("a", "churn"); !ok || !bytes.Equal(v, val) {
		t.Fatalf("churn after reopen = %v, %v", v, ok)
	}
	for i := 0; i < 4; i++ {
		if _, ok := s2.Get("a", fmt.Sprintf("live%d", i)); !ok {
			t.Fatalf("live%d missing after compaction+reopen", i)
		}
	}
}

// TestCorruptionDetected flips a byte in a stored value on disk; the CRC
// must catch it and Get must answer miss, not wrong data.
func TestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	putFlush(t, s, "a", "k", []byte("pristine"))
	path := filepath.Join(dir, logName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff // last byte of the only value
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get("a", "k"); ok {
		t.Fatalf("corrupted Get returned data: %q", v)
	}
	if st := s.Stats(); st.Corruptions != 1 {
		t.Fatalf("corruptions = %d, want 1", st.Corruptions)
	}
}

// TestFaultinjectRead arms the store.read Corrupt point: reads must fail
// the CRC check and fall back to miss while armed, and recover after.
func TestFaultinjectRead(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	putFlush(t, s, "a", "k", []byte("pristine"))

	faultinject.Arm(faultinject.NewPlan(1).Set(FaultPointRead, faultinject.Corrupt))
	defer faultinject.Disarm()
	if v, ok := s.Get("a", "k"); ok {
		t.Fatalf("injected-corrupt Get returned data: %q", v)
	}
	if st := s.Stats(); st.Corruptions != 1 {
		t.Fatalf("corruptions = %d, want 1", st.Corruptions)
	}
	faultinject.Disarm()
	if v, ok := s.Get("a", "k"); !ok || string(v) != "pristine" {
		t.Fatalf("post-disarm Get = %q, %v", v, ok)
	}
}

// TestArmedPutSkipped: writes issued while a faultinject plan is armed
// never reach the disk tier — the log stays byte-identical.
func TestArmedPutSkipped(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	putFlush(t, s, "a", "k", []byte("clean"))
	before := logBytes(t, dir)

	faultinject.Arm(faultinject.NewPlan(1).Set("something.else", faultinject.Panic))
	s.Put("a", "k2", []byte("poisoned"))
	s.Put("a", "k", []byte("poisoned overwrite"))
	faultinject.Disarm()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	if after := logBytes(t, dir); !bytes.Equal(before, after) {
		t.Fatalf("armed puts reached the store: %d -> %d bytes", len(before), len(after))
	}
	if st := s.Stats(); st.ArmedSkips != 2 {
		t.Fatalf("armed skips = %d, want 2", st.ArmedSkips)
	}
	if v, ok := s.Get("a", "k"); !ok || string(v) != "clean" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
}

// TestTwoStoresOneProcess exercises cross-handle sharing through the
// locked tail rescan: two Store handles on one directory observe each
// other's writes without reopening.
func TestTwoStoresOneProcess(t *testing.T) {
	dir := t.TempDir()
	s1 := openT(t, dir)
	s2 := openT(t, dir)
	putFlush(t, s1, "a", "from1", []byte("one"))
	if v, ok := s2.Get("a", "from1"); !ok || string(v) != "one" {
		t.Fatalf("s2 missed s1's write: %q, %v", v, ok)
	}
	putFlush(t, s2, "a", "from2", []byte("two"))
	if v, ok := s1.Get("a", "from2"); !ok || string(v) != "two" {
		t.Fatalf("s1 missed s2's write: %q, %v", v, ok)
	}
}

// TestStoreHelperProcess is not a test: it is the second process of
// TestTwoProcessSharing, run via exec of the test binary.
func TestStoreHelperProcess(t *testing.T) {
	if os.Getenv("LISA_STORE_HELPER") != "1" {
		t.Skip("helper process for TestTwoProcessSharing")
	}
	dir := os.Getenv("LISA_STORE_DIR")
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("helper Open: %v", err)
	}
	defer s.Close()
	v, ok := s.Get("t", "parent")
	if !ok {
		t.Fatal("helper could not read parent's record")
	}
	s.Put("t", "child", append(v, []byte(" seen by child")...))
	if err := s.Flush(); err != nil {
		t.Fatalf("helper Flush: %v", err)
	}
}

// TestTwoProcessSharing spawns a second OS process on the same store
// directory: the child must see the parent's record through the log, and
// the parent must pick up the child's append through the tail rescan —
// the advisory flock is what keeps the interleaving safe.
func TestTwoProcessSharing(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	putFlush(t, s, "t", "parent", []byte("hello"))

	cmd := exec.Command(os.Args[0], "-test.run", "^TestStoreHelperProcess$", "-test.v")
	cmd.Env = append(os.Environ(), "LISA_STORE_HELPER=1", "LISA_STORE_DIR="+dir)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("helper process failed: %v\n%s", err, out)
	}
	if v, ok := s.Get("t", "child"); !ok || string(v) != "hello seen by child" {
		t.Fatalf("parent missed child's write: %q, %v", v, ok)
	}
}

// TestStoreHammer drives one store from 8 goroutines with mixed
// put/get/flush traffic; run under -race by verify.sh. Every key must
// hold one of the values some goroutine wrote for it, and a reopen must
// agree.
func TestStoreHammer(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.compactMin = 256 // let the hammer cross the compaction path too
	const goroutines = 8
	const rounds = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				key := fmt.Sprintf("k%d", r%10)
				s.Put("h", key, []byte(fmt.Sprintf("g%d-r%d", g, r)))
				if v, ok := s.Get("h", key); ok && len(v) == 0 {
					t.Errorf("empty value for %s", key)
				}
				if r%17 == 0 {
					s.Flush()
				}
			}
		}(g)
	}
	wg.Wait()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	check := func(st *Store, label string) {
		for i := 0; i < 10; i++ {
			key := fmt.Sprintf("k%d", i)
			v, ok := st.Get("h", key)
			if !ok {
				t.Fatalf("%s: %s missing", label, key)
			}
			var g, r int
			if _, err := fmt.Sscanf(string(v), "g%d-r%d", &g, &r); err != nil {
				t.Fatalf("%s: %s holds garbage %q", label, key, v)
			}
		}
	}
	check(s, "live")
	s.Close()
	s2 := openT(t, dir)
	check(s2, "reopened")
	if st := s2.Stats(); st.Corruptions != 0 {
		t.Fatalf("hammer caused corruption reports: %+v", st)
	}
}

// TestStoreScopedPutsPersist: a store-scoped plan (faults aimed at the
// storage layer itself) must NOT trip the "never persist under injection"
// guard — the computation above the store is clean, and dropping writes
// would leave the chaos campaign nothing to crash.
func TestStoreScopedPutsPersist(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)

	faultinject.Arm(faultinject.NewPlan(1).
		Set(FaultPointCompact, faultinject.Budget). // never visited here
		ScopeStore())
	defer faultinject.Disarm()
	s.Put("a", "k", []byte("persisted"))
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if st := s.Stats(); st.ArmedSkips != 0 {
		t.Fatalf("store-scoped put was skipped: %+v", st)
	}
	faultinject.Disarm()
	s.Close()
	s2 := openT(t, dir)
	if v, ok := s2.Get("a", "k"); !ok || string(v) != "persisted" {
		t.Fatalf("store-scoped put did not persist: %q, %v", v, ok)
	}
}

// TestInjectedWriteFailureSurfaced: a Budget fault at store.write loses
// the put like a full disk would, and the loss must be *visible* — Flush
// returns the error, Stats and the per-namespace counter record it.
func TestInjectedWriteFailureSurfaced(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	putFlush(t, s, "a", "kept", []byte("before faults"))

	faultinject.Arm(faultinject.NewPlan(1).
		Set(FaultPointWrite, faultinject.Budget).
		ScopeStore())
	s.Put("a", "lost", []byte("never lands"))
	err := s.Flush()
	faultinject.Disarm()
	if err == nil {
		t.Fatal("Flush after failed append returned nil")
	}
	st := s.Stats()
	if st.WriteErrors != 1 {
		t.Fatalf("WriteErrors = %d, want 1", st.WriteErrors)
	}
	if st.LastWriteError == "" {
		t.Fatal("LastWriteError empty after failed append")
	}
	if n := s.NamespaceWriteErrors("a"); n != 1 {
		t.Fatalf("NamespaceWriteErrors(a) = %d, want 1", n)
	}
	if n := s.NamespaceWriteErrors("other"); n != 0 {
		t.Fatalf("NamespaceWriteErrors(other) = %d, want 0", n)
	}
	// The failed put is gone; earlier data is untouched; the next Flush
	// barrier is clean again.
	if _, ok := s.Get("a", "lost"); ok {
		t.Fatal("failed put is readable")
	}
	if v, ok := s.Get("a", "kept"); !ok || string(v) != "before faults" {
		t.Fatalf("pre-fault record = %q, %v", v, ok)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("clean Flush still reports old error: %v", err)
	}
}

// TestInjectedCorruptWriteDetected: a Corrupt fault at store.write lands
// the frame with a rotted byte. Reads must detect the bad CRC and serve a
// miss, and a reopen must drop the frame in tail recovery — corrupted
// data is never served either way.
func TestInjectedCorruptWriteDetected(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	putFlush(t, s, "a", "good", []byte("intact"))

	faultinject.Arm(faultinject.NewPlan(1).
		Set(FaultPointWrite, faultinject.Corrupt).
		ScopeStore())
	putFlush(t, s, "a", "rotten", []byte("bitrot"))
	faultinject.Disarm()

	if v, ok := s.Get("a", "rotten"); ok {
		t.Fatalf("corrupted record served: %q", v)
	}
	if st := s.Stats(); st.Corruptions == 0 {
		t.Fatal("corruption not counted")
	}
	if v, ok := s.Get("a", "good"); !ok || string(v) != "intact" {
		t.Fatalf("clean record = %q, %v", v, ok)
	}
	s.Close()
	s2 := openT(t, dir)
	if v, ok := s2.Get("a", "rotten"); ok {
		t.Fatalf("corrupted record survived reopen: %q", v)
	}
	if v, ok := s2.Get("a", "good"); !ok || string(v) != "intact" {
		t.Fatalf("clean record after reopen = %q, %v", v, ok)
	}
}

// TestInjectedSyncFailureSurfaced: a Budget fault at store.flush fails the
// batch's sync — every put in the batch counts as a write error and the
// Flush barrier reports it.
func TestInjectedSyncFailureSurfaced(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)

	faultinject.Arm(faultinject.NewPlan(1).
		Set(FaultPointFlush, faultinject.Budget).
		ScopeStore())
	s.Put("a", "k1", []byte("v1"))
	s.Put("a", "k2", []byte("v2"))
	err := s.Flush()
	faultinject.Disarm()
	if err == nil {
		t.Fatal("Flush after failed sync returned nil")
	}
	if st := s.Stats(); st.WriteErrors != 2 {
		t.Fatalf("WriteErrors = %d, want 2 (whole batch)", st.WriteErrors)
	}
}

// TestInjectedCompactAborted: a Budget fault at store.compact models "no
// room for the temp file" — compaction backs off, the log keeps its dead
// weight, and every live record stays readable.
func TestInjectedCompactAborted(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.compactMin = 64
	faultinject.Arm(faultinject.NewPlan(1).
		Set(FaultPointCompact, faultinject.Budget).
		ScopeStore())
	defer faultinject.Disarm()
	val := make([]byte, 128)
	for i := 0; i < 16; i++ {
		for j := range val {
			val[j] = byte(i + j)
		}
		putFlush(t, s, "a", "churn", val)
	}
	st := s.Stats()
	if st.Compactions != 0 {
		t.Fatalf("aborted compaction still ran: %+v", st)
	}
	if st.DeadBytes <= st.LiveBytes {
		t.Fatalf("expected dead > live with compaction suppressed: %+v", st)
	}
	if v, ok := s.Get("a", "churn"); !ok || !bytes.Equal(v, val) {
		t.Fatalf("churn = %v, %v", v, ok)
	}
}

// TestSetAfterWritesThenFails: SetAfter lets the first N appends land and
// fails sticky from then on — the knob the crash campaign turns to vary
// where in the write stream the process dies.
func TestSetAfterWritesThenFails(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	faultinject.Arm(faultinject.NewPlan(1).
		SetAfter(FaultPointWrite, faultinject.Budget, 2).
		ScopeStore())
	defer faultinject.Disarm()
	for i := 0; i < 4; i++ {
		s.Put("a", fmt.Sprintf("k%d", i), []byte{byte(i)})
		err := s.Flush()
		if i < 2 && err != nil {
			t.Fatalf("Flush %d (before fault armed): %v", i, err)
		}
		if i >= 2 && err == nil {
			t.Fatalf("Flush %d (fault armed) returned nil", i)
		}
	}
	if st := s.Stats(); st.WriteErrors != 2 {
		t.Fatalf("WriteErrors = %d, want 2 (skip=2 of 4 appends)", st.WriteErrors)
	}
	for i := 0; i < 2; i++ {
		if _, ok := s.Get("a", fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d (before fault armed) missing", i)
		}
	}
	for i := 2; i < 4; i++ {
		if _, ok := s.Get("a", fmt.Sprintf("k%d", i)); ok {
			t.Fatalf("k%d (after fault armed) landed", i)
		}
	}
}
