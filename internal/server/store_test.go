package server

import (
	"testing"

	"lisa/internal/store"
)

// TestServerRestartWarmFromStore: a daemon restarted over the store a
// previous daemon populated starts warm — the first gate on the new
// instance compiles no snapshots, executes no jobs, and returns the same
// report — and /stats exposes the store ledger and per-cache tier
// counters.
func TestServerRestartWarmFromStore(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cs := corpusCase(t, "zk-ephemeral")

	_, clA, doneA := newTestServer(t, Config{Store: st})
	cold, err := clA.Gate(GateRequest{Case: cs.ID, Change: cs.Head()})
	if err != nil {
		t.Fatal(err)
	}
	statsA, err := clA.Stats()
	if err != nil {
		t.Fatal(err)
	}
	doneA()
	if statsA.Store == nil || len(statsA.Tiers) == 0 {
		t.Fatalf("store-backed /stats has no store ledger or tiers: %+v", statsA)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if st.Stats().Records == 0 {
		t.Fatal("daemon A persisted nothing")
	}

	// "Restart": a brand-new server over the same store, all memory tiers
	// empty.
	_, clB, doneB := newTestServer(t, Config{Store: st})
	defer doneB()
	warm, err := clB.Gate(GateRequest{Case: cs.ID, Change: cs.Head()})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Report != warm.Report || cold.Pass != warm.Pass {
		t.Fatal("restarted daemon changed the report")
	}
	if warm.Cache.SnapshotCompiles != 0 {
		t.Errorf("restarted daemon compiled %d snapshots, want 0 (restored from store)", warm.Cache.SnapshotCompiles)
	}
	if warm.Cache.SchedExecuted != 0 {
		t.Errorf("restarted daemon executed %d jobs, want 0 (disk-tier hits); delta %+v", warm.Cache.SchedExecuted, warm.Cache)
	}
	statsB, err := clB.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if statsB.Solver.Solves != 0 {
		t.Errorf("restarted daemon ran %d solver searches, want 0 (disk-tier verdicts)", statsB.Solver.Solves)
	}
	var diskHits uint64
	for _, tier := range statsB.Tiers {
		diskHits += tier.DiskHits
	}
	if diskHits == 0 {
		t.Errorf("restarted daemon reports no disk hits: %+v", statsB.Tiers)
	}
}

// TestServerWithoutStoreOmitsTiers: store-less daemons keep the previous
// /stats shape — no store ledger, no tier list.
func TestServerWithoutStoreOmitsTiers(t *testing.T) {
	_, cl, done := newTestServer(t, Config{})
	defer done()
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Store != nil || len(stats.Tiers) != 0 {
		t.Fatalf("store-less /stats reports store state: %+v", stats)
	}
}
