// Package report renders experiment results as aligned text tables, the
// format cmd/lisabench prints for each reproduced figure and table.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render draws the table with aligned columns.
func (t *Table) Render() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(Section(t.Title))
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("  note: ")
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Section renders a section heading.
func Section(title string) string {
	return fmt.Sprintf("\n== %s ==\n\n", title)
}

// Bool renders a boolean as a compact glyph column.
func Bool(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
