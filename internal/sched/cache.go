package sched

import (
	"sync"
	"sync/atomic"

	"lisa/internal/concolic"
	"lisa/internal/contract"
	"lisa/internal/core"
	"lisa/internal/store"
)

// Cache is the fingerprint-keyed result store. It survives across Assert
// runs of one Scheduler, so a warm run serves unchanged jobs without
// re-executing them. Entries are immutable once stored: results are deep-
// copied on put and on get, so report mutation (the dynamic overlay) never
// corrupts cached state. All methods are safe for concurrent use by the
// worker pool.
//
// An optional on-disk tier (SetStore) extends the cache across processes:
// memory misses consult the store, decoded records are re-anchored onto the
// current run's program and promoted into memory, and successful executions
// write through (persist.go).
type Cache struct {
	mu         sync.Mutex
	sites      map[string]*siteEntry
	structural map[string]*core.SemanticReport
	dynamic    map[string]*dynOverlay
	hits       int
	misses     int

	disk       atomic.Pointer[store.Store]
	diskHits   atomic.Uint64
	diskMisses atomic.Uint64
	diskWrites atomic.Uint64
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{
		sites:      map[string]*siteEntry{},
		structural: map[string]*core.SemanticReport{},
		dynamic:    map[string]*dynOverlay{},
	}
}

// CacheStats is a point-in-time cache counter snapshot. The disk counters
// stay zero until a store is attached.
type CacheStats struct {
	Entries int
	Hits    int
	Misses  int
	// Disk-tier counters: hits decoded and re-anchored from the store,
	// misses (absent, stale, or unanchorable records), and write-throughs.
	DiskHits   uint64
	DiskMisses uint64
	DiskWrites uint64
}

// Stats returns cumulative hit/miss counters and the entry count.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:    len(c.sites) + len(c.structural) + len(c.dynamic),
		Hits:       c.hits,
		Misses:     c.misses,
		DiskHits:   c.diskHits.Load(),
		DiskMisses: c.diskMisses.Load(),
		DiskWrites: c.diskWrites.Load(),
	}
}

// siteEntry is the cached static result of one (semantic × site) job. The
// site identity itself is not stored: a hit is re-anchored onto the current
// run's site object, so dynamic replay and report rendering always see the
// current program.
type siteEntry struct {
	paths     []*core.PathReport
	truncated bool
}

// getSiteBatch answers many site fingerprints in a single lock
// acquisition (one batch of jobs pays one lock round trip instead of one
// per job). Misses come back nil; hits are served as deep copies — fresh
// PathReports ready for dynamic attribution — and the hit/miss counters
// advance per fingerprint.
func (c *Cache) getSiteBatch(fps []string) []*siteEntry {
	out := make([]*siteEntry, len(fps))
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, fp := range fps {
		ent, ok := c.sites[fp]
		if !ok {
			c.misses++
			continue
		}
		c.hits++
		out[i] = &siteEntry{paths: clonePaths(ent.paths), truncated: ent.truncated}
	}
	return out
}

// putSite stores a just-computed static site result.
func (c *Cache) putSite(fp string, siteRep *core.SiteReport) {
	ent := &siteEntry{paths: clonePaths(siteRep.Paths), truncated: siteRep.TreeTruncated}
	c.mu.Lock()
	c.sites[fp] = ent
	c.mu.Unlock()
}

// getStructural serves a cached structural semantic report.
func (c *Cache) getStructural(fp string) (*core.SemanticReport, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sr, ok := c.structural[fp]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	return cloneStructural(sr), true
}

// putStructural stores a structural result.
func (c *Cache) putStructural(fp string, sr *core.SemanticReport) {
	clone := cloneStructural(sr)
	c.mu.Lock()
	c.structural[fp] = clone
	c.mu.Unlock()
}

// dynOverlay is the cached dynamic result of one per-semantic replay job:
// selected tests and per-path coverage/verdict attributions, addressed by
// (site index, path index). The addressing is sound because the dynamic
// fingerprint covers every site fingerprint — a hit implies the static
// structure is identical.
type dynOverlay struct {
	testsRun int
	sites    []siteDyn
}

type siteDyn struct {
	selected []string
	paths    []pathDyn
}

type pathDyn struct {
	coveredBy      []string
	dynVerdicts    map[string]concolic.Verdict
	postViolatedBy []string
}

// getDynamic serves a cached replay overlay.
func (c *Cache) getDynamic(fp string) (*dynOverlay, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ov, ok := c.dynamic[fp]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	return ov.clone(), true
}

// putDynamic stores a replay overlay extracted from a finished semantic
// report.
func (c *Cache) putDynamic(fp string, ov *dynOverlay) {
	clone := ov.clone()
	c.mu.Lock()
	c.dynamic[fp] = clone
	c.mu.Unlock()
}

// --- deep copies ----------------------------------------------------------

func clonePaths(paths []*core.PathReport) []*core.PathReport {
	out := make([]*core.PathReport, len(paths))
	for i, p := range paths {
		out[i] = &core.PathReport{
			Static:          p.Static, // immutable after enumeration
			Verdict:         p.Verdict,
			CoveredBy:       cloneStrings(p.CoveredBy),
			DynamicVerdicts: cloneVerdicts(p.DynamicVerdicts),
			PostViolatedBy:  cloneStrings(p.PostViolatedBy),
		}
	}
	return out
}

func cloneStructural(sr *core.SemanticReport) *core.SemanticReport {
	clone := &core.SemanticReport{
		Semantic:   sr.Semantic,
		Structural: append([]*contract.StructuralViolation(nil), sr.Structural...),
		SanityOK:   sr.SanityOK,
	}
	if sr.StructuralConfirmedBy != nil {
		clone.StructuralConfirmedBy = map[int][]string{}
		for i, tests := range sr.StructuralConfirmedBy {
			clone.StructuralConfirmedBy[i] = cloneStrings(tests)
		}
	}
	return clone
}

func (ov *dynOverlay) clone() *dynOverlay {
	out := &dynOverlay{testsRun: ov.testsRun, sites: make([]siteDyn, len(ov.sites))}
	for i, s := range ov.sites {
		cs := siteDyn{selected: cloneStrings(s.selected), paths: make([]pathDyn, len(s.paths))}
		for j, p := range s.paths {
			cs.paths[j] = pathDyn{
				coveredBy:      cloneStrings(p.coveredBy),
				dynVerdicts:    cloneVerdicts(p.dynVerdicts),
				postViolatedBy: cloneStrings(p.postViolatedBy),
			}
		}
		out.sites[i] = cs
	}
	return out
}

// extractOverlay lifts the dynamic attributions out of a replayed semantic
// report.
func extractOverlay(sr *core.SemanticReport, testsRun int) *dynOverlay {
	ov := &dynOverlay{testsRun: testsRun, sites: make([]siteDyn, len(sr.Sites))}
	for i, siteRep := range sr.Sites {
		s := siteDyn{selected: cloneStrings(siteRep.SelectedTests), paths: make([]pathDyn, len(siteRep.Paths))}
		for j, p := range siteRep.Paths {
			s.paths[j] = pathDyn{
				coveredBy:      cloneStrings(p.CoveredBy),
				dynVerdicts:    cloneVerdicts(p.DynamicVerdicts),
				postViolatedBy: cloneStrings(p.PostViolatedBy),
			}
		}
		ov.sites[i] = s
	}
	return ov
}

// applyOverlay writes a cached replay overlay back onto a semantic report
// whose static structure matches (guaranteed by the dynamic fingerprint).
func applyOverlay(sr *core.SemanticReport, ov *dynOverlay) {
	for i, siteRep := range sr.Sites {
		if i >= len(ov.sites) {
			break
		}
		s := ov.sites[i]
		siteRep.SelectedTests = cloneStrings(s.selected)
		for j, p := range siteRep.Paths {
			if j >= len(s.paths) {
				break
			}
			p.CoveredBy = cloneStrings(s.paths[j].coveredBy)
			p.DynamicVerdicts = cloneVerdicts(s.paths[j].dynVerdicts)
			p.PostViolatedBy = cloneStrings(s.paths[j].postViolatedBy)
		}
	}
}

func cloneStrings(xs []string) []string {
	if xs == nil {
		return nil
	}
	return append([]string(nil), xs...)
}

func cloneVerdicts(m map[string]concolic.Verdict) map[string]concolic.Verdict {
	out := make(map[string]concolic.Verdict, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
