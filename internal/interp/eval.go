package interp

import (
	"fmt"
	"strings"

	"lisa/internal/minij"
)

// eval evaluates an expression, returning its value, a MiniJ exception, or
// an interpreter-level error. Exactly one of the three results is
// meaningful.
func (in *Interp) eval(e minij.Expr, fr *Frame) (Value, *Exception, error) {
	switch n := e.(type) {
	case *minij.IntLit:
		return Int(n.Value), nil, nil
	case *minij.BoolLit:
		return Bool(n.Value), nil, nil
	case *minij.StrLit:
		return Str(n.Value), nil, nil
	case *minij.NullLit:
		return Null{}, nil, nil
	case *minij.Ident:
		if v, ok := fr.Lookup(n.Name); ok {
			return v, nil, nil
		}
		if fr.This != nil {
			if v, ok := fr.This.Fields[n.Name]; ok {
				return v, nil, nil
			}
		}
		return nil, nil, fmt.Errorf("interp: %s: undefined variable %q", n.Pos(), n.Name)
	case *minij.FieldAccess:
		recv, exc, err := in.eval(n.Recv, fr)
		if err != nil || exc != nil {
			return nil, exc, err
		}
		obj, ok := recv.(*Object)
		if !ok {
			if IsNull(recv) {
				return nil, &Exception{Value: "NullPointerException", Pos: n.Pos()}, nil
			}
			return nil, &Exception{Value: "TypeError", Pos: n.Pos()}, nil
		}
		v, ok := obj.Fields[n.Name]
		if !ok {
			return nil, &Exception{Value: "TypeError", Pos: n.Pos()}, nil
		}
		return v, nil, nil
	case *minij.Call:
		return in.evalCall(n, fr)
	case *minij.New:
		c := in.Prog.Class(n.Class)
		if c == nil {
			return nil, nil, fmt.Errorf("interp: %s: unknown class %q", n.Pos(), n.Class)
		}
		args, exc, err := in.evalArgs(n.Args, fr)
		if err != nil || exc != nil {
			return nil, exc, err
		}
		obj := in.newObject(c)
		if init := c.Method("init"); init != nil {
			_, exc, err := in.callMethod(init, obj, args, n.Pos(), nil)
			if err != nil || exc != nil {
				return nil, exc, err
			}
		}
		return obj, nil, nil
	case *minij.Unary:
		x, exc, err := in.eval(n.X, fr)
		if err != nil || exc != nil {
			return nil, exc, err
		}
		switch n.Op {
		case "!":
			b, ok := x.(Bool)
			if !ok {
				return nil, &Exception{Value: "TypeError", Pos: n.Pos()}, nil
			}
			return Bool(!b), nil, nil
		case "-":
			i, ok := x.(Int)
			if !ok {
				return nil, &Exception{Value: "TypeError", Pos: n.Pos()}, nil
			}
			return Int(-i), nil, nil
		}
		return nil, nil, fmt.Errorf("interp: unknown unary %q", n.Op)
	case *minij.Binary:
		return in.evalBinary(n, fr)
	}
	return nil, nil, fmt.Errorf("interp: unhandled expression %T", e)
}

func (in *Interp) evalArgs(args []minij.Expr, fr *Frame) ([]Value, *Exception, error) {
	out := make([]Value, len(args))
	for i, a := range args {
		v, exc, err := in.eval(a, fr)
		if err != nil || exc != nil {
			return nil, exc, err
		}
		out[i] = v
	}
	return out, nil, nil
}

func (in *Interp) evalBinary(n *minij.Binary, fr *Frame) (Value, *Exception, error) {
	// Short-circuit logic first.
	if n.Op == "&&" || n.Op == "||" {
		x, exc, err := in.eval(n.X, fr)
		if err != nil || exc != nil {
			return nil, exc, err
		}
		xb, ok := x.(Bool)
		if !ok {
			return nil, &Exception{Value: "TypeError", Pos: n.Pos()}, nil
		}
		if n.Op == "&&" && !bool(xb) {
			return Bool(false), nil, nil
		}
		if n.Op == "||" && bool(xb) {
			return Bool(true), nil, nil
		}
		y, exc, err := in.eval(n.Y, fr)
		if err != nil || exc != nil {
			return nil, exc, err
		}
		yb, ok := y.(Bool)
		if !ok {
			return nil, &Exception{Value: "TypeError", Pos: n.Pos()}, nil
		}
		return yb, nil, nil
	}
	x, exc, err := in.eval(n.X, fr)
	if err != nil || exc != nil {
		return nil, exc, err
	}
	y, exc, err := in.eval(n.Y, fr)
	if err != nil || exc != nil {
		return nil, exc, err
	}
	switch n.Op {
	case "==":
		return Bool(Equal(x, y)), nil, nil
	case "!=":
		return Bool(!Equal(x, y)), nil, nil
	case "+":
		if xs, ok := x.(Str); ok {
			return xs + Str(Format(y)), nil, nil
		}
		if ys, ok := y.(Str); ok {
			return Str(Format(x)) + ys, nil, nil
		}
	}
	xi, xok := x.(Int)
	yi, yok := y.(Int)
	if !xok || !yok {
		return nil, &Exception{Value: "TypeError", Pos: n.Pos()}, nil
	}
	switch n.Op {
	case "+":
		return xi + yi, nil, nil
	case "-":
		return xi - yi, nil, nil
	case "*":
		return xi * yi, nil, nil
	case "/":
		if yi == 0 {
			return nil, &Exception{Value: "ArithmeticException", Pos: n.Pos()}, nil
		}
		return xi / yi, nil, nil
	case "%":
		if yi == 0 {
			return nil, &Exception{Value: "ArithmeticException", Pos: n.Pos()}, nil
		}
		return xi % yi, nil, nil
	case "<":
		return Bool(xi < yi), nil, nil
	case "<=":
		return Bool(xi <= yi), nil, nil
	case ">":
		return Bool(xi > yi), nil, nil
	case ">=":
		return Bool(xi >= yi), nil, nil
	}
	return nil, nil, fmt.Errorf("interp: unknown operator %q", n.Op)
}

func (in *Interp) evalCall(n *minij.Call, fr *Frame) (Value, *Exception, error) {
	switch n.Kind {
	case minij.CallBuiltin:
		args, exc, err := in.evalArgs(n.Args, fr)
		if err != nil || exc != nil {
			return nil, exc, err
		}
		return in.callBuiltin(n.Name, args, n.Pos())
	case minij.CallSelf:
		m := fr.Method.Class.Method(n.Name)
		if m == nil {
			return nil, nil, fmt.Errorf("interp: %s: no sibling method %q", n.Pos(), n.Name)
		}
		args, exc, err := in.evalArgs(n.Args, fr)
		if err != nil || exc != nil {
			return nil, exc, err
		}
		this := fr.This
		if m.Static {
			this = nil
		}
		return in.callMethod(m, this, args, n.Pos(), n)
	case minij.CallStatic:
		className := n.Recv.(*minij.Ident).Name
		m := in.Prog.Method(className, n.Name)
		if m == nil {
			return nil, nil, fmt.Errorf("interp: %s: no method %s.%s", n.Pos(), className, n.Name)
		}
		args, exc, err := in.evalArgs(n.Args, fr)
		if err != nil || exc != nil {
			return nil, exc, err
		}
		return in.callMethod(m, nil, args, n.Pos(), n)
	case minij.CallInstance:
		recv, exc, err := in.eval(n.Recv, fr)
		if err != nil || exc != nil {
			return nil, exc, err
		}
		args, exc, err := in.evalArgs(n.Args, fr)
		if err != nil || exc != nil {
			return nil, exc, err
		}
		switch r := recv.(type) {
		case *Object:
			m := r.Class.Method(n.Name)
			if m == nil {
				return nil, &Exception{Value: "TypeError", Pos: n.Pos()}, nil
			}
			return in.callMethod(m, r, args, n.Pos(), n)
		case *List:
			return in.callList(r, n.Name, args, n.Pos())
		case *Map:
			return in.callMap(r, n.Name, args, n.Pos())
		case Null:
			return nil, &Exception{Value: "NullPointerException", Pos: n.Pos()}, nil
		}
		return nil, &Exception{Value: "TypeError", Pos: n.Pos()}, nil
	}
	return nil, nil, fmt.Errorf("interp: %s: unresolved call %q (program not checked?)", n.Pos(), n.Name)
}

func (in *Interp) callBuiltin(name string, args []Value, pos minij.Pos) (Value, *Exception, error) {
	sig, ok := minij.Builtin(name)
	if !ok {
		return nil, nil, fmt.Errorf("interp: %s: unknown builtin %q", pos, name)
	}
	emit := func(detail string) {
		method := ""
		if len(in.curMethod) > 0 {
			method = in.curMethod[len(in.curMethod)-1].FullName()
		}
		ev := IOEvent{Builtin: name, Detail: detail, Blocking: sig.Blocking, LocksHeld: in.locksHeld, Pos: pos, Method: method}
		in.IOLog = append(in.IOLog, ev)
		if in.Hooks.OnBuiltin != nil {
			in.Hooks.OnBuiltin(ev)
		}
	}
	switch name {
	case "now":
		return Int(in.Clock), nil, nil
	case "log":
		in.Log = append(in.Log, Format(args[0]))
		return Null{}, nil, nil
	case "ioWrite":
		key, ok := args[0].(Str)
		if !ok {
			return nil, &Exception{Value: "TypeError", Pos: pos}, nil
		}
		in.Files[string(key)] = Format(args[1])
		emit(string(key))
		return Null{}, nil, nil
	case "ioRead":
		key, ok := args[0].(Str)
		if !ok {
			return nil, &Exception{Value: "TypeError", Pos: pos}, nil
		}
		emit(string(key))
		return Str(in.Files[string(key)]), nil, nil
	case "ioFlush":
		emit("")
		return Null{}, nil, nil
	case "netSend":
		addr, ok := args[0].(Str)
		if !ok {
			return nil, &Exception{Value: "TypeError", Pos: pos}, nil
		}
		emit(string(addr) + " <- " + Format(args[1]))
		return Null{}, nil, nil
	case "sleep":
		d, ok := args[0].(Int)
		if !ok {
			return nil, &Exception{Value: "TypeError", Pos: pos}, nil
		}
		in.Clock += int64(d)
		emit(Format(args[0]))
		return Null{}, nil, nil
	case "newList":
		return &List{}, nil, nil
	case "newMap":
		return NewMap(), nil, nil
	case "len":
		switch v := args[0].(type) {
		case Str:
			return Int(len(v)), nil, nil
		case *List:
			return Int(len(v.Elems)), nil, nil
		case *Map:
			return Int(v.Len()), nil, nil
		}
		return nil, &Exception{Value: "TypeError", Pos: pos}, nil
	case "str":
		return Str(Format(args[0])), nil, nil
	case "strContains":
		s, ok1 := args[0].(Str)
		sub, ok2 := args[1].(Str)
		if !ok1 || !ok2 {
			return nil, &Exception{Value: "TypeError", Pos: pos}, nil
		}
		return Bool(strings.Contains(string(s), string(sub))), nil, nil
	case "min", "max":
		a, ok1 := args[0].(Int)
		b, ok2 := args[1].(Int)
		if !ok1 || !ok2 {
			return nil, &Exception{Value: "TypeError", Pos: pos}, nil
		}
		if (name == "min") == (a < b) {
			return a, nil, nil
		}
		return b, nil, nil
	case "abort":
		return nil, &Exception{Value: "Abort: " + Format(args[0]), Pos: pos}, nil
	case "assertTrue":
		cond, ok := args[0].(Bool)
		if !ok {
			return nil, &Exception{Value: "TypeError", Pos: pos}, nil
		}
		if !cond {
			return nil, &Exception{Value: "AssertionError: " + Format(args[1]), Pos: pos}, nil
		}
		return Null{}, nil, nil
	}
	return nil, nil, fmt.Errorf("interp: builtin %q not implemented", name)
}

func (in *Interp) callList(l *List, name string, args []Value, pos minij.Pos) (Value, *Exception, error) {
	switch name {
	case "add":
		l.Elems = append(l.Elems, args[0])
		return Null{}, nil, nil
	case "addAll":
		other, ok := args[0].(*List)
		if !ok {
			return nil, &Exception{Value: "TypeError", Pos: pos}, nil
		}
		l.Elems = append(l.Elems, other.Elems...)
		return Null{}, nil, nil
	case "get":
		i, ok := args[0].(Int)
		if !ok {
			return nil, &Exception{Value: "TypeError", Pos: pos}, nil
		}
		if i < 0 || int(i) >= len(l.Elems) {
			return nil, &Exception{Value: "IndexOutOfBounds", Pos: pos}, nil
		}
		return l.Elems[i], nil, nil
	case "size":
		return Int(len(l.Elems)), nil, nil
	case "isEmpty":
		return Bool(len(l.Elems) == 0), nil, nil
	case "contains":
		for _, e := range l.Elems {
			if Equal(e, args[0]) {
				return Bool(true), nil, nil
			}
		}
		return Bool(false), nil, nil
	case "remove":
		for i, e := range l.Elems {
			if Equal(e, args[0]) {
				l.Elems = append(l.Elems[:i], l.Elems[i+1:]...)
				return Bool(true), nil, nil
			}
		}
		return Bool(false), nil, nil
	case "removeAt":
		i, ok := args[0].(Int)
		if !ok {
			return nil, &Exception{Value: "TypeError", Pos: pos}, nil
		}
		if i < 0 || int(i) >= len(l.Elems) {
			return nil, &Exception{Value: "IndexOutOfBounds", Pos: pos}, nil
		}
		l.Elems = append(l.Elems[:i], l.Elems[i+1:]...)
		return Null{}, nil, nil
	case "clear":
		l.Elems = nil
		return Null{}, nil, nil
	}
	return nil, &Exception{Value: "TypeError", Pos: pos}, nil
}

func (in *Interp) callMap(m *Map, name string, args []Value, pos minij.Pos) (Value, *Exception, error) {
	switch name {
	case "put":
		if !validKey(args[0]) {
			return nil, &Exception{Value: "TypeError", Pos: pos}, nil
		}
		m.Put(args[0], args[1])
		return Null{}, nil, nil
	case "get":
		return m.Get(args[0]), nil, nil
	case "has":
		return Bool(m.Has(args[0])), nil, nil
	case "remove":
		return m.Remove(args[0]), nil, nil
	case "size":
		return Int(m.Len()), nil, nil
	case "isEmpty":
		return Bool(m.Len() == 0), nil, nil
	case "keys":
		return &List{Elems: m.Keys()}, nil, nil
	case "values":
		vals := make([]Value, 0, m.Len())
		for _, k := range m.Keys() {
			vals = append(vals, m.Get(k))
		}
		return &List{Elems: vals}, nil, nil
	case "clear":
		m.Clear()
		return Null{}, nil, nil
	}
	return nil, &Exception{Value: "TypeError", Pos: pos}, nil
}

// validKey reports whether v may key a MiniJ map. Mutable containers are
// allowed as keys by identity, matching Java HashMap semantics closely
// enough for the corpus; only interpreter-internal values are rejected.
func validKey(v Value) bool {
	switch v.(type) {
	case Int, Bool, Str, Null, *Object:
		return true
	}
	return false
}
