// Package ci implements the enforcement end of the vision: every failure,
// once fixed, becomes an executable contract that a CI/CD pipeline asserts
// against each proposed change, so the same class of mistake cannot merge
// again.
package ci

import (
	"fmt"
	"strings"

	"lisa/internal/concolic"
	"lisa/internal/core"
	"lisa/internal/diffutil"
	"lisa/internal/ticket"
)

// Change is one proposed code change submitted to the gate.
type Change struct {
	// Author and Summary describe the change (for the gate log).
	Author  string
	Summary string
	// NewSource is the full system source after the change.
	NewSource string
	// OldSource, when non-empty, lets the gate include a patch digest in
	// its report.
	OldSource string
}

// Finding is one gate finding.
type Finding struct {
	Severity string // "BLOCK" or "WARN"
	Text     string
}

// Result is the gate decision for one change.
type Result struct {
	Pass     bool
	Findings []Finding
	Report   *core.AssertReport
	// DiffStat summarizes the change when OldSource was provided.
	DiffStat string
}

// Gate asserts every contract in the engine's registry against the changed
// source. Violations block the change; uncovered paths and failed sanity
// checks surface as warnings for developer verdict (per §3.2, the developer
// decides whether missing coverage means a missed test or a missed rule).
func Gate(engine *core.Engine, ch Change, tests []ticket.TestCase) (*Result, error) {
	report, err := engine.Assert(ch.NewSource, tests)
	if err != nil {
		// A change that does not compile or resolve is itself a block.
		return &Result{
			Pass:     false,
			Findings: []Finding{{Severity: "BLOCK", Text: fmt.Sprintf("change does not build: %v", err)}},
		}, nil
	}
	res := &Result{Report: report}
	if ch.OldSource != "" {
		st := diffutil.DiffStats(diffutil.Diff(ch.OldSource, ch.NewSource))
		res.DiffStat = fmt.Sprintf("+%d -%d lines", st.Added, st.Removed)
	}
	for _, v := range report.Violations() {
		res.Findings = append(res.Findings, Finding{Severity: "BLOCK", Text: v})
	}
	for _, sr := range report.Semantics {
		if !sr.SanityOK {
			res.Findings = append(res.Findings, Finding{
				Severity: "WARN",
				Text:     fmt.Sprintf("[%s] sanity check failed: no path verifies the rule anywhere", sr.Semantic.ID),
			})
		}
		for _, site := range sr.Sites {
			for _, p := range site.Paths {
				if p.Verdict == concolic.VerdictUnknown {
					res.Findings = append(res.Findings, Finding{
						Severity: "WARN",
						Text:     fmt.Sprintf("[%s] %s: operand not normalizable; developer review needed", sr.Semantic.ID, site.Site),
					})
				}
				for _, tn := range p.PostViolatedBy {
					res.Findings = append(res.Findings, Finding{
						Severity: "BLOCK",
						Text: fmt.Sprintf("[%s] %s: postcondition violated when replayed by %s",
							sr.Semantic.ID, site.Site, tn),
					})
				}
				if !p.Covered() && !report.StaticOnly && p.Verdict == concolic.VerdictVerified {
					res.Findings = append(res.Findings, Finding{
						Severity: "WARN",
						Text: fmt.Sprintf("[%s] %s path {%s}: no selected test exercises this path",
							sr.Semantic.ID, site.Site, p.Static),
					})
				}
			}
		}
	}
	res.Pass = true
	for _, f := range res.Findings {
		if f.Severity == "BLOCK" {
			res.Pass = false
			break
		}
	}
	return res, nil
}

// Summary renders the gate decision as a short log.
func (r *Result) Summary() string {
	var sb strings.Builder
	if r.Pass {
		sb.WriteString("GATE: PASS")
	} else {
		sb.WriteString("GATE: BLOCKED")
	}
	if r.DiffStat != "" {
		sb.WriteString(" (")
		sb.WriteString(r.DiffStat)
		sb.WriteString(")")
	}
	sb.WriteByte('\n')
	for _, f := range r.Findings {
		fmt.Fprintf(&sb, "  %-5s %s\n", f.Severity, f.Text)
	}
	return sb.String()
}
