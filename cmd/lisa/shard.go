package main

import (
	"fmt"
	"os"
	"os/exec"
	"strconv"

	"lisa/internal/program"
	"lisa/internal/shard"
	"lisa/internal/store"
)

// spawnShards is the parent side of `lisa assert/gate -shards N`: it
// launches one child `lisa <sub>` process per shard, each restricted (via
// the internal -shard-index flag) to the semantics its shard covers, all
// sharing one on-disk store directory. Children execute their shard's jobs
// and write the results through; the parent then runs the full job set
// against the warmed store — the merge — so its report is produced by the
// ordinary registry-order path and stays byte-identical to a sequential
// run.
//
// storeDir may be empty: a temporary directory is created and shared, and
// the returned cleanup removes it (callers must invoke cleanup on every
// exit path, including before os.Exit). The returned dir is the store the
// parent's own merge run must attach.
//
// Before any child is spawned, the parent serializes the snapshots in
// prewarmSources into the shared store (the warm handoff): each child then
// opens the store and restores the parsed program through the binary-AST
// decode path instead of paying a full parse — the per-child setup tax
// drops from parse+resolve to decode+digest.
func spawnShards(sub string, args []string, shards int, storeDir string, prewarmSources ...string) (results []shard.Result, dir string, cleanup func(), err error) {
	cleanup = func() {}
	exe, err := os.Executable()
	if err != nil {
		return nil, "", cleanup, fmt.Errorf("resolve executable for shard children: %w", err)
	}
	dir = storeDir
	if dir == "" {
		dir, err = os.MkdirTemp("", "lisa-shards-")
		if err != nil {
			return nil, "", cleanup, err
		}
		tmp := dir
		cleanup = func() { os.RemoveAll(tmp) }
	}
	if err := prewarmShardStore(dir, prewarmSources); err != nil {
		cleanup()
		return nil, "", func() {}, fmt.Errorf("prewarm shard store: %w", err)
	}
	results = shard.Run(shards, func(i int) *exec.Cmd {
		childArgs := append([]string{sub}, args...)
		childArgs = append(childArgs, "-shard-index", strconv.Itoa(i))
		if storeDir == "" {
			childArgs = append(childArgs, "-store", dir)
		}
		return exec.Command(exe, childArgs...)
	})
	for _, r := range results {
		if r.Err != nil {
			cleanup()
			return nil, "", func() {}, fmt.Errorf("shard %d failed: %v\n%s", r.Index, r.Err, r.Output)
		}
	}
	return results, dir, cleanup, nil
}

// prewarmShardStore parses each source once in the parent and persists the
// fully-warmed snapshot (binary AST, canon digest, derived artifacts, call
// graph) into the shared store, then flushes so children see the records
// immediately on open. Sources that fail to compile are skipped — the
// child will surface the error through its ordinary path.
func prewarmShardStore(dir string, sources []string) error {
	if len(sources) == 0 {
		return nil
	}
	st, err := store.Open(dir)
	if err != nil {
		return err
	}
	defer st.Close()
	snaps := program.NewCache(0)
	snaps.SetStore(st)
	for _, src := range sources {
		if src == "" {
			continue
		}
		if snap, err := snaps.Load(src); err == nil {
			snap.Graph() // the persist trigger: write the fully-warmed record
		}
	}
	return st.Flush()
}
