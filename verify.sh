#!/bin/sh
# Full verify: tier-1 (build + all tests), vet, the race-detector suites
# for the packages with concurrency (scheduler worker pool, snapshot
# cache, solver result cache, prefix-pruning walker, fault injector, the
# on-disk store with its goroutine hammer, and the serve daemon with its
# request hammer), the daemon smoke test by name (start a real listener,
# one gate round trip, clean drain), the cold-process-on-warm-store
# smoke (two CLI invocations sharing a store directory: the second must
# serve its jobs from the disk tier), the perf-regression gate against
# the committed counter baseline, and a smoke run of the fault-injection
# matrix. ROADMAP.md points here.
set -ex
go build ./...
go test ./...
go vet ./...
go test -race ./internal/sched/... ./internal/program/... ./internal/faultinject/... ./internal/smt/... ./internal/concolic/... ./internal/server/... ./internal/store/...
go test -run TestServerSmoke -count=1 ./internal/server
STORE_SMOKE=$(mktemp -d)
go run ./cmd/lisa assert -case zk-ephemeral -tests -store "$STORE_SMOKE" > /dev/null
go run ./cmd/lisa assert -case zk-ephemeral -tests -store "$STORE_SMOKE" | grep "served from the disk tier"
rm -rf "$STORE_SMOKE"
go run ./cmd/lisabench -diff BENCH_7.json
go run ./cmd/lisabench -exp chaos -seed 1
