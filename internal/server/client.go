package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client is the thin remote mode of the lisa CLI: it speaks the daemon's
// JSON API so a cold client process rides the server's warm caches instead
// of re-paying the front end locally.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for a daemon at base (e.g.
// "http://127.0.0.1:7333"). Requests carry no deadline by default — gate
// runs are bounded by the server's budget, not the transport — callers
// that want one can swap HTTPClient.
func NewClient(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{},
	}
}

// SetHTTPClient replaces the underlying transport (tests, custom timeouts).
func (c *Client) SetHTTPClient(hc *http.Client) { c.http = hc }

// Gate submits a proposed change to the daemon's CI gate.
func (c *Client) Gate(req GateRequest) (*GateResponse, error) {
	var resp GateResponse
	if err := c.do(http.MethodPost, "/gate", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Assert asserts a case's rules over a version of its system.
func (c *Client) Assert(req AssertRequest) (*AssertResponse, error) {
	var resp AssertResponse
	if err := c.do(http.MethodPost, "/assert", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the server's aggregated cache and request counters.
func (c *Client) Stats() (*StatsResponse, error) {
	var resp StatsResponse
	if err := c.do(http.MethodGet, "/stats", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// HistoryPage is the /history payload: the retained entries plus the
// total ever recorded (so a reader can tell how much fell off the ring).
type HistoryPage struct {
	Total   uint64         `json:"total"`
	Entries []HistoryEntry `json:"entries"`
}

// History fetches the last n audit entries (all retained when n <= 0).
func (c *Client) History(n int) (*HistoryPage, error) {
	path := "/history"
	if n > 0 {
		path += "?n=" + strconv.Itoa(n)
	}
	var resp HistoryPage
	if err := c.do(http.MethodGet, path, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Watch registers a directory root with the server's file watcher.
func (c *Client) Watch(root string) (*WatcherStats, error) {
	var resp WatcherStats
	if err := c.do(http.MethodPost, "/watch", WatchRequest{Root: root}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health pings the daemon; an error means unreachable or draining.
func (c *Client) Health() error {
	return c.do(http.MethodGet, "/healthz", nil, &struct {
		Status string `json:"status"`
	}{})
}

// WaitReady polls /healthz until the daemon answers or the deadline
// passes (startup convenience for scripts and tests).
func (c *Client) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var err error
	for time.Now().Before(deadline) {
		if err = c.Health(); err == nil {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("server at %s not ready after %v: %w", c.base, timeout, err)
}

func (c *Client) do(method, path string, in, out any) error {
	var body *bytes.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	} else {
		body = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e errorResponse
		if derr := json.NewDecoder(resp.Body).Decode(&e); derr == nil && e.Error != "" {
			return fmt.Errorf("server: %s (%s)", e.Error, resp.Status)
		}
		return fmt.Errorf("server: %s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
