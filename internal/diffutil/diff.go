// Package diffutil implements a line-based Myers diff and unified-format
// rendering. Ticket bundles carry the code patch both as text (for the
// embedding index and for display) and as the pair of full sources (for the
// AST-level guard extraction in the inference engine); this package produces
// the textual form and change statistics.
package diffutil

import (
	"fmt"
	"strings"
)

// EditKind classifies one line of a diff script.
type EditKind int

// Edit kinds.
const (
	Keep EditKind = iota
	Delete
	Insert
)

// Edit is one line-level edit. ALine/BLine are 1-based line numbers in the
// respective sides; a Delete has BLine 0 and an Insert has ALine 0.
type Edit struct {
	Kind  EditKind
	Text  string
	ALine int
	BLine int
}

// SplitLines splits s into lines without trailing newlines. An empty string
// yields no lines.
func SplitLines(s string) []string {
	if s == "" {
		return nil
	}
	s = strings.TrimSuffix(s, "\n")
	return strings.Split(s, "\n")
}

// Diff computes a minimal line-based edit script turning a into b using the
// Myers O(ND) algorithm.
func Diff(a, b string) []Edit {
	al, bl := SplitLines(a), SplitLines(b)
	return diffLines(al, bl)
}

func diffLines(a, b []string) []Edit {
	n, m := len(a), len(b)
	maxD := n + m
	if maxD == 0 {
		return nil
	}
	// v[k] = furthest x on diagonal k; offset by maxD.
	v := make([]int, 2*maxD+1)
	var trace [][]int
	var endD int
found:
	for d := 0; d <= maxD; d++ {
		vc := make([]int, len(v))
		copy(vc, v)
		trace = append(trace, vc)
		for k := -d; k <= d; k += 2 {
			var x int
			if k == -d || (k != d && v[maxD+k-1] < v[maxD+k+1]) {
				x = v[maxD+k+1]
			} else {
				x = v[maxD+k-1] + 1
			}
			y := x - k
			for x < n && y < m && a[x] == b[y] {
				x++
				y++
			}
			v[maxD+k] = x
			if x >= n && y >= m {
				endD = d
				break found
			}
		}
	}
	// Backtrack.
	var rev []Edit
	x, y := n, m
	for d := endD; d > 0; d-- {
		// trace[d] snapshots v at the start of iteration d, i.e. the state
		// after iteration d-1 completed.
		vPrev := trace[d]
		k := x - y
		var prevK int
		if k == -d || (k != d && vPrev[maxD+k-1] < vPrev[maxD+k+1]) {
			prevK = k + 1
		} else {
			prevK = k - 1
		}
		prevX := vPrev[maxD+prevK]
		prevY := prevX - prevK
		for x > prevX && y > prevY {
			rev = append(rev, Edit{Kind: Keep, Text: a[x-1], ALine: x, BLine: y})
			x--
			y--
		}
		if x == prevX {
			rev = append(rev, Edit{Kind: Insert, Text: b[y-1], BLine: y})
			y--
		} else {
			rev = append(rev, Edit{Kind: Delete, Text: a[x-1], ALine: x})
			x--
		}
	}
	for x > 0 && y > 0 {
		rev = append(rev, Edit{Kind: Keep, Text: a[x-1], ALine: x, BLine: y})
		x--
		y--
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Stats summarizes a diff.
type Stats struct {
	Added   int
	Removed int
	Kept    int
}

// DiffStats returns line counts for the edit script.
func DiffStats(edits []Edit) Stats {
	var s Stats
	for _, e := range edits {
		switch e.Kind {
		case Insert:
			s.Added++
		case Delete:
			s.Removed++
		default:
			s.Kept++
		}
	}
	return s
}

// Changed reports whether the edit script contains any insert or delete.
func Changed(edits []Edit) bool {
	for _, e := range edits {
		if e.Kind != Keep {
			return true
		}
	}
	return false
}

// ReconstructA rebuilds the left side of a diff from its edit script.
func ReconstructA(edits []Edit) string {
	var lines []string
	for _, e := range edits {
		if e.Kind != Insert {
			lines = append(lines, e.Text)
		}
	}
	return joinLines(lines)
}

// ReconstructB rebuilds the right side of a diff from its edit script.
func ReconstructB(edits []Edit) string {
	var lines []string
	for _, e := range edits {
		if e.Kind != Delete {
			lines = append(lines, e.Text)
		}
	}
	return joinLines(lines)
}

func joinLines(lines []string) string {
	if len(lines) == 0 {
		return ""
	}
	return strings.Join(lines, "\n") + "\n"
}

// Unified renders the edit script in unified diff format with the given
// number of context lines.
func Unified(name string, edits []Edit, context int) string {
	if !Changed(edits) {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- a/%s\n+++ b/%s\n", name, name)
	hunks := hunkRanges(edits, context)
	for _, h := range hunks {
		aStart, aLen, bStart, bLen := hunkHeader(edits[h.lo:h.hi])
		fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n", aStart, aLen, bStart, bLen)
		for _, e := range edits[h.lo:h.hi] {
			switch e.Kind {
			case Keep:
				sb.WriteString(" ")
			case Delete:
				sb.WriteString("-")
			case Insert:
				sb.WriteString("+")
			}
			sb.WriteString(e.Text)
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

type hunk struct{ lo, hi int }

// hunkRanges groups non-keep edits with surrounding context, merging hunks
// whose context overlaps.
func hunkRanges(edits []Edit, context int) []hunk {
	var out []hunk
	i := 0
	for i < len(edits) {
		if edits[i].Kind == Keep {
			i++
			continue
		}
		lo := i - context
		if lo < 0 {
			lo = 0
		}
		hi := i
		last := i // last non-keep seen
		for hi < len(edits) {
			if edits[hi].Kind != Keep {
				last = hi
				hi++
				continue
			}
			if hi-last > 2*context {
				break
			}
			hi++
		}
		end := last + context + 1
		if end > len(edits) {
			end = len(edits)
		}
		if end < hi {
			hi = end
		}
		out = append(out, hunk{lo: lo, hi: hi})
		i = hi
	}
	return out
}

func hunkHeader(es []Edit) (aStart, aLen, bStart, bLen int) {
	for _, e := range es {
		if e.Kind != Insert {
			if aStart == 0 {
				aStart = e.ALine
			}
			aLen++
		}
		if e.Kind != Delete {
			if bStart == 0 {
				bStart = e.BLine
			}
			bLen++
		}
	}
	if aStart == 0 {
		aStart = 1
	}
	if bStart == 0 {
		bStart = 1
	}
	return aStart, aLen, bStart, bLen
}
