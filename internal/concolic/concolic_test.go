package concolic

import (
	"strings"
	"testing"

	"lisa/internal/contract"
	"lisa/internal/interp"
	"lisa/internal/minij"
	"lisa/internal/smt"
)

func compile(t *testing.T, src string) *minij.Program {
	t.Helper()
	prog, err := minij.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := minij.Check(prog); err != nil {
		t.Fatalf("Check: %v", err)
	}
	return prog
}

// zkRegressedSrc models the Figure 3 regression: the patched processCreate
// guards against closing sessions, while the newer touch-path reaches the
// same ephemeral creation with only a null check.
const zkRegressedSrc = `
class Session {
	bool closing;
	int ttl;
}

class DataTree {
	map nodes;

	void createEphemeral(string path, Session owner) {
		nodes.put(path, owner);
	}
}

class PrepProcessor {
	DataTree tree;

	void processCreate(string path, Session s) {
		if (s == null || s.closing) {
			throw "KeeperException";
		}
		tree.createEphemeral(path, s);
	}
}

class SessionTracker {
	DataTree tree;

	void touchAndRegister(string path, Session s) {
		if (s == null) {
			return;
		}
		tree.createEphemeral(path, s);
	}
}
`

func ephemeralSemantic() *contract.Semantic {
	return &contract.Semantic{
		ID:   "zk-ephemeral-closing",
		Kind: contract.StateKind,
		Target: contract.TargetPattern{
			Callee: "DataTree.createEphemeral",
			Bind:   map[string]int{"session": 1},
		},
		Pre: smt.MustParsePredicate(`session != null && session.closing == false`),
	}
}

func TestStaticPathsFindRegression(t *testing.T) {
	prog := compile(t, zkRegressedSrc)
	sem := ephemeralSemantic()
	sites := contract.Match(sem, prog)
	if len(sites) != 2 {
		t.Fatalf("sites = %d, want 2", len(sites))
	}
	verdicts := map[string]Verdict{}
	for _, site := range sites {
		paths, truncated := StaticPaths(prog, site, Options{})
		if truncated {
			t.Errorf("site %s truncated", site)
		}
		if len(paths) != 1 {
			t.Fatalf("site %s: paths = %d, want 1", site, len(paths))
		}
		verdicts[site.Method.FullName()] = CheckStaticPath(paths[0])
	}
	if verdicts["PrepProcessor.processCreate"] != VerdictVerified {
		t.Errorf("patched path = %v, want VERIFIED", verdicts["PrepProcessor.processCreate"])
	}
	if verdicts["SessionTracker.touchAndRegister"] != VerdictViolation {
		t.Errorf("regressed path = %v, want VIOLATION", verdicts["SessionTracker.touchAndRegister"])
	}
}

func TestStaticPathConditions(t *testing.T) {
	prog := compile(t, zkRegressedSrc)
	sem := ephemeralSemantic()
	sites := contract.Match(sem, prog)
	// sites sorted by method name: PrepProcessor first.
	prep := sites[0]
	if prep.Method.FullName() != "PrepProcessor.processCreate" {
		t.Fatalf("unexpected site order: %v", prep)
	}
	paths, _ := StaticPaths(prog, prep, Options{})
	cond := paths[0].Cond.String()
	// Reaching the create requires the guard to be false.
	if !strings.Contains(cond, "s != null") || !strings.Contains(cond, "!(s.closing)") {
		t.Errorf("path condition = %q", cond)
	}
}

func TestStaticPathsElseIfLadder(t *testing.T) {
	src := `
class Res {
	bool open;
	int mode;
}

class User {
	void use(Res r) {
		if (r == null) {
			return;
		} else if (r.mode == 1) {
			touch(r);
		} else {
			if (r.open) {
				touch(r);
			}
		}
	}

	void touch(Res r) {
		log(r.mode);
	}
}
`
	prog := compile(t, src)
	sem := &contract.Semantic{
		ID:   "res-open",
		Kind: contract.StateKind,
		Target: contract.TargetPattern{
			Callee: "User.touch",
			Bind:   map[string]int{"r": 0},
		},
		Pre: smt.MustParsePredicate(`r != null && r.open`),
	}
	sites := contract.Match(sem, prog)
	if len(sites) != 2 {
		t.Fatalf("sites = %d, want 2", len(sites))
	}
	var verdicts []Verdict
	for _, site := range sites {
		paths, _ := StaticPaths(prog, site, Options{})
		if len(paths) != 1 {
			t.Fatalf("paths = %d for %s", len(paths), site)
		}
		verdicts = append(verdicts, CheckStaticPath(paths[0]))
	}
	// mode==1 branch does not check r.open: violation. Third branch checks
	// it: verified.
	hasViolation, hasVerified := false, false
	for _, v := range verdicts {
		if v == VerdictViolation {
			hasViolation = true
		}
		if v == VerdictVerified {
			hasVerified = true
		}
	}
	if !hasViolation || !hasVerified {
		t.Errorf("verdicts = %v, want one violation and one verified", verdicts)
	}
}

func TestStaticPathsConstantNormalization(t *testing.T) {
	// §3.2 normalization: a constant flag must fold into the condition.
	src := `
class Res {
	bool open;
}

class User {
	void use(Res r, bool force) {
		bool protect = true;
		if (r != null && (protect || force)) {
			if (r.open) {
				touch(r);
			}
		}
	}

	void touch(Res r) {
		log("t");
	}
}
`
	prog := compile(t, src)
	sem := &contract.Semantic{
		ID:   "res-open",
		Kind: contract.StateKind,
		Target: contract.TargetPattern{
			Callee: "User.touch",
			Bind:   map[string]int{"r": 0},
		},
		Pre: smt.MustParsePredicate(`r != null && r.open`),
	}
	sites := contract.Match(sem, prog)
	paths, _ := StaticPaths(prog, sites[0], Options{})
	if len(paths) != 1 {
		t.Fatalf("paths = %d, want 1 (constant fold should collapse forks)", len(paths))
	}
	if got := CheckStaticPath(paths[0]); got != VerdictVerified {
		t.Errorf("verdict = %v, want VERIFIED; cond = %s", got, paths[0].Cond)
	}
}

func TestStaticPathsThroughLoop(t *testing.T) {
	src := `
class Res {
	bool open;
}

class User {
	void drain(list rs) {
		for (x in rs) {
			log(x);
		}
		Res r = null;
		while (r == null) {
			r = acquire();
		}
		touch(r);
	}

	Res acquire() {
		return new Res();
	}

	void touch(Res r) {
		log("t");
	}
}
`
	prog := compile(t, src)
	sem := &contract.Semantic{
		ID:   "res-nonnull",
		Kind: contract.StateKind,
		Target: contract.TargetPattern{
			Callee: "User.touch",
			Bind:   map[string]int{"r": 0},
		},
		Pre: smt.MustParsePredicate(`r != null`),
	}
	sites := contract.Match(sem, prog)
	paths, _ := StaticPaths(prog, sites[0], Options{})
	if len(paths) == 0 {
		t.Fatal("no paths through loops")
	}
	// At least one path exists; the loop-skip path (r stays the constant
	// null) violates, the one-iteration path leaves r opaque.
	var verdicts []Verdict
	for _, p := range paths {
		verdicts = append(verdicts, CheckStaticPath(p))
	}
	hasViolation := false
	for _, v := range verdicts {
		if v == VerdictViolation {
			hasViolation = true
		}
	}
	if !hasViolation {
		t.Errorf("verdicts = %v: the skip-loop path (r == null constant) must violate", verdicts)
	}
}

func TestStaticPathsTryCatch(t *testing.T) {
	src := `
class Res {
	bool open;
}

class User {
	void use(Res r) {
		try {
			if (r == null) {
				throw "NPE";
			}
			touch(r);
		} catch (e) {
			log(e);
		}
	}

	void touch(Res r) {
		log("t");
	}
}
`
	prog := compile(t, src)
	sem := &contract.Semantic{
		ID:   "res-nonnull",
		Kind: contract.StateKind,
		Target: contract.TargetPattern{
			Callee: "User.touch",
			Bind:   map[string]int{"r": 0},
		},
		Pre: smt.MustParsePredicate(`r != null`),
	}
	sites := contract.Match(sem, prog)
	paths, _ := StaticPaths(prog, sites[0], Options{})
	if len(paths) != 1 {
		t.Fatalf("paths = %d, want 1 (throw path lands in catch, never reaching touch)", len(paths))
	}
	if got := CheckStaticPath(paths[0]); got != VerdictVerified {
		t.Errorf("verdict = %v, cond = %s", got, paths[0].Cond)
	}
}

func TestPruningAblation(t *testing.T) {
	src := `
class Res {
	bool open;
}

class User {
	void use(Res r, int unrelatedA, bool unrelatedB) {
		if (unrelatedA > 0) {
			log("a");
		}
		if (unrelatedB) {
			log("b");
		}
		if (r.open) {
			touch(r);
		}
	}

	void touch(Res r) {
		log("t");
	}
}
`
	prog := compile(t, src)
	sem := &contract.Semantic{
		ID:   "res-open",
		Kind: contract.StateKind,
		Target: contract.TargetPattern{
			Callee: "User.touch",
			Bind:   map[string]int{"r": 0},
		},
		Pre: smt.MustParsePredicate(`r.open`),
	}
	sites := contract.Match(sem, prog)
	pruned, _ := StaticPaths(prog, sites[0], Options{})
	unpruned, _ := StaticPaths(prog, sites[0], Options{NoPrune: true})
	if len(pruned) != 1 {
		t.Errorf("pruned paths = %d, want 1 (irrelevant branches collapse)", len(pruned))
	}
	if len(unpruned) != 4 {
		t.Errorf("unpruned paths = %d, want 4 (2x2 irrelevant branches)", len(unpruned))
	}
}

func TestDynamicRunnerVerdicts(t *testing.T) {
	prog := compile(t, zkRegressedSrc+`
class Test {
	static void createOnLiveSession() {
		PrepProcessor p = new PrepProcessor();
		p.tree = new DataTree();
		p.tree.nodes = newMap();
		Session s = new Session();
		s.closing = false;
		s.ttl = 10;
		p.processCreate("/a", s);
	}

	static void touchRegistersOnClosingSession() {
		SessionTracker tr = new SessionTracker();
		tr.tree = new DataTree();
		tr.tree.nodes = newMap();
		Session s = new Session();
		s.closing = true;
		tr.touchAndRegister("/b", s);
	}
}
`)
	sem := ephemeralSemantic()
	sites := contract.Match(sem, prog)
	r := NewRunner(prog, sites, interp.Options{})
	if err := r.RunStatic("t1", "Test", "createOnLiveSession"); err != nil {
		t.Fatal(err)
	}
	if err := r.RunStatic("t2", "Test", "touchRegistersOnClosingSession"); err != nil {
		t.Fatal(err)
	}
	if len(r.Hits) != 2 {
		t.Fatalf("hits = %d, want 2", len(r.Hits))
	}
	byTest := map[string]*SiteHit{}
	for _, h := range r.Hits {
		byTest[h.TestName] = h
	}
	if v := byTest["t1"].Verdict(); v != VerdictVerified {
		t.Errorf("t1 verdict = %v (cond=%s), want VERIFIED", v, byTest["t1"].Cond)
	}
	if v := byTest["t2"].Verdict(); v != VerdictViolation {
		t.Errorf("t2 verdict = %v (cond=%s), want VIOLATION", v, byTest["t2"].Cond)
	}
	chain := byTest["t2"].CallChain
	want := []string{"Test.touchRegistersOnClosingSession", "SessionTracker.touchAndRegister"}
	if len(chain) != 2 || chain[0] != want[0] || chain[1] != want[1] {
		t.Errorf("call chain = %v, want %v", chain, want)
	}
}

func TestDynamicCoverage(t *testing.T) {
	prog := compile(t, zkRegressedSrc+`
class Test {
	static void one() {
		PrepProcessor p = new PrepProcessor();
		p.tree = new DataTree();
		p.tree.nodes = newMap();
		Session s = new Session();
		p.processCreate("/a", s);
	}
}
`)
	r := NewRunner(prog, nil, interp.Options{})
	if err := r.RunStatic("t", "Test", "one"); err != nil {
		t.Fatal(err)
	}
	if r.CoverageRatio() <= 0 || r.CoverageRatio() >= 1 {
		t.Errorf("coverage = %v, want strictly between 0 and 1", r.CoverageRatio())
	}
	if len(r.BranchesCovered) == 0 {
		t.Error("no branches recorded")
	}
}

func TestCheckerFor(t *testing.T) {
	sem := ephemeralSemantic()
	checker, ok := CheckerFor(sem, map[string]string{"session": "sess"})
	if !ok {
		t.Fatal("CheckerFor failed")
	}
	if checker.String() != "sess != null && !(sess.closing)" {
		t.Errorf("checker = %q", checker)
	}
	if _, ok := CheckerFor(sem, map[string]string{}); ok {
		t.Error("missing binding should fail")
	}
}

func TestTranslateFragment(t *testing.T) {
	src := `
class C {
	void m(Session s, int n, list xs) {
		if (s != null && s.isClosing() == false) {
			log("a");
		}
		if (n * 2 > 4) {
			log("b");
		}
		if (xs.size() > 0) {
			log("c");
		}
	}
}

class Session {
	bool closing;

	bool isClosing() {
		return closing;
	}
}
`
	prog := compile(t, src)
	m := prog.Method("C", "m")
	env := newSFrame(prog)
	var results []string
	minij.WalkStmts(m.Body, func(st minij.Stmt) {
		ifs, ok := st.(*minij.If)
		if !ok {
			return
		}
		if f, ok := Translate(ifs.Cond, env); ok {
			results = append(results, f.String())
		} else {
			results = append(results, "<skip>")
		}
	})
	// Getter calls normalize to their bodies' field vocabulary
	// (s.isClosing() inlines to s.closing); nullary calls on containers
	// canonicalize to paths, so xs.size() > 0 is a translatable state
	// predicate; arithmetic on an unknown is not.
	want := []string{"s != null && !(s.closing)", "<skip>", "xs.size > 0"}
	if len(results) != 3 {
		t.Fatalf("results = %v", results)
	}
	for i := range want {
		if results[i] != want[i] {
			t.Errorf("guard %d = %q, want %q", i, results[i], want[i])
		}
	}
}
