package server

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"lisa/internal/ci"
	"lisa/internal/core"
	"lisa/internal/corpus"
	"lisa/internal/ticket"
)

// newTestServer returns a daemon over the full corpus plus a client bound
// to an httptest transport.
func newTestServer(t testing.TB, cfg Config) (*Server, *Client, func()) {
	t.Helper()
	if cfg.Corpus == nil {
		cfg.Corpus = corpus.Load()
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	cl := NewClient(ts.URL)
	return srv, cl, ts.Close
}

// localTwin builds the sequential in-process twin of a server case
// runtime: a fresh engine with the case's tickets processed, exactly as
// the CLI does on every cold invocation.
func localTwin(t testing.TB, cs *ticket.Case) *core.Engine {
	t.Helper()
	e := core.New()
	for _, tk := range cs.Tickets {
		if _, err := e.ProcessTicket(tk); err != nil {
			t.Fatalf("process %s: %v", tk.ID, err)
		}
	}
	return e
}

func corpusCase(t testing.TB, id string) *ticket.Case {
	t.Helper()
	cs := corpus.Load().Get(id)
	if cs == nil {
		t.Fatalf("corpus has no case %q", id)
	}
	return cs
}

// TestServerSmoke is the wiring check verify.sh runs by name: start a real
// listener, one gate round-trip through the HTTP client, clean shutdown.
func TestServerSmoke(t *testing.T) {
	srv := New(Config{Corpus: corpus.Load()})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	cl := NewClient("http://" + ln.Addr().String())
	if err := cl.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	cs := corpusCase(t, "zk-ephemeral")
	resp, err := cl.Gate(GateRequest{Case: "zk-ephemeral", Change: cs.Head(), Summary: "smoke"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Report == "" || resp.Summary == "" {
		t.Fatalf("gate response missing report or summary: %+v", resp)
	}
	if resp.Verdict != "PASS" && resp.Verdict != "BLOCKED" {
		t.Fatalf("unexpected verdict %q", resp.Verdict)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := httpSrv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := cl.Health(); err == nil {
		t.Fatal("health should fail after shutdown")
	}
}

// TestGateByteIdentity pins the wire contract: the report, findings, and
// decision returned by the daemon are byte-identical to a local sequential
// ci.Gate over the same inputs — for a passing head change and for a
// regression that must block.
func TestGateByteIdentity(t *testing.T) {
	_, cl, done := newTestServer(t, Config{})
	defer done()
	cs := corpusCase(t, "zk-ephemeral")
	regressed := cs.Tickets[len(cs.Tickets)-1].BuggySource

	for _, tt := range []struct {
		name   string
		change string
	}{
		{"head", cs.Head()},
		{"regression", regressed},
	} {
		resp, err := cl.Gate(GateRequest{Case: cs.ID, Change: tt.change, Summary: "twin"})
		if err != nil {
			t.Fatalf("%s: %v", tt.name, err)
		}
		seq, err := ci.GateWith(localTwin(t, cs), ci.Change{
			Summary:   "twin",
			OldSource: cs.Head(),
			NewSource: tt.change,
		}, cs.Tests, ci.GateOptions{})
		if err != nil {
			t.Fatalf("%s: local twin: %v", tt.name, err)
		}
		if resp.Pass != seq.Pass {
			t.Errorf("%s: pass=%v, local %v", tt.name, resp.Pass, seq.Pass)
		}
		if got, want := resp.Report, seq.Report.Render(); got != want {
			t.Errorf("%s: remote report differs from local sequential render:\n--- remote ---\n%s\n--- local ---\n%s", tt.name, got, want)
		}
		var wantFindings []Finding
		for _, f := range seq.Findings {
			wantFindings = append(wantFindings, Finding{Severity: f.Severity, Text: f.Text})
		}
		if !reflect.DeepEqual(resp.Findings, wantFindings) {
			t.Errorf("%s: findings differ:\nremote: %v\nlocal:  %v", tt.name, resp.Findings, wantFindings)
		}
	}
}

// TestGateIncremental: an incremental remote gate (head-primed fingerprint
// cache) reaches the same decision, findings, and report as the local
// sequential gate, and reports cache reuse.
func TestGateIncremental(t *testing.T) {
	_, cl, done := newTestServer(t, Config{})
	defer done()
	cs := corpusCase(t, "zk-session-expiry")
	regressed := cs.Tickets[len(cs.Tickets)-1].BuggySource

	resp, err := cl.Gate(GateRequest{Case: cs.ID, Change: regressed, Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := ci.GateWith(localTwin(t, cs), ci.Change{
		Summary:   "proposed change",
		OldSource: cs.Head(),
		NewSource: regressed,
	}, cs.Tests, ci.GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Pass != seq.Pass {
		t.Errorf("pass=%v, local %v", resp.Pass, seq.Pass)
	}
	if got, want := resp.Report, seq.Report.Render(); got != want {
		t.Errorf("incremental remote report differs from local sequential render")
	}
	if resp.Cache.SchedCacheHits == 0 {
		t.Errorf("incremental gate after head priming should hit the fingerprint cache, got %+v", resp.Cache)
	}
}

// TestAssertByteIdentity: remote asserts (head, a ticket version, and with
// tests) render byte-identically to the sequential engine.
func TestAssertByteIdentity(t *testing.T) {
	_, cl, done := newTestServer(t, Config{})
	defer done()
	cs := corpusCase(t, "zk-ephemeral")

	for _, tt := range []struct {
		name    string
		version string
		tests   bool
	}{
		{"head", "head", false},
		{"buggy", cs.Tickets[0].ID + ":buggy", false},
		{"head+tests", "head", true},
	} {
		resp, err := cl.Assert(AssertRequest{Case: cs.ID, Version: tt.version, Tests: tt.tests})
		if err != nil {
			t.Fatalf("%s: %v", tt.name, err)
		}
		target, err := resolveTarget(cs, tt.version, "")
		if err != nil {
			t.Fatal(err)
		}
		var tests []ticket.TestCase
		if tt.tests {
			tests = cs.Tests
		}
		rep, err := localTwin(t, cs).Assert(target, tests)
		if err != nil {
			t.Fatalf("%s: local twin: %v", tt.name, err)
		}
		if got, want := resp.Report, rep.Render(); got != want {
			t.Errorf("%s: remote report differs from local sequential render:\n--- remote ---\n%s\n--- local ---\n%s", tt.name, got, want)
		}
		if resp.Counts.Violations != rep.Counts.Violations {
			t.Errorf("%s: violations=%d, local %d", tt.name, resp.Counts.Violations, rep.Counts.Violations)
		}
	}
}

// TestAssertBadVersion: version resolution errors surface as 4xx, not 500.
func TestAssertBadVersion(t *testing.T) {
	_, cl, done := newTestServer(t, Config{})
	defer done()
	if _, err := cl.Assert(AssertRequest{Case: "zk-ephemeral", Version: "nope:sideways"}); err == nil {
		t.Fatal("want error for bad version")
	}
	if _, err := cl.Assert(AssertRequest{Case: "no-such-case"}); err == nil {
		t.Fatal("want error for unknown case")
	}
}

// TestWarmRepeatServedFromCaches: the second identical gate is served
// almost entirely from the scheduler fingerprint cache, and the snapshot
// cache stops compiling — the daemon's whole reason to exist.
func TestWarmRepeatServedFromCaches(t *testing.T) {
	_, cl, done := newTestServer(t, Config{})
	defer done()
	cs := corpusCase(t, "zk-ephemeral")

	cold, err := cl.Gate(GateRequest{Case: cs.ID, Change: cs.Head()})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := cl.Gate(GateRequest{Case: cs.ID, Change: cs.Head()})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Report != warm.Report || cold.Pass != warm.Pass {
		t.Fatal("warm repeat changed the report")
	}
	if warm.Cache.SchedExecuted != 0 {
		t.Errorf("warm repeat executed %d jobs, want 0 (all fingerprint hits); delta %+v", warm.Cache.SchedExecuted, warm.Cache)
	}
	if warm.Cache.SnapshotCompiles != 0 {
		t.Errorf("warm repeat compiled %d snapshots, want 0", warm.Cache.SnapshotCompiles)
	}
	if warm.Skipped == 0 {
		t.Errorf("warm repeat skipped no contracts, want all skipped; got asserted=%d skipped=%d", warm.Asserted, warm.Skipped)
	}
}

// TestStatsPerInstance pins the per-instance delta accounting: a server
// created after another one worked sees none of that traffic in its own
// /stats (solver counters are baselined at creation; the snapshot cache is
// private), so tests can run several servers in one process and read each
// server's numbers.
func TestStatsPerInstance(t *testing.T) {
	_, clA, doneA := newTestServer(t, Config{})
	defer doneA()
	if _, err := clA.Gate(GateRequest{Case: "zk-ephemeral", Change: corpusCase(t, "zk-ephemeral").Head()}); err != nil {
		t.Fatal(err)
	}
	statsA, err := clA.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if statsA.Solver.Queries == 0 || statsA.Snapshot.Compiles == 0 {
		t.Fatalf("server A should have observed its own work: %+v", statsA)
	}
	if statsA.Requests.Gate != 1 {
		t.Errorf("server A gate count = %d, want 1", statsA.Requests.Gate)
	}

	// B is created after A's traffic: its baseline excludes all of it.
	_, clB, doneB := newTestServer(t, Config{})
	defer doneB()
	statsB, err := clB.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if statsB.Solver.Queries != 0 {
		t.Errorf("fresh server B reports %d solver queries, want 0 (baseline at creation)", statsB.Solver.Queries)
	}
	if statsB.Snapshot.Compiles != 0 || statsB.Snapshot.Entries != 0 {
		t.Errorf("fresh server B snapshot cache not empty: %+v", statsB.Snapshot)
	}
	if len(statsB.Cases) != 0 {
		t.Errorf("fresh server B has case runtimes: %+v", statsB.Cases)
	}

	// B's own work shows up in B, and A's private snapshot cache is
	// untouched by it.
	snapABefore := statsA.Snapshot
	if _, err := clB.Assert(AssertRequest{Case: "zk-session-expiry"}); err != nil {
		t.Fatal(err)
	}
	statsB, err = clB.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if statsB.Requests.Assert != 1 || statsB.Snapshot.Compiles == 0 {
		t.Errorf("server B should have observed its own assert: %+v", statsB)
	}
	statsA, err = clA.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if statsA.Snapshot.Compiles != snapABefore.Compiles {
		t.Errorf("server A snapshot compiles moved from %d to %d while only B worked",
			snapABefore.Compiles, statsA.Snapshot.Compiles)
	}
}

// TestHistoryEndpoint: gate and assert requests land in /history with
// verdicts and cache deltas, newest last, and ?n= trims from the front.
func TestHistoryEndpoint(t *testing.T) {
	_, cl, done := newTestServer(t, Config{})
	defer done()
	cs := corpusCase(t, "zk-ephemeral")
	if _, err := cl.Gate(GateRequest{Case: cs.ID, Change: cs.Head()}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Assert(AssertRequest{Case: cs.ID}); err != nil {
		t.Fatal(err)
	}
	page, err := cl.History(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Entries) != 2 || page.Total != 2 {
		t.Fatalf("history = %d entries (total %d), want 2", len(page.Entries), page.Total)
	}
	if page.Entries[0].Kind != "gate" || page.Entries[1].Kind != "assert" {
		t.Fatalf("history order wrong: %+v", page.Entries)
	}
	if page.Entries[0].Cache.SchedJobs == 0 {
		t.Errorf("gate history entry carries no cache delta: %+v", page.Entries[0])
	}
	one, err := cl.History(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Entries) != 1 || one.Entries[0].Kind != "assert" {
		t.Fatalf("history?n=1 should return the newest entry, got %+v", one.Entries)
	}
}
