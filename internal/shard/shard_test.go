package shard

import (
	"fmt"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestAssignStablePartition: every identity lands in exactly one shard of
// [0, count), the assignment is deterministic across calls, and a realistic
// ID population spreads over every shard (fnv-1a, not a degenerate hash).
func TestAssignStablePartition(t *testing.T) {
	if got := Assign("anything", 0); got != 0 {
		t.Errorf("count=0: got shard %d, want 0", got)
	}
	if got := Assign("anything", 1); got != 0 {
		t.Errorf("count=1: got shard %d, want 0", got)
	}
	for _, count := range []int{2, 4, 7} {
		seen := make([]int, count)
		for i := 0; i < 200; i++ {
			id := fmt.Sprintf("sem-%d", i)
			s := Assign(id, count)
			if s < 0 || s >= count {
				t.Fatalf("Assign(%q, %d) = %d out of range", id, count, s)
			}
			if again := Assign(id, count); again != s {
				t.Fatalf("Assign(%q, %d) unstable: %d then %d", id, count, s, again)
			}
			seen[s]++
		}
		for s, n := range seen {
			if n == 0 {
				t.Errorf("count=%d: shard %d got no IDs out of 200", count, s)
			}
		}
	}
}

// TestSpecCovers: the zero Spec covers everything; an enabled topology
// covers every ID on exactly one shard.
func TestSpecCovers(t *testing.T) {
	var zero Spec
	if zero.Enabled() || !zero.Covers("any-id") {
		t.Errorf("zero Spec: enabled=%v covers=%v", zero.Enabled(), zero.Covers("any-id"))
	}
	if (Spec{Index: 0, Count: 1}).Enabled() {
		t.Error("count=1 Spec reports enabled")
	}
	const count = 3
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("rule-%d", i)
		covered := 0
		for idx := 0; idx < count; idx++ {
			if (Spec{Index: idx, Count: count}).Covers(id) {
				covered++
			}
		}
		if covered != 1 {
			t.Errorf("%q covered by %d of %d shards, want exactly 1", id, covered, count)
		}
	}
}

// TestRunCollectsResultsInOrder: concurrent children come back indexed by
// shard with their output and wall clock, regardless of completion order.
func TestRunCollectsResultsInOrder(t *testing.T) {
	results := Run(3, func(i int) *exec.Cmd {
		return exec.Command("sh", "-c", fmt.Sprintf("echo child-%d", i))
	})
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for i, r := range results {
		if r.Index != i {
			t.Errorf("result %d has Index %d", i, r.Index)
		}
		if r.Err != nil {
			t.Errorf("shard %d: %v", i, r.Err)
		}
		if want := fmt.Sprintf("child-%d", i); !strings.Contains(string(r.Output), want) {
			t.Errorf("shard %d output %q missing %q", i, r.Output, want)
		}
		if r.Wall <= 0 {
			t.Errorf("shard %d wall clock %v", i, r.Wall)
		}
	}
}

// TestRunReportsChildFailure: a failing child surfaces its exit error on
// its own slot without disturbing the others.
func TestRunReportsChildFailure(t *testing.T) {
	results := Run(2, func(i int) *exec.Cmd {
		if i == 1 {
			return exec.Command("sh", "-c", "echo boom; exit 3")
		}
		return exec.Command("sh", "-c", "echo ok")
	})
	if results[0].Err != nil {
		t.Errorf("healthy shard errored: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Error("failing shard reported no error")
	}
	if !strings.Contains(string(results[1].Output), "boom") {
		t.Errorf("failing shard output %q kept from parent", results[1].Output)
	}
}

// TestLedger: the wall-clock table names every shard and the merge stage.
func TestLedger(t *testing.T) {
	out := Ledger([]Result{
		{Index: 0, Wall: 5 * time.Millisecond},
		{Index: 1, Wall: 7 * time.Millisecond},
	}, 2*time.Millisecond)
	for _, want := range []string{"shard 0", "shard 1", "merge"} {
		if !strings.Contains(out, want) {
			t.Errorf("ledger missing %q:\n%s", want, out)
		}
	}
}
