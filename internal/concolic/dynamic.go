package concolic

import (
	"fmt"
	"strings"

	"lisa/internal/contract"
	"lisa/internal/interp"
	"lisa/internal/minij"
	"lisa/internal/smt"
)

// SiteHit records one dynamic execution of a target statement: the
// relevance-filtered conjunction of branch conditions recorded in the
// site's frame up to that point, plus where the execution came from.
type SiteHit struct {
	Site *contract.Site
	// Cond is the frame-local path condition over operand paths.
	Cond smt.Formula
	// Bindings maps slot names to operand paths at the hit.
	Bindings map[string]string
	// CallChain lists the qualified method names on the stack, outermost
	// first, ending with the site's enclosing method.
	CallChain []string
	// TestName labels the concrete input (set by the runner's caller).
	TestName string
	// ConcreteChecker is the checker formula evaluated against the actual
	// runtime state at the hit — the runtime-monitor view. TriFalse means
	// this concrete execution really did reach the target in a
	// rule-violating state.
	ConcreteChecker Tri
	// PostHolds is the contract's postcondition Q evaluated against the
	// runtime state immediately after the target statement executed
	// (TriUnknown when the semantic has no Q or the state was not
	// resolvable).
	PostHolds Tri
}

// Verdict applies the complement check to this hit.
func (h *SiteHit) Verdict() Verdict {
	return h.VerdictLim(smt.Limits{})
}

// VerdictLim is Verdict under explicit solver limits; a degraded query
// yields VerdictInconclusive.
func (h *SiteHit) VerdictLim(lim smt.Limits) Verdict {
	checker, ok := CheckerFor(h.Site.Semantic, h.Bindings)
	if !ok {
		return VerdictUnknown
	}
	v, _ := CheckPathLim(h.Cond, checker, lim)
	return v
}

// String renders the hit.
func (h *SiteHit) String() string {
	return fmt.Sprintf("%s [%s] cond=%s", h.Site, strings.Join(h.CallChain, " -> "), h.Cond)
}

// Runner replays concrete inputs (tests) through the interpreter while
// recording, per stack frame, the translated form of every branch condition
// taken — the dynamic half of the paper's concolic assertion step. The
// injected "code snippet right after all selected branches" of §3.2
// corresponds to the OnBranch hook; the per-target check corresponds to the
// OnStmt hook firing on a registered site statement.
type Runner struct {
	Prog *minij.Program
	In   *interp.Interp

	// Hits collects every dynamic execution of a registered site.
	Hits []*SiteHit
	// StmtsCovered records executed statement IDs (coverage metrics).
	StmtsCovered map[int]bool
	// BranchesCovered records (stmt ID, direction) pairs.
	BranchesCovered map[int]map[bool]bool

	sitesByStmt map[int][]*contract.Site
	shadow      []*dframe
	methodStack []*minij.Method
	testName    string
	noPrune     bool
}

// dframe is the shadow symbolic state of one runtime frame.
type dframe struct {
	env   *sframe
	order []int // guard stmt IDs in first-recorded order
	conds map[int]recordedCond
	// inherited carries caller-frame conditions over values passed as call
	// arguments, renamed into this frame's parameter vocabulary —
	// the dynamic counterpart of chain analysis.
	inherited []recordedCond
	// pendingPost holds hits whose postcondition Q awaits evaluation at
	// the next observation point in this frame (the state "after s").
	pendingPost []*pendingPost
}

type pendingPost struct {
	hit *SiteHit
	q   smt.Formula
	// roots captures the runtime values of the postcondition's root
	// variables at the target statement; heap references stay live, so a
	// later field read observes the post-statement state even after the
	// frame's scopes unwind.
	roots map[string]interp.Value
}

// flushPost evaluates any pending postconditions against the frame's
// current state (the first observation point after the target statement).
func (d *dframe) flushPost() {
	for _, p := range d.pendingPost {
		roots := p.roots
		p.hit.PostHolds = EvalConcreteWith(p.q, func(root string) (interp.Value, bool) {
			v, ok := roots[root]
			return v, ok
		})
	}
	d.pendingPost = nil
}

// allConds returns inherited conditions followed by this frame's own, in
// recording order.
func (d *dframe) allConds() []recordedCond {
	out := make([]recordedCond, 0, len(d.inherited)+len(d.order))
	out = append(out, d.inherited...)
	for _, id := range d.order {
		out = append(out, d.conds[id])
	}
	return out
}

// NewRunner builds a runner over prog with the given registered sites,
// creating a fresh interpreter with the supplied options.
func NewRunner(prog *minij.Program, sites []*contract.Site, opts interp.Options) *Runner {
	r := &Runner{
		Prog:            prog,
		In:              interp.NewWithOptions(prog, opts),
		StmtsCovered:    map[int]bool{},
		BranchesCovered: map[int]map[bool]bool{},
		sitesByStmt:     map[int][]*contract.Site{},
	}
	for _, s := range sites {
		r.sitesByStmt[s.Stmt.ID()] = append(r.sitesByStmt[s.Stmt.ID()], s)
	}
	r.install()
	return r
}

// SetNoPrune disables relevance filtering of recorded conditions (the
// pruning ablation).
func (r *Runner) SetNoPrune(v bool) { r.noPrune = v }

func (r *Runner) install() {
	r.In.Hooks.OnEnter = func(m *minij.Method, fr *interp.Frame, call *minij.Call) {
		child := &dframe{env: newSFrame(r.Prog), conds: map[int]recordedCond{}}
		if call != nil {
			if caller := r.top(); caller != nil {
				renames := map[string]string{}
				for i, p := range m.Params {
					if i >= len(call.Args) {
						break
					}
					if t, ok := translateTerm(call.Args[i], caller.env); ok {
						if t.isPath {
							renames[t.path] = p.Name
						} else if t.isConst {
							child.env.consts[p.Name] = t.c
							child.env.assigned[p.Name] = true
						}
					}
				}
				for _, rc := range caller.allConds() {
					if rf, ok := renameFormula(rc.f, renames); ok {
						child.inherited = append(child.inherited, recordedCond{
							f: rf,
							guard: GuardStep{
								Guard: strings.TrimSuffix(rc.guard.Guard, " (inherited)") + " (inherited)",
								Taken: rc.guard.Taken,
								Pos:   rc.guard.Pos,
							},
						})
					}
				}
				for path, c := range caller.env.consts {
					if rp, ok := renamePath(path, renames); ok {
						child.env.consts[rp] = c
					}
				}
			}
		}
		r.methodStack = append(r.methodStack, m)
		r.shadow = append(r.shadow, child)
	}
	r.In.Hooks.OnExit = func(m *minij.Method) {
		if top := r.top(); top != nil {
			top.flushPost()
		}
		r.methodStack = r.methodStack[:len(r.methodStack)-1]
		r.shadow = r.shadow[:len(r.shadow)-1]
	}
	r.In.Hooks.OnBranch = func(s minij.Stmt, cond minij.Expr, taken bool, fr *interp.Frame) {
		id := s.ID()
		if r.BranchesCovered[id] == nil {
			r.BranchesCovered[id] = map[bool]bool{}
		}
		r.BranchesCovered[id][taken] = true
		top := r.top()
		if top == nil {
			return
		}
		f, ok := Translate(cond, top.env)
		if !ok {
			return
		}
		if !taken {
			f = smt.NNF(smt.NewNot(f))
		}
		if _, isConst := f.(*smt.Const); isConst {
			return
		}
		if _, seen := top.conds[id]; !seen {
			top.order = append(top.order, id)
		}
		// Keep the latest recording: inside loops the most recent decision
		// reflects the state that reaches the target.
		top.conds[id] = recordedCond{
			f:     f,
			guard: GuardStep{Guard: minij.CanonExpr(cond), Taken: taken, Pos: cond.Pos()},
		}
	}
	r.In.Hooks.OnStmt = func(s minij.Stmt, fr *interp.Frame) {
		r.StmtsCovered[s.ID()] = true
		top := r.top()
		if top == nil {
			return
		}
		// A new statement in this frame means the previous (site)
		// statement finished: evaluate pending postconditions.
		top.flushPost()
		if sites := r.sitesByStmt[s.ID()]; len(sites) > 0 {
			for _, site := range sites {
				r.recordHit(site, top, fr)
			}
		}
		// Apply assignment effects to the shadow environment.
		switch n := s.(type) {
		case *minij.VarDecl:
			if n.Init != nil {
				top.env.store(n.Name, n.Init)
			} else {
				top.env.store(n.Name, zeroLiteral(n.Type))
			}
		case *minij.Assign:
			switch t := n.Target.(type) {
			case *minij.Ident:
				top.env.store(t.Name, n.Value)
			case *minij.FieldAccess:
				if term, ok := translateTerm(t, top.env); ok && term.isPath {
					top.env.storePath(term.path, n.Value)
				}
			}
		}
	}
}

func (r *Runner) top() *dframe {
	if len(r.shadow) == 0 {
		return nil
	}
	return r.shadow[len(r.shadow)-1]
}

func (r *Runner) recordHit(site *contract.Site, top *dframe, fr *interp.Frame) {
	bindings := map[string]string{}
	relevant := map[string]bool{}
	for slot := range site.Semantic.Target.Bind {
		operand, ok := site.Bindings[slot]
		if !ok {
			continue
		}
		if t, tok := translateTerm(operand, top.env); tok && t.isPath {
			bindings[slot] = t.path
			relevant[smt.Root(t.path)] = true
		}
	}
	var conds []smt.Formula
	for _, rc := range top.allConds() {
		keep := r.noPrune
		if !keep {
			for root := range smt.Roots(rc.f) {
				if relevant[root] {
					keep = true
					break
				}
			}
		}
		if keep {
			conds = append(conds, rc.f)
		}
	}
	if r.noPrune {
		all := map[string]bool{}
		for path := range top.env.consts {
			all[smt.Root(path)] = true
		}
		conds = append(conds, constFacts(top.env, all)...)
	} else {
		conds = append(conds, constFacts(top.env, relevant)...)
	}
	chain := make([]string, len(r.methodStack))
	for i, m := range r.methodStack {
		chain[i] = m.FullName()
	}
	hit := &SiteHit{
		Site:      site,
		Cond:      smt.NewAnd(conds...),
		Bindings:  bindings,
		CallChain: chain,
		TestName:  r.testName,
	}
	if checker, ok := CheckerFor(site.Semantic, bindings); ok {
		hit.ConcreteChecker = EvalConcrete(checker, fr)
	}
	if site.Semantic.Post != nil {
		q := site.Semantic.Post
		for slot := range site.Semantic.Target.Bind {
			if path, ok := bindings[slot]; ok {
				q = smt.RenameRoot(q, slot, path)
			}
		}
		resolve := FrameResolver(fr)
		roots := map[string]interp.Value{}
		for r := range smt.Roots(q) {
			if v, ok := resolve(r); ok {
				roots[r] = v
			}
		}
		top.pendingPost = append(top.pendingPost, &pendingPost{hit: hit, q: q, roots: roots})
	}
	r.Hits = append(r.Hits, hit)
}

// RunStatic invokes a static entry method as one concrete input, labeling
// resulting hits with testName. Uncaught MiniJ exceptions are returned but
// do not invalidate hits recorded before the unwind.
func (r *Runner) RunStatic(testName, class, method string, args ...interp.Value) error {
	r.testName = testName
	_, err := r.In.CallStatic(class, method, args...)
	return err
}

// CoverageRatio returns the fraction of program statements executed so far.
func (r *Runner) CoverageRatio() float64 {
	n := r.Prog.NumStmts()
	if n == 0 {
		return 0
	}
	return float64(len(r.StmtsCovered)) / float64(n)
}
