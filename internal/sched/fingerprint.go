package sched

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"

	"lisa/internal/callgraph"
	"lisa/internal/contract"
	"lisa/internal/core"
	"lisa/internal/minij"
	"lisa/internal/ticket"
)

// Fingerprints are content hashes over everything a job's result depends
// on. Two runs that hash a job to the same fingerprint are guaranteed the
// same verdicts, coverage, and path conditions, so the cached result can be
// served instead of re-executing. All inputs are canonical (AST pretty-
// printing, formula rendering) — never source positions or whitespace — so
// a reformatted file does not invalidate anything.

// hashParts digests a sequence of strings with length framing (so part
// boundaries cannot alias) into a short hex fingerprint.
func hashParts(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:", len(p))
		io.WriteString(h, p)
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// semFingerprint identifies a semantic by its checker content: the <P> s
// <Q> contract (formula text, target pattern, slot bindings) or the
// structural rule and its scope.
func semFingerprint(sem *contract.Semantic) string {
	parts := []string{"sem", sem.ID, sem.Kind.String()}
	if sem.Kind == contract.StructuralKind {
		parts = append(parts, sem.Structural.Name(), scopeCanon(sem.Structural))
	} else {
		pre, post := "", ""
		if sem.Pre != nil {
			pre = sem.Pre.String()
		}
		if sem.Post != nil {
			post = sem.Post.String()
		}
		binds := make([]string, 0, len(sem.Target.Bind))
		for slot, idx := range sem.Target.Bind {
			binds = append(binds, fmt.Sprintf("%s=%d", slot, idx))
		}
		sort.Strings(binds)
		parts = append(parts, pre, post, sem.Target.Callee, sem.Target.Within, strings.Join(binds, ","))
	}
	return hashParts(parts...)
}

// scopeCanon renders a structural rule's method restriction.
func scopeCanon(rule contract.StructuralRule) string {
	var scope map[string]bool
	switch r := rule.(type) {
	case contract.NoBlockingInSync:
		scope = r.Only
	case contract.NoNestedSync:
		scope = r.Only
	}
	names := make([]string, 0, len(scope))
	for n := range scope {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

// staticEngineFP captures the engine options that change static-stage
// results (the ablation switches).
func staticEngineFP(e *core.Engine) string {
	return fmt.Sprintf("max=%d noprune=%v intra=%v", e.MaxStaticPaths, e.NoPrune, e.IntraOnly)
}

// dynamicEngineFP captures the engine options that change test selection
// and replay.
func dynamicEngineFP(e *core.Engine) string {
	return fmt.Sprintf("topk=%d runall=%v", e.TestTopK, e.RunAllTests)
}

// corpusFingerprint identifies the whole test corpus. Selection ranks
// against TF-IDF weights over every document, so any test change can
// reorder any selection — the corpus hashes as one unit.
func corpusFingerprint(tests []ticket.TestCase) string {
	parts := make([]string, 0, 5*len(tests))
	for _, tc := range tests {
		parts = append(parts, tc.Name, tc.Class, tc.Method, tc.Description, tc.Source)
	}
	return hashParts(parts...)
}

// siteClosure returns the methods whose content the site's static stage can
// read, sorted by qualified name: the target method, every method on every
// entry→site chain (interprocedural condition inheritance), and everything
// reachable from those (getter normalization inlines callee bodies).
func siteClosure(g *callgraph.Graph, siteRep *core.SiteReport) []*minij.Method {
	roots := []*minij.Method{siteRep.Site.Method}
	for _, ch := range siteRep.Chains {
		roots = append(roots, callgraph.MethodsOnPath(ch, siteRep.Site.Method)...)
	}
	reach := g.Reachable(roots)
	out := make([]*minij.Method, 0, len(reach))
	for m := range reach {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}

// siteFingerprint hashes one (semantic × site) static job: the checker
// formula, the target statement and slot operands, the caller-chain slice
// of the call graph, and the canonical AST of every method the stage can
// read — via methodFP, a per-plan memo of method canon digests, so a
// method shared by many closures is digested once per run instead of
// re-hashed in full per site. occ disambiguates canonically identical
// target statements within the same method.
func siteFingerprint(e *core.Engine, semFP string, siteRep *core.SiteReport, closure []*minij.Method, occ int, methodFP func(*minij.Method) string) string {
	site := siteRep.Site
	binds := make([]string, 0, len(site.Bindings))
	for slot, expr := range site.Bindings {
		binds = append(binds, slot+"="+minij.CanonExpr(expr))
	}
	sort.Strings(binds)
	parts := []string{
		"site", semFP, staticEngineFP(e),
		fmt.Sprintf("occ=%d binderr=%v", occ, site.BindErr != nil),
		minij.CanonStmt(site.Stmt),
		strings.Join(binds, ","),
		fmt.Sprintf("truncated=%v", siteRep.TreeTruncated),
	}
	for _, ch := range siteRep.Chains {
		parts = append(parts, ch.String())
	}
	for _, m := range closure {
		parts = append(parts, methodFP(m))
	}
	return hashParts(parts...)
}

// dynamicFingerprint hashes one per-semantic replay job. Replayed tests
// execute arbitrary system code, so the whole system program participates,
// along with the semantic's site fingerprints (replay attributes hits to
// those static paths) and the test corpus.
func dynamicFingerprint(e *core.Engine, semFP, progFP, corpusFP string, siteFPs []string) string {
	parts := []string{"dyn", semFP, dynamicEngineFP(e), progFP, corpusFP}
	parts = append(parts, siteFPs...)
	return hashParts(parts...)
}

// structuralFingerprint hashes a structural job: the rule plus the whole
// system program it scans (and the corpus, for runtime confirmation).
func structuralFingerprint(semFP, progFP, corpusFP string) string {
	return hashParts("structural", semFP, progFP, corpusFP)
}
