package minij

import (
	"fmt"
	"strconv"
	"strings"
)

// LexError describes a lexical error with its source position.
type LexError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *LexError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer splits MiniJ source text into tokens. The zero value is not usable;
// construct one with NewLexer.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the entire source, returning the token stream terminated by
// a TokEOF token, or the first lexical error encountered.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return &LexError{Pos: start, Msg: "unterminated block comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token in the stream.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	start := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		var sb strings.Builder
		for lx.off < len(lx.src) && isIdentCont(lx.peek()) {
			sb.WriteByte(lx.advance())
		}
		text := sb.String()
		kind := TokIdent
		if IsKeyword(text) {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Pos: start}, nil
	case isDigit(c):
		var sb strings.Builder
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			sb.WriteByte(lx.advance())
		}
		text := sb.String()
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Token{}, &LexError{Pos: start, Msg: "integer literal out of range: " + text}
		}
		return Token{Kind: TokInt, Text: text, Int: v, Pos: start}, nil
	case c == '"':
		lx.advance()
		var sb strings.Builder
		for {
			if lx.off >= len(lx.src) {
				return Token{}, &LexError{Pos: start, Msg: "unterminated string literal"}
			}
			ch := lx.advance()
			if ch == '"' {
				break
			}
			if ch == '\n' {
				return Token{}, &LexError{Pos: start, Msg: "newline in string literal"}
			}
			if ch == '\\' {
				if lx.off >= len(lx.src) {
					return Token{}, &LexError{Pos: start, Msg: "unterminated escape sequence"}
				}
				esc := lx.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '"':
					sb.WriteByte('"')
				case '\\':
					sb.WriteByte('\\')
				default:
					return Token{}, &LexError{Pos: start, Msg: fmt.Sprintf("unknown escape \\%c", esc)}
				}
				continue
			}
			sb.WriteByte(ch)
		}
		return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
	}
	// Operators and punctuation.
	two := ""
	if lx.off+1 < len(lx.src) {
		two = lx.src[lx.off : lx.off+2]
	}
	switch two {
	case "==", "!=", "<=", ">=", "&&", "||":
		lx.advance()
		lx.advance()
		return Token{Kind: TokOp, Text: two, Pos: start}, nil
	}
	switch c {
	case '(', ')', '{', '}', '[', ']', ';', ',', '.':
		lx.advance()
		return Token{Kind: TokPunct, Text: string(c), Pos: start}, nil
	case '+', '-', '*', '/', '%', '!', '=', '<', '>':
		lx.advance()
		return Token{Kind: TokOp, Text: string(c), Pos: start}, nil
	}
	return Token{}, &LexError{Pos: start, Msg: fmt.Sprintf("unexpected character %q", c)}
}
