// Quickstart: the full LISA loop on a toy system in ~80 lines.
//
// A bug is fixed by adding a guard; LISA turns that fix into an executable
// contract; a later change that reaches the same operation without the
// guard is flagged before it can ship.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lisa/internal/ci"
	"lisa/internal/core"
	"lisa/internal/ticket"
)

// The original bug: publish does not check that the channel is open.
const buggy = `
class Channel {
	string name;
	bool open;

	bool isOpen() {
		return open;
	}
}

class Broker {
	list delivered;

	void init() {
		delivered = newList();
	}

	void deliver(Channel ch, string msg) {
		delivered.add(ch.name + ":" + msg);
	}
}

class Publisher {
	Broker broker;

	void init(Broker b) {
		broker = b;
	}

	void publish(Channel ch, string msg) {
		if (ch == null) {
			throw "NoSuchChannel";
		}
		broker.deliver(ch, msg);
	}
}
`

// The fix strengthens the guard: closed channels must not receive messages.
const fixed = `
class Channel {
	string name;
	bool open;

	bool isOpen() {
		return open;
	}
}

class Broker {
	list delivered;

	void init() {
		delivered = newList();
	}

	void deliver(Channel ch, string msg) {
		delivered.add(ch.name + ":" + msg);
	}
}

class Publisher {
	Broker broker;

	void init(Broker b) {
		broker = b;
	}

	void publish(Channel ch, string msg) {
		if (ch == null || !ch.isOpen()) {
			throw "NoSuchChannel";
		}
		broker.deliver(ch, msg);
	}
}
`

// A year later someone adds a retry path that skips the open check — the
// classic regression.
const proposedChange = fixed + `
class RetryQueue {
	Broker broker;

	void init(Broker b) {
		broker = b;
	}

	void flushRetries(Channel ch, string msg) {
		if (ch == null) {
			return;
		}
		broker.deliver(ch, msg);
	}
}
`

func main() {
	engine := core.New()

	// Step 1: the failure ticket — description, patch, post-patch source —
	// becomes an executable contract.
	rep, err := engine.ProcessTicket(&ticket.Ticket{
		ID:          "MSG-101",
		Title:       "Messages delivered to closed channels are lost",
		Description: "publish accepted messages for channels that had been closed; consumers never saw them.",
		BuggySource: buggy,
		FixedSource: fixed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Inferred contract(s) from the fix:")
	for _, sem := range rep.Registered {
		fmt.Printf("  %s\n", sem)
	}

	// Step 2: the contract shields the codebase. The proposed retry path
	// reaches the same delivery operation without the guard.
	gate, err := ci.Gate(engine, ci.Change{
		Summary:   "add retry queue flushing",
		OldSource: fixed,
		NewSource: proposedChange,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nGate decision for the proposed retry path:")
	fmt.Print(gate.Summary())

	// Step 3: the corrected change passes.
	corrected := fixed + `
class RetryQueue {
	Broker broker;

	void init(Broker b) {
		broker = b;
	}

	void flushRetries(Channel ch, string msg) {
		if (ch == null || !ch.isOpen()) {
			return;
		}
		broker.deliver(ch, msg);
	}
}
`
	gate2, err := ci.Gate(engine, ci.Change{
		Summary:   "add retry queue flushing (guarded)",
		OldSource: fixed,
		NewSource: corrected,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nGate decision after adding the guard:")
	fmt.Print(gate2.Summary())
}
