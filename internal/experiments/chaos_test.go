package experiments

import (
	"strings"
	"testing"

	"lisa/internal/core"
	"lisa/internal/corpus"
	"lisa/internal/faultinject"
)

// TestChaosSolverBudgetGatePolicy pins the gate-policy contract of the
// degradation study on one matrix cell: with solver-budget exhaustion
// injected, the fail-closed gate blocks the change with an INCONCLUSIVE
// finding, the fail-open gate passes the same change with a warning, and in
// both runs the degraded semantics report INCONCLUSIVE rather than PASS.
func TestChaosSolverBudgetGatePolicy(t *testing.T) {
	cs := pickChaosCase(corpus.Load())
	if cs == nil {
		t.Fatal("no corpus case with tests")
	}
	sc := chaosScenario{name: "budget-solver", point: "smt.solve", kind: faultinject.Budget}

	closed, err := runChaosGate(cs, sc, 8, false)
	if err != nil {
		t.Fatalf("fail-closed run: %v", err)
	}
	open, err := runChaosGate(cs, sc, 8, true)
	if err != nil {
		t.Fatalf("fail-open run: %v", err)
	}

	if closed.res.Pass {
		t.Error("fail-closed gate passed despite injected solver-budget exhaustion")
	}
	if !open.res.Pass {
		t.Error("fail-open gate blocked; inconclusive results should downgrade to a warning")
	}
	if closed.hits == "" {
		t.Error("fault plan recorded no hits; the injected fault never fired")
	}

	sawBlock, sawWarn := false, false
	for _, f := range closed.res.Findings {
		if f.Severity == "BLOCK" && strings.Contains(f.Text, "INCONCLUSIVE") {
			sawBlock = true
		}
	}
	for _, f := range open.res.Findings {
		if f.Severity == "WARN" && strings.Contains(f.Text, "INCONCLUSIVE") {
			sawWarn = true
		}
	}
	if !sawBlock {
		t.Errorf("fail-closed findings lack a BLOCK INCONCLUSIVE entry: %+v", closed.res.Findings)
	}
	if !sawWarn {
		t.Errorf("fail-open findings lack a WARN INCONCLUSIVE entry: %+v", open.res.Findings)
	}

	for _, run := range []chaosRun{closed, open} {
		if run.res.Report == nil {
			t.Fatal("run produced no report")
		}
		degraded := 0
		for _, sr := range run.res.Report.Semantics {
			switch sr.Outcome() {
			case core.OutcomeInconclusive:
				degraded++
			case core.OutcomePass:
				t.Errorf("semantic %s reports PASS under an exhausted solver", sr.Semantic.ID)
			}
		}
		if degraded == 0 {
			t.Error("no semantic degraded to INCONCLUSIVE")
		}
	}
}
