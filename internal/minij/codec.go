package minij

// Binary AST codec for resolved MiniJ programs. A persisted snapshot used
// to restore by re-parsing its source and re-rendering the canon — at
// MiniJ scale that costs about as much as compiling, which turned the disk
// tier's counter win into a wall-clock break-even. EncodeProgram captures
// the resolved AST (node structure, positions, call kinds, and the
// expression type table) in a deterministic, self-delimiting frame so a
// cold process can DecodeProgram instead of parse+resolve.
//
// Frame layout:
//
//	magic "MJAC" | version u16 BE | payload len uvarint | payload | sha256
//
// The sha256 trailer covers every preceding byte, so truncation, bit
// flips, and version skew are all rejected before a single payload byte
// is interpreted — a corrupt frame can degrade to a recompute miss but
// can never decode into a wrong AST. Within the payload, integers are
// varints, strings are length-prefixed, and every node carries a tag
// byte, so the encoding is independent of word size and map iteration
// order: one program always encodes to one byte string.

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// codecVersion is bumped whenever the payload layout changes; decoders
// reject any other version so a stale record reads as a miss, never as a
// misinterpreted AST.
const codecVersion = 1

var codecMagic = [4]byte{'M', 'J', 'A', 'C'}

// Codec sentinel errors, matched with errors.Is.
var (
	// ErrCodecTruncated reports a frame shorter than its own framing
	// claims (including an empty or header-only payload).
	ErrCodecTruncated = errors.New("minij: truncated AST payload")
	// ErrCodecVersion reports a frame written by a different codec
	// version (or something that is not an AST frame at all).
	ErrCodecVersion = errors.New("minij: AST payload version mismatch")
	// ErrCodecCorrupt reports a frame whose checksum or structure does
	// not hold together.
	ErrCodecCorrupt = errors.New("minij: corrupt AST payload")
)

// Statement and expression tags. Tag 0 is reserved for "nil node" so
// optional children (else branches, loop clauses, call receivers) are
// self-describing.
const (
	tagNil = iota
	tagBlock
	tagVarDecl
	tagAssign
	tagIf
	tagWhile
	tagFor
	tagForEach
	tagReturn
	tagBreak
	tagContinue
	tagThrow
	tagTry
	tagSync
	tagExprStmt

	tagIntLit
	tagBoolLit
	tagStrLit
	tagNullLit
	tagIdent
	tagFieldAccess
	tagCall
	tagNew
	tagUnary
	tagBinary
	tagMax
)

// EncodeProgram serializes a parsed (and normally resolved) program into
// the checksummed binary frame. Encoding is deterministic: the same
// program always yields the same bytes.
func EncodeProgram(p *Program) ([]byte, error) {
	if p == nil {
		return nil, fmt.Errorf("%w: nil program", ErrCodecCorrupt)
	}
	e := &encoder{prog: p}
	e.uvarint(uint64(len(p.Classes)))
	for _, c := range p.Classes {
		e.class(c)
	}
	payload := e.buf

	out := make([]byte, 0, len(payload)+4+2+binary.MaxVarintLen64+sha256.Size)
	out = append(out, codecMagic[:]...)
	out = binary.BigEndian.AppendUint16(out, codecVersion)
	out = binary.AppendUvarint(out, uint64(len(payload)))
	out = append(out, payload...)
	sum := sha256.Sum256(out)
	out = append(out, sum[:]...)
	return out, nil
}

// DecodeProgram reconstructs a program from an EncodeProgram frame. The
// checksum is verified before any payload byte is interpreted; the
// returned program is indexed (lookup tables, dense statement IDs) exactly
// as a freshly parsed one, with ExprTypes and Call kinds restored, so no
// re-resolution is needed.
func DecodeProgram(data []byte) (*Program, error) {
	body, err := checkFrame(data)
	if err != nil {
		return nil, err
	}
	d := &decoder{buf: body, prog: &Program{ExprTypes: map[Expr]Type{}}}
	n := d.uvarint()
	for i := uint64(0); i < n && d.err == nil; i++ {
		d.prog.Classes = append(d.prog.Classes, d.class())
	}
	if d.err == nil && d.off != len(d.buf) {
		d.fail("trailing payload bytes")
	}
	if d.err != nil {
		return nil, d.err
	}
	// indexProgram rebuilds the lookup tables and assigns statement IDs in
	// the same deterministic walk order the parser uses, so a decoded
	// program is indistinguishable from a parsed one.
	if err := indexProgram(d.prog); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCodecCorrupt, err)
	}
	return d.prog, nil
}

// checkFrame validates magic, version, length, and checksum, returning the
// payload slice.
func checkFrame(data []byte) ([]byte, error) {
	if len(data) < 4+2+1+sha256.Size {
		return nil, ErrCodecTruncated
	}
	if [4]byte(data[:4]) != codecMagic {
		return nil, ErrCodecVersion
	}
	if v := binary.BigEndian.Uint16(data[4:6]); v != codecVersion {
		return nil, fmt.Errorf("%w: got v%d, want v%d", ErrCodecVersion, v, codecVersion)
	}
	plen, n := binary.Uvarint(data[6:])
	if n <= 0 {
		return nil, ErrCodecTruncated
	}
	head := 6 + n
	if uint64(len(data)) != uint64(head)+plen+sha256.Size {
		return nil, ErrCodecTruncated
	}
	sum := sha256.Sum256(data[:len(data)-sha256.Size])
	if [sha256.Size]byte(data[len(data)-sha256.Size:]) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCodecCorrupt)
	}
	return data[head : len(data)-sha256.Size], nil
}

type encoder struct {
	buf  []byte
	prog *Program
}

func (e *encoder) uvarint(v uint64)  { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) svarint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *encoder) byte(b byte)       { e.buf = append(e.buf, b) }
func (e *encoder) string(s string)   { e.uvarint(uint64(len(s))); e.buf = append(e.buf, s...) }
func (e *encoder) pos(p Pos)         { e.uvarint(uint64(p.Line)); e.uvarint(uint64(p.Col)) }

func (e *encoder) bool(b bool) {
	if b {
		e.byte(1)
	} else {
		e.byte(0)
	}
}

func (e *encoder) typ(t Type) {
	e.byte(byte(t.Kind))
	if t.Kind == TypeObject {
		e.string(t.Class)
	}
}

func (e *encoder) class(c *Class) {
	e.string(c.Name)
	e.pos(c.DeclPos)
	e.uvarint(uint64(len(c.Fields)))
	for _, f := range c.Fields {
		e.string(f.Name)
		e.typ(f.Type)
		e.pos(f.DeclPos)
	}
	e.uvarint(uint64(len(c.Methods)))
	for _, m := range c.Methods {
		e.string(m.Name)
		e.bool(m.Static)
		e.typ(m.Ret)
		e.pos(m.DeclPos)
		e.uvarint(uint64(len(m.Params)))
		for _, p := range m.Params {
			e.string(p.Name)
			e.typ(p.Type)
		}
		e.stmt(m.Body)
	}
}

func (e *encoder) stmt(s Stmt) {
	if s == nil {
		e.byte(tagNil)
		return
	}
	switch n := s.(type) {
	case *Block:
		e.byte(tagBlock)
		e.pos(n.pos)
		e.uvarint(uint64(len(n.Stmts)))
		for _, c := range n.Stmts {
			e.stmt(c)
		}
	case *VarDecl:
		e.byte(tagVarDecl)
		e.pos(n.pos)
		e.typ(n.Type)
		e.string(n.Name)
		e.expr(n.Init)
	case *Assign:
		e.byte(tagAssign)
		e.pos(n.pos)
		e.expr(n.Target)
		e.expr(n.Value)
	case *If:
		e.byte(tagIf)
		e.pos(n.pos)
		e.expr(n.Cond)
		e.stmt(n.Then)
		e.stmt(n.Else)
	case *While:
		e.byte(tagWhile)
		e.pos(n.pos)
		e.expr(n.Cond)
		e.stmt(n.Body)
	case *For:
		e.byte(tagFor)
		e.pos(n.pos)
		e.stmt(n.Init)
		e.expr(n.Cond)
		e.stmt(n.Post)
		e.stmt(n.Body)
	case *ForEach:
		e.byte(tagForEach)
		e.pos(n.pos)
		e.string(n.Var)
		e.expr(n.Iter)
		e.stmt(n.Body)
	case *Return:
		e.byte(tagReturn)
		e.pos(n.pos)
		e.expr(n.Value)
	case *Break:
		e.byte(tagBreak)
		e.pos(n.pos)
	case *Continue:
		e.byte(tagContinue)
		e.pos(n.pos)
	case *Throw:
		e.byte(tagThrow)
		e.pos(n.pos)
		e.expr(n.Value)
	case *Try:
		e.byte(tagTry)
		e.pos(n.pos)
		e.stmt(n.Body)
		e.string(n.CatchVar)
		e.stmt(n.Catch)
	case *Sync:
		e.byte(tagSync)
		e.pos(n.pos)
		e.expr(n.Lock)
		e.stmt(n.Body)
	case *ExprStmt:
		e.byte(tagExprStmt)
		e.pos(n.pos)
		e.expr(n.E)
	default:
		panic(fmt.Sprintf("minij: EncodeProgram: unknown statement %T", s))
	}
}

func (e *encoder) expr(x Expr) {
	if x == nil {
		e.byte(tagNil)
		return
	}
	switch n := x.(type) {
	case *IntLit:
		e.byte(tagIntLit)
		e.pos(n.pos)
		e.svarint(n.Value)
	case *BoolLit:
		e.byte(tagBoolLit)
		e.pos(n.pos)
		e.bool(n.Value)
	case *StrLit:
		e.byte(tagStrLit)
		e.pos(n.pos)
		e.string(n.Value)
	case *NullLit:
		e.byte(tagNullLit)
		e.pos(n.pos)
	case *Ident:
		e.byte(tagIdent)
		e.pos(n.pos)
		e.string(n.Name)
	case *FieldAccess:
		e.byte(tagFieldAccess)
		e.pos(n.pos)
		e.expr(n.Recv)
		e.string(n.Name)
	case *Call:
		e.byte(tagCall)
		e.pos(n.pos)
		e.expr(n.Recv)
		e.string(n.Name)
		e.byte(byte(n.Kind))
		e.uvarint(uint64(len(n.Args)))
		for _, a := range n.Args {
			e.expr(a)
		}
	case *New:
		e.byte(tagNew)
		e.pos(n.pos)
		e.string(n.Class)
		e.uvarint(uint64(len(n.Args)))
		for _, a := range n.Args {
			e.expr(a)
		}
	case *Unary:
		e.byte(tagUnary)
		e.pos(n.pos)
		e.string(n.Op)
		e.expr(n.X)
	case *Binary:
		e.byte(tagBinary)
		e.pos(n.pos)
		e.string(n.Op)
		e.expr(n.X)
		e.expr(n.Y)
	default:
		panic(fmt.Sprintf("minij: EncodeProgram: unknown expression %T", x))
	}
	// The resolver's type table is keyed by node identity, which does not
	// survive serialization, so each node carries its own entry inline. Not
	// every node has one — a static-call receiver, for example, is a class
	// name, not a value — hence the presence flag.
	if t, ok := e.prog.ExprTypes[x]; ok {
		e.byte(1)
		e.typ(t)
	} else {
		e.byte(0)
	}
}

// decoder reads the payload with a sticky error: once any read fails, all
// subsequent reads return zero values and decode aborts at the top level.
// Every length is bounds-checked against the remaining payload before
// allocation, so even an adversarial (checksum-valid) frame cannot force
// an oversized allocation.
type decoder struct {
	buf  []byte
	off  int
	err  error
	prog *Program
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s (offset %d)", ErrCodecCorrupt, fmt.Sprintf(format, args...), d.off)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) svarint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("unexpected end of payload")
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail("string length %d exceeds remaining payload", n)
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *decoder) bool() bool {
	switch d.byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bad bool")
		return false
	}
}

func (d *decoder) count() int {
	n := d.uvarint()
	// Every counted element occupies at least one payload byte, so any
	// count beyond the remaining length is structurally impossible.
	if d.err == nil && n > uint64(len(d.buf)-d.off) {
		d.fail("count %d exceeds remaining payload", n)
		return 0
	}
	return int(n)
}

func (d *decoder) pos() Pos {
	line, col := d.uvarint(), d.uvarint()
	return Pos{Line: int(line), Col: int(col)}
}

func (d *decoder) typ() Type {
	k := d.byte()
	if TypeKind(k) > TypeAny {
		d.fail("bad type kind %d", k)
		return Type{}
	}
	t := Type{Kind: TypeKind(k)}
	if t.Kind == TypeObject {
		t.Class = d.string()
	}
	return t
}

func (d *decoder) class() *Class {
	c := &Class{Name: d.string(), DeclPos: d.pos()}
	for i, n := 0, d.count(); i < n && d.err == nil; i++ {
		c.Fields = append(c.Fields, &Field{Name: d.string(), Type: d.typ(), DeclPos: d.pos()})
	}
	for i, n := 0, d.count(); i < n && d.err == nil; i++ {
		m := &Method{Class: c, Name: d.string(), Static: d.bool(), Ret: d.typ(), DeclPos: d.pos()}
		for j, np := 0, d.count(); j < np && d.err == nil; j++ {
			m.Params = append(m.Params, &Param{Name: d.string(), Type: d.typ()})
		}
		m.Body = d.block()
		c.Methods = append(c.Methods, m)
	}
	return c
}

// block decodes a statement that must be a *Block or nil (method bodies,
// branch arms, loop bodies).
func (d *decoder) block() *Block {
	s := d.stmt()
	if s == nil {
		return nil
	}
	b, ok := s.(*Block)
	if !ok {
		d.fail("expected block, got %T", s)
		return nil
	}
	return b
}

func (d *decoder) stmt() Stmt {
	tag := d.byte()
	if d.err != nil || tag == tagNil {
		return nil
	}
	base := stmtBase{pos: d.pos()}
	switch tag {
	case tagBlock:
		b := &Block{stmtBase: base}
		for i, n := 0, d.count(); i < n && d.err == nil; i++ {
			b.Stmts = append(b.Stmts, d.stmt())
		}
		return b
	case tagVarDecl:
		return &VarDecl{stmtBase: base, Type: d.typ(), Name: d.string(), Init: d.expr()}
	case tagAssign:
		return &Assign{stmtBase: base, Target: d.expr(), Value: d.expr()}
	case tagIf:
		return &If{stmtBase: base, Cond: d.expr(), Then: d.block(), Else: d.stmt()}
	case tagWhile:
		return &While{stmtBase: base, Cond: d.expr(), Body: d.block()}
	case tagFor:
		return &For{stmtBase: base, Init: d.stmt(), Cond: d.expr(), Post: d.stmt(), Body: d.block()}
	case tagForEach:
		return &ForEach{stmtBase: base, Var: d.string(), Iter: d.expr(), Body: d.block()}
	case tagReturn:
		return &Return{stmtBase: base, Value: d.expr()}
	case tagBreak:
		return &Break{stmtBase: base}
	case tagContinue:
		return &Continue{stmtBase: base}
	case tagThrow:
		return &Throw{stmtBase: base, Value: d.expr()}
	case tagTry:
		return &Try{stmtBase: base, Body: d.block(), CatchVar: d.string(), Catch: d.block()}
	case tagSync:
		return &Sync{stmtBase: base, Lock: d.expr(), Body: d.block()}
	case tagExprStmt:
		return &ExprStmt{stmtBase: base, E: d.expr()}
	default:
		d.fail("bad statement tag %d", tag)
		return nil
	}
}

func (d *decoder) expr() Expr {
	tag := d.byte()
	if d.err != nil || tag == tagNil {
		return nil
	}
	base := exprBase{pos: d.pos()}
	var x Expr
	switch tag {
	case tagIntLit:
		x = &IntLit{exprBase: base, Value: d.svarint()}
	case tagBoolLit:
		x = &BoolLit{exprBase: base, Value: d.bool()}
	case tagStrLit:
		x = &StrLit{exprBase: base, Value: d.string()}
	case tagNullLit:
		x = &NullLit{exprBase: base}
	case tagIdent:
		x = &Ident{exprBase: base, Name: d.string()}
	case tagFieldAccess:
		x = &FieldAccess{exprBase: base, Recv: d.expr(), Name: d.string()}
	case tagCall:
		c := &Call{exprBase: base, Recv: d.expr(), Name: d.string()}
		k := d.byte()
		if CallKind(k) > CallSelf {
			d.fail("bad call kind %d", k)
			return nil
		}
		c.Kind = CallKind(k)
		for i, n := 0, d.count(); i < n && d.err == nil; i++ {
			c.Args = append(c.Args, d.expr())
		}
		x = c
	case tagNew:
		nw := &New{exprBase: base, Class: d.string()}
		for i, n := 0, d.count(); i < n && d.err == nil; i++ {
			nw.Args = append(nw.Args, d.expr())
		}
		x = nw
	case tagUnary:
		x = &Unary{exprBase: base, Op: d.string(), X: d.expr()}
	case tagBinary:
		x = &Binary{exprBase: base, Op: d.string(), X: d.expr(), Y: d.expr()}
	default:
		d.fail("bad expression tag %d", tag)
		return nil
	}
	if d.bool() {
		d.prog.ExprTypes[x] = d.typ()
	}
	if d.err != nil {
		return nil
	}
	return x
}
