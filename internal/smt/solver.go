package smt

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"lisa/internal/faultinject"
)

// Model assigns a truth value to each atom key that the solver decided.
type Model map[string]bool

// String renders the model deterministically.
func (m Model) String() string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%v", k, m[k])
	}
	return strings.Join(parts, ", ")
}

// ErrBudget is returned when the DPLL search exceeds its node budget.
var ErrBudget = errors.New("smt: search budget exhausted")

// DefaultMaxNodes bounds the DPLL search. Corpus formulas have well under
// twenty atoms, so this is a backstop, not a practical limit.
const DefaultMaxNodes = 1 << 20

// Limits bounds one satisfiability query. The zero value applies the
// package defaults: DefaultMaxNodes and no cancellation.
type Limits struct {
	// Ctx, when non-nil, is polled cooperatively during the DPLL search;
	// cancellation or deadline expiry surfaces as the context's error.
	Ctx context.Context
	// MaxNodes caps search-tree nodes (<= 0 means DefaultMaxNodes).
	MaxNodes int
}

// Solve decides satisfiability of f with default limits, returning a
// witness model when SAT.
func Solve(f Formula) (sat bool, model Model, err error) {
	return SolveLim(f, Limits{})
}

// SolveLim decides satisfiability of f under explicit limits. A non-nil
// error is ErrBudget (node ceiling hit) or the context's error; the bool
// is meaningless then, and callers must surface the query as inconclusive
// rather than guessing a direction.
func SolveLim(f Formula, lim Limits) (sat bool, model Model, err error) {
	if faultinject.Armed() {
		switch k, ok := faultinject.At("smt.solve"); {
		case ok && k == faultinject.Budget:
			return false, nil, ErrBudget
		case ok && k == faultinject.Panic:
			panic("faultinject: smt.solve")
		}
	}
	max := lim.MaxNodes
	if max <= 0 {
		max = DefaultMaxNodes
	}
	atoms := Atoms(f)
	keys := make([]string, len(atoms))
	byKey := make(map[string]Atom, len(atoms))
	for i, a := range atoms {
		k, _ := a.Key()
		keys[i] = k
		byKey[k] = a
	}
	s := &solver{f: f, keys: keys, byKey: byKey, assign: Model{}, max: max, ctx: lim.Ctx}
	ok, err := s.search(0)
	if err != nil {
		return false, nil, err
	}
	if !ok {
		return false, nil, nil
	}
	return true, s.witness, nil
}

// SAT reports whether f is satisfiable, treating any solver error — budget
// exhaustion, cancellation — as satisfiable. That biases ambiguity toward
// reporting a violation, which is acceptable for tests and offline
// experiments but hides the degradation from the report; production
// callers use SATErr/SATLim and surface errors as INCONCLUSIVE verdicts.
func SAT(f Formula) bool {
	sat, _, err := Solve(f)
	if err != nil {
		return true
	}
	return sat
}

// SATErr reports whether f is satisfiable under default limits,
// propagating budget exhaustion instead of folding it into the answer.
func SATErr(f Formula) (bool, error) {
	sat, _, err := Solve(f)
	return sat, err
}

// SATLim is SATErr under explicit limits.
func SATLim(f Formula, lim Limits) (bool, error) {
	sat, _, err := SolveLim(f, lim)
	return sat, err
}

// Implies reports whether p logically entails q (p ⇒ q), i.e. whether
// p ∧ ¬q is unsatisfiable. Like SAT it swallows solver errors (erring
// toward "does not entail"); production callers use ImpliesErr/ImpliesLim.
func Implies(p, q Formula) bool {
	return !SAT(NewAnd(p, NewNot(q)))
}

// ImpliesErr is Implies with error propagation under default limits.
func ImpliesErr(p, q Formula) (bool, error) {
	sat, err := SATErr(NewAnd(p, NewNot(q)))
	return !sat, err
}

// ImpliesLim is ImpliesErr under explicit limits.
func ImpliesLim(p, q Formula, lim Limits) (bool, error) {
	sat, err := SATLim(NewAnd(p, NewNot(q)), lim)
	return !sat, err
}

// Equiv reports whether p and q are logically equivalent.
func Equiv(p, q Formula) bool {
	return Implies(p, q) && Implies(q, p)
}

// EquivErr is Equiv with error propagation under default limits.
func EquivErr(p, q Formula) (bool, error) {
	pq, err := ImpliesErr(p, q)
	if err != nil {
		return false, err
	}
	if !pq {
		return false, nil
	}
	return ImpliesErr(q, p)
}

// Valid reports whether f is a tautology.
func Valid(f Formula) bool { return !SAT(NewNot(f)) }

type solver struct {
	f       Formula
	keys    []string
	byKey   map[string]Atom
	assign  Model
	witness Model
	nodes   int
	max     int
	ctx     context.Context
}

// search assigns atoms keys[i:] and reports whether a consistent satisfying
// assignment exists.
func (s *solver) search(i int) (bool, error) {
	s.nodes++
	if s.nodes > s.max {
		return false, ErrBudget
	}
	if s.ctx != nil && s.nodes&255 == 0 {
		select {
		case <-s.ctx.Done():
			return false, s.ctx.Err()
		default:
		}
	}
	switch eval3(s.f, s.assign) {
	case triFalse:
		return false, nil
	case triTrue:
		if s.theoryConsistent() {
			s.witness = make(Model, len(s.assign))
			for k, v := range s.assign {
				s.witness[k] = v
			}
			return true, nil
		}
		return false, nil
	}
	if i >= len(s.keys) {
		// All atoms assigned yet value unknown cannot happen; defensive.
		return false, nil
	}
	k := s.keys[i]
	for _, v := range []bool{true, false} {
		s.assign[k] = v
		if s.theoryConsistent() {
			ok, err := s.search(i + 1)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		delete(s.assign, k)
	}
	return false, nil
}

type tri int

const (
	triFalse tri = iota
	triTrue
	triUnknown
)

// eval3 evaluates f under a partial assignment with three-valued logic.
func eval3(f Formula, assign Model) tri {
	switch n := f.(type) {
	case *Const:
		if n.Value {
			return triTrue
		}
		return triFalse
	case *AtomF:
		k, neg := n.Atom.Key()
		v, ok := assign[k]
		if !ok {
			return triUnknown
		}
		if v != neg {
			return triTrue
		}
		return triFalse
	case *Not:
		switch eval3(n.X, assign) {
		case triTrue:
			return triFalse
		case triFalse:
			return triTrue
		}
		return triUnknown
	case *And:
		out := triTrue
		for _, x := range n.Xs {
			switch eval3(x, assign) {
			case triFalse:
				return triFalse
			case triUnknown:
				out = triUnknown
			}
		}
		return out
	case *Or:
		out := triFalse
		for _, x := range n.Xs {
			switch eval3(x, assign) {
			case triTrue:
				return triTrue
			case triUnknown:
				out = triUnknown
			}
		}
		return out
	}
	panic(fmt.Sprintf("smt: unhandled formula %T", f))
}

// theoryConsistent checks the currently assigned literals against the
// integer difference-bound theory and the string equality theory.
func (s *solver) theoryConsistent() bool {
	dbm := newDBM()
	strEq := map[string]string{}   // path -> required value
	strNe := map[string][]string{} // path -> excluded values
	for k, v := range s.assign {
		a := s.byKey[k]
		switch a.Kind {
		case AtomCmpC:
			dbm.addCmpC(a, v)
		case AtomCmpV:
			dbm.addCmpV(a, v)
		case AtomStrEq:
			// Normalized atoms always have OpEq.
			if v {
				if prev, ok := strEq[a.Path]; ok && prev != a.StrVal {
					return false
				}
				strEq[a.Path] = a.StrVal
			} else {
				strNe[a.Path] = append(strNe[a.Path], a.StrVal)
			}
		}
	}
	for p, val := range strEq {
		for _, ex := range strNe[p] {
			if ex == val {
				return false
			}
		}
	}
	return dbm.consistent()
}

// dbm is a difference-bound matrix over integer paths plus a zero node.
// Edge u→v with weight c encodes u - v <= c.
type dbm struct {
	idx    map[string]int
	names  []string
	edges  []dbmEdge
	diseqC []diseqConst
	diseqV []diseqPair
}

type dbmEdge struct {
	u, v int
	c    int64
}

type diseqConst struct {
	x int
	c int64
}

type diseqPair struct{ x, y int }

func newDBM() *dbm {
	return &dbm{idx: map[string]int{"": 0}, names: []string{""}}
}

func (d *dbm) node(path string) int {
	if i, ok := d.idx[path]; ok {
		return i
	}
	i := len(d.names)
	d.idx[path] = i
	d.names = append(d.names, path)
	return i
}

func (d *dbm) add(u, v int, c int64) {
	d.edges = append(d.edges, dbmEdge{u: u, v: v, c: c})
}

// addCmpC encodes a normalized constant comparison (Op in Eq, Le, Lt) with
// the given truth value.
func (d *dbm) addCmpC(a Atom, v bool) {
	x := d.node(a.Path)
	op := a.Op
	if !v {
		op = op.Negate()
	}
	switch op {
	case OpEq:
		d.add(x, 0, a.IntVal)
		d.add(0, x, -a.IntVal)
	case OpNe:
		d.diseqC = append(d.diseqC, diseqConst{x: x, c: a.IntVal})
	case OpLe:
		d.add(x, 0, a.IntVal)
	case OpLt:
		d.add(x, 0, a.IntVal-1)
	case OpGe:
		d.add(0, x, -a.IntVal)
	case OpGt:
		d.add(0, x, -a.IntVal-1)
	}
}

// addCmpV encodes a normalized variable comparison with the given truth
// value.
func (d *dbm) addCmpV(a Atom, v bool) {
	x, y := d.node(a.Path), d.node(a.Path2)
	op := a.Op
	if !v {
		op = op.Negate()
	}
	switch op {
	case OpEq:
		d.add(x, y, 0)
		d.add(y, x, 0)
	case OpNe:
		d.diseqV = append(d.diseqV, diseqPair{x: x, y: y})
	case OpLe:
		d.add(x, y, 0)
	case OpLt:
		d.add(x, y, -1)
	case OpGe:
		d.add(y, x, 0)
	case OpGt:
		d.add(y, x, -1)
	}
}

const inf = int64(1) << 60

// consistent runs Floyd–Warshall and checks for negative cycles, then
// verifies disequalities against forced equalities. The disequality pass is
// complete for forced point values and forced variable equalities; exotic
// finite-domain disequality chains may be declared consistent (erring
// toward SAT).
func (d *dbm) consistent() bool {
	n := len(d.names)
	if n == 1 && len(d.diseqC) == 0 && len(d.diseqV) == 0 {
		return true
	}
	dist := make([][]int64, n)
	for i := range dist {
		dist[i] = make([]int64, n)
		for j := range dist[i] {
			if i == j {
				dist[i][j] = 0
			} else {
				dist[i][j] = inf
			}
		}
	}
	for _, e := range d.edges {
		if e.c < dist[e.u][e.v] {
			dist[e.u][e.v] = e.c
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if dist[i][k] == inf {
				continue
			}
			for j := 0; j < n; j++ {
				if dist[k][j] == inf {
					continue
				}
				if s := dist[i][k] + dist[k][j]; s < dist[i][j] {
					dist[i][j] = s
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if dist[i][i] < 0 {
			return false
		}
	}
	for _, dq := range d.diseqC {
		// x != c conflicts iff bounds force x == c.
		if dist[dq.x][0] == dq.c && dist[0][dq.x] == -dq.c {
			return false
		}
	}
	for _, dq := range d.diseqV {
		// x != y conflicts iff bounds force x == y.
		if dist[dq.x][dq.y] == 0 && dist[dq.y][dq.x] == 0 {
			return false
		}
	}
	return true
}
