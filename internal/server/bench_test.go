package server

import (
	"testing"

	"lisa/internal/ci"
	"lisa/internal/core"
	"lisa/internal/corpus"
	"lisa/internal/program"
	"lisa/internal/sched"
	"lisa/internal/smt"
	"lisa/internal/store"
)

// benchCases are the corpus cases the cold-vs-warm comparison gates; a
// small mixed set so the numbers reflect typical, not best-case, reuse.
var benchCases = []string{"zk-ephemeral", "zk-session-expiry", "hdfs-lease-recovery"}

// BenchmarkLocalGateCold is what every CLI invocation pays today: a fresh
// engine, a private (empty) snapshot cache, an empty solver query cache,
// and a from-scratch scheduler for each gate. This is the baseline the
// daemon exists to amortize.
func BenchmarkLocalGateCold(b *testing.B) {
	c := corpus.Load()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, id := range benchCases {
			cs := c.Get(id)
			b.StopTimer()
			smt.ResetQueryCache()
			b.StartTimer()
			e := core.New()
			e.Snapshots = program.NewCache(0)
			for _, tk := range cs.Tickets {
				if _, err := e.ProcessTicket(tk); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := ci.GateWith(e, ci.Change{
				Summary:   "bench",
				OldSource: cs.Head(),
				NewSource: cs.Head(),
			}, cs.Tests, ci.GateOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkLocalGateWarmStore is the `lisa gate -store DIR` path on a
// warm store: each gate still pays for a fresh engine and empty memory
// tiers (a cold process), but the snapshot, solver, and fingerprint
// caches sit over a store a previous run populated, so compiles, solver
// searches, and job executions are all served from disk. The gap to
// BenchmarkLocalGateCold is what the disk tier alone buys a cold
// process; the gap to BenchmarkRemoteGateWarm is the residual cost of
// re-reading and re-anchoring records versus hitting live memory.
func BenchmarkLocalGateWarmStore(b *testing.B) {
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	c := corpus.Load()
	gate := func(id string) {
		cs := c.Get(id)
		e := core.New()
		e.Snapshots = program.NewCache(0)
		e.Snapshots.SetStore(st)
		e.Solver = smt.NewQueryCache(0)
		e.Solver.SetStore(st)
		for _, tk := range cs.Tickets {
			if _, err := e.ProcessTicket(tk); err != nil {
				b.Fatal(err)
			}
		}
		s := sched.New()
		s.Cache().SetStore(st)
		if _, err := ci.GateWith(e, ci.Change{
			Summary:   "bench",
			OldSource: cs.Head(),
			NewSource: cs.Head(),
		}, cs.Tests, ci.GateOptions{Scheduler: s}); err != nil {
			b.Fatal(err)
		}
	}
	// Populate the store once; every measured round is a cold process
	// against this warm store.
	for _, id := range benchCases {
		gate(id)
	}
	if err := st.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, id := range benchCases {
			gate(id)
		}
	}
}

// BenchmarkRemoteGateWarm is the same gates served by one long-lived
// daemon over HTTP: after the first round every request rides the warm
// snapshot, fingerprint, and solver query caches. The full round trip —
// JSON encode, TCP, decode — is included, and it still roughly halves
// the in-process cold cost; against a real cold CLI process (which also
// pays exec and corpus load) the gap is wider (see EXPERIMENTS.md).
func BenchmarkRemoteGateWarm(b *testing.B) {
	_, cl, done := newTestServer(b, Config{})
	defer done()
	// Warm every case runtime and cache before the measured rounds.
	for _, id := range benchCases {
		cs := corpusCase(b, id)
		if _, err := cl.Gate(GateRequest{Case: id, Change: cs.Head(), Summary: "bench"}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, id := range benchCases {
			cs := corpusCase(b, id)
			if _, err := cl.Gate(GateRequest{Case: id, Change: cs.Head(), Summary: "bench"}); err != nil {
				b.Fatal(err)
			}
		}
	}
}
