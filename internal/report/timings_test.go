package report

import (
	"strings"
	"testing"
	"time"
)

func TestTimingsAccumulateAndOrder(t *testing.T) {
	tm := NewTimings()
	tm.Record("compile", 10*time.Millisecond)
	tm.Record("solve", 30*time.Millisecond)
	tm.Record("compile", 10*time.Millisecond)
	if got := tm.Get("compile"); got != 20*time.Millisecond {
		t.Errorf("compile = %v", got)
	}
	if got := tm.Total(); got != 50*time.Millisecond {
		t.Errorf("total = %v", got)
	}
	out := tm.Render("Stage timings")
	if !strings.Contains(out, "Stage timings") || !strings.Contains(out, "compile") {
		t.Errorf("render:\n%s", out)
	}
	// compile was recorded first, so it renders before solve.
	if strings.Index(out, "compile") > strings.Index(out, "solve") {
		t.Errorf("entries out of recording order:\n%s", out)
	}
	if !strings.Contains(out, "40.0%") || !strings.Contains(out, "60.0%") {
		t.Errorf("shares missing:\n%s", out)
	}
}

func TestTimingsTime(t *testing.T) {
	tm := NewTimings()
	tm.Time("work", func() { time.Sleep(time.Millisecond) })
	if tm.Get("work") == 0 {
		t.Error("Time recorded nothing")
	}
}

func TestRenderStages(t *testing.T) {
	out := RenderStages("Engine stages", []string{"a", "b"}, map[string]time.Duration{
		"a": time.Millisecond, "b": 3 * time.Millisecond,
	})
	if !strings.Contains(out, "Engine stages") || !strings.Contains(out, "total") {
		t.Errorf("render:\n%s", out)
	}
	if strings.Index(out, "a") > strings.Index(out, "b") {
		t.Errorf("order not respected:\n%s", out)
	}
}
