// Package corpus holds the study corpus: 16 regression cases (34 bugs)
// across four simulated cloud systems — zksim (ZooKeeper-like), hdfssim
// (HDFS-like), hbasesim (HBase-like), and cassandrasim (Cassandra-like).
//
// Each case models one recurring failure area as a self-contained MiniJ
// subsystem with a version history: the original bug, its fix, at least
// one later regression of the same low-level semantic, and (for the two
// §4-style cases) a "latest" head that still carries an unguarded path —
// the previously unknown bugs LISA reported in HBase and HDFS.
//
// Version histories are derived by weakening guards in the newest source,
// mirroring how the real patches strengthened them; every version is
// validated to compile and resolve by the corpus test suite.
package corpus

import (
	"fmt"
	"strings"

	"lisa/internal/ticket"
)

// Load assembles the full study corpus.
func Load() *ticket.Corpus {
	c := &ticket.Corpus{}
	// zksim
	c.Add(finishCase(caseZkEphemeral()))
	c.Add(finishCase(caseZkSyncSerialize()))
	c.Add(finishCase(caseZkSessionExpiry()))
	c.Add(finishCase(caseZkWatchTrigger()))
	c.Add(finishCase(caseZkQuota()))
	// hdfssim
	c.Add(finishCase(caseHdfsObserverLocations()))
	c.Add(finishCase(caseHdfsLeaseRecovery()))
	c.Add(finishCase(caseHdfsDecommission()))
	c.Add(finishCase(caseHdfsSafemode()))
	// hbasesim
	c.Add(finishCase(caseHbaseSnapshotTTL()))
	c.Add(finishCase(caseHbaseRegionState()))
	c.Add(finishCase(caseHbaseWalRoll()))
	c.Add(finishCase(caseHbaseMetaCache()))
	// cassandrasim
	c.Add(finishCase(caseCassandraTombstoneGC()))
	c.Add(finishCase(caseCassandraHintDelivery()))
	c.Add(finishCase(caseCassandraRepairStream()))
	return c
}

// weaken removes or replaces a guard fragment to derive an older (buggier)
// version of a source. It panics if the fragment is absent, which the
// corpus tests would surface immediately.
func weaken(src, from, to string) string {
	if !strings.Contains(src, from) {
		panic(fmt.Sprintf("corpus: weaken: fragment %q not found", from))
	}
	return strings.Replace(src, from, to, 1)
}
