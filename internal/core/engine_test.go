package core

import (
	"strings"
	"testing"

	"lisa/internal/concolic"
	"lisa/internal/corpus"
	"lisa/internal/infer"
	"lisa/internal/ticket"
)

const zkBuggy = `
class Session {
	bool closing;
}

class DataTree {
	map nodes;

	void createEphemeral(string path, Session owner) {
		nodes.put(path, owner);
	}
}

class PrepProcessor {
	DataTree tree;

	void processCreate(string path, Session s) {
		if (s == null) {
			throw "KeeperException";
		}
		tree.createEphemeral(path, s);
	}
}
`

const zkFixed = `
class Session {
	bool closing;
}

class DataTree {
	map nodes;

	void createEphemeral(string path, Session owner) {
		nodes.put(path, owner);
	}
}

class PrepProcessor {
	DataTree tree;

	void processCreate(string path, Session s) {
		if (s == null || s.closing) {
			throw "KeeperException";
		}
		tree.createEphemeral(path, s);
	}
}
`

// zkRegressed adds a second request path one year later that misses the
// closing check — the ZK-1496 recurrence.
const zkRegressed = zkFixed + `
class SessionTracker {
	DataTree tree;

	void touchAndRegister(string path, Session s) {
		if (s == null) {
			return;
		}
		tree.createEphemeral(path, s);
	}
}
`

func zkTestSuite() []ticket.TestCase {
	return []ticket.TestCase{
		{
			Name:        "EphemeralTest.createOnLiveSession",
			Description: "create ephemeral node on a live session succeeds",
			Class:       "EphemeralTest",
			Method:      "createOnLiveSession",
			Source: `
class EphemeralTest {
	static void createOnLiveSession() {
		PrepProcessor p = new PrepProcessor();
		p.tree = new DataTree();
		p.tree.nodes = newMap();
		Session s = new Session();
		s.closing = false;
		p.processCreate("/live", s);
		assertTrue(p.tree.nodes.has("/live"), "node created");
	}
}
`,
		},
		{
			Name:        "TrackerTest.touchRegistersAddress",
			Description: "session tracker registers consumer address via ephemeral node",
			Class:       "TrackerTest",
			Method:      "touchRegistersAddress",
			Source: `
class TrackerTest {
	static void touchRegistersAddress() {
		SessionTracker tr = new SessionTracker();
		tr.tree = new DataTree();
		tr.tree.nodes = newMap();
		Session s = new Session();
		s.closing = true;
		tr.touchAndRegister("/consumer", s);
	}
}
`,
		},
		{
			Name:        "QuotaTest.unrelatedQuota",
			Description: "quota accounting for large writes",
			Class:       "QuotaTest",
			Method:      "unrelatedQuota",
			Source: `
class QuotaTest {
	static void unrelatedQuota() {
		assertTrue(1 + 1 == 2, "math");
	}
}
`,
		},
	}
}

func zkTicket() *ticket.Ticket {
	return &ticket.Ticket{
		ID:          "ZK-1208",
		Title:       "Ephemeral node not removed after the client session is long gone",
		Description: "Ephemeral node created on a closing session persists after the session dies.",
		BuggySource: zkBuggy,
		FixedSource: zkFixed,
	}
}

func TestProcessTicketRegistersRule(t *testing.T) {
	e := New()
	rep, err := e.ProcessTicket(zkTicket())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Registered) != 1 {
		t.Fatalf("registered = %v", rep.Registered)
	}
	if e.Registry.Len() != 1 {
		t.Errorf("registry len = %d", e.Registry.Len())
	}
	if rep.Registered[0].Target.Callee != "DataTree.createEphemeral" {
		t.Errorf("callee = %q", rep.Registered[0].Target.Callee)
	}
}

func TestAssertFixedVersionPasses(t *testing.T) {
	e := New()
	if _, err := e.ProcessTicket(zkTicket()); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Assert(zkFixed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counts.Violations != 0 {
		t.Errorf("violations on fixed version: %v", rep.Violations())
	}
	if rep.Counts.Verified == 0 {
		t.Error("no verified paths on fixed version")
	}
	if !rep.Semantics[0].SanityOK {
		t.Error("sanity check failed on fixed version")
	}
}

func TestAssertCatchesRegression(t *testing.T) {
	e := New()
	if _, err := e.ProcessTicket(zkTicket()); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Assert(zkRegressed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counts.Violations != 1 {
		t.Fatalf("violations = %d, want 1: %v", rep.Counts.Violations, rep.Violations())
	}
	v := rep.Violations()[0]
	if !strings.Contains(v, "SessionTracker.touchAndRegister") {
		t.Errorf("violation = %q, want the new unguarded path", v)
	}
	// The original fixed path still verifies (sanity).
	if !rep.Semantics[0].SanityOK {
		t.Error("sanity check failed")
	}
}

func TestAssertDynamicCoverage(t *testing.T) {
	e := New()
	if _, err := e.ProcessTicket(zkTicket()); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Assert(zkRegressed, zkTestSuite())
	if err != nil {
		t.Fatal(err)
	}
	var covered, uncovered int
	var violatingCovered bool
	for _, sr := range rep.Semantics {
		for _, site := range sr.Sites {
			if len(site.SelectedTests) == 0 {
				t.Errorf("site %s: no tests selected", site.Site)
			}
			for _, tn := range site.SelectedTests {
				if tn == "QuotaTest.unrelatedQuota" {
					t.Errorf("site %s selected the unrelated quota test", site.Site)
				}
			}
			for _, p := range site.Paths {
				if p.Covered() {
					covered++
					if p.Verdict == concolic.VerdictViolation {
						violatingCovered = true
						for _, dv := range p.DynamicVerdicts {
							if dv != concolic.VerdictViolation {
								t.Errorf("dynamic verdict %v disagrees with static violation", dv)
							}
						}
					}
				} else {
					uncovered++
				}
			}
		}
	}
	if covered < 2 {
		t.Errorf("covered paths = %d, want >= 2", covered)
	}
	if !violatingCovered {
		t.Error("the violating path was not dynamically covered by the tracker test")
	}
	if rep.TestsRun == 0 {
		t.Error("no tests ran")
	}
}

func TestAssertChainsUseSystemEntries(t *testing.T) {
	e := New()
	if _, err := e.ProcessTicket(zkTicket()); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Assert(zkRegressed, zkTestSuite())
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range rep.Semantics {
		for _, site := range sr.Sites {
			for _, ch := range site.Chains {
				entry := ch.Entry(site.Site.Method)
				if strings.HasSuffix(entry.Class.Name, "Test") {
					t.Errorf("chain entry %s is a test method", entry.FullName())
				}
			}
		}
	}
}

func TestStageTimingsPopulated(t *testing.T) {
	e := New()
	if _, err := e.ProcessTicket(zkTicket()); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Assert(zkRegressed, zkTestSuite())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"compile", "callgraph", "match", "static-paths", "test-select", "concolic"} {
		if _, ok := rep.StageTimings[want]; !ok {
			t.Errorf("stage %q missing from timings: %v", want, rep.SortedStageNames())
		}
	}
}

func TestRunAllTestsAblation(t *testing.T) {
	e := New()
	if _, err := e.ProcessTicket(zkTicket()); err != nil {
		t.Fatal(err)
	}
	e.RunAllTests = true
	rep, err := e.Assert(zkRegressed, zkTestSuite())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sr := range rep.Semantics {
		for _, site := range sr.Sites {
			for _, tn := range site.SelectedTests {
				if tn == "QuotaTest.unrelatedQuota" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("RunAllTests should include the unrelated test")
	}
}

func TestAssertBadSource(t *testing.T) {
	e := New()
	if _, err := e.Assert("class {", nil); err == nil {
		t.Error("expected compile error")
	}
}

// TestProcessTicketRejectsCorruptedRules: with a fully corrupting
// inferencer, cross-checking rejects everything and reports why.
func TestProcessTicketRejectsCorruptedRules(t *testing.T) {
	e := New()
	e.Inferencer = &infer.StochasticInferencer{
		Base: &infer.PatchAnalyzer{}, Seed: 11, MutateRate: 1.0,
	}
	rep, err := e.ProcessTicket(zkTicket())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Registered) != 0 {
		t.Errorf("corrupted rules registered: %v", rep.Registered)
	}
	if len(rep.Rejected) == 0 {
		t.Fatal("no rejection recorded")
	}
	if rep.Rejected[0].Grounded {
		t.Error("rejected entry marked grounded")
	}
	if rep.Rejected[0].Reason == "" {
		t.Error("rejection without reason")
	}
	if e.Registry.Len() != 0 {
		t.Errorf("registry = %d, want empty", e.Registry.Len())
	}
}

// TestEquivalentRuleMergesOrigins: re-deriving a known rule from a later
// ticket records provenance on the existing contract.
func TestEquivalentRuleMergesOrigins(t *testing.T) {
	cs := corpus.Load().Get("hbase-snapshot-ttl")
	e := New()
	first, err := e.ProcessTicket(cs.Tickets[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Registered) != 1 {
		t.Fatalf("registered = %v", first.Registered)
	}
	second, err := e.ProcessTicket(cs.Tickets[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Registered) != 0 || len(second.AlreadyKnown) != 1 {
		t.Fatalf("second ticket: registered=%v known=%v", second.Registered, second.AlreadyKnown)
	}
	origins := second.AlreadyKnown[0].Origin
	if len(origins) < 2 {
		t.Errorf("origins = %v, want both tickets", origins)
	}
}
