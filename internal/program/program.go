// Package program provides immutable, content-addressed snapshots of one
// program version. A Snapshot owns the whole front-end pipeline for its
// source — parse → resolve → canonical print/hash → call graph — computed
// once and memoized, so every layer that replays the same version (the
// engine's Prepare, the scheduler's fingerprints and dirty sets, the CI
// gate, the corpus-replay experiments) shares one compilation instead of
// re-doing the front-end work per call site.
//
// Snapshots are keyed by the sha256 of their raw source and served from a
// bounded, process-wide LRU (package-level Load) or from a private Cache.
// Everything a Snapshot exposes is computed lazily at most once and is
// read-only from then on; Verify detects a caller that mutated the shared
// AST in spite of the contract. Callers that need a mutable AST (e.g. the
// mutation experiments) use Compile, which returns a fresh, caller-owned
// program that never touches the cache.
package program

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"lisa/internal/callgraph"
	"lisa/internal/faultinject"
	"lisa/internal/minij"
	"lisa/internal/store"
)

// DefaultCapacity is the entry bound of the process-wide cache: large
// enough to hold every distinct version of the corpus replay sweeps
// (heads, buggy/fixed pairs, and mutants with their test combinations).
const DefaultCapacity = 512

// Snapshot is one immutable program version. The zero value is not usable;
// snapshots are created by a Cache (shared, content-addressed) or not at
// all — Compile hands out raw programs for callers that must mutate.
type Snapshot struct {
	source string
	hash   string
	cache  *Cache

	compileOnce sync.Once
	prog        *minij.Program
	err         error
	canon       string
	canonHash   string

	// restored marks a snapshot adopted from the disk tier; graphSummary
	// is its persisted call-graph, re-anchored lazily by Graph.
	restored     bool
	graphSummary *callgraph.Summary

	graphOnce sync.Once
	graph     *callgraph.Graph

	methodsOnce sync.Once
	methodCanon map[string]string

	shapeOnce sync.Once
	shape     string
}

// Hash returns the content address of a source string (sha256, hex).
func Hash(source string) string {
	sum := sha256.Sum256([]byte(source))
	return hex.EncodeToString(sum[:])
}

// Source returns the raw source text the snapshot was loaded from.
func (s *Snapshot) Source() string { return s.source }

// Hash returns the snapshot's content address: sha256 of the raw source.
func (s *Snapshot) Hash() string { return s.hash }

// Program returns the parsed and resolved program. The AST is shared by
// every holder of this snapshot and must not be mutated; use Compile for a
// private mutable copy.
func (s *Snapshot) Program() *minij.Program { return s.prog }

// Canon returns the canonical pretty-printing of the program — whitespace
// and formatting independent, so two reformattings of one program share it.
func (s *Snapshot) Canon() string { return s.canon }

// CanonHash returns the content address of the canonical form. This is the
// identity fingerprint callers hash into cache keys: it is stable across
// reformatting, unlike Hash.
func (s *Snapshot) CanonHash() string { return s.canonHash }

// Graph returns the call graph, built on first use and memoized. A
// snapshot restored from the disk tier re-anchors its persisted summary
// instead of rebuilding; any anchor failure falls back to a full build.
// Building the graph is also the persist trigger: it is the last (and
// most expensive) derived artifact, so a snapshot that reaches this point
// cold is fully warmed and worth writing to the store.
func (s *Snapshot) Graph() *callgraph.Graph {
	s.graphOnce.Do(func() {
		if s.prog == nil {
			return
		}
		if s.graphSummary != nil {
			if g, err := callgraph.FromSummary(s.prog, s.graphSummary); err == nil {
				s.graph = g
				if s.cache != nil {
					s.cache.graphRestores.Add(1)
				}
				return
			}
		}
		if s.cache != nil {
			s.cache.graphBuilds.Add(1)
		}
		s.graph = callgraph.Build(s.prog)
		s.persist()
	})
	return s.graph
}

// MethodCanon returns the canonical text of the named method
// ("Class.method"), or "" when no such method exists. The per-method
// renderings are built once and reused by every fingerprint and dirty-set
// computation over this version.
func (s *Snapshot) MethodCanon(fullName string) string {
	s.methodsOnce.Do(func() {
		m := map[string]string{}
		if s.prog != nil {
			for _, method := range s.prog.Methods() {
				m[method.FullName()] = minij.FormatMethod(method)
			}
		}
		s.methodCanon = m
	})
	return s.methodCanon[fullName]
}

// Shape returns the program's declaration skeleton: class names, fields,
// and method signatures, without bodies. Two versions with equal shape
// differ at most in method bodies, so resolution context outside a changed
// body is preserved — the dirty-set localization precondition.
func (s *Snapshot) Shape() string {
	s.shapeOnce.Do(func() {
		if s.prog == nil {
			return
		}
		s.shape = classShape(s.prog)
	})
	return s.shape
}

// ErrMutated reports a snapshot whose shared AST no longer matches the
// canonical form captured at compile time — some holder mutated it, or a
// cache entry was corrupted. Callers match it with errors.Is.
var ErrMutated = errors.New("program: snapshot mutated")

// Verify checks the immutability contract: it re-renders the shared AST
// and compares it against the canonical form captured at compile time. A
// non-nil error wrapping ErrMutated means some holder mutated the
// snapshot's program.
func (s *Snapshot) Verify() error {
	if s.err != nil {
		return s.err
	}
	if got := minij.FormatProgram(s.prog); got != s.canon {
		return fmt.Errorf("%w: %.12s canonical AST drifted from its content address", ErrMutated, s.hash)
	}
	return nil
}

// build runs the compile stage exactly once per snapshot.
func (s *Snapshot) build() {
	if s.cache != nil {
		s.cache.compiles.Add(1)
	}
	prog, err := minij.Parse(s.source)
	if err != nil {
		s.err = err
		return
	}
	if err := minij.Check(prog); err != nil {
		s.err = err
		return
	}
	s.prog = prog
	s.canon = minij.FormatProgram(prog)
	s.canonHash = Hash(s.canon)
	// Fault-injection point: corrupt the cached AST *after* the canonical
	// form was captured, modeling a bad cache entry. Verify must catch it.
	if faultinject.Armed() {
		if k, ok := faultinject.At("program.load"); ok && k == faultinject.Corrupt {
			corruptProgram(prog)
		}
	}
}

// corruptProgram deterministically damages the AST: it drops the last
// statement of the first method that has a body. The canonical rendering
// then no longer matches the captured one.
func corruptProgram(p *minij.Program) {
	for _, c := range p.Classes {
		for _, m := range c.Methods {
			if m.Body != nil && len(m.Body.Stmts) > 0 {
				m.Body.Stmts = m.Body.Stmts[:len(m.Body.Stmts)-1]
				return
			}
		}
	}
}

func classShape(p *minij.Program) string {
	var sb strings.Builder
	for _, c := range p.Classes {
		sb.WriteString("class ")
		sb.WriteString(c.Name)
		sb.WriteByte('\n')
		for _, f := range c.Fields {
			fmt.Fprintf(&sb, "  field %s %s\n", f.Type.String(), f.Name)
		}
		for _, m := range c.Methods {
			fmt.Fprintf(&sb, "  method static=%v %s %s(", m.Static, m.Ret.String(), m.Name)
			for i, p := range m.Params {
				if i > 0 {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, "%s %s", p.Type.String(), p.Name)
			}
			sb.WriteString(")\n")
		}
	}
	return sb.String()
}

// Cache is a bounded LRU of snapshots keyed on source content hash. All
// methods are safe for concurrent use; concurrent Loads of one source
// compile it once and share the identical snapshot. Failed compiles are
// cached too (negative entries), so replay sweeps that probe versions a
// test cannot build against do not re-parse the failure every pass.
type Cache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element // hash → element; Value is *Snapshot
	order    *list.List               // front = most recently used

	hits      uint64
	misses    uint64
	evictions uint64

	compiles    atomic.Uint64
	graphBuilds atomic.Uint64

	// disk is the optional on-disk tier (SetStore); the counters split
	// restores (verified disk hits) from full compiles, and restores
	// further by path: decoded (binary AST + digest check) vs deep
	// verified (re-parse + re-render comparison — the sampled slow path,
	// and every legacy v1 restore).
	disk             atomic.Pointer[store.Store]
	restores         atomic.Uint64
	restoresDecoded  atomic.Uint64
	restoresVerified atomic.Uint64
	graphRestores    atomic.Uint64
	diskMisses       atomic.Uint64
	diskWrites       atomic.Uint64

	// restoreTick drives deep-verify sampling; deepVerifyEvery is the
	// knob (0: DefaultDeepVerifyEvery).
	restoreTick     atomic.Uint64
	deepVerifyEvery atomic.Int64
}

// DefaultDeepVerifyEvery is the default deep-verification sampling
// interval: one restore in every N re-runs the full parse + re-render
// comparison against the stored canon, so systematic store corruption is
// still caught process-locally without paying the legacy per-restore
// re-parse tax. faultinject-armed runs deep-verify every restore
// regardless of the knob.
const DefaultDeepVerifyEvery = 16

// SetDeepVerifyEvery sets the deep-verification sampling interval: every
// nth disk restore re-parses the source and re-renders the canon (the
// pre-v2 trust-nothing path). 1 deep-verifies every restore; n <= 0
// resets to DefaultDeepVerifyEvery. Safe to call concurrently with loads.
func (c *Cache) SetDeepVerifyEvery(n int) { c.deepVerifyEvery.Store(int64(n)) }

func (c *Cache) deepVerifyInterval() uint64 {
	if n := c.deepVerifyEvery.Load(); n > 0 {
		return uint64(n)
	}
	return DefaultDeepVerifyEvery
}

// NewCache returns an empty cache bounded to capacity entries
// (DefaultCapacity when capacity <= 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		capacity: capacity,
		entries:  map[string]*list.Element{},
		order:    list.New(),
	}
}

// Load returns the snapshot for source, compiling it at most once per
// residency. The error (a parse or resolution failure) is the same on every
// load of the same bad source.
func (c *Cache) Load(source string) (*Snapshot, error) {
	h := Hash(source)
	c.mu.Lock()
	if el, ok := c.entries[h]; ok {
		c.order.MoveToFront(el)
		c.hits++
		snap := el.Value.(*Snapshot)
		c.mu.Unlock()
		// A concurrent loader may have inserted the entry and not finished
		// compiling; Do blocks until the one compile completes.
		snap.compileOnce.Do(snap.compile)
		return snap.result()
	}
	c.misses++
	snap := &Snapshot{source: source, hash: h, cache: c}
	c.entries[h] = c.order.PushFront(snap)
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*Snapshot).hash)
		c.evictions++
	}
	c.mu.Unlock()
	snap.compileOnce.Do(snap.compile)
	return snap.result()
}

func (s *Snapshot) result() (*Snapshot, error) {
	if s.err != nil {
		return nil, s.err
	}
	return s, nil
}

// CacheStats is a point-in-time counter snapshot. Compiles counts actual
// parse+resolve executions — on a warm replay it equals the number of
// distinct versions, however many times each was loaded. GraphBuilds
// likewise counts call-graph constructions (at most one per snapshot).
type CacheStats struct {
	Entries     int
	Hits        uint64
	Misses      uint64
	Evictions   uint64
	Compiles    uint64
	GraphBuilds uint64
	// Restores counts snapshots adopted from the disk tier instead of
	// compiled; RestoresDecoded of those came through the parse-free
	// binary-AST path (canon digest + codec checksum), while
	// RestoresDeepVerified re-derived everything from source and compared
	// (the sampled deep-verify path, plus every legacy v1 restore).
	// GraphRestores counts call graphs re-anchored from a persisted
	// summary instead of rebuilt. All stay zero without a store.
	Restores             uint64
	RestoresDecoded      uint64
	RestoresDeepVerified uint64
	GraphRestores        uint64
}

// Sub returns the field-wise counter delta s − base. Entries is a
// point-in-time gauge, not a counter, so the current value is kept.
// Holders of a private cache get exact per-instance deltas; deltas over
// the process-wide Stats are approximate when other runs share the
// process concurrently.
func (s CacheStats) Sub(base CacheStats) CacheStats {
	return CacheStats{
		Entries:              s.Entries,
		Hits:                 s.Hits - base.Hits,
		Misses:               s.Misses - base.Misses,
		Evictions:            s.Evictions - base.Evictions,
		Compiles:             s.Compiles - base.Compiles,
		GraphBuilds:          s.GraphBuilds - base.GraphBuilds,
		Restores:             s.Restores - base.Restores,
		RestoresDecoded:      s.RestoresDecoded - base.RestoresDecoded,
		RestoresDeepVerified: s.RestoresDeepVerified - base.RestoresDeepVerified,
		GraphRestores:        s.GraphRestores - base.GraphRestores,
	}
}

// Stats returns cumulative counters and the current entry count.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:              c.order.Len(),
		Hits:                 c.hits,
		Misses:               c.misses,
		Evictions:            c.evictions,
		Compiles:             c.compiles.Load(),
		GraphBuilds:          c.graphBuilds.Load(),
		Restores:             c.restores.Load(),
		RestoresDecoded:      c.restoresDecoded.Load(),
		RestoresDeepVerified: c.restoresVerified.Load(),
		GraphRestores:        c.graphRestores.Load(),
	}
}

// Hashes lists the resident snapshot hashes, most recently used first
// (for introspection and eviction-determinism tests).
func (c *Cache) Hashes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*Snapshot).hash)
	}
	return out
}

// defaultCache is the process-wide snapshot store shared by the engine,
// scheduler, gate, and experiment harnesses.
var defaultCache = NewCache(DefaultCapacity)

// DefaultCache returns the process-wide snapshot cache instance (e.g. for
// attaching a disk tier behind it).
func DefaultCache() *Cache { return defaultCache }

// Load serves source from the process-wide cache.
func Load(source string) (*Snapshot, error) { return defaultCache.Load(source) }

// Stats reports the process-wide cache counters.
func Stats() CacheStats { return defaultCache.Stats() }

// Compile parses and resolves source into a fresh, caller-owned program,
// bypassing the cache. Use it when the AST will be mutated (snapshots are
// shared and must stay immutable).
func Compile(source string) (*minij.Program, error) {
	prog, err := minij.Parse(source)
	if err != nil {
		return nil, err
	}
	if err := minij.Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}
