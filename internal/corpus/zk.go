package corpus

import "lisa/internal/ticket"

// ---------------------------------------------------------------------------
// Case 1: zk-ephemeral — the paper's running example (ZK-1208 -> ZK-1496).
// An ephemeral node must never be created on a closing session. The first
// fix guards PrepRequestProcessor; a year later a new request path through
// SessionTracker reaches the same creation logic without the guard.
// ---------------------------------------------------------------------------

const zkEphemeralBase = `
class Session {
	string id;
	bool closing;
	int ttl;

	bool isClosing() {
		return closing;
	}
}

class DataTree {
	map nodes;
	map ephemerals;

	void init() {
		nodes = newMap();
		ephemerals = newMap();
	}

	void createNode(string path, string data) {
		nodes.put(path, data);
	}

	void createEphemeral(string path, Session owner) {
		nodes.put(path, owner.id);
		ephemerals.put(path, owner);
	}

	void deleteNode(string path) {
		nodes.remove(path);
		ephemerals.remove(path);
	}

	bool exists(string path) {
		return nodes.has(path);
	}

	void removeEphemeralsFor(Session s) {
		list stale = newList();
		for (p in ephemerals.keys()) {
			if (ephemerals.get(p) == s) {
				stale.add(p);
			}
		}
		for (p in stale) {
			deleteNode(p);
		}
	}
}

class RequestStats {
	int created;
	int rejected;

	void countCreate() {
		created = created + 1;
	}

	void countReject() {
		rejected = rejected + 1;
	}
}

class PrepRequestProcessor {
	DataTree tree;
	RequestStats stats;
	bool traceEnabled;

	void init(DataTree t) {
		tree = t;
		stats = new RequestStats();
		traceEnabled = false;
	}

	void pRequest2TxnCreate(string path, Session s, bool ephemeral) {
		if (traceEnabled) {
			log("pRequest2Txn create " + path);
		}
		if (s == null || s.isClosing()) {
			stats.countReject();
			throw "KeeperException.SessionExpired";
		}
		stats.countCreate();
		if (ephemeral) {
			tree.createEphemeral(path, s);
		} else {
			tree.createNode(path, "");
		}
	}
}
`

// zkEphemeralRouter models the guard-in-caller layering common in request
// pipelines: the internal helper performs the ephemeral creation without
// its own check, and its only production caller enforces the rule. Only
// interprocedural condition inheritance proves these paths safe.
const zkEphemeralRouter = `
class EphemeralHelper {
	DataTree tree;

	void init(DataTree t) {
		tree = t;
	}

	void doRegister(string path, Session sess) {
		tree.createEphemeral(path, sess);
	}
}

class ClientRequestRouter {
	EphemeralHelper helper;

	void init(EphemeralHelper h) {
		helper = h;
	}

	void routeCreate(string path, Session s) {
		if (s == null || s.isClosing()) {
			throw "KeeperException.SessionExpired";
		}
		helper.doRegister(path, s);
	}
}
`

const zkEphemeralTrackerFixed = `
class SessionTracker {
	DataTree tree;
	int touches;
	bool verbose;

	void init(DataTree t) {
		tree = t;
		touches = 0;
		verbose = false;
	}

	void touchSession(string path, Session s) {
		touches = touches + 1;
		if (verbose) {
			log("touch " + path);
		}
		if (s == null || s.isClosing()) {
			return;
		}
		tree.createEphemeral(path, s);
	}
}
`

func caseZkEphemeral() *ticket.Case {
	v2 := zkEphemeralBase + zkEphemeralRouter
	v1 := weaken(v2, "if (s == null || s.isClosing()) {\n			stats.countReject();", "if (s == null) {\n			stats.countReject();")
	v4 := zkEphemeralBase + zkEphemeralRouter + zkEphemeralTrackerFixed
	v3 := weaken(v4, "if (s == null || s.isClosing()) {\n			return;", "if (s == null) {\n			return;")

	tests := []ticket.TestCase{
		{
			Name:        "EphemeralTest.createOnLiveSession",
			Description: "creating an ephemeral node on a live session succeeds and registers the owner",
			Class:       "EphemeralTest", Method: "createOnLiveSession",
			Source: `
class EphemeralTest {
	static void createOnLiveSession() {
		DataTree t = new DataTree();
		PrepRequestProcessor p = new PrepRequestProcessor(t);
		Session s = new Session();
		s.id = "s1";
		s.closing = false;
		p.pRequest2TxnCreate("/brokers/ids/1", s, true);
		assertTrue(t.exists("/brokers/ids/1"), "ephemeral registered");
	}
}
`,
		},
		{
			Name:        "EphemeralTest.createRejectsClosingSession",
			Description: "creating an ephemeral node on a closing session is rejected with SessionExpired",
			Class:       "EphemeralTest", Method: "createRejectsClosingSession",
			Source: `
class EphemeralTest {
	static void createRejectsClosingSession() {
		DataTree t = new DataTree();
		PrepRequestProcessor p = new PrepRequestProcessor(t);
		Session s = new Session();
		s.id = "s2";
		s.closing = true;
		bool rejected = false;
		try {
			p.pRequest2TxnCreate("/brokers/ids/2", s, true);
		} catch (e) {
			rejected = true;
		}
		assertTrue(rejected, "closing session rejected");
		assertTrue(!t.exists("/brokers/ids/2"), "no stale node");
	}
}
`,
		},
		{
			Name:        "EphemeralTest.persistentNodeIgnoresSessionState",
			Description: "persistent node creation path for regular data nodes",
			Class:       "EphemeralTest", Method: "persistentNodeIgnoresSessionState",
			Source: `
class EphemeralTest {
	static void persistentNodeIgnoresSessionState() {
		DataTree t = new DataTree();
		PrepRequestProcessor p = new PrepRequestProcessor(t);
		Session s = new Session();
		s.id = "s3";
		p.pRequest2TxnCreate("/config/topics", s, false);
		assertTrue(t.exists("/config/topics"), "persistent node created");
	}
}
`,
		},
		{
			Name:        "EphemeralTest.cleanupRemovesOwnedNodes",
			Description: "session close removes every ephemeral node owned by the session",
			Class:       "EphemeralTest", Method: "cleanupRemovesOwnedNodes",
			Source: `
class EphemeralTest {
	static void cleanupRemovesOwnedNodes() {
		DataTree t = new DataTree();
		PrepRequestProcessor p = new PrepRequestProcessor(t);
		Session s = new Session();
		s.id = "s4";
		p.pRequest2TxnCreate("/consumers/c1", s, true);
		t.removeEphemeralsFor(s);
		assertTrue(!t.exists("/consumers/c1"), "cleanup removed node");
	}
}
`,
		},
		{
			Name:        "RouterTest.routedCreateOnLiveSession",
			Description: "client request router registers ephemeral node via the internal helper",
			Class:       "RouterTest", Method: "routedCreateOnLiveSession",
			Source: `
class RouterTest {
	static void routedCreateOnLiveSession() {
		DataTree t = new DataTree();
		EphemeralHelper h = new EphemeralHelper(t);
		ClientRequestRouter r = new ClientRequestRouter(h);
		Session s = new Session();
		s.id = "s7";
		s.closing = false;
		r.routeCreate("/routed/a", s);
		assertTrue(t.exists("/routed/a"), "routed registration");
	}
}
`,
		},
		{
			Name:        "TrackerTest.touchRegistersConsumerAddress",
			Description: "session tracker touch registers a consumer address ephemeral node for kafka",
			Class:       "TrackerTest", Method: "touchRegistersConsumerAddress",
			Source: `
class TrackerTest {
	static void touchRegistersConsumerAddress() {
		DataTree t = new DataTree();
		SessionTracker tr = new SessionTracker(t);
		Session s = new Session();
		s.id = "s5";
		s.closing = true;
		tr.touchSession("/consumers/addr", s);
	}
}
`,
		},
	}

	return &ticket.Case{
		ID:      "zk-ephemeral",
		System:  "zksim",
		Feature: "ephemeral nodes",
		Description: "Ephemeral nodes are temporary records that disappear when the client session ends; " +
			"creating one on a closing session leaves stale data that clients keep reading.",
		FirstReported: 2011, LastReported: 2025, FeatureBugCount: 46,
		Tickets: []*ticket.Ticket{
			{
				ID:    "ZKS-1208",
				Title: "Ephemeral node not removed after the client session is long gone",
				Description: "Kafka registered consumer addresses as ephemeral nodes. A race in the " +
					"request pipeline allowed creating an ephemeral node on a session already in the " +
					"CLOSING state; the node survived the session and clients kept querying a dead address.",
				Discussion: []string{
					"Root cause: pRequest2TxnCreate only checks for null sessions.",
					"Reject the create request if the session is closing.",
				},
				BuggySource:     v1,
				FixedSource:     v2,
				RegressionTests: []ticket.TestCase{tests[1]},
			},
			{
				ID:    "ZKS-1496",
				Title: "Ephemeral node not getting cleared even after client has exited",
				Description: "One year later: a new execution path through SessionTracker.touchSession " +
					"reaches the same ephemeral creation logic without the closing-session check. The " +
					"whole kafka cluster got stuck in zombie mode again.",
				Discussion: []string{
					"Same semantics as ZKS-1208, violated on a different path.",
					"The original test only exercised the PrepRequestProcessor workload.",
				},
				BuggySource: v3,
				FixedSource: v4,
				RegressionTests: []ticket.TestCase{
					{
						Name:        "TrackerTest.touchRejectsClosingSession",
						Description: "touch on closing session must not register an ephemeral node",
						Class:       "TrackerTest", Method: "touchRejectsClosingSession",
						Source: `
class TrackerTest {
	static void touchRejectsClosingSession() {
		DataTree t = new DataTree();
		SessionTracker tr = new SessionTracker(t);
		Session s = new Session();
		s.id = "s6";
		s.closing = true;
		tr.touchSession("/consumers/zombie", s);
		assertTrue(!t.exists("/consumers/zombie"), "no zombie registration");
	}
}
`,
					},
				},
			},
		},
		Tests: tests,
	}
}

// ---------------------------------------------------------------------------
// Case 2: zk-sync-serialize — Figure 6 (ZK-2201 -> ZK-3531). Blocking
// serialization inside a synchronized block wedges every writer. The first
// fix rewrote snapshot serialization to copy-then-write; a year later the
// ACL cache's new serializer blocked inside its own synchronized block.
// ---------------------------------------------------------------------------

const zkSyncBase = `
class SyncRequestProcessor {
	list nodes;
	int scount;

	void init() {
		nodes = newList();
		scount = 0;
	}

	void addNode(string path) {
		synchronized (nodes) {
			nodes.add(path);
		}
	}

	void serializeNode(string pathStr) {
		scount = scount + 1;
		list snapshot = newList();
		synchronized (nodes) {
			snapshot.addAll(nodes);
		}
		for (n in snapshot) {
			ioWrite("snap", n);
		}
	}
}
`

const zkSyncACLFixed = `
class ReferenceCountedACLCache {
	map longKeyMap;

	void init() {
		longKeyMap = newMap();
	}

	void addACL(int key, string acl) {
		synchronized (longKeyMap) {
			longKeyMap.put(key, acl);
		}
	}

	void serialize() {
		list entries = newList();
		synchronized (longKeyMap) {
			for (k in longKeyMap.keys()) {
				entries.add(longKeyMap.get(k));
			}
		}
		ioWrite("acl-count", len(entries));
		for (acl in entries) {
			ioWrite("acl", acl);
		}
	}
}
`

func caseZkSyncSerialize() *ticket.Case {
	v2 := zkSyncBase
	v1 := weaken(v2, `		scount = scount + 1;
		list snapshot = newList();
		synchronized (nodes) {
			snapshot.addAll(nodes);
		}
		for (n in snapshot) {
			ioWrite("snap", n);
		}`, `		scount = scount + 1;
		synchronized (nodes) {
			for (n in nodes) {
				ioWrite("snap", n);
			}
		}`)
	v4 := zkSyncBase + zkSyncACLFixed
	v3 := weaken(v4, `		list entries = newList();
		synchronized (longKeyMap) {
			for (k in longKeyMap.keys()) {
				entries.add(longKeyMap.get(k));
			}
		}
		ioWrite("acl-count", len(entries));
		for (acl in entries) {
			ioWrite("acl", acl);
		}`, `		synchronized (longKeyMap) {
			ioWrite("acl-count", longKeyMap.size());
			for (k in longKeyMap.keys()) {
				ioWrite("acl", longKeyMap.get(k));
			}
		}`)

	tests := []ticket.TestCase{
		{
			Name:        "SyncTest.snapshotWritesAllNodes",
			Description: "snapshot serialization writes every node without holding the tree lock",
			Class:       "SyncTest", Method: "snapshotWritesAllNodes",
			Source: `
class SyncTest {
	static void snapshotWritesAllNodes() {
		SyncRequestProcessor sp = new SyncRequestProcessor();
		sp.addNode("/a");
		sp.addNode("/b");
		sp.serializeNode("/");
		assertTrue(sp.scount == 1, "one snapshot pass");
	}
}
`,
		},
		{
			Name:        "SyncTest.aclCacheSerializes",
			Description: "acl cache serialization writes every cached acl entry",
			Class:       "SyncTest", Method: "aclCacheSerializes",
			Source: `
class SyncTest {
	static void aclCacheSerializes() {
		ReferenceCountedACLCache c = new ReferenceCountedACLCache();
		c.addACL(1, "world:anyone");
		c.addACL(2, "digest:admin");
		c.serialize();
		assertTrue(true, "serialized");
	}
}
`,
		},
	}

	return &ticket.Case{
		ID:      "zk-sync-serialize",
		System:  "zksim",
		Feature: "snapshot serialization under locks",
		Description: "Serialization calls that block inside synchronized blocks silently wedge all " +
			"writers — the zombie-cluster failure mode. The rule generalizes beyond any single function: " +
			"no blocking I/O within synchronized blocks.",
		FirstReported: 2015, LastReported: 2019, FeatureBugCount: 11,
		Tickets: []*ticket.Ticket{
			{
				ID:    "ZKS-2201",
				Title: "Network issues cause cluster to hang due to near-deadlock",
				Description: "serializeNode performs blocking writes while holding the node lock; when " +
					"the disk stalled, write operations were silently blocked cluster-wide.",
				Discussion: []string{
					"Copy the nodes under the lock, write outside it.",
					"Lesson: serialization must not block inside synchronized sections.",
				},
				BuggySource:     v1,
				FixedSource:     v2,
				RegressionTests: []ticket.TestCase{tests[0]},
			},
			{
				ID:    "ZKS-3531",
				Title: "Synchronized serialization blocks again, this time in the ACL cache",
				Description: "One year later the new ReferenceCountedACLCache.serialize writes ACL " +
					"entries while holding the cache lock — the same class of stall in a different " +
					"serialization function.",
				Discussion: []string{
					"The ZKS-2201 lesson was encoded as a test for serializeNode only.",
					"Generalize: no blocking I/O within synchronized blocks anywhere.",
				},
				BuggySource:     v3,
				FixedSource:     v4,
				RegressionTests: []ticket.TestCase{tests[1]},
			},
		},
		Tests: tests,
	}
}

// ---------------------------------------------------------------------------
// Case 3: zk-session-expiry — renewing an expired session must be refused,
// or expired clients silently keep their leases.
// ---------------------------------------------------------------------------

const zkExpiryBase = `
class ZSession {
	string id;
	bool expired;

	bool isExpired() {
		return expired;
	}
}

class LeaseStore {
	map leases;

	void init() {
		leases = newMap();
	}

	void renew(ZSession s) {
		leases.put(s.id, "active");
	}

	bool active(string id) {
		return leases.has(id);
	}
}

class SessionManager {
	LeaseStore store;

	void init(LeaseStore st) {
		store = st;
	}

	bool touch(ZSession s) {
		if (s == null || s.isExpired()) {
			return false;
		}
		store.renew(s);
		return true;
	}
}
`

const zkExpiryReadOnlyFixed = `
class ReadOnlyRequestProcessor {
	LeaseStore store;

	void init(LeaseStore st) {
		store = st;
	}

	void processPing(ZSession s) {
		if (s == null || s.isExpired()) {
			throw "SessionExpiredException";
		}
		store.renew(s);
	}
}
`

func caseZkSessionExpiry() *ticket.Case {
	v2 := zkExpiryBase
	v1 := weaken(v2, "if (s == null || s.isExpired()) {\n			return false;", "if (s == null) {\n			return false;")
	v4 := zkExpiryBase + zkExpiryReadOnlyFixed
	v3 := weaken(v4, "if (s == null || s.isExpired()) {\n			throw", "if (s == null) {\n			throw")

	tests := []ticket.TestCase{
		{
			Name:        "ExpiryTest.touchRenewsLiveSession",
			Description: "touching a live session renews its lease in the store",
			Class:       "ExpiryTest", Method: "touchRenewsLiveSession",
			Source: `
class ExpiryTest {
	static void touchRenewsLiveSession() {
		LeaseStore st = new LeaseStore();
		SessionManager m = new SessionManager(st);
		ZSession s = new ZSession();
		s.id = "z1";
		s.expired = false;
		assertTrue(m.touch(s), "touch succeeded");
		assertTrue(st.active("z1"), "lease renewed");
	}
}
`,
		},
		{
			Name:        "ExpiryTest.touchRefusesExpiredSession",
			Description: "touching an expired session must not renew the lease",
			Class:       "ExpiryTest", Method: "touchRefusesExpiredSession",
			Source: `
class ExpiryTest {
	static void touchRefusesExpiredSession() {
		LeaseStore st = new LeaseStore();
		SessionManager m = new SessionManager(st);
		ZSession s = new ZSession();
		s.id = "z2";
		s.expired = true;
		assertTrue(!m.touch(s), "expired touch refused");
		assertTrue(!st.active("z2"), "no lease for expired session");
	}
}
`,
		},
		{
			Name:        "ExpiryTest.pingRenewsThroughReadOnlyPath",
			Description: "read-only ping path renews session leases like touch does",
			Class:       "ExpiryTest", Method: "pingRenewsThroughReadOnlyPath",
			Source: `
class ExpiryTest {
	static void pingRenewsThroughReadOnlyPath() {
		LeaseStore st = new LeaseStore();
		ReadOnlyRequestProcessor ro = new ReadOnlyRequestProcessor(st);
		ZSession s = new ZSession();
		s.id = "z3";
		s.expired = true;
		try {
			ro.processPing(s);
		} catch (e) {
			log(e);
		}
	}
}
`,
		},
	}

	return &ticket.Case{
		ID:      "zk-session-expiry",
		System:  "zksim",
		Feature: "session expiry",
		Description: "An expired session must never have its lease renewed; otherwise dead clients hold " +
			"locks and ephemeral state forever.",
		FirstReported: 2012, LastReported: 2021, FeatureBugCount: 17,
		Tickets: []*ticket.Ticket{
			{
				ID:    "ZKS-1622",
				Title: "Expired session revived by touch",
				Description: "SessionManager.touch renewed leases for sessions that had already expired, " +
					"letting dead clients keep distributed locks.",
				Discussion:      []string{"Add the isExpired check before renewing."},
				BuggySource:     v1,
				FixedSource:     v2,
				RegressionTests: []ticket.TestCase{tests[1]},
			},
			{
				ID:    "ZKS-3056",
				Title: "Read-only ping path revives expired sessions",
				Description: "The new ReadOnlyRequestProcessor introduced a ping path that renews leases " +
					"without the expiry check — the ZKS-1622 semantics violated again.",
				Discussion:      []string{"Same invariant; the ping path bypassed the touch guard."},
				BuggySource:     v3,
				FixedSource:     v4,
				RegressionTests: []ticket.TestCase{tests[2]},
			},
		},
		Tests: tests,
	}
}

// ---------------------------------------------------------------------------
// Case 4: zk-watch-trigger — watch events must only be delivered to
// connected watchers; delivering to a disconnected one loses the event
// permanently (the client never re-registers).
// ---------------------------------------------------------------------------

const zkWatchBase = `
class Watcher {
	string addr;
	bool connected;

	bool isConnected() {
		return connected;
	}
}

class EventDispatcher {
	list delivered;
	list dropped;

	void init() {
		delivered = newList();
		dropped = newList();
	}

	void deliver(Watcher w, string event) {
		delivered.add(w.addr + ":" + event);
	}

	void drop(Watcher w, string event) {
		dropped.add(w.addr + ":" + event);
	}
}

class WatchManager {
	EventDispatcher dispatcher;
	map watchesByPath;

	void init(EventDispatcher d) {
		dispatcher = d;
		watchesByPath = newMap();
	}

	void register(string path, Watcher w) {
		watchesByPath.put(path, w);
	}

	void triggerWatch(string path, string event) {
		if (watchesByPath.has(path)) {
			Watcher w = watchesByPath.get(path);
			if (w.isConnected()) {
				dispatcher.deliver(w, event);
			} else {
				dispatcher.drop(w, event);
			}
		}
	}
}
`

const zkWatchChildFixed = `
class ChildWatchManager {
	EventDispatcher dispatcher;
	map childWatches;

	void init(EventDispatcher d) {
		dispatcher = d;
		childWatches = newMap();
	}

	void register(string parent, Watcher w) {
		childWatches.put(parent, w);
	}

	void triggerChildWatch(string parent, string event) {
		if (childWatches.has(parent)) {
			Watcher w = childWatches.get(parent);
			if (w.isConnected()) {
				dispatcher.deliver(w, event);
			} else {
				dispatcher.drop(w, event);
			}
		}
	}
}
`

func caseZkWatchTrigger() *ticket.Case {
	v2 := zkWatchBase
	v1 := weaken(v2, `			if (w.isConnected()) {
				dispatcher.deliver(w, event);
			} else {
				dispatcher.drop(w, event);
			}`, `			dispatcher.deliver(w, event);`)
	v4 := zkWatchBase + zkWatchChildFixed
	v3 := weaken(v4, `			Watcher w = childWatches.get(parent);
			if (w.isConnected()) {
				dispatcher.deliver(w, event);
			} else {
				dispatcher.drop(w, event);
			}`, `			Watcher w = childWatches.get(parent);
			dispatcher.deliver(w, event);`)

	tests := []ticket.TestCase{
		{
			Name:        "WatchTest.deliverToConnectedWatcher",
			Description: "node data watch event delivered to a connected watcher",
			Class:       "WatchTest", Method: "deliverToConnectedWatcher",
			Source: `
class WatchTest {
	static void deliverToConnectedWatcher() {
		EventDispatcher d = new EventDispatcher();
		WatchManager m = new WatchManager(d);
		Watcher w = new Watcher();
		w.addr = "c1";
		w.connected = true;
		m.register("/a", w);
		m.triggerWatch("/a", "NodeDataChanged");
		assertTrue(d.delivered.size() == 1, "event delivered");
	}
}
`,
		},
		{
			Name:        "WatchTest.dropForDisconnectedWatcher",
			Description: "watch event for a disconnected watcher is dropped not delivered",
			Class:       "WatchTest", Method: "dropForDisconnectedWatcher",
			Source: `
class WatchTest {
	static void dropForDisconnectedWatcher() {
		EventDispatcher d = new EventDispatcher();
		WatchManager m = new WatchManager(d);
		Watcher w = new Watcher();
		w.addr = "c2";
		w.connected = false;
		m.register("/b", w);
		m.triggerWatch("/b", "NodeDeleted");
		assertTrue(d.delivered.size() == 0, "nothing delivered");
		assertTrue(d.dropped.size() == 1, "event dropped");
	}
}
`,
		},
		{
			Name:        "WatchTest.childWatchDelivery",
			Description: "child watch event delivery through the child watch manager",
			Class:       "WatchTest", Method: "childWatchDelivery",
			Source: `
class WatchTest {
	static void childWatchDelivery() {
		EventDispatcher d = new EventDispatcher();
		ChildWatchManager m = new ChildWatchManager(d);
		Watcher w = new Watcher();
		w.addr = "c3";
		w.connected = false;
		m.register("/parent", w);
		m.triggerChildWatch("/parent", "NodeChildrenChanged");
		assertTrue(d.delivered.size() == 0, "disconnected child watcher skipped");
	}
}
`,
		},
	}

	return &ticket.Case{
		ID:      "zk-watch-trigger",
		System:  "zksim",
		Feature: "watch notification",
		Description: "Watch events delivered to disconnected watchers are lost forever; the dispatcher " +
			"must check connectivity and park the event instead.",
		FirstReported: 2013, LastReported: 2022, FeatureBugCount: 9,
		Tickets: []*ticket.Ticket{
			{
				ID:    "ZKS-1853",
				Title: "Watch event lost when client disconnected during trigger",
				Description: "triggerWatch delivered the event to a watcher whose connection had dropped; " +
					"the client never saw the change and cached stale data indefinitely.",
				Discussion:      []string{"Check watcher connectivity; drop-and-park instead of deliver."},
				BuggySource:     v1,
				FixedSource:     v2,
				RegressionTests: []ticket.TestCase{tests[1]},
			},
			{
				ID:    "ZKS-2512",
				Title: "Child watch events lost for disconnected watchers",
				Description: "The child-watch manager added for hierarchical notifications delivers to " +
					"disconnected watchers — the ZKS-1853 semantics violated on the new path.",
				Discussion:      []string{"Same connectivity rule for every dispatcher entry point."},
				BuggySource:     v3,
				FixedSource:     v4,
				RegressionTests: []ticket.TestCase{tests[2]},
			},
		},
		Tests: tests,
	}
}

// ---------------------------------------------------------------------------
// Case 5: zk-quota — writes must be charged against the quota ledger only
// when the quota is not already exceeded, or accounting corrupts.
// ---------------------------------------------------------------------------

const zkQuotaBase = `
class Quota {
	string path;
	bool exceeded;

	bool isExceeded() {
		return exceeded;
	}
}

class QuotaLedger {
	map charges;

	void init() {
		charges = newMap();
	}

	void charge(Quota q, int bytes) {
		int cur = 0;
		if (charges.has(q.path)) {
			cur = charges.get(q.path);
		}
		charges.put(q.path, cur + bytes);
	}

	int charged(string path) {
		if (charges.has(path)) {
			return charges.get(path);
		}
		return 0;
	}
}

class SetDataProcessor {
	QuotaLedger ledger;

	void init(QuotaLedger l) {
		ledger = l;
	}

	void setData(Quota q, int bytes) {
		if (q == null || q.isExceeded()) {
			throw "QuotaExceededException";
		}
		ledger.charge(q, bytes);
	}
}
`

const zkQuotaMultiFixed = `
class MultiTxnProcessor {
	QuotaLedger ledger;

	void init(QuotaLedger l) {
		ledger = l;
	}

	void applyBatch(Quota q, list sizes) {
		if (q == null || q.isExceeded()) {
			throw "QuotaExceededException";
		}
		for (b in sizes) {
			ledger.charge(q, b);
		}
	}
}
`

func caseZkQuota() *ticket.Case {
	v2 := zkQuotaBase
	v1 := weaken(v2, "if (q == null || q.isExceeded()) {\n			throw", "if (q == null) {\n			throw")
	v4 := zkQuotaBase + zkQuotaMultiFixed
	v3 := weaken(v4, `	void applyBatch(Quota q, list sizes) {
		if (q == null || q.isExceeded()) {
			throw "QuotaExceededException";
		}
		for (b in sizes) {`, `	void applyBatch(Quota q, list sizes) {
		if (q == null) {
			throw "QuotaExceededException";
		}
		for (b in sizes) {`)

	tests := []ticket.TestCase{
		{
			Name:        "QuotaTest.setDataChargesLedger",
			Description: "set data charges bytes against the quota ledger",
			Class:       "QuotaTest", Method: "setDataChargesLedger",
			Source: `
class QuotaTest {
	static void setDataChargesLedger() {
		QuotaLedger l = new QuotaLedger();
		SetDataProcessor p = new SetDataProcessor(l);
		Quota q = new Quota();
		q.path = "/app";
		q.exceeded = false;
		p.setData(q, 128);
		assertTrue(l.charged("/app") == 128, "charged");
	}
}
`,
		},
		{
			Name:        "QuotaTest.setDataRejectsExceededQuota",
			Description: "set data on an exceeded quota throws and charges nothing",
			Class:       "QuotaTest", Method: "setDataRejectsExceededQuota",
			Source: `
class QuotaTest {
	static void setDataRejectsExceededQuota() {
		QuotaLedger l = new QuotaLedger();
		SetDataProcessor p = new SetDataProcessor(l);
		Quota q = new Quota();
		q.path = "/full";
		q.exceeded = true;
		bool rejected = false;
		try {
			p.setData(q, 64);
		} catch (e) {
			rejected = true;
		}
		assertTrue(rejected, "rejected");
		assertTrue(l.charged("/full") == 0, "nothing charged");
	}
}
`,
		},
		{
			Name:        "QuotaTest.multiBatchCharges",
			Description: "multi transaction batch charges every write in the batch",
			Class:       "QuotaTest", Method: "multiBatchCharges",
			Source: `
class QuotaTest {
	static void multiBatchCharges() {
		QuotaLedger l = new QuotaLedger();
		MultiTxnProcessor p = new MultiTxnProcessor(l);
		Quota q = new Quota();
		q.path = "/batch";
		q.exceeded = true;
		list sizes = newList();
		sizes.add(10);
		sizes.add(20);
		try {
			p.applyBatch(q, sizes);
		} catch (e) {
			log(e);
		}
	}
}
`,
		},
	}

	return &ticket.Case{
		ID:      "zk-quota",
		System:  "zksim",
		Feature: "quota enforcement",
		Description: "Writes must not be charged once a quota is exceeded; the multi-op path repeated " +
			"the single-op mistake a release later.",
		FirstReported: 2014, LastReported: 2023, FeatureBugCount: 8,
		Tickets: []*ticket.Ticket{
			{
				ID:    "ZKS-2770",
				Title: "setData ignores exceeded quota",
				Description: "SetDataProcessor charged writes against quotas that were already exceeded, " +
					"corrupting accounting and letting tenants blow past limits.",
				Discussion:      []string{"Check isExceeded before charging."},
				BuggySource:     v1,
				FixedSource:     v2,
				RegressionTests: []ticket.TestCase{tests[1]},
			},
			{
				ID:    "ZKS-3301",
				Title: "Multi-op batch bypasses quota check",
				Description: "The new MultiTxnProcessor batch path charges every write without the " +
					"exceeded-quota check — ZKS-2770 all over again.",
				Discussion:      []string{"Every charge site needs the same quota guard."},
				BuggySource:     v3,
				FixedSource:     v4,
				RegressionTests: []ticket.TestCase{tests[2]},
			},
		},
		Tests: tests,
	}
}
