package contract

import (
	"fmt"
	"sort"

	"lisa/internal/callgraph"
	"lisa/internal/interp"
	"lisa/internal/minij"
)

// StructuralRule is a generalized, pattern-level semantic: a system-wide
// behavior class abstracted from a site-specific rule (§3.1, Figure 6:
// "no blocking I/O within synchronized blocks"). Structural rules check
// program structure rather than per-path state predicates.
type StructuralRule interface {
	// Name identifies the rule.
	Name() string
	// Describe states the rule in natural language.
	Describe() string
	// Check statically scans a resolved program for violations.
	Check(prog *minij.Program) []*StructuralViolation
}

// StructuralViolation is one static finding of a structural rule.
type StructuralViolation struct {
	Rule    string
	Method  *minij.Method // method lexically containing the synchronized block
	Stmt    minij.Stmt    // offending statement
	Builtin string        // blocking builtin ultimately reached
	// Chain is the call chain from the synchronized block to the blocking
	// builtin; length 1 means the blocking call is lexically inside the
	// block.
	Chain []string
}

// String renders the violation.
func (v *StructuralViolation) String() string {
	return fmt.Sprintf("%s: %s @%s blocks on %s via %v",
		v.Rule, v.Method.FullName(), v.Stmt.Pos(), v.Builtin, v.Chain)
}

// NoBlockingInSync is the generalized Figure 6 rule: no blocking I/O may
// execute while a synchronized block is held, on any path. The zero value
// is ready to use and applies program-wide; setting Only restricts the rule
// to specific methods (the "literal", non-generalized form of the rule that
// the Figure 6 ablation compares against).
type NoBlockingInSync struct {
	// Only, when non-empty, restricts findings to synchronized blocks
	// inside the named methods ("Class.method").
	Only map[string]bool
}

// Name implements StructuralRule.
func (r NoBlockingInSync) Name() string {
	if len(r.Only) > 0 {
		return "no-blocking-io-in-sync(scoped)"
	}
	return "no-blocking-io-in-sync"
}

// Describe implements StructuralRule.
func (NoBlockingInSync) Describe() string {
	return "No blocking I/O call may execute while a synchronized block is held."
}

// Check implements StructuralRule with an interprocedural may-block
// analysis: a method may block if it directly invokes a blocking builtin or
// (transitively) calls a method that does. Every statement inside a
// synchronized block that directly blocks or calls a may-block method is a
// violation.
func (r NoBlockingInSync) Check(prog *minij.Program) []*StructuralViolation {
	g := callgraph.Build(prog)

	// directBlock maps each method to a blocking builtin it calls directly
	// (outside or inside sync; the lexical position matters only at the
	// sync site).
	directBlock := map[*minij.Method]string{}
	for _, m := range prog.Methods() {
		minij.WalkExprs(m.Body, func(e minij.Expr) {
			call, ok := e.(*minij.Call)
			if !ok || call.Kind != minij.CallBuiltin {
				return
			}
			if minij.IsBlockingBuiltin(call.Name) {
				if _, seen := directBlock[m]; !seen {
					directBlock[m] = call.Name
				}
			}
		})
	}

	// mayBlock fixpoint over the call graph.
	mayBlock := map[*minij.Method]bool{}
	for m := range directBlock {
		mayBlock[m] = true
	}
	for changed := true; changed; {
		changed = false
		for _, m := range prog.Methods() {
			if mayBlock[m] {
				continue
			}
			for _, e := range g.Callees[m] {
				if mayBlock[e.Callee] {
					mayBlock[m] = true
					changed = true
					break
				}
			}
		}
	}

	// blockChain finds a call chain from m to a blocking builtin.
	var blockChain func(m *minij.Method, seen map[*minij.Method]bool) []string
	blockChain = func(m *minij.Method, seen map[*minij.Method]bool) []string {
		if b, ok := directBlock[m]; ok {
			return []string{m.FullName(), "builtin." + b}
		}
		seen[m] = true
		for _, e := range g.Callees[m] {
			if seen[e.Callee] || !mayBlock[e.Callee] {
				continue
			}
			if chain := blockChain(e.Callee, seen); chain != nil {
				return append([]string{m.FullName()}, chain...)
			}
		}
		return nil
	}

	var out []*StructuralViolation
	for _, m := range prog.Methods() {
		if len(r.Only) > 0 && !r.Only[m.FullName()] {
			continue
		}
		minij.WalkStmts(m.Body, func(s minij.Stmt) {
			sync, ok := s.(*minij.Sync)
			if !ok {
				return
			}
			minij.WalkStmts(sync.Body, func(inner minij.Stmt) {
				for _, call := range immediateCalls(inner) {
					switch call.Kind {
					case minij.CallBuiltin:
						if minij.IsBlockingBuiltin(call.Name) {
							out = append(out, &StructuralViolation{
								Rule:    r.Name(),
								Method:  m,
								Stmt:    inner,
								Builtin: call.Name,
								Chain:   []string{"builtin." + call.Name},
							})
						}
					case minij.CallSelf, minij.CallStatic, minij.CallInstance:
						for _, edge := range calleesOf(g, m, call) {
							if !mayBlock[edge] {
								continue
							}
							chain := blockChain(edge, map[*minij.Method]bool{})
							if chain == nil {
								continue
							}
							out = append(out, &StructuralViolation{
								Rule:    r.Name(),
								Method:  m,
								Stmt:    inner,
								Builtin: chain[len(chain)-1],
								Chain:   chain,
							})
						}
					}
				}
			})
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Method.FullName() != out[j].Method.FullName() {
			return out[i].Method.FullName() < out[j].Method.FullName()
		}
		return out[i].Stmt.Pos().Before(out[j].Stmt.Pos())
	})
	return out
}

// calleesOf returns the callee methods of one call expression within m.
func calleesOf(g *callgraph.Graph, m *minij.Method, call *minij.Call) []*minij.Method {
	var out []*minij.Method
	for _, e := range g.Callees[m] {
		if e.Call == call {
			out = append(out, e.Callee)
		}
	}
	return out
}

// RuntimeBlockingMonitor observes an interpreter run and records every
// blocking builtin executed while a lock is held — the dynamic counterpart
// of NoBlockingInSync, used by the CI gate to confirm static findings.
type RuntimeBlockingMonitor struct {
	Events []interp.IOEvent
}

// Attach chains the monitor onto the interpreter's OnBuiltin hook,
// preserving any existing hook.
func (mon *RuntimeBlockingMonitor) Attach(in *interp.Interp) {
	prev := in.Hooks.OnBuiltin
	in.Hooks.OnBuiltin = func(ev interp.IOEvent) {
		if ev.Blocking && ev.LocksHeld > 0 {
			mon.Events = append(mon.Events, ev)
		}
		if prev != nil {
			prev(ev)
		}
	}
}

// Violated reports whether any blocking-under-lock event was observed.
func (mon *RuntimeBlockingMonitor) Violated() bool { return len(mon.Events) > 0 }
