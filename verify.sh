#!/bin/sh
# Full verify: tier-1 (build + all tests), vet, the race-detector suites
# for the packages with concurrency (scheduler worker pool, snapshot
# cache, solver result cache, prefix-pruning walker, fault injector, and
# the serve daemon with its request hammer), the daemon smoke test by
# name (start a real listener, one gate round trip, clean drain), the
# perf-regression gate against the committed counter baseline, and a
# smoke run of the fault-injection matrix. ROADMAP.md points here.
set -ex
go build ./...
go test ./...
go vet ./...
go test -race ./internal/sched/... ./internal/program/... ./internal/faultinject/... ./internal/smt/... ./internal/concolic/... ./internal/server/...
go test -run TestServerSmoke -count=1 ./internal/server
go run ./cmd/lisabench -diff BENCH_5.json
go run ./cmd/lisabench -exp chaos -seed 1
