// Package shard partitions an assertion run's job set across OS processes.
// The unit of partition is the semantic: a stable hash of the semantic ID
// assigns it to exactly one shard, which keeps a semantic's structural,
// site, and dynamic jobs colocated in one process (the dynamic replay job
// reads every site result of its semantic, so splitting a semantic across
// processes would force cross-process result shipping).
//
// The merge protocol is the fingerprint cache: every shard shares one
// on-disk store directory (flock makes concurrent writers safe), each child
// executes only its own semantics and writes their results through, and the
// parent then runs the full job set against the warmed store — every job is
// served from the disk tier, and the parent's ordinary registry-order merge
// produces the report, byte-identical to a sequential run by construction.
package shard

import (
	"hash/fnv"
	"os/exec"
	"strconv"
	"sync"
	"time"

	"lisa/internal/report"
)

// Assign maps an identity (a semantic ID) to a shard in [0, count) by
// stable hash. count <= 1 always assigns shard 0.
func Assign(id string, count int) int {
	if count <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	return int(h.Sum64() % uint64(count))
}

// Spec names one shard of a topology. The zero value (and any Count <= 1)
// means unsharded: every identity is covered.
type Spec struct {
	Index int
	Count int
}

// Enabled reports whether the spec actually partitions anything.
func (s Spec) Enabled() bool { return s.Count > 1 }

// Covers reports whether id's jobs belong to this shard.
func (s Spec) Covers(id string) bool {
	return !s.Enabled() || Assign(id, s.Count) == s.Index
}

// Result is one child shard's outcome: its combined output (for the
// parent's diagnostics), its exit error if any, and its wall clock.
// Setup, when a harness measures it, is the slice of Wall the child spent
// getting ready to assert — opening the shared store and loading (or,
// with a warm handoff, restoring) its snapshots — as opposed to running
// jobs; the stress ledger splits the two so the per-child setup tax is
// visible.
type Result struct {
	Index  int
	Output []byte
	Err    error
	Wall   time.Duration
	Setup  time.Duration
}

// Run launches one child process per shard (cmd(i) builds the i'th
// command), runs them all concurrently, and waits for every one. Results
// come back indexed by shard so the caller's handling is deterministic
// regardless of completion order.
func Run(count int, cmd func(index int) *exec.Cmd) []Result {
	results := make([]Result, count)
	var wg sync.WaitGroup
	for i := 0; i < count; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			out, err := cmd(i).CombinedOutput()
			results[i] = Result{Index: i, Output: out, Err: err, Wall: time.Since(start)}
		}(i)
	}
	wg.Wait()
	return results
}

// Ledger renders the per-shard wall-clock breakdown of a Run plus the
// merge stage that followed it. Shards run concurrently, so the table's
// total exceeds elapsed time; the point is spotting a straggler shard.
// When any result carries a measured Setup, each shard row is split into
// its setup (store open + snapshot load/restore) and assert slices.
func Ledger(results []Result, merge time.Duration) string {
	split := false
	for _, r := range results {
		if r.Setup > 0 {
			split = true
			break
		}
	}
	tm := report.NewTimings()
	for _, r := range results {
		if split {
			tm.Record("shard "+strconv.Itoa(r.Index)+" setup", r.Setup)
			tm.Record("shard "+strconv.Itoa(r.Index)+" assert", r.Wall-r.Setup)
		} else {
			tm.Record("shard "+strconv.Itoa(r.Index), r.Wall)
		}
	}
	tm.Record("merge", merge)
	return tm.Render("Wall clock by shard stage")
}
