package corpus

import (
	"testing"

	"lisa/internal/concolic"
	"lisa/internal/contract"
	"lisa/internal/infer"
	"lisa/internal/interp"
	"lisa/internal/minij"
	"lisa/internal/ticket"
)

// TestSymbolicVerdictsSoundAgainstRuntime is the corpus-wide soundness
// cross-check between the two views of a contract: whenever a test
// dynamically reaches a target site in a state that concretely violates the
// checker (the runtime-monitor view), the recorded symbolic path condition
// must also flag the path (the complement-check view). Conversely, a path
// the symbolic check declares VERIFIED must never be reached in a concretely
// violating state.
func TestSymbolicVerdictsSoundAgainstRuntime(t *testing.T) {
	var hits, concreteViolations int
	for _, cs := range Load().Cases {
		// Collect every state semantic mentioned anywhere in the case.
		pa := &infer.PatchAnalyzer{}
		var sems []*contract.Semantic
		for _, tk := range cs.Tickets {
			res, err := pa.Infer(tk)
			if err != nil {
				t.Fatalf("%s/%s: %v", cs.ID, tk.ID, err)
			}
			for _, sem := range res.Semantics {
				if sem.Kind == contract.StateKind {
					sems = append(sems, sem)
				}
			}
		}
		if len(sems) == 0 {
			continue
		}
		// Exercise every version of the case with every compilable test.
		versions := []string{}
		for _, tk := range cs.Tickets {
			versions = append(versions, tk.BuggySource, tk.FixedSource)
		}
		if cs.Latest != "" {
			versions = append(versions, cs.Latest)
		}
		for _, version := range versions {
			for _, tc := range cs.Tests {
				prog, err := minij.Parse(version + "\n" + tc.Source)
				if err != nil {
					continue
				}
				if err := minij.Check(prog); err != nil {
					continue
				}
				var sites []*contract.Site
				for _, sem := range sems {
					sites = append(sites, contract.Match(sem, prog)...)
				}
				runner := concolic.NewRunner(prog, sites, interp.Options{})
				_ = runner.RunStatic(tc.Name, tc.Class, tc.Method)
				for _, h := range runner.Hits {
					hits++
					v := h.Verdict()
					if h.ConcreteChecker == concolic.TriFalse {
						concreteViolations++
						if v != concolic.VerdictViolation {
							t.Errorf("%s/%s: UNSOUND: concrete state violates %s at %s but symbolic verdict is %v (cond=%s)",
								cs.ID, tc.Name, h.Site.Semantic.ID, h.Site, v, h.Cond)
						}
					}
					if v == concolic.VerdictVerified && h.ConcreteChecker == concolic.TriFalse {
						t.Errorf("%s/%s: verified path reached in violating state at %s", cs.ID, tc.Name, h.Site)
					}
				}
			}
		}
	}
	if hits < 50 {
		t.Errorf("cross-check exercised only %d hits; corpus drive too thin", hits)
	}
	if concreteViolations == 0 {
		t.Error("no concrete violations observed; the cross-check never bit")
	}
	t.Logf("cross-checked %d dynamic hits, %d concretely violating", hits, concreteViolations)
}

// TestConcreteCheckerAgreesOnFixedVersions: on each ticket's fixed source,
// regression tests must never reach a site in a violating state (the fix
// works at runtime, not only symbolically).
func TestConcreteCheckerAgreesOnFixedVersions(t *testing.T) {
	pa := &infer.PatchAnalyzer{}
	for _, cs := range Load().Cases {
		for _, tk := range cs.Tickets {
			res, err := pa.Infer(tk)
			if err != nil {
				t.Fatal(err)
			}
			var sems []*contract.Semantic
			for _, sem := range res.Semantics {
				if sem.Kind == contract.StateKind {
					sems = append(sems, sem)
				}
			}
			if len(sems) == 0 {
				continue
			}
			runTests := func(tests []ticket.TestCase) {
				for _, tc := range tests {
					prog, err := minij.Parse(tk.FixedSource + "\n" + tc.Source)
					if err != nil {
						continue
					}
					if err := minij.Check(prog); err != nil {
						continue
					}
					var sites []*contract.Site
					for _, sem := range sems {
						sites = append(sites, contract.Match(sem, prog)...)
					}
					runner := concolic.NewRunner(prog, sites, interp.Options{})
					_ = runner.RunStatic(tc.Name, tc.Class, tc.Method)
					for _, h := range runner.Hits {
						if h.ConcreteChecker == concolic.TriFalse {
							t.Errorf("%s/%s/%s: fixed version reached %s in violating state",
								cs.ID, tk.ID, tc.Name, h.Site)
						}
					}
				}
			}
			runTests(tk.RegressionTests)
		}
	}
}
