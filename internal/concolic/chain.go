package concolic

import (
	"sort"
	"strings"

	"lisa/internal/callgraph"
	"lisa/internal/contract"
	"lisa/internal/minij"
	"lisa/internal/smt"
)

// maxChainStates bounds the symbolic states carried across each frame of a
// chain.
const maxChainStates = 64

// ChainStaticPaths enumerates static paths to a site along one
// execution-tree chain, inheriting guard conditions from caller frames:
// conditions recorded in a caller that constrain values passed as call
// arguments are renamed into the callee's parameter vocabulary and carried
// down — the interprocedural half of the paper's execution-tree assertion.
// An empty chain reduces to the intraprocedural StaticPaths.
func ChainStaticPaths(prog *minij.Program, site *contract.Site, chain callgraph.Path, opts Options) ([]*StaticPath, bool) {
	if len(chain) == 0 {
		return StaticPaths(prog, site, opts)
	}
	seeds := []*sframe{newSFrame(prog)}
	truncated := false
	for _, edge := range chain {
		stmt := stmtOfCall(prog, edge.Caller, edge.Call)
		if stmt == nil {
			// Should not happen for a well-formed chain; fall back to an
			// unconstrained entry into the callee.
			seeds = []*sframe{newSFrame(prog)}
			continue
		}
		states, trunc := walkStatesTo(prog, edge.Caller, stmt.ID(), maxChainStates, seeds, opts)
		truncated = truncated || trunc
		next := make([]*sframe, 0, len(states))
		dedup := map[string]bool{}
		for _, st := range states {
			child := inheritFrame(prog, st, edge.Callee, edge.Call)
			key := frameKey(child)
			if dedup[key] {
				continue
			}
			dedup[key] = true
			next = append(next, child)
		}
		if len(next) == 0 {
			// No caller path reaches the call site: nothing flows down.
			return nil, truncated
		}
		seeds = next
	}
	paths, trunc := staticPathsFrom(prog, site, opts, seeds)
	return paths, truncated || trunc
}

// stmtOfCall locates the statement of m that directly performs the given
// call expression.
func stmtOfCall(prog *minij.Program, m *minij.Method, call *minij.Call) minij.Stmt {
	var found minij.Stmt
	minij.WalkStmts(m.Body, func(s minij.Stmt) {
		if found != nil {
			return
		}
		minij.WalkExprs(s, func(e minij.Expr) {
			if e == minij.Expr(call) {
				// The *innermost* statement owning the call: refine by
				// checking nested statements later in the walk; WalkStmts
				// visits parents before children, so keep overwriting.
				found = s
			}
		})
	})
	if found == nil {
		return nil
	}
	// Refine to the innermost owning statement.
	inner := found
	minij.WalkStmts(found, func(s minij.Stmt) {
		owns := false
		for _, c := range ownCalls(s) {
			if c == call {
				owns = true
			}
		}
		if owns {
			inner = s
		}
	})
	return inner
}

// ownCalls lists calls belonging to the statement itself (mirrors
// contract's immediate-call notion without exporting it).
func ownCalls(s minij.Stmt) []*minij.Call {
	var out []*minij.Call
	var fromExpr func(e minij.Expr)
	fromExpr = func(e minij.Expr) {
		switch n := e.(type) {
		case *minij.Call:
			out = append(out, n)
			if n.Recv != nil {
				fromExpr(n.Recv)
			}
			for _, a := range n.Args {
				fromExpr(a)
			}
		case *minij.FieldAccess:
			fromExpr(n.Recv)
		case *minij.New:
			for _, a := range n.Args {
				fromExpr(a)
			}
		case *minij.Unary:
			fromExpr(n.X)
		case *minij.Binary:
			fromExpr(n.X)
			fromExpr(n.Y)
		}
	}
	switch n := s.(type) {
	case *minij.VarDecl:
		if n.Init != nil {
			fromExpr(n.Init)
		}
	case *minij.Assign:
		fromExpr(n.Target)
		fromExpr(n.Value)
	case *minij.If:
		fromExpr(n.Cond)
	case *minij.While:
		fromExpr(n.Cond)
	case *minij.ForEach:
		fromExpr(n.Iter)
	case *minij.Return:
		if n.Value != nil {
			fromExpr(n.Value)
		}
	case *minij.Throw:
		fromExpr(n.Value)
	case *minij.Sync:
		fromExpr(n.Lock)
	case *minij.ExprStmt:
		fromExpr(n.E)
	}
	return out
}

// inheritFrame builds the callee's seed state from a caller state at a call
// site: caller conditions over argument values are renamed into parameter
// vocabulary; everything else is dropped (not expressible in the callee).
func inheritFrame(prog *minij.Program, caller *sframe, callee *minij.Method, call *minij.Call) *sframe {
	child := newSFrame(prog)
	// Argument path -> parameter name renames.
	renames := map[string]string{}
	for i, p := range callee.Params {
		if i >= len(call.Args) {
			break
		}
		if t, ok := translateTerm(call.Args[i], caller); ok {
			if t.isPath {
				renames[t.path] = p.Name
			} else if t.isConst {
				// A constant argument becomes a known constant of the
				// parameter (normalization across the call boundary).
				child.consts[p.Name] = t.c
				child.assigned[p.Name] = true
			}
		}
	}
	// Carry renamed constants (caller facts about argument state).
	for path, c := range caller.consts {
		if renamed, ok := renamePath(path, renames); ok {
			child.consts[renamed] = c
		}
	}
	// Carry conditions whose every root renames into parameter vocabulary.
	for _, rc := range caller.conds {
		f, ok := renameFormula(rc.f, renames)
		if !ok {
			continue
		}
		child.conds = append(child.conds, recordedCond{
			f: f,
			guard: GuardStep{
				Guard: rc.guard.Guard + " (inherited)",
				Taken: rc.guard.Taken,
				Pos:   rc.guard.Pos,
			},
			roots: condRoots(f),
		})
	}
	return child
}

// renamePath rewrites a dotted path whose prefix matches an argument path
// into parameter vocabulary.
func renamePath(path string, renames map[string]string) (string, bool) {
	if param, ok := renames[path]; ok {
		return param, true
	}
	for argPath, param := range renames {
		if strings.HasPrefix(path, argPath+".") {
			return param + path[len(argPath):], true
		}
	}
	return "", false
}

// renameFormula rewrites every path of f through renames; ok is false when
// any path does not rename (the condition is not expressible in the
// callee).
func renameFormula(f smt.Formula, renames map[string]string) (smt.Formula, bool) {
	ok := true
	out := smt.MapAtoms(f, func(a smt.Atom) smt.Atom {
		if p, k := renamePath(a.Path, renames); k {
			a.Path = p
		} else {
			ok = false
		}
		if a.Kind == smt.AtomCmpV {
			if p, k := renamePath(a.Path2, renames); k {
				a.Path2 = p
			} else {
				ok = false
			}
		}
		return a
	})
	if !ok {
		return nil, false
	}
	return out, true
}

// frameKey fingerprints a seed state for deduplication.
func frameKey(st *sframe) string {
	var sb strings.Builder
	for _, rc := range st.conds {
		sb.WriteString(rc.f.String())
		sb.WriteByte(';')
	}
	keys := make([]string, 0, len(st.consts))
	for p := range st.consts {
		keys = append(keys, p)
	}
	sort.Strings(keys)
	for _, p := range keys {
		sb.WriteString(p)
		sb.WriteByte('=')
		sb.WriteString(FormatConst(st.consts[p]))
		sb.WriteByte(';')
	}
	return sb.String()
}
