package program

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"lisa/internal/minij"
)

const testSource = `
class Session {
	bool closing;
}

class DataTree {
	map nodes;

	void createEphemeral(string path, Session owner) {
		nodes.put(path, owner);
	}
}

class PrepProcessor {
	DataTree tree;

	void processCreate(string path, Session s) {
		if (s == null || s.closing) {
			throw "KeeperException";
		}
		tree.createEphemeral(path, s);
	}
}
`

// variant returns a distinct compilable source (for filling caches).
func variant(i int) string {
	return fmt.Sprintf("class V%d {\n\tint x;\n\n\tvoid bump() {\n\t\tx = x + %d;\n\t}\n}\n", i, i)
}

func TestLoadBasics(t *testing.T) {
	c := NewCache(8)
	snap, err := c.Load(testSource)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Source() != testSource {
		t.Error("source round-trip mismatch")
	}
	if snap.Hash() != Hash(testSource) {
		t.Error("hash mismatch")
	}
	if snap.Program() == nil || len(snap.Program().Classes) != 3 {
		t.Fatalf("program not compiled: %+v", snap.Program())
	}
	if snap.Canon() == "" || snap.CanonHash() != Hash(snap.Canon()) {
		t.Error("canonical form not captured")
	}
	if snap.MethodCanon("PrepProcessor.processCreate") == "" {
		t.Error("missing method canon")
	}
	if snap.MethodCanon("No.such") != "" {
		t.Error("phantom method canon")
	}
	if !strings.Contains(snap.Shape(), "class PrepProcessor") {
		t.Errorf("shape missing class: %q", snap.Shape())
	}
	if err := snap.Verify(); err != nil {
		t.Errorf("fresh snapshot failed verify: %v", err)
	}
}

// TestReformattedSourceSharesCanon: two formattings of one program are two
// snapshots (raw-content addressing) with identical canonical identity.
func TestReformattedSourceSharesCanon(t *testing.T) {
	c := NewCache(8)
	a, err := c.Load(testSource)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Load(strings.ReplaceAll(testSource, "\t", "    "))
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("distinct raw sources shared a snapshot")
	}
	if a.CanonHash() != b.CanonHash() {
		t.Error("reformatting changed the canonical content address")
	}
}

// TestSnapshotMutationDetected: snapshots hand out a shared AST; a caller
// that mutates it in spite of the contract is caught by Verify.
func TestSnapshotMutationDetected(t *testing.T) {
	c := NewCache(8)
	snap, err := c.Load(testSource)
	if err != nil {
		t.Fatal(err)
	}
	m := snap.Program().Method("PrepProcessor", "processCreate")
	if m == nil {
		t.Fatal("method not found")
	}
	var mutated bool
	minij.WalkStmts(m.Body, func(s minij.Stmt) {
		ifStmt, ok := s.(*minij.If)
		if !ok || mutated {
			return
		}
		bin, ok := ifStmt.Cond.(*minij.Binary)
		if !ok {
			return
		}
		ifStmt.Cond = bin.X // drop the s.closing disjunct
		mutated = true
	})
	if !mutated {
		t.Fatal("no guard to mutate")
	}
	if err := snap.Verify(); err == nil {
		t.Error("mutated snapshot passed Verify")
	}
}

// TestCompileIsPrivate: Compile returns a caller-owned program — mutating
// it leaves the cached snapshot of the same source intact.
func TestCompileIsPrivate(t *testing.T) {
	c := NewCache(8)
	snap, err := c.Load(testSource)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(testSource)
	if err != nil {
		t.Fatal(err)
	}
	if prog == snap.Program() {
		t.Fatal("Compile returned the shared snapshot program")
	}
	m := prog.Method("DataTree", "createEphemeral")
	m.Body.Stmts = nil
	if err := snap.Verify(); err != nil {
		t.Errorf("mutating a Compile copy corrupted the snapshot: %v", err)
	}
}

// TestLRUEvictionDeterminism: the same load sequence on two caches evicts
// the same entries in the same order and ends in the same state.
func TestLRUEvictionDeterminism(t *testing.T) {
	sequence := []string{
		variant(0), variant(1), variant(2), // fills capacity 3
		variant(0),             // refresh 0 → order 0,2,1
		variant(3),             // evicts 1
		variant(1),             // recompile 1, evicts 2
		variant(0), variant(3), // hits
	}
	run := func() *Cache {
		c := NewCache(3)
		for _, src := range sequence {
			if _, err := c.Load(src); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}
	a, b := run(), run()
	if a.Stats() != b.Stats() {
		t.Errorf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	ha, hb := a.Hashes(), b.Hashes()
	if strings.Join(ha, ",") != strings.Join(hb, ",") {
		t.Errorf("residency order diverged: %v vs %v", ha, hb)
	}
	st := a.Stats()
	if st.Entries != 3 || st.Evictions != 2 {
		t.Errorf("entries=%d evictions=%d, want 3 and 2", st.Entries, st.Evictions)
	}
	// 4 distinct sources; variant(1) was evicted and recompiled once.
	if st.Compiles != 5 {
		t.Errorf("compiles=%d, want 5", st.Compiles)
	}
	want := []string{Hash(variant(3)), Hash(variant(0)), Hash(variant(1))}
	if strings.Join(ha, ",") != strings.Join(want, ",") {
		t.Errorf("MRU order = %v, want %v", ha, want)
	}
}

// TestConcurrentLoadSharesOneSnapshot: racing loads of one source compile
// it once and all receive the identical snapshot.
func TestConcurrentLoadSharesOneSnapshot(t *testing.T) {
	c := NewCache(8)
	const n = 16
	snaps := make([]*Snapshot, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			snap, err := c.Load(testSource)
			if err != nil {
				t.Error(err)
				return
			}
			// Exercise the lazy analyses concurrently too.
			_ = snap.Graph()
			_ = snap.MethodCanon("DataTree.createEphemeral")
			_ = snap.Shape()
			snaps[i] = snap
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if snaps[i] != snaps[0] {
			t.Fatalf("load %d returned a different snapshot", i)
		}
	}
	st := c.Stats()
	if st.Compiles != 1 {
		t.Errorf("compiles=%d, want 1", st.Compiles)
	}
	if st.GraphBuilds != 1 {
		t.Errorf("graph builds=%d, want 1", st.GraphBuilds)
	}
	if snaps[0].Graph() == nil {
		t.Error("nil graph")
	}
}

// TestNegativeCaching: a source that fails to compile is cached as a
// failure — the same error comes back without re-parsing.
func TestNegativeCaching(t *testing.T) {
	c := NewCache(8)
	if _, err := c.Load("class Broken {"); err == nil {
		t.Fatal("expected compile error")
	}
	if _, err := c.Load("class Broken {"); err == nil {
		t.Fatal("expected cached compile error")
	}
	if st := c.Stats(); st.Compiles != 1 || st.Hits != 1 {
		t.Errorf("stats=%+v, want 1 compile and 1 hit", st)
	}
}

// TestGraphMemoized: repeated Graph calls return the one build.
func TestGraphMemoized(t *testing.T) {
	c := NewCache(8)
	snap, err := c.Load(testSource)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Graph() != snap.Graph() {
		t.Error("graph rebuilt")
	}
	if st := c.Stats(); st.GraphBuilds != 1 {
		t.Errorf("graph builds=%d, want 1", st.GraphBuilds)
	}
}

// TestDefaultCacheLoad covers the package-level entry points.
func TestDefaultCacheLoad(t *testing.T) {
	before := Stats()
	a, err := Load(testSource)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load(testSource)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("default cache returned distinct snapshots")
	}
	after := Stats()
	if after.Hits <= before.Hits {
		t.Errorf("default cache hits did not advance: %+v → %+v", before, after)
	}
}
