package contract

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"lisa/internal/smt"
)

// ParseSpec compiles developer-authored semantics from the structured
// template the paper proposes in §5 ("provide developers with a structured
// prompt template to describe expected behaviors"): a line-oriented spec in
// which each rule pairs a natural-language description with a
// machine-checkable contract.
//
// State rule:
//
//	rule zk-ephemeral-manual
//	description: No client may create an ephemeral node on a closing session.
//	high-level: Every ephemeral node is deleted once its session ends.
//	target: DataTree.createEphemeral
//	within: PrepRequestProcessor.pRequest2TxnCreate   (optional)
//	bind: session = arg 1
//	bind: tree = receiver                             (zero or more binds)
//	require: session != null && session.closing == false
//
// Structural rule:
//
//	rule no-io-under-locks
//	description: No blocking I/O while a lock is held.
//	structural: no-blocking-io-in-sync
//	only: SyncRequestProcessor.serializeNode, ACLCache.serialize   (optional)
//
// Lines beginning with '#' are comments. Rules end at the next "rule" line
// or end of input. Every parsed rule is validated before being returned.
func ParseSpec(src string) ([]*Semantic, error) {
	var out []*Semantic
	var cur *Semantic
	var curLine int

	flush := func() error {
		if cur == nil {
			return nil
		}
		if cur.Structural == nil {
			cur.Kind = StateKind
		} else {
			cur.Kind = StructuralKind
		}
		if err := cur.Validate(); err != nil {
			return fmt.Errorf("spec: rule ending at line %d: %w", curLine, err)
		}
		out = append(out, cur)
		cur = nil
		return nil
	}

	for i, raw := range strings.Split(src, "\n") {
		lineNo := i + 1
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if name, ok := strings.CutPrefix(line, "rule "); ok {
			if err := flush(); err != nil {
				return nil, err
			}
			cur = &Semantic{ID: strings.TrimSpace(name), Origin: []string{"developer-authored"}}
			curLine = lineNo
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("spec: line %d: %q appears before any \"rule\" line", lineNo, line)
		}
		key, value, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("spec: line %d: expected \"key: value\", got %q", lineNo, line)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		switch key {
		case "description":
			cur.Description = value
		case "high-level":
			cur.HighLevel = value
		case "target":
			cur.Target.Callee = value
		case "within":
			cur.Target.Within = value
		case "bind":
			slot, operand, err := parseBind(value)
			if err != nil {
				return nil, fmt.Errorf("spec: line %d: %w", lineNo, err)
			}
			if cur.Target.Bind == nil {
				cur.Target.Bind = map[string]int{}
			}
			cur.Target.Bind[slot] = operand
		case "require":
			f, err := smt.ParsePredicate(value)
			if err != nil {
				return nil, fmt.Errorf("spec: line %d: %w", lineNo, err)
			}
			cur.Pre = f
		case "ensure":
			f, err := smt.ParsePredicate(value)
			if err != nil {
				return nil, fmt.Errorf("spec: line %d: %w", lineNo, err)
			}
			cur.Post = f
		case "structural":
			switch value {
			case "no-blocking-io-in-sync":
				cur.Structural = NoBlockingInSync{}
			case "no-nested-sync":
				cur.Structural = NoNestedSync{}
			default:
				return nil, fmt.Errorf("spec: line %d: unknown structural rule %q", lineNo, value)
			}
		case "only":
			only := map[string]bool{}
			for _, m := range strings.Split(value, ",") {
				only[strings.TrimSpace(m)] = true
			}
			switch rule := cur.Structural.(type) {
			case NoBlockingInSync:
				rule.Only = only
				cur.Structural = rule
			case NoNestedSync:
				rule.Only = only
				cur.Structural = rule
			default:
				return nil, fmt.Errorf("spec: line %d: \"only\" requires a preceding \"structural\" line", lineNo)
			}
		default:
			return nil, fmt.Errorf("spec: line %d: unknown key %q", lineNo, key)
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("spec: no rules found")
	}
	return out, nil
}

// parseBind parses "slot = arg N" or "slot = receiver".
func parseBind(s string) (slot string, operand int, err error) {
	name, target, ok := strings.Cut(s, "=")
	if !ok {
		return "", 0, fmt.Errorf("bind must be \"slot = arg N\" or \"slot = receiver\", got %q", s)
	}
	slot = strings.TrimSpace(name)
	target = strings.TrimSpace(target)
	if target == "receiver" {
		return slot, ReceiverSlot, nil
	}
	numText, ok := strings.CutPrefix(target, "arg")
	if !ok {
		return "", 0, fmt.Errorf("bind target must be \"arg N\" or \"receiver\", got %q", target)
	}
	n, err := strconv.Atoi(strings.TrimSpace(numText))
	if err != nil || n < 0 {
		return "", 0, fmt.Errorf("bad argument index in %q", target)
	}
	return slot, n, nil
}

// FormatSpec renders semantics back into spec syntax, so mined rules can be
// exported for developer review and re-imported after editing.
func FormatSpec(sems []*Semantic) string {
	var sb strings.Builder
	for i, sem := range sems {
		if i > 0 {
			sb.WriteByte('\n')
		}
		fmt.Fprintf(&sb, "rule %s\n", sem.ID)
		if sem.Description != "" {
			fmt.Fprintf(&sb, "description: %s\n", sem.Description)
		}
		if sem.HighLevel != "" {
			fmt.Fprintf(&sb, "high-level: %s\n", sem.HighLevel)
		}
		if sem.Kind == StructuralKind {
			var name string
			var only map[string]bool
			switch rule := sem.Structural.(type) {
			case NoBlockingInSync:
				name, only = "no-blocking-io-in-sync", rule.Only
			case NoNestedSync:
				name, only = "no-nested-sync", rule.Only
			}
			if name != "" {
				fmt.Fprintf(&sb, "structural: %s\n", name)
				if len(only) > 0 {
					var ms []string
					for m := range only {
						ms = append(ms, m)
					}
					sort.Strings(ms)
					fmt.Fprintf(&sb, "only: %s\n", strings.Join(ms, ", "))
				}
			}
			continue
		}
		fmt.Fprintf(&sb, "target: %s\n", sem.Target.Callee)
		if sem.Target.Within != "" {
			fmt.Fprintf(&sb, "within: %s\n", sem.Target.Within)
		}
		var slots []string
		for slot := range sem.Target.Bind {
			slots = append(slots, slot)
		}
		sort.Strings(slots)
		for _, slot := range slots {
			idx := sem.Target.Bind[slot]
			if idx == ReceiverSlot {
				fmt.Fprintf(&sb, "bind: %s = receiver\n", slot)
			} else {
				fmt.Fprintf(&sb, "bind: %s = arg %d\n", slot, idx)
			}
		}
		if sem.Pre != nil {
			fmt.Fprintf(&sb, "require: %s\n", sem.Pre)
		}
		if sem.Post != nil {
			fmt.Fprintf(&sb, "ensure: %s\n", sem.Post)
		}
	}
	return sb.String()
}
