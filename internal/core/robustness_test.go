package core

import (
	"context"
	"testing"
	"time"

	"lisa/internal/ticket"
)

// spinTest is a test case that busy-loops for ~2e9 iterations before
// touching the guarded site — far longer than any sane assertion run.
// Only cooperative cancellation can end it promptly.
func spinTest() ticket.TestCase {
	return ticket.TestCase{
		Name:        "SpinTest.busyLoop",
		Description: "burns billions of interpreter steps before creating a node",
		Class:       "SpinTest",
		Method:      "busyLoop",
		Source: `
class SpinTest {
	static void busyLoop() {
		int i = 0;
		while (i < 2000000000) {
			i = i + 1;
		}
		PrepProcessor p = new PrepProcessor();
		p.tree = new DataTree();
		p.tree.nodes = newMap();
		Session s = new Session();
		s.closing = false;
		p.processCreate("/spin", s);
	}
}
`,
	}
}

// TestAssertCtxCancelledMidRun: cancelling the context mid-Assert returns
// promptly (well under the interpreter's natural runtime), contains the
// cancellation as a structured job failure, and marks the affected semantic
// INCONCLUSIVE — even with a step budget too large to save us.
func TestAssertCtxCancelledMidRun(t *testing.T) {
	e := New()
	if _, err := e.ProcessTicket(&ticket.Ticket{
		ID:          "ZK-1208",
		Title:       "Ephemeral node on closing session",
		BuggySource: zkBuggy,
		FixedSource: zkFixed,
	}); err != nil {
		t.Fatal(err)
	}
	// A deliberately huge step budget: cancellation, not the budget, must be
	// what stops the spin loop.
	e.Budget.StepBudget = 1 << 30

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cancelAt := make(chan time.Time, 1)
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancelAt <- time.Now()
		cancel()
	}()

	rep, err := e.AssertCtx(ctx, zkFixed, []ticket.TestCase{spinTest()})
	returned := time.Now()
	if err != nil {
		t.Fatalf("cancellation escaped containment: %v", err)
	}
	if lag := returned.Sub(<-cancelAt); lag > 100*time.Millisecond {
		t.Fatalf("Assert returned %v after cancellation, want <100ms", lag)
	}

	cancelled := 0
	for _, sr := range rep.Semantics {
		for _, f := range sr.Failures {
			if f.Reason == FailCancelled {
				cancelled++
			} else {
				t.Errorf("unexpected failure reason %q on %s: %s", f.Reason, sr.Semantic.ID, f.Detail)
			}
		}
		if len(sr.Failures) > 0 {
			if got := sr.Outcome(); got != OutcomeInconclusive {
				t.Errorf("semantic %s with contained failures has outcome %s, want %s",
					sr.Semantic.ID, got, OutcomeInconclusive)
			}
		}
	}
	if cancelled == 0 {
		t.Fatalf("no job reported a cancelled failure; report:\n%s", rep.Render())
	}
	if rep.Counts.Failures != cancelled {
		t.Errorf("Counts.Failures = %d, want %d", rep.Counts.Failures, cancelled)
	}
}
