package experiments

import (
	"fmt"

	"lisa/internal/concolic"
	"lisa/internal/contract"
	"lisa/internal/core"
	"lisa/internal/infer"
	"lisa/internal/report"
	"lisa/internal/smt"
	"lisa/internal/ticket"
)

// ReliabilityPoint is one cell of the E-Q1 sweep.
type ReliabilityPoint struct {
	Noise             float64
	Seeds             int
	RawPrecision      float64
	RawRecall         float64
	CheckedPrecision  float64
	CheckedRecall     float64
	RejectedPerturbed int
}

// ReliabilitySweep runs the §5 Q1 experiment: perturb inference with
// increasing noise and measure rule quality with and without the
// cross-checking defence. Ground truth is the deterministic analyzer's
// output per ticket.
func ReliabilitySweep(c *ticket.Corpus, noises []float64, seeds int) []ReliabilityPoint {
	base := &infer.PatchAnalyzer{Generalize: false}
	var out []ReliabilityPoint
	for _, noise := range noises {
		var rawTP, rawFP, rawFN int
		var ccTP, ccFP, ccFN int
		rejectedPerturbed := 0
		for seed := 0; seed < seeds; seed++ {
			si := &infer.StochasticInferencer{
				Base: base, Seed: int64(seed)*7919 + 13,
				DropRate:        noise,
				MutateRate:      noise,
				HallucinateRate: noise,
			}
			for _, cs := range c.Cases {
				for _, tk := range cs.Tickets {
					truth, err := base.Infer(tk)
					if err != nil || len(truth.Semantics) == 0 {
						continue
					}
					truthIDs := map[string]bool{}
					for _, s := range truth.Semantics {
						truthIDs[s.ID] = true
					}
					noisy, err := si.Infer(tk)
					if err != nil {
						continue
					}
					count := func(sems []*contract.Semantic) (tp, fp int) {
						for _, s := range sems {
							if truthIDs[s.ID] && !infer.IsPerturbed(s.ID) {
								tp++
							} else {
								fp++
							}
						}
						return tp, fp
					}
					tp, fp := count(noisy.Semantics)
					rawTP += tp
					rawFP += fp
					rawFN += len(truthIDs) - tp

					kept, rejected := infer.FilterGrounded(noisy, tk)
					tp, fp = count(kept)
					ccTP += tp
					ccFP += fp
					ccFN += len(truthIDs) - tp
					for _, r := range rejected {
						if infer.IsPerturbed(r.SemanticID) {
							rejectedPerturbed++
						}
					}
				}
			}
		}
		out = append(out, ReliabilityPoint{
			Noise:             noise,
			Seeds:             seeds,
			RawPrecision:      ratio(rawTP, rawTP+rawFP),
			RawRecall:         ratio(rawTP, rawTP+rawFN),
			CheckedPrecision:  ratio(ccTP, ccTP+ccFP),
			CheckedRecall:     ratio(ccTP, ccTP+ccFN),
			RejectedPerturbed: rejectedPerturbed,
		})
	}
	return out
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 1
	}
	return float64(num) / float64(den)
}

// RunReliability renders the E-Q1 sweep.
func RunReliability(c *ticket.Corpus) string {
	points := ReliabilitySweep(c, []float64{0, 0.1, 0.2, 0.3, 0.5}, 5)
	t := &report.Table{
		Title:   "Simulated LLM noise vs rule quality (5 seeds x 34 tickets per cell)",
		Headers: []string{"noise", "raw precision", "raw recall", "cross-checked precision", "cross-checked recall", "perturbed rules rejected"},
	}
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%.1f", p.Noise), p.RawPrecision, p.RawRecall,
			p.CheckedPrecision, p.CheckedRecall, p.RejectedPerturbed)
	}
	t.AddNote("cross-checking mined semantics against actual system behavior keeps precision near 1.0 as noise rises; recall degrades only with dropped rules, which no validator can resurrect.")
	return t.Render()
}

// ComposeResult is one row of the E-Q3 composition study.
type ComposeResult struct {
	CaseID     string
	Rules      int
	Consistent bool
	Entails    bool
}

// ComposeStudy runs the §5 Q3 preliminary study: within each case,
// canonicalize every mined state rule to operand positions, conjoin them,
// and check that the composition is consistent and entails each component —
// the first step toward assembling high-level guarantees from validated
// low-level pieces.
func ComposeStudy(c *ticket.Corpus) []ComposeResult {
	pa := &infer.PatchAnalyzer{}
	var out []ComposeResult
	for _, cs := range c.Cases {
		var canon []smt.Formula
		for _, tk := range cs.Tickets {
			res, err := pa.Infer(tk)
			if err != nil {
				continue
			}
			for _, sem := range res.Semantics {
				if sem.Kind != contract.StateKind {
					continue
				}
				f := sem.Pre
				for slot, idx := range sem.Target.Bind {
					f = smt.RenameRoot(f, slot, fmt.Sprintf("$op%d", idx))
				}
				canon = append(canon, f)
			}
		}
		if len(canon) == 0 {
			continue
		}
		composed := smt.NewAnd(canon...)
		// Solver failures (budget) count against the property: a
		// composition we cannot prove consistent is not a building block.
		consistent, cerr := smt.SATErr(composed)
		res := ComposeResult{
			CaseID:     cs.ID,
			Rules:      len(canon),
			Consistent: consistent && cerr == nil,
			Entails:    true,
		}
		for _, f := range canon {
			entails, eerr := smt.ImpliesErr(composed, f)
			if eerr != nil || !entails {
				res.Entails = false
			}
		}
		out = append(out, res)
	}
	return out
}

// RunCompose renders the E-Q3 study.
func RunCompose(c *ticket.Corpus) string {
	results := ComposeStudy(c)
	t := &report.Table{
		Title:   "Composing per-case low-level semantics",
		Headers: []string{"case", "state rules", "composition consistent", "entails each component"},
	}
	okAll := 0
	for _, r := range results {
		t.AddRow(r.CaseID, r.Rules, report.Bool(r.Consistent), report.Bool(r.Entails))
		if r.Consistent && r.Entails {
			okAll++
		}
	}
	t.AddNote("%d/%d cases compose into a consistent conjunction that entails every component rule — the building-block property the paper's long-term vision needs.", okAll, len(results))
	return t.Render()
}

// RunAblations renders the design-choice ablations called out in DESIGN.md.
func RunAblations(c *ticket.Corpus) string {
	var sb string

	// 1. Relevant-variable pruning on/off: paths recorded per site.
	pr := &report.Table{
		Title:   "Ablation: relevant-variable pruning",
		Headers: []string{"configuration", "logical paths", "violations"},
	}
	for _, noPrune := range []bool{false, true} {
		paths, violations := 0, 0
		for _, cs := range c.Cases {
			e := core.New()
			e.NoPrune = noPrune
			if _, err := e.ProcessTicket(cs.Tickets[0]); err != nil {
				continue
			}
			last := cs.Tickets[len(cs.Tickets)-1]
			rep, err := e.Assert(last.BuggySource, nil)
			if err != nil {
				continue
			}
			paths += rep.Counts.Verified + rep.Counts.Violations + rep.Counts.Unknown
			violations += rep.Counts.Violations
		}
		name := "pruned (paper)"
		if noPrune {
			name = "unpruned"
		}
		pr.AddRow(name, paths, violations)
	}
	pr.AddNote("pruning collapses branch histories over irrelevant variables (audit flags, counters): fewer logical paths to solve and report, no findings lost — an unpruned run duplicates the same violation once per irrelevant branch combination.")
	sb += pr.Render()

	// 2. Complement check vs naive contradiction check on the worked
	// example of §3.2.
	cc := &report.Table{
		Title:   "Ablation: complement check vs naive contradiction check (§3.2 worked example)",
		Headers: []string{"trace condition", "scenario", "complement check", "naive check"},
	}
	checker, err := smt.ParsePredicate(`s != null && s.isClosing() == false && s.ttl > 0`)
	if err != nil {
		cc.AddNote("checker predicate failed to parse: %v", err)
		sb += cc.Render()
		return sb
	}
	traces := []struct {
		cond string
		desc string
	}{
		{`s == null`, "creates on null session"},
		{`s != null && s.isClosing() == false`, "omits the ttl check"},
		{`s != null && s.isClosing() == false && s.ttl > 0`, "full guard"},
	}
	for _, tr := range traces {
		pc, perr := smt.ParsePredicate(tr.cond)
		if perr != nil {
			cc.AddRow(tr.cond, tr.desc, fmt.Sprintf("parse failed: %v", perr), "-")
			continue
		}
		cc.AddRow(tr.cond, tr.desc,
			concolic.CheckPath(pc, checker).String(),
			naiveVerdict(pc, checker).String())
	}
	cc.AddNote("the naive check treats a missing s.ttl condition as satisfied and passes the unguarded trace; the complement check flags it.")
	sb += cc.Render()

	// 3. Interprocedural condition inheritance on/off: without it, guards
	// in callers are invisible and protected internal helpers get flagged.
	ip := &report.Table{
		Title:   "Ablation: interprocedural condition inheritance",
		Headers: []string{"configuration", "violations on fixed heads (false positives)"},
	}
	for _, intraOnly := range []bool{false, true} {
		fps := 0
		for _, cs := range c.Cases {
			e := core.New()
			e.IntraOnly = intraOnly
			if _, err := e.ProcessTicket(cs.Tickets[0]); err != nil {
				continue
			}
			last := cs.Tickets[len(cs.Tickets)-1]
			rep, err := e.Assert(last.FixedSource, nil)
			if err != nil {
				continue
			}
			fps += rep.Counts.Violations
		}
		name := "chain inheritance (paper's execution tree)"
		if intraOnly {
			name = "intraprocedural only"
		}
		ip.AddRow(name, fps)
	}
	ip.AddNote("guard-in-caller layering (e.g. the zksim request router) is only provable with conditions inherited along entry-to-target chains.")
	sb += ip.Render()

	// 4. Test selection vs full-suite replay.
	ts := &report.Table{
		Title:   "Ablation: similarity-based test selection",
		Headers: []string{"configuration", "test executions", "violations"},
	}
	for _, all := range []bool{false, true} {
		runs, violations := 0, 0
		for _, cs := range c.Cases {
			e := core.New()
			e.RunAllTests = all
			if _, err := e.ProcessTicket(cs.Tickets[0]); err != nil {
				continue
			}
			last := cs.Tickets[len(cs.Tickets)-1]
			rep, err := e.Assert(last.BuggySource, availableTests(cs, last))
			if err != nil {
				continue
			}
			runs += rep.TestsRun
			violations += rep.Counts.Violations
		}
		name := "selected top-k (paper)"
		if all {
			name = "full suite"
		}
		ts.AddRow(name, runs, violations)
	}
	ts.AddNote("selection reaches the same verdicts with fewer concrete executions.")
	sb += ts.Render()
	return sb
}

// availableTests returns the case suite minus the given ticket's own
// regression tests (which did not exist when the regression shipped) and
// minus tests that reference classes newer than the ticket's source.
func availableTests(cs *ticket.Case, tk *ticket.Ticket) []ticket.TestCase {
	excluded := map[string]bool{}
	for _, rt := range tk.RegressionTests {
		excluded[rt.Name] = true
	}
	var out []ticket.TestCase
	for _, tc := range cs.Tests {
		if excluded[tc.Name] {
			continue
		}
		if _, err := compileQuiet(tk.BuggySource + "\n" + tc.Source); err != nil {
			continue
		}
		out = append(out, tc)
	}
	return out
}
