// §4 Bug #2 reproduction: the observer-namenode location checks. Rules
// learned from HDF-13924 and HDF-16732 flag the new getBatchedListing path
// at head, which still returns blocks without locations when the block
// report is delayed.
//
//	go run ./examples/hdfs-observer
package main

import (
	"fmt"
	"log"

	"lisa/internal/core"
	"lisa/internal/corpus"
	"lisa/internal/interp"
	"lisa/internal/minij"
)

func main() {
	cs := corpus.Load().Get("hdfs-observer-locations")
	fmt.Printf("Case %s: %s\n\n", cs.ID, cs.Description)

	// First, demonstrate the failure the rule protects against, by driving
	// the latest head directly: a delayed block report leaves a block
	// unlocated, and the batched listing happily returns it.
	prog, err := minij.Parse(cs.Latest + `
class Demo {
	static int delayedReportBatched() {
		BlockManager bm = new BlockManager();
		LocatedBlock b = new LocatedBlock();
		b.blockId = "blk-7";
		b.located = false;
		bm.report(b);
		BatchedListingServer bs = new BatchedListingServer(bm);
		list ids = newList();
		ids.add("blk-7");
		ListingResult r = bs.getBatchedListing(ids, 16);
		return r.entries.size();
	}
}
`)
	if err != nil {
		log.Fatal(err)
	}
	if err := minij.Check(prog); err != nil {
		log.Fatal(err)
	}
	in := interp.New(prog)
	got, err := in.CallStatic("Demo", "delayedReportBatched")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Driving the bug: getBatchedListing returned %v block(s) without locations.\n", got)
	fmt.Println("(getListing and getFileInfo skip such blocks — the protection is inconsistent.)")

	// Now let LISA find it from the history alone.
	engine := core.New()
	for _, tk := range cs.Tickets {
		if _, err := engine.ProcessTicket(tk); err != nil {
			log.Fatal(err)
		}
	}
	ar, err := engine.Assert(cs.Latest, cs.Tests)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nLISA's verdicts over every path to ListingResult.addBlock:")
	for _, sr := range ar.Semantics {
		for _, site := range sr.Sites {
			for _, p := range site.Paths {
				fmt.Printf("  %-9s %s  cond={%s}\n", p.Verdict, site.Site, p.Static.Cond)
			}
		}
	}
	fmt.Printf("\n%d violation(s): the missing location check is reported without ever running the failing workload.\n",
		ar.Counts.Violations)
}
