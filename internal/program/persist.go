package program

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"sort"

	"lisa/internal/faultinject"

	"lisa/internal/callgraph"
	"lisa/internal/minij"
	"lisa/internal/store"
)

// snapNamespace versions the snapshot records in the on-disk store; bump
// it when the record encoding changes so stale stores read as misses.
// snap.v2 records carry the binary AST (minij.EncodeProgram), making
// restore parse-free; snapLegacyNamespace is the PR-7 record shape, still
// readable (via the re-parse path) and migrated to v2 on first restore.
const (
	snapNamespace       = "snap.v2"
	snapLegacyNamespace = "snap.v1"
)

// snapRecord is the persisted form of a fully-warmed snapshot: the binary
// AST (self-checksummed by the codec), the canonical form with its own
// sha256 (the cheap integrity check restore runs every time), the derived
// artifacts that are expensive to recompute, and the call-graph summary.
// The raw source is NOT stored — the record is addressed by
// sha256(source), and a restoring process always holds the source it is
// asking about. Compile-error (negative) entries are never persisted: a
// record's existence asserts that the source compiles.
type snapRecord struct {
	AST      []byte
	Canon    string
	CanonSHA string
	Shape    string
	Methods  map[string]string
	Graph    *callgraph.Summary
}

// The v2 record's wire form is binary, not JSON: a restore happens on
// every cold process and the JSON round-trip (string unescaping of the
// canon and method canons, whole-document validation) was the dominant
// cost of the parse-free path. The envelope is a magic + version header
// followed by length-prefixed fields; integrity comes from three layers
// that already exist — the store's per-frame CRC, the codec's sha256 over
// the AST bytes, and the canon digest — so the envelope itself only needs
// to fail loudly on malformed input (every read is bounds-checked, any
// error degrades the load to a recompute miss).
var recMagic = [4]byte{'M', 'J', 'S', 'R'}

const recVersion = 1

var errBadRecord = errors.New("program: malformed snapshot record")

func encodeRecord(rec *snapRecord) []byte {
	w := recWriter{buf: make([]byte, 0, 256+len(rec.AST)+len(rec.Canon))}
	w.buf = append(w.buf, recMagic[:]...)
	w.buf = binary.BigEndian.AppendUint16(w.buf, recVersion)
	w.str(rec.Canon)
	w.str(rec.CanonSHA)
	w.str(rec.Shape)
	keys := make([]string, 0, len(rec.Methods))
	for k := range rec.Methods {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic bytes for identical records
	w.uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.str(k)
		w.str(rec.Methods[k])
	}
	if rec.Graph == nil {
		w.buf = append(w.buf, 0)
	} else {
		w.buf = append(w.buf, 1)
		w.uvarint(uint64(len(rec.Graph.Edges)))
		for _, e := range rec.Graph.Edges {
			w.str(e.Caller)
			w.str(e.Callee)
			w.uvarint(uint64(e.Line))
			w.uvarint(uint64(e.Col))
			w.bool(e.Dynamic)
		}
	}
	w.uvarint(uint64(len(rec.AST)))
	w.buf = append(w.buf, rec.AST...)
	return w.buf
}

func decodeRecord(raw []byte) (*snapRecord, bool) {
	if len(raw) < 6 || string(raw[:4]) != string(recMagic[:]) ||
		binary.BigEndian.Uint16(raw[4:6]) != recVersion {
		return nil, false
	}
	r := recReader{buf: raw, off: 6}
	rec := &snapRecord{
		Canon:    r.str(),
		CanonSHA: r.str(),
		Shape:    r.str(),
	}
	if n := r.count(2); n > 0 {
		rec.Methods = make(map[string]string, n)
		for i := uint64(0); i < n && r.err == nil; i++ {
			k := r.str()
			rec.Methods[k] = r.str()
		}
	}
	if r.bool() {
		sum := &callgraph.Summary{}
		n := r.count(5)
		for i := uint64(0); i < n && r.err == nil; i++ {
			sum.Edges = append(sum.Edges, callgraph.EdgeSummary{
				Caller:  r.str(),
				Callee:  r.str(),
				Line:    int(r.uvarint()),
				Col:     int(r.uvarint()),
				Dynamic: r.bool(),
			})
		}
		rec.Graph = sum
	}
	rec.AST = r.bytes()
	if r.err != nil || r.off != len(r.buf) {
		return nil, false
	}
	return rec, true
}

type recWriter struct{ buf []byte }

func (w *recWriter) uvarint(n uint64) { w.buf = binary.AppendUvarint(w.buf, n) }
func (w *recWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *recWriter) bool(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// recReader is a sticky-error cursor: the first malformed read poisons
// every later one, so decodeRecord needs a single error check at the end.
type recReader struct {
	buf []byte
	off int
	err error
}

func (r *recReader) fail() {
	if r.err == nil {
		r.err = errBadRecord
	}
}

func (r *recReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// count reads a collection length and rejects any value that could not
// possibly fit in the remaining bytes (minSize bytes per element), so a
// corrupt length cannot drive a huge allocation.
func (r *recReader) count(minSize int) uint64 {
	n := r.uvarint()
	if r.err == nil && n > uint64(len(r.buf)-r.off)/uint64(minSize) {
		r.fail()
		return 0
	}
	return n
}

func (r *recReader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail()
		return nil
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

func (r *recReader) str() string { return string(r.bytes()) }

func (r *recReader) bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.buf) || r.buf[r.off] > 1 {
		r.fail()
		return false
	}
	b := r.buf[r.off] == 1
	r.off++
	return b
}

// snapRecordV1 is the PR-7-era record: no AST, so restoring one re-parses
// the source and re-renders the canon (the path v2 made a sampling knob).
type snapRecordV1 struct {
	Canon   string             `json:"canon"`
	Shape   string             `json:"shape"`
	Methods map[string]string  `json:"methods"`
	Graph   *callgraph.Summary `json:"graph,omitempty"`
}

// SetStore attaches (nil: detaches) the on-disk tier behind this cache.
// Safe to call concurrently with loads.
func (c *Cache) SetStore(st *store.Store) { c.disk.Store(st) }

// CacheName identifies this cache in unified tier stats.
func (c *Cache) CacheName() string { return "snapshot" }

// TierStats reports the two-tier counters in the unified shape. MemHits /
// MemMisses are the LRU's counters; DiskHits counts successful restores,
// split into decoded (binary AST adopted after the canon digest check) and
// verified (full re-parse + re-render comparison: the deep-verify samples
// and every legacy v1 restore); DiskMisses counts absent records and
// records that failed either check.
func (c *Cache) TierStats() store.TierStats {
	c.mu.Lock()
	hits, misses := c.hits, c.misses
	c.mu.Unlock()
	ts := store.TierStats{
		Cache:            c.CacheName(),
		MemHits:          hits,
		MemMisses:        misses,
		DiskHits:         c.restores.Load(),
		DiskMisses:       c.diskMisses.Load(),
		DiskWrites:       c.diskWrites.Load(),
		DiskHitsDecoded:  c.restoresDecoded.Load(),
		DiskHitsVerified: c.restoresVerified.Load(),
	}
	if st := c.disk.Load(); st != nil {
		ts.DiskWriteErrors = st.NamespaceWriteErrors(snapNamespace) +
			st.NamespaceWriteErrors(snapLegacyNamespace)
	}
	return ts
}

var _ store.CacheBackend = (*Cache)(nil)

// compile populates the snapshot exactly once: from the disk tier when a
// verified record exists (v2 binary AST first, legacy v1 as a fallback
// that migrates), else by the full front-end build (which is then
// persisted, so the next process can restore it).
func (s *Snapshot) compile() {
	if s.cache != nil {
		if st := s.cache.disk.Load(); st != nil {
			if raw, ok := st.Get(snapNamespace, s.hash); ok {
				if rec, ok := decodeRecord(raw); ok && s.restore(rec) {
					return
				}
			} else if raw, ok := st.Get(snapLegacyNamespace, s.hash); ok {
				var rec snapRecordV1
				if json.Unmarshal(raw, &rec) == nil && s.restoreLegacy(&rec) {
					// One-time migration: the legacy restore fully
					// verified the AST, so rewrite the record in v2 form —
					// every later process restores it parse-free.
					s.persistRecord(st)
					return
				}
			}
			s.cache.diskMisses.Add(1)
		}
	}
	s.build()
	s.persist()
}

// restore adopts a persisted v2 record. The fast path trusts two
// checksums instead of re-deriving anything: the canonical form must hash
// to the record's digest, and the binary AST must decode (the codec frame
// is itself sha256-sealed, so truncation or bit flips surface here as a
// decode error, never as a wrong AST). Every Nth restore — and every
// restore while a faultinject plan is armed — additionally runs the
// legacy deep verification: re-parse the source, re-render both programs,
// and require byte-identity with the stored canon. Any failure returns
// false and the caller falls back to a full build (a miss, never a wrong
// result). The derived artifacts (shape, per-method canon, graph summary)
// are adopted without recomputation; the graph itself is re-anchored
// lazily on first use.
func (s *Snapshot) restore(rec *snapRecord) bool {
	if Hash(rec.Canon) != rec.CanonSHA {
		return false
	}
	prog, err := minij.DecodeProgram(rec.AST)
	if err != nil {
		return false
	}
	deep := faultinject.Armed() || s.cache.restoreTick.Add(1)%s.cache.deepVerifyInterval() == 0
	if deep {
		if minij.FormatProgram(prog) != rec.Canon {
			return false
		}
		parsed, err := minij.Parse(s.source)
		if err != nil || minij.Check(parsed) != nil || minij.FormatProgram(parsed) != rec.Canon {
			return false
		}
		s.cache.restoresVerified.Add(1)
	} else {
		s.cache.restoresDecoded.Add(1)
	}
	s.adopt(prog, rec.Canon, rec.CanonSHA, rec.Shape, rec.Methods, rec.Graph)
	return true
}

// restoreLegacy adopts a PR-7-era v1 record: the source is re-parsed and
// re-checked (those records carry no AST), and the canonical render must
// byte-match the record — the same Verify() machinery that catches mutated
// snapshots catches stale or corrupt records here.
func (s *Snapshot) restoreLegacy(rec *snapRecordV1) bool {
	prog, err := minij.Parse(s.source)
	if err != nil {
		return false
	}
	if err := minij.Check(prog); err != nil {
		return false
	}
	if minij.FormatProgram(prog) != rec.Canon {
		return false
	}
	s.cache.restoresVerified.Add(1)
	s.adopt(prog, rec.Canon, Hash(rec.Canon), rec.Shape, rec.Methods, rec.Graph)
	return true
}

// adopt installs a restored program and its derived artifacts, bumps the
// restore counter, and fires the program.load fault-injection point on
// restored snapshots exactly as on built ones (after the canon is
// captured), so a chaos run keeps its cold-process fault cadence against
// a warm store.
func (s *Snapshot) adopt(prog *minij.Program, canon, canonHash, shape string, methods map[string]string, graph *callgraph.Summary) {
	s.prog = prog
	s.canon = canon
	s.canonHash = canonHash
	s.restored = true
	if shape != "" {
		s.shapeOnce.Do(func() { s.shape = shape })
	}
	if len(methods) > 0 {
		s.methodsOnce.Do(func() { s.methodCanon = methods })
	}
	s.graphSummary = graph
	s.cache.restores.Add(1)
	if faultinject.Armed() {
		if k, ok := faultinject.At("program.load"); ok && k == faultinject.Corrupt {
			corruptProgram(prog)
		}
	}
}

// persist writes a built snapshot to the disk tier: once right after the
// front-end build (derived artifacts, no graph yet), and again after the
// call graph is first built — the second record supersedes the first, so a
// snapshot whose graph is never requested still restores without a
// compile. A snapshot that fails its own Verify (the program.load
// fault-injection point corrupts the AST after the canon is captured) is
// never persisted, and store.Put additionally drops all writes while a
// faultinject plan is armed — unless the plan is store-scoped
// (faultinject.ScopeStore), in which case the computation is clean and the
// store's own fault handling is what's under test.
func (s *Snapshot) persist() {
	if s.cache == nil || s.err != nil || s.restored {
		return
	}
	st := s.cache.disk.Load()
	if st == nil {
		return
	}
	if s.Verify() != nil {
		return
	}
	s.persistRecord(st)
}

// persistRecord marshals and writes the v2 record for an already-verified
// snapshot (a fresh build, or a legacy restore being migrated).
func (s *Snapshot) persistRecord(st *store.Store) {
	ast, err := minij.EncodeProgram(s.prog)
	if err != nil {
		return
	}
	rec := snapRecord{
		AST:      ast,
		Canon:    s.canon,
		CanonSHA: s.canonHash,
		Shape:    s.Shape(),
		Methods:  s.methodCanons(),
	}
	if s.graph != nil {
		rec.Graph = s.graph.Summary()
	} else if s.graphSummary != nil {
		rec.Graph = s.graphSummary
	}
	st.Put(snapNamespace, s.hash, encodeRecord(&rec))
	s.cache.diskWrites.Add(1)
}

// methodCanons returns the full per-method canonical map, building it once
// through the same path MethodCanon uses.
func (s *Snapshot) methodCanons() map[string]string {
	s.MethodCanon("")
	return s.methodCanon
}
