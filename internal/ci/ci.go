// Package ci implements the enforcement end of the vision: every failure,
// once fixed, becomes an executable contract that a CI/CD pipeline asserts
// against each proposed change, so the same class of mistake cannot merge
// again.
package ci

import (
	"errors"
	"fmt"
	"strings"

	"lisa/internal/concolic"
	"lisa/internal/core"
	"lisa/internal/diffutil"
	"lisa/internal/program"
	"lisa/internal/sched"
	"lisa/internal/ticket"
)

// Change is one proposed code change submitted to the gate.
type Change struct {
	// Author and Summary describe the change (for the gate log).
	Author  string
	Summary string
	// NewSource is the full system source after the change.
	NewSource string
	// OldSource, when non-empty, lets the gate include a patch digest in
	// its report.
	OldSource string
}

// Finding is one gate finding.
type Finding struct {
	Severity string // "BLOCK" or "WARN"
	Text     string
}

// Result is the gate decision for one change.
type Result struct {
	Pass     bool
	Findings []Finding
	Report   *core.AssertReport
	// DiffStat summarizes the change when OldSource was provided.
	DiffStat string
	// Asserted and Skipped partition the registry for this run: Skipped
	// contracts had every job served from the scheduler's fingerprint cache
	// (their previous verdicts are still valid); Asserted contracts
	// executed at least one job. Sequential gates assert everything.
	Asserted int
	Skipped  int
	// Sched carries the scheduler run stats when the gate was scheduled.
	Sched *sched.Stats
}

// GateOptions configure how the gate executes the assertion run.
type GateOptions struct {
	// Scheduler, when set, runs the assertion through the parallel
	// incremental scheduler instead of the sequential engine loop. The
	// scheduler's cache persists across gates, so successive changes reuse
	// unaffected results.
	Scheduler *sched.Scheduler
	// Workers is the scheduler pool width (0 = GOMAXPROCS).
	Workers int
	// Incremental computes the dirty set against Change.OldSource.
	Incremental bool
	// FailOpen downgrades INCONCLUSIVE outcomes (contained job failures,
	// budget-exhausted verdicts, corrupted snapshots) from BLOCK to WARN.
	// The default — fail closed — blocks: a gate that could not finish
	// checking a contract must not let the change merge on partial
	// evidence.
	FailOpen bool
	// Budget, when non-nil, bounds this gate's assertion run, overriding
	// the engine's configured budget for the duration of the call (the
	// engine's own budget is restored before GateWith returns). This lets a
	// long-lived engine shared across requests — the lisa serve daemon —
	// apply per-request limits without staying mutated. Callers that share
	// one engine across goroutines must serialize GateWith calls; the
	// daemon serializes per case.
	Budget *core.Budget
	// ShardIndex/ShardCount restrict a scheduled gate to one shard of the
	// registry (see sched.Options); child processes of a sharded `lisa
	// gate -shards N` set these. Count <= 1 means unsharded.
	ShardIndex int
	ShardCount int
}

// inconclusiveSeverity maps the gate policy to a finding severity.
func inconclusiveSeverity(opts GateOptions) string {
	if opts.FailOpen {
		return "WARN"
	}
	return "BLOCK"
}

// Gate asserts every contract in the engine's registry against the changed
// source, sequentially. Violations block the change; uncovered paths and
// failed sanity checks surface as warnings for developer verdict (per §3.2,
// the developer decides whether missing coverage means a missed test or a
// missed rule).
func Gate(engine *core.Engine, ch Change, tests []ticket.TestCase) (*Result, error) {
	return GateWith(engine, ch, tests, GateOptions{})
}

// GateWith is Gate with an execution strategy. The decision and findings
// are identical for every strategy — the scheduler's merged report is
// byte-compatible with the sequential run — only wall-clock and the
// asserted/skipped split change. The proposed change and (when present)
// the pre-change head are loaded as content-addressed snapshots exactly
// once, shared by every job of the run: the dirty-set diff, the site
// fingerprints, and the assertion stages all consume the same compilation.
func GateWith(engine *core.Engine, ch Change, tests []ticket.TestCase, opts GateOptions) (*Result, error) {
	if opts.Budget != nil {
		prev := engine.Budget
		engine.Budget = *opts.Budget
		defer func() { engine.Budget = prev }()
	}
	newSnap, cerr := engine.LoadSnapshot(ch.NewSource)
	if cerr != nil {
		// A change that does not compile or resolve is itself a block.
		return &Result{
			Pass:     false,
			Findings: []Finding{{Severity: "BLOCK", Text: fmt.Sprintf("change does not build: system source: %v", cerr)}},
		}, nil
	}
	var base *program.Snapshot
	if ch.OldSource != "" {
		// An unloadable base is tolerated: the dirty set then falls back to
		// the source path, which conservatively marks everything dirty.
		base, _ = engine.LoadSnapshot(ch.OldSource)
	}
	var report *core.AssertReport
	var stats *sched.Stats
	var err error
	if opts.Scheduler != nil {
		report, stats, err = opts.Scheduler.AssertSnapshot(engine, newSnap, tests, sched.Options{
			Workers:     opts.Workers,
			Incremental: opts.Incremental,
			Base:        base,
			BaseSource:  ch.OldSource,
			ShardIndex:  opts.ShardIndex,
			ShardCount:  opts.ShardCount,
		})
	} else {
		report, err = engine.AssertSnapshot(newSnap, tests)
	}
	if err != nil {
		if errors.Is(err, program.ErrMutated) {
			// A corrupted snapshot is not the change's fault: the gate
			// could not evaluate the contracts at all. Policy decides —
			// fail closed blocks, fail open warns and passes.
			sev := inconclusiveSeverity(opts)
			return &Result{
				Pass:     opts.FailOpen,
				Findings: []Finding{{Severity: sev, Text: fmt.Sprintf("INCONCLUSIVE: snapshot integrity check failed: %v", err)}},
			}, nil
		}
		// A change that does not compile or resolve is itself a block.
		return &Result{
			Pass:     false,
			Findings: []Finding{{Severity: "BLOCK", Text: fmt.Sprintf("change does not build: %v", err)}},
		}, nil
	}
	res := &Result{Report: report, Sched: stats}
	if stats != nil {
		res.Asserted = stats.AssertedSemantics
		res.Skipped = stats.SkippedSemantics
	} else {
		res.Asserted = engine.Registry.Len()
	}
	if ch.OldSource != "" {
		st := diffutil.DiffStats(diffutil.Diff(ch.OldSource, ch.NewSource))
		res.DiffStat = fmt.Sprintf("+%d -%d lines", st.Added, st.Removed)
	}
	for _, v := range report.Violations() {
		res.Findings = append(res.Findings, Finding{Severity: "BLOCK", Text: v})
	}
	for _, sr := range report.Semantics {
		if sr.Outcome() == core.OutcomeInconclusive {
			res.Findings = append(res.Findings, Finding{
				Severity: inconclusiveSeverity(opts),
				Text:     fmt.Sprintf("[%s] INCONCLUSIVE: %s", sr.Semantic.ID, inconclusiveDetail(sr)),
			})
		}
		if !sr.SanityOK {
			res.Findings = append(res.Findings, Finding{
				Severity: "WARN",
				Text:     fmt.Sprintf("[%s] sanity check failed: no path verifies the rule anywhere", sr.Semantic.ID),
			})
		}
		for _, site := range sr.Sites {
			for _, p := range site.Paths {
				if p.Verdict == concolic.VerdictUnknown {
					res.Findings = append(res.Findings, Finding{
						Severity: "WARN",
						Text:     fmt.Sprintf("[%s] %s: operand not normalizable; developer review needed", sr.Semantic.ID, site.Site),
					})
				}
				for _, tn := range p.PostViolatedBy {
					res.Findings = append(res.Findings, Finding{
						Severity: "BLOCK",
						Text: fmt.Sprintf("[%s] %s: postcondition violated when replayed by %s",
							sr.Semantic.ID, site.Site, tn),
					})
				}
				if !p.Covered() && !report.StaticOnly && p.Verdict == concolic.VerdictVerified {
					res.Findings = append(res.Findings, Finding{
						Severity: "WARN",
						Text: fmt.Sprintf("[%s] %s path {%s}: no selected test exercises this path",
							sr.Semantic.ID, site.Site, p.Static),
					})
				}
			}
		}
	}
	res.Pass = true
	for _, f := range res.Findings {
		if f.Severity == "BLOCK" {
			res.Pass = false
			break
		}
	}
	return res, nil
}

// inconclusiveDetail renders why a semantic's assertion degraded, in
// deterministic order: contained job failures first (job order), then the
// count of budget-starved path checks.
func inconclusiveDetail(sr *core.SemanticReport) string {
	var parts []string
	for _, f := range sr.Failures {
		parts = append(parts, fmt.Sprintf("job %s failed (%s: %s)", f.Job, f.Reason, f.Detail))
	}
	starved := 0
	for _, site := range sr.Sites {
		for _, p := range site.Paths {
			if p.Verdict == concolic.VerdictInconclusive {
				starved++
			}
		}
	}
	if starved > 0 {
		parts = append(parts, fmt.Sprintf("%d path check(s) exhausted the solver budget", starved))
	}
	if len(parts) == 0 {
		parts = append(parts, "dynamic verdicts degraded")
	}
	return strings.Join(parts, "; ")
}

// Summary renders the gate decision as a short log.
func (r *Result) Summary() string {
	var sb strings.Builder
	if r.Pass {
		sb.WriteString("GATE: PASS")
	} else {
		sb.WriteString("GATE: BLOCKED")
	}
	if r.DiffStat != "" {
		sb.WriteString(" (")
		sb.WriteString(r.DiffStat)
		sb.WriteString(")")
	}
	sb.WriteByte('\n')
	if r.Report != nil {
		fmt.Fprintf(&sb, "  contracts: %d asserted, %d skipped (cached)\n", r.Asserted, r.Skipped)
	}
	if s := r.Sched; s != nil {
		fmt.Fprintf(&sb, "  jobs: %d total, %d executed, %d cache hits (workers=%d)\n",
			s.Jobs, s.Executed, s.CacheHits, s.Workers)
		if s.DiskHits > 0 {
			fmt.Fprintf(&sb, "  store: %d job(s) served from the disk tier\n", s.DiskHits)
		}
		if s.Failures > 0 {
			fmt.Fprintf(&sb, "  failures: %d job(s) contained\n", s.Failures)
		}
		if s.DirtyAll {
			sb.WriteString("  dirty: whole program (change not localizable)\n")
		} else if len(s.DirtyMethods) > 0 {
			fmt.Fprintf(&sb, "  dirty: %s (%d of %d jobs impacted)\n",
				strings.Join(s.DirtyMethods, ", "), s.ImpactedJobs, s.Jobs)
		}
	}
	for _, f := range r.Findings {
		fmt.Fprintf(&sb, "  %-5s %s\n", f.Severity, f.Text)
	}
	return sb.String()
}
