package minij

import (
	"fmt"
	"strings"
)

// ResolveError is a static-analysis diagnostic.
type ResolveError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *ResolveError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Resolve statically checks the program: every name must resolve, call
// arities must match, and expressions must be loosely type-consistent
// (container elements are dynamically typed, so TypeAny is accepted
// anywhere). Resolve also classifies every call's Kind, which the
// interpreter and the symbolic engine rely on. It returns all diagnostics
// found.
func Resolve(prog *Program) []*ResolveError {
	prog.ExprTypes = map[Expr]Type{}
	r := &resolver{prog: prog}
	for _, c := range prog.Classes {
		for _, m := range c.Methods {
			r.method(m)
		}
	}
	return r.errs
}

// Check resolves the program and returns a single error summarizing all
// diagnostics, or nil if the program is statically valid.
func Check(prog *Program) error {
	errs := Resolve(prog)
	if len(errs) == 0 {
		return nil
	}
	msgs := make([]string, len(errs))
	for i, e := range errs {
		msgs[i] = e.Error()
	}
	return fmt.Errorf("minij: %d static error(s):\n%s", len(errs), strings.Join(msgs, "\n"))
}

type resolver struct {
	prog *Program
	errs []*ResolveError

	method_ *Method
	scopes  []map[string]Type
}

func (r *resolver) errorf(pos Pos, format string, args ...any) {
	r.errs = append(r.errs, &ResolveError{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (r *resolver) push() { r.scopes = append(r.scopes, map[string]Type{}) }
func (r *resolver) pop()  { r.scopes = r.scopes[:len(r.scopes)-1] }

func (r *resolver) declare(pos Pos, name string, t Type) {
	top := r.scopes[len(r.scopes)-1]
	if _, dup := top[name]; dup {
		r.errorf(pos, "redeclaration of %q", name)
	}
	top[name] = t
}

func (r *resolver) lookup(name string) (Type, bool) {
	for i := len(r.scopes) - 1; i >= 0; i-- {
		if t, ok := r.scopes[i][name]; ok {
			return t, true
		}
	}
	return Type{}, false
}

func (r *resolver) checkDeclaredType(pos Pos, t Type) {
	if t.Kind == TypeObject && r.prog.Class(t.Class) == nil {
		r.errorf(pos, "unknown class %q", t.Class)
	}
}

func (r *resolver) method(m *Method) {
	r.method_ = m
	r.scopes = nil
	r.push()
	r.checkDeclaredType(m.DeclPos, m.Ret)
	for _, p := range m.Params {
		r.checkDeclaredType(m.DeclPos, p.Type)
		r.declare(m.DeclPos, p.Name, p.Type)
	}
	r.stmt(m.Body)
	r.pop()
}

func (r *resolver) stmt(s Stmt) {
	switch n := s.(type) {
	case nil:
	case *Block:
		r.push()
		for _, st := range n.Stmts {
			r.stmt(st)
		}
		r.pop()
	case *VarDecl:
		r.checkDeclaredType(n.Pos(), n.Type)
		if n.Init != nil {
			it := r.expr(n.Init)
			r.requireAssignable(n.Pos(), n.Type, it, "initialize %q", n.Name)
		}
		r.declare(n.Pos(), n.Name, n.Type)
	case *Assign:
		tt := r.lvalue(n.Target)
		vt := r.expr(n.Value)
		r.requireAssignable(n.Pos(), tt, vt, "assign to %s", CanonExpr(n.Target))
	case *If:
		r.requireBool(n.Cond)
		r.stmt(n.Then)
		r.stmt(n.Else)
	case *While:
		r.requireBool(n.Cond)
		r.stmt(n.Body)
	case *For:
		r.push()
		r.stmt(n.Init)
		if n.Cond != nil {
			r.requireBool(n.Cond)
		}
		r.stmt(n.Post)
		r.stmt(n.Body)
		r.pop()
	case *ForEach:
		it := r.expr(n.Iter)
		if it.Kind != TypeList && it.Kind != TypeAny {
			r.errorf(n.Pos(), "foreach requires a list, got %s", it)
		}
		r.push()
		r.declare(n.Pos(), n.Var, Type{Kind: TypeAny})
		r.stmt(n.Body)
		r.pop()
	case *Return:
		if n.Value == nil {
			if r.method_.Ret.Kind != TypeVoid {
				r.errorf(n.Pos(), "missing return value in %s", r.method_.FullName())
			}
			return
		}
		if r.method_.Ret.Kind == TypeVoid {
			r.errorf(n.Pos(), "void method %s returns a value", r.method_.FullName())
			r.expr(n.Value)
			return
		}
		vt := r.expr(n.Value)
		r.requireAssignable(n.Pos(), r.method_.Ret, vt, "return from %s", r.method_.FullName())
	case *Break, *Continue:
	case *Throw:
		vt := r.expr(n.Value)
		if vt.Kind != TypeString && vt.Kind != TypeAny {
			r.errorf(n.Pos(), "throw requires a string, got %s", vt)
		}
	case *Try:
		r.stmt(n.Body)
		r.push()
		r.declare(n.Pos(), n.CatchVar, Type{Kind: TypeString})
		r.stmt(n.Catch)
		r.pop()
	case *Sync:
		lt := r.expr(n.Lock)
		if !lt.IsRef() && lt.Kind != TypeAny {
			r.errorf(n.Pos(), "synchronized requires a reference, got %s", lt)
		}
		r.stmt(n.Body)
	case *ExprStmt:
		if _, ok := n.E.(*Call); !ok {
			if _, ok := n.E.(*New); !ok {
				r.errorf(n.Pos(), "expression statement must be a call")
			}
		}
		r.expr(n.E)
	default:
		r.errorf(s.Pos(), "unhandled statement %T", s)
	}
}

// lvalue resolves an assignment target and returns its declared type.
func (r *resolver) lvalue(e Expr) Type {
	switch n := e.(type) {
	case *Ident:
		if t, ok := r.lookup(n.Name); ok {
			return t
		}
		if !r.method_.Static {
			if f := r.method_.Class.Field(n.Name); f != nil {
				return f.Type
			}
		}
		r.errorf(n.Pos(), "undefined variable %q", n.Name)
		return Type{Kind: TypeAny}
	case *FieldAccess:
		return r.expr(n)
	}
	r.errorf(e.Pos(), "invalid assignment target")
	return Type{Kind: TypeAny}
}

func (r *resolver) requireBool(e Expr) {
	t := r.expr(e)
	if t.Kind != TypeBool && t.Kind != TypeAny {
		r.errorf(e.Pos(), "condition must be bool, got %s", t)
	}
}

// requireAssignable enforces loose assignability: any/null flow freely, and
// reference kinds must otherwise match exactly.
func (r *resolver) requireAssignable(pos Pos, dst, src Type, format string, args ...any) {
	if dst.Kind == TypeAny || src.Kind == TypeAny {
		return
	}
	if src.Kind == TypeNull {
		if !dst.IsRef() {
			r.errorf(pos, "cannot %s: null to %s", fmt.Sprintf(format, args...), dst)
		}
		return
	}
	if dst.Kind != src.Kind {
		r.errorf(pos, "cannot %s: %s to %s", fmt.Sprintf(format, args...), src, dst)
		return
	}
	if dst.Kind == TypeObject && dst.Class != src.Class {
		r.errorf(pos, "cannot %s: %s to %s", fmt.Sprintf(format, args...), src, dst)
	}
}

func (r *resolver) expr(e Expr) Type {
	t := r.exprInner(e)
	r.prog.ExprTypes[e] = t
	return t
}

func (r *resolver) exprInner(e Expr) Type {
	switch n := e.(type) {
	case *IntLit:
		return Type{Kind: TypeInt}
	case *BoolLit:
		return Type{Kind: TypeBool}
	case *StrLit:
		return Type{Kind: TypeString}
	case *NullLit:
		return Type{Kind: TypeNull}
	case *Ident:
		if t, ok := r.lookup(n.Name); ok {
			return t
		}
		if !r.method_.Static {
			if f := r.method_.Class.Field(n.Name); f != nil {
				return f.Type
			}
		}
		if r.prog.Class(n.Name) != nil {
			r.errorf(n.Pos(), "class %q used as a value", n.Name)
			return Type{Kind: TypeAny}
		}
		r.errorf(n.Pos(), "undefined variable %q", n.Name)
		return Type{Kind: TypeAny}
	case *FieldAccess:
		rt := r.exprAsReceiver(n.Recv)
		switch rt.Kind {
		case TypeObject:
			c := r.prog.Class(rt.Class)
			if c == nil {
				return Type{Kind: TypeAny}
			}
			f := c.Field(n.Name)
			if f == nil {
				r.errorf(n.Pos(), "class %s has no field %q", rt.Class, n.Name)
				return Type{Kind: TypeAny}
			}
			return f.Type
		case TypeAny:
			return Type{Kind: TypeAny}
		}
		r.errorf(n.Pos(), "field access on %s value", rt)
		return Type{Kind: TypeAny}
	case *Call:
		return r.call(n)
	case *New:
		c := r.prog.Class(n.Class)
		if c == nil {
			r.errorf(n.Pos(), "unknown class %q", n.Class)
		} else if init := c.Method("init"); init != nil {
			if len(n.Args) != len(init.Params) {
				r.errorf(n.Pos(), "new %s: %d args, init wants %d", n.Class, len(n.Args), len(init.Params))
			}
		} else if len(n.Args) != 0 {
			r.errorf(n.Pos(), "class %s has no init method but new has args", n.Class)
		}
		for _, a := range n.Args {
			r.expr(a)
		}
		return Type{Kind: TypeObject, Class: n.Class}
	case *Unary:
		xt := r.expr(n.X)
		switch n.Op {
		case "!":
			if xt.Kind != TypeBool && xt.Kind != TypeAny {
				r.errorf(n.Pos(), "operator ! requires bool, got %s", xt)
			}
			return Type{Kind: TypeBool}
		case "-":
			if xt.Kind != TypeInt && xt.Kind != TypeAny {
				r.errorf(n.Pos(), "unary - requires int, got %s", xt)
			}
			return Type{Kind: TypeInt}
		}
		r.errorf(n.Pos(), "unknown unary operator %q", n.Op)
		return Type{Kind: TypeAny}
	case *Binary:
		return r.binary(n)
	}
	r.errorf(e.Pos(), "unhandled expression %T", e)
	return Type{Kind: TypeAny}
}

// exprAsReceiver types an expression in receiver position, where a bare
// class name is not an error (it denotes a static namespace; the caller
// decides whether that is legal).
func (r *resolver) exprAsReceiver(e Expr) Type {
	if id, ok := e.(*Ident); ok {
		if _, isVar := r.lookup(id.Name); !isVar {
			isField := !r.method_.Static && r.method_.Class.Field(id.Name) != nil
			if !isField && r.prog.Class(id.Name) != nil {
				r.errorf(id.Pos(), "class %s has no such member access", id.Name)
				return Type{Kind: TypeAny}
			}
		}
	}
	return r.expr(e)
}

func (r *resolver) binary(n *Binary) Type {
	xt := r.expr(n.X)
	yt := r.expr(n.Y)
	anyInvolved := xt.Kind == TypeAny || yt.Kind == TypeAny
	switch n.Op {
	case "&&", "||":
		if !anyInvolved && (xt.Kind != TypeBool || yt.Kind != TypeBool) {
			r.errorf(n.Pos(), "operator %s requires bools, got %s and %s", n.Op, xt, yt)
		}
		return Type{Kind: TypeBool}
	case "==", "!=":
		// Equality is permitted between compatible kinds and against null.
		if !anyInvolved && xt.Kind != TypeNull && yt.Kind != TypeNull && xt.Kind != yt.Kind {
			r.errorf(n.Pos(), "cannot compare %s with %s", xt, yt)
		}
		if (xt.Kind == TypeNull && !yt.IsRef() && yt.Kind != TypeAny) ||
			(yt.Kind == TypeNull && !xt.IsRef() && xt.Kind != TypeAny) {
			r.errorf(n.Pos(), "cannot compare %s with null", nonNullOf(xt, yt))
		}
		return Type{Kind: TypeBool}
	case "<", "<=", ">", ">=":
		if !anyInvolved && (xt.Kind != TypeInt || yt.Kind != TypeInt) {
			r.errorf(n.Pos(), "operator %s requires ints, got %s and %s", n.Op, xt, yt)
		}
		return Type{Kind: TypeBool}
	case "+":
		if xt.Kind == TypeString || yt.Kind == TypeString {
			return Type{Kind: TypeString}
		}
		if anyInvolved {
			return Type{Kind: TypeAny}
		}
		if xt.Kind != TypeInt || yt.Kind != TypeInt {
			r.errorf(n.Pos(), "operator + requires ints or strings, got %s and %s", xt, yt)
		}
		return Type{Kind: TypeInt}
	case "-", "*", "/", "%":
		if !anyInvolved && (xt.Kind != TypeInt || yt.Kind != TypeInt) {
			r.errorf(n.Pos(), "operator %s requires ints, got %s and %s", n.Op, xt, yt)
		}
		return Type{Kind: TypeInt}
	}
	r.errorf(n.Pos(), "unknown operator %q", n.Op)
	return Type{Kind: TypeAny}
}

func nonNullOf(a, b Type) Type {
	if a.Kind == TypeNull {
		return b
	}
	return a
}

// call resolves a call expression, classifying its Kind and checking arity.
func (r *resolver) call(n *Call) Type {
	for _, a := range n.Args {
		r.expr(a)
	}
	// Unqualified call: sibling method or builtin.
	if n.Recv == nil {
		if m := r.method_.Class.Method(n.Name); m != nil {
			n.Kind = CallSelf
			if r.method_.Static && !m.Static {
				r.errorf(n.Pos(), "static method %s calls instance method %s", r.method_.FullName(), m.Name)
			}
			r.checkArity(n, len(m.Params))
			return m.Ret
		}
		if sig, ok := Builtin(n.Name); ok {
			n.Kind = CallBuiltin
			if sig.Arity >= 0 {
				r.checkArity(n, sig.Arity)
			}
			return sig.Ret
		}
		r.errorf(n.Pos(), "undefined function %q", n.Name)
		return Type{Kind: TypeAny}
	}
	// Static call: receiver is a bare class name that is not shadowed by a
	// variable or field.
	if id, ok := n.Recv.(*Ident); ok {
		_, isVar := r.lookup(id.Name)
		isField := !r.method_.Static && r.method_.Class.Field(id.Name) != nil
		if !isVar && !isField {
			if c := r.prog.Class(id.Name); c != nil {
				m := c.Method(n.Name)
				if m == nil {
					r.errorf(n.Pos(), "class %s has no method %q", c.Name, n.Name)
					return Type{Kind: TypeAny}
				}
				if !m.Static {
					r.errorf(n.Pos(), "%s.%s is not static", c.Name, n.Name)
				}
				n.Kind = CallStatic
				r.checkArity(n, len(m.Params))
				return m.Ret
			}
		}
	}
	// Instance call.
	rt := r.expr(n.Recv)
	n.Kind = CallInstance
	switch rt.Kind {
	case TypeObject:
		c := r.prog.Class(rt.Class)
		if c == nil {
			return Type{Kind: TypeAny}
		}
		m := c.Method(n.Name)
		if m == nil {
			r.errorf(n.Pos(), "class %s has no method %q", rt.Class, n.Name)
			return Type{Kind: TypeAny}
		}
		if m.Static {
			r.errorf(n.Pos(), "%s.%s is static; call it on the class", rt.Class, n.Name)
		}
		r.checkArity(n, len(m.Params))
		return m.Ret
	case TypeList, TypeMap:
		arity, ok := ContainerMethod(rt.Kind, n.Name)
		if !ok {
			r.errorf(n.Pos(), "%s has no method %q", rt, n.Name)
			return Type{Kind: TypeAny}
		}
		r.checkArity(n, arity)
		return containerMethodRet(rt.Kind, n.Name)
	case TypeAny:
		return Type{Kind: TypeAny}
	}
	r.errorf(n.Pos(), "method call on %s value", rt)
	return Type{Kind: TypeAny}
}

func containerMethodRet(kind TypeKind, name string) Type {
	switch name {
	case "size":
		return Type{Kind: TypeInt}
	case "contains", "has", "isEmpty", "remove":
		if kind == TypeMap && name == "remove" {
			return Type{Kind: TypeAny}
		}
		return Type{Kind: TypeBool}
	case "keys", "values":
		return Type{Kind: TypeList}
	case "add", "addAll", "put", "clear", "removeAt":
		return Type{Kind: TypeVoid}
	case "get":
		return Type{Kind: TypeAny}
	}
	return Type{Kind: TypeAny}
}

func (r *resolver) checkArity(n *Call, want int) {
	if len(n.Args) != want {
		r.errorf(n.Pos(), "call to %s: %d args, want %d", n.Name, len(n.Args), want)
	}
}
