package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

// TestHistoryRingBounds: the ring keeps the newest cap entries, sequence
// numbers keep growing past eviction, and Last trims from the oldest end.
func TestHistoryRingBounds(t *testing.T) {
	h := NewHistory(4)
	for i := 1; i <= 10; i++ {
		seq := h.Add(HistoryEntry{Kind: "gate", Detail: fmt.Sprintf("e%d", i)})
		if seq != uint64(i) {
			t.Fatalf("Add #%d assigned seq %d", i, seq)
		}
	}
	if h.Len() != 4 {
		t.Fatalf("Len = %d, want 4", h.Len())
	}
	if h.Seq() != 10 {
		t.Fatalf("Seq = %d, want 10", h.Seq())
	}
	all := h.Last(0)
	if len(all) != 4 {
		t.Fatalf("Last(0) = %d entries, want 4", len(all))
	}
	for i, e := range all {
		if want := uint64(7 + i); e.Seq != want {
			t.Errorf("Last(0)[%d].Seq = %d, want %d (oldest retained first)", i, e.Seq, want)
		}
	}
	two := h.Last(2)
	if len(two) != 2 || two[0].Seq != 9 || two[1].Seq != 10 {
		t.Fatalf("Last(2) = %+v, want seqs 9,10", two)
	}
	if got := h.Last(99); len(got) != 4 {
		t.Fatalf("Last(99) = %d entries, want 4", len(got))
	}
}

// TestHistoryPartialRing: before the ring wraps, only written entries are
// returned.
func TestHistoryPartialRing(t *testing.T) {
	h := NewHistory(8)
	h.Add(HistoryEntry{Kind: "gate"})
	h.Add(HistoryEntry{Kind: "assert"})
	got := h.Last(0)
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("Last(0) = %+v", got)
	}
}

// TestHistoryFlush: Flush writes the retained entries as a JSON array,
// oldest first, and leaves the ring intact.
func TestHistoryFlush(t *testing.T) {
	h := NewHistory(3)
	for i := 0; i < 5; i++ {
		h.Add(HistoryEntry{Kind: "gate", Case: "zk-ephemeral", Verdict: "PASS"})
	}
	var buf bytes.Buffer
	if err := h.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	var entries []HistoryEntry
	if err := json.Unmarshal(buf.Bytes(), &entries); err != nil {
		t.Fatalf("flush output is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(entries) != 3 || entries[0].Seq != 3 || entries[2].Seq != 5 {
		t.Fatalf("flushed %+v", entries)
	}
	if h.Len() != 3 {
		t.Fatal("flush must not drain the ring")
	}
}
