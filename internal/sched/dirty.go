package sched

import (
	"fmt"
	"sort"
	"strings"

	"lisa/internal/diffutil"
	"lisa/internal/minij"
)

// Dirty is the impact set of one proposed change: the methods whose
// behavior the change can affect. The incremental gate uses it to report
// which jobs the diff can reach; jobs outside the set are candidates for
// cache service. The classification is conservative: anything the analysis
// cannot localize (parse failures, class/field/signature changes, which
// can reshape resolution and the call graph arbitrarily) marks everything
// dirty.
type Dirty struct {
	// All means the change could not be localized to method bodies.
	All bool
	// Methods maps qualified method names ("Class.method") whose canonical
	// body text changed.
	Methods map[string]bool
	// Stat summarizes the textual diff.
	Stat diffutil.Stats
}

// ComputeDirty diffs two versions of a system source and localizes the
// change to method bodies. Whitespace-only edits produce an empty set:
// method identity is canonical AST text, not source text.
func ComputeDirty(oldSource, newSource string) *Dirty {
	d := &Dirty{Methods: map[string]bool{}}
	edits := diffutil.Diff(oldSource, newSource)
	d.Stat = diffutil.DiffStats(edits)
	if !diffutil.Changed(edits) {
		return d
	}
	oldProg, errOld := minij.Parse(oldSource)
	newProg, errNew := minij.Parse(newSource)
	if errOld != nil || errNew != nil {
		d.All = true
		return d
	}
	if classShape(oldProg) != classShape(newProg) {
		d.All = true
		return d
	}
	old := map[string]string{}
	for _, m := range oldProg.Methods() {
		old[m.FullName()] = minij.FormatMethod(m)
	}
	for _, m := range newProg.Methods() {
		if old[m.FullName()] != minij.FormatMethod(m) {
			d.Methods[m.FullName()] = true
		}
	}
	return d
}

// classShape renders the program's declaration skeleton: class names,
// fields, and method signatures, without bodies. Two programs with equal
// shape differ at most in method bodies, so resolution context outside a
// changed body is preserved.
func classShape(p *minij.Program) string {
	var sb strings.Builder
	for _, c := range p.Classes {
		sb.WriteString("class ")
		sb.WriteString(c.Name)
		sb.WriteByte('\n')
		for _, f := range c.Fields {
			fmt.Fprintf(&sb, "  field %s %s\n", f.Type.String(), f.Name)
		}
		for _, m := range c.Methods {
			fmt.Fprintf(&sb, "  method static=%v %s %s(", m.Static, m.Ret.String(), m.Name)
			for i, p := range m.Params {
				if i > 0 {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, "%s %s", p.Type.String(), p.Name)
			}
			sb.WriteString(")\n")
		}
	}
	return sb.String()
}

// Any reports whether the change affects anything at all.
func (d *Dirty) Any() bool { return d.All || len(d.Methods) > 0 }

// Contains reports whether the named method is dirty.
func (d *Dirty) Contains(fullName string) bool { return d.All || d.Methods[fullName] }

// SortedMethods lists the dirty methods in deterministic order.
func (d *Dirty) SortedMethods() []string {
	out := make([]string, 0, len(d.Methods))
	for name := range d.Methods {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// impactsClosure reports whether any method in a site job's read closure
// is dirty — i.e. whether the diff can reach that job.
func (d *Dirty) impactsClosure(closure []*minij.Method) bool {
	if d.All {
		return true
	}
	for _, m := range closure {
		if d.Methods[m.FullName()] {
			return true
		}
	}
	return false
}
