package sched

import (
	"testing"

	"lisa/internal/corpus"
	"lisa/internal/smt"
)

// TestSolverCacheDoesNotChangeReports: the process-wide solver result
// cache must be invisible in rendered output — for every corpus case the
// sequential engine renders byte-identical reports with the cache cold,
// warm, and disabled entirely.
func TestSolverCacheDoesNotChangeReports(t *testing.T) {
	for _, cs := range corpus.Load().Cases {
		cs := cs
		t.Run(cs.ID, func(t *testing.T) {
			e := engineForCase(t, cs)
			if e.Registry.Len() == 0 {
				t.Skipf("no rules registered for %s", cs.ID)
			}
			smt.ResetQueryCache()
			cold, err := e.Assert(cs.Head(), cs.Tests)
			if err != nil {
				t.Fatal(err)
			}
			warm, err := e.Assert(cs.Head(), cs.Tests)
			if err != nil {
				t.Fatal(err)
			}
			prev := smt.SetQueryCacheEnabled(false)
			off, err := e.Assert(cs.Head(), cs.Tests)
			smt.SetQueryCacheEnabled(prev)
			if err != nil {
				t.Fatal(err)
			}
			if cold.Render() != warm.Render() {
				t.Errorf("warm solver cache changed the report\n--- cold ---\n%s\n--- warm ---\n%s", cold.Render(), warm.Render())
			}
			if cold.Render() != off.Render() {
				t.Errorf("disabling the solver cache changed the report\n--- on ---\n%s\n--- off ---\n%s", cold.Render(), off.Render())
			}
		})
	}
}

// TestStatsCarrySolverDeltas: a scheduled run reports how many solver
// queries it issued; a fresh formula-heavy run must issue at least one.
func TestStatsCarrySolverDeltas(t *testing.T) {
	e := engineWithRule(t)
	s := New()
	_, stats, err := s.Assert(e, sysFixed, testSuite(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SolverQueries == 0 {
		t.Error("cold scheduled run reported zero solver queries")
	}
	if stats.SolverCacheHits > stats.SolverQueries {
		t.Errorf("solver cache hits (%d) exceed queries (%d)", stats.SolverCacheHits, stats.SolverQueries)
	}
}
