package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"lisa/internal/experiments"
	"lisa/internal/program"
	"lisa/internal/report"
	"lisa/internal/smt"
	"lisa/internal/ticket"
)

// The perf-regression gate compares a fresh full-sweep snapshot against a
// committed BENCH_*.json baseline and fails on growth in the tracked
// *cost counters* of the hot paths: solver work (queries, searches, search
// nodes) and snapshot front-end work (compiles, call-graph builds), which
// between them account for the scheduled-assert cost the benchmarks track.
// Counters are compared rather than wall clocks because they are exactly
// reproducible run to run (the sweep is deterministic), so the gate never
// flakes on machine load; wall clocks and hit rates are printed for
// context but do not gate.
const (
	// diffGrowthFactor is the tracked-counter regression threshold: fail
	// when fresh > base × 1.25.
	diffGrowthFactor = 1.25
	// diffSlack is an absolute floor under the relative threshold so tiny
	// baselines (a counter of 4 growing to 6) do not trip the gate.
	diffSlack = 32
)

// trackedCounter is one gated metric extracted from a benchOutput.
type trackedCounter struct {
	name string
	get  func(benchOutput) uint64
}

var trackedCounters = []trackedCounter{
	{"solver.queries", func(b benchOutput) uint64 { return b.Solver.Queries }},
	{"solver.solves", func(b benchOutput) uint64 { return b.Solver.Solves }},
	{"solver.nodes", func(b benchOutput) uint64 { return b.Solver.Nodes }},
	{"snapshot.compiles", func(b benchOutput) uint64 { return b.Snapshot.Compiles }},
	{"snapshot.graph_builds", func(b benchOutput) uint64 { return b.Snapshot.GraphBuilds }},
}

// runDiff executes the full experiment sweep quietly, snapshots the
// counters, and diffs them against the committed baseline. It returns the
// number of regressions (the caller exits non-zero on any).
func runDiff(baselinePath string, c *ticket.Corpus) int {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lisabench: read baseline:", err)
		return 1
	}
	var base benchOutput
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintln(os.Stderr, "lisabench: parse baseline:", err)
		return 1
	}

	tm := report.NewTimings()
	for _, e := range experiments.Registry {
		tm.Time(e.Name, func() { _ = e.Run(c) })
	}
	fresh := benchOutput{
		ExperimentsMS: map[string]float64{},
		Snapshot:      program.Stats(),
		Solver:        smt.Stats(),
	}
	for _, name := range tm.Names() {
		fresh.ExperimentsMS[name] = float64(tm.Get(name)) / float64(time.Millisecond)
	}
	return diffBench(baselinePath, base, fresh)
}

// diffBench prints the comparison and returns the regression count.
func diffBench(baselinePath string, base, fresh benchOutput) int {
	fmt.Printf("perf diff vs %s (gate: tracked counters, fail above ×%.2f%+d)\n",
		baselinePath, diffGrowthFactor, diffSlack)
	regressions := 0
	fmt.Printf("  %-24s %12s %12s %8s\n", "tracked counter", "baseline", "fresh", "ratio")
	for _, tc := range trackedCounters {
		b, f := tc.get(base), tc.get(fresh)
		verdict := "ok"
		if regressedCounter(b, f) {
			verdict = "REGRESSION"
			regressions++
		}
		fmt.Printf("  %-24s %12d %12d %8s  %s\n", tc.name, b, f, ratio(float64(b), float64(f)), verdict)
	}

	// Cache effectiveness, for context: a counter regression above usually
	// shows up here first as a falling hit rate.
	fmt.Printf("  %-24s %12s %12s\n", "hit rate (info)", "baseline", "fresh")
	fmt.Printf("  %-24s %12s %12s\n", "solver cache",
		pct(base.Solver.CacheHits, base.Solver.Queries), pct(fresh.Solver.CacheHits, fresh.Solver.Queries))
	fmt.Printf("  %-24s %12s %12s\n", "snapshot cache",
		pct(base.Snapshot.Hits, base.Snapshot.Hits+base.Snapshot.Misses),
		pct(fresh.Snapshot.Hits, fresh.Snapshot.Hits+fresh.Snapshot.Misses))

	// Wall clocks are machine- and load-dependent, so they inform but
	// never gate.
	var names []string
	for name := range base.ExperimentsMS {
		if _, ok := fresh.ExperimentsMS[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) > 0 {
		fmt.Printf("  %-24s %12s %12s %8s\n", "wall clock ms (info)", "baseline", "fresh", "ratio")
		for _, name := range names {
			b, f := base.ExperimentsMS[name], fresh.ExperimentsMS[name]
			fmt.Printf("  %-24s %12.1f %12.1f %8s\n", name, b, f, ratio(b, f))
		}
	}

	// Committed go-test benchmark numbers (merged into BENCH_*.json by
	// hand) are compared only when both sides carry them — a fresh sweep
	// does not re-run go test.
	benchNames := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		if _, ok := fresh.Benchmarks[name]; ok {
			benchNames = append(benchNames, name)
		}
	}
	sort.Strings(benchNames)
	for _, name := range benchNames {
		b, berr := parseNsPerOp(base.Benchmarks[name])
		f, ferr := parseNsPerOp(fresh.Benchmarks[name])
		if berr != nil || ferr != nil {
			continue
		}
		verdict := "ok"
		if f > b*diffGrowthFactor {
			verdict = "REGRESSION"
			regressions++
		}
		fmt.Printf("  %-40s %12.0f %12.0f %8s  %s\n", name, b, f, ratio(b, f), verdict)
	}

	if regressions > 0 {
		fmt.Printf("perf diff: %d regression(s) past the ×%.2f threshold\n", regressions, diffGrowthFactor)
	} else {
		fmt.Println("perf diff: ok")
	}
	return regressions
}

// regressedCounter applies the gate threshold: relative growth past
// diffGrowthFactor that also clears the absolute slack.
func regressedCounter(base, fresh uint64) bool {
	return float64(fresh) > float64(base)*diffGrowthFactor && fresh-base > diffSlack
}

func ratio(base, fresh float64) string {
	if base == 0 {
		return "—"
	}
	return fmt.Sprintf("%.2f", fresh/base)
}

func pct(hit, total uint64) string {
	if total == 0 {
		return "—"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(hit)/float64(total))
}

// parseNsPerOp parses a go-test benchmark value like "17690 ns/op".
func parseNsPerOp(s string) (float64, error) {
	fields := strings.Fields(s)
	if len(fields) < 2 || fields[1] != "ns/op" {
		return 0, fmt.Errorf("not a ns/op value: %q", s)
	}
	return strconv.ParseFloat(fields[0], 64)
}
