package contract

import (
	"strings"
	"testing"
)

const sampleSpec = `
# Developer-authored semantics for the session subsystem.

rule zk-ephemeral-manual
description: No client may create an ephemeral node on a closing session.
high-level: Every ephemeral node is deleted once its session ends.
target: DataTree.createEphemeral
bind: session = arg 1
require: session != null && session.closing == false

rule snapshot-ttl-manual
description: Expired snapshots are never materialized.
target: SnapshotManager.materialize
within: RestoreHandler.restoreSnapshot
bind: snap = receiver
require: snap.expired == false
ensure: snap.served == true

rule no-io-under-locks
description: No blocking I/O while a lock is held.
structural: no-blocking-io-in-sync
only: SyncRequestProcessor.serializeNode, ACLCache.serialize
`

func TestParseSpec(t *testing.T) {
	sems, err := ParseSpec(sampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(sems) != 3 {
		t.Fatalf("rules = %d, want 3", len(sems))
	}

	eph := sems[0]
	if eph.ID != "zk-ephemeral-manual" || eph.Kind != StateKind {
		t.Errorf("rule 0 = %+v", eph)
	}
	if eph.Target.Callee != "DataTree.createEphemeral" {
		t.Errorf("callee = %q", eph.Target.Callee)
	}
	if eph.Target.Bind["session"] != 1 {
		t.Errorf("bind = %v", eph.Target.Bind)
	}
	if got := eph.Pre.String(); got != "session != null && !(session.closing)" {
		t.Errorf("pre = %q", got)
	}
	if eph.HighLevel == "" || eph.Description == "" {
		t.Error("missing prose fields")
	}

	snap := sems[1]
	if snap.Target.Within != "RestoreHandler.restoreSnapshot" {
		t.Errorf("within = %q", snap.Target.Within)
	}
	if snap.Target.Bind["snap"] != ReceiverSlot {
		t.Errorf("receiver bind = %v", snap.Target.Bind)
	}
	if snap.Post == nil || snap.Post.String() != "snap.served" {
		t.Errorf("post = %v", snap.Post)
	}

	structural := sems[2]
	if structural.Kind != StructuralKind {
		t.Fatalf("rule 2 kind = %v", structural.Kind)
	}
	rule := structural.Structural.(NoBlockingInSync)
	if !rule.Only["SyncRequestProcessor.serializeNode"] || !rule.Only["ACLCache.serialize"] {
		t.Errorf("only = %v", rule.Only)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"", "no rules found"},
		{"description: dangling", "before any \"rule\""},
		{"rule x\ntarget DataTree.create", "expected \"key: value\""},
		{"rule x\nbogus: y\ntarget: A.b\nrequire: p\nbind: p = arg 0", "unknown key"},
		{"rule x\ntarget: A.b\nbind: v = argone\nrequire: v != null", "bad argument index"},
		{"rule x\ntarget: A.b\nbind: v: arg 0", "bind must be"},
		{"rule x\ntarget: A.b\nrequire: v != null", "not bound"},
		{"rule x\nstructural: made-up-rule", "unknown structural rule"},
		{"rule x\nonly: A.b", "requires a preceding"},
		{"rule x\ntarget: A.b\nbind: v = arg 0\nrequire: ((", "expected"},
	}
	for _, c := range cases {
		_, err := ParseSpec(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseSpec(%q) err = %v, want containing %q", c.src, err, c.want)
		}
	}
}

// TestSpecRoundTrip: formatting parsed rules and re-parsing yields
// equivalent rules.
func TestSpecRoundTrip(t *testing.T) {
	first, err := ParseSpec(sampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	text := FormatSpec(first)
	second, err := ParseSpec(text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if len(first) != len(second) {
		t.Fatalf("rule counts differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		a, b := first[i], second[i]
		if a.ID != b.ID || a.Kind != b.Kind || a.Target.Callee != b.Target.Callee {
			t.Errorf("rule %d identity drift: %v vs %v", i, a, b)
		}
		if a.Kind == StateKind && a.Pre.String() != b.Pre.String() {
			t.Errorf("rule %d pre drift: %q vs %q", i, a.Pre, b.Pre)
		}
	}
}

// Authored rules must plug directly into matching, like mined ones.
func TestAuthoredRuleMatches(t *testing.T) {
	prog := compile(t, zkLikeSrc)
	sems, err := ParseSpec(`
rule authored
description: no ephemeral creation on closing sessions
target: DataTree.createEphemeral
bind: session = arg 1
require: session != null && session.closing == false
`)
	if err != nil {
		t.Fatal(err)
	}
	sites := Match(sems[0], prog)
	if len(sites) != 2 {
		t.Errorf("sites = %d, want 2", len(sites))
	}
}
