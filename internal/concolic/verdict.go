package concolic

import (
	"lisa/internal/contract"
	"lisa/internal/smt"
)

// Verdict classifies one path against a semantic.
type Verdict int

// Verdicts.
const (
	// VerdictVerified: the path condition entails the checker; the path
	// cannot violate the semantic.
	VerdictVerified Verdict = iota
	// VerdictViolation: the path condition is satisfiable together with
	// the checker's complement — some state reaching the target on this
	// path breaks the rule (including by omitting a required check).
	VerdictViolation
	// VerdictUnknown: slot operands could not be normalized to paths;
	// the developer must review.
	VerdictUnknown
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictVerified:
		return "VERIFIED"
	case VerdictViolation:
		return "VIOLATION"
	}
	return "UNKNOWN"
}

// CheckerFor instantiates a semantic's precondition over concrete operand
// paths (one per slot). ok is false when any slot lacks a binding.
func CheckerFor(sem *contract.Semantic, bindings map[string]string) (smt.Formula, bool) {
	f := sem.Pre
	for slot := range sem.Target.Bind {
		path, ok := bindings[slot]
		if !ok {
			return nil, false
		}
		f = smt.RenameRoot(f, slot, path)
	}
	return f, true
}

// CheckPath applies the paper's complement check: the path violates the
// semantic iff pathCond ∧ ¬checker is satisfiable. Conditions missing from
// pathCond are unconstrained, so an omitted guard (e.g. a forgotten
// s.ttl > 0 test) surfaces as a violation rather than passing silently.
func CheckPath(pathCond, checker smt.Formula) Verdict {
	if smt.SAT(smt.NewAnd(pathCond, smt.Complement(checker))) {
		return VerdictViolation
	}
	return VerdictVerified
}

// CheckStaticPath computes the verdict of one enumerated static path.
func CheckStaticPath(p *StaticPath) Verdict {
	checker, ok := CheckerFor(p.Site.Semantic, p.Bindings)
	if !ok {
		return VerdictUnknown
	}
	return CheckPath(p.Cond, checker)
}
