package server

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// HistoryEntry is one audited event: a gate or assert request, or a
// watcher pre-warm. Entries carry the verdict, wall clock, and the cache
// deltas the event produced, so an operator can reconstruct what the
// daemon decided and what it cost after the fact.
type HistoryEntry struct {
	// Seq is a monotonically increasing sequence number (never reused,
	// even after older entries fall out of the ring).
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	// Kind is "gate", "assert", or "watch".
	Kind string `json:"kind"`
	Case string `json:"case,omitempty"`
	// Target identifies what the event ran over: the content address of
	// the gated/asserted source (short hash), or the watched file path.
	Target string `json:"target,omitempty"`
	// Verdict is PASS/BLOCKED (gate), PASS/VIOLATED (assert), or
	// PREWARMED (watch).
	Verdict    string     `json:"verdict"`
	Detail     string     `json:"detail,omitempty"`
	Workers    int        `json:"workers,omitempty"`
	DurationMS float64    `json:"duration_ms"`
	Cache      CacheDelta `json:"cache"`
}

// History is a bounded ring of audit entries. When full, the oldest entry
// is overwritten; sequence numbers keep growing so a reader can tell how
// much fell off. All methods are safe for concurrent use.
type History struct {
	mu   sync.Mutex
	cap  int
	seq  uint64
	buf  []HistoryEntry
	next int // index the next entry is written at
	full bool
}

// NewHistory returns an empty ring bounded to capacity entries
// (DefaultHistorySize when capacity <= 0).
func NewHistory(capacity int) *History {
	if capacity <= 0 {
		capacity = DefaultHistorySize
	}
	return &History{cap: capacity, buf: make([]HistoryEntry, capacity)}
}

// Add stamps e with the next sequence number and records it, evicting the
// oldest entry when the ring is full. It returns the assigned sequence.
func (h *History) Add(e HistoryEntry) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.seq++
	e.Seq = h.seq
	h.buf[h.next] = e
	h.next++
	if h.next == h.cap {
		h.next = 0
		h.full = true
	}
	return e.Seq
}

// Len returns the number of entries currently retained.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lenLocked()
}

func (h *History) lenLocked() int {
	if h.full {
		return h.cap
	}
	return h.next
}

// Seq returns the total number of entries ever recorded.
func (h *History) Seq() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seq
}

// Last returns up to n retained entries, oldest first (all of them when
// n <= 0 or n exceeds the retained count).
func (h *History) Last(n int) []HistoryEntry {
	h.mu.Lock()
	defer h.mu.Unlock()
	retained := h.lenLocked()
	if n <= 0 || n > retained {
		n = retained
	}
	out := make([]HistoryEntry, 0, n)
	// Oldest retained entry sits at next when the ring is full, at 0
	// otherwise; skip ahead to the last n.
	start := 0
	if h.full {
		start = h.next
	}
	for i := retained - n; i < retained; i++ {
		out = append(out, h.buf[(start+i)%h.cap])
	}
	return out
}

// Flush writes every retained entry to w as an indented JSON array,
// oldest first. The ring is left intact; Flush is an audit dump, not a
// drain.
func (h *History) Flush(w io.Writer) error {
	entries := h.Last(0)
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
