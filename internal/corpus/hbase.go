package corpus

import "lisa/internal/ticket"

// ---------------------------------------------------------------------------
// Case 10: hbase-snapshot-ttl — §4 Bug #1's family. Expired snapshots must
// never be materialized for clients. Checks were added to restore and then
// clone; the latest head adds export and scan paths without the check —
// the previously unknown bug LISA reports (two unguarded paths).
// ---------------------------------------------------------------------------

const hbaseSnapshotBase = `
class Snapshot {
	string name;
	bool expired;

	bool isExpired() {
		return expired;
	}
}

class SnapshotManager {
	list served;

	void init() {
		served = newList();
	}

	void materialize(Snapshot s, string purpose) {
		served.add(s.name + ":" + purpose);
	}

	int servedCount() {
		return served.size();
	}
}

class RestoreHandler {
	SnapshotManager mgr;
	bool verbose;
	int attempts;

	void init(SnapshotManager m) {
		mgr = m;
		verbose = false;
		attempts = 0;
	}

	void restoreSnapshot(Snapshot s) {
		attempts = attempts + 1;
		if (verbose) {
			log("restore attempt " + str(attempts));
		}
		if (s == null || s.isExpired()) {
			throw "SnapshotTTLExpiredException";
		}
		mgr.materialize(s, "restore");
	}
}
`

const hbaseSnapshotCloneFixed = `
class CloneHandler {
	SnapshotManager mgr;

	void init(SnapshotManager m) {
		mgr = m;
	}

	void cloneSnapshot(Snapshot s, string table) {
		if (s == null || s.isExpired()) {
			throw "SnapshotTTLExpiredException";
		}
		mgr.materialize(s, "clone " + table);
	}
}
`

// hbaseSnapshotLatestExtras are the head-of-tree additions that still miss
// the expiration check on two paths: the HBASE-29296 analogue.
const hbaseSnapshotLatestExtras = `
class ExportHandler {
	SnapshotManager mgr;

	void init(SnapshotManager m) {
		mgr = m;
	}

	void exportSnapshot(Snapshot s, string dest) {
		if (s == null) {
			throw "SnapshotDoesNotExistException";
		}
		mgr.materialize(s, "export " + dest);
	}
}

class ScanHandler {
	SnapshotManager mgr;

	void init(SnapshotManager m) {
		mgr = m;
	}

	void scanSnapshot(Snapshot s) {
		if (s == null) {
			throw "SnapshotDoesNotExistException";
		}
		mgr.materialize(s, "scan");
	}
}
`

func caseHbaseSnapshotTTL() *ticket.Case {
	v2 := hbaseSnapshotBase
	v1 := weaken(v2, "if (s == null || s.isExpired()) {\n			throw \"SnapshotTTLExpiredException\";\n		}\n		mgr.materialize(s, \"restore\");",
		"if (s == null) {\n			throw \"SnapshotDoesNotExistException\";\n		}\n		mgr.materialize(s, \"restore\");")
	v4 := hbaseSnapshotBase + hbaseSnapshotCloneFixed
	v3 := weaken(v4, "if (s == null || s.isExpired()) {\n			throw \"SnapshotTTLExpiredException\";\n		}\n		mgr.materialize(s, \"clone \" + table);",
		"if (s == null) {\n			throw \"SnapshotDoesNotExistException\";\n		}\n		mgr.materialize(s, \"clone \" + table);")
	latest := v4 + hbaseSnapshotLatestExtras

	tests := []ticket.TestCase{
		{
			Name:        "SnapshotTest.restoreFreshSnapshot",
			Description: "restoring a fresh snapshot within its TTL succeeds",
			Class:       "SnapshotTest", Method: "restoreFreshSnapshot",
			Source: `
class SnapshotTest {
	static void restoreFreshSnapshot() {
		SnapshotManager m = new SnapshotManager();
		RestoreHandler r = new RestoreHandler(m);
		Snapshot s = new Snapshot();
		s.name = "snap1";
		s.expired = false;
		r.restoreSnapshot(s);
		assertTrue(m.servedCount() == 1, "restored");
	}
}
`,
		},
		{
			Name:        "SnapshotTest.restoreRejectsExpiredSnapshot",
			Description: "restoring a snapshot after its TTL elapsed throws",
			Class:       "SnapshotTest", Method: "restoreRejectsExpiredSnapshot",
			Source: `
class SnapshotTest {
	static void restoreRejectsExpiredSnapshot() {
		SnapshotManager m = new SnapshotManager();
		RestoreHandler r = new RestoreHandler(m);
		Snapshot s = new Snapshot();
		s.name = "snap2";
		s.expired = true;
		bool rejected = false;
		try {
			r.restoreSnapshot(s);
		} catch (e) {
			rejected = true;
		}
		assertTrue(rejected, "expired restore rejected");
		assertTrue(m.servedCount() == 0, "nothing served");
	}
}
`,
		},
		{
			Name:        "SnapshotTest.cloneChecksTTL",
			Description: "cloning an expired snapshot to a new table must be rejected",
			Class:       "SnapshotTest", Method: "cloneChecksTTL",
			Source: `
class SnapshotTest {
	static void cloneChecksTTL() {
		SnapshotManager m = new SnapshotManager();
		CloneHandler c = new CloneHandler(m);
		Snapshot s = new Snapshot();
		s.name = "snap3";
		s.expired = true;
		try {
			c.cloneSnapshot(s, "t1");
		} catch (e) {
			log(e);
		}
		assertTrue(m.servedCount() == 0, "expired clone not served");
	}
}
`,
		},
		{
			Name:        "SnapshotTest.exportSnapshotCopies",
			Description: "export snapshot copies the snapshot to the destination",
			Class:       "SnapshotTest", Method: "exportSnapshotCopies",
			Source: `
class SnapshotTest {
	static void exportSnapshotCopies() {
		SnapshotManager m = new SnapshotManager();
		ExportHandler x = new ExportHandler(m);
		Snapshot s = new Snapshot();
		s.name = "snap4";
		s.expired = true;
		x.exportSnapshot(s, "hdfs://backup");
	}
}
`,
		},
	}

	return &ticket.Case{
		ID:      "hbase-snapshot-ttl",
		System:  "hbasesim",
		Feature: "snapshot TTL expiration",
		Description: "Expired snapshots served to clients return stale data without any alarm; every " +
			"path that materializes a snapshot needs the TTL check.",
		FirstReported: 2023, LastReported: 2025, FeatureBugCount: 7,
		Tickets: []*ticket.Ticket{
			{
				ID:    "HBS-27671",
				Title: "Client should not be able to restore/clone a snapshot after its ttl has expired",
				Description: "Restore served snapshots whose TTL had elapsed; clients silently read " +
					"stale data.",
				Discussion:      []string{"Add the expiration check before materializing."},
				BuggySource:     v1,
				FixedSource:     v2,
				RegressionTests: []ticket.TestCase{tests[1]},
			},
			{
				ID:    "HBS-28704",
				Title: "The expired snapshot can be read by copytable or exportsnapshot",
				Description: "The clone path materialized expired snapshots — the HBS-27671 semantics " +
					"on a different entry point.",
				Discussion:      []string{"The protection is not consistent across scenarios."},
				BuggySource:     v3,
				FixedSource:     v4,
				RegressionTests: []ticket.TestCase{tests[2]},
			},
		},
		Latest: latest,
		Tests:  tests,
	}
}

// ---------------------------------------------------------------------------
// Case 11: hbase-region-state — reads must only be served by online
// regions; a region mid-move serves stale or torn rows.
// ---------------------------------------------------------------------------

const hbaseRegionBase = `
class Region {
	string name;
	bool online;

	bool isOnline() {
		return online;
	}
}

class ReadServer {
	list reads;

	void init() {
		reads = newList();
	}

	void serveRead(Region r, string key) {
		reads.add(r.name + "/" + key);
	}
}

class GetHandler {
	ReadServer server;

	void init(ReadServer s) {
		server = s;
	}

	void get(Region r, string key) {
		if (r == null || !r.isOnline()) {
			throw "NotServingRegionException";
		}
		server.serveRead(r, key);
	}
}
`

const hbaseRegionBatchFixed = `
class BatchGetHandler {
	ReadServer server;

	void init(ReadServer s) {
		server = s;
	}

	void batchGet(Region r, list keys) {
		if (r == null || !r.isOnline()) {
			throw "NotServingRegionException";
		}
		for (k in keys) {
			server.serveRead(r, k);
		}
	}
}
`

func caseHbaseRegionState() *ticket.Case {
	v2 := hbaseRegionBase
	v1 := weaken(v2, "	void get(Region r, string key) {\n		if (r == null || !r.isOnline()) {",
		"	void get(Region r, string key) {\n		if (r == null) {")
	v4 := hbaseRegionBase + hbaseRegionBatchFixed
	v3 := weaken(v4, "	void batchGet(Region r, list keys) {\n		if (r == null || !r.isOnline()) {",
		"	void batchGet(Region r, list keys) {\n		if (r == null) {")

	tests := []ticket.TestCase{
		{
			Name:        "RegionTest.getFromOnlineRegion",
			Description: "get served from an online region returns the row",
			Class:       "RegionTest", Method: "getFromOnlineRegion",
			Source: `
class RegionTest {
	static void getFromOnlineRegion() {
		ReadServer s = new ReadServer();
		GetHandler g = new GetHandler(s);
		Region r = new Region();
		r.name = "r1";
		r.online = true;
		g.get(r, "row1");
		assertTrue(s.reads.size() == 1, "read served");
	}
}
`,
		},
		{
			Name:        "RegionTest.getRejectsOfflineRegion",
			Description: "get against an offline region throws NotServingRegionException",
			Class:       "RegionTest", Method: "getRejectsOfflineRegion",
			Source: `
class RegionTest {
	static void getRejectsOfflineRegion() {
		ReadServer s = new ReadServer();
		GetHandler g = new GetHandler(s);
		Region r = new Region();
		r.name = "r2";
		r.online = false;
		bool rejected = false;
		try {
			g.get(r, "row2");
		} catch (e) {
			rejected = true;
		}
		assertTrue(rejected, "offline read rejected");
	}
}
`,
		},
		{
			Name:        "RegionTest.batchGetServesAllKeys",
			Description: "batch get serves every key from the region",
			Class:       "RegionTest", Method: "batchGetServesAllKeys",
			Source: `
class RegionTest {
	static void batchGetServesAllKeys() {
		ReadServer s = new ReadServer();
		BatchGetHandler b = new BatchGetHandler(s);
		Region r = new Region();
		r.name = "r3";
		r.online = false;
		list keys = newList();
		keys.add("k1");
		keys.add("k2");
		try {
			b.batchGet(r, keys);
		} catch (e) {
			log(e);
		}
	}
}
`,
		},
	}

	return &ticket.Case{
		ID:      "hbase-region-state",
		System:  "hbasesim",
		Feature: "region serving state",
		Description: "Reads served by offline (mid-move) regions return stale or torn rows; every read " +
			"path must verify the region is online.",
		FirstReported: 2012, LastReported: 2020, FeatureBugCount: 13,
		Tickets: []*ticket.Ticket{
			{
				ID:    "HBS-9721",
				Title: "Get served by region that is no longer online",
				Description: "The get path served reads from regions in transition, returning rows from " +
					"a half-moved region.",
				Discussion:      []string{"Check region online state before serving."},
				BuggySource:     v1,
				FixedSource:     v2,
				RegressionTests: []ticket.TestCase{tests[1]},
			},
			{
				ID:    "HBS-14313",
				Title: "Batch get bypasses the online-region check",
				Description: "The batched read path introduced for multi-gets serves keys without " +
					"checking region state — HBS-9721 again.",
				Discussion:      []string{"Every read entry point needs the same state check."},
				BuggySource:     v3,
				FixedSource:     v4,
				RegressionTests: []ticket.TestCase{tests[2]},
			},
		},
		Tests: tests,
	}
}

// ---------------------------------------------------------------------------
// Case 12: hbase-wal-append — entries must never be appended to a closed
// write-ahead log; they are acknowledged but lost.
// ---------------------------------------------------------------------------

const hbaseWalBase = `
class WAL {
	string name;
	bool closed;

	bool isClosed() {
		return closed;
	}
}

class WALStore {
	list entries;

	void init() {
		entries = newList();
	}

	void appendEntry(WAL w, string entry) {
		entries.add(w.name + ":" + entry);
	}
}

class WALWriter {
	WALStore store;

	void init(WALStore s) {
		store = s;
	}

	void append(WAL w, string entry) {
		if (w == null || w.isClosed()) {
			throw "WALClosedException";
		}
		store.appendEntry(w, entry);
	}
}
`

const hbaseWalRollerFixed = `
class LogRoller {
	WALStore store;

	void init(WALStore s) {
		store = s;
	}

	void flushOnRoll(WAL old, WAL fresh, string marker) {
		if (fresh == null || fresh.isClosed()) {
			throw "WALClosedException";
		}
		if (old == null || old.isClosed()) {
			throw "WALClosedException";
		}
		store.appendEntry(old, marker);
		store.appendEntry(fresh, "roll-start");
	}
}
`

func caseHbaseWalRoll() *ticket.Case {
	v2 := hbaseWalBase
	v1 := weaken(v2, "	void append(WAL w, string entry) {\n		if (w == null || w.isClosed()) {",
		"	void append(WAL w, string entry) {\n		if (w == null) {")
	v4 := hbaseWalBase + hbaseWalRollerFixed
	v3 := weaken(v4, "if (old == null || old.isClosed()) {", "if (old == null) {")

	tests := []ticket.TestCase{
		{
			Name:        "WalTest.appendToOpenWal",
			Description: "append to an open write ahead log stores the entry",
			Class:       "WalTest", Method: "appendToOpenWal",
			Source: `
class WalTest {
	static void appendToOpenWal() {
		WALStore s = new WALStore();
		WALWriter w = new WALWriter(s);
		WAL wal = new WAL();
		wal.name = "wal1";
		wal.closed = false;
		w.append(wal, "put row1");
		assertTrue(s.entries.size() == 1, "entry appended");
	}
}
`,
		},
		{
			Name:        "WalTest.appendRejectsClosedWal",
			Description: "append to a closed write ahead log throws WALClosedException",
			Class:       "WalTest", Method: "appendRejectsClosedWal",
			Source: `
class WalTest {
	static void appendRejectsClosedWal() {
		WALStore s = new WALStore();
		WALWriter w = new WALWriter(s);
		WAL wal = new WAL();
		wal.name = "wal2";
		wal.closed = true;
		bool rejected = false;
		try {
			w.append(wal, "put row2");
		} catch (e) {
			rejected = true;
		}
		assertTrue(rejected, "closed append rejected");
	}
}
`,
		},
		{
			Name:        "WalTest.rollFlushesOldLog",
			Description: "log roll flushes a marker to the old wal and starts the fresh one",
			Class:       "WalTest", Method: "rollFlushesOldLog",
			Source: `
class WalTest {
	static void rollFlushesOldLog() {
		WALStore s = new WALStore();
		LogRoller r = new LogRoller(s);
		WAL old = new WAL();
		old.name = "wal3";
		old.closed = true;
		WAL fresh = new WAL();
		fresh.name = "wal4";
		try {
			r.flushOnRoll(old, fresh, "flush");
		} catch (e) {
			log(e);
		}
	}
}
`,
		},
	}

	return &ticket.Case{
		ID:      "hbase-wal-append",
		System:  "hbasesim",
		Feature: "WAL lifecycle",
		Description: "Appends to a closed WAL are acknowledged but lost on crash; every append path " +
			"must check the log is still open.",
		FirstReported: 2014, LastReported: 2023, FeatureBugCount: 9,
		Tickets: []*ticket.Ticket{
			{
				ID:    "HBS-11109",
				Title: "Edits appended to closed WAL are lost",
				Description: "The writer appended entries to a WAL that had been closed by a concurrent " +
					"roll; the edits were acknowledged and then lost.",
				Discussion:      []string{"Check isClosed before appending."},
				BuggySource:     v1,
				FixedSource:     v2,
				RegressionTests: []ticket.TestCase{tests[1]},
			},
			{
				ID:    "HBS-17465",
				Title: "Log roller flushes marker into a closed WAL",
				Description: "The roll path appends a flush marker to the old WAL without checking " +
					"whether it was already closed — the HBS-11109 semantics again.",
				Discussion:      []string{"Same lifecycle check on the roll path."},
				BuggySource:     v3,
				FixedSource:     v4,
				RegressionTests: []ticket.TestCase{tests[2]},
			},
		},
		Tests: tests,
	}
}

// ---------------------------------------------------------------------------
// Case 13: hbase-meta-cache — a stale meta-cache entry must not be served
// after a region moves, or clients keep hitting the old server.
// ---------------------------------------------------------------------------

const hbaseMetaBase = `
class MetaEntry {
	string regionName;
	string server;
	bool stale;

	bool isStale() {
		return stale;
	}
}

class ClientRouter {
	list routed;

	void init() {
		routed = newList();
	}

	void route(MetaEntry e, string op) {
		routed.add(e.server + "/" + op);
	}
}

class MetaLookup {
	ClientRouter router;

	void init(ClientRouter r) {
		router = r;
	}

	void lookup(MetaEntry e, string op) {
		if (e == null || e.isStale()) {
			throw "StaleMetaException";
		}
		router.route(e, op);
	}
}
`

const hbaseMetaPrefetchFixed = `
class PrefetchLookup {
	ClientRouter router;

	void init(ClientRouter r) {
		router = r;
	}

	void prefetch(MetaEntry e) {
		if (e == null || e.isStale()) {
			return;
		}
		router.route(e, "prefetch");
	}
}
`

func caseHbaseMetaCache() *ticket.Case {
	v2 := hbaseMetaBase
	v1 := weaken(v2, "	void lookup(MetaEntry e, string op) {\n		if (e == null || e.isStale()) {",
		"	void lookup(MetaEntry e, string op) {\n		if (e == null) {")
	v4 := hbaseMetaBase + hbaseMetaPrefetchFixed
	v3 := weaken(v4, "	void prefetch(MetaEntry e) {\n		if (e == null || e.isStale()) {",
		"	void prefetch(MetaEntry e) {\n		if (e == null) {")

	tests := []ticket.TestCase{
		{
			Name:        "MetaTest.lookupRoutesFreshEntry",
			Description: "lookup routes operations through a fresh meta entry",
			Class:       "MetaTest", Method: "lookupRoutesFreshEntry",
			Source: `
class MetaTest {
	static void lookupRoutesFreshEntry() {
		ClientRouter r = new ClientRouter();
		MetaLookup m = new MetaLookup(r);
		MetaEntry e = new MetaEntry();
		e.regionName = "ra";
		e.server = "rs1";
		e.stale = false;
		m.lookup(e, "get");
		assertTrue(r.routed.size() == 1, "routed");
	}
}
`,
		},
		{
			Name:        "MetaTest.lookupRejectsStaleEntry",
			Description: "lookup with a stale meta entry after region move throws",
			Class:       "MetaTest", Method: "lookupRejectsStaleEntry",
			Source: `
class MetaTest {
	static void lookupRejectsStaleEntry() {
		ClientRouter r = new ClientRouter();
		MetaLookup m = new MetaLookup(r);
		MetaEntry e = new MetaEntry();
		e.regionName = "rb";
		e.server = "rs-old";
		e.stale = true;
		bool rejected = false;
		try {
			m.lookup(e, "get");
		} catch (ex) {
			rejected = true;
		}
		assertTrue(rejected, "stale lookup rejected");
	}
}
`,
		},
		{
			Name:        "MetaTest.prefetchWarmsRouter",
			Description: "prefetch warms the router with meta entries ahead of reads",
			Class:       "MetaTest", Method: "prefetchWarmsRouter",
			Source: `
class MetaTest {
	static void prefetchWarmsRouter() {
		ClientRouter r = new ClientRouter();
		PrefetchLookup p = new PrefetchLookup(r);
		MetaEntry e = new MetaEntry();
		e.regionName = "rc";
		e.server = "rs-moved";
		e.stale = true;
		p.prefetch(e);
	}
}
`,
		},
	}

	return &ticket.Case{
		ID:      "hbase-meta-cache",
		System:  "hbasesim",
		Feature: "meta cache staleness",
		Description: "Serving a stale meta entry after a region move keeps routing clients to the old " +
			"server; every consumer of the cache must check staleness.",
		FirstReported: 2015, LastReported: 2022, FeatureBugCount: 11,
		Tickets: []*ticket.Ticket{
			{
				ID:    "HBS-13328",
				Title: "Client keeps routing to old server after region move",
				Description: "Lookups served stale meta entries, sending every request to the region's " +
					"previous server until the cache expired.",
				Discussion:      []string{"Check staleness before routing."},
				BuggySource:     v1,
				FixedSource:     v2,
				RegressionTests: []ticket.TestCase{tests[1]},
			},
			{
				ID:    "HBS-20697",
				Title: "Prefetch path populates router with stale entries",
				Description: "The meta prefetch optimization routes through stale entries — the " +
					"HBS-13328 semantics on the new warm-up path.",
				Discussion:      []string{"Prefetch must apply the same staleness check."},
				BuggySource:     v3,
				FixedSource:     v4,
				RegressionTests: []ticket.TestCase{tests[2]},
			},
		},
		Tests: tests,
	}
}
