package infer

import (
	"fmt"

	"lisa/internal/callgraph"
	"lisa/internal/concolic"
	"lisa/internal/contract"
	"lisa/internal/interp"
	"lisa/internal/ticket"
)

// CrossCheckResult reports whether a mined semantic is grounded in actual
// system behavior — the §5 defence against LLM non-determinism and
// hallucination.
type CrossCheckResult struct {
	SemanticID string
	// Grounded: the rule matches at least one site in the post-patch code
	// and every static path to each site verifies (the patched system
	// actually upholds the rule).
	Grounded bool
	// Confirmed: at least one regression test dynamically executed a site
	// and the recorded condition verified.
	Confirmed bool
	Reason    string
}

// CrossCheck validates a mined semantic against the ticket's fixed source
// and regression tests. A rule that the just-patched system itself violates
// is hallucinated (flipped or fabricated conditions land here); a rule that
// matches no site at all is ungrounded.
func CrossCheck(sem *contract.Semantic, tk *ticket.Ticket) CrossCheckResult {
	res := CrossCheckResult{SemanticID: sem.ID}
	if sem.Kind == contract.StructuralKind {
		prog, err := compile(tk.FixedSource)
		if err != nil {
			res.Reason = fmt.Sprintf("fixed source does not compile: %v", err)
			return res
		}
		if vs := sem.Structural.Check(prog); len(vs) > 0 {
			res.Reason = fmt.Sprintf("patched code still violates the rule at %d site(s)", len(vs))
			return res
		}
		res.Grounded = true
		res.Confirmed = true
		res.Reason = "structural rule holds on the patched code"
		return res
	}

	prog, err := compile(tk.FixedSource)
	if err != nil {
		res.Reason = fmt.Sprintf("fixed source does not compile: %v", err)
		return res
	}
	sites := contract.Match(sem, prog)
	if len(sites) == 0 {
		res.Reason = "rule matches no target statement in the patched code"
		return res
	}
	graph := callgraph.Build(prog)
	for _, site := range sites {
		tree := graph.ExecutionTree(site.Method, callgraph.TreeOptions{})
		chains := tree.Paths
		if len(chains) == 0 {
			chains = []callgraph.Path{nil}
		}
		for _, chain := range chains {
			paths, _ := concolic.ChainStaticPaths(prog, site, chain, concolic.Options{})
			for _, p := range paths {
				if v := concolic.CheckStaticPath(p); v == concolic.VerdictViolation {
					res.Reason = fmt.Sprintf("patched code contradicts the rule: %s on path %s of %s",
						v, p, site)
					return res
				}
			}
		}
	}
	res.Grounded = true
	res.Reason = "all static paths in the patched code verify"

	// Dynamic confirmation via the ticket's regression tests.
	if len(tk.RegressionTests) > 0 {
		full := tk.FixedSource
		for _, tc := range tk.RegressionTests {
			full += "\n" + tc.Source
		}
		tprog, err := compile(full)
		if err != nil {
			res.Reason += fmt.Sprintf("; tests do not compile: %v", err)
			return res
		}
		tsites := contract.Match(sem, tprog)
		runner := concolic.NewRunner(tprog, tsites, interp.Options{})
		for _, tc := range tk.RegressionTests {
			// A regression test may legitimately end in a caught or
			// expected exception; hits recorded before unwind still count.
			_ = runner.RunStatic(tc.Name, tc.Class, tc.Method)
		}
		for _, h := range runner.Hits {
			if h.Verdict() == concolic.VerdictVerified {
				res.Confirmed = true
				res.Reason += "; dynamically confirmed by " + h.TestName
				break
			}
		}
	}
	return res
}

// FilterGrounded applies cross-checking to a result, returning only the
// semantics that survive (the cross-checked pipeline of the reliability
// experiment).
func FilterGrounded(res *Result, tk *ticket.Ticket) (kept []*contract.Semantic, rejected []CrossCheckResult) {
	for _, sem := range res.Semantics {
		cc := CrossCheck(sem, tk)
		if cc.Grounded {
			kept = append(kept, sem)
		} else {
			rejected = append(rejected, cc)
		}
	}
	return kept, rejected
}
