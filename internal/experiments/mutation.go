package experiments

import (
	"lisa/internal/core"
	"lisa/internal/interp"
	"lisa/internal/minij"
	"lisa/internal/program"
	"lisa/internal/report"
	"lisa/internal/ticket"
)

// GuardMutant is one synthetic regression: a guard of the head source with
// one condition operand dropped (the canonical way recurrences happen — a
// rewrite keeps the null check and loses the state check).
type GuardMutant struct {
	CaseID string
	Method string
	// Original and Mutated are canonical guard texts.
	Original string
	Mutated  string
	// Source is the full mutated system source.
	Source string
}

// MutateGuards derives guard-weakening mutants of a case's head: every
// top-level disjunct/conjunct of every if-guard whose variables the case's
// contracts care about is dropped in turn.
func MutateGuards(cs *ticket.Case, relevantRoots map[string]bool) []GuardMutant {
	head := cs.Head()
	base, err := compileQuiet(head)
	if err != nil {
		return nil
	}
	// Count candidate guards once on the clean parse.
	type target struct {
		ord  int // n-th if statement in program order
		side int // 0 = drop left operand, 1 = drop right operand
	}
	var targets []target
	ord := 0
	for _, m := range base.Methods() {
		minij.WalkStmts(m.Body, func(s minij.Stmt) {
			ifStmt, ok := s.(*minij.If)
			if !ok {
				return
			}
			myOrd := ord
			ord++
			bin, ok := ifStmt.Cond.(*minij.Binary)
			if !ok || (bin.Op != "||" && bin.Op != "&&") {
				return
			}
			if !mentionsRoot(ifStmt.Cond, relevantRoots) {
				return
			}
			targets = append(targets, target{ord: myOrd, side: 0}, target{ord: myOrd, side: 1})
		})
	}
	var out []GuardMutant
	for _, tgt := range targets {
		// Re-compile for a fresh, caller-owned mutable AST — deliberately
		// NOT a shared snapshot, which must never be mutated.
		prog, err := program.Compile(head)
		if err != nil {
			continue
		}
		i := 0
		var mutated *GuardMutant
		for _, m := range prog.Methods() {
			method := m
			minij.WalkStmts(m.Body, func(s minij.Stmt) {
				ifStmt, ok := s.(*minij.If)
				if !ok {
					return
				}
				if i != tgt.ord {
					i++
					return
				}
				i++
				bin := ifStmt.Cond.(*minij.Binary)
				orig := minij.CanonExpr(ifStmt.Cond)
				if tgt.side == 0 {
					ifStmt.Cond = bin.Y
				} else {
					ifStmt.Cond = bin.X
				}
				mutated = &GuardMutant{
					CaseID:   cs.ID,
					Method:   method.FullName(),
					Original: orig,
					Mutated:  minij.CanonExpr(ifStmt.Cond),
				}
			})
		}
		if mutated == nil {
			continue
		}
		src := minij.FormatProgram(prog)
		if _, err := compileQuiet(src); err != nil {
			continue
		}
		mutated.Source = src
		out = append(out, *mutated)
	}
	return out
}

func mentionsRoot(e minij.Expr, roots map[string]bool) bool {
	for name := range minij.IdentsIn(e) {
		if roots[name] {
			return true
		}
	}
	return false
}

// RunMutation regenerates the DESIGN.md mutation sweep: for every
// guard-weakening mutant of every head, does (a) replaying the full suite
// or (b) LISA's semantic assertion detect the synthetic regression?
func RunMutation(c *ticket.Corpus) string {
	t := &report.Table{
		Title:   "Guard-weakening mutation sweep over every head",
		Headers: []string{"case", "mutants", "caught by tests", "caught by LISA", "caught by both"},
	}
	var totalMut, totalTests, totalLisa int
	for _, cs := range c.Cases {
		e := core.New()
		baselineRules := 0
		for _, tk := range cs.Tickets {
			if rep, err := e.ProcessTicket(tk); err == nil {
				baselineRules += len(rep.Registered)
			}
		}
		if baselineRules == 0 {
			continue
		}
		// Relevant roots: slot names across registered state rules.
		roots := map[string]bool{}
		for _, sem := range e.Registry.All() {
			for slot := range sem.Target.Bind {
				roots[slot] = true
			}
		}
		baseRep, err := e.Assert(cs.Head(), nil)
		if err != nil {
			continue
		}
		baseViolations := baseRep.Counts.Violations

		mutants := MutateGuards(cs, roots)
		caughtTests, caughtLisa, caughtBoth := 0, 0, 0
		for _, mu := range mutants {
			byTests := suiteFails(cs, mu.Source)
			byLisa := false
			if rep, err := e.Assert(mu.Source, nil); err == nil && rep.Counts.Violations > baseViolations {
				byLisa = true
			}
			if byTests {
				caughtTests++
			}
			if byLisa {
				caughtLisa++
			}
			if byTests && byLisa {
				caughtBoth++
			}
		}
		totalMut += len(mutants)
		totalTests += caughtTests
		totalLisa += caughtLisa
		t.AddRow(cs.ID, len(mutants), caughtTests, caughtLisa, caughtBoth)
	}
	t.AddNote("%d/%d mutants caught by semantic assertion vs %d/%d by replaying the full suite — tests catch a weakened guard only when a regression test pins that exact scenario.",
		totalLisa, totalMut, totalTests, totalMut)
	return t.Render()
}

// suiteFails replays the case's suite on a source, reporting whether any
// test fails.
func suiteFails(cs *ticket.Case, source string) bool {
	for _, tc := range cs.Tests {
		prog, err := compileQuiet(source + "\n" + tc.Source)
		if err != nil {
			continue
		}
		in := interp.New(prog)
		if _, err := in.CallStatic(tc.Class, tc.Method); err != nil {
			return true
		}
	}
	return false
}
