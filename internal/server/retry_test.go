package server

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

)

// flakyTransport fails the first n round-trips with a connection error,
// then delegates to the real transport.
type flakyTransport struct {
	fail  int
	tries int
	next  http.RoundTripper
}

func (f *flakyTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	f.tries++
	if f.tries <= f.fail {
		return nil, &net.OpError{Op: "dial", Err: fmt.Errorf("connection refused (injected)")}
	}
	return f.next.RoundTrip(r)
}

// TestRetryRecoversFromConnectionErrors: the client rides out transient
// connection failures and succeeds on the attempt that reaches the daemon
// — with exactly as many round-trips as the failure count demanded.
func TestRetryRecoversFromConnectionErrors(t *testing.T) {
	_, cl, done := newTestServer(t, Config{})
	defer done()
	ft := &flakyTransport{fail: 2, next: http.DefaultTransport}
	cl.SetHTTPClient(&http.Client{Transport: ft})
	cl.SetRetryPolicy(RetryPolicy{Retries: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond})

	cs := corpusCase(t, "zk-ephemeral")
	resp, err := cl.Gate(GateRequest{Case: cs.ID, Change: cs.Head()})
	if err != nil {
		t.Fatalf("gate through flaky transport: %v", err)
	}
	if resp.Report == "" {
		t.Fatal("empty report after retries")
	}
	if ft.tries != 3 {
		t.Fatalf("round-trips = %d, want 3 (2 failures + 1 success)", ft.tries)
	}
}

// TestRemoteErrorClassification pins the error taxonomy: dead daemon →
// connection failed (after every retry), draining daemon → server
// draining, bad request → request failed with no retry. The error texts
// must stay distinguishable — the CLI maps them to distinct exit codes.
func TestRemoteErrorClassification(t *testing.T) {
	t.Run("connect", func(t *testing.T) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close() // nothing listens here anymore
		cl := NewClient("http://" + addr)
		cl.SetRetryPolicy(RetryPolicy{Retries: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
		_, err = cl.Gate(GateRequest{Case: "x", Change: "y"})
		re, ok := err.(*RemoteError)
		if !ok || re.Kind != RemoteConnect {
			t.Fatalf("dead daemon error = %v (%T), want RemoteConnect", err, err)
		}
		if re.Attempts != 3 {
			t.Errorf("attempts = %d, want 3", re.Attempts)
		}
		if !strings.Contains(re.Error(), "connection failed") {
			t.Errorf("error text %q should name the connection failure", re.Error())
		}
	})
	t.Run("drain", func(t *testing.T) {
		srv, cl, done := newTestServer(t, Config{})
		defer done()
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			t.Fatal(err)
		}
		cl.SetRetryPolicy(RetryPolicy{Retries: 1, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
		_, err := cl.Gate(GateRequest{Case: "x", Change: "y"})
		re, ok := err.(*RemoteError)
		if !ok || re.Kind != RemoteDrain {
			t.Fatalf("draining daemon error = %v, want RemoteDrain", err)
		}
		if !strings.Contains(re.Error(), "server draining") {
			t.Errorf("error text %q should name the drain", re.Error())
		}
	})
	t.Run("overload", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server overloaded: 2 running, 2 queued"))
		}))
		defer ts.Close()
		cl := NewClient(ts.URL)
		cl.SetRetryPolicy(RetryPolicy{Retries: 1, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
		start := time.Now()
		_, err := cl.Gate(GateRequest{Case: "x", Change: "y"})
		re, ok := err.(*RemoteError)
		if !ok || re.Kind != RemoteOverload {
			t.Fatalf("overloaded daemon error = %v, want RemoteOverload", err)
		}
		// Retry-After: 1 floors the backoff: the retry waited at least 1s.
		if d := time.Since(start); d < time.Second {
			t.Errorf("retry ignored Retry-After floor: total %v", d)
		}
	})
	t.Run("http-no-retry", func(t *testing.T) {
		_, cl, done := newTestServer(t, Config{})
		defer done()
		cl.SetRetryPolicy(RetryPolicy{Retries: 3, BaseDelay: time.Millisecond})
		_, err := cl.Gate(GateRequest{Case: "no-such-case", Change: "y"})
		re, ok := err.(*RemoteError)
		if !ok || re.Kind != RemoteHTTP {
			t.Fatalf("bad request error = %v, want RemoteHTTP", err)
		}
		if re.Attempts != 1 {
			t.Errorf("non-transient failure retried: %d attempts", re.Attempts)
		}
	})
}

// TestBackoffDeterministicAndBounded: the same seed replays the same
// delay sequence, delays grow exponentially within [base/2, max], and the
// server's Retry-After floors the result.
func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Seed: 42}
	a, b := rand.New(rand.NewSource(p.Seed)), rand.New(rand.NewSource(p.Seed))
	for attempt := 1; attempt <= 6; attempt++ {
		da := p.backoff(attempt, 0, a)
		db := p.backoff(attempt, 0, b)
		if da != db {
			t.Fatalf("attempt %d: same seed, different delays: %v vs %v", attempt, da, db)
		}
		ceil := p.BaseDelay << (attempt - 1)
		if ceil > p.MaxDelay {
			ceil = p.MaxDelay
		}
		if da < ceil/2 || da > ceil {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", attempt, da, ceil/2, ceil)
		}
	}
	other := rand.New(rand.NewSource(7))
	if d := p.backoff(1, 3*time.Second, other); d < 3*time.Second {
		t.Errorf("Retry-After floor ignored: %v", d)
	}
}

// TestOverallDeadlineStopsRetrying: with a short overall budget the client
// gives up as a timeout instead of sleeping through its retry schedule.
func TestOverallDeadlineStopsRetrying(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	cl := NewClient("http://" + addr)
	cl.SetRetryPolicy(RetryPolicy{
		Retries:        50,
		BaseDelay:      40 * time.Millisecond,
		MaxDelay:       40 * time.Millisecond,
		OverallTimeout: 150 * time.Millisecond,
	})
	start := time.Now()
	_, err = cl.Gate(GateRequest{Case: "x", Change: "y"})
	re, ok := err.(*RemoteError)
	if !ok || re.Kind != RemoteTimeout {
		t.Fatalf("budget-bounded failure = %v, want RemoteTimeout", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("client kept retrying past its overall budget: %v", d)
	}
}
