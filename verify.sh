#!/bin/sh
# Full verify: tier-1 (build + all tests), vet, the race-detector suites
# for the packages with concurrency (scheduler worker pool, snapshot
# cache, solver result cache, prefix-pruning walker, fault injector, the
# on-disk store with its goroutine hammer, and the serve daemon with its
# request hammer and admission control), the binary AST codec fuzz suite
# by name (round-trip byte-identity over the corpus and seeded mutants;
# truncated/bit-flipped/version-skewed frames must be rejected), the
# daemon smoke test by name (start a real listener, one gate round trip,
# clean drain), the cold-process-on-warm-store smoke (two CLI invocations
# sharing a store directory: the second must serve its jobs from the disk
# tier AND restore its snapshots through the parse-free decode path), the
# snapshot-record corruption round by name (a damaged snap.v2 record must
# degrade to a recompute miss through the digest/codec checks, never a
# wrong result), the crash-recovery campaign by name (seeded kill points
# in the store's write path, plus the daemon cold-gate byte-identity
# rounds), the remote-failover smoke (a dead daemon must fall back to
# local execution with byte-identical stdout, and report distinct exit
# codes with failover off), the 2-shard smoke (a sharded CLI run must
# render byte-identical verdicts to the plain run, with the parent's warm
# handoff pre-seeding the shared store), the perf-regression gate against
# the committed counter baseline, and a smoke run of the fault-injection
# matrix. ROADMAP.md points here.
set -ex
go build ./...
go test ./...
go vet ./...
go test -race ./internal/sched/... ./internal/shard/... ./internal/program/... ./internal/faultinject/... ./internal/smt/... ./internal/concolic/... ./internal/server/... ./internal/store/...
go test -run 'TestCodec' -count=1 ./internal/minij
go test -run TestServerSmoke -count=1 ./internal/server
STORE_SMOKE=$(mktemp -d)
go run ./cmd/lisa assert -case zk-ephemeral -tests -store "$STORE_SMOKE/store" > /dev/null
go run ./cmd/lisa assert -case zk-ephemeral -tests -store "$STORE_SMOKE/store" > "$STORE_SMOKE/warm.out"
grep "served from the disk tier" "$STORE_SMOKE/warm.out"
grep "restored from the store (2 decoded, 0 deep-verified)" "$STORE_SMOKE/warm.out"
rm -rf "$STORE_SMOKE"
go test -run 'TestCorruptASTDegradesToMiss|TestStoreReadCorruptionDegradesToMiss' -count=1 ./internal/program
go test -run 'TestStoreCrashRecoveryCampaign' -count=1 ./internal/store
go test -run 'TestGateByteIdentityAfterCrash' -count=1 ./internal/server
FO_SMOKE=$(mktemp -d)
go build -o "$FO_SMOKE/lisa" ./cmd/lisa
"$FO_SMOKE/lisa" assert -case zk-ephemeral > "$FO_SMOKE/local.out"
"$FO_SMOKE/lisa" assert -case zk-ephemeral -remote http://127.0.0.1:1 -remote-retries 1 > "$FO_SMOKE/failover.out" 2> /dev/null
cmp "$FO_SMOKE/local.out" "$FO_SMOKE/failover.out"
rc=0
"$FO_SMOKE/lisa" assert -case zk-ephemeral -remote http://127.0.0.1:1 -remote-retries 0 -remote-failover=false > /dev/null 2>&1 || rc=$?
test "$rc" -eq 4
rm -rf "$FO_SMOKE"
SHARD_SMOKE=$(mktemp -d)
go build -o "$SHARD_SMOKE/lisa" ./cmd/lisa
"$SHARD_SMOKE/lisa" assert -case zk-ephemeral -tests | sed -n '/^verdicts:/,$p' > "$SHARD_SMOKE/plain.out"
"$SHARD_SMOKE/lisa" assert -case zk-ephemeral -tests -shards 2 -store "$SHARD_SMOKE/store" | sed -n '/^verdicts:/,$p' > "$SHARD_SMOKE/sharded.out"
cmp "$SHARD_SMOKE/plain.out" "$SHARD_SMOKE/sharded.out"
rm -rf "$SHARD_SMOKE"
go run ./cmd/lisabench -diff BENCH_10.json
go run ./cmd/lisabench -exp chaos -seed 1
