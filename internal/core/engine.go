// Package core implements the LISA engine: the end-to-end workflow of
// Figure 5. The engine iterates over failure tickets, infers low-level
// semantics from each bundle, optionally cross-checks them against actual
// behavior, registers the survivors as executable contracts, and asserts
// every registered contract across a codebase — statically (execution
// trees + path conditions + the complement check) and dynamically
// (test-driven concolic replay with RAG-style test selection).
package core

import (
	"fmt"
	"sort"
	"time"

	"lisa/internal/callgraph"
	"lisa/internal/concolic"
	"lisa/internal/contract"
	"lisa/internal/infer"
	"lisa/internal/interp"
	"lisa/internal/minij"
	"lisa/internal/smt"
	"lisa/internal/testsel"
	"lisa/internal/ticket"
)

// Engine is the LISA pipeline.
type Engine struct {
	// Inferencer extracts semantics from tickets (stage 1 of Figure 5).
	Inferencer infer.Inferencer
	// Registry stores the executable contracts.
	Registry *contract.Registry
	// CrossCheck validates mined semantics against the ticket's fixed
	// source before registering them (the §5 defence).
	CrossCheck bool
	// TestTopK is how many tests the selector picks per path (default 3).
	TestTopK int
	// MaxStaticPaths bounds per-site path enumeration.
	MaxStaticPaths int
	// NoPrune disables relevant-variable pruning (ablation).
	NoPrune bool
	// IntraOnly disables interprocedural condition inheritance along
	// execution-tree chains (ablation: guards in callers are then
	// invisible, flagging internal helpers their callers protect).
	IntraOnly bool
	// RunAllTests skips similarity-based selection and replays the whole
	// suite (ablation for the test-selection stage).
	RunAllTests bool
}

// New returns an engine with the deterministic patch analyzer (with
// generalization enabled), an empty registry, and cross-checking on.
func New() *Engine {
	return &Engine{
		Inferencer: &infer.PatchAnalyzer{Generalize: true},
		Registry:   contract.NewRegistry(),
		CrossCheck: true,
		TestTopK:   3,
	}
}

// TicketReport is the outcome of processing one failure ticket.
type TicketReport struct {
	Ticket     *ticket.Ticket
	Result     *infer.Result
	Registered []*contract.Semantic
	Rejected   []infer.CrossCheckResult
	// AlreadyKnown lists semantics equivalent to ones inferred from an
	// earlier ticket — the paper's recurring pattern: the regression
	// violated the same low-level semantic as the original incident.
	AlreadyKnown []*contract.Semantic
}

// ProcessTicket runs inference on a ticket bundle and registers the
// resulting contracts (stages "infer" and "translate" of the workflow).
// Semantics equivalent to an already-registered rule are reported as
// already known rather than registered twice.
func (e *Engine) ProcessTicket(tk *ticket.Ticket) (*TicketReport, error) {
	res, err := e.Inferencer.Infer(tk)
	if err != nil {
		return nil, err
	}
	rep := &TicketReport{Ticket: tk, Result: res}
	sems := res.Semantics
	if e.CrossCheck {
		kept, rejected := infer.FilterGrounded(res, tk)
		sems = kept
		rep.Rejected = rejected
	}
	for _, sem := range sems {
		if known := e.findEquivalent(sem); known != nil {
			known.Origin = append(known.Origin, sem.Origin...)
			rep.AlreadyKnown = append(rep.AlreadyKnown, known)
			continue
		}
		if err := e.Registry.Add(sem); err != nil {
			return nil, fmt.Errorf("register %s: %w", sem.ID, err)
		}
		rep.Registered = append(rep.Registered, sem)
	}
	return rep, nil
}

// findEquivalent returns a registered semantic equivalent to sem, if any.
func (e *Engine) findEquivalent(sem *contract.Semantic) *contract.Semantic {
	for _, ex := range e.Registry.All() {
		if ex.Kind != sem.Kind {
			continue
		}
		switch sem.Kind {
		case contract.StructuralKind:
			if ex.Structural.Name() != sem.Structural.Name() {
				continue
			}
			if stringSetsEqual(structuralScope(ex.Structural), structuralScope(sem.Structural)) {
				return ex
			}
		case contract.StateKind:
			if ex.Target.Callee != sem.Target.Callee {
				continue
			}
			if !bindingsIntEqual(ex.Target.Bind, sem.Target.Bind) {
				continue
			}
			if smt.Equiv(canonicalPre(ex), canonicalPre(sem)) {
				return ex
			}
		}
	}
	return nil
}

// canonicalPre renames slot roots to their operand positions so two rules
// over differently named slots compare structurally.
func canonicalPre(sem *contract.Semantic) smt.Formula {
	f := sem.Pre
	for slot, idx := range sem.Target.Bind {
		f = smt.RenameRoot(f, slot, fmt.Sprintf("$op%d", idx))
	}
	return f
}

// structuralScope extracts a structural rule's method restriction, if any.
func structuralScope(rule contract.StructuralRule) map[string]bool {
	switch r := rule.(type) {
	case contract.NoBlockingInSync:
		return r.Only
	case contract.NoNestedSync:
		return r.Only
	}
	return nil
}

func stringSetsEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func bindingsIntEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	// Compare the multisets of operand positions.
	counts := map[int]int{}
	for _, v := range a {
		counts[v]++
	}
	for _, v := range b {
		counts[v]--
	}
	for _, c := range counts {
		if c != 0 {
			return false
		}
	}
	return true
}

// PathReport is the assertion outcome of one static path to one site.
type PathReport struct {
	Static  *concolic.StaticPath
	Verdict concolic.Verdict
	// CoveredBy lists tests whose dynamic execution matched this path.
	CoveredBy []string
	// DynamicVerdicts maps test name to its hit verdict on this path.
	DynamicVerdicts map[string]concolic.Verdict
	// PostViolatedBy lists tests whose replay reached this path but left
	// the contract's postcondition Q false afterwards.
	PostViolatedBy []string
}

// Covered reports whether any test exercised this path.
func (p *PathReport) Covered() bool { return len(p.CoveredBy) > 0 }

// SiteReport is the assertion outcome of one target-statement site.
type SiteReport struct {
	Site *contract.Site
	// Chains are the entry→site call chains from the execution tree.
	Chains        []callgraph.Path
	TreeTruncated bool
	Paths         []*PathReport
	// SelectedTests are the tests chosen for this site, in rank order.
	SelectedTests []string
}

// SemanticReport is the assertion outcome of one contract.
type SemanticReport struct {
	Semantic   *contract.Semantic
	Sites      []*SiteReport
	Structural []*contract.StructuralViolation
	// StructuralConfirmedBy maps an index into Structural to the tests
	// whose replay dynamically blocked inside the flagged method while a
	// lock was held (the runtime-monitor confirmation of a static finding).
	StructuralConfirmedBy map[int][]string
	// SanityOK means at least one path verified — the paper keeps the
	// "fixed" paths in the tree precisely so that a correct rule shows at
	// least one verified path; a rule with none is suspect.
	SanityOK bool
}

// Counts aggregates verdicts.
type Counts struct {
	Verified   int
	Violations int
	Unknown    int
	Uncovered  int
	// PostViolations counts dynamic hits whose postcondition Q failed.
	PostViolations int
}

// AssertReport is the outcome of asserting every registered contract over
// one codebase version.
type AssertReport struct {
	Semantics []*SemanticReport
	Counts    Counts
	// StageTimings records wall-clock per workflow stage.
	StageTimings map[string]time.Duration
	// TestsRun counts dynamic test executions.
	TestsRun int
	// StaticOnly marks reports produced without any test corpus.
	StaticOnly bool
}

// Violations returns every violating path and structural finding rendered
// as strings (for gates and logs).
func (r *AssertReport) Violations() []string {
	var out []string
	for _, sr := range r.Semantics {
		for _, v := range sr.Structural {
			out = append(out, fmt.Sprintf("[%s] %s", sr.Semantic.ID, v))
		}
		for _, site := range sr.Sites {
			for _, p := range site.Paths {
				if p.Verdict == concolic.VerdictViolation {
					out = append(out, fmt.Sprintf("[%s] %s path {%s}", sr.Semantic.ID, site.Site, p.Static))
				}
			}
		}
	}
	return out
}

// Assert checks every registered contract against a codebase, optionally
// replaying tests for dynamic confirmation. The returned report carries
// per-path verdicts, coverage, and sanity status.
func (e *Engine) Assert(source string, tests []ticket.TestCase) (*AssertReport, error) {
	timings := map[string]time.Duration{}
	stage := func(name string, f func() error) error {
		t0 := time.Now()
		err := f()
		timings[name] += time.Since(t0)
		return err
	}

	// Compile the system alone (for the class inventory) and the system
	// plus tests (the analysis program, so statement IDs align between
	// static and dynamic stages).
	var progSys, progAll *minij.Program
	full := source
	for _, tc := range tests {
		full += "\n" + tc.Source
	}
	if err := stage("compile", func() error {
		var err error
		progSys, err = compileSource(source)
		if err != nil {
			return fmt.Errorf("system source: %w", err)
		}
		progAll, err = compileSource(full)
		if err != nil {
			return fmt.Errorf("system+tests: %w", err)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	systemClasses := map[string]bool{}
	for _, c := range progSys.Classes {
		systemClasses[c.Name] = true
	}

	var graph *callgraph.Graph
	_ = stage("callgraph", func() error {
		graph = callgraph.Build(progAll)
		return nil
	})
	// An entry function is a system method not called from system code
	// (test callers do not disqualify it).
	isEntry := func(m *minij.Method) bool {
		if !systemClasses[m.Class.Name] {
			return false
		}
		for _, cs := range graph.Callers[m] {
			if systemClasses[cs.Caller.Class.Name] {
				return false
			}
		}
		return true
	}

	var selector *testsel.Selector
	_ = stage("test-index", func() error {
		selector = testsel.New(tests)
		return nil
	})

	report := &AssertReport{StageTimings: timings, StaticOnly: len(tests) == 0}
	for _, sem := range e.Registry.All() {
		sr := &SemanticReport{Semantic: sem}
		report.Semantics = append(report.Semantics, sr)

		if sem.Kind == contract.StructuralKind {
			_ = stage("structural", func() error {
				sr.Structural = sem.Structural.Check(progSys)
				return nil
			})
			if len(sr.Structural) > 0 && len(tests) > 0 {
				_ = stage("structural-replay", func() error {
					sr.StructuralConfirmedBy = e.confirmStructural(progAll, sr.Structural, tests)
					return nil
				})
			}
			sr.SanityOK = true
			report.Counts.Violations += len(sr.Structural)
			continue
		}

		var sites []*contract.Site
		_ = stage("match", func() error {
			sites = contract.Match(sem, progAll)
			return nil
		})
		for _, site := range sites {
			if !systemClasses[site.Method.Class.Name] {
				continue // calls from test code are not production paths
			}
			siteRep := &SiteReport{Site: site}
			sr.Sites = append(sr.Sites, siteRep)

			_ = stage("exec-tree", func() error {
				tree := graph.ExecutionTree(site.Method, callgraph.TreeOptions{IsEntry: isEntry})
				siteRep.Chains = tree.Paths
				siteRep.TreeTruncated = tree.Truncated
				return nil
			})
			_ = stage("static-paths", func() error {
				opts := concolic.Options{MaxPaths: e.MaxStaticPaths, NoPrune: e.NoPrune}
				chains := siteRep.Chains
				if e.IntraOnly || len(chains) == 0 {
					chains = []callgraph.Path{nil}
				}
				seen := map[string]bool{}
				for _, chain := range chains {
					var paths []*concolic.StaticPath
					var truncated bool
					if e.IntraOnly {
						paths, truncated = concolic.StaticPaths(progAll, site, opts)
					} else {
						paths, truncated = concolic.ChainStaticPaths(progAll, site, chain, opts)
					}
					siteRep.TreeTruncated = siteRep.TreeTruncated || truncated
					for _, p := range paths {
						if seen[p.Key()] {
							continue
						}
						seen[p.Key()] = true
						siteRep.Paths = append(siteRep.Paths, &PathReport{
							Static:          p,
							Verdict:         concolic.CheckStaticPath(p),
							DynamicVerdicts: map[string]concolic.Verdict{},
						})
					}
				}
				return nil
			})
		}

		// Dynamic stage: select tests per site and replay them.
		if len(tests) > 0 {
			var selected []ticket.TestCase
			_ = stage("test-select", func() error {
				seen := map[string]bool{}
				for _, siteRep := range sr.Sites {
					var statics []*concolic.StaticPath
					for _, p := range siteRep.Paths {
						statics = append(statics, p.Static)
					}
					var chosen []ticket.TestCase
					if e.RunAllTests {
						chosen = selector.All()
					} else {
						chosen = selector.SelectForSite(siteRep.Site, siteRep.Chains, statics, e.topK())
					}
					for _, tc := range chosen {
						siteRep.SelectedTests = append(siteRep.SelectedTests, tc.Name)
						if !seen[tc.Name] {
							seen[tc.Name] = true
							selected = append(selected, tc)
						}
					}
				}
				return nil
			})
			_ = stage("concolic", func() error {
				e.runDynamic(progAll, sr, selected)
				return nil
			})
			report.TestsRun += len(selected)
		}

		// Aggregate verdicts and the sanity check.
		for _, siteRep := range sr.Sites {
			for _, p := range siteRep.Paths {
				switch p.Verdict {
				case concolic.VerdictVerified:
					report.Counts.Verified++
					sr.SanityOK = true
				case concolic.VerdictViolation:
					report.Counts.Violations++
				default:
					report.Counts.Unknown++
				}
				if !p.Covered() && !report.StaticOnly {
					report.Counts.Uncovered++
				}
				report.Counts.PostViolations += len(p.PostViolatedBy)
			}
		}
	}
	return report, nil
}

// confirmStructural replays the test suite under the runtime blocking
// monitor and attributes blocking-under-lock events to the statically
// flagged methods.
func (e *Engine) confirmStructural(prog *minij.Program, violations []*contract.StructuralViolation, tests []ticket.TestCase) map[int][]string {
	confirmed := map[int][]string{}
	for _, tc := range tests {
		in := interp.New(prog)
		mon := &contract.RuntimeBlockingMonitor{}
		mon.Attach(in)
		// Expected exceptions do not invalidate observed events.
		_, _ = in.CallStatic(tc.Class, tc.Method)
		for _, ev := range mon.Events {
			for i, v := range violations {
				if ev.Method == v.Method.FullName() && !containsString(confirmed[i], tc.Name) {
					confirmed[i] = append(confirmed[i], tc.Name)
				}
			}
		}
	}
	return confirmed
}

func (e *Engine) topK() int {
	if e.TestTopK <= 0 {
		return 3
	}
	return e.TestTopK
}

// runDynamic replays the selected tests, then attributes each site hit to
// the static path it instantiates (matching bindings, and a dynamic
// condition that entails the static one).
func (e *Engine) runDynamic(prog *minij.Program, sr *SemanticReport, selected []ticket.TestCase) {
	var sites []*contract.Site
	siteReps := map[*contract.Site]*SiteReport{}
	for _, siteRep := range sr.Sites {
		sites = append(sites, siteRep.Site)
		siteReps[siteRep.Site] = siteRep
	}
	if len(sites) == 0 {
		return
	}
	runner := concolic.NewRunner(prog, sites, interp.Options{})
	runner.SetNoPrune(e.NoPrune)
	for _, tc := range selected {
		// Tests may end in expected exceptions; hits before unwind count.
		_ = runner.RunStatic(tc.Name, tc.Class, tc.Method)
	}
	for _, hit := range runner.Hits {
		siteRep := siteReps[hit.Site]
		if siteRep == nil {
			continue
		}
		best := matchHitToPath(hit, siteRep.Paths)
		if best == nil {
			continue
		}
		if !containsString(best.CoveredBy, hit.TestName) {
			best.CoveredBy = append(best.CoveredBy, hit.TestName)
		}
		best.DynamicVerdicts[hit.TestName] = hit.Verdict()
		if hit.PostHolds == concolic.TriFalse && !containsString(best.PostViolatedBy, hit.TestName) {
			best.PostViolatedBy = append(best.PostViolatedBy, hit.TestName)
		}
	}
}

// matchHitToPath finds the most specific static path whose condition the
// hit's condition entails, with matching slot bindings.
func matchHitToPath(hit *concolic.SiteHit, paths []*PathReport) *PathReport {
	var best *PathReport
	bestAtoms := -1
	for _, p := range paths {
		if !bindingsEqual(hit.Bindings, p.Static.Bindings) {
			continue
		}
		if !smt.Implies(hit.Cond, p.Static.Cond) {
			continue
		}
		n := len(smt.Atoms(p.Static.Cond))
		if n > bestAtoms {
			best, bestAtoms = p, n
		}
	}
	return best
}

func bindingsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func containsString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func compileSource(src string) (*minij.Program, error) {
	prog, err := minij.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := minij.Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// SortedStageNames returns the timing keys in deterministic order.
func (r *AssertReport) SortedStageNames() []string {
	var names []string
	for n := range r.StageTimings {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
