package smt

import (
	"errors"

	"lisa/internal/faultinject"
)

// SATBatchLim answers a batch of boolean satisfiability queries through the
// result cache named by lim in one pass, returning parallel sat/error
// slices. Compared to looping over SATLim, a batch:
//
//   - classifies every query against the memory tier under a single lock
//     acquisition instead of one lock round trip per query, and
//   - coalesces duplicate formulas within the batch (and against solves
//     already in flight elsewhere in the process) onto a single solve —
//     followers wait for the leader instead of re-searching.
//
// The observable results are identical to issuing the queries one at a time
// in index order: verdicts are deterministic, budget errors surface exactly
// as they would uncached, and while fault injection is armed (or the cache
// is disabled) the batch degrades to per-query direct solves in index order
// so injected faults fire with the cadence a cold sequential run would see.
func SATBatchLim(fs []Formula, lim Limits) ([]bool, []error) {
	sats := make([]bool, len(fs))
	errs := make([]error, len(fs))
	qc := lim.Cache
	if qc == nil {
		qc = queryResults
	}
	bypass := !cacheEnabled.Load() || (faultinject.Armed() && !faultinject.StoreScoped())
	var keys []string
	var deferred []int // indices routed through the batched cache pass
	for i, f := range fs {
		stats.queries.Add(1)
		qc.queries.Add(1)
		if c, ok := f.(*Const); ok {
			sats[i] = c.Value
			continue
		}
		if bypass {
			sat, _, nodes, err := solveCore(f, lim)
			qc.solves.Add(1)
			qc.nodes.Add(uint64(nodes))
			sats[i], errs[i] = sat, err
			continue
		}
		keys = append(keys, f.String())
		deferred = append(deferred, i)
	}
	if len(keys) == 0 {
		return sats, errs
	}
	max := lim.MaxNodes
	if max <= 0 {
		max = DefaultMaxNodes
	}
	bs, berrs := qc.loadBatch(keys, max, func(k int) (bool, int, error) {
		sat, _, nodes, err := solveCore(fs[deferred[k]], lim)
		return sat, nodes, err
	})
	for k, i := range deferred {
		sats[i], errs[i] = bs[k], berrs[k]
	}
	return sats, errs
}

// loadBatch is load over a batch of keys: one lock acquisition classifies
// every key as a memory hit, a join on an in-flight solve (in this batch or
// elsewhere in the process), or a leader miss; leaders then solve once each
// in first-occurrence order, and duplicate keys within the batch collapse
// onto their leader's result. solve(k) must decide keys[k].
func (c *QueryCache) loadBatch(keys []string, maxNodes int, solve func(int) (bool, int, error)) ([]bool, []error) {
	n := len(keys)
	sats := make([]bool, n)
	errs := make([]error, n)

	// One pass under the lock: hits are served immediately; the first
	// occurrence of each unresolved key becomes (or joins) an in-flight
	// solve; later occurrences join their leader like any other follower.
	type follow struct {
		idx int
		fl  *inflightQuery
	}
	var leaders []int // indices that own their key's in-flight solve
	var joins []follow
	owned := map[string]*inflightQuery{} // key -> in-flight entry this batch leads
	c.mu.Lock()
	for i, key := range keys {
		if el, ok := c.entries[key]; ok {
			e := el.Value.(*cacheEntry)
			if e.nodes <= maxNodes {
				c.order.MoveToFront(el)
				stats.hits.Add(1)
				c.hits.Add(1)
				sats[i] = e.sat
				continue
			}
		}
		if fl, ok := c.inflight[key]; ok {
			joins = append(joins, follow{i, fl})
			continue
		}
		fl := &inflightQuery{done: make(chan struct{}), maxNodes: maxNodes}
		c.inflight[key] = fl
		owned[key] = fl
		leaders = append(leaders, i)
	}
	c.mu.Unlock()

	// Leaders: disk tier first, then a real solve, in first-occurrence
	// order — the order a sequential caller would have issued them.
	for _, i := range leaders {
		key := keys[i]
		fl := owned[key]
		if sat, nodes, ok := c.diskGet(key); ok && nodes <= maxNodes {
			fl.sat, fl.nodes = sat, nodes
			close(fl.done)
			c.mu.Lock()
			delete(c.inflight, key)
			c.mu.Unlock()
			stats.hits.Add(1)
			c.hits.Add(1)
			c.storeEntry(key, sat, nodes)
			sats[i] = sat
			continue
		}
		stats.misses.Add(1)
		c.misses.Add(1)
		fl.sat, fl.nodes, fl.err = c.runSolve(func() (bool, int, error) { return solve(i) })
		close(fl.done)
		c.mu.Lock()
		delete(c.inflight, key)
		c.mu.Unlock()
		if fl.err == nil {
			c.storeEntry(key, fl.sat, fl.nodes)
			c.diskPut(key, fl.sat, fl.nodes)
		}
		sats[i], errs[i] = fl.sat, fl.err
	}

	// Followers: wait on their leader (possibly one of this batch's own)
	// and apply the same reuse rules as load.
	for _, f := range joins {
		<-f.fl.done
		sats[f.idx], errs[f.idx] = c.followInflight(keys[f.idx], f.fl, maxNodes, func() (bool, int, error) { return solve(f.idx) })
	}
	return sats, errs
}

// followInflight resolves a follower against a finished in-flight solve:
// reuse the leader's verdict when it fits this caller's budget, propagate a
// budget exhaustion the follower's own (equal or smaller) budget would have
// reproduced, and otherwise re-solve under the follower's own limits.
func (c *QueryCache) followInflight(key string, fl *inflightQuery, maxNodes int, solve func() (bool, int, error)) (bool, error) {
	if fl.err == nil && fl.nodes <= maxNodes {
		stats.hits.Add(1)
		c.hits.Add(1)
		return fl.sat, nil
	}
	if fl.err != nil && errors.Is(fl.err, ErrBudget) && maxNodes <= fl.maxNodes {
		// The search is deterministic: a budget no larger than the
		// leader's exhausts on exactly the same node, so every waiter gets
		// the identical ErrBudget without duplicating the doomed search.
		stats.misses.Add(1)
		c.misses.Add(1)
		return fl.sat, fl.err
	}
	// The leader degraded some other way (cancellation) or needed more
	// nodes than we may spend; solve under our own limits.
	stats.misses.Add(1)
	c.misses.Add(1)
	sat, nodes, err := c.runSolve(solve)
	if err == nil {
		c.storeEntry(key, sat, nodes)
	}
	return sat, err
}
