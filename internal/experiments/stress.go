package experiments

// This file is the E-P1 scaling study: a seeded synthetic corpus far
// larger than the paper's case studies — thousands of guarded call sites
// behind deep helper chains — asserted under every execution topology the
// engine offers (sequential loop, batched scheduler at several widths,
// in-process shard children merging through a shared store). The point is
// the shape of the scaling curve and the byte-identity invariant, not the
// absolute numbers: every topology must render the same report.

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"lisa/internal/contract"
	"lisa/internal/core"
	"lisa/internal/program"
	"lisa/internal/report"
	"lisa/internal/sched"
	"lisa/internal/shard"
	"lisa/internal/smt"
	"lisa/internal/store"
	"lisa/internal/ticket"
)

// StressSites is the approximate number of guarded call sites the stress
// corpus generates. The default keeps `go test` and the lisabench sweep
// quick; cmd/lisabench -stress-sites raises it to the paper-scale 10k run
// recorded in EXPERIMENTS.md E-P1.
var StressSites = 2000

// stressCorpus generates the synthetic system: features independent
// service replicas, each with one contract (ephemeral create requires a
// live session) and sitesPerFeature guarded call sites, every site at the
// bottom of a three-hop caller chain so path enumeration does real work.
// The generator is purely count-seeded — the same StressSites always
// yields byte-identical source and spec.
func stressCorpus(features, handlersPerFeature int) (src, spec string) {
	var sb, sp strings.Builder
	for f := 0; f < features; f++ {
		fmt.Fprintf(&sb, `
class Session%d {
	bool closing;
}

class DataTree%d {
	map nodes;

	void createEphemeral(string path, Session%d owner) {
		nodes.put(path, owner);
	}
}

class Prep%d {
	DataTree%d tree;
`, f, f, f, f, f)
		for h := 0; h < handlersPerFeature; h++ {
			// Each handler guards two call sites; the entry chain above it
			// adds three hops of branching callers.
			fmt.Fprintf(&sb, `
	void handle%[2]d(string path, Session%[1]d s, int mode) {
		if (s == null || s.closing) {
			throw "KeeperException";
		}
		if (mode > 2) {
			tree.createEphemeral(path, s);
		} else {
			tree.createEphemeral(path, s);
		}
	}

	void relay%[2]d(string path, Session%[1]d s, int mode) {
		if (mode > 1) {
			handle%[2]d(path, s, mode);
		} else {
			handle%[2]d(path, s, mode);
		}
	}

	void route%[2]d(string path, Session%[1]d s, int mode) {
		if (mode == 1) {
			relay%[2]d(path, s, mode);
		} else {
			relay%[2]d(path, s, mode);
		}
	}

	void entry%[2]d(string path, Session%[1]d s, int mode, int retries) {
		if (retries > 0) {
			route%[2]d(path, s, mode);
		} else {
			route%[2]d(path, s, mode);
		}
	}
`, f, h)
		}
		sb.WriteString("}\n")
		fmt.Fprintf(&sp, `
rule stress-eph-%d
description: ephemeral create requires a live session (stress replica %d)
target: DataTree%d.createEphemeral
bind: s = arg 1
require: s != null && s.closing == false
`, f, f, f)
	}
	return sb.String(), sp.String()
}

// stressEngine builds a fresh engine over the stress spec with private
// snapshot and solver caches, the way each child process of a sharded run
// owns its own. Private caches also keep the process-wide counters that
// lisabench -diff tracks untouched by the stress run, so the perf gate
// stays exactly reproducible at any -stress-sites.
func stressEngine(spec string) (*core.Engine, error) {
	sems, err := contract.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	e := core.New()
	e.Snapshots = program.NewCache(program.DefaultCapacity)
	e.Solver = smt.NewQueryCache(0)
	for _, sem := range sems {
		if err := e.Registry.Add(sem); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// stressTests exercises replica 0's deepest chain so each topology also
// runs a dynamic replay wave.
func stressTests() []ticket.TestCase {
	return []ticket.TestCase{{
		Name:        "StressTest.liveCreate",
		Description: "create on a live session reaches the tree",
		Class:       "StressTest",
		Method:      "liveCreate",
		Source: `
class StressTest {
	static void liveCreate() {
		Prep0 p = new Prep0();
		p.tree = new DataTree0();
		p.tree.nodes = newMap();
		Session0 s = new Session0();
		s.closing = false;
		p.entry0("/live", s, 1, 1);
		assertTrue(p.tree.nodes.has("/live"), "node created");
	}
}
`,
	}}
}

// stressSnapshotSources lists the snapshot cache keys a stress child will
// ask for: the system source, and (mirroring Engine.PrepareSnapshot's
// concatenation) the system plus every test appended. Prewarming exactly
// these keys makes the child's Prepare a pure decode.
func stressSnapshotSources(src string, tests []ticket.TestCase) []string {
	full := src
	for _, tc := range tests {
		full += "\n" + tc.Source
	}
	return []string{src, full}
}

// runShardTopology executes one shards × workers topology in-process: one
// cold scheduler per shard (fresh engine, shared on-disk store) running
// concurrently like child processes, then a merge run over the warmed
// store. The parent performs the warm handoff first — it parses the system
// and system+tests snapshots once and persists their binary-AST records
// into the shared store — so each child's setup is a decode+digest restore
// rather than a full parse. Per-child Setup (engine build + store attach +
// snapshot restore) is measured separately from assert time so the ledger
// shows the handoff's effect. It returns the merged report's rendering,
// the per-stage ledger, and the total wall clock.
func runShardTopology(spec, src string, tests []ticket.TestCase, shards, workers int) (string, string, time.Duration, error) {
	dir, err := os.MkdirTemp("", "lisa-stress-")
	if err != nil {
		return "", "", 0, err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir)
	if err != nil {
		return "", "", 0, err
	}
	defer st.Close()
	start := time.Now()

	// Warm handoff: serialize the parsed snapshots before any child starts.
	prewarm := program.NewCache(0)
	prewarm.SetStore(st)
	for _, source := range stressSnapshotSources(src, tests) {
		snap, perr := prewarm.Load(source)
		if perr != nil {
			return "", "", 0, fmt.Errorf("prewarm shard store: %w", perr)
		}
		snap.Graph() // the persist trigger: write the fully-warmed record
	}
	if err := st.Flush(); err != nil {
		return "", "", 0, err
	}

	results := make([]shard.Result, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			childStart := time.Now()
			var setup time.Duration
			e, cerr := stressEngine(spec)
			if cerr == nil {
				e.Snapshots.SetStore(st)
				// Restore the snapshots through the store explicitly so the
				// setup/assert boundary is crisp: everything up to here is
				// what a child pays before its first job runs.
				for _, source := range stressSnapshotSources(src, tests) {
					if _, cerr = e.Snapshots.Load(source); cerr != nil {
						break
					}
				}
				setup = time.Since(childStart)
			}
			if cerr == nil {
				s := sched.New()
				s.Cache().SetStore(st)
				_, _, cerr = s.Assert(e, src, tests, sched.Options{
					Workers: workers, ShardIndex: i, ShardCount: shards,
				})
			}
			results[i] = shard.Result{Index: i, Err: cerr, Wall: time.Since(childStart), Setup: setup}
		}(i)
	}
	wg.Wait()
	for _, r := range results {
		if r.Err != nil {
			return "", "", 0, fmt.Errorf("shard %d: %v", r.Index, r.Err)
		}
	}
	if err := st.Flush(); err != nil {
		return "", "", 0, err
	}
	mergeStart := time.Now()
	e, err := stressEngine(spec)
	if err != nil {
		return "", "", 0, err
	}
	e.Snapshots.SetStore(st)
	s := sched.New()
	s.Cache().SetStore(st)
	rep, stats, err := s.Assert(e, src, tests, sched.Options{Workers: workers})
	if err != nil {
		return "", "", 0, err
	}
	if stats.Executed != 0 {
		return "", "", 0, fmt.Errorf("merge executed %d jobs; the shard partition missed work", stats.Executed)
	}
	ledger := shard.Ledger(results, time.Since(mergeStart))
	return rep.Render(), ledger, time.Since(start), nil
}

// RunStress regenerates the E-P1 scaling table. The corpus argument is
// unused — the workload is synthetic by design, sized by StressSites.
func RunStress(_ *ticket.Corpus) string {
	handlersPerFeature := 25 // 50 sites per feature
	features := StressSites / (handlersPerFeature * 2)
	if features < 4 {
		features = 4
	}
	src, spec := stressCorpus(features, handlersPerFeature)
	tests := stressTests()
	sites := features * handlersPerFeature * 2

	// Sequential baseline: the plain engine loop. Every timed topology
	// starts from a collected heap, and only the rendered baseline (not
	// the engine or report object graph) stays live across topologies —
	// the workload allocates heavily, and retained state or GC debt from
	// one topology would otherwise tax the next, skewing the curve by run
	// order.
	var want string
	var seqWall time.Duration
	var verified int
	{
		seqEngine, err := stressEngine(spec)
		if err != nil {
			return "stress generator error: " + err.Error()
		}
		runtime.GC()
		seqStart := time.Now()
		seqRep, err := seqEngine.Assert(src, tests)
		if err != nil {
			return "stress sequential error: " + err.Error()
		}
		seqWall = time.Since(seqStart)
		want = seqRep.Render()
		verified = seqRep.Counts.Verified
	}

	t := &report.Table{
		Title: fmt.Sprintf("Scaling: %d guarded sites, %d contracts, deep call chains (GOMAXPROCS=%d)",
			sites, features, runtime.GOMAXPROCS(0)),
		Headers: []string{"topology", "wall (ms)", "speedup", "identical"},
	}
	ms := func(d time.Duration) string { return fmt.Sprintf("%.0f", float64(d)/float64(time.Millisecond)) }
	speedup := func(d time.Duration) string { return fmt.Sprintf("%.2fx", float64(seqWall)/float64(d)) }
	t.AddRow("sequential engine loop", ms(seqWall), "1.00x", "-")

	identical := true
	schedTopo := func(label string, workers int) {
		e, err := stressEngine(spec)
		if err != nil {
			t.AddRow(label, "error: "+err.Error(), "-", "-")
			identical = false
			return
		}
		runtime.GC()
		start := time.Now()
		rep, _, err := sched.New().Assert(e, src, tests, sched.Options{Workers: workers})
		if err != nil {
			t.AddRow(label, "error: "+err.Error(), "-", "-")
			identical = false
			return
		}
		wall := time.Since(start)
		same := rep.Render() == want
		identical = identical && same
		t.AddRow(label, ms(wall), speedup(wall), yesNo(same))
	}
	schedTopo("scheduler, workers=1 (batched inline)", 1)
	schedTopo(fmt.Sprintf("scheduler, workers=GOMAXPROCS (%d)", runtime.GOMAXPROCS(0)), 0)

	var shardLedger string
	for _, shards := range []int{2, 4} {
		label := fmt.Sprintf("shards=%d x workers=%d + merge", shards, runtime.GOMAXPROCS(0))
		runtime.GC()
		got, ledger, wall, err := runShardTopology(spec, src, tests, shards, 0)
		if err != nil {
			t.AddRow(label, "error: "+err.Error(), "-", "-")
			identical = false
			continue
		}
		same := got == want
		identical = identical && same
		t.AddRow(label, ms(wall), speedup(wall), yesNo(same))
		shardLedger = ledger
	}
	if identical {
		t.AddNote("every topology rendered byte-identically to the sequential report (%d sites, %d verified paths).",
			sites, verified)
	} else {
		t.AddNote("DIVERGENCE: a topology rendered a different report — shard/worker count must never change verdicts.")
	}
	if runtime.GOMAXPROCS(0) == 1 {
		t.AddNote("single-core runner: parallel topologies cannot beat the sequential loop here; since the warm handoff, children restore the parent's serialized snapshots instead of re-parsing, so their remaining setup tax is decode+digest (see the setup rows above). The curve is meaningful on multi-core runners (EXPERIMENTS.md E-P1).")
	}
	return t.Render() + shardLedger
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
