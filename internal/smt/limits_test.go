package smt

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// hardFormula builds a query whose DPLL search must enumerate every
// assignment of n free tautological clauses before the trailing
// contradiction (over atoms assigned last) can surface — >2^n nodes,
// enough to trip small node ceilings and the periodic context poll. Two
// details defeat the optimized solver's shortcuts on purpose: the
// contradiction is spread across four two-literal Or clauses so unit
// propagation cannot see it, and each tautological clause is repeated so
// its atom outranks the tail atoms under the most-constrained-first
// ordering and is decided first.
func hardFormula(t *testing.T, n int) Formula {
	t.Helper()
	src := ""
	for i := 0; i < n; i++ {
		cl := fmt.Sprintf("(x%d > 0 || x%d <= 0)", i, i)
		src += cl + " && " + cl + " && " + cl + " && "
	}
	src += "(y > 0 || z > 0) && (y > 0 || z <= 0) && (y <= 0 || z > 0) && (y <= 0 || z <= 0)"
	f, err := ParsePredicate(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestSolveLimNodeBudget: a node ceiling below the search size surfaces
// ErrBudget instead of a made-up verdict.
func TestSolveLimNodeBudget(t *testing.T) {
	f := hardFormula(t, 6)
	_, _, err := SolveLim(f, Limits{MaxNodes: 100})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("SolveLim with MaxNodes=100: err = %v, want ErrBudget", err)
	}
	// The same query under default limits decides cleanly (UNSAT).
	sat, err := SATErr(f)
	if err != nil {
		t.Fatalf("SATErr under default limits: %v", err)
	}
	if sat {
		t.Fatal("hard formula is UNSAT but SATErr said SAT")
	}
}

// TestSolveLimContextCancelled: a cancelled context aborts the search via
// the cooperative poll and surfaces the context's error.
func TestSolveLimContextCancelled(t *testing.T) {
	// Bypass the result cache: this exercises the search's cooperative
	// poll, and a warm cache would answer before the search ever runs.
	defer SetQueryCacheEnabled(SetQueryCacheEnabled(false))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SATLim(hardFormula(t, 6), Limits{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SATLim under cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// TestSATErrMatchesSATOnDecidedQueries: the legacy SAT and the
// error-propagating SATErr agree whenever the query decides within budget.
func TestSATErrMatchesSATOnDecidedQueries(t *testing.T) {
	for _, src := range []string{
		"a > 0",
		"a > 0 && a <= 0",
		"s != null && s.isClosing() == false",
	} {
		f := MustParsePredicate(src)
		got, err := SATErr(f)
		if err != nil {
			t.Fatalf("SATErr(%s): %v", src, err)
		}
		if want := SAT(f); got != want {
			t.Errorf("SATErr(%s) = %v, SAT = %v", src, got, want)
		}
	}
}
