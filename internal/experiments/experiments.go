// Package experiments implements the reproduction harness: one entry per
// figure and quantitative claim of the paper, each regenerating the
// corresponding rows/series from the simulated corpus. cmd/lisabench and
// the root bench_test.go drive these entries; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package experiments

import (
	"fmt"

	"lisa/internal/concolic"
	"lisa/internal/core"
	"lisa/internal/interp"
	"lisa/internal/report"
	"lisa/internal/ticket"
)

// Registry maps experiment names to runners, in presentation order.
var Registry = []struct {
	Name  string
	Title string
	Run   func(c *ticket.Corpus) string
}{
	{"study", "§2.1 study: regression failures across systems (E-S1)", RunStudy},
	{"timeline", "Figure 1: regressions recur without enforcement (E-F1)", RunTimeline},
	{"ephemeral", "Figures 2-3: the ZooKeeper ephemeral-node case (E-F2/F3)", RunEphemeral},
	{"comparison", "Figure 4: testing vs low-level semantics vs exhaustive checking (E-F4)", RunComparison},
	{"workflow", "Figure 5: end-to-end workflow with stage timings (E-F5)", RunWorkflow},
	{"generalize", "Figure 6: literal vs generalized rules (E-F6)", RunGeneralize},
	{"hbase", "§4 Bug #1: expired-snapshot checks missing in latest hbasesim (E-B1)", RunHBaseBug},
	{"hdfs", "§4 Bug #2: observer location checks missing in latest hdfssim (E-B2)", RunHDFSBug},
	{"reliability", "§5 Q1: LLM noise and the cross-checking defence (E-Q1)", RunReliability},
	{"compose", "§5 Q3: composing low-level semantics (E-Q3)", RunCompose},
	{"mutation", "DESIGN sweep: guard-weakening mutants, tests vs LISA (E-M1)", RunMutation},
	{"ablations", "Design ablations: pruning, complement check, test selection (E-A1)", RunAblations},
	{"chaos", "Degradation modes: fault-injection matrix over the gate (E-R1)", RunChaos},
	{"stress", "Scaling: batched scheduler and shard topologies on the synthetic stress corpus (E-P1)", RunStress},
}

// Run executes the named experiment over the corpus, or every experiment
// when name is "all".
func Run(name string, c *ticket.Corpus) (string, error) {
	if name == "all" {
		out := ""
		for _, e := range Registry {
			out += report.Section("EXPERIMENT " + e.Name + ": " + e.Title)
			out += e.Run(c)
		}
		return out, nil
	}
	for _, e := range Registry {
		if e.Name == name {
			return e.Run(c), nil
		}
	}
	return "", fmt.Errorf("unknown experiment %q (have: %s)", name, Names())
}

// Names lists the experiment names.
func Names() string {
	var ns []string
	for _, e := range Registry {
		ns = append(ns, e.Name)
	}
	ns = append(ns, "all")
	return fmt.Sprint(ns)
}

// RunStudy regenerates the §2.1 study numbers: cases, bugs, systems, test
// corpus size, and per-feature longevity (the ephemeral feature's 46 bugs
// over 14 years analogue).
func RunStudy(c *ticket.Corpus) string {
	st := c.ComputeStats()
	summary := &report.Table{
		Title:   "Study corpus summary",
		Headers: []string{"metric", "value"},
	}
	summary.AddRow("regression cases", st.Cases)
	summary.AddRow("total bugs", st.Bugs)
	summary.AddRow("systems", st.Systems)
	summary.AddRow("test files", st.TestFiles)

	perSystem := &report.Table{
		Title:   "Per-system breakdown",
		Headers: []string{"system", "cases", "bugs", "tests", "max feature span (yrs)"},
	}
	for _, name := range c.SystemNames() {
		ss := st.BySystem[name]
		perSystem.AddRow(name, ss.Cases, ss.Bugs, ss.Tests, ss.Span)
	}

	features := &report.Table{
		Title:   "Recurring feature areas",
		Headers: []string{"case", "system", "feature", "studied bugs", "feature bugs", "span (yrs)", "suite coverage"},
	}
	totalCov := 0.0
	covered := 0
	for _, cs := range c.Cases {
		cov, ok := suiteCoverage(cs)
		covText := "-"
		if ok {
			covText = fmt.Sprintf("%.0f%%", cov*100)
			totalCov += cov
			covered++
		}
		features.AddRow(cs.ID, cs.System, cs.Feature, cs.Bugs(), cs.FeatureBugCount,
			cs.LastReported-cs.FirstReported, covText)
	}
	if covered > 0 {
		features.AddNote("mean statement coverage of the suites at head: %.0f%% — \"a significant volume of test cases with satisfactory code coverage\" (§2.2).",
			totalCov/float64(covered)*100)
	}
	return summary.Render() + perSystem.Render() + features.Render()
}

// suiteCoverage replays a case's full suite against its head and measures
// the fraction of system statements executed (test-class statements are
// excluded from the denominator).
func suiteCoverage(cs *ticket.Case) (float64, bool) {
	head := cs.Head()
	sysProg, err := compileQuiet(head)
	if err != nil {
		return 0, false
	}
	sysClasses := map[string]bool{}
	for _, c := range sysProg.Classes {
		sysClasses[c.Name] = true
	}
	full := head
	for _, tc := range cs.Tests {
		full += "\n" + tc.Source
	}
	prog, err := compileQuiet(full)
	if err != nil {
		return 0, false
	}
	runner := concolic.NewRunner(prog, nil, interp.Options{})
	for _, tc := range cs.Tests {
		_ = runner.RunStatic(tc.Name, tc.Class, tc.Method)
	}
	var total, hit int
	for id := 0; id < prog.NumStmts(); id++ {
		m := prog.MethodOf(id)
		if m == nil || !sysClasses[m.Class.Name] {
			continue
		}
		total++
		if runner.StmtsCovered[id] {
			hit++
		}
	}
	if total == 0 {
		return 0, false
	}
	return float64(hit) / float64(total), true
}

// RunTimeline regenerates Figure 1: replaying each case's history shows the
// regression recurring when nothing is enforced, and blocked pre-merge when
// the rule inferred from the first fix gates changes.
func RunTimeline(c *ticket.Corpus) string {
	t := &report.Table{
		Title:   "History replay: would enforcement have prevented the recurrence?",
		Headers: []string{"case", "bugs", "recurrences", "caught by first-fix rule", "missed"},
	}
	totalRec, totalCaught := 0, 0
	for _, cs := range c.Cases {
		e := core.New()
		if _, err := e.ProcessTicket(cs.Tickets[0]); err != nil {
			t.AddRow(cs.ID, cs.Bugs(), "-", "error: "+err.Error(), "-")
			continue
		}
		caught, missed := 0, 0
		for _, tk := range cs.Tickets[1:] {
			rep, err := e.Assert(tk.BuggySource, nil)
			if err != nil || rep.Counts.Violations == 0 {
				missed++
				continue
			}
			caught++
		}
		totalRec += caught + missed
		totalCaught += caught
		t.AddRow(cs.ID, cs.Bugs(), caught+missed, caught, missed)
	}
	t.AddNote("%d/%d recurrences would have been blocked before merge by enforcing the rule learned from the first fix.",
		totalCaught, totalRec)
	return t.Render()
}
