// Command lisabench regenerates every table and figure of the paper from
// the simulated corpus. Run one experiment with -exp <name>, or all of
// them with -exp all (the default). Full runs end with a wall-clock
// ledger showing where the sweep spent its time.
//
// Usage:
//
//	lisabench [-exp study|timeline|ephemeral|comparison|workflow|
//	                generalize|hbase|hdfs|reliability|compose|ablations|
//	                chaos|all]
//	          [-timings=false] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"lisa/internal/corpus"
	"lisa/internal/experiments"
	"lisa/internal/program"
	"lisa/internal/report"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (use 'all' for every experiment); one of "+experiments.Names())
	timings := flag.Bool("timings", true, "print the per-experiment wall-clock ledger after a full run")
	seed := flag.Int64("seed", 1, "deterministic seed for seeded experiments (chaos fault plan)")
	flag.Parse()

	experiments.ChaosSeed = *seed

	c := corpus.Load()
	if *exp == "all" {
		// Drive the registry directly so each experiment's wall clock is
		// recorded; the output matches experiments.Run("all", c).
		tm := report.NewTimings()
		for _, e := range experiments.Registry {
			fmt.Print(report.Section("EXPERIMENT " + e.Name + ": " + e.Title))
			var out string
			tm.Time(e.Name, func() { out = e.Run(c) })
			fmt.Print(out)
		}
		if *timings {
			fmt.Print(tm.Render("Wall clock by experiment"))
			// Experiments replay the same corpus versions over and over;
			// the snapshot cache shows how much front-end work was shared.
			st := program.Stats()
			fmt.Printf("snapshot cache: %d loads, %d hits, %d distinct versions compiled, %d call graphs built, %d evictions\n",
				st.Hits+st.Misses, st.Hits, st.Compiles, st.GraphBuilds, st.Evictions)
		}
		return
	}
	out, err := experiments.Run(*exp, c)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lisabench:", err)
		os.Exit(2)
	}
	fmt.Print(out)
}
