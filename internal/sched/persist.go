package sched

import (
	"encoding/json"

	"lisa/internal/concolic"
	"lisa/internal/contract"
	"lisa/internal/core"
	"lisa/internal/minij"
	"lisa/internal/smt"
	"lisa/internal/store"
)

// Disk-tier namespaces, one per job kind, versioned so an encoding change
// reads as a clean miss instead of a decode failure.
const (
	siteNamespace       = "fp.site.v1"
	structuralNamespace = "fp.str.v1"
	dynamicNamespace    = "fp.dyn.v1"
)

// SetStore attaches (nil: detaches) the on-disk tier behind this cache.
// Safe to call concurrently with running jobs.
func (c *Cache) SetStore(st *store.Store) { c.disk.Store(st) }

// CacheName identifies this cache in unified tier stats.
func (c *Cache) CacheName() string { return "fingerprint" }

// TierStats reports the two-tier counters in the unified shape.
func (c *Cache) TierStats() store.TierStats {
	c.mu.Lock()
	hits, misses := c.hits, c.misses
	c.mu.Unlock()
	ts := store.TierStats{
		Cache:      c.CacheName(),
		MemHits:    uint64(hits),
		MemMisses:  uint64(misses),
		DiskHits:   c.diskHits.Load(),
		DiskMisses: c.diskMisses.Load(),
		DiskWrites: c.diskWrites.Load(),
	}
	if st := c.disk.Load(); st != nil {
		ts.DiskWriteErrors = st.NamespaceWriteErrors(siteNamespace, structuralNamespace, dynamicNamespace)
	}
	return ts
}

var _ store.CacheBackend = (*Cache)(nil)

// --- record shapes --------------------------------------------------------
//
// Cached results hold pointers into a run's AST (sites, methods,
// statements) and solver formulas, none of which can be persisted directly.
// The records below flatten them to canonical text and stable anchors
// (qualified method names, statement IDs, source positions), and the decode
// side re-anchors onto the current run's program. Every anchor is verified:
// a formula must re-render to the exact persisted text, a method or
// statement must resolve unambiguously. Any mismatch makes the whole record
// a miss — a stale or corrupt record must never produce a silently wrong
// report.

type guardRecord struct {
	Guard string `json:"guard"`
	Taken bool   `json:"taken"`
	Line  int    `json:"line"`
	Col   int    `json:"col"`
}

type pathRecord struct {
	Cond           string            `json:"cond,omitempty"`
	FullCond       string            `json:"fullCond,omitempty"`
	Bindings       map[string]string `json:"bindings,omitempty"`
	Guards         []guardRecord     `json:"guards,omitempty"`
	Verdict        int               `json:"verdict"`
	CoveredBy      []string          `json:"coveredBy,omitempty"`
	DynVerdicts    map[string]int    `json:"dynVerdicts,omitempty"`
	PostViolatedBy []string          `json:"postViolatedBy,omitempty"`
}

type siteRecord struct {
	Truncated bool         `json:"truncated,omitempty"`
	Paths     []pathRecord `json:"paths"`
}

type violationRecord struct {
	Rule    string   `json:"rule"`
	Method  string   `json:"method"`
	Stmt    int      `json:"stmt"`
	Builtin string   `json:"builtin,omitempty"`
	Chain   []string `json:"chain,omitempty"`
}

type structuralRecord struct {
	SanityOK    bool              `json:"sanityOK"`
	Violations  []violationRecord `json:"violations,omitempty"`
	ConfirmedBy map[int][]string  `json:"confirmedBy,omitempty"`
}

type dynPathRecord struct {
	CoveredBy      []string       `json:"coveredBy,omitempty"`
	DynVerdicts    map[string]int `json:"dynVerdicts,omitempty"`
	PostViolatedBy []string       `json:"postViolatedBy,omitempty"`
}

type dynSiteRecord struct {
	Selected []string        `json:"selected,omitempty"`
	Paths    []dynPathRecord `json:"paths"`
}

type dynRecord struct {
	TestsRun int             `json:"testsRun"`
	Sites    []dynSiteRecord `json:"sites"`
}

// --- formulas -------------------------------------------------------------

// renderFormula flattens a formula to its canonical text; nil renders as
// the empty string.
func renderFormula(f smt.Formula) string {
	if f == nil {
		return ""
	}
	return f.String()
}

// parseFormula is the inverse, with the round trip verified: the re-parsed
// formula must render byte-identically to the persisted text, so rendering
// cached reports can never drift from what the original run produced.
func parseFormula(src string) (smt.Formula, bool) {
	if src == "" {
		return nil, true
	}
	f, err := smt.ParsePredicate(src)
	if err != nil || f.String() != src {
		return nil, false
	}
	return f, true
}

func encodeVerdicts(m map[string]concolic.Verdict) map[string]int {
	if m == nil {
		return nil
	}
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = int(v)
	}
	return out
}

func decodeVerdicts(m map[string]int) map[string]concolic.Verdict {
	out := make(map[string]concolic.Verdict, len(m))
	for k, v := range m {
		out[k] = concolic.Verdict(v)
	}
	return out
}

// --- site records ---------------------------------------------------------

func encodeSite(siteRep *core.SiteReport) *siteRecord {
	rec := &siteRecord{Truncated: siteRep.TreeTruncated, Paths: make([]pathRecord, len(siteRep.Paths))}
	for i, p := range siteRep.Paths {
		pr := pathRecord{
			Verdict:        int(p.Verdict),
			CoveredBy:      p.CoveredBy,
			DynVerdicts:    encodeVerdicts(p.DynamicVerdicts),
			PostViolatedBy: p.PostViolatedBy,
		}
		if sp := p.Static; sp != nil {
			pr.Cond = renderFormula(sp.Cond)
			pr.FullCond = renderFormula(sp.FullCond)
			pr.Bindings = sp.Bindings
			pr.Guards = make([]guardRecord, len(sp.Guards))
			for j, g := range sp.Guards {
				pr.Guards[j] = guardRecord{Guard: g.Guard, Taken: g.Taken, Line: g.Pos.Line, Col: g.Pos.Col}
			}
		}
		rec.Paths[i] = pr
	}
	return rec
}

// decodeSite rebuilds path reports onto the current run's site object, so
// dynamic replay and rendering see the current program exactly as a memory
// hit would.
func decodeSite(rec *siteRecord, site *contract.Site) ([]*core.PathReport, bool) {
	paths := make([]*core.PathReport, len(rec.Paths))
	for i, pr := range rec.Paths {
		cond, ok := parseFormula(pr.Cond)
		if !ok {
			return nil, false
		}
		full, ok := parseFormula(pr.FullCond)
		if !ok {
			return nil, false
		}
		sp := &concolic.StaticPath{Site: site, Cond: cond, FullCond: full, Bindings: pr.Bindings}
		if len(pr.Guards) > 0 {
			sp.Guards = make([]concolic.GuardStep, len(pr.Guards))
			for j, g := range pr.Guards {
				sp.Guards[j] = concolic.GuardStep{Guard: g.Guard, Taken: g.Taken, Pos: minij.Pos{Line: g.Line, Col: g.Col}}
			}
		}
		paths[i] = &core.PathReport{
			Static:          sp,
			Verdict:         concolic.Verdict(pr.Verdict),
			CoveredBy:       pr.CoveredBy,
			DynamicVerdicts: decodeVerdicts(pr.DynVerdicts),
			PostViolatedBy:  pr.PostViolatedBy,
		}
	}
	return paths, true
}

// --- structural records ---------------------------------------------------

func encodeStructural(sr *core.SemanticReport) *structuralRecord {
	rec := &structuralRecord{SanityOK: sr.SanityOK, ConfirmedBy: sr.StructuralConfirmedBy}
	for _, v := range sr.Structural {
		vr := violationRecord{Rule: v.Rule, Builtin: v.Builtin, Chain: v.Chain, Stmt: -1}
		if v.Method != nil {
			vr.Method = v.Method.FullName()
		}
		if v.Stmt != nil {
			vr.Stmt = v.Stmt.ID()
		}
		rec.Violations = append(rec.Violations, vr)
	}
	return rec
}

// decodeStructural re-anchors the violations onto the current system
// program: methods by qualified name, statements by ID (stable for a given
// canonical program, which the fingerprint pins).
func decodeStructural(rec *structuralRecord, sem *contract.Semantic, prog *minij.Program) (*core.SemanticReport, bool) {
	methods := map[string]*minij.Method{}
	for _, m := range prog.Methods() {
		methods[m.FullName()] = m
	}
	sr := &core.SemanticReport{Semantic: sem, SanityOK: rec.SanityOK, StructuralConfirmedBy: rec.ConfirmedBy}
	for _, vr := range rec.Violations {
		v := &contract.StructuralViolation{Rule: vr.Rule, Builtin: vr.Builtin, Chain: vr.Chain}
		if vr.Method != "" {
			m, ok := methods[vr.Method]
			if !ok {
				return nil, false
			}
			v.Method = m
		}
		if vr.Stmt >= 0 {
			stmt := prog.StmtByID(vr.Stmt)
			if stmt == nil {
				return nil, false
			}
			v.Stmt = stmt
		}
		sr.Structural = append(sr.Structural, v)
	}
	return sr, true
}

// --- dynamic records ------------------------------------------------------

func encodeDynamic(ov *dynOverlay) *dynRecord {
	rec := &dynRecord{TestsRun: ov.testsRun, Sites: make([]dynSiteRecord, len(ov.sites))}
	for i, s := range ov.sites {
		ds := dynSiteRecord{Selected: s.selected, Paths: make([]dynPathRecord, len(s.paths))}
		for j, p := range s.paths {
			ds.Paths[j] = dynPathRecord{
				CoveredBy:      p.coveredBy,
				DynVerdicts:    encodeVerdicts(p.dynVerdicts),
				PostViolatedBy: p.postViolatedBy,
			}
		}
		rec.Sites[i] = ds
	}
	return rec
}

func decodeDynamic(rec *dynRecord) *dynOverlay {
	ov := &dynOverlay{testsRun: rec.TestsRun, sites: make([]siteDyn, len(rec.Sites))}
	for i, ds := range rec.Sites {
		s := siteDyn{selected: ds.Selected, paths: make([]pathDyn, len(ds.Paths))}
		for j, p := range ds.Paths {
			s.paths[j] = pathDyn{
				coveredBy:      p.CoveredBy,
				dynVerdicts:    decodeVerdicts(p.DynVerdicts),
				postViolatedBy: p.PostViolatedBy,
			}
		}
		ov.sites[i] = s
	}
	return ov
}

// --- disk tier ------------------------------------------------------------

// diskGet fetches and unmarshals one record; a decode failure counts as a
// miss (the CRC layer below already rejected torn or corrupted frames, so
// a JSON failure here means a version skew).
func (c *Cache) diskGet(ns, fp string, into any) bool {
	st := c.disk.Load()
	if st == nil {
		return false
	}
	raw, ok := st.Get(ns, fp)
	if !ok || json.Unmarshal(raw, into) != nil {
		c.diskMisses.Add(1)
		return false
	}
	return true
}

func (c *Cache) diskPut(ns, fp string, rec any) {
	st := c.disk.Load()
	if st == nil {
		return
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return
	}
	st.Put(ns, fp, raw)
	c.diskWrites.Add(1)
}

// diskGetSite serves a site job from the disk tier, re-anchored onto the
// current run's site.
func (c *Cache) diskGetSite(fp string, site *contract.Site) ([]*core.PathReport, bool, bool) {
	var rec siteRecord
	if !c.diskGet(siteNamespace, fp, &rec) {
		return nil, false, false
	}
	paths, ok := decodeSite(&rec, site)
	if !ok {
		c.diskMisses.Add(1)
		return nil, false, false
	}
	c.diskHits.Add(1)
	return paths, rec.Truncated, true
}

func (c *Cache) diskPutSite(fp string, siteRep *core.SiteReport) {
	c.diskPut(siteNamespace, fp, encodeSite(siteRep))
}

// diskGetStructural serves a structural job from the disk tier, re-anchored
// onto the current system program.
func (c *Cache) diskGetStructural(fp string, sem *contract.Semantic, prog *minij.Program) (*core.SemanticReport, bool) {
	var rec structuralRecord
	if !c.diskGet(structuralNamespace, fp, &rec) {
		return nil, false
	}
	sr, ok := decodeStructural(&rec, sem, prog)
	if !ok {
		c.diskMisses.Add(1)
		return nil, false
	}
	c.diskHits.Add(1)
	return sr, true
}

func (c *Cache) diskPutStructural(fp string, sr *core.SemanticReport) {
	c.diskPut(structuralNamespace, fp, encodeStructural(sr))
}

// diskGetDynamic serves a replay overlay from the disk tier.
func (c *Cache) diskGetDynamic(fp string) (*dynOverlay, bool) {
	var rec dynRecord
	if !c.diskGet(dynamicNamespace, fp, &rec) {
		return nil, false
	}
	c.diskHits.Add(1)
	return decodeDynamic(&rec), true
}

func (c *Cache) diskPutDynamic(fp string, ov *dynOverlay) {
	c.diskPut(dynamicNamespace, fp, encodeDynamic(ov))
}
