package minij

// BuiltinSig describes the static signature of a builtin function. Builtin
// implementations live in the interpreter; the resolver only needs names,
// arities, and the Blocking flag (which structural contracts such as "no
// blocking I/O inside synchronized blocks" key on).
type BuiltinSig struct {
	Name     string
	Arity    int // -1 means variadic
	Ret      Type
	Blocking bool // performs (simulated) blocking I/O
}

// builtinSigs is the registry of builtin functions callable without a
// receiver.
var builtinSigs = map[string]BuiltinSig{
	"now":         {Name: "now", Arity: 0, Ret: Type{Kind: TypeInt}},
	"log":         {Name: "log", Arity: 1, Ret: Type{Kind: TypeVoid}},
	"ioWrite":     {Name: "ioWrite", Arity: 2, Ret: Type{Kind: TypeVoid}, Blocking: true},
	"ioRead":      {Name: "ioRead", Arity: 1, Ret: Type{Kind: TypeString}, Blocking: true},
	"ioFlush":     {Name: "ioFlush", Arity: 0, Ret: Type{Kind: TypeVoid}, Blocking: true},
	"netSend":     {Name: "netSend", Arity: 2, Ret: Type{Kind: TypeVoid}, Blocking: true},
	"sleep":       {Name: "sleep", Arity: 1, Ret: Type{Kind: TypeVoid}, Blocking: true},
	"newList":     {Name: "newList", Arity: 0, Ret: Type{Kind: TypeList}},
	"newMap":      {Name: "newMap", Arity: 0, Ret: Type{Kind: TypeMap}},
	"len":         {Name: "len", Arity: 1, Ret: Type{Kind: TypeInt}},
	"str":         {Name: "str", Arity: 1, Ret: Type{Kind: TypeString}},
	"strContains": {Name: "strContains", Arity: 2, Ret: Type{Kind: TypeBool}},
	"min":         {Name: "min", Arity: 2, Ret: Type{Kind: TypeInt}},
	"max":         {Name: "max", Arity: 2, Ret: Type{Kind: TypeInt}},
	"abort":       {Name: "abort", Arity: 1, Ret: Type{Kind: TypeVoid}},
	"assertTrue":  {Name: "assertTrue", Arity: 2, Ret: Type{Kind: TypeVoid}},
}

// Builtin returns the signature of builtin name and whether it exists.
func Builtin(name string) (BuiltinSig, bool) {
	sig, ok := builtinSigs[name]
	return sig, ok
}

// IsBlockingBuiltin reports whether name is a builtin flagged as blocking
// I/O.
func IsBlockingBuiltin(name string) bool {
	sig, ok := builtinSigs[name]
	return ok && sig.Blocking
}

// BuiltinNames returns all registered builtin names (unordered).
func BuiltinNames() []string {
	out := make([]string, 0, len(builtinSigs))
	for n := range builtinSigs {
		out = append(out, n)
	}
	return out
}

// listMethods maps list instance-method names to their arity.
var listMethods = map[string]int{
	"add": 1, "get": 1, "size": 0, "contains": 1, "remove": 1,
	"removeAt": 1, "clear": 0, "isEmpty": 0, "addAll": 1,
}

// mapMethods maps map instance-method names to their arity.
var mapMethods = map[string]int{
	"put": 2, "get": 1, "has": 1, "remove": 1, "size": 0,
	"keys": 0, "values": 0, "clear": 0, "isEmpty": 0,
}

// ContainerMethod reports whether a method name is valid on the given
// container kind (TypeList or TypeMap) and, if so, its arity.
func ContainerMethod(kind TypeKind, name string) (arity int, ok bool) {
	switch kind {
	case TypeList:
		arity, ok = listMethods[name]
	case TypeMap:
		arity, ok = mapMethods[name]
	}
	return arity, ok
}
