package server

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// watchEntries filters the history down to watcher events.
func watchEntries(srv *Server) []HistoryEntry {
	var out []HistoryEntry
	for _, e := range srv.History().Last(0) {
		if e.Kind == "watch" {
			out = append(out, e)
		}
	}
	return out
}

// TestWatcherPrewarmsNewFile: a first poll over a fresh root compiles the
// file into the shared snapshot cache and records a PREWARMED history
// entry; a second poll with no edits does nothing.
func TestWatcherPrewarmsNewFile(t *testing.T) {
	srv, _, done := newTestServer(t, Config{WatchInterval: time.Hour})
	defer done()
	cs := corpusCase(t, "zk-ephemeral")

	dir := t.TempDir()
	path := filepath.Join(dir, "session.mj")
	if err := os.WriteFile(path, []byte(cs.Head()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterRoot(dir); err != nil {
		t.Fatal(err)
	}
	st := srv.PollNow()
	if st.FilesScanned == 0 || st.Prewarmed != 1 {
		t.Fatalf("first poll: %+v, want 1 prewarmed file", st)
	}
	if st.Changes != 0 {
		t.Fatalf("a brand-new file is not a change: %+v", st)
	}
	got := watchEntries(srv)
	if len(got) != 1 {
		t.Fatalf("history has %d watch entries, want 1", len(got))
	}
	e := got[0]
	if e.Verdict != "PREWARMED" || e.Target != path || e.Detail != "new file" {
		t.Fatalf("watch entry %+v", e)
	}
	if e.Cache.SnapshotCompiles == 0 {
		t.Fatalf("pre-warming a new file must compile it: %+v", e.Cache)
	}

	// No edit, no work: the seen map absorbs the second poll entirely.
	st = srv.PollNow()
	if st.Prewarmed != 1 || len(watchEntries(srv)) != 1 {
		t.Fatalf("unchanged file re-prewarmed: %+v", st)
	}
}

// TestWatcherComputesDirtySet: editing a watched file records the change
// and names the dirty methods against the previous content, so the log
// tells the operator exactly what the next gate will re-verify.
func TestWatcherComputesDirtySet(t *testing.T) {
	srv, _, done := newTestServer(t, Config{WatchInterval: time.Hour})
	defer done()
	cs := corpusCase(t, "zk-ephemeral")
	regressed := cs.Tickets[len(cs.Tickets)-1].BuggySource

	dir := t.TempDir()
	path := filepath.Join(dir, "session.mj")
	if err := os.WriteFile(path, []byte(cs.Head()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterRoot(dir); err != nil {
		t.Fatal(err)
	}
	srv.PollNow()

	if err := os.WriteFile(path, []byte(regressed), 0o644); err != nil {
		t.Fatal(err)
	}
	st := srv.PollNow()
	if st.Changes != 1 || st.DirtySets != 1 {
		t.Fatalf("after edit: %+v, want 1 change with a dirty set", st)
	}
	if st.LastChange != path {
		t.Fatalf("LastChange = %q, want %q", st.LastChange, path)
	}
	entries := watchEntries(srv)
	last := entries[len(entries)-1]
	if !strings.Contains(last.Detail, "dirty:") {
		t.Fatalf("change entry should name the dirty set, got detail %q", last.Detail)
	}
}

// TestWatcherIgnoresOtherFilesAndBadRoots: only MiniJ extensions are
// scanned, and registering a non-directory fails up front.
func TestWatcherIgnoresOtherFilesAndBadRoots(t *testing.T) {
	srv, _, done := newTestServer(t, Config{WatchInterval: time.Hour})
	defer done()

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("not minij"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterRoot(dir); err != nil {
		t.Fatal(err)
	}
	if st := srv.PollNow(); st.FilesScanned != 0 || st.Prewarmed != 0 {
		t.Fatalf("non-MiniJ files must be ignored: %+v", st)
	}
	if err := srv.RegisterRoot(filepath.Join(dir, "notes.txt")); err == nil {
		t.Fatal("registering a file as a watch root should fail")
	}
	if err := srv.RegisterRoot(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("registering a missing root should fail")
	}
	// Re-registering the same root is a no-op, not a duplicate scan.
	if err := srv.RegisterRoot(dir); err != nil {
		t.Fatal(err)
	}
	if st := srv.PollNow(); st.Roots != 1 {
		t.Fatalf("duplicate root registered twice: %+v", st)
	}
}
