package embedding

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"createEphemeralNode", []string{"create", "ephemeral", "node"}},
		{"session.isClosing()", []string{"session", "is", "closing"}},
		{"HBase snapshot TTL", []string{"hbase", "snapshot", "ttl"}},
		{"getBatchedListing v2", []string{"get", "batched", "listing", "v2"}},
		{"", nil},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Tokenize(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func testDocs() []Doc {
	return []Doc{
		{ID: "t1", Text: "create ephemeral node on live session and verify it exists"},
		{ID: "t2", Text: "close session and verify ephemeral node removed"},
		{ID: "t3", Text: "snapshot restore rejects expired snapshot with TTL elapsed"},
		{ID: "t4", Text: "observer namenode returns block locations for listing"},
		{ID: "t5", Text: "compaction purges tombstones after gc grace period"},
	}
}

func TestQueryRanking(t *testing.T) {
	ix := NewIndex(testDocs())
	got := ix.Query("ephemeral node created while session closing", 2)
	if len(got) != 2 {
		t.Fatalf("matches = %v", got)
	}
	if got[0].ID != "t2" && got[0].ID != "t1" {
		t.Errorf("top match = %s, want an ephemeral/session test", got[0].ID)
	}
	for _, m := range got {
		if m.ID == "t5" {
			t.Error("tombstone test should not match an ephemeral query strongly")
		}
	}

	got = ix.Query("expired snapshot TTL check", 1)
	if len(got) == 0 || got[0].ID != "t3" {
		t.Errorf("snapshot query top = %v, want t3", got)
	}

	got = ix.Query("block locations observer", 1)
	if len(got) == 0 || got[0].ID != "t4" {
		t.Errorf("observer query top = %v, want t4", got)
	}
}

func TestQueryNoMatches(t *testing.T) {
	ix := NewIndex(testDocs())
	if got := ix.Query("zzzz qqqq", 5); len(got) != 0 {
		t.Errorf("unknown-term query = %v, want empty", got)
	}
}

func TestSelfSimilarityIsMaximal(t *testing.T) {
	ix := NewIndex(testDocs())
	for _, d := range testDocs() {
		got := ix.Query(d.Text, 1)
		if len(got) == 0 || got[0].ID != d.ID {
			t.Errorf("self query for %s = %v", d.ID, got)
		}
		if math.Abs(got[0].Score-1.0) > 1e-9 {
			t.Errorf("self similarity = %v, want 1.0", got[0].Score)
		}
	}
}

// Property: cosine similarity is symmetric and within [0, 1] for any pair
// of texts drawn from a small vocabulary.
func TestSimilarityProperties(t *testing.T) {
	ix := NewIndex(testDocs())
	vocab := []string{"session", "node", "snapshot", "ttl", "observer", "block", "purge"}
	mk := func(sel []uint8) string {
		var words []string
		for _, s := range sel {
			words = append(words, vocab[int(s)%len(vocab)])
		}
		if len(words) == 0 {
			return "empty"
		}
		out := words[0]
		for _, w := range words[1:] {
			out += " " + w
		}
		return out
	}
	f := func(aw, bw []uint8) bool {
		a, b := mk(aw), mk(bw)
		s1 := ix.Similarity(a, b)
		s2 := ix.Similarity(b, a)
		return math.Abs(s1-s2) < 1e-9 && s1 >= -1e-9 && s1 <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQueryLimitAndOrder(t *testing.T) {
	ix := NewIndex(testDocs())
	all := ix.Query("session node snapshot observer", 0)
	for i := 1; i < len(all); i++ {
		if all[i].Score > all[i-1].Score {
			t.Errorf("matches not sorted: %v", all)
		}
	}
	limited := ix.Query("session node snapshot observer", 2)
	if len(limited) > 2 {
		t.Errorf("limit ignored: %v", limited)
	}
}
