package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client is the thin remote mode of the lisa CLI: it speaks the daemon's
// JSON API so a cold client process rides the server's warm caches instead
// of re-paying the front end locally. With a RetryPolicy set it retries
// transient failures (connection errors, timeouts, 503-drain, overload
// sheds) under seeded jittered backoff and classifies the final failure as
// a *RemoteError.
type Client struct {
	base   string
	http   *http.Client
	policy RetryPolicy
	token  string
}

// NewClient returns a client for a daemon at base (e.g.
// "http://127.0.0.1:7333"). Requests carry no deadline and no retries by
// default — gate runs are bounded by the server's budget, not the
// transport — use SetRetryPolicy for resilience and SetHTTPClient for
// transport-level deadlines.
func NewClient(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{},
	}
}

// SetHTTPClient replaces the underlying transport (tests, custom timeouts).
func (c *Client) SetHTTPClient(hc *http.Client) { c.http = hc }

// SetRetryPolicy turns on retry/backoff/deadline handling for every call.
func (c *Client) SetRetryPolicy(p RetryPolicy) { c.policy = p }

// SetToken attaches the client identity the daemon's admission quotas key
// on (the X-Lisa-Token header); empty means anonymous.
func (c *Client) SetToken(token string) { c.token = token }

// Gate submits a proposed change to the daemon's CI gate.
func (c *Client) Gate(req GateRequest) (*GateResponse, error) {
	var resp GateResponse
	if err := c.do(http.MethodPost, "/gate", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Assert asserts a case's rules over a version of its system.
func (c *Client) Assert(req AssertRequest) (*AssertResponse, error) {
	var resp AssertResponse
	if err := c.do(http.MethodPost, "/assert", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the server's aggregated cache and request counters.
func (c *Client) Stats() (*StatsResponse, error) {
	var resp StatsResponse
	if err := c.do(http.MethodGet, "/stats", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// HistoryPage is the /history payload: the retained entries plus the
// total ever recorded (so a reader can tell how much fell off the ring).
type HistoryPage struct {
	Total   uint64         `json:"total"`
	Entries []HistoryEntry `json:"entries"`
}

// History fetches the last n audit entries (all retained when n <= 0).
func (c *Client) History(n int) (*HistoryPage, error) {
	path := "/history"
	if n > 0 {
		path += "?n=" + strconv.Itoa(n)
	}
	var resp HistoryPage
	if err := c.do(http.MethodGet, path, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Watch registers a directory root with the server's file watcher.
func (c *Client) Watch(root string) (*WatcherStats, error) {
	var resp WatcherStats
	if err := c.do(http.MethodPost, "/watch", WatchRequest{Root: root}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health pings the daemon; an error means unreachable or draining.
func (c *Client) Health() error {
	return c.do(http.MethodGet, "/healthz", nil, &struct {
		Status string `json:"status"`
	}{})
}

// WaitReady polls /healthz until the daemon answers or the deadline
// passes (startup convenience for scripts and tests).
func (c *Client) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var err error
	for time.Now().Before(deadline) {
		if err = c.Health(); err == nil {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("server at %s not ready after %v: %w", c.base, timeout, err)
}

// do runs one API call under the retry policy: the request is rebuilt
// per attempt (the body reader is consumed by each try), transient
// failures back off with seeded jitter — floored at the server's
// Retry-After hint — and the final failure comes back as a *RemoteError
// carrying its classification and attempt count.
func (c *Client) do(method, path string, in, out any) error {
	var data []byte
	if in != nil {
		var err error
		if data, err = json.Marshal(in); err != nil {
			return err
		}
	}
	attempts := c.policy.Retries + 1
	if attempts < 1 {
		attempts = 1
	}
	var overall time.Time
	if c.policy.OverallTimeout > 0 {
		overall = time.Now().Add(c.policy.OverallTimeout)
	}
	rng := rand.New(rand.NewSource(c.policy.Seed))
	var last *RemoteError
	var retryAfter time.Duration
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			delay := c.policy.backoff(attempt-1, retryAfter, rng)
			if !overall.IsZero() && time.Now().Add(delay).After(overall) {
				last.Kind = RemoteTimeout
				last.Err = fmt.Errorf("overall deadline %v exhausted before retry %d: %w", c.policy.OverallTimeout, attempt, last.Err)
				return last
			}
			time.Sleep(delay)
		}
		kind, ra, err := c.attempt(method, path, data, out)
		if err == nil {
			return nil
		}
		last = &RemoteError{Kind: kind, Attempts: attempt, Err: err}
		if !last.Transient() {
			return last
		}
		retryAfter = ra
		if !overall.IsZero() && !time.Now().Before(overall) {
			last.Kind = RemoteTimeout
			return last
		}
	}
	return last
}

// attempt is one round-trip: build, send, classify. The returned duration
// is the server's Retry-After hint (0 = none).
func (c *Client) attempt(method, path string, data []byte, out any) (RemoteErrorKind, time.Duration, error) {
	req, err := http.NewRequest(method, c.base+path, bytes.NewReader(data))
	if err != nil {
		return RemoteHTTP, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.token != "" {
		req.Header.Set(clientTokenHeader, c.token)
	}
	if c.policy.AttemptTimeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), c.policy.AttemptTimeout)
		defer cancel()
		req = req.WithContext(ctx)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		if isTimeout(err) {
			return RemoteTimeout, 0, err
		}
		return RemoteConnect, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 == 2 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			// A response cut off mid-body means the daemon died while
			// replying — a connection failure, not a protocol bug.
			return RemoteConnect, 0, fmt.Errorf("response truncated: %w", err)
		}
		return 0, 0, nil
	}
	var ra time.Duration
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, perr := strconv.Atoi(v); perr == nil && secs > 0 {
			ra = time.Duration(secs) * time.Second
		}
	}
	var e errorResponse
	msg := resp.Status
	if derr := json.NewDecoder(resp.Body).Decode(&e); derr == nil && e.Error != "" {
		msg = fmt.Sprintf("%s (%s)", e.Error, resp.Status)
	}
	kind := RemoteHTTP
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		kind = RemoteOverload
	case resp.StatusCode == http.StatusServiceUnavailable && strings.Contains(e.Error, "drain"):
		kind = RemoteDrain
	case resp.StatusCode == http.StatusServiceUnavailable:
		kind = RemoteOverload
	}
	return kind, ra, fmt.Errorf("server: %s", msg)
}

// isTimeout reports whether a transport error is a deadline expiry rather
// than a reachability failure.
func isTimeout(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
