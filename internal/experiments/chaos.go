package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"lisa/internal/ci"
	"lisa/internal/core"
	"lisa/internal/faultinject"
	"lisa/internal/program"
	"lisa/internal/report"
	"lisa/internal/sched"
	"lisa/internal/ticket"
)

// ChaosSeed parameterizes the chaos experiment's deterministic fault plan
// (which corpus case it targets). cmd/lisabench sets it from -seed; for a
// fixed seed the experiment's output is byte-stable run to run.
var ChaosSeed int64 = 1

// chaosScenario is one cell of the injection matrix: a fault kind armed at
// one hook point, plus any budget the scenario needs to expose it.
type chaosScenario struct {
	name   string
	point  string
	kind   faultinject.Kind
	budget core.Budget
}

// chaosScenarios is the full injection matrix of the degradation study:
// forced panics at every containment layer, budget exhaustion in the
// solver and the interpreter, a job that never finishes, and a corrupted
// snapshot-cache entry.
func chaosScenarios() []chaosScenario {
	return []chaosScenario{
		{name: "baseline"},
		{name: "panic-solver", point: "smt.solve", kind: faultinject.Panic},
		{name: "panic-paths", point: "concolic.paths:*", kind: faultinject.Panic},
		{name: "panic-site-job", point: "job:site:*", kind: faultinject.Panic},
		{name: "budget-solver", point: "smt.solve", kind: faultinject.Budget},
		{name: "budget-replay", point: "interp.call:*", kind: faultinject.Budget},
		{name: "slow-replay-job", point: "job:dynamic:*", kind: faultinject.Slow,
			budget: core.Budget{JobTimeout: 50 * time.Millisecond}},
		{name: "corrupt-snapshot", point: "program.load", kind: faultinject.Corrupt},
	}
}

// chaosEngine builds a fresh engine for one chaos run: its own private
// snapshot cache (so an injected cache corruption can never poison the
// process-wide cache other experiments share), snapshot verification on,
// and the first ticket of the case processed into a rule.
func chaosEngine(cs *ticket.Case, budget core.Budget) (*core.Engine, error) {
	e := core.New()
	e.Snapshots = program.NewCache(64)
	e.VerifySnapshots = true
	e.Budget = budget
	if _, err := e.ProcessTicket(cs.Tickets[0]); err != nil {
		return nil, err
	}
	return e, nil
}

// chaosRun is the outcome of one gated assertion under one fault plan.
type chaosRun struct {
	res    *ci.Result
	render string
	hits   string
}

// runChaosGate gates the case's head under the scenario's fault plan.
// workers<=0 runs the sequential engine loop; otherwise the scheduler with
// that pool width. Every run gets a fresh engine, cache, and scheduler, so
// nothing carries over between scenarios or widths.
func runChaosGate(cs *ticket.Case, sc chaosScenario, workers int, failOpen bool) (chaosRun, error) {
	e, err := chaosEngine(cs, sc.budget)
	if err != nil {
		return chaosRun{}, err
	}
	var plan *faultinject.Plan
	if sc.point != "" {
		plan = faultinject.NewPlan(ChaosSeed).Set(sc.point, sc.kind)
		faultinject.Arm(plan)
		defer faultinject.Disarm()
	}
	opts := ci.GateOptions{FailOpen: failOpen}
	if workers > 0 {
		opts.Scheduler = sched.New()
		opts.Workers = workers
	}
	res, err := ci.GateWith(e, ci.Change{Summary: "chaos " + sc.name, NewSource: cs.Head()}, cs.Tests, opts)
	if err != nil {
		return chaosRun{}, err
	}
	out := chaosRun{res: res}
	if res.Report != nil {
		out.render = res.Report.Render()
	} else {
		// No report (e.g. the corrupted snapshot never asserted): the
		// findings are the run's observable output.
		var fs []string
		for _, f := range res.Findings {
			fs = append(fs, f.Severity+" "+f.Text)
		}
		out.render = strings.Join(fs, "\n")
	}
	if plan != nil {
		out.hits = plan.HitLog()
	}
	return out, nil
}

// chaosOutcomes summarizes per-semantic outcomes of a report as e.g.
// "1 INCONCLUSIVE / 2 PASS" in a fixed order.
func chaosOutcomes(res *ci.Result) string {
	if res.Report == nil {
		return "no report"
	}
	counts := map[string]int{}
	for _, sr := range res.Report.Semantics {
		counts[sr.Outcome()]++
	}
	var parts []string
	for _, o := range []string{core.OutcomeViolated, core.OutcomeInconclusive, core.OutcomePass} {
		if counts[o] > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", counts[o], o))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " / ")
}

func gateVerdict(res *ci.Result) string {
	if res.Pass {
		return "PASS"
	}
	return "BLOCKED"
}

// pickChaosCase selects the corpus case the injection matrix targets:
// deterministic for a seed, varying across seeds.
func pickChaosCase(c *ticket.Corpus) *ticket.Case {
	byID := map[string]*ticket.Case{}
	var ids []string
	for _, cs := range c.Cases {
		if len(cs.Tickets) > 0 && len(cs.Tests) > 0 {
			byID[cs.ID] = cs
			ids = append(ids, cs.ID)
		}
	}
	if len(ids) == 0 {
		return nil
	}
	sort.Strings(ids)
	return byID[faultinject.Pick(ChaosSeed, "chaos-case", ids)]
}

// RunChaos drives the fault-injection matrix (E-R1): for every scenario it
// gates the same change four ways — sequentially, scheduled at workers=1
// and workers=8 (all fail-closed), and once fail-open — and checks that
// (1) no injected fault crashes the process, (2) the three fail-closed
// runs produce byte-identical reports, (3) every degraded semantic reports
// INCONCLUSIVE rather than PASS, and (4) the fail-closed gate blocks where
// the fail-open gate passes with a warning.
func RunChaos(c *ticket.Corpus) string {
	cs := pickChaosCase(c)
	if cs == nil {
		return "no corpus case with tests; chaos matrix skipped\n"
	}
	t := &report.Table{
		Title: fmt.Sprintf("Fault-injection matrix over %s (seed=%d): gate survival and degraded verdicts",
			cs.ID, ChaosSeed),
		Headers: []string{"scenario", "fault point", "outcomes", "seq=w1=w8", "fail-closed", "fail-open", "fault hits"},
	}
	survived, deterministic, degradedCorrectly := 0, 0, 0
	total := 0
	for _, sc := range chaosScenarios() {
		total++
		seq, err1 := runChaosGate(cs, sc, 0, false)
		w1, err2 := runChaosGate(cs, sc, 1, false)
		w8, err3 := runChaosGate(cs, sc, 8, false)
		open, err4 := runChaosGate(cs, sc, 8, true)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			t.AddRow(sc.name, sc.point, "run failed", "-", "-", "-", "-")
			continue
		}
		survived++
		identical := seq.render == w1.render && w1.render == w8.render
		if identical {
			deterministic++
		}
		inconclusiveSeen := strings.Contains(chaosOutcomes(w8.res), core.OutcomeInconclusive) ||
			strings.Contains(w8.render, "INCONCLUSIVE")
		if sc.point == "" {
			// Baseline: clean pass, nothing degraded.
			if w8.res.Pass && !inconclusiveSeen {
				degradedCorrectly++
			}
		} else if inconclusiveSeen && !w8.res.Pass && open.res.Pass {
			degradedCorrectly++
		}
		point := sc.point
		if point == "" {
			point = "-"
		}
		hits := w8.hits
		if hits == "" {
			hits = "-"
		}
		t.AddRow(sc.name, point, chaosOutcomes(w8.res), report.Bool(identical),
			gateVerdict(w8.res), gateVerdict(open.res), hits)
	}
	t.AddNote("%d/%d scenarios survived with zero process crashes; %d/%d produced byte-identical reports across sequential, workers=1, and workers=8 execution; %d/%d degraded exactly as designed (INCONCLUSIVE semantics, fail-closed blocks, fail-open passes with a warning).",
		survived, total, deterministic, total, degradedCorrectly, total)
	t.AddNote("faults are sticky (they fire on every visit of the armed point), which is what makes degraded runs deterministic at any worker count; failed jobs are never admitted to the scheduler's fingerprint cache.")
	return t.Render()
}
