package minij

import "fmt"

// TypeKind enumerates the MiniJ type constructors.
type TypeKind int

// Type kinds.
const (
	TypeVoid TypeKind = iota
	TypeInt
	TypeBool
	TypeString
	TypeList
	TypeMap
	TypeObject // class type; Class holds the class name
	TypeNull   // the type of the null literal (assignable to any reference)
	TypeAny    // statically unknown (container elements); checked at runtime
)

// Type is a MiniJ static type.
type Type struct {
	Kind  TypeKind
	Class string // set when Kind == TypeObject
}

// String renders the type in source syntax.
func (t Type) String() string {
	switch t.Kind {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeBool:
		return "bool"
	case TypeString:
		return "string"
	case TypeList:
		return "list"
	case TypeMap:
		return "map"
	case TypeObject:
		return t.Class
	case TypeNull:
		return "null"
	case TypeAny:
		return "any"
	}
	return fmt.Sprintf("Type(%d)", int(t.Kind))
}

// IsRef reports whether values of this type may be null.
func (t Type) IsRef() bool {
	switch t.Kind {
	case TypeList, TypeMap, TypeObject, TypeString, TypeNull:
		return true
	}
	return false
}

// Program is a parsed MiniJ compilation unit: a set of classes.
type Program struct {
	Classes []*Class

	byName     map[string]*Class
	stmts      []Stmt    // all statements, indexed by ID
	stmtMethod []*Method // enclosing method per statement ID

	// ExprTypes records the static type of every expression, populated by
	// Resolve. Consumers (call-graph construction, symbolic evaluation)
	// require a resolved program.
	ExprTypes map[Expr]Type
}

// TypeOf returns the statically inferred type of e, or TypeAny when the
// program has not been resolved or e was synthesized after resolution.
func (p *Program) TypeOf(e Expr) Type {
	if t, ok := p.ExprTypes[e]; ok {
		return t
	}
	return Type{Kind: TypeAny}
}

// MethodOf returns the method whose body contains the statement with the
// given ID, or nil if the ID is out of range.
func (p *Program) MethodOf(id int) *Method {
	if id < 0 || id >= len(p.stmtMethod) {
		return nil
	}
	return p.stmtMethod[id]
}

// Class looks up a class by name, returning nil when absent.
func (p *Program) Class(name string) *Class {
	return p.byName[name]
}

// Method looks up "Class.method", returning nil when absent.
func (p *Program) Method(class, name string) *Method {
	c := p.Class(class)
	if c == nil {
		return nil
	}
	return c.Method(name)
}

// NumStmts returns the number of statements in the program. Statement IDs
// are dense in [0, NumStmts).
func (p *Program) NumStmts() int { return len(p.stmts) }

// StmtByID returns the statement with the given ID, or nil if out of range.
func (p *Program) StmtByID(id int) Stmt {
	if id < 0 || id >= len(p.stmts) {
		return nil
	}
	return p.stmts[id]
}

// Methods returns every method in the program in declaration order.
func (p *Program) Methods() []*Method {
	var ms []*Method
	for _, c := range p.Classes {
		ms = append(ms, c.Methods...)
	}
	return ms
}

// Class is a MiniJ class declaration.
type Class struct {
	Name    string
	Fields  []*Field
	Methods []*Method
	DeclPos Pos

	fieldsByName  map[string]*Field
	methodsByName map[string]*Method
}

// Field looks up a declared field by name, returning nil when absent.
func (c *Class) Field(name string) *Field {
	return c.fieldsByName[name]
}

// Method looks up a declared method by name, returning nil when absent.
func (c *Class) Method(name string) *Method {
	return c.methodsByName[name]
}

// Field is a class field declaration.
type Field struct {
	Name    string
	Type    Type
	DeclPos Pos
}

// Param is a method parameter.
type Param struct {
	Name string
	Type Type
}

// Method is a MiniJ method declaration.
type Method struct {
	Class   *Class
	Name    string
	Static  bool
	Ret     Type
	Params  []*Param
	Body    *Block
	DeclPos Pos
}

// FullName returns the "Class.method" qualified name.
func (m *Method) FullName() string { return m.Class.Name + "." + m.Name }

// Stmt is the interface implemented by all statement nodes. Every statement
// carries a program-unique dense ID (assigned by the parser) used for
// coverage tracking and target-statement matching, plus its source position.
type Stmt interface {
	Pos() Pos
	ID() int
	setID(int)
	stmtNode()
}

type stmtBase struct {
	pos Pos
	id  int
}

func (s *stmtBase) Pos() Pos    { return s.pos }
func (s *stmtBase) ID() int     { return s.id }
func (s *stmtBase) setID(n int) { s.id = n }
func (s *stmtBase) stmtNode()   {}

// Block is a brace-delimited statement sequence.
type Block struct {
	stmtBase
	Stmts []Stmt
}

// VarDecl declares a local variable with an optional initializer.
type VarDecl struct {
	stmtBase
	Type Type
	Name string
	Init Expr // may be nil
}

// Assign assigns Value to Target (an *Ident or *FieldAccess).
type Assign struct {
	stmtBase
	Target Expr
	Value  Expr
}

// If is a conditional. Else may be nil, a *Block, or another *If (else-if).
type If struct {
	stmtBase
	Cond Expr
	Then *Block
	Else Stmt
}

// While is a condition-controlled loop.
type While struct {
	stmtBase
	Cond Expr
	Body *Block
}

// For is a classic three-clause loop; any clause may be nil.
type For struct {
	stmtBase
	Init Stmt // *VarDecl or *Assign, may be nil
	Cond Expr // may be nil (infinite)
	Post Stmt // *Assign or *ExprStmt, may be nil
	Body *Block
}

// ForEach iterates Var over the elements of a list expression.
type ForEach struct {
	stmtBase
	Var  string
	Iter Expr
	Body *Block
}

// Return exits the enclosing method; Value may be nil for void returns.
type Return struct {
	stmtBase
	Value Expr
}

// Break exits the innermost loop.
type Break struct{ stmtBase }

// Continue advances the innermost loop.
type Continue struct{ stmtBase }

// Throw raises a string-valued exception.
type Throw struct {
	stmtBase
	Value Expr
}

// Try runs Body; if an exception propagates, CatchVar is bound to its string
// value and Catch runs.
type Try struct {
	stmtBase
	Body     *Block
	CatchVar string
	Catch    *Block
}

// Sync is a synchronized block over a lock expression.
type Sync struct {
	stmtBase
	Lock Expr
	Body *Block
}

// ExprStmt evaluates an expression (a call) for its effects.
type ExprStmt struct {
	stmtBase
	E Expr
}

// Expr is the interface implemented by all expression nodes.
type Expr interface {
	Pos() Pos
	exprNode()
}

type exprBase struct{ pos Pos }

func (e *exprBase) Pos() Pos  { return e.pos }
func (e *exprBase) exprNode() {}

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Value int64
}

// BoolLit is true or false.
type BoolLit struct {
	exprBase
	Value bool
}

// StrLit is a string literal.
type StrLit struct {
	exprBase
	Value string
}

// NullLit is the null literal.
type NullLit struct{ exprBase }

// Ident is a bare name: a local, parameter, field of the receiver, or (as a
// call/field receiver) a class name.
type Ident struct {
	exprBase
	Name string
}

// FieldAccess reads field Name of Recv.
type FieldAccess struct {
	exprBase
	Recv Expr
	Name string
}

// Call invokes method Name. Recv may be nil (builtin, or method of the
// enclosing class), an *Ident naming a class (static call), or an object
// expression (instance call). The resolver sets Kind.
type Call struct {
	exprBase
	Recv Expr
	Name string
	Args []Expr

	Kind CallKind // set by Resolve
}

// CallKind classifies a call after resolution.
type CallKind int

// Call kinds.
const (
	CallUnresolved CallKind = iota
	CallBuiltin             // builtin function (Recv nil)
	CallStatic              // static method; Recv is *Ident naming the class
	CallInstance            // instance method on an object value
	CallSelf                // unqualified call to a method of the enclosing class
)

// New constructs an instance of a class, invoking its init method if one is
// declared.
type New struct {
	exprBase
	Class string
	Args  []Expr
}

// Unary applies "!" or unary "-".
type Unary struct {
	exprBase
	Op string
	X  Expr
}

// Binary applies a binary operator.
type Binary struct {
	exprBase
	Op   string
	X, Y Expr
}
