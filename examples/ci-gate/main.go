// CI/CD enforcement: every fixed failure in the corpus becomes a standing
// contract, and a stream of proposed changes is gated against all of them
// at once — the paper's vision of a development workflow where the same
// mistake cannot merge twice.
//
//	go run ./examples/ci-gate
package main

import (
	"fmt"
	"log"

	"lisa/internal/ci"
	"lisa/internal/core"
	"lisa/internal/corpus"
	"lisa/internal/minij"
	"lisa/internal/ticket"
)

func main() {
	cs := corpus.Load().Get("zk-session-expiry")
	engine := core.New()
	if _, err := engine.ProcessTicket(cs.Tickets[0]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Registered %d contract(s) from %s.\n\n", engine.Registry.Len(), cs.Tickets[0].ID)

	head := cs.Tickets[0].FixedSource
	changes := []ci.Change{
		{
			Summary:   "add metrics counter to lease store",
			OldSource: head,
			NewSource: head + `
class LeaseMetrics {
	int renewals;

	void bump() {
		renewals = renewals + 1;
	}
}
`,
		},
		{
			Summary:   "add read-only ping path (fast path, skips expiry check)",
			OldSource: head,
			NewSource: cs.Tickets[1].BuggySource,
		},
		{
			Summary:   "add read-only ping path with the expiry gate",
			OldSource: head,
			NewSource: cs.Tickets[1].FixedSource,
		},
		{
			Summary:   "refactor that does not compile",
			OldSource: head,
			NewSource: "class Oops {",
		},
	}

	blocked := 0
	for i, ch := range changes {
		res, err := ci.Gate(engine, ch, testsFor(cs, ch.NewSource))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("change %d: %s\n", i+1, ch.Summary)
		fmt.Print(indent(res.Summary()))
		if !res.Pass {
			blocked++
		}
		fmt.Println()
	}
	fmt.Printf("%d of %d changes blocked before merge.\n", blocked, len(changes))
}

// testsFor returns the case tests that compile against the proposed source
// (a change may predate classes that newer tests reference).
func testsFor(cs *ticket.Case, source string) []ticket.TestCase {
	var out []ticket.TestCase
	for _, tc := range cs.Tests {
		prog, err := minij.Parse(source + "\n" + tc.Source)
		if err != nil {
			continue
		}
		if err := minij.Check(prog); err != nil {
			continue
		}
		out = append(out, tc)
	}
	return out
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			lines = append(lines, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}
