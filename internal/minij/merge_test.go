package minij

import (
	"strings"
	"testing"
)

// MiniJ merges repeated declarations of the same class (open classes), so
// independently authored test files can contribute methods to one shared
// test class.
func TestOpenClassMerging(t *testing.T) {
	src := `
class Suite {
	static int one() {
		return 1;
	}
}

class Other {
	int x;
}

class Suite {
	static int two() {
		return 2;
	}
}
`
	prog := mustParseAndCheck(t, src)
	if len(prog.Classes) != 2 {
		t.Fatalf("classes = %d, want 2 after merging", len(prog.Classes))
	}
	suite := prog.Class("Suite")
	if suite.Method("one") == nil || suite.Method("two") == nil {
		t.Error("merged class lost a method")
	}
	if m := suite.Method("two"); m.Class != suite {
		t.Error("merged method's Class pointer not rebased")
	}
	// Statement IDs must remain dense across merged classes.
	n := prog.NumStmts()
	for id := 0; id < n; id++ {
		if prog.StmtByID(id) == nil || prog.MethodOf(id) == nil {
			t.Fatalf("stmt %d unindexed after merge", id)
		}
	}
}

func TestDuplicateMembersRejected(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`class A { int x; } class A { int x; }`, "duplicate field A.x"},
		{`class A { void m() { } void m() { } }`, "duplicate method A.m"},
		{`class A { void m() { } } class A { void m() { } }`, "duplicate method A.m"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) err = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestMergePreservesCrossClassCalls(t *testing.T) {
	src := `
class Sys {
	static int val() {
		return 7;
	}
}

class Suite {
	static int a() {
		return Sys.val();
	}
}

class Suite {
	static int b() {
		return a() + 1;
	}
}
`
	prog := mustParseAndCheck(t, src)
	b := prog.Method("Suite", "b")
	if b == nil {
		t.Fatal("Suite.b missing")
	}
	// The sibling call a() in the second declaration must resolve as
	// CallSelf against the merged class.
	found := false
	WalkExprs(b.Body, func(e Expr) {
		if c, ok := e.(*Call); ok && c.Name == "a" {
			found = true
			if c.Kind != CallSelf {
				t.Errorf("a() kind = %v, want CallSelf", c.Kind)
			}
		}
	})
	if !found {
		t.Error("call to a() not found")
	}
}
