package smt

import (
	"errors"
	"testing"
)

// genDiffLeaf mirrors genLeaf but adds the string theory, so differential
// fuzzing exercises all three atom theories (integer bounds, string
// equality, propositional bool/null).
func genDiffLeaf(r *testRng) Formula {
	vars := []string{"x", "y", "z"}
	bools := []string{"p", "q"}
	strs := []string{"mode", "state.name"}
	vals := []string{"open", "closed", ""}
	ops := []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	switch r.intn(5) {
	case 0:
		return NewAtom(BoolAtom(bools[r.intn(len(bools))]))
	case 1:
		return NewAtom(NullAtom(vars[r.intn(len(vars))]))
	case 2:
		return NewAtom(CmpCAtom(vars[r.intn(len(vars))], ops[r.intn(len(ops))], int64(r.intn(5))))
	case 3:
		return NewAtom(CmpVAtom(vars[r.intn(len(vars))], ops[r.intn(len(ops))], vars[r.intn(len(vars))]))
	default:
		op := OpEq
		if r.intn(2) == 0 {
			op = OpNe
		}
		return NewAtom(StrEqAtom(strs[r.intn(len(strs))], op, vals[r.intn(len(vals))]))
	}
}

func genDiffFormula(r *testRng, depth int) Formula {
	if depth <= 0 {
		return genDiffLeaf(r)
	}
	switch r.intn(6) {
	case 0:
		return NewNot(genDiffFormula(r, depth-1))
	case 1, 2:
		return NewAnd(genDiffFormula(r, depth-1), genDiffFormula(r, depth-1))
	case 3, 4:
		return NewOr(genDiffFormula(r, depth-1), genDiffFormula(r, depth-1))
	default:
		return genDiffLeaf(r)
	}
}

// TestDifferentialOptimizedVsReference: the optimized pipeline (unit
// propagation, ordering, incremental theory) and the retained naive
// reference solver must agree on sat/unsat for seeded random formulas, and
// every SAT witness from the optimized solver must actually satisfy the
// formula.
func TestDifferentialOptimizedVsReference(t *testing.T) {
	r := newTestRng(42)
	for i := 0; i < 2000; i++ {
		f := genDiffFormula(r, 4)
		optSat, model, optErr := SolveLim(f, Limits{})
		refSat, _, refErr := ReferenceSolve(f, Limits{})
		if optErr != nil || refErr != nil {
			t.Fatalf("#%d %s: unexpected error opt=%v ref=%v", i, f, optErr, refErr)
		}
		if optSat != refSat {
			t.Fatalf("#%d %s: optimized says sat=%v, reference says sat=%v", i, f, optSat, refSat)
		}
		if optSat && eval3(f, model) != triTrue {
			t.Fatalf("#%d %s: optimized witness %v does not satisfy the formula", i, f, model)
		}
	}
}

// TestDifferentialBudgetSurfacing: under a tiny node ceiling each solver
// either surfaces ErrBudget (never some other error, never a made-up
// verdict) or decides; whenever both decide they must agree.
func TestDifferentialBudgetSurfacing(t *testing.T) {
	r := newTestRng(7)
	for i := 0; i < 800; i++ {
		f := genDiffFormula(r, 5)
		lim := Limits{MaxNodes: 40}
		optSat, _, optErr := SolveLim(f, lim)
		refSat, _, refErr := ReferenceSolve(f, lim)
		if optErr != nil && !errors.Is(optErr, ErrBudget) {
			t.Fatalf("#%d %s: optimized error %v, want ErrBudget", i, f, optErr)
		}
		if refErr != nil && !errors.Is(refErr, ErrBudget) {
			t.Fatalf("#%d %s: reference error %v, want ErrBudget", i, f, refErr)
		}
		if optErr == nil && refErr == nil && optSat != refSat {
			t.Fatalf("#%d %s: optimized says sat=%v, reference says sat=%v", i, f, optSat, refSat)
		}
	}
}
