package sched

import (
	"sort"

	"lisa/internal/diffutil"
	"lisa/internal/minij"
	"lisa/internal/program"
)

// Dirty is the impact set of one proposed change: the methods whose
// behavior the change can affect. The incremental gate uses it to report
// which jobs the diff can reach; jobs outside the set are candidates for
// cache service. The classification is conservative: anything the analysis
// cannot localize (compile failures, class/field/signature changes, which
// can reshape resolution and the call graph arbitrarily) marks everything
// dirty.
type Dirty struct {
	// All means the change could not be localized to method bodies.
	All bool
	// Methods maps qualified method names ("Class.method") whose canonical
	// body text changed.
	Methods map[string]bool
	// Stat summarizes the textual diff.
	Stat diffutil.Stats
}

// ComputeDirty diffs two versions of a system source and localizes the
// change to method bodies. Whitespace-only edits produce an empty set:
// method identity is canonical AST text, not source text. Both versions
// are loaded through the snapshot cache, so the front-end work is shared
// with the assertion run (the new source) and the previous gate (the old).
func ComputeDirty(oldSource, newSource string) *Dirty {
	d := &Dirty{Methods: map[string]bool{}}
	edits := diffutil.Diff(oldSource, newSource)
	d.Stat = diffutil.DiffStats(edits)
	if !diffutil.Changed(edits) {
		return d
	}
	oldSnap, errOld := program.Load(oldSource)
	newSnap, errNew := program.Load(newSource)
	if errOld != nil || errNew != nil {
		d.All = true
		return d
	}
	localizeDirty(d, oldSnap, newSnap)
	return d
}

// ComputeDirtySnapshots is ComputeDirty over pre-loaded snapshots (the
// gate's path: head and proposed change are loaded once and shared).
func ComputeDirtySnapshots(old, new *program.Snapshot) *Dirty {
	d := &Dirty{Methods: map[string]bool{}}
	edits := diffutil.Diff(old.Source(), new.Source())
	d.Stat = diffutil.DiffStats(edits)
	if !diffutil.Changed(edits) {
		return d
	}
	localizeDirty(d, old, new)
	return d
}

// localizeDirty compares two compiled versions: an unchanged declaration
// skeleton localizes the diff to the method bodies whose memoized canonical
// text differs; a reshaped skeleton marks everything dirty.
func localizeDirty(d *Dirty, old, new *program.Snapshot) {
	if old.Shape() != new.Shape() {
		d.All = true
		return
	}
	for _, m := range new.Program().Methods() {
		name := m.FullName()
		if old.MethodCanon(name) != new.MethodCanon(name) {
			d.Methods[name] = true
		}
	}
}

// Any reports whether the change affects anything at all.
func (d *Dirty) Any() bool { return d.All || len(d.Methods) > 0 }

// Contains reports whether the named method is dirty.
func (d *Dirty) Contains(fullName string) bool { return d.All || d.Methods[fullName] }

// SortedMethods lists the dirty methods in deterministic order.
func (d *Dirty) SortedMethods() []string {
	out := make([]string, 0, len(d.Methods))
	for name := range d.Methods {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// impactsClosure reports whether any method in a site job's read closure
// is dirty — i.e. whether the diff can reach that job.
func (d *Dirty) impactsClosure(closure []*minij.Method) bool {
	if d.All {
		return true
	}
	for _, m := range closure {
		if d.Methods[m.FullName()] {
			return true
		}
	}
	return false
}
