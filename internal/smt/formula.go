// Package smt implements the restricted predicate logic LISA uses for
// low-level semantics, together with a small decision procedure that plays
// the role Z3 plays in the paper.
//
// The paper restricts contract conditions P, Q to conjunctions of
// implementation-local predicates — state relations (v = c), null-ness, and
// resource predicates (handle.isOpen). This package supports the
// quantifier-free closure of those atoms under !, &&, ||, which is exactly
// what recorded path conditions and checker complements need:
//
//	atom := path                      (boolean state predicate)
//	      | path == null | path != null
//	      | path OP intconst | path OP path      (OP in == != < <= > >=)
//	      | path == "string" | path != "string"
//
// Paths are dotted access chains rooted at a variable, e.g. "s.ttl" or
// "s.isClosing" (a nullary getter canonicalizes to its path form).
//
// Satisfiability is decided by DPLL over the atom alphabet with a theory
// check per candidate assignment: integer atoms go through a
// difference-bound matrix (Floyd–Warshall) with a disequality pass, string
// atoms through equality/disequality sets. The procedure is complete for
// the corpus fragment except for pathological integer disequality chains,
// where it errs on the SAT side (never reports UNSAT for a satisfiable
// formula).
package smt

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// CmpOp is a comparison operator in an atom.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

var opText = map[CmpOp]string{
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
}

// String renders the operator in source syntax.
func (op CmpOp) String() string { return opText[op] }

// Negate returns the complementary operator (total on the six operators).
func (op CmpOp) Negate() CmpOp {
	switch op {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	}
	panic("smt: bad CmpOp")
}

// Flip returns the operator with operands swapped (x op y == y flip(op) x).
func (op CmpOp) Flip() CmpOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	}
	return op
}

// AtomKind enumerates atom shapes.
type AtomKind int

// Atom kinds.
const (
	AtomBool  AtomKind = iota // path (a boolean state predicate)
	AtomNull                  // path == null
	AtomCmpC                  // path OP intconst
	AtomCmpV                  // path OP path
	AtomStrEq                 // path == "string"
)

// Atom is an atomic predicate.
type Atom struct {
	Kind   AtomKind
	Path   string
	Op     CmpOp  // CmpC, CmpV, StrEq
	IntVal int64  // CmpC
	StrVal string // StrEq
	Path2  string // CmpV
}

// BoolAtom returns the boolean state predicate for path.
func BoolAtom(path string) Atom { return Atom{Kind: AtomBool, Path: path} }

// NullAtom returns the predicate "path == null".
func NullAtom(path string) Atom { return Atom{Kind: AtomNull, Path: path} }

// CmpCAtom returns the predicate "path op c".
func CmpCAtom(path string, op CmpOp, c int64) Atom {
	return Atom{Kind: AtomCmpC, Path: path, Op: op, IntVal: c}
}

// CmpVAtom returns the predicate "path op path2".
func CmpVAtom(path string, op CmpOp, path2 string) Atom {
	return Atom{Kind: AtomCmpV, Path: path, Op: op, Path2: path2}
}

// StrEqAtom returns the predicate `path op "s"` (op is OpEq or OpNe).
func StrEqAtom(path string, op CmpOp, s string) Atom {
	return Atom{Kind: AtomStrEq, Path: path, Op: op, StrVal: s}
}

// String renders the atom in predicate-language syntax.
func (a Atom) String() string {
	switch a.Kind {
	case AtomBool:
		return a.Path
	case AtomNull:
		return a.Path + " == null"
	case AtomCmpC:
		return a.Path + " " + a.Op.String() + " " + strconv.FormatInt(a.IntVal, 10)
	case AtomCmpV:
		return a.Path + " " + a.Op.String() + " " + a.Path2
	case AtomStrEq:
		return a.Path + " " + a.Op.String() + " " + strconv.Quote(a.StrVal)
	}
	return "<?atom>"
}

// Key returns a canonical identity for the atom's underlying proposition,
// folding a negatable operator into a fixed polarity so "x != 3" and
// "x == 3" share a DPLL variable. It returns the key and whether the atom
// as written is the negation of the keyed proposition.
func (a Atom) Key() (string, bool) {
	switch a.Kind {
	case AtomBool:
		return "b:" + a.Path, false
	case AtomNull:
		return "n:" + a.Path, false
	case AtomCmpC:
		op, neg := a.Op, false
		switch op {
		case OpNe:
			op, neg = OpEq, true
		case OpGt:
			op, neg = OpLe, true
		case OpGe:
			op, neg = OpLt, true
		}
		return fmt.Sprintf("c:%s %s %d", a.Path, op, a.IntVal), neg
	case AtomCmpV:
		p1, p2, op := a.Path, a.Path2, a.Op
		if p2 < p1 {
			p1, p2 = p2, p1
			op = op.Flip()
		}
		neg := false
		switch op {
		case OpNe:
			op, neg = OpEq, true
		case OpGt:
			op, neg = OpLe, true
		case OpGe:
			op, neg = OpLt, true
		}
		return fmt.Sprintf("v:%s %s %s", p1, op, p2), neg
	case AtomStrEq:
		neg := a.Op == OpNe
		return fmt.Sprintf("s:%s == %q", a.Path, a.StrVal), neg
	}
	return "<?>", false
}

// normalized returns the atom with the polarity of its Key (i.e. the keyed
// proposition itself).
func (a Atom) normalized() Atom {
	switch a.Kind {
	case AtomCmpC:
		switch a.Op {
		case OpNe:
			a.Op = OpEq
		case OpGt:
			a.Op = OpLe
		case OpGe:
			a.Op = OpLt
		}
	case AtomCmpV:
		if a.Path2 < a.Path {
			a.Path, a.Path2 = a.Path2, a.Path
			a.Op = a.Op.Flip()
		}
		switch a.Op {
		case OpNe:
			a.Op = OpEq
		case OpGt:
			a.Op = OpLe
		case OpGe:
			a.Op = OpLt
		}
	case AtomStrEq:
		a.Op = OpEq
	}
	return a
}

// Root returns the root variable of a dotted path.
func Root(path string) string {
	if i := strings.IndexByte(path, '.'); i >= 0 {
		return path[:i]
	}
	return path
}

// Formula is a quantifier-free predicate formula. Implementations: *AtomF,
// *Not, *And, *Or, *Const.
type Formula interface {
	fmt.Stringer
	formulaNode()
}

// AtomF wraps an atom as a formula.
type AtomF struct{ Atom Atom }

// Not negates a formula.
type Not struct{ X Formula }

// And is an n-ary conjunction.
type And struct{ Xs []Formula }

// Or is an n-ary disjunction.
type Or struct{ Xs []Formula }

// Const is a boolean constant formula.
type Const struct{ Value bool }

func (*AtomF) formulaNode() {}
func (*Not) formulaNode()   {}
func (*And) formulaNode()   {}
func (*Or) formulaNode()    {}
func (*Const) formulaNode() {}

// True returns the constant true formula.
func True() Formula { return &Const{Value: true} }

// False returns the constant false formula.
func False() Formula { return &Const{Value: false} }

// NewAtom wraps an atom.
func NewAtom(a Atom) Formula { return &AtomF{Atom: a} }

// NewNot negates f, collapsing double negation and constants.
func NewNot(f Formula) Formula {
	switch n := f.(type) {
	case *Const:
		return &Const{Value: !n.Value}
	case *Not:
		return n.X
	}
	return &Not{X: f}
}

// NewAnd conjoins formulas, flattening nested conjunctions and folding
// constants. An empty conjunction is true.
func NewAnd(fs ...Formula) Formula {
	var xs []Formula
	for _, f := range fs {
		switch n := f.(type) {
		case *Const:
			if !n.Value {
				return False()
			}
		case *And:
			xs = append(xs, n.Xs...)
		default:
			xs = append(xs, f)
		}
	}
	switch len(xs) {
	case 0:
		return True()
	case 1:
		return xs[0]
	}
	return &And{Xs: xs}
}

// NewOr disjoins formulas, flattening nested disjunctions and folding
// constants. An empty disjunction is false.
func NewOr(fs ...Formula) Formula {
	var xs []Formula
	for _, f := range fs {
		switch n := f.(type) {
		case *Const:
			if n.Value {
				return True()
			}
		case *Or:
			xs = append(xs, n.Xs...)
		default:
			xs = append(xs, f)
		}
	}
	switch len(xs) {
	case 0:
		return False()
	case 1:
		return xs[0]
	}
	return &Or{Xs: xs}
}

// String renders the formula in predicate-language syntax.
func (f *AtomF) String() string { return f.Atom.String() }

// String renders the negation; atoms with negatable operators render
// operator-folded ("x == 3" negated renders "x != 3").
func (f *Not) String() string {
	if a, ok := f.X.(*AtomF); ok {
		switch a.Atom.Kind {
		case AtomNull:
			return a.Atom.Path + " != null"
		case AtomCmpC, AtomCmpV, AtomStrEq:
			n := a.Atom
			n.Op = n.Op.Negate()
			return n.String()
		}
	}
	return "!(" + f.X.String() + ")"
}

// String renders the conjunction.
func (f *And) String() string {
	parts := make([]string, len(f.Xs))
	for i, x := range f.Xs {
		if _, isOr := x.(*Or); isOr {
			parts[i] = "(" + x.String() + ")"
		} else {
			parts[i] = x.String()
		}
	}
	return strings.Join(parts, " && ")
}

// String renders the disjunction.
func (f *Or) String() string {
	parts := make([]string, len(f.Xs))
	for i, x := range f.Xs {
		parts[i] = x.String()
	}
	return strings.Join(parts, " || ")
}

// String renders the constant.
func (f *Const) String() string {
	if f.Value {
		return "true"
	}
	return "false"
}

// NNF rewrites f into negation normal form, pushing negations onto atoms and
// folding negated comparisons into their complementary operators.
func NNF(f Formula) Formula {
	return nnf(f, false)
}

func nnf(f Formula, neg bool) Formula {
	switch n := f.(type) {
	case *Const:
		return &Const{Value: n.Value != neg}
	case *AtomF:
		if !neg {
			return n
		}
		a := n.Atom
		switch a.Kind {
		case AtomCmpC, AtomCmpV, AtomStrEq:
			a.Op = a.Op.Negate()
			return &AtomF{Atom: a}
		default:
			return &Not{X: n}
		}
	case *Not:
		return nnf(n.X, !neg)
	case *And:
		xs := make([]Formula, len(n.Xs))
		for i, x := range n.Xs {
			xs[i] = nnf(x, neg)
		}
		if neg {
			return NewOr(xs...)
		}
		return NewAnd(xs...)
	case *Or:
		xs := make([]Formula, len(n.Xs))
		for i, x := range n.Xs {
			xs[i] = nnf(x, neg)
		}
		if neg {
			return NewAnd(xs...)
		}
		return NewOr(xs...)
	}
	panic(fmt.Sprintf("smt: unhandled formula %T", f))
}

// Complement returns the paper's checker complement: the negation of f in
// negation normal form. A trace violates a semantic exactly when its path
// condition is satisfiable together with the complement of the checker
// formula (missing conditions are unconstrained, hence "treated as true").
func Complement(f Formula) Formula { return NNF(NewNot(f)) }

// Atoms returns the distinct atoms of f keyed by canonical proposition, in
// deterministic order.
func Atoms(f Formula) []Atom {
	seen := map[string]Atom{}
	var keys []string
	var walk func(Formula)
	walk = func(g Formula) {
		switch n := g.(type) {
		case *AtomF:
			k, _ := n.Atom.Key()
			if _, ok := seen[k]; !ok {
				seen[k] = n.Atom.normalized()
				keys = append(keys, k)
			}
		case *Not:
			walk(n.X)
		case *And:
			for _, x := range n.Xs {
				walk(x)
			}
		case *Or:
			for _, x := range n.Xs {
				walk(x)
			}
		}
	}
	walk(f)
	sort.Strings(keys)
	out := make([]Atom, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out
}

// VisitAtoms calls visit for every atom occurrence in f (duplicates
// included, no canonicalization) until visit returns false. Unlike Atoms it
// allocates nothing, so hot paths can scan formulas per candidate state.
func VisitAtoms(f Formula, visit func(Atom) bool) bool {
	switch n := f.(type) {
	case *AtomF:
		return visit(n.Atom)
	case *Not:
		return VisitAtoms(n.X, visit)
	case *And:
		for _, x := range n.Xs {
			if !VisitAtoms(x, visit) {
				return false
			}
		}
	case *Or:
		for _, x := range n.Xs {
			if !VisitAtoms(x, visit) {
				return false
			}
		}
	}
	return true
}

// Paths returns the set of dotted paths mentioned anywhere in f.
func Paths(f Formula) map[string]bool {
	out := map[string]bool{}
	for _, a := range Atoms(f) {
		out[a.Path] = true
		if a.Kind == AtomCmpV {
			out[a.Path2] = true
		}
	}
	return out
}

// Roots returns the set of root variables mentioned anywhere in f.
func Roots(f Formula) map[string]bool {
	out := map[string]bool{}
	for p := range Paths(f) {
		out[Root(p)] = true
	}
	return out
}

// RenameRoot returns f with every path rooted at old re-rooted at new.
func RenameRoot(f Formula, old, new string) Formula {
	ren := func(p string) string {
		if p == old {
			return new
		}
		if strings.HasPrefix(p, old+".") {
			return new + p[len(old):]
		}
		return p
	}
	return MapAtoms(f, func(a Atom) Atom {
		a.Path = ren(a.Path)
		if a.Kind == AtomCmpV {
			a.Path2 = ren(a.Path2)
		}
		return a
	})
}

// MapAtoms returns f with fn applied to every atom.
func MapAtoms(f Formula, fn func(Atom) Atom) Formula {
	switch n := f.(type) {
	case *Const:
		return n
	case *AtomF:
		return &AtomF{Atom: fn(n.Atom)}
	case *Not:
		return &Not{X: MapAtoms(n.X, fn)}
	case *And:
		xs := make([]Formula, len(n.Xs))
		for i, x := range n.Xs {
			xs[i] = MapAtoms(x, fn)
		}
		return &And{Xs: xs}
	case *Or:
		xs := make([]Formula, len(n.Xs))
		for i, x := range n.Xs {
			xs[i] = MapAtoms(x, fn)
		}
		return &Or{Xs: xs}
	}
	panic(fmt.Sprintf("smt: unhandled formula %T", f))
}
