package faultinject

import (
	"sync"
	"testing"
)

func TestUnarmedIsOff(t *testing.T) {
	Disarm()
	if Armed() {
		t.Fatal("armed with no plan")
	}
	if _, ok := At("smt.solve"); ok {
		t.Fatal("unarmed At matched")
	}
}

func TestExactAndWildcardRules(t *testing.T) {
	p := NewPlan(7).
		Set("smt.solve", Budget).
		Set("job:site:*", Panic).
		Set("job:*", Slow)
	Arm(p)
	defer Disarm()

	if k, ok := At("smt.solve"); !ok || k != Budget {
		t.Fatalf("exact rule: got %v,%v", k, ok)
	}
	// Longest wildcard prefix wins over the shorter one.
	if k, ok := At("job:site:zk-1208#0"); !ok || k != Panic {
		t.Fatalf("wildcard rule: got %v,%v", k, ok)
	}
	if k, ok := At("job:dynamic:zk-1208"); !ok || k != Slow {
		t.Fatalf("short wildcard rule: got %v,%v", k, ok)
	}
	if _, ok := At("interp.call:T.m"); ok {
		t.Fatal("unrelated point matched")
	}

	// Sticky: the same point fires again.
	if _, ok := At("smt.solve"); !ok {
		t.Fatal("rule was not sticky")
	}
	hits := p.Hits()
	if hits["smt.solve"] != 2 || hits["job:site:zk-1208#0"] != 1 {
		t.Fatalf("hit log: %v", hits)
	}
	if p.HitCount() != 4 {
		t.Fatalf("hit count: %d", p.HitCount())
	}
	if log := p.HitLog(); log == "" {
		t.Fatal("empty hit log")
	}
}

// TestConcurrentAt exercises the hit log under parallel hook calls; the
// race detector is the assertion.
func TestConcurrentAt(t *testing.T) {
	p := NewPlan(1).Set("pt:*", Budget)
	Arm(p)
	defer Disarm()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				At("pt:x")
				Armed()
			}
		}()
	}
	wg.Wait()
	if p.Hits()["pt:x"] != 8*200 {
		t.Fatalf("lost hits: %v", p.Hits())
	}
}

func TestPickDeterministic(t *testing.T) {
	cands := []string{"b", "a", "c"}
	got := Pick(42, "salt", cands)
	if got == "" {
		t.Fatal("empty pick")
	}
	// Order-independent and repeatable.
	if again := Pick(42, "salt", []string{"c", "b", "a"}); again != got {
		t.Fatalf("pick not order-independent: %q vs %q", got, again)
	}
	if Pick(42, "salt", nil) != "" {
		t.Fatal("nil candidates should pick empty")
	}
}

// TestSetAfterDormantThenSticky: a SetAfter rule sleeps through its first
// skip visits, then fires on every later one.
func TestSetAfterDormantThenSticky(t *testing.T) {
	p := NewPlan(1).SetAfter("pt:n", Budget, 3)
	Arm(p)
	defer Disarm()
	for i := 0; i < 3; i++ {
		if _, ok := At("pt:n"); ok {
			t.Fatalf("rule fired on dormant visit %d", i+1)
		}
	}
	for i := 0; i < 2; i++ {
		if k, ok := At("pt:n"); !ok || k != Budget {
			t.Fatalf("rule dormant past its skip count (visit %d)", 4+i)
		}
	}
	if p.Hits()["pt:n"] != 2 {
		t.Fatalf("hits = %v, want pt:n×2", p.Hits())
	}
}

// TestStoreScoped: only a plan explicitly marked ScopeStore reports as
// store-scoped; unarmed processes never do.
func TestStoreScoped(t *testing.T) {
	if StoreScoped() {
		t.Fatal("unarmed process claims a store-scoped plan")
	}
	Arm(NewPlan(1).Set("store.write", Crash))
	if StoreScoped() {
		t.Fatal("unscoped plan reported store-scoped")
	}
	Arm(NewPlan(1).ScopeStore().Set("store.write", Crash))
	defer Disarm()
	if !StoreScoped() {
		t.Fatal("ScopeStore plan not reported")
	}
}

// TestCrashHook: a Crash rule fires like any other kind, and CrashNow
// routes through the swappable hook instead of killing the test binary.
func TestCrashHook(t *testing.T) {
	Arm(NewPlan(1).Set("pt:crash", Crash))
	defer Disarm()
	k, ok := At("pt:crash")
	if !ok || k != Crash {
		t.Fatalf("At = %v, %v, want Crash", k, ok)
	}
	var crashed string
	SetCrashFn(func(point string) { crashed = point })
	defer SetCrashFn(nil)
	CrashNow("pt:crash")
	if crashed != "pt:crash" {
		t.Fatalf("crash hook saw %q", crashed)
	}
}
