// Package core implements the LISA engine: the end-to-end workflow of
// Figure 5. The engine iterates over failure tickets, infers low-level
// semantics from each bundle, optionally cross-checks them against actual
// behavior, registers the survivors as executable contracts, and asserts
// every registered contract across a codebase — statically (execution
// trees + path conditions + the complement check) and dynamically
// (test-driven concolic replay with RAG-style test selection).
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"lisa/internal/callgraph"
	"lisa/internal/concolic"
	"lisa/internal/contract"
	"lisa/internal/infer"
	"lisa/internal/interp"
	"lisa/internal/minij"
	"lisa/internal/program"
	"lisa/internal/smt"
	"lisa/internal/testsel"
	"lisa/internal/ticket"
)

// Engine is the LISA pipeline.
type Engine struct {
	// Inferencer extracts semantics from tickets (stage 1 of Figure 5).
	Inferencer infer.Inferencer
	// Registry stores the executable contracts.
	Registry *contract.Registry
	// CrossCheck validates mined semantics against the ticket's fixed
	// source before registering them (the §5 defence).
	CrossCheck bool
	// TestTopK is how many tests the selector picks per path (default 3).
	TestTopK int
	// MaxStaticPaths bounds per-site path enumeration.
	MaxStaticPaths int
	// NoPrune disables relevant-variable pruning (ablation).
	NoPrune bool
	// NoPrefixPrune disables unsat-prefix subtree pruning during path
	// enumeration (ablation): statically infeasible subtrees are then
	// enumerated and discharged path by path.
	NoPrefixPrune bool
	// IntraOnly disables interprocedural condition inheritance along
	// execution-tree chains (ablation: guards in callers are then
	// invisible, flagging internal helpers their callers protect).
	IntraOnly bool
	// RunAllTests skips similarity-based selection and replays the whole
	// suite (ablation for the test-selection stage).
	RunAllTests bool
	// Budget bounds assertion runs (deadlines, solver nodes, interpreter
	// steps). The zero value means "no deadlines, package defaults".
	Budget Budget
	// Snapshots, when set, is a private snapshot cache for this engine;
	// when nil the process-wide cache is used. Fault-injection experiments
	// use a private cache so corrupted snapshots never poison other runs.
	Snapshots *program.Cache
	// VerifySnapshots re-checks each snapshot against its content address
	// before asserting over it, turning silent cache corruption into an
	// explicit program.ErrMutated failure.
	VerifySnapshots bool
	// Solver, when set, is a private solver result cache for this engine;
	// when nil the process-wide cache is used. A private instance gives
	// exact per-engine query/hit accounting (the daemon's /stats deltas)
	// and can carry its own disk tier.
	Solver *smt.QueryCache
}

// New returns an engine with the deterministic patch analyzer (with
// generalization enabled), an empty registry, and cross-checking on.
func New() *Engine {
	return &Engine{
		Inferencer: &infer.PatchAnalyzer{Generalize: true},
		Registry:   contract.NewRegistry(),
		CrossCheck: true,
		TestTopK:   3,
	}
}

// TicketReport is the outcome of processing one failure ticket.
type TicketReport struct {
	Ticket     *ticket.Ticket
	Result     *infer.Result
	Registered []*contract.Semantic
	Rejected   []infer.CrossCheckResult
	// AlreadyKnown lists semantics equivalent to ones inferred from an
	// earlier ticket — the paper's recurring pattern: the regression
	// violated the same low-level semantic as the original incident.
	AlreadyKnown []*contract.Semantic
}

// ProcessTicket runs inference on a ticket bundle and registers the
// resulting contracts (stages "infer" and "translate" of the workflow).
// Semantics equivalent to an already-registered rule are reported as
// already known rather than registered twice.
func (e *Engine) ProcessTicket(tk *ticket.Ticket) (*TicketReport, error) {
	res, err := e.Inferencer.Infer(tk)
	if err != nil {
		return nil, err
	}
	rep := &TicketReport{Ticket: tk, Result: res}
	sems := res.Semantics
	if e.CrossCheck {
		kept, rejected := infer.FilterGrounded(res, tk)
		sems = kept
		rep.Rejected = rejected
	}
	for _, sem := range sems {
		if known := e.findEquivalent(sem); known != nil {
			known.Origin = append(known.Origin, sem.Origin...)
			rep.AlreadyKnown = append(rep.AlreadyKnown, known)
			continue
		}
		if err := e.Registry.Add(sem); err != nil {
			return nil, fmt.Errorf("register %s: %w", sem.ID, err)
		}
		rep.Registered = append(rep.Registered, sem)
	}
	return rep, nil
}

// findEquivalent returns a registered semantic equivalent to sem, if any.
func (e *Engine) findEquivalent(sem *contract.Semantic) *contract.Semantic {
	for _, ex := range e.Registry.All() {
		if ex.Kind != sem.Kind {
			continue
		}
		switch sem.Kind {
		case contract.StructuralKind:
			if ex.Structural.Name() != sem.Structural.Name() {
				continue
			}
			if stringSetsEqual(structuralScope(ex.Structural), structuralScope(sem.Structural)) {
				return ex
			}
		case contract.StateKind:
			if ex.Target.Callee != sem.Target.Callee {
				continue
			}
			if !bindingsIntEqual(ex.Target.Bind, sem.Target.Bind) {
				continue
			}
			eq, err := smt.EquivErr(canonicalPre(ex), canonicalPre(sem))
			if err == nil && eq {
				// A solver failure means equivalence could not be shown;
				// registering the rule separately is the safe direction.
				return ex
			}
		}
	}
	return nil
}

// canonicalPre renames slot roots to their operand positions so two rules
// over differently named slots compare structurally.
func canonicalPre(sem *contract.Semantic) smt.Formula {
	f := sem.Pre
	for slot, idx := range sem.Target.Bind {
		f = smt.RenameRoot(f, slot, fmt.Sprintf("$op%d", idx))
	}
	return f
}

// structuralScope extracts a structural rule's method restriction, if any.
func structuralScope(rule contract.StructuralRule) map[string]bool {
	switch r := rule.(type) {
	case contract.NoBlockingInSync:
		return r.Only
	case contract.NoNestedSync:
		return r.Only
	}
	return nil
}

func stringSetsEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func bindingsIntEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	// Compare the multisets of operand positions.
	counts := map[int]int{}
	for _, v := range a {
		counts[v]++
	}
	for _, v := range b {
		counts[v]--
	}
	for _, c := range counts {
		if c != 0 {
			return false
		}
	}
	return true
}

// PathReport is the assertion outcome of one static path to one site.
type PathReport struct {
	Static  *concolic.StaticPath
	Verdict concolic.Verdict
	// CoveredBy lists tests whose dynamic execution matched this path.
	CoveredBy []string
	// DynamicVerdicts maps test name to its hit verdict on this path.
	DynamicVerdicts map[string]concolic.Verdict
	// PostViolatedBy lists tests whose replay reached this path but left
	// the contract's postcondition Q false afterwards.
	PostViolatedBy []string
}

// Covered reports whether any test exercised this path.
func (p *PathReport) Covered() bool { return len(p.CoveredBy) > 0 }

// SiteReport is the assertion outcome of one target-statement site.
type SiteReport struct {
	Site *contract.Site
	// Chains are the entry→site call chains from the execution tree.
	Chains        []callgraph.Path
	TreeTruncated bool
	Paths         []*PathReport
	// SelectedTests are the tests chosen for this site, in rank order.
	SelectedTests []string
}

// SemanticReport is the assertion outcome of one contract.
type SemanticReport struct {
	Semantic   *contract.Semantic
	Sites      []*SiteReport
	Structural []*contract.StructuralViolation
	// StructuralConfirmedBy maps an index into Structural to the tests
	// whose replay dynamically blocked inside the flagged method while a
	// lock was held (the runtime-monitor confirmation of a static finding).
	StructuralConfirmedBy map[int][]string
	// SanityOK means at least one path verified — the paper keeps the
	// "fixed" paths in the tree precisely so that a correct rule shows at
	// least one verified path; a rule with none is suspect.
	SanityOK bool
	// Failures are the contained job failures (panics, timeouts, budget
	// exhaustion) recorded while asserting this semantic, in job order.
	Failures []*JobFailure
}

// Per-semantic outcomes. A definite violation outranks degradation; only a
// fully clean semantic is a PASS.
const (
	OutcomeViolated     = "VIOLATED"
	OutcomeInconclusive = "INCONCLUSIVE"
	OutcomePass         = "PASS"
)

// Outcome classifies the semantic. VIOLATED when any structural finding,
// violating static path, or dynamic postcondition violation surfaced.
// Otherwise INCONCLUSIVE when any job failed or any verdict (static or
// dynamic) is INCONCLUSIVE — the run degraded, so the absence of a
// violation proves nothing. Otherwise PASS.
func (sr *SemanticReport) Outcome() string {
	violated := len(sr.Structural) > 0
	inconclusive := len(sr.Failures) > 0
	for _, siteRep := range sr.Sites {
		for _, p := range siteRep.Paths {
			switch p.Verdict {
			case concolic.VerdictViolation:
				violated = true
			case concolic.VerdictInconclusive:
				inconclusive = true
			}
			if len(p.PostViolatedBy) > 0 {
				violated = true
			}
			for _, v := range p.DynamicVerdicts {
				if v == concolic.VerdictInconclusive {
					inconclusive = true
				}
			}
		}
	}
	if violated {
		return OutcomeViolated
	}
	if inconclusive {
		return OutcomeInconclusive
	}
	return OutcomePass
}

// Counts aggregates verdicts.
type Counts struct {
	Verified   int
	Violations int
	Unknown    int
	Uncovered  int
	// PostViolations counts dynamic hits whose postcondition Q failed.
	PostViolations int
	// Inconclusive counts static paths whose complement check degraded
	// (solver budget, cancellation) instead of deciding.
	Inconclusive int
	// Failures counts contained job failures across all semantics.
	Failures int
}

// StageTimings accumulates wall-clock per workflow stage. A nil map is a
// valid no-op sink, so stage primitives can run untimed.
type StageTimings map[string]time.Duration

// Time runs f and charges its wall-clock to the named stage.
func (t StageTimings) Time(name string, f func()) {
	if t == nil {
		f()
		return
	}
	t0 := time.Now()
	f()
	t[name] += time.Since(t0)
}

// AddAll merges another timing map into this one (stage totals add up).
func (t StageTimings) AddAll(other StageTimings) {
	if t == nil {
		return
	}
	for name, d := range other {
		t[name] += d
	}
}

// AssertReport is the outcome of asserting every registered contract over
// one codebase version.
type AssertReport struct {
	Semantics []*SemanticReport
	Counts    Counts
	// StageTimings records wall-clock per workflow stage.
	StageTimings StageTimings
	// TestsRun counts dynamic test executions.
	TestsRun int
	// StaticOnly marks reports produced without any test corpus.
	StaticOnly bool
}

// Violations returns every violating path and structural finding rendered
// as strings (for gates and logs).
func (r *AssertReport) Violations() []string {
	var out []string
	for _, sr := range r.Semantics {
		for _, v := range sr.Structural {
			out = append(out, fmt.Sprintf("[%s] %s", sr.Semantic.ID, v))
		}
		for _, site := range sr.Sites {
			for _, p := range site.Paths {
				if p.Verdict == concolic.VerdictViolation {
					out = append(out, fmt.Sprintf("[%s] %s path {%s}", sr.Semantic.ID, site.Site, p.Static))
				}
			}
		}
	}
	return out
}

// Semantic returns the per-semantic report with the given ID, or nil when
// the run did not assert it.
func (r *AssertReport) Semantic(id string) *SemanticReport {
	for _, sr := range r.Semantics {
		if sr.Semantic.ID == id {
			return sr
		}
	}
	return nil
}

// AssertContext is the shared, read-only state one assertion run operates
// over: the compiled programs, the call graph, and the test index. It is
// built once by Prepare and consumed by the stage primitives below —
// sequentially by Assert, or fanned out across goroutines by the scheduler
// in internal/sched. After Prepare returns, nothing in the context mutates,
// so concurrent stage execution is safe.
type AssertContext struct {
	Source string
	Tests  []ticket.TestCase
	// Snapshot is the system version under assertion; SnapshotAll covers
	// system plus tests. Both are shared, content-addressed compilations —
	// repeated runs over one version reuse them instead of re-parsing.
	Snapshot    *program.Snapshot
	SnapshotAll *program.Snapshot
	// ProgSys is the system alone (the class inventory); ProgAll is system
	// plus tests (the analysis program, so statement IDs align between
	// static and dynamic stages).
	ProgSys *minij.Program
	ProgAll *minij.Program
	Graph   *callgraph.Graph
	// Selector indexes the test corpus for similarity selection.
	Selector *testsel.Selector

	systemClasses map[string]bool
}

// MethodCanon returns the canonical text of a method of the analysis
// program, memoized on the snapshot so fingerprinting the same method
// across jobs and across runs renders it once.
func (c *AssertContext) MethodCanon(m *minij.Method) string {
	if s := c.SnapshotAll.MethodCanon(m.FullName()); s != "" {
		return s
	}
	return minij.FormatMethod(m)
}

// SystemClass reports whether the named class belongs to the system source
// (as opposed to test code).
func (c *AssertContext) SystemClass(name string) bool { return c.systemClasses[name] }

// IsEntry reports whether m is an entry function: a system method not
// called from system code (test callers do not disqualify it).
func (c *AssertContext) IsEntry(m *minij.Method) bool {
	if !c.systemClasses[m.Class.Name] {
		return false
	}
	for _, cs := range c.Graph.Callers[m] {
		if c.systemClasses[cs.Caller.Class.Name] {
			return false
		}
	}
	return true
}

// Prepare loads the target source as a shared snapshot (with and without
// tests), builds the call graph, and indexes the test corpus — the shared
// setup every assertion stage depends on. Snapshots are memoized by content
// hash, so replaying a version that was prepared before skips the parse,
// resolve, and call-graph stages entirely.
func (e *Engine) Prepare(source string, tests []ticket.TestCase, tm StageTimings) (*AssertContext, error) {
	var snap *program.Snapshot
	var err error
	tm.Time("compile", func() { snap, err = e.LoadSnapshot(source) })
	if err != nil {
		return nil, fmt.Errorf("system source: %w", err)
	}
	return e.PrepareSnapshot(snap, tests, tm)
}

// LoadSnapshot loads source through the engine's snapshot cache — the
// private one when Snapshots is set, the process-wide cache otherwise.
func (e *Engine) LoadSnapshot(source string) (*program.Snapshot, error) {
	if e.Snapshots != nil {
		return e.Snapshots.Load(source)
	}
	return program.Load(source)
}

// PrepareSnapshot is Prepare for an already-loaded system snapshot (the CI
// gate loads head and proposed change once and shares them across jobs).
func (e *Engine) PrepareSnapshot(snap *program.Snapshot, tests []ticket.TestCase, tm StageTimings) (*AssertContext, error) {
	if e.VerifySnapshots {
		if err := snap.Verify(); err != nil {
			return nil, err
		}
	}
	ctx := &AssertContext{Source: snap.Source(), Snapshot: snap, Tests: tests}
	ctx.ProgSys = snap.Program()
	var err error
	tm.Time("compile", func() {
		if len(tests) == 0 {
			// No test code: the analysis program is the system program.
			ctx.SnapshotAll = snap
			return
		}
		full := snap.Source()
		for _, tc := range tests {
			full += "\n" + tc.Source
		}
		ctx.SnapshotAll, err = e.LoadSnapshot(full)
		if err != nil {
			err = fmt.Errorf("system+tests: %w", err)
		}
	})
	if err != nil {
		return nil, err
	}
	if e.VerifySnapshots && ctx.SnapshotAll != snap {
		if verr := ctx.SnapshotAll.Verify(); verr != nil {
			return nil, verr
		}
	}
	ctx.ProgAll = ctx.SnapshotAll.Program()
	ctx.systemClasses = map[string]bool{}
	for _, c := range ctx.ProgSys.Classes {
		ctx.systemClasses[c.Name] = true
	}
	tm.Time("callgraph", func() { ctx.Graph = ctx.SnapshotAll.Graph() })
	tm.Time("test-index", func() { ctx.Selector = testsel.New(tests) })
	return ctx, nil
}

// StructuralReport runs the structural check for sem over the system
// program and, when violations surface and tests exist, confirms them under
// the runtime blocking monitor. rctx bounds the confirmation replays.
func (e *Engine) StructuralReport(rctx context.Context, ctx *AssertContext, sem *contract.Semantic, tm StageTimings) *SemanticReport {
	sr := &SemanticReport{Semantic: sem}
	tm.Time("structural", func() { sr.Structural = sem.Structural.Check(ctx.ProgSys) })
	if len(sr.Structural) > 0 && len(ctx.Tests) > 0 {
		tm.Time("structural-replay", func() {
			sr.StructuralConfirmedBy = e.confirmStructural(rctx, ctx.ProgAll, sr.Structural, ctx.Tests)
		})
	}
	sr.SanityOK = true
	return sr
}

// MatchSites finds sem's target sites in system code (calls from test code
// are not production paths), in deterministic match order.
func (e *Engine) MatchSites(ctx *AssertContext, sem *contract.Semantic, tm StageTimings) []*contract.Site {
	var sites []*contract.Site
	tm.Time("match", func() {
		for _, site := range contract.Match(sem, ctx.ProgAll) {
			if ctx.systemClasses[site.Method.Class.Name] {
				sites = append(sites, site)
			}
		}
	})
	return sites
}

// SiteChains starts a site report by enumerating the entry→site call chains
// of the execution tree.
func (e *Engine) SiteChains(ctx *AssertContext, site *contract.Site, tm StageTimings) *SiteReport {
	siteRep := &SiteReport{Site: site}
	tm.Time("exec-tree", func() {
		tree := ctx.Graph.ExecutionTree(site.Method, callgraph.TreeOptions{IsEntry: ctx.IsEntry})
		siteRep.Chains = tree.Paths
		siteRep.TreeTruncated = tree.Truncated
	})
	return siteRep
}

// SitePaths enumerates the static paths reaching siteRep's site along its
// chains and records per-path complement-check verdicts. rctx cancellation
// and budget errors abort the stage; the caller (SiteJob) then discards
// the partial site.
func (e *Engine) SitePaths(rctx context.Context, ctx *AssertContext, siteRep *SiteReport, tm StageTimings) error {
	site := siteRep.Site
	var stageErr error
	tm.Time("static-paths", func() {
		lim := e.solverLimits(rctx)
		opts := concolic.Options{
			MaxPaths:      e.MaxStaticPaths,
			NoPrune:       e.NoPrune,
			Ctx:           rctx,
			Lim:           lim,
			NoPrefixPrune: e.NoPrefixPrune,
		}
		chains := siteRep.Chains
		if e.IntraOnly || len(chains) == 0 {
			chains = []callgraph.Path{nil}
		}
		// Enumerate first, then submit every complement check as one
		// solver batch: identical instantiated queries across the site's
		// paths dedup onto a single solve, and the cache is consulted in
		// one lock pass instead of one round trip per path.
		seen := map[string]bool{}
		var pending []*concolic.StaticPath
		for _, chain := range chains {
			var paths []*concolic.StaticPath
			var truncated bool
			if e.IntraOnly {
				paths, truncated = concolic.StaticPaths(ctx.ProgAll, site, opts)
			} else {
				paths, truncated = concolic.ChainStaticPaths(ctx.ProgAll, site, chain, opts)
			}
			siteRep.TreeTruncated = siteRep.TreeTruncated || truncated
			for _, p := range paths {
				if seen[p.Key()] {
					continue
				}
				seen[p.Key()] = true
				pending = append(pending, p)
			}
		}
		verdicts, err := concolic.CheckStaticPathsLim(pending, lim)
		if err != nil {
			stageErr = err
			return
		}
		for i, p := range pending {
			siteRep.Paths = append(siteRep.Paths, &PathReport{
				Static:          p,
				Verdict:         verdicts[i],
				DynamicVerdicts: map[string]concolic.Verdict{},
			})
		}
		// Path enumeration swallows cancellation into truncation; surface
		// it so a cancelled run fails the job instead of shipping a
		// quietly shorter path set.
		stageErr = rctx.Err()
	})
	return stageErr
}

// SiteStatic runs the full static pipeline for one site: execution tree,
// then path enumeration with verdicts — unbounded, for callers outside an
// assertion run (tools and tests).
func (e *Engine) SiteStatic(ctx *AssertContext, site *contract.Site, tm StageTimings) *SiteReport {
	siteRep := e.SiteChains(ctx, site, tm)
	_ = e.SitePaths(context.Background(), ctx, siteRep, tm)
	return siteRep
}

// DynamicReplay selects tests per site, replays them concolically, and
// attributes hits to static paths. It returns the number of distinct tests
// run; a non-nil error means the stage degraded (step budget, deadline,
// cancellation) and the caller must not trust the partial overlay.
func (e *Engine) DynamicReplay(rctx context.Context, ctx *AssertContext, sr *SemanticReport, tm StageTimings) (int, error) {
	if len(ctx.Tests) == 0 {
		return 0, nil
	}
	var selected []ticket.TestCase
	tm.Time("test-select", func() {
		seen := map[string]bool{}
		for _, siteRep := range sr.Sites {
			var statics []*concolic.StaticPath
			for _, p := range siteRep.Paths {
				statics = append(statics, p.Static)
			}
			var chosen []ticket.TestCase
			if e.RunAllTests {
				chosen = ctx.Selector.All()
			} else {
				chosen = ctx.Selector.SelectForSite(siteRep.Site, siteRep.Chains, statics, e.topK())
			}
			for _, tc := range chosen {
				siteRep.SelectedTests = append(siteRep.SelectedTests, tc.Name)
				if !seen[tc.Name] {
					seen[tc.Name] = true
					selected = append(selected, tc)
				}
			}
		}
	})
	var err error
	tm.Time("concolic", func() { err = e.runDynamic(rctx, ctx.ProgAll, sr, selected) })
	return len(selected), err
}

// Absorb appends a finished semantic report and folds its verdicts into the
// aggregate counts (including the per-rule sanity check).
func (r *AssertReport) Absorb(sr *SemanticReport) {
	r.Semantics = append(r.Semantics, sr)
	r.Counts.Failures += len(sr.Failures)
	if sr.Semantic.Kind == contract.StructuralKind {
		r.Counts.Violations += len(sr.Structural)
		return
	}
	for _, siteRep := range sr.Sites {
		for _, p := range siteRep.Paths {
			switch p.Verdict {
			case concolic.VerdictVerified:
				r.Counts.Verified++
				sr.SanityOK = true
			case concolic.VerdictViolation:
				r.Counts.Violations++
			case concolic.VerdictInconclusive:
				r.Counts.Inconclusive++
			default:
				r.Counts.Unknown++
			}
			if !p.Covered() && !r.StaticOnly {
				r.Counts.Uncovered++
			}
			r.Counts.PostViolations += len(p.PostViolatedBy)
		}
	}
}

// Assert checks every registered contract against a codebase, optionally
// replaying tests for dynamic confirmation. The returned report carries
// per-path verdicts, coverage, and sanity status. This is the sequential
// reference run; internal/sched produces byte-identical reports by fanning
// the same stage primitives out across a worker pool.
func (e *Engine) Assert(source string, tests []ticket.TestCase) (*AssertReport, error) {
	return e.AssertCtx(context.Background(), source, tests)
}

// AssertCtx is Assert under an external context: cancelling ctx promptly
// aborts the run, failing in-flight jobs with reason "cancelled".
func (e *Engine) AssertCtx(ctx context.Context, source string, tests []ticket.TestCase) (*AssertReport, error) {
	tm := StageTimings{}
	actx, err := e.Prepare(source, tests, tm)
	if err != nil {
		return nil, err
	}
	rctx, cancel := e.Budget.RunContext(ctx)
	defer cancel()
	return e.assertOver(rctx, actx, tm), nil
}

// AssertSnapshot is Assert over an already-loaded program snapshot.
func (e *Engine) AssertSnapshot(snap *program.Snapshot, tests []ticket.TestCase) (*AssertReport, error) {
	return e.AssertSnapshotCtx(context.Background(), snap, tests)
}

// AssertSnapshotCtx is AssertSnapshot under an external context.
func (e *Engine) AssertSnapshotCtx(ctx context.Context, snap *program.Snapshot, tests []ticket.TestCase) (*AssertReport, error) {
	tm := StageTimings{}
	actx, err := e.PrepareSnapshot(snap, tests, tm)
	if err != nil {
		return nil, err
	}
	rctx, cancel := e.Budget.RunContext(ctx)
	defer cancel()
	return e.assertOver(rctx, actx, tm), nil
}

// assertOver runs the sequential stage loop over a prepared context. Every
// stage executes as a contained job — the same decomposition, names, and
// failure handling as the scheduler's worker pool — so a fault degrades
// both execution strategies to byte-identical reports.
func (e *Engine) assertOver(rctx context.Context, ctx *AssertContext, tm StageTimings) *AssertReport {
	report := &AssertReport{StageTimings: tm, StaticOnly: len(ctx.Tests) == 0}
	for _, sem := range e.Registry.All() {
		var sr *SemanticReport
		if sem.Kind == contract.StructuralKind {
			sr = e.StructuralJob(rctx, ctx, JobNameStructural(sem.ID), sem, tm)
		} else {
			sr = &SemanticReport{Semantic: sem}
			for i, site := range e.MatchSites(ctx, sem, tm) {
				siteRep := e.SiteChains(ctx, site, tm)
				sr.Sites = append(sr.Sites, siteRep)
				if fail := e.SiteJob(rctx, ctx, JobNameSite(sem.ID, i), siteRep, tm); fail != nil {
					sr.Failures = append(sr.Failures, fail)
				}
			}
			if len(ctx.Tests) > 0 {
				n, fail := e.DynamicJob(rctx, ctx, JobNameDynamic(sem.ID), sr, tm)
				report.TestsRun += n
				if fail != nil {
					sr.Failures = append(sr.Failures, fail)
				}
			}
		}
		report.Absorb(sr)
	}
	return report
}

// confirmStructural replays the test suite under the runtime blocking
// monitor and attributes blocking-under-lock events to the statically
// flagged methods.
func (e *Engine) confirmStructural(rctx context.Context, prog *minij.Program, violations []*contract.StructuralViolation, tests []ticket.TestCase) map[int][]string {
	confirmed := map[int][]string{}
	for _, tc := range tests {
		if rctx.Err() != nil {
			// StructuralJob turns the truncation into a job failure.
			break
		}
		in := interp.NewWithOptions(prog, interp.Options{Ctx: rctx, StepBudget: e.Budget.StepBudget})
		mon := &contract.RuntimeBlockingMonitor{}
		mon.Attach(in)
		// Expected exceptions do not invalidate observed events.
		_, _ = in.CallStatic(tc.Class, tc.Method)
		for _, ev := range mon.Events {
			for i, v := range violations {
				if ev.Method == v.Method.FullName() && !containsString(confirmed[i], tc.Name) {
					confirmed[i] = append(confirmed[i], tc.Name)
				}
			}
		}
	}
	return confirmed
}

func (e *Engine) topK() int {
	if e.TestTopK <= 0 {
		return 3
	}
	return e.TestTopK
}

// runDynamic replays the selected tests, then attributes each site hit to
// the static path it instantiates (matching bindings, and a dynamic
// condition that entails the static one). Tests that exhaust the step or
// stack budget degrade the stage deterministically: the aggregated error
// names them in selection order.
func (e *Engine) runDynamic(rctx context.Context, prog *minij.Program, sr *SemanticReport, selected []ticket.TestCase) error {
	var sites []*contract.Site
	siteReps := map[*contract.Site]*SiteReport{}
	for _, siteRep := range sr.Sites {
		sites = append(sites, siteRep.Site)
		siteReps[siteRep.Site] = siteRep
	}
	if len(sites) == 0 {
		return nil
	}
	runner := concolic.NewRunner(prog, sites, interp.Options{Ctx: rctx, StepBudget: e.Budget.StepBudget})
	runner.SetNoPrune(e.NoPrune)
	var degraded []string
	for _, tc := range selected {
		if err := runner.RunStatic(tc.Name, tc.Class, tc.Method); err != nil {
			var ue *interp.UncaughtError
			switch {
			case errors.As(err, &ue):
				// Tests may end in expected exceptions; hits before unwind
				// count.
			case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
				return err
			case errors.Is(err, interp.ErrStepBudget), errors.Is(err, interp.ErrStackDepth):
				degraded = append(degraded, tc.Name)
			default:
				return fmt.Errorf("replay %s: %w", tc.Name, err)
			}
		}
	}
	lim := e.solverLimits(rctx)
	for _, hit := range runner.Hits {
		siteRep := siteReps[hit.Site]
		if siteRep == nil {
			continue
		}
		best := matchHitToPath(hit, siteRep.Paths, lim)
		if best == nil {
			continue
		}
		if !containsString(best.CoveredBy, hit.TestName) {
			best.CoveredBy = append(best.CoveredBy, hit.TestName)
		}
		best.DynamicVerdicts[hit.TestName] = hit.VerdictLim(lim)
		if hit.PostHolds == concolic.TriFalse && !containsString(best.PostViolatedBy, hit.TestName) {
			best.PostViolatedBy = append(best.PostViolatedBy, hit.TestName)
		}
	}
	if len(degraded) > 0 {
		return fmt.Errorf("replay degraded for %s: %w", strings.Join(degraded, ", "), interp.ErrStepBudget)
	}
	return nil
}

// matchHitToPath finds the most specific static path whose condition the
// hit's condition entails, with matching slot bindings. A solver failure
// on a candidate skips it — conservatively leaving the hit unattributed.
func matchHitToPath(hit *concolic.SiteHit, paths []*PathReport, lim smt.Limits) *PathReport {
	var best *PathReport
	bestAtoms := -1
	for _, p := range paths {
		if !bindingsEqual(hit.Bindings, p.Static.Bindings) {
			continue
		}
		ok, err := smt.ImpliesLim(hit.Cond, p.Static.Cond, lim)
		if err != nil || !ok {
			continue
		}
		n := len(smt.Atoms(p.Static.Cond))
		if n > bestAtoms {
			best, bestAtoms = p, n
		}
	}
	return best
}

func bindingsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func containsString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// SortedStageNames returns the timing keys in deterministic order.
func (r *AssertReport) SortedStageNames() []string {
	var names []string
	for n := range r.StageTimings {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
