package smt_test

import (
	"fmt"

	"lisa/internal/smt"
)

// The paper's §3.2 worked example: a trace that omits the s.ttl check is
// satisfiable together with the checker's complement, hence a violation.
func ExampleComplement() {
	checker := smt.MustParsePredicate(`s != null && s.isClosing() == false && s.ttl > 0`)
	comp := smt.Complement(checker)
	fmt.Println("complement:", comp)

	omitsTTL := smt.MustParsePredicate(`s != null && s.isClosing() == false`)
	fullGuard := smt.MustParsePredicate(`s != null && s.isClosing() == false && s.ttl > 0`)
	fmt.Println("omits ttl violates:", smt.SAT(smt.NewAnd(omitsTTL, comp)))
	fmt.Println("full guard violates:", smt.SAT(smt.NewAnd(fullGuard, comp)))
	// Output:
	// complement: s == null || s.isClosing || s.ttl <= 0
	// omits ttl violates: true
	// full guard violates: false
}

func ExampleImplies() {
	p := smt.MustParsePredicate(`x == 3`)
	q := smt.MustParsePredicate(`x > 2`)
	fmt.Println(smt.Implies(p, q), smt.Implies(q, p))
	// Output: true false
}

func ExampleParsePredicate() {
	f, err := smt.ParsePredicate(`lease != null && lease.isValid() && retries < 5`)
	if err != nil {
		panic(err)
	}
	fmt.Println(f)
	// Output: lease != null && lease.isValid && retries < 5
}
