package smt

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"lisa/internal/faultinject"
)

// Model assigns a truth value to each atom key that the solver decided.
type Model map[string]bool

// String renders the model deterministically.
func (m Model) String() string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%v", k, m[k])
	}
	return strings.Join(parts, ", ")
}

// ErrBudget is returned when the DPLL search exceeds its node budget.
var ErrBudget = errors.New("smt: search budget exhausted")

// DefaultMaxNodes bounds the DPLL search. Corpus formulas have well under
// twenty atoms, so this is a backstop, not a practical limit.
const DefaultMaxNodes = 1 << 20

// ctxPollMask throttles the cooperative-cancellation poll: the DPLL search
// checks Limits.Ctx whenever nodes&ctxPollMask == 0. A 256-node cadence
// keeps the select off the hot loop while bounding cancellation latency to
// far below a millisecond of search; interp uses the same pattern (its
// ctxPollMask is wider because interpreter steps are cheaper than search
// nodes).
const ctxPollMask = 1<<8 - 1

// Limits bounds one satisfiability query. The zero value applies the
// package defaults: DefaultMaxNodes and no cancellation.
type Limits struct {
	// Ctx, when non-nil, is polled cooperatively during the DPLL search;
	// cancellation or deadline expiry surfaces as the context's error.
	Ctx context.Context
	// MaxNodes caps search-tree nodes (<= 0 means DefaultMaxNodes).
	MaxNodes int
	// Cache routes this query through a caller-owned result cache instead
	// of the process-wide default, giving the owner exact per-instance
	// stats (and its own disk tier). Nil means the default cache.
	Cache *QueryCache
}

// Solve decides satisfiability of f with default limits, returning a
// witness model when SAT.
func Solve(f Formula) (sat bool, model Model, err error) {
	return SolveLim(f, Limits{})
}

// SolveLim decides satisfiability of f under explicit limits. A non-nil
// error is ErrBudget (node ceiling hit) or the context's error; the bool
// is meaningless then, and callers must surface the query as inconclusive
// rather than guessing a direction. Model-returning queries bypass the
// boolean result cache.
func SolveLim(f Formula, lim Limits) (sat bool, model Model, err error) {
	stats.queries.Add(1)
	qc := lim.Cache
	if qc == nil {
		qc = queryResults
	}
	qc.queries.Add(1)
	var nodes int
	sat, model, nodes, err = solveCore(f, lim)
	qc.solves.Add(1)
	qc.nodes.Add(uint64(nodes))
	return sat, model, err
}

// solveCore runs one uncached solve: fault injection first (so injected
// faults keep firing on every cache miss), then the optimized DPLL(T)
// search, updating the package counters exactly once per solve.
func solveCore(f Formula, lim Limits) (sat bool, model Model, nodes int, err error) {
	if faultinject.Armed() {
		switch k, ok := faultinject.At("smt.solve"); {
		case ok && k == faultinject.Budget:
			return false, nil, 0, ErrBudget
		case ok && k == faultinject.Panic:
			panic("faultinject: smt.solve")
		}
	}
	start := time.Now()
	var theoryTime time.Duration
	sat, model, nodes, theoryTime, err = runSolver(f, lim)
	stats.solves.Add(1)
	stats.nodes.Add(uint64(nodes))
	stats.solveNS.Add(int64(time.Since(start)))
	stats.theoryNS.Add(int64(theoryTime))
	if err != nil {
		return false, nil, nodes, err
	}
	return sat, model, nodes, nil
}

// SAT reports whether f is satisfiable, treating any solver error — budget
// exhaustion, cancellation — as satisfiable. That biases ambiguity toward
// reporting a violation, which is acceptable for tests and offline
// experiments but hides the degradation from the report; production
// callers use SATErr/SATLim and surface errors as INCONCLUSIVE verdicts.
func SAT(f Formula) bool {
	sat, err := satCached(f, Limits{})
	if err != nil {
		return true
	}
	return sat
}

// SATErr reports whether f is satisfiable under default limits,
// propagating budget exhaustion instead of folding it into the answer.
func SATErr(f Formula) (bool, error) {
	return satCached(f, Limits{})
}

// SATLim is SATErr under explicit limits.
func SATLim(f Formula, lim Limits) (bool, error) {
	return satCached(f, lim)
}

// Implies reports whether p logically entails q (p ⇒ q), i.e. whether
// p ∧ ¬q is unsatisfiable. Like SAT it swallows solver errors (erring
// toward "does not entail"); production callers use ImpliesErr/ImpliesLim.
func Implies(p, q Formula) bool {
	return !SAT(NewAnd(p, NewNot(q)))
}

// ImpliesErr is Implies with error propagation under default limits.
func ImpliesErr(p, q Formula) (bool, error) {
	sat, err := SATErr(NewAnd(p, NewNot(q)))
	return !sat, err
}

// ImpliesLim is ImpliesErr under explicit limits.
func ImpliesLim(p, q Formula, lim Limits) (bool, error) {
	sat, err := SATLim(NewAnd(p, NewNot(q)), lim)
	return !sat, err
}

// Equiv reports whether p and q are logically equivalent.
func Equiv(p, q Formula) bool {
	return Implies(p, q) && Implies(q, p)
}

// EquivErr is Equiv with error propagation under default limits.
func EquivErr(p, q Formula) (bool, error) {
	pq, err := ImpliesErr(p, q)
	if err != nil {
		return false, err
	}
	if !pq {
		return false, nil
	}
	return ImpliesErr(q, p)
}

// Valid reports whether f is a tautology.
func Valid(f Formula) bool { return !SAT(NewNot(f)) }

// solver is the optimized DPLL(T) search: unit-propagated literals are
// pre-assigned, remaining atoms are decided most-constrained-first, and the
// theory state is carried incrementally (mark/assert/pop) instead of being
// rebuilt at every node.
type solver struct {
	f       Formula
	order   []string // decision keys, most-constrained-first; units excluded
	byKey   map[string]Atom
	assign  Model
	witness Model // scratch model reused for the SAT result
	th      *theory
	nodes   int
	max     int
	ctx     context.Context
}

// runSolver prepares and runs one optimized search, returning the verdict,
// witness, node count, and theory wall clock.
func runSolver(f Formula, lim Limits) (bool, Model, int, time.Duration, error) {
	max := lim.MaxNodes
	if max <= 0 {
		max = DefaultMaxNodes
	}
	f = simplify(f)
	atoms := Atoms(f)
	byKey := make(map[string]Atom, len(atoms))
	for _, a := range atoms {
		k, _ := a.Key()
		byKey[k] = a
	}
	th := newTheory(atoms)

	// Unit propagation: literals on the top-level conjunction spine are
	// forced before any search happens. A propositional conflict among them
	// (or a false constant conjunct) decides UNSAT at zero nodes; a theory
	// conflict does the same.
	units, conflict := unitLiterals(f)
	if conflict {
		return false, nil, 0, th.elapsed, nil
	}
	assign := make(Model, len(atoms))
	for k, v := range units {
		assign[k] = v
		if !th.assert(byKey[k], v) {
			return false, nil, 0, th.elapsed, nil
		}
	}

	// Most-constrained-first decision order: atoms occurring most often are
	// decided first so conflicts surface high in the tree; ties break on the
	// canonical key for determinism.
	counts := map[string]int{}
	countAtoms(f, counts)
	order := make([]string, 0, len(atoms))
	for _, a := range atoms {
		k, _ := a.Key()
		if _, isUnit := units[k]; !isUnit {
			order = append(order, k)
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		if counts[order[i]] != counts[order[j]] {
			return counts[order[i]] > counts[order[j]]
		}
		return order[i] < order[j]
	})

	s := &solver{
		f:       f,
		order:   order,
		byKey:   byKey,
		assign:  assign,
		witness: make(Model, len(atoms)),
		th:      th,
		max:     max,
		ctx:     lim.Ctx,
	}
	ok, err := s.search(0)
	if err != nil {
		return false, nil, s.nodes, th.elapsed, err
	}
	if !ok {
		return false, nil, s.nodes, th.elapsed, nil
	}
	return true, s.witness, s.nodes, th.elapsed, nil
}

// search decides atoms order[i:] and reports whether a theory-consistent
// satisfying assignment exists. The theory is consistent on entry by
// construction — every assigned literal was accepted by an incremental
// assert on the way down — so no per-node recheck is needed.
func (s *solver) search(i int) (bool, error) {
	s.nodes++
	if s.nodes > s.max {
		return false, ErrBudget
	}
	if s.ctx != nil && s.nodes&ctxPollMask == 0 {
		select {
		case <-s.ctx.Done():
			return false, s.ctx.Err()
		default:
		}
	}
	switch eval3(s.f, s.assign) {
	case triFalse:
		return false, nil
	case triTrue:
		// Fill the preallocated scratch witness; the success path returns
		// straight up the stack, so the assignment is never unwound from
		// under it.
		for k, v := range s.assign {
			s.witness[k] = v
		}
		return true, nil
	}
	if i >= len(s.order) {
		// All atoms assigned yet value unknown cannot happen; defensive.
		return false, nil
	}
	k := s.order[i]
	a := s.byKey[k]
	for _, v := range [2]bool{true, false} {
		s.assign[k] = v
		s.th.mark()
		if s.th.assert(a, v) {
			ok, err := s.search(i + 1)
			if ok || err != nil {
				return ok, err
			}
		}
		s.th.pop()
		delete(s.assign, k)
	}
	return false, nil
}

// unitLiterals extracts the literals forced by f's top-level conjunction
// spine. The second result reports a propositional contradiction among the
// units (or a false constant conjunct), which decides UNSAT outright.
func unitLiterals(f Formula) (Model, bool) {
	units := Model{}
	conflict := false
	var walk func(Formula)
	walk = func(g Formula) {
		switch n := g.(type) {
		case *And:
			for _, x := range n.Xs {
				walk(x)
			}
		case *AtomF:
			k, neg := n.Atom.Key()
			want := !neg
			if prev, ok := units[k]; ok && prev != want {
				conflict = true
			}
			units[k] = want
		case *Not:
			if af, ok := n.X.(*AtomF); ok {
				k, neg := af.Atom.Key()
				want := neg
				if prev, ok := units[k]; ok && prev != want {
					conflict = true
				}
				units[k] = want
			}
		case *Const:
			if !n.Value {
				conflict = true
			}
		}
	}
	walk(f)
	return units, conflict
}

// countAtoms tallies occurrences per atom key for the decision ordering.
func countAtoms(f Formula, counts map[string]int) {
	switch n := f.(type) {
	case *AtomF:
		k, _ := n.Atom.Key()
		counts[k]++
	case *Not:
		countAtoms(n.X, counts)
	case *And:
		for _, x := range n.Xs {
			countAtoms(x, counts)
		}
	case *Or:
		for _, x := range n.Xs {
			countAtoms(x, counts)
		}
	}
}

// simplify rebuilds f through the smart constructors, folding constants and
// flattening nested conjunctions/disjunctions so the search sees the
// smallest equivalent tree and unit propagation sees the full spine.
func simplify(f Formula) Formula {
	switch n := f.(type) {
	case *And:
		xs := make([]Formula, len(n.Xs))
		for i, x := range n.Xs {
			xs[i] = simplify(x)
		}
		return NewAnd(xs...)
	case *Or:
		xs := make([]Formula, len(n.Xs))
		for i, x := range n.Xs {
			xs[i] = simplify(x)
		}
		return NewOr(xs...)
	case *Not:
		return NewNot(simplify(n.X))
	}
	return f
}

type tri int

const (
	triFalse tri = iota
	triTrue
	triUnknown
)

// eval3 evaluates f under a partial assignment with three-valued logic.
func eval3(f Formula, assign Model) tri {
	switch n := f.(type) {
	case *Const:
		if n.Value {
			return triTrue
		}
		return triFalse
	case *AtomF:
		k, neg := n.Atom.Key()
		v, ok := assign[k]
		if !ok {
			return triUnknown
		}
		if v != neg {
			return triTrue
		}
		return triFalse
	case *Not:
		switch eval3(n.X, assign) {
		case triTrue:
			return triFalse
		case triFalse:
			return triTrue
		}
		return triUnknown
	case *And:
		out := triTrue
		for _, x := range n.Xs {
			switch eval3(x, assign) {
			case triFalse:
				return triFalse
			case triUnknown:
				out = triUnknown
			}
		}
		return out
	case *Or:
		out := triFalse
		for _, x := range n.Xs {
			switch eval3(x, assign) {
			case triTrue:
				return triTrue
			case triUnknown:
				out = triUnknown
			}
		}
		return out
	}
	panic(fmt.Sprintf("smt: unhandled formula %T", f))
}
