package concolic

import (
	"testing"

	"lisa/internal/contract"
	"lisa/internal/interp"
	"lisa/internal/minij"
	"lisa/internal/smt"
)

// The getter-normalization fixture: guards written four different ways must
// all normalize to the same field-vocabulary formula.
const getterSrc = `
class Lease {
	string holder;
	bool expired;
	int ttl;

	bool isValid() {
		return !expired;
	}

	bool isExpired() {
		return expired;
	}

	int remaining() {
		return ttl;
	}
}

class Chain {
	list ops;

	void append(Lease l, string op) {
		ops.add(op);
	}
}

class A {
	Chain chain;

	void viaIsValid(Lease l, string op) {
		if (l != null && l.isValid()) {
			chain.append(l, op);
		}
	}
}

class B {
	Chain chain;

	void viaIsExpiredEqFalse(Lease l, string op) {
		if (l == null || l.isExpired() == true) {
			return;
		}
		chain.append(l, op);
	}
}

class C {
	Chain chain;

	void viaField(Lease l, string op) {
		if (l != null && l.expired == false) {
			chain.append(l, op);
		}
	}
}

class D {
	Chain chain;

	void viaNotIsValid(Lease l, string op) {
		if (l == null || !l.isValid()) {
			throw "LeaseExpired";
		}
		chain.append(l, op);
	}
}
`

// TestGetterNormalizationUnifiesVocabulary: all four guard spellings must
// produce the identical path condition over the backing field, and all must
// verify against a rule written over the field.
func TestGetterNormalizationUnifiesVocabulary(t *testing.T) {
	prog := compile(t, getterSrc)
	sem := &contract.Semantic{
		ID:   "lease-field-rule",
		Kind: contract.StateKind,
		Target: contract.TargetPattern{
			Callee: "Chain.append",
			Bind:   map[string]int{"l": 0},
		},
		Pre: smt.MustParsePredicate(`l != null && l.expired == false`),
	}
	sites := contract.Match(sem, prog)
	if len(sites) != 4 {
		t.Fatalf("sites = %d, want 4", len(sites))
	}
	want := "l != null && !(l.expired)"
	for _, site := range sites {
		paths, _ := StaticPaths(prog, site, Options{})
		if len(paths) != 1 {
			t.Fatalf("site %s: %d paths", site, len(paths))
		}
		if got := paths[0].Cond.String(); got != want {
			t.Errorf("site %s: cond = %q, want %q", site, got, want)
		}
		if v := CheckStaticPath(paths[0]); v != VerdictVerified {
			t.Errorf("site %s: verdict = %v, want VERIFIED", site, v)
		}
	}
}

// TestGetterNormalizationIntGetter: a getter returning an int field inlines
// as a term usable in comparisons.
func TestGetterNormalizationIntGetter(t *testing.T) {
	src := getterSrc + `
class E {
	Chain chain;

	void viaRemaining(Lease l, string op) {
		if (l != null && l.remaining() > 0) {
			chain.append(l, op);
		}
	}
}
`
	prog := compile(t, src)
	sem := &contract.Semantic{
		ID:   "lease-ttl-rule",
		Kind: contract.StateKind,
		Target: contract.TargetPattern{
			Callee: "Chain.append",
			Bind:   map[string]int{"l": 0},
		},
		Pre: smt.MustParsePredicate(`l != null && l.ttl > 0`),
	}
	sites := contract.Match(sem, prog)
	var eSite *contract.Site
	for _, s := range sites {
		if s.Method.FullName() == "E.viaRemaining" {
			eSite = s
		}
	}
	if eSite == nil {
		t.Fatal("E.viaRemaining site not matched")
	}
	paths, _ := StaticPaths(prog, eSite, Options{})
	if len(paths) != 1 {
		t.Fatalf("paths = %d", len(paths))
	}
	if got := paths[0].Cond.String(); got != "l != null && l.ttl > 0" {
		t.Errorf("cond = %q", got)
	}
	if v := CheckStaticPath(paths[0]); v != VerdictVerified {
		t.Errorf("verdict = %v", v)
	}
}

// TestGetterNormalizationDepthBound: mutually recursive getters must not
// hang; the inliner gives up at the depth bound and falls back to the
// canonical path form.
func TestGetterNormalizationDepthBound(t *testing.T) {
	src := `
class Node {
	Node next;
	bool flag;

	bool deep() {
		return next.deep2();
	}

	bool deep2() {
		return next.deep();
	}
}

class User {
	void use(Node n) {
		if (n != null && n.deep()) {
			touch(n);
		}
	}

	void touch(Node n) {
		log("t");
	}
}
`
	prog := compile(t, src)
	sem := &contract.Semantic{
		ID:   "node-rule",
		Kind: contract.StateKind,
		Target: contract.TargetPattern{
			Callee: "User.touch",
			Bind:   map[string]int{"n": 0},
		},
		Pre: smt.MustParsePredicate(`n != null`),
	}
	sites := contract.Match(sem, prog)
	paths, _ := StaticPaths(prog, sites[0], Options{})
	if len(paths) != 1 {
		t.Fatalf("paths = %d", len(paths))
	}
	// The recursive getter falls back to an opaque chained path; the rule
	// over n != null still verifies.
	if v := CheckStaticPath(paths[0]); v != VerdictVerified {
		t.Errorf("verdict = %v (cond=%s)", v, paths[0].Cond)
	}
}

// TestGetterNormalizationImpureNotInlined: methods with parameters, extra
// statements, or static receivers keep the canonical path form.
func TestGetterNormalizationImpureNotInlined(t *testing.T) {
	src := `
class Res {
	bool open;
	int hits;

	bool check(int level) {
		return open;
	}

	bool checkAndCount() {
		hits = hits + 1;
		return open;
	}
}

class User {
	void use(Res r) {
		if (r.checkAndCount()) {
			touch(r);
		}
	}

	void touch(Res r) {
		log("t");
	}
}
`
	prog := compile(t, src)
	m := prog.Method("User", "use")
	env := newSFrame(prog)
	var got string
	minij.WalkStmts(m.Body, func(st minij.Stmt) {
		if ifs, ok := st.(*minij.If); ok {
			if f, ok := Translate(ifs.Cond, env); ok {
				got = f.String()
			}
		}
	})
	// Two statements in the body: not a pure getter, keeps the call path.
	if got != "r.checkAndCount" {
		t.Errorf("impure method translated to %q, want canonical path", got)
	}
}

// TestPostconditionChecked: a semantic with a postcondition Q has it
// evaluated against the state immediately after the target statement.
func TestPostconditionChecked(t *testing.T) {
	src := `
class Ledger {
	bool sealed;
	list entries;

	void init() {
		entries = newList();
		sealed = false;
	}

	void commit(Txn t, bool mark) {
		entries.add(t.id);
		if (mark) {
			t.applied = true;
		}
	}
}

class Txn {
	string id;
	bool applied;
}

class Good {
	static void run() {
		Ledger l = new Ledger();
		Txn t = new Txn();
		t.id = "t1";
		l.commit(t, true);
	}
}

class Bad {
	static void run() {
		Ledger l = new Ledger();
		Txn t = new Txn();
		t.id = "t2";
		l.commit(t, false);
		log(t.id);
	}
}
`
	// Target the statement *calling* commit, with Q over the txn state
	// after the call returns.
	prog := compile(t, src)
	sem := &contract.Semantic{
		ID:   "txn-applied",
		Kind: contract.StateKind,
		Target: contract.TargetPattern{
			Callee: "Ledger.commit",
			Bind:   map[string]int{"t": 0},
		},
		Pre:  smt.MustParsePredicate(`t != null`),
		Post: smt.MustParsePredicate(`t.applied == true`),
	}
	if err := sem.Validate(); err != nil {
		t.Fatal(err)
	}
	sites := contract.Match(sem, prog)
	runner := NewRunner(prog, sites, interp.Options{})
	if err := runner.RunStatic("good", "Good", "run"); err != nil {
		t.Fatal(err)
	}
	if err := runner.RunStatic("bad", "Bad", "run"); err != nil {
		t.Fatal(err)
	}
	byTest := map[string]Tri{}
	for _, h := range runner.Hits {
		byTest[h.TestName] = h.PostHolds
	}
	if byTest["good"] != TriTrue {
		t.Errorf("good post = %v, want true", byTest["good"])
	}
	// Bad passes mark=false, so commit returns without applying the txn;
	// the postcondition observation point sees applied == false.
	if byTest["bad"] != TriFalse {
		t.Errorf("bad post = %v, want false", byTest["bad"])
	}
}
