// Package minij implements MiniJ, a small Java-like language used to model
// the cloud systems that LISA analyzes. The package provides a lexer, a
// recursive-descent parser, a typed AST with source positions, a
// pretty-printer that produces canonical statement text (used to match
// contract target statements), and a static resolver.
//
// MiniJ keeps exactly the constructs that the paper's failure cases depend
// on: classes with fields and (possibly static) methods, locals, if/while/for
// control flow, synchronized blocks, string-valued exceptions with try/catch,
// null, and builtin calls (some of which are flagged as blocking I/O).
package minij

import "fmt"

// TokenKind enumerates the lexical token kinds of MiniJ.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokInt
	TokString
	TokPunct   // one of ( ) { } [ ] ; , .
	TokOp      // operator such as + - * / % ! = == != < <= > >= && ||
	TokKeyword // reserved word
)

var kindNames = map[TokenKind]string{
	TokEOF:     "EOF",
	TokIdent:   "identifier",
	TokInt:     "int literal",
	TokString:  "string literal",
	TokPunct:   "punctuation",
	TokOp:      "operator",
	TokKeyword: "keyword",
}

// String returns a human-readable name for the token kind.
func (k TokenKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Pos is a source position within a MiniJ compilation unit.
type Pos struct {
	Line int // 1-based line
	Col  int // 1-based column
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Before reports whether p appears strictly before q in the source.
func (p Pos) Before(q Pos) bool {
	if p.Line != q.Line {
		return p.Line < q.Line
	}
	return p.Col < q.Col
}

// Token is a single lexical token.
type Token struct {
	Kind TokenKind
	Text string
	Int  int64 // value when Kind == TokInt
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("%q", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// keywords is the set of reserved words.
var keywords = map[string]bool{
	"class": true, "static": true, "void": true, "int": true, "bool": true,
	"string": true, "list": true, "map": true, "if": true, "else": true,
	"while": true, "for": true, "in": true, "return": true, "break": true,
	"continue": true, "throw": true, "try": true, "catch": true,
	"synchronized": true, "new": true, "null": true, "true": true,
	"false": true,
}

// IsKeyword reports whether s is a MiniJ reserved word.
func IsKeyword(s string) bool { return keywords[s] }
