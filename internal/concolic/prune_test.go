package concolic

import (
	"testing"

	"lisa/internal/contract"
	"lisa/internal/smt"
)

// prefixPruneSrc has two reaching calls: one buried under a contradictory
// guard prefix (x > 0 then x < 0) that no execution can satisfy, one
// feasible. The infeasible prefix mentions only x, while the semantic binds
// s — so relevance filtering strips the contradiction from the emitted
// path condition and, without prefix pruning, the infeasible path is
// emitted (and discharged) as if it were reachable.
const prefixPruneSrc = `
class Session {
	bool closing;
}

class Sink {
	void consume(Session s) {
	}
}

class M {
	Sink sink;

	void run(int x, Session s) {
		if (x > 0) {
			if (x < 0) {
				sink.consume(s);
			}
		}
		if (x > 10) {
			sink.consume(s);
		}
	}
}
`

func sinkSemantic() *contract.Semantic {
	return &contract.Semantic{
		ID:   "sink-consume",
		Kind: contract.StateKind,
		Target: contract.TargetPattern{
			Callee: "Sink.consume",
			Bind:   map[string]int{"session": 0},
		},
		Pre: smt.MustParsePredicate(`session != null`),
	}
}

// TestPrefixPruningKillsInfeasibleSubtrees: with pruning on (the default)
// the statically infeasible site has no paths at all; the NoPrefixPrune
// ablation restores the old behavior where its relevance-filtered (and
// thus vacuously true) path condition is emitted.
func TestPrefixPruningKillsInfeasibleSubtrees(t *testing.T) {
	prog := compile(t, prefixPruneSrc)
	sites := contract.Match(sinkSemantic(), prog)
	if len(sites) != 2 {
		t.Fatalf("sites = %d, want 2", len(sites))
	}
	prunedTotal, ablatedTotal, emptySites := 0, 0, 0
	for _, site := range sites {
		pruned, trunc := StaticPaths(prog, site, Options{})
		if trunc {
			t.Fatalf("site %s truncated", site)
		}
		ablated, trunc := StaticPaths(prog, site, Options{NoPrefixPrune: true})
		if trunc {
			t.Fatalf("site %s truncated (ablation)", site)
		}
		prunedTotal += len(pruned)
		ablatedTotal += len(ablated)
		if len(pruned) == 0 {
			emptySites++
			if len(ablated) == 0 {
				t.Errorf("site %s: ablation also yields no paths; expected the infeasible path back", site)
			}
		}
	}
	if emptySites != 1 {
		t.Errorf("sites with all paths pruned = %d, want exactly 1 (the contradictory prefix)", emptySites)
	}
	if prunedTotal != 1 || ablatedTotal != 2 {
		t.Errorf("paths: pruned=%d ablated=%d, want 1 and 2", prunedTotal, ablatedTotal)
	}
}

// TestPrefixPruningKeepsFeasiblePathsIdentical: for sites with no
// infeasible prefix, pruning must not change the enumerated paths.
func TestPrefixPruningKeepsFeasiblePathsIdentical(t *testing.T) {
	prog := compile(t, zkRegressedSrc)
	for _, site := range contract.Match(ephemeralSemantic(), prog) {
		pruned, _ := StaticPaths(prog, site, Options{})
		ablated, _ := StaticPaths(prog, site, Options{NoPrefixPrune: true})
		if len(pruned) != len(ablated) {
			t.Fatalf("site %s: pruned=%d ablated=%d paths", site, len(pruned), len(ablated))
		}
		for i := range pruned {
			if pruned[i].Cond.String() != ablated[i].Cond.String() {
				t.Errorf("site %s path %d: cond %q vs %q", site, i, pruned[i].Cond, ablated[i].Cond)
			}
		}
	}
}
