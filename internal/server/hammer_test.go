package server

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"lisa/internal/ci"
	"lisa/internal/ticket"
)

// hammerSpec is one request shape plus its precomputed sequential-twin
// expectation. Every concurrent response must match it byte-for-byte.
type hammerSpec struct {
	name string
	gate *GateRequest
	asrt *AssertRequest

	wantPass       bool
	wantReport     string
	wantFindings   []Finding
	wantViolations int
}

// TestHammerByteIdentity is the concurrency contract test: N goroutines
// fire mixed /gate and /assert requests — warm and cold, passing and
// regressing, across several cases — and every single response must be
// byte-identical to the sequential local twin computed up front. Run it
// under -race (verify.sh does) to also certify the daemon race-clean.
func TestHammerByteIdentity(t *testing.T) {
	_, cl, done := newTestServer(t, Config{})
	defer done()

	var specs []hammerSpec
	for _, id := range []string{"zk-ephemeral", "zk-session-expiry"} {
		cs := corpusCase(t, id)
		regressed := cs.Tickets[len(cs.Tickets)-1].BuggySource

		for _, g := range []struct {
			name   string
			change string
		}{
			{id + "/gate-head", cs.Head()},
			{id + "/gate-regression", regressed},
		} {
			seq, err := ci.GateWith(localTwin(t, cs), ci.Change{
				Summary:   "hammer",
				OldSource: cs.Head(),
				NewSource: g.change,
			}, cs.Tests, ci.GateOptions{})
			if err != nil {
				t.Fatalf("%s: local twin: %v", g.name, err)
			}
			var findings []Finding
			for _, f := range seq.Findings {
				findings = append(findings, Finding{Severity: f.Severity, Text: f.Text})
			}
			specs = append(specs, hammerSpec{
				name:         g.name,
				gate:         &GateRequest{Case: cs.ID, Change: g.change, Summary: "hammer"},
				wantPass:     seq.Pass,
				wantReport:   seq.Report.Render(),
				wantFindings: findings,
			})
		}

		for _, a := range []struct {
			name    string
			version string
			tests   bool
		}{
			{id + "/assert-head", "head", false},
			{id + "/assert-head-tests", "head", true},
			{id + "/assert-buggy", cs.Tickets[0].ID + ":buggy", false},
		} {
			target, err := resolveTarget(cs, a.version, "")
			if err != nil {
				t.Fatalf("%s: %v", a.name, err)
			}
			var tests []ticket.TestCase
			if a.tests {
				tests = cs.Tests
			}
			rep, err := localTwin(t, cs).Assert(target, tests)
			if err != nil {
				t.Fatalf("%s: local twin: %v", a.name, err)
			}
			specs = append(specs, hammerSpec{
				name:           a.name,
				asrt:           &AssertRequest{Case: cs.ID, Version: a.version, Tests: a.tests},
				wantReport:     rep.Render(),
				wantViolations: rep.Counts.Violations,
			})
		}
	}

	const (
		goroutines = 8
		rounds     = 4
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds*len(specs))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Stagger starting offsets so different goroutines collide on
				// the same case runtime while others work elsewhere.
				for i := 0; i < len(specs); i++ {
					spec := specs[(g+i)%len(specs)]
					if err := fireOne(cl, spec); err != nil {
						errs <- fmt.Errorf("goroutine %d round %d: %w", g, r, err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	failed := 0
	for err := range errs {
		failed++
		if failed <= 5 {
			t.Error(err)
		}
	}
	if failed > 5 {
		t.Errorf("... and %d more divergent responses", failed-5)
	}
}

// fireOne sends a spec's request and checks the response against the
// sequential expectation.
func fireOne(cl *Client, spec hammerSpec) error {
	if spec.gate != nil {
		resp, err := cl.Gate(*spec.gate)
		if err != nil {
			return fmt.Errorf("%s: %w", spec.name, err)
		}
		if resp.Pass != spec.wantPass {
			return fmt.Errorf("%s: pass=%v, sequential twin %v", spec.name, resp.Pass, spec.wantPass)
		}
		if resp.Report != spec.wantReport {
			return fmt.Errorf("%s: report diverged from sequential twin", spec.name)
		}
		if !reflect.DeepEqual(resp.Findings, spec.wantFindings) {
			return fmt.Errorf("%s: findings diverged: %v", spec.name, resp.Findings)
		}
		return nil
	}
	resp, err := cl.Assert(*spec.asrt)
	if err != nil {
		return fmt.Errorf("%s: %w", spec.name, err)
	}
	if resp.Report != spec.wantReport {
		return fmt.Errorf("%s: report diverged from sequential twin", spec.name)
	}
	if resp.Counts.Violations != spec.wantViolations {
		return fmt.Errorf("%s: violations=%d, sequential twin %d", spec.name, resp.Counts.Violations, spec.wantViolations)
	}
	return nil
}
