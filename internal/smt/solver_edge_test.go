package smt

import (
	"testing"
	"testing/quick"
)

// TestWitnessSatisfiesFormula: any model returned by Solve must make the
// formula true under three-valued evaluation.
func TestWitnessSatisfiesFormula(t *testing.T) {
	f := func(seed int64) bool {
		g := genFormula(newTestRng(seed), 4)
		sat, model, err := Solve(g)
		if err != nil {
			return true // budget exhaustion is allowed, not a soundness bug
		}
		if !sat {
			return true
		}
		return eval3(g, model) == triTrue
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSolverDuality: f is valid iff ¬f is unsatisfiable.
func TestSolverDuality(t *testing.T) {
	f := func(seed int64) bool {
		g := genFormula(newTestRng(seed), 3)
		return Valid(g) == !SAT(NewNot(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestImpliesTransitive: random implication chains must be transitive.
func TestImpliesTransitive(t *testing.T) {
	f := func(seed int64) bool {
		r := newTestRng(seed)
		a := genFormula(r, 2)
		b := genFormula(r, 2)
		c := genFormula(r, 2)
		if Implies(a, b) && Implies(b, c) {
			return Implies(a, c)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDBMEdgeCases(t *testing.T) {
	cases := []struct {
		src string
		sat bool
	}{
		// Large constants near the interval arithmetic edges.
		{`x > 1000000000 && x < 1000000002`, true},
		{`x > 1000000000 && x < 1000000001`, false},
		{`x >= -1000000000 && x <= -1000000000 && x != -1000000000`, false},
		// Chains of variable orderings.
		{`a < b && b < c && c < d && d < a`, false},
		{`a < b && b < c && c < d && a < d`, true},
		{`a <= b && b <= c && c <= a && a != c`, false},
		// Equality congruence through a chain.
		{`a == b && b == c && c == d && a != d`, false},
		{`a == b && b == c && a != d`, true},
		// Mixed constants and variables.
		{`a == 5 && b == a && b != 5`, false},
		{`a == 5 && a < b && b < 7`, true},  // b = 6
		{`a == 5 && a < b && b < 6`, false}, // no integer between 5 and 6
		// Same-variable tautologies and contradictions.
		{`x == x`, true},
		{`x != x`, false},
		{`x < x`, false},
		{`x <= x`, true},
	}
	for _, c := range cases {
		f := mustParse(t, c.src)
		if got := SAT(f); got != c.sat {
			t.Errorf("SAT(%q) = %v, want %v", c.src, got, c.sat)
		}
	}
}

func TestMixedSortsIndependent(t *testing.T) {
	// The same path used as a bool predicate and in int comparisons lives
	// in separate theories by design (corpus programs never mix sorts on
	// one path).
	f := mustParse(t, `flag && x > 3 && s == null && m == "a"`)
	sat, model, err := Solve(f)
	if err != nil || !sat {
		t.Fatalf("sat=%v err=%v", sat, err)
	}
	if len(model) != 4 {
		t.Errorf("model = %v", model)
	}
}

func TestComplementOfComplement(t *testing.T) {
	f := func(seed int64) bool {
		g := genFormula(newTestRng(seed), 3)
		return Equiv(g, Complement(Complement(g)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestAtomKeyPolarity(t *testing.T) {
	// x != 3 and x == 3 share a key with opposite polarity.
	k1, neg1 := CmpCAtom("x", OpEq, 3).Key()
	k2, neg2 := CmpCAtom("x", OpNe, 3).Key()
	if k1 != k2 || neg1 == neg2 {
		t.Errorf("keys: (%s,%v) vs (%s,%v)", k1, neg1, k2, neg2)
	}
	// x < y and y > x share a key with the same polarity.
	k3, neg3 := CmpVAtom("x", OpLt, "y").Key()
	k4, neg4 := CmpVAtom("y", OpGt, "x").Key()
	if k3 != k4 || neg3 != neg4 {
		t.Errorf("flip keys: (%s,%v) vs (%s,%v)", k3, neg3, k4, neg4)
	}
	// x >= y is the negation of x < y.
	k5, neg5 := CmpVAtom("x", OpGe, "y").Key()
	if k5 != k3 || neg5 == neg3 {
		t.Errorf("negation keys: (%s,%v) vs (%s,%v)", k5, neg5, k3, neg3)
	}
}
