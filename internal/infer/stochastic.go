package infer

import (
	"fmt"
	"math/rand"
	"strings"

	"lisa/internal/contract"
	"lisa/internal/smt"
	"lisa/internal/ticket"
)

// StochasticInferencer simulates the two LLM failure modes called out in
// §5: non-determinism (different runs yield different rule sets) and
// hallucination (plausible-sounding but incorrect rules). It wraps a base
// inferencer and perturbs its output under a seeded random source, so the
// reliability experiment can sweep noise rates reproducibly.
type StochasticInferencer struct {
	Base Inferencer
	Seed int64
	// DropRate is the probability of omitting a correctly inferred
	// semantic (non-determinism: a run that fails to surface a rule).
	DropRate float64
	// MutateRate is the probability of corrupting a semantic's condition
	// (hallucinated detail on a real rule: a flipped polarity).
	MutateRate float64
	// HallucinateRate is the probability of adding a fabricated extra
	// conjunct over a nonexistent state predicate to a real rule.
	HallucinateRate float64
}

// Infer implements Inferencer.
func (si *StochasticInferencer) Infer(tk *ticket.Ticket) (*Result, error) {
	res, err := si.Base.Infer(tk)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(si.Seed ^ int64(hashString(tk.ID))))
	out := &Result{Ticket: res.Ticket, HighLevel: res.HighLevel, Reasoning: res.Reasoning}
	for _, sem := range res.Semantics {
		switch {
		case rng.Float64() < si.DropRate:
			out.Reasoning = append(out.Reasoning, fmt.Sprintf("(simulated nondeterminism) dropped %s", sem.ID))
		case sem.Kind == contract.StateKind && rng.Float64() < si.MutateRate:
			out.Semantics = append(out.Semantics, mutateSemantic(sem, rng))
			out.Reasoning = append(out.Reasoning, fmt.Sprintf("(simulated hallucination) mutated %s", sem.ID))
		case sem.Kind == contract.StateKind && rng.Float64() < si.HallucinateRate:
			out.Semantics = append(out.Semantics, hallucinateSemantic(sem, rng))
			out.Reasoning = append(out.Reasoning, fmt.Sprintf("(simulated hallucination) fabricated detail on %s", sem.ID))
		default:
			out.Semantics = append(out.Semantics, sem)
		}
	}
	return out, nil
}

// mutateSemantic flips the polarity of one atom of the precondition — a
// plausible-sounding rule that contradicts actual behavior.
func mutateSemantic(sem *contract.Semantic, rng *rand.Rand) *contract.Semantic {
	atoms := smt.Atoms(sem.Pre)
	if len(atoms) == 0 {
		return sem
	}
	victim := atoms[rng.Intn(len(atoms))]
	victimKey, _ := victim.Key()
	flipped := flipAtom(sem.Pre, victimKey)
	cp := *sem
	cp.ID = sem.ID + "-mutated"
	cp.Pre = flipped
	cp.Description = sem.Description + " (mutated)"
	return &cp
}

// flipAtom negates every occurrence of the atom with the given key.
func flipAtom(f smt.Formula, key string) smt.Formula {
	switch n := f.(type) {
	case *smt.AtomF:
		if k, _ := n.Atom.Key(); k == key {
			return smt.NNF(smt.NewNot(n))
		}
		return n
	case *smt.Not:
		if a, ok := n.X.(*smt.AtomF); ok {
			if k, _ := a.Atom.Key(); k == key {
				return a
			}
		}
		return smt.NewNot(flipAtom(n.X, key))
	case *smt.And:
		xs := make([]smt.Formula, len(n.Xs))
		for i, x := range n.Xs {
			xs[i] = flipAtom(x, key)
		}
		return smt.NewAnd(xs...)
	case *smt.Or:
		xs := make([]smt.Formula, len(n.Xs))
		for i, x := range n.Xs {
			xs[i] = flipAtom(x, key)
		}
		return smt.NewOr(xs...)
	}
	return f
}

// hallucinateSemantic strengthens the rule with a conjunct over a state
// predicate that does not exist in the system — checks for it can never be
// found on any path, so every path looks like a violation.
func hallucinateSemantic(sem *contract.Semantic, rng *rand.Rand) *contract.Semantic {
	var slot string
	for s := range sem.Target.Bind {
		slot = s
		break
	}
	if slot == "" {
		return sem
	}
	phantoms := []string{"phantomFlag", "shadowState", "ghostGuard", "specterBit"}
	phantom := phantoms[rng.Intn(len(phantoms))]
	cp := *sem
	cp.ID = sem.ID + "-hallucinated"
	cp.Pre = smt.NewAnd(sem.Pre, smt.NewAtom(smt.BoolAtom(slot+"."+phantom)))
	cp.Description = sem.Description + fmt.Sprintf(" (plus fabricated %s.%s)", slot, phantom)
	return &cp
}

// hashString is a small FNV-1a for seed mixing.
func hashString(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// IsPerturbed reports whether a semantic ID carries a simulated-noise
// marker (used by the reliability experiment's ground truth).
func IsPerturbed(id string) bool {
	return strings.HasSuffix(id, "-mutated") || strings.HasSuffix(id, "-hallucinated")
}
