package minij

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"lisa/internal/corpus"
)

func sha256Sum(b []byte) []byte {
	s := sha256.Sum256(b)
	return s[:]
}

// roundTrip asserts the codec invariants for one source: the decoded
// program canon-renders byte-identically to the parsed one, carries the
// same statement IDs and positions, the same expression types and call
// kinds, and re-encodes to the identical byte string (determinism).
func roundTrip(t *testing.T, label, src string) {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("%s: parse: %v", label, err)
	}
	if err := Check(prog); err != nil {
		t.Fatalf("%s: check: %v", label, err)
	}
	enc, err := EncodeProgram(prog)
	if err != nil {
		t.Fatalf("%s: encode: %v", label, err)
	}
	enc2, err := EncodeProgram(prog)
	if err != nil || string(enc) != string(enc2) {
		t.Fatalf("%s: encode is not deterministic (err %v)", label, err)
	}
	dec, err := DecodeProgram(enc)
	if err != nil {
		t.Fatalf("%s: decode: %v", label, err)
	}
	if got, want := FormatProgram(dec), FormatProgram(prog); got != want {
		t.Fatalf("%s: decoded canon differs from parsed canon:\n--- decoded\n%s\n--- parsed\n%s", label, got, want)
	}
	reenc, err := EncodeProgram(dec)
	if err != nil || string(reenc) != string(enc) {
		t.Fatalf("%s: re-encoding the decoded program changed the bytes (err %v)", label, err)
	}
	if dec.NumStmts() != prog.NumStmts() {
		t.Fatalf("%s: stmt count %d != %d", label, dec.NumStmts(), prog.NumStmts())
	}
	for id := 0; id < prog.NumStmts(); id++ {
		ps, ds := prog.StmtByID(id), dec.StmtByID(id)
		if ps.ID() != ds.ID() || ps.Pos() != ds.Pos() || fmt.Sprintf("%T", ps) != fmt.Sprintf("%T", ds) {
			t.Fatalf("%s: stmt %d mismatch: %T@%s id=%d vs %T@%s id=%d",
				label, id, ps, ps.Pos(), ps.ID(), ds, ds.Pos(), ds.ID())
		}
		if prog.MethodOf(id).FullName() != dec.MethodOf(id).FullName() {
			t.Fatalf("%s: stmt %d enclosing method %s != %s",
				label, id, prog.MethodOf(id).FullName(), dec.MethodOf(id).FullName())
		}
	}
	pe, de := collectExprs(prog), collectExprs(dec)
	if len(pe) != len(de) {
		t.Fatalf("%s: expr count %d != %d", label, len(pe), len(de))
	}
	for i := range pe {
		if prog.TypeOf(pe[i]) != dec.TypeOf(de[i]) {
			t.Fatalf("%s: expr %d (%T@%s) type %s != %s",
				label, i, pe[i], pe[i].Pos(), prog.TypeOf(pe[i]), dec.TypeOf(de[i]))
		}
		pc, pok := pe[i].(*Call)
		dc, dok := de[i].(*Call)
		if pok != dok || (pok && pc.Kind != dc.Kind) {
			t.Fatalf("%s: expr %d call kind mismatch", label, i)
		}
	}
}

func collectExprs(p *Program) []Expr {
	var out []Expr
	for _, m := range p.Methods() {
		WalkExprs(m.Body, func(e Expr) { out = append(out, e) })
	}
	return out
}

// TestCodecRoundTripCorpus runs the differential round trip over every
// version of every corpus case, alone and with each test suite appended —
// the exact source set the snapshot store persists in production.
func TestCodecRoundTripCorpus(t *testing.T) {
	for _, cs := range corpus.Load().Cases {
		roundTrip(t, cs.ID+"/head", cs.Head())
		for _, tk := range cs.Tickets {
			roundTrip(t, cs.ID+"/"+tk.ID+"/buggy", tk.BuggySource)
			roundTrip(t, cs.ID+"/"+tk.ID+"/fixed", tk.FixedSource)
		}
		for _, tc := range cs.Tests {
			roundTrip(t, cs.ID+"/head+"+tc.Name, cs.Head()+"\n"+tc.Source)
		}
	}
}

// genSource emits a seeded random program exercising every statement and
// expression form the codec knows, so tag coverage does not depend on the
// corpus happening to use a construct.
func genSource(r *rand.Rand) string {
	var sb strings.Builder
	classes := 1 + r.Intn(3)
	for c := 0; c < classes; c++ {
		fmt.Fprintf(&sb, "class Gen%d {\n\tint counter;\n\tstring label;\n\tlist items;\n", c)
		methods := 1 + r.Intn(4)
		for m := 0; m < methods; m++ {
			static := ""
			// work0 stays an instance method; GenDriver.relay calls it
			// through a field receiver.
			if m > 0 && r.Intn(2) == 0 {
				static = "static "
			}
			fmt.Fprintf(&sb, "\t%sint work%d(int n, string tag) {\n", static, m)
			stmts := 1 + r.Intn(5)
			for s := 0; s < stmts; s++ {
				switch r.Intn(8) {
				case 0:
					fmt.Fprintf(&sb, "\t\tint v%d = n + %d;\n", s, r.Intn(100))
				case 1:
					fmt.Fprintf(&sb, "\t\tif (n > %d) { n = n - 1; } else { n = n + 1; }\n", r.Intn(10))
				case 2:
					fmt.Fprintf(&sb, "\t\twhile (n > %d) { n = n - 2; if (n == 3) { break; } }\n", r.Intn(5))
				case 3:
					fmt.Fprintf(&sb, "\t\tfor (int i%d = 0; i%d < n; i%d = i%d + 1) { if (i%d == 2) { continue; } }\n", s, s, s, s, s)
				case 4:
					fmt.Fprintf(&sb, "\t\tlist xs%d = newList();\n\t\tfor (x in xs%d) { n = n + 1; }\n", s, s)
				case 5:
					fmt.Fprintf(&sb, "\t\ttry { throw \"boom-%d\"; } catch (e) { n = 0 - n; }\n", r.Intn(9))
				case 6:
					fmt.Fprintf(&sb, "\t\tlist lk%d = newList();\n\t\tsynchronized (lk%d) { n = n * 2; }\n", s, s)
				case 7:
					fmt.Fprintf(&sb, "\t\tif (!(tag == null) && n != %d) { log(tag); }\n", r.Intn(7))
				}
			}
			sb.WriteString("\t\treturn n;\n\t}\n")
		}
		sb.WriteString("}\n")
	}
	// A driver tying the classes together: new, instance/static/self
	// calls, field access, string concat, bool and null literals.
	sb.WriteString(`
class GenDriver {
	Gen0 g;

	static int entry(int n) {
		GenDriver d = new GenDriver();
		d.g = new Gen0();
		d.g.counter = n;
		d.g.label = "x" + "y";
		bool ok = true;
		if (ok) {
			return d.relay(d.g.counter);
		}
		return 0;
	}

	int relay(int n) {
		return g.work0(n, "tag");
	}
}
`)
	return sb.String()
}

// TestCodecRoundTripMutants fuzzes the round trip with seeded random
// programs; any failure reproduces from the logged seed.
func TestCodecRoundTripMutants(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		src := genSource(r)
		roundTrip(t, fmt.Sprintf("mutant-seed-%d", seed), src)
	}
}

// TestCodecRejectsCorruption proves the safety half of the codec contract:
// a truncated or bit-flipped frame is always rejected with a readable
// error — it never decodes into a wrong AST.
func TestCodecRejectsCorruption(t *testing.T) {
	src := corpus.Load().Cases[0].Head()
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(prog); err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	want := FormatProgram(prog)

	// Every truncation length must be rejected.
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeProgram(enc[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded successfully", n, len(enc))
		}
	}
	// Seeded random bit flips: the sha256 trailer catches every one. If a
	// flip were ever accepted, the decoded program must still render the
	// true canon (never a wrong AST) — but with a full-frame checksum no
	// flip is accepted at all.
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		mut := make([]byte, len(enc))
		copy(mut, enc)
		mut[r.Intn(len(mut))] ^= 1 << r.Intn(8)
		dec, err := DecodeProgram(mut)
		if err == nil {
			if got := FormatProgram(dec); got != want {
				t.Fatalf("bit flip %d decoded into a WRONG AST", i)
			}
			t.Fatalf("bit flip %d was not rejected", i)
		}
		if !errors.Is(err, ErrCodecCorrupt) && !errors.Is(err, ErrCodecTruncated) && !errors.Is(err, ErrCodecVersion) {
			t.Fatalf("bit flip %d: error %v is not a codec sentinel", i, err)
		}
		if err.Error() == "" {
			t.Fatalf("bit flip %d: unreadable error", i)
		}
	}
}

// TestCodecRejectsVersionSkew rewrites the version (and magic) with a
// recomputed checksum, so rejection is attributable to the version check
// itself rather than the checksum.
func TestCodecRejectsVersionSkew(t *testing.T) {
	prog, err := Parse("class A {\n\tint f;\n}\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(prog); err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	reseal := func(mut []byte) []byte {
		sum := sha256Sum(mut[:len(mut)-32])
		copy(mut[len(mut)-32:], sum)
		return mut
	}
	skew := make([]byte, len(enc))
	copy(skew, enc)
	skew[5] = codecVersion + 1
	if _, err := DecodeProgram(reseal(skew)); !errors.Is(err, ErrCodecVersion) {
		t.Fatalf("version skew: got %v, want ErrCodecVersion", err)
	}
	bad := make([]byte, len(enc))
	copy(bad, enc)
	bad[0] = 'X'
	if _, err := DecodeProgram(reseal(bad)); !errors.Is(err, ErrCodecVersion) {
		t.Fatalf("bad magic: got %v, want ErrCodecVersion", err)
	}
}
