package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"lisa/internal/core"
	"lisa/internal/corpus"
	"lisa/internal/server"
	"lisa/internal/store"
)

// stringList collects a repeatable string flag (-watch DIR -watch DIR2).
type stringList []string

func (s *stringList) String() string { return fmt.Sprint([]string(*s)) }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// runServe starts the long-lived assertion daemon: the HTTP/JSON API over
// the study corpus with process-lifetime caches, the polling file watcher,
// and the request history ring. SIGINT/SIGTERM drain gracefully: new
// requests are refused, in-flight gates finish (bounded by
// -drain-timeout), and the history ring is flushed.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7333", "listen address")
	workers := fs.Int("workers", 0, "default scheduler pool width per request (0 = GOMAXPROCS)")
	historySize := fs.Int("history", server.DefaultHistorySize, "request history ring capacity")
	historyFile := fs.String("history-file", "", "flush the history ring to this file on shutdown (default: a summary line on stderr)")
	watchInterval := fs.Duration("watch-interval", server.DefaultWatchInterval, "file watcher polling period")
	drainTimeout := fs.Duration("drain-timeout", server.DefaultDrainTimeout, "how long shutdown waits for in-flight requests")
	failOpen := fs.Bool("fail-open", false, "downgrade INCONCLUSIVE gate outcomes to warnings by default")
	runTimeout := fs.Duration("run-timeout", 0, "default wall-clock deadline per assertion run (0 = none)")
	jobTimeout := fs.Duration("job-timeout", 0, "default deadline per assertion job (0 = none)")
	solverNodes := fs.Int("solver-nodes", 0, "default DPLL node ceiling per SMT query (0 = package default)")
	stepBudget := fs.Int("step-budget", 0, "default interpreter statement ceiling per test replay (0 = package default)")
	storeDir := fs.String("store", "", "back the daemon's caches with an on-disk store at this directory, so a restarted daemon starts warm (created if missing)")
	deepVerify := fs.Int("deep-verify", 0, "with -store: deep-verify every Nth snapshot restore by re-parsing the source and comparing canons (0 = default sampling, 1 = every restore)")
	maxConcurrent := fs.Int("max-concurrent", 0, "admission control: bound on concurrently executing gate/assert/watch requests (0 = unbounded, admission off)")
	maxQueue := fs.Int("max-queue", 0, "admission control: how many gate/assert requests may wait for a slot before 503 load shedding (0 = default)")
	var watchRoots stringList
	fs.Var(&watchRoots, "watch", "directory root to watch for MiniJ source changes (repeatable)")
	var quotaSpecs stringList
	fs.Var(&quotaSpecs, "quota", "per-client admission quota as TOKEN=N: at most N in-flight requests for clients sending X-Lisa-Token: TOKEN (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var quotas map[string]server.QuotaClass
	for _, spec := range quotaSpecs {
		tok, limit, ok := strings.Cut(spec, "=")
		n, err := strconv.Atoi(limit)
		if !ok || tok == "" || err != nil || n < 1 {
			return fmt.Errorf("bad -quota %q (want TOKEN=N with N >= 1)", spec)
		}
		if quotas == nil {
			quotas = map[string]server.QuotaClass{}
		}
		quotas[tok] = server.QuotaClass{MaxConcurrent: n}
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir)
		if err != nil {
			return fmt.Errorf("open store %s: %w", *storeDir, err)
		}
		defer func() {
			st.Flush()
			st.Close()
		}()
		fmt.Fprintf(os.Stderr, "lisa serve: cache store at %s (%d records)\n", st.Dir(), st.Stats().Records)
	}

	srv := server.New(server.Config{
		Corpus:        corpus.Load(),
		Workers:       *workers,
		HistorySize:   *historySize,
		WatchInterval: *watchInterval,
		FailOpen:      *failOpen,
		MaxConcurrent: *maxConcurrent,
		MaxQueue:      *maxQueue,
		Quotas:        quotas,
		Budget: core.Budget{
			RunTimeout:  *runTimeout,
			JobTimeout:  *jobTimeout,
			SolverNodes: *solverNodes,
			StepBudget:  *stepBudget,
		},
		Store:           st,
		DeepVerifyEvery: *deepVerify,
	})
	for _, dir := range watchRoots {
		if err := srv.RegisterRoot(dir); err != nil {
			return fmt.Errorf("watch %s: %w", dir, err)
		}
		fmt.Fprintf(os.Stderr, "lisa serve: watching %s (poll every %v)\n", dir, *watchInterval)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "lisa serve: listening on http://%s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "lisa serve: %v — draining (timeout %v)\n", got, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "lisa serve:", err)
	}
	httpSrv.Shutdown(context.Background())

	hist := srv.History()
	if *historyFile != "" {
		f, err := os.Create(*historyFile)
		if err != nil {
			return fmt.Errorf("flush history: %w", err)
		}
		defer f.Close()
		if err := hist.Flush(f); err != nil {
			return fmt.Errorf("flush history: %w", err)
		}
		fmt.Fprintf(os.Stderr, "lisa serve: flushed %d history entries (%d total served) to %s\n",
			hist.Len(), hist.Seq(), *historyFile)
	} else {
		fmt.Fprintf(os.Stderr, "lisa serve: shutdown clean; %d history entries retained of %d total\n",
			hist.Len(), hist.Seq())
	}
	return nil
}

// remoteClient builds the daemon client with the CLI's resilience posture:
// the retry/backoff/deadline policy from the -remote-* flags and the
// optional admission-quota token.
func remoteClient(base string, pol server.RetryPolicy, token string) *server.Client {
	cl := server.NewClient(base)
	cl.SetRetryPolicy(pol)
	if token != "" {
		cl.SetToken(token)
	}
	return cl
}

// remoteGate runs the gate via a running daemon instead of in-process: the
// change file is shipped over the wire and the server's warm caches do the
// work. The printed gate log and exit code match the local path.
func remoteGate(base string, req server.GateRequest, pol server.RetryPolicy, token string) error {
	cl := remoteClient(base, pol, token)
	resp, err := cl.Gate(req)
	if err != nil {
		return err
	}
	fmt.Print(resp.Summary)
	if !resp.Pass {
		os.Exit(1)
	}
	return nil
}

// remoteAssert asserts via a running daemon. The canonical report render
// (byte-identical to a local sequential run) is printed after the verdict
// counts.
func remoteAssert(base string, req server.AssertRequest, pol server.RetryPolicy, token string) error {
	cl := remoteClient(base, pol, token)
	resp, err := cl.Assert(req)
	if err != nil {
		return err
	}
	fmt.Printf("verdicts: %d verified, %d violations, %d unknown, %d uncovered (server %.1fms, %d solver queries, %d cache hits)\n\n",
		resp.Counts.Verified, resp.Counts.Violations, resp.Counts.Unknown, resp.Counts.Uncovered,
		resp.DurationMS, resp.Cache.SolverQueries, resp.Cache.SolverCacheHits)
	fmt.Print(resp.Report)
	if resp.Counts.Violations > 0 {
		os.Exit(1)
	}
	return nil
}
