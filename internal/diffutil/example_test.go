package diffutil_test

import (
	"fmt"

	"lisa/internal/diffutil"
)

func ExampleUnified() {
	before := "if (s == null) {\n\tthrow;\n}\ncreate(path, s);\n"
	after := "if (s == null || s.isClosing()) {\n\tthrow;\n}\ncreate(path, s);\n"
	fmt.Print(diffutil.Unified("prep.mj", diffutil.Diff(before, after), 0))
	// Output:
	// --- a/prep.mj
	// +++ b/prep.mj
	// @@ -1,1 +1,1 @@
	// -if (s == null) {
	// +if (s == null || s.isClosing()) {
}

func ExampleDiffStats() {
	edits := diffutil.Diff("a\nb\nc\n", "a\nX\nc\nd\n")
	s := diffutil.DiffStats(edits)
	fmt.Printf("+%d -%d =%d\n", s.Added, s.Removed, s.Kept)
	// Output: +2 -1 =2
}
