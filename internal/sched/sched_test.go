package sched

import (
	"strings"
	"testing"

	"lisa/internal/core"
	"lisa/internal/corpus"
	"lisa/internal/ticket"
)

const sysFixed = `
class Session {
	bool closing;
}

class DataTree {
	map nodes;

	void createEphemeral(string path, Session owner) {
		nodes.put(path, owner);
	}
}

class PrepProcessor {
	DataTree tree;

	void processCreate(string path, Session s) {
		if (s == null || s.closing) {
			throw "KeeperException";
		}
		tree.createEphemeral(path, s);
	}
}

class Quota {
	int used;

	void charge(int n) {
		used = used + n;
	}
}
`

func testSuite() []ticket.TestCase {
	return []ticket.TestCase{
		{
			Name:        "EphemeralTest.createOnLiveSession",
			Description: "create ephemeral node on a live session succeeds",
			Class:       "EphemeralTest",
			Method:      "createOnLiveSession",
			Source: `
class EphemeralTest {
	static void createOnLiveSession() {
		PrepProcessor p = new PrepProcessor();
		p.tree = new DataTree();
		p.tree.nodes = newMap();
		Session s = new Session();
		s.closing = false;
		p.processCreate("/live", s);
		assertTrue(p.tree.nodes.has("/live"), "node created");
	}
}
`,
		},
		{
			Name:        "QuotaTest.chargeAccumulates",
			Description: "quota accounting for large writes",
			Class:       "QuotaTest",
			Method:      "chargeAccumulates",
			Source: `
class QuotaTest {
	static void chargeAccumulates() {
		Quota q = new Quota();
		q.used = 0;
		q.charge(5);
		assertTrue(q.used == 5, "charged");
	}
}
`,
		},
	}
}

func engineWithRule(t *testing.T) *core.Engine {
	t.Helper()
	e := core.New()
	_, err := e.ProcessTicket(&ticket.Ticket{
		ID:          "ZK-1208",
		Title:       "Ephemeral node on closing session",
		BuggySource: strings.Replace(sysFixed, " || s.closing", "", 1),
		FixedSource: sysFixed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// engineForCase registers every ticket of a corpus case (the timeline
// scenario: rules accumulate as bugs are fixed).
func engineForCase(t *testing.T, cs *ticket.Case) *core.Engine {
	t.Helper()
	e := core.New()
	for _, tk := range cs.Tickets {
		if _, err := e.ProcessTicket(tk); err != nil {
			t.Fatalf("%s/%s: %v", cs.ID, tk.ID, err)
		}
	}
	return e
}

// TestSchedulerMatchesSequentialOnCorpus is the determinism check over the
// full corpus: for every case, the sequential engine run and scheduled runs
// at workers=1, workers=8, and a warm-cache repeat all render byte-identical
// reports.
func TestSchedulerMatchesSequentialOnCorpus(t *testing.T) {
	for _, cs := range corpus.Load().Cases {
		cs := cs
		t.Run(cs.ID, func(t *testing.T) {
			e := engineForCase(t, cs)
			if e.Registry.Len() == 0 {
				t.Skipf("no rules registered for %s", cs.ID)
			}
			seq, err := e.Assert(cs.Head(), cs.Tests)
			if err != nil {
				t.Fatal(err)
			}
			want := seq.Render()

			s := New()
			runs := []struct {
				name string
				opts Options
			}{
				{"workers=1", Options{Workers: 1}},
				{"workers=8", Options{Workers: 8}},
				{"warm-cache", Options{Workers: 8}},
			}
			for _, run := range runs {
				rep, stats, err := s.Assert(e, cs.Head(), cs.Tests, run.opts)
				if err != nil {
					t.Fatalf("%s: %v", run.name, err)
				}
				if got := rep.Render(); got != want {
					t.Errorf("%s: report differs from sequential run\n--- sequential ---\n%s\n--- %s ---\n%s",
						run.name, want, run.name, got)
				}
				if stats.Executed+stats.CacheHits != stats.Jobs {
					t.Errorf("%s: executed(%d)+hits(%d) != jobs(%d)",
						run.name, stats.Executed, stats.CacheHits, stats.Jobs)
				}
			}
		})
	}
}

// TestWarmCacheSkipsAllWork: a byte-identical re-run is served entirely from
// cache — zero executed jobs, every semantic skipped.
func TestWarmCacheSkipsAllWork(t *testing.T) {
	e := engineWithRule(t)
	s := New()
	cold, coldStats, err := s.Assert(e, sysFixed, testSuite(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.Executed != coldStats.Jobs || coldStats.CacheHits != 0 {
		t.Fatalf("cold run: executed=%d hits=%d jobs=%d", coldStats.Executed, coldStats.CacheHits, coldStats.Jobs)
	}
	warm, warmStats, err := s.Assert(e, sysFixed, testSuite(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.Executed != 0 {
		t.Errorf("warm run executed %d jobs, want 0", warmStats.Executed)
	}
	if warmStats.CacheHits != warmStats.Jobs {
		t.Errorf("warm run hits=%d jobs=%d", warmStats.CacheHits, warmStats.Jobs)
	}
	if warmStats.SkippedSemantics == 0 || warmStats.AssertedSemantics != 0 {
		t.Errorf("warm run skipped=%d asserted=%d", warmStats.SkippedSemantics, warmStats.AssertedSemantics)
	}
	if cold.Render() != warm.Render() {
		t.Errorf("warm report differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", cold.Render(), warm.Render())
	}
	st := s.Cache().Stats()
	if st.Entries == 0 || st.Hits == 0 {
		t.Errorf("cache stats = %+v", st)
	}
}

// TestWhitespaceChangeHitsCache: fingerprints are canonical-AST based, so a
// reformatted source is a full cache hit.
func TestWhitespaceChangeHitsCache(t *testing.T) {
	e := engineWithRule(t)
	s := New()
	if _, _, err := s.Assert(e, sysFixed, nil, Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	reformatted := strings.ReplaceAll(sysFixed, "\t", "    ")
	_, stats, err := s.Assert(e, reformatted, nil, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != 0 {
		t.Errorf("whitespace-only change executed %d jobs, want 0", stats.Executed)
	}
}

// TestIncrementalSingleMethodChange: after a warm run, changing one method
// that no contract site can reach re-executes strictly fewer jobs than the
// cold run, with verdicts identical to a fresh sequential assertion.
func TestIncrementalSingleMethodChange(t *testing.T) {
	e := engineWithRule(t)
	s := New()
	_, coldStats, err := s.Assert(e, sysFixed, testSuite(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	changed := strings.Replace(sysFixed, "used = used + n;", "used = used + n + 0;", 1)
	if changed == sysFixed {
		t.Fatal("mutation failed")
	}
	rep, stats, err := s.Assert(e, changed, testSuite(), Options{
		Workers: 4, Incremental: true, BaseSource: sysFixed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DirtyAll {
		t.Error("single-body change marked DirtyAll")
	}
	if len(stats.DirtyMethods) != 1 || stats.DirtyMethods[0] != "Quota.charge" {
		t.Errorf("dirty methods = %v, want [Quota.charge]", stats.DirtyMethods)
	}
	if stats.Executed >= coldStats.Executed {
		t.Errorf("incremental run executed %d jobs, cold executed %d — want strictly fewer",
			stats.Executed, coldStats.Executed)
	}
	if stats.ImpactedJobs >= stats.Jobs {
		t.Errorf("impacted=%d of %d jobs — dirty set did not narrow anything", stats.ImpactedJobs, stats.Jobs)
	}
	// The site jobs are unreachable from Quota.charge, so only dynamic
	// replay (which executes arbitrary code) re-runs.
	if stats.Executed != stats.DynamicJobs {
		t.Errorf("executed=%d, want only the %d dynamic jobs", stats.Executed, stats.DynamicJobs)
	}

	seq, err := e.Assert(changed, testSuite())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Render() != seq.Render() {
		t.Errorf("incremental report differs from sequential:\n--- sequential ---\n%s\n--- incremental ---\n%s",
			seq.Render(), rep.Render())
	}
}

// TestGuardChangeInvalidatesSite: editing a method inside a site's closure
// misses the cache and re-runs that site, and a weakened guard flips the
// verdict.
func TestGuardChangeInvalidatesSite(t *testing.T) {
	e := engineWithRule(t)
	s := New()
	if _, _, err := s.Assert(e, sysFixed, nil, Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	weakened := strings.Replace(sysFixed, "s == null || s.closing", "s == null", 1)
	rep, stats, err := s.Assert(e, weakened, nil, Options{
		Workers: 1, Incremental: true, BaseSource: sysFixed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.DirtyMethods) != 1 || stats.DirtyMethods[0] != "PrepProcessor.processCreate" {
		t.Errorf("dirty methods = %v", stats.DirtyMethods)
	}
	if stats.Executed == 0 {
		t.Error("guard change served entirely from cache")
	}
	if rep.Counts.Violations == 0 {
		t.Error("weakened guard produced no violation")
	}
}

// TestDirtySet exercises the change-localization ladder.
func TestDirtySet(t *testing.T) {
	reformatted := strings.ReplaceAll(sysFixed, "\t", "  ")
	if d := ComputeDirty(sysFixed, reformatted); d.Any() {
		t.Errorf("whitespace-only change dirty: all=%v methods=%v", d.All, d.SortedMethods())
	}

	body := strings.Replace(sysFixed, "used = used + n;", "used = used + n + 1;", 1)
	d := ComputeDirty(sysFixed, body)
	if d.All || len(d.Methods) != 1 || !d.Contains("Quota.charge") {
		t.Errorf("body change: all=%v methods=%v", d.All, d.SortedMethods())
	}
	if d.Contains("DataTree.createEphemeral") {
		t.Error("unrelated method marked dirty")
	}

	sig := strings.Replace(sysFixed, "void charge(int n)", "void charge(int n, int m)", 1)
	if d := ComputeDirty(sysFixed, sig); !d.All {
		t.Error("signature change not marked All")
	}

	if d := ComputeDirty(sysFixed, "class Broken {"); !d.All {
		t.Error("unparsable change not marked All")
	}

	newClass := sysFixed + "\nclass Extra {\n\tint x;\n}\n"
	if d := ComputeDirty(sysFixed, newClass); !d.All {
		t.Error("new class not marked All")
	}
}

// TestEngineOptionsInvalidateCache: ablation switches participate in the
// fingerprints, so flipping one on the same scheduler cache re-executes.
func TestEngineOptionsInvalidateCache(t *testing.T) {
	e := engineWithRule(t)
	s := New()
	if _, _, err := s.Assert(e, sysFixed, nil, Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	e.IntraOnly = true
	defer func() { e.IntraOnly = false }()
	_, stats, err := s.Assert(e, sysFixed, nil, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed == 0 {
		t.Error("IntraOnly flip served from cache — engine options missing from fingerprint")
	}
}

// TestSchedulerBadSource propagates compile errors like the sequential path.
func TestSchedulerBadSource(t *testing.T) {
	e := engineWithRule(t)
	if _, _, err := New().Assert(e, "class {", nil, Options{}); err == nil {
		t.Error("expected compile error")
	}
}
