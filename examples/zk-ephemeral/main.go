// The paper's running example end to end (Figures 2-3): the ZooKeeper-like
// ephemeral-node regression. LISA learns the rule from the first incident's
// fix, then catches the recurrence one year later on a different request
// path — including dynamic confirmation from the similarity-selected tests.
//
//	go run ./examples/zk-ephemeral
package main

import (
	"fmt"
	"log"
	"strings"

	"lisa/internal/core"
	"lisa/internal/corpus"
)

func main() {
	cs := corpus.Load().Get("zk-ephemeral")
	fmt.Printf("Case %s (%s): %s\n\n", cs.ID, cs.System, cs.Description)

	engine := core.New()

	// Incident 1: ZKS-1208. The fix becomes a contract.
	first := cs.Tickets[0]
	fmt.Printf("Incident 1 — %s: %s\n", first.ID, first.Title)
	rep, err := engine.ProcessTicket(first)
	if err != nil {
		log.Fatal(err)
	}
	for _, sem := range rep.Registered {
		fmt.Printf("  learned: %s\n", sem)
		fmt.Printf("  (%s)\n", sem.Description)
	}

	// One year later: the SessionTracker change lands. Assert the contract
	// over the new code with the system's test suite as concrete inputs.
	second := cs.Tickets[1]
	fmt.Printf("\nIncident 2 — %s lands as a change: %s\n\n", second.ID, second.Title)
	ar, err := engine.Assert(second.BuggySource, cs.Tests)
	if err != nil {
		log.Fatal(err)
	}
	for _, sr := range ar.Semantics {
		for _, site := range sr.Sites {
			for _, p := range site.Paths {
				fmt.Printf("  %-9s %s\n", p.Verdict, site.Site)
				fmt.Printf("            path condition: %s\n", p.Static.Cond)
				if len(p.CoveredBy) > 0 {
					fmt.Printf("            dynamically confirmed by: %s\n", strings.Join(p.CoveredBy, ", "))
				}
			}
		}
	}
	fmt.Printf("\n%d violation(s): the regression is caught before it ships.\n", ar.Counts.Violations)

	// The actual ZKS-1496 fix then passes cleanly.
	fixed, err := engine.Assert(second.FixedSource, cs.Tests)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("After the %s fix: %d violation(s), %d verified path(s).\n",
		second.ID, fixed.Counts.Violations, fixed.Counts.Verified)
}
