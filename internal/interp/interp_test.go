package interp

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"lisa/internal/minij"
)

func compile(t *testing.T, src string) *minij.Program {
	t.Helper()
	prog, err := minij.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := minij.Check(prog); err != nil {
		t.Fatalf("Check: %v", err)
	}
	return prog
}

func run(t *testing.T, src, class, method string, args ...Value) (Value, *Interp) {
	t.Helper()
	prog := compile(t, src)
	in := New(prog)
	v, err := in.CallStatic(class, method, args...)
	if err != nil {
		t.Fatalf("CallStatic(%s.%s): %v", class, method, err)
	}
	return v, in
}

func TestArithmeticAndLogic(t *testing.T) {
	src := `
class M {
	static int compute(int a, int b) {
		int x = a * 3 + b % 4 - 2;
		if (x > 10 && b != 0) {
			return x / b;
		}
		return -x;
	}
}
`
	v, _ := run(t, src, "M", "compute", Int(5), Int(6))
	// x = 15 + 2 - 2 = 15; 15 > 10 && 6 != 0 -> 15/6 = 2
	if v != Int(2) {
		t.Errorf("compute(5,6) = %v, want 2", v)
	}
	v2, _ := run(t, src, "M", "compute", Int(1), Int(0))
	// x = 3 + 0 - 2 = 1; condition false -> -1
	if v2 != Int(-1) {
		t.Errorf("compute(1,0) = %v, want -1", v2)
	}
}

func TestShortCircuit(t *testing.T) {
	src := `
class M {
	static bool safe(list xs) {
		return xs != null && xs.size() > 0;
	}
}
`
	v, _ := run(t, src, "M", "safe", Null{})
	if v != Bool(false) {
		t.Errorf("safe(null) = %v, want false (short-circuit must skip xs.size())", v)
	}
	v2, _ := run(t, src, "M", "safe", &List{Elems: []Value{Int(1)}})
	if v2 != Bool(true) {
		t.Errorf("safe([1]) = %v, want true", v2)
	}
}

func TestObjectsAndMethods(t *testing.T) {
	src := `
class Counter {
	int n;

	void inc() {
		n = n + 1;
	}

	int get() {
		return n;
	}
}

class M {
	static int play() {
		Counter c = new Counter();
		c.inc();
		c.inc();
		c.inc();
		return c.get();
	}
}
`
	v, _ := run(t, src, "M", "play")
	if v != Int(3) {
		t.Errorf("play() = %v, want 3", v)
	}
}

func TestInitConstructor(t *testing.T) {
	src := `
class Point {
	int x;
	int y;

	void init(int px, int py) {
		x = px;
		y = py;
	}

	int sum() {
		return x + y;
	}
}

class M {
	static int play() {
		Point p = new Point(3, 4);
		return p.sum();
	}
}
`
	v, _ := run(t, src, "M", "play")
	if v != Int(7) {
		t.Errorf("play() = %v, want 7", v)
	}
}

func TestListOperations(t *testing.T) {
	src := `
class M {
	static int play() {
		list xs = newList();
		for (int i = 0; i < 5; i = i + 1) {
			xs.add(i * i);
		}
		xs.remove(4);
		int total = 0;
		for (x in xs) {
			total = total + x;
		}
		if (xs.contains(9) && !xs.isEmpty()) {
			total = total + 100;
		}
		return total;
	}
}
`
	v, _ := run(t, src, "M", "play")
	// squares 0,1,4,9,16; remove 4 -> 0,1,9,16 sum 26; contains 9 -> +100
	if v != Int(126) {
		t.Errorf("play() = %v, want 126", v)
	}
}

func TestMapOperations(t *testing.T) {
	src := `
class M {
	static string play() {
		map m = newMap();
		m.put("a", 1);
		m.put("b", 2);
		m.put("a", 3);
		if (m.size() != 2) {
			return "bad size";
		}
		m.remove("b");
		if (m.has("b")) {
			return "remove failed";
		}
		list ks = m.keys();
		return str(ks.get(0)) + "=" + str(m.get("a"));
	}
}
`
	v, _ := run(t, src, "M", "play")
	if v != Str("a=3") {
		t.Errorf("play() = %v, want a=3", v)
	}
}

func TestExceptionsAndTryCatch(t *testing.T) {
	src := `
class Helper {
	string name() {
		return "helper";
	}
}

class M {
	static string play(int mode) {
		try {
			if (mode == 0) {
				throw "custom";
			}
			if (mode == 1) {
				int x = 1 / 0;
			}
			if (mode == 2) {
				Helper nothing = null;
				return nothing.name();
			}
			return "none";
		} catch (e) {
			return "caught " + e;
		}
	}
}
`
	cases := map[int]string{
		0: "caught custom",
		1: "caught ArithmeticException",
		2: "caught NullPointerException",
		3: "none",
	}
	for mode, want := range cases {
		v, _ := run(t, src, "M", "play", Int(mode))
		if v != Str(want) {
			t.Errorf("play(%d) = %v, want %q", mode, v, want)
		}
	}
}

func TestUncaughtException(t *testing.T) {
	src := `
class M {
	static void boom() {
		throw "KeeperException";
	}
}
`
	prog := compile(t, src)
	in := New(prog)
	_, err := in.CallStatic("M", "boom")
	var ue *UncaughtError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want UncaughtError", err)
	}
	if ue.Exc.Value != "KeeperException" {
		t.Errorf("exception = %q, want KeeperException", ue.Exc.Value)
	}
}

func TestWhileBreakContinue(t *testing.T) {
	src := `
class M {
	static int play() {
		int i = 0;
		int total = 0;
		while (true) {
			i = i + 1;
			if (i > 10) {
				break;
			}
			if (i % 2 == 0) {
				continue;
			}
			total = total + i;
		}
		return total;
	}
}
`
	v, _ := run(t, src, "M", "play")
	if v != Int(25) { // 1+3+5+7+9
		t.Errorf("play() = %v, want 25", v)
	}
}

func TestStepBudget(t *testing.T) {
	src := `
class M {
	static void spin() {
		while (true) {
			int x = 1;
		}
	}
}
`
	prog := compile(t, src)
	in := NewWithOptions(prog, Options{StepBudget: 1000})
	_, err := in.CallStatic("M", "spin")
	if !errors.Is(err, ErrStepBudget) {
		t.Fatalf("err = %v, want ErrStepBudget", err)
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	src := `
class M {
	static int down(int n) {
		return down(n + 1);
	}
}
`
	prog := compile(t, src)
	in := NewWithOptions(prog, Options{MaxDepth: 50})
	_, err := in.CallStatic("M", "down", Int(0))
	if !errors.Is(err, ErrStackDepth) {
		t.Fatalf("err = %v, want ErrStackDepth", err)
	}
}

func TestClockAndSleep(t *testing.T) {
	src := `
class M {
	static int play() {
		int t0 = now();
		sleep(50);
		return now() - t0;
	}
}
`
	prog := compile(t, src)
	in := NewWithOptions(prog, Options{Clock: 1000})
	v, err := in.CallStatic("M", "play")
	if err != nil {
		t.Fatal(err)
	}
	if v != Int(50) {
		t.Errorf("elapsed = %v, want 50", v)
	}
}

func TestSynchronizedTracksLocks(t *testing.T) {
	src := `
class Store {
	map data;

	void init() {
		data = newMap();
	}

	void save() {
		synchronized (data) {
			ioWrite("snapshot", data.size());
			synchronized (data) {
				ioFlush();
			}
		}
		ioWrite("after", 0);
	}
}

class M {
	static void play() {
		Store s = new Store();
		s.save();
	}
}
`
	prog := compile(t, src)
	in := New(prog)
	var depths []int
	in.Hooks.OnBuiltin = func(ev IOEvent) {
		if ev.Blocking {
			depths = append(depths, ev.LocksHeld)
		}
	}
	if _, err := in.CallStatic("M", "play"); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 0}
	if len(depths) != len(want) {
		t.Fatalf("depths = %v, want %v", depths, want)
	}
	for i := range want {
		if depths[i] != want[i] {
			t.Errorf("blocking call %d at lock depth %d, want %d", i, depths[i], want[i])
		}
	}
	if in.LocksHeld() != 0 {
		t.Errorf("locks leaked: %d", in.LocksHeld())
	}
}

func TestBranchHook(t *testing.T) {
	src := `
class M {
	static int play(int x) {
		if (x > 10) {
			return 1;
		}
		return 0;
	}
}
`
	prog := compile(t, src)
	in := New(prog)
	var conds []string
	var takens []bool
	in.Hooks.OnBranch = func(s minij.Stmt, cond minij.Expr, taken bool, fr *Frame) {
		conds = append(conds, minij.CanonExpr(cond))
		takens = append(takens, taken)
	}
	if _, err := in.CallStatic("M", "play", Int(42)); err != nil {
		t.Fatal(err)
	}
	if len(conds) != 1 || conds[0] != "x > 10" || !takens[0] {
		t.Errorf("branch hook saw %v %v, want [x > 10] [true]", conds, takens)
	}
}

func TestLogAndFiles(t *testing.T) {
	src := `
class M {
	static string play() {
		log("hello " + str(1 + 1));
		ioWrite("f", 99);
		return ioRead("f");
	}
}
`
	prog := compile(t, src)
	in := New(prog)
	v, err := in.CallStatic("M", "play")
	if err != nil {
		t.Fatal(err)
	}
	if v != Str("99") {
		t.Errorf("ioRead = %v, want 99", v)
	}
	if len(in.Log) != 1 || in.Log[0] != "hello 2" {
		t.Errorf("log = %v", in.Log)
	}
}

func TestAssertBuiltins(t *testing.T) {
	src := `
class M {
	static void good() {
		assertTrue(1 < 2, "math works");
	}
	static void bad() {
		assertTrue(2 < 1, "math broke");
	}
	static void dead() {
		abort("fatal");
	}
}
`
	prog := compile(t, src)
	in := New(prog)
	if _, err := in.CallStatic("M", "good"); err != nil {
		t.Errorf("good: %v", err)
	}
	_, err := in.CallStatic("M", "bad")
	if err == nil || !strings.Contains(err.Error(), "AssertionError: math broke") {
		t.Errorf("bad: err = %v, want AssertionError", err)
	}
	_, err = in.CallStatic("M", "dead")
	if err == nil || !strings.Contains(err.Error(), "Abort: fatal") {
		t.Errorf("dead: err = %v, want Abort", err)
	}
}

func TestStringBuiltins(t *testing.T) {
	src := `
class M {
	static bool play(string s) {
		return strContains(s, "eph") && len(s) > 5 && min(3, 9) == 3 && max(3, 9) == 9;
	}
}
`
	v, _ := run(t, src, "M", "play", Str("ephemeral"))
	if v != Bool(true) {
		t.Errorf("play = %v, want true", v)
	}
}

// Property: Equal is reflexive and symmetric over primitive values.
func TestEqualProperties(t *testing.T) {
	refl := func(i int64, s string, b bool) bool {
		return Equal(Int(i), Int(i)) && Equal(Str(s), Str(s)) &&
			Equal(Bool(b), Bool(b)) && Equal(Null{}, Null{})
	}
	if err := quick.Check(refl, nil); err != nil {
		t.Error(err)
	}
	sym := func(a, b int64) bool {
		return Equal(Int(a), Int(b)) == Equal(Int(b), Int(a))
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Error(err)
	}
	if Equal(Int(0), Bool(false)) || Equal(Str(""), Null{}) || Equal(Int(0), Null{}) {
		t.Error("cross-kind equality must be false")
	}
}

// Property: map Put/Get/Remove behave like a Go map with insertion order.
func TestMapProperties(t *testing.T) {
	f := func(keys []int64) bool {
		m := NewMap()
		ref := map[int64]int64{}
		var order []int64
		for i, k := range keys {
			if _, dup := ref[k]; !dup {
				order = append(order, k)
			}
			ref[k] = int64(i)
			m.Put(Int(k), Int(i))
		}
		if m.Len() != len(ref) {
			return false
		}
		got := m.Keys()
		if len(got) != len(order) {
			return false
		}
		for i, k := range order {
			if got[i] != Int(k) {
				return false
			}
			if m.Get(Int(k)) != Int(ref[k]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatValues(t *testing.T) {
	obj := &Object{Class: &minij.Class{Name: "Session"}, Fields: map[string]Value{
		"closing": Bool(false), "ttl": Int(30),
	}}
	got := Format(obj)
	if got != "Session{closing=false, ttl=30}" {
		t.Errorf("Format(obj) = %q", got)
	}
	l := &List{Elems: []Value{Int(1), Str("x"), Null{}}}
	if Format(l) != "[1, x, null]" {
		t.Errorf("Format(list) = %q", Format(l))
	}
}
