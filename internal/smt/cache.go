package smt

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lisa/internal/faultinject"
	"lisa/internal/store"
)

// SolverStats is a snapshot of the process-wide solver counters.
type SolverStats struct {
	// Queries counts public satisfiability queries (SAT*/Solve*; Implies
	// and Equiv count each underlying SAT call).
	Queries uint64 `json:"queries"`
	// CacheHits / CacheMisses / CacheEvictions describe the boolean result
	// cache. Queries that bypass the cache (model queries, cache disabled,
	// fault injection armed) count in neither bucket.
	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheEvictions uint64 `json:"cache_evictions"`
	// Solves counts DPLL searches actually run; Nodes the search-tree nodes
	// across all of them.
	Solves uint64 `json:"solves"`
	Nodes  uint64 `json:"nodes"`
	// SolveTime is wall clock inside the solver; TheoryTime the portion
	// spent in incremental theory asserts.
	SolveTime  time.Duration `json:"solve_time_ns"`
	TheoryTime time.Duration `json:"theory_time_ns"`
}

var stats struct {
	queries, hits, misses, evictions, solves, nodes atomic.Uint64
	solveNS, theoryNS                               atomic.Int64
}

// Stats returns a snapshot of the process-wide solver counters. These keep
// counting across every cache instance (the per-instance QueryCacheStats
// carve the same events up by engine), so existing baselines — notably the
// committed lisabench counter snapshots — stay comparable.
func Stats() SolverStats {
	return SolverStats{
		Queries:        stats.queries.Load(),
		CacheHits:      stats.hits.Load(),
		CacheMisses:    stats.misses.Load(),
		CacheEvictions: stats.evictions.Load(),
		Solves:         stats.solves.Load(),
		Nodes:          stats.nodes.Load(),
		SolveTime:      time.Duration(stats.solveNS.Load()),
		TheoryTime:     time.Duration(stats.theoryNS.Load()),
	}
}

// Sub returns the field-wise counter delta s − base. Long-lived holders
// (the lisa serve daemon, per-run scheduler stats) snapshot the
// process-wide counters at a baseline and attribute later growth to their
// own traffic. The attribution is exact while the holder is the only
// solver user in the process and approximate when other runs share the
// process concurrently — holders that need exactness under concurrency
// attach their own QueryCache (Limits.Cache / core.Engine.Solver) and read
// its per-instance stats instead.
func (s SolverStats) Sub(base SolverStats) SolverStats {
	return SolverStats{
		Queries:        s.Queries - base.Queries,
		CacheHits:      s.CacheHits - base.CacheHits,
		CacheMisses:    s.CacheMisses - base.CacheMisses,
		CacheEvictions: s.CacheEvictions - base.CacheEvictions,
		Solves:         s.Solves - base.Solves,
		Nodes:          s.Nodes - base.Nodes,
		SolveTime:      s.SolveTime - base.SolveTime,
		TheoryTime:     s.TheoryTime - base.TheoryTime,
	}
}

// DefaultQueryCacheCap bounds a solver result cache's memory tier. Corpus
// runs issue a few thousand distinct queries; the cap is a memory backstop,
// not a tuning knob.
const DefaultQueryCacheCap = 4096

// queryNamespace versions the solver records in the on-disk store; bump it
// when the record encoding changes so stale stores read as misses.
const queryNamespace = "smt.v1"

// QueryCache is a bounded LRU of decided boolean queries keyed by the
// formula's canonical render (TestRenderParseRoundTrip pins down that equal
// renders imply equivalent formulas, so the render is a sound key), with an
// optional on-disk tier behind it (SetStore). It has singleflight
// semantics: concurrent misses on one key run a single solve, and followers
// wait on the leader instead of duplicating work. The memory tier is
// modeled on internal/program.Cache.
//
// The process-wide default instance serves every query whose Limits carry
// no explicit cache; engines that need exact per-run accounting own an
// instance and pass it via Limits.Cache.
type QueryCache struct {
	mu       sync.Mutex
	cap      int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used; values are *cacheEntry
	inflight map[string]*inflightQuery

	disk atomic.Pointer[store.Store]

	queries, hits, misses, evictions atomic.Uint64
	solves, nodes                    atomic.Uint64
	diskHits, diskMisses, diskWrites atomic.Uint64
}

// QueryCacheStats is a snapshot of one QueryCache instance's counters —
// exact for the engine that owns the instance, regardless of what the rest
// of the process is doing.
type QueryCacheStats struct {
	Queries    uint64 `json:"queries"`
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Evictions  uint64 `json:"evictions"`
	Solves     uint64 `json:"solves"`
	Nodes      uint64 `json:"nodes"`
	DiskHits   uint64 `json:"disk_hits"`
	DiskMisses uint64 `json:"disk_misses"`
	DiskWrites uint64 `json:"disk_writes"`
}

// Sub returns the field-wise delta s − base.
func (s QueryCacheStats) Sub(base QueryCacheStats) QueryCacheStats {
	return QueryCacheStats{
		Queries:    s.Queries - base.Queries,
		Hits:       s.Hits - base.Hits,
		Misses:     s.Misses - base.Misses,
		Evictions:  s.Evictions - base.Evictions,
		Solves:     s.Solves - base.Solves,
		Nodes:      s.Nodes - base.Nodes,
		DiskHits:   s.DiskHits - base.DiskHits,
		DiskMisses: s.DiskMisses - base.DiskMisses,
		DiskWrites: s.DiskWrites - base.DiskWrites,
	}
}

// Add returns the field-wise sum s + o (aggregating per-engine handles).
func (s QueryCacheStats) Add(o QueryCacheStats) QueryCacheStats {
	return QueryCacheStats{
		Queries:    s.Queries + o.Queries,
		Hits:       s.Hits + o.Hits,
		Misses:     s.Misses + o.Misses,
		Evictions:  s.Evictions + o.Evictions,
		Solves:     s.Solves + o.Solves,
		Nodes:      s.Nodes + o.Nodes,
		DiskHits:   s.DiskHits + o.DiskHits,
		DiskMisses: s.DiskMisses + o.DiskMisses,
		DiskWrites: s.DiskWrites + o.DiskWrites,
	}
}

// cacheEntry remembers the verdict and how many search nodes deciding it
// consumed. Hits are only served to callers whose node budget covers that
// count, so budget-limited callers behave byte-identically warm or cold.
type cacheEntry struct {
	key   string
	sat   bool
	nodes int
}

type inflightQuery struct {
	done chan struct{}
	// maxNodes is the leader's node budget. When the leader fails with
	// ErrBudget, a follower whose own budget is no larger would
	// deterministically exhaust on the same node, so the error propagates
	// to it without re-running the doomed search.
	maxNodes int
	sat      bool
	nodes    int
	err      error
}

// NewQueryCache returns an empty solver result cache; capacity <= 0 means
// DefaultQueryCacheCap.
func NewQueryCache(capacity int) *QueryCache {
	if capacity <= 0 {
		capacity = DefaultQueryCacheCap
	}
	return &QueryCache{
		cap:      capacity,
		entries:  map[string]*list.Element{},
		order:    list.New(),
		inflight: map[string]*inflightQuery{},
	}
}

// SetStore attaches (nil: detaches) the on-disk tier. Safe to call
// concurrently with queries.
func (c *QueryCache) SetStore(st *store.Store) { c.disk.Store(st) }

// CacheName identifies this cache in unified tier stats.
func (c *QueryCache) CacheName() string { return "solver" }

// TierStats reports the two-tier counters in the unified shape.
func (c *QueryCache) TierStats() store.TierStats {
	ts := store.TierStats{
		Cache:      c.CacheName(),
		MemHits:    c.hits.Load(),
		MemMisses:  c.misses.Load(),
		DiskHits:   c.diskHits.Load(),
		DiskMisses: c.diskMisses.Load(),
		DiskWrites: c.diskWrites.Load(),
	}
	if st := c.disk.Load(); st != nil {
		ts.DiskWriteErrors = st.NamespaceWriteErrors(queryNamespace)
	}
	return ts
}

// Stats snapshots this instance's counters.
func (c *QueryCache) Stats() QueryCacheStats {
	return QueryCacheStats{
		Queries:    c.queries.Load(),
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Evictions:  c.evictions.Load(),
		Solves:     c.solves.Load(),
		Nodes:      c.nodes.Load(),
		DiskHits:   c.diskHits.Load(),
		DiskMisses: c.diskMisses.Load(),
		DiskWrites: c.diskWrites.Load(),
	}
}

// Reset drops every cached entry from the memory tier (the disk tier is
// shared and stays). Counters are kept; in-flight solves complete and
// store into the emptied cache.
func (c *QueryCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[string]*list.Element{}
	c.order.Init()
}

var (
	cacheEnabled atomic.Bool
	queryResults = NewQueryCache(DefaultQueryCacheCap)
)

func init() { cacheEnabled.Store(true) }

var _ store.CacheBackend = (*QueryCache)(nil)

// DefaultQueryCache returns the process-wide cache instance used by
// queries whose Limits name no explicit cache.
func DefaultQueryCache() *QueryCache { return queryResults }

// SetQueryCacheEnabled toggles solver result caching process-wide
// (ablation runs and tests) and returns the previous setting. The toggle
// governs every instance, not just the default one.
func SetQueryCacheEnabled(on bool) bool { return cacheEnabled.Swap(on) }

// ResetQueryCache drops every cached query result from the default
// instance's memory tier.
func ResetQueryCache() { queryResults.Reset() }

// satCached answers a boolean satisfiability query through the result
// cache named by lim (default: the process-wide instance). Errors (budget,
// cancellation) are never cached. While fault injection is armed both
// tiers are bypassed entirely — no reads and no writes — so injected
// faults fire with the cadence a cold process would see and results
// computed under injection never poison later runs.
func satCached(f Formula, lim Limits) (bool, error) {
	stats.queries.Add(1)
	qc := lim.Cache
	if qc == nil {
		qc = queryResults
	}
	qc.queries.Add(1)
	if c, ok := f.(*Const); ok {
		return c.Value, nil
	}
	if !cacheEnabled.Load() || (faultinject.Armed() && !faultinject.StoreScoped()) {
		sat, _, nodes, err := solveCore(f, lim)
		qc.solves.Add(1)
		qc.nodes.Add(uint64(nodes))
		return sat, err
	}
	max := lim.MaxNodes
	if max <= 0 {
		max = DefaultMaxNodes
	}
	return qc.load(f.String(), max, func() (bool, int, error) {
		sat, _, nodes, err := solveCore(f, lim)
		return sat, nodes, err
	})
}

// load returns the cached verdict for key, joining or becoming the leader
// of an in-flight solve on miss. A cached or in-flight result is only
// reused when its node count fits maxNodes; otherwise this caller re-solves
// under its own limits so ErrBudget surfaces exactly as it would uncached.
// On a memory miss the leader consults the disk tier before solving.
func (c *QueryCache) load(key string, maxNodes int, solve func() (bool, int, error)) (bool, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		if e.nodes <= maxNodes {
			c.order.MoveToFront(el)
			c.mu.Unlock()
			stats.hits.Add(1)
			c.hits.Add(1)
			return e.sat, nil
		}
	}
	if fl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-fl.done
		return c.followInflight(key, fl, maxNodes, solve)
	}
	fl := &inflightQuery{done: make(chan struct{}), maxNodes: maxNodes}
	c.inflight[key] = fl
	c.mu.Unlock()

	// Disk tier: a persisted verdict whose node count fits the budget is a
	// hit — promote it to the memory tier and skip the solve.
	if sat, nodes, ok := c.diskGet(key); ok && nodes <= maxNodes {
		fl.sat, fl.nodes = sat, nodes
		close(fl.done)
		c.mu.Lock()
		delete(c.inflight, key)
		c.mu.Unlock()
		stats.hits.Add(1)
		c.hits.Add(1)
		c.storeEntry(key, sat, nodes)
		return sat, nil
	}

	stats.misses.Add(1)
	c.misses.Add(1)
	fl.sat, fl.nodes, fl.err = c.runSolve(solve)
	close(fl.done)
	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	if fl.err == nil {
		c.storeEntry(key, fl.sat, fl.nodes)
		c.diskPut(key, fl.sat, fl.nodes)
	}
	return fl.sat, fl.err
}

// runSolve runs one uncached solve on this cache's behalf, charging the
// per-instance solve counters.
func (c *QueryCache) runSolve(solve func() (bool, int, error)) (bool, int, error) {
	sat, nodes, err := solve()
	c.solves.Add(1)
	c.nodes.Add(uint64(nodes))
	return sat, nodes, err
}

// storeEntry inserts a decided query into the memory tier, evicting from
// the LRU tail past capacity.
func (c *QueryCache) storeEntry(key string, sat bool, nodes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, sat: sat, nodes: nodes})
	for c.order.Len() > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
		stats.evictions.Add(1)
		c.evictions.Add(1)
	}
}

// diskKey addresses a query in the store: the render is content, so its
// digest is the address.
func diskKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// diskGet fetches a persisted verdict; any decode anomaly is a miss.
func (c *QueryCache) diskGet(key string) (sat bool, nodes int, ok bool) {
	st := c.disk.Load()
	if st == nil {
		return false, 0, false
	}
	raw, found := st.Get(queryNamespace, diskKey(key))
	if !found {
		c.diskMisses.Add(1)
		return false, 0, false
	}
	var satInt int
	if _, err := fmt.Sscanf(string(raw), "%d %d", &satInt, &nodes); err != nil || satInt > 1 || satInt < 0 || nodes < 0 {
		c.diskMisses.Add(1)
		return false, 0, false
	}
	c.diskHits.Add(1)
	return satInt == 1, nodes, true
}

// diskPut persists a decided verdict (write-behind; errors are invisible —
// the disk tier is an optimization, never a source of truth).
func (c *QueryCache) diskPut(key string, sat bool, nodes int) {
	st := c.disk.Load()
	if st == nil {
		return
	}
	satInt := 0
	if sat {
		satInt = 1
	}
	st.Put(queryNamespace, diskKey(key), []byte(fmt.Sprintf("%d %d", satInt, nodes)))
	c.diskWrites.Add(1)
}
