// Package ticket models historical failure tickets: the input bundles that
// LISA's inference stage consumes. A ticket carries the textual failure
// description and developer discussion, the code patch (derivable as a
// diff between the buggy and fixed sources), the post-patch source, and the
// regression tests the developers added — exactly the bundle Figure 5
// feeds to the LLM.
package ticket

import (
	"fmt"
	"sort"
	"strings"

	"lisa/internal/diffutil"
)

// TestCase is one executable test: a static MiniJ entry method plus the
// natural-language summary that the embedding index retrieves by.
type TestCase struct {
	// Name is a unique label, conventionally "Class.method".
	Name string
	// Description summarizes the scenario in natural language.
	Description string
	// Source is the MiniJ source of the test class(es); it is concatenated
	// with the system source before compilation.
	Source string
	// Class and Method locate the static entry point.
	Class  string
	Method string
}

// Ticket is one failure ticket.
type Ticket struct {
	// ID is the tracker key, e.g. "ZK-1208".
	ID string
	// Title is the one-line summary.
	Title string
	// Description is the reported failure narrative.
	Description string
	// Discussion holds developer comments in order.
	Discussion []string
	// BuggySource is the full system source exhibiting the bug.
	BuggySource string
	// FixedSource is the full system source after the patch.
	FixedSource string
	// RegressionTests are the tests added alongside the fix.
	RegressionTests []TestCase
}

// Diff renders the code patch in unified format.
func (t *Ticket) Diff() string {
	return diffutil.Unified(t.ID+".mj", diffutil.Diff(t.BuggySource, t.FixedSource), 3)
}

// Bundle renders the full inference input: description, discussion, patch,
// and post-patch source — the three inputs named in the paper's prompt.
func (t *Ticket) Bundle() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "TICKET %s: %s\n\n", t.ID, t.Title)
	sb.WriteString("== Failure description ==\n")
	sb.WriteString(t.Description)
	sb.WriteString("\n\n== Developer discussion ==\n")
	for _, d := range t.Discussion {
		sb.WriteString("- ")
		sb.WriteString(d)
		sb.WriteByte('\n')
	}
	sb.WriteString("\n== Code patch ==\n")
	sb.WriteString(t.Diff())
	sb.WriteString("\n== Source after patch ==\n")
	sb.WriteString(t.FixedSource)
	return sb.String()
}

// Case is one regression case from the study: an original bug plus at
// least one recurrence of the same low-level semantic, in one system
// feature area.
type Case struct {
	// ID identifies the case, e.g. "zk-ephemeral".
	ID string
	// System is the simulated system, e.g. "zksim".
	System string
	// Feature names the recurring failure area, e.g. "ephemeral nodes".
	Feature string
	// Description summarizes the recurring failure class.
	Description string
	// Tickets are ordered chronologically: the original bug first, then
	// each regression.
	Tickets []*Ticket
	// Latest is the current head version of the system source (what E-B1
	// and E-B2 style experiments scan for still-missing checks). When
	// empty, the last ticket's FixedSource is the head.
	Latest string
	// Tests is the system's full test suite (shared across tickets).
	Tests []TestCase
	// FirstReported and LastReported are years, for the longevity
	// statistics of §2.1 (e.g. ZooKeeper's ephemeral feature: 46 bugs
	// over 14 years).
	FirstReported int
	LastReported  int
	// FeatureBugCount is the total number of tracker bugs historically
	// associated with the feature (a superset of the studied tickets).
	FeatureBugCount int
}

// Head returns the newest system source of the case.
func (c *Case) Head() string {
	if c.Latest != "" {
		return c.Latest
	}
	if n := len(c.Tickets); n > 0 {
		return c.Tickets[n-1].FixedSource
	}
	return ""
}

// Bugs returns the number of bugs in the case (one per ticket).
func (c *Case) Bugs() int { return len(c.Tickets) }

// Corpus is an ordered collection of regression cases.
type Corpus struct {
	Cases []*Case
}

// Add appends a case.
func (c *Corpus) Add(cs *Case) { c.Cases = append(c.Cases, cs) }

// Get returns the case with the given ID, or nil.
func (c *Corpus) Get(id string) *Case {
	for _, cs := range c.Cases {
		if cs.ID == id {
			return cs
		}
	}
	return nil
}

// Stats aggregates the study numbers reported in §2.1.
type Stats struct {
	Cases     int
	Bugs      int
	Systems   int
	TestFiles int
	// BySystem maps system name to its case and bug counts.
	BySystem map[string]SystemStats
}

// SystemStats is the per-system slice of the study.
type SystemStats struct {
	Cases int
	Bugs  int
	Tests int
	Span  int // years between first and last report across cases
}

// ComputeStats aggregates the corpus.
func (c *Corpus) ComputeStats() Stats {
	st := Stats{BySystem: map[string]SystemStats{}}
	systems := map[string]bool{}
	for _, cs := range c.Cases {
		st.Cases++
		st.Bugs += cs.Bugs()
		st.TestFiles += len(cs.Tests)
		systems[cs.System] = true
		ss := st.BySystem[cs.System]
		ss.Cases++
		ss.Bugs += cs.Bugs()
		ss.Tests += len(cs.Tests)
		if span := cs.LastReported - cs.FirstReported; span > ss.Span {
			ss.Span = span
		}
		st.BySystem[cs.System] = ss
	}
	st.Systems = len(systems)
	return st
}

// SystemNames returns the distinct system names in sorted order.
func (c *Corpus) SystemNames() []string {
	seen := map[string]bool{}
	var out []string
	for _, cs := range c.Cases {
		if !seen[cs.System] {
			seen[cs.System] = true
			out = append(out, cs.System)
		}
	}
	sort.Strings(out)
	return out
}
