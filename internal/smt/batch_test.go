package smt

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLoadBatchDedupsWithinBatch: duplicate keys inside one batch collapse
// onto a single solve, and every occurrence gets the leader's verdict.
func TestLoadBatchDedupsWithinBatch(t *testing.T) {
	c := NewQueryCache(16)
	calls := 0
	sats, errs := c.loadBatch([]string{"k", "k", "k", "k"}, DefaultMaxNodes, func(int) (bool, int, error) {
		calls++
		return true, 3, nil
	})
	if calls != 1 {
		t.Fatalf("solves = %d, want 1", calls)
	}
	for i := range sats {
		if errs[i] != nil || !sats[i] {
			t.Fatalf("batch[%d] = %v, %v, want true, nil", i, sats[i], errs[i])
		}
	}
	if st := c.Stats(); st.Solves != 1 || st.Hits != 3 {
		t.Fatalf("stats = %+v, want 1 solve, 3 hits", st)
	}
}

// TestLoadBatchMixedHitJoinLeader: a batch mixing a warm key, fresh keys,
// and a duplicate solves only the distinct fresh keys.
func TestLoadBatchMixedHitJoinLeader(t *testing.T) {
	c := NewQueryCache(16)
	if _, err := c.load("warm", DefaultMaxNodes, func() (bool, int, error) { return true, 1, nil }); err != nil {
		t.Fatal(err)
	}
	solved := map[string]int{}
	keys := []string{"warm", "a", "b", "a"}
	sats, errs := c.loadBatch(keys, DefaultMaxNodes, func(k int) (bool, int, error) {
		solved[keys[k]]++
		return keys[k] == "a", 2, nil
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("batch[%d]: %v", i, err)
		}
	}
	want := []bool{true, true, false, true}
	for i := range want {
		if sats[i] != want[i] {
			t.Fatalf("batch[%d] = %v, want %v", i, sats[i], want[i])
		}
	}
	if solved["warm"] != 0 || solved["a"] != 1 || solved["b"] != 1 {
		t.Fatalf("solve calls = %v, want a:1 b:1 only", solved)
	}
}

// TestLoadBatchBudgetErrorPropagates: a leader that exhausts its budget
// hands the identical ErrBudget to every same-budget duplicate in the batch
// without re-running the doomed search.
func TestLoadBatchBudgetErrorPropagates(t *testing.T) {
	c := NewQueryCache(16)
	calls := 0
	_, errs := c.loadBatch([]string{"k", "k", "k"}, 100, func(int) (bool, int, error) {
		calls++
		return false, 0, ErrBudget
	})
	if calls != 1 {
		t.Fatalf("solves = %d, want 1 (budget error must propagate, not re-solve)", calls)
	}
	for i, err := range errs {
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("batch[%d] err = %v, want ErrBudget", i, err)
		}
	}
	// Errors are never cached: the next caller re-solves.
	if _, err := c.load("k", 100, func() (bool, int, error) { calls++; return true, 1, nil }); err != nil || calls != 2 {
		t.Fatalf("after budget error: err=%v calls=%d, want nil/2", err, calls)
	}
}

// TestLoadBatchOtherErrorsResolvePerWaiter: non-budget failures (e.g.
// cancellation) keep the conservative semantics — each waiter re-solves
// under its own limits, and a successful re-solve is cached.
func TestLoadBatchOtherErrorsResolvePerWaiter(t *testing.T) {
	c := NewQueryCache(16)
	boom := errors.New("boom")
	calls := 0
	_, errs := c.loadBatch([]string{"k", "k", "k"}, 100, func(int) (bool, int, error) {
		calls++
		if calls == 1 {
			return false, 0, boom
		}
		return true, 1, nil
	})
	if calls != 3 {
		t.Fatalf("solves = %d, want 3 (each waiter re-solves after a non-budget error)", calls)
	}
	if !errors.Is(errs[0], boom) || errs[1] != nil || errs[2] != nil {
		t.Fatalf("errs = %v, want [boom nil nil]", errs)
	}
	// The follower's successful re-solve was stored: warm hit now.
	if _, err := c.load("k", 100, func() (bool, int, error) { calls++; return false, 0, nil }); err != nil || calls != 3 {
		t.Fatalf("follower result not cached: calls=%d err=%v", calls, err)
	}
}

// TestSingleflightConcurrentSameQuery: N goroutines racing on one cold key
// produce exactly one solve; everyone sees the leader's verdict. The leader
// blocks on a gate until all racers have launched, so the overlap is real.
func TestSingleflightConcurrentSameQuery(t *testing.T) {
	c := NewQueryCache(16)
	gate := make(chan struct{})
	var calls, entered atomic.Int64
	const n = 8
	results := make([]bool, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			entered.Add(1)
			results[g], errs[g] = c.load("hot", DefaultMaxNodes, func() (bool, int, error) {
				<-gate
				calls.Add(1)
				return true, 5, nil
			})
		}(g)
	}
	for entered.Load() < n {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let late racers reach the join
	close(gate)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("solves = %d, want exactly 1", calls.Load())
	}
	for g := 0; g < n; g++ {
		if errs[g] != nil || !results[g] {
			t.Fatalf("goroutine %d: sat=%v err=%v, want true/nil", g, results[g], errs[g])
		}
	}
	if st := c.Stats(); st.Solves != 1 {
		t.Fatalf("instance solves = %d, want 1", st.Solves)
	}
}

// TestSingleflightBudgetErrorToAllWaiters: when the gated leader exhausts
// its budget, every same-budget waiter receives ErrBudget directly — one
// doomed search, not N.
func TestSingleflightBudgetErrorToAllWaiters(t *testing.T) {
	c := NewQueryCache(16)
	gate := make(chan struct{})
	var calls, entered atomic.Int64
	const n = 6
	errs := make([]error, n)
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			entered.Add(1)
			_, errs[g] = c.load("doomed", 100, func() (bool, int, error) {
				<-gate
				calls.Add(1)
				return false, 0, ErrBudget
			})
		}(g)
	}
	for entered.Load() < n {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("solves = %d, want 1 (waiters must inherit ErrBudget)", calls.Load())
	}
	for g := 0; g < n; g++ {
		if !errors.Is(errs[g], ErrBudget) {
			t.Fatalf("goroutine %d: err = %v, want ErrBudget", g, errs[g])
		}
	}
}

// TestSATBatchLimMatchesSATLim: a batch answers every query exactly as the
// one-at-a-time path would, constants included, while solving each distinct
// formula at most once.
func TestSATBatchLimMatchesSATLim(t *testing.T) {
	r := newTestRng(7)
	var fs []Formula
	for len(fs) < 24 {
		fs = append(fs, genDiffFormula(r, 3))
	}
	fs = append(fs, True(), False())
	fs = append(fs, fs[0], fs[1], fs[0]) // in-batch duplicates

	want := make([]bool, len(fs))
	for i, f := range fs {
		sat, err := SATLim(f, Limits{Cache: NewQueryCache(0)})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = sat
	}

	qc := NewQueryCache(0)
	sats, errs := SATBatchLim(fs, Limits{Cache: qc})
	for i := range fs {
		if errs[i] != nil {
			t.Fatalf("batch[%d] %s: %v", i, fs[i], errs[i])
		}
		if sats[i] != want[i] {
			t.Fatalf("batch[%d] %s = %v, SATLim = %v", i, fs[i], sats[i], want[i])
		}
	}
	st := qc.Stats()
	if st.Queries != uint64(len(fs)) {
		t.Fatalf("queries = %d, want %d", st.Queries, len(fs))
	}
	// Every non-const distinct render solves at most once.
	distinct := map[string]bool{}
	for _, f := range fs {
		if _, isConst := f.(*Const); !isConst {
			distinct[f.String()] = true
		}
	}
	if st.Solves > uint64(len(distinct)) {
		t.Fatalf("solves = %d > %d distinct formulas", st.Solves, len(distinct))
	}
}

// TestSATBatchLimCacheDisabled: with the cache ablated the batch degrades
// to per-query direct solves with unchanged verdicts.
func TestSATBatchLimCacheDisabled(t *testing.T) {
	defer SetQueryCacheEnabled(SetQueryCacheEnabled(false))
	r := newTestRng(11)
	var fs []Formula
	for len(fs) < 12 {
		fs = append(fs, genDiffFormula(r, 3))
	}
	sats, errs := SATBatchLim(fs, Limits{})
	for i, f := range fs {
		if errs[i] != nil {
			t.Fatalf("batch[%d] %s: %v", i, f, errs[i])
		}
		wantSat, _, err := ReferenceSolve(f, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if sats[i] != wantSat {
			t.Fatalf("batch[%d] %s = %v, reference = %v", i, f, sats[i], wantSat)
		}
	}
}
