package sched

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"lisa/internal/contract"
	"lisa/internal/core"
	"lisa/internal/store"
	"lisa/internal/ticket"
)

// topoWorkload builds an n-replica system — one contract per replica, two
// guarded call sites each behind branching caller chains — so shard
// topologies have a real registry to partition. The returned factory builds
// a fresh engine per call, the way each child process of a sharded run
// builds its own.
func topoWorkload(t *testing.T, n int) (mkEngine func() *core.Engine, src string, tests []ticket.TestCase) {
	t.Helper()
	var sb, spec strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, `
class Session%d {
	bool closing;
}

class DataTree%d {
	map nodes;

	void createEphemeral(string path, Session%d owner) {
		nodes.put(path, owner);
	}
}

class Prep%d {
	DataTree%d tree;

	void processCreate(string path, Session%d s, int mode) {
		if (s == null || s.closing) {
			throw "KeeperException";
		}
		if (mode > 2) {
			tree.createEphemeral(path, s);
		} else {
			tree.createEphemeral(path, s);
		}
	}

	void route(string path, Session%d s, int mode) {
		if (mode == 1) {
			processCreate(path, s, mode);
		} else {
			processCreate(path, s, mode);
		}
	}
}
`, i, i, i, i, i, i, i)
		fmt.Fprintf(&spec, `
rule eph-%d
description: ephemeral create requires a live session (replica %d)
target: DataTree%d.createEphemeral
bind: s = arg 1
require: s != null && s.closing == false
`, i, i, i)
	}
	specText := spec.String()
	mkEngine = func() *core.Engine {
		sems, err := contract.ParseSpec(specText)
		if err != nil {
			t.Fatal(err)
		}
		e := core.New()
		for _, sem := range sems {
			if err := e.Registry.Add(sem); err != nil {
				t.Fatal(err)
			}
		}
		return e
	}
	tests = []ticket.TestCase{{
		Name:        "TopoTest.liveCreate",
		Description: "create on a live session succeeds",
		Class:       "TopoTest",
		Method:      "liveCreate",
		Source: `
class TopoTest {
	static void liveCreate() {
		Prep0 p = new Prep0();
		p.tree = new DataTree0();
		p.tree.nodes = newMap();
		Session0 s = new Session0();
		s.closing = false;
		p.route("/live", s, 1);
		assertTrue(p.tree.nodes.has("/live"), "node created");
	}
}
`,
	}}
	return mkEngine, sb.String(), tests
}

// TestMakeBatches: chunking preserves order and covers every job.
func TestMakeBatches(t *testing.T) {
	jobs := make([]*job, 10)
	for i := range jobs {
		jobs[i] = &job{name: fmt.Sprintf("j%d", i)}
	}
	batches := makeBatches(jobs, 4)
	if len(batches) != 3 {
		t.Fatalf("got %d batches, want 3", len(batches))
	}
	var flat []*job
	for i, b := range batches {
		want := 4
		if i == 2 {
			want = 2
		}
		if len(b.jobs) != want {
			t.Errorf("batch %d has %d jobs, want %d", i, len(b.jobs), want)
		}
		flat = append(flat, b.jobs...)
	}
	for i, j := range flat {
		if j != jobs[i] {
			t.Fatalf("batching reordered jobs at %d", i)
		}
	}
	if got := makeBatches(nil, 4); got != nil {
		t.Errorf("empty job set produced %d batches", len(got))
	}
}

// TestBatchSizeDoesNotChangeReport: the batch unit is pure dispatch
// mechanics — any size renders byte-identically to the sequential engine.
func TestBatchSizeDoesNotChangeReport(t *testing.T) {
	mk, src, tests := topoWorkload(t, 4)
	seq, err := mk().Assert(src, tests)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Render()
	for _, size := range []int{1, 3, 1024} {
		rep, stats, err := New().Assert(mk(), src, tests, Options{Workers: 8, BatchSize: size})
		if err != nil {
			t.Fatalf("batch size %d: %v", size, err)
		}
		if got := rep.Render(); got != want {
			t.Errorf("batch size %d renders differently from sequential", size)
		}
		if stats.Executed+stats.CacheHits != stats.Jobs {
			t.Errorf("batch size %d: executed(%d)+hits(%d) != jobs(%d)",
				size, stats.Executed, stats.CacheHits, stats.Jobs)
		}
	}
}

// TestShardTopologyByteIdentity is the merge-protocol determinism check:
// for every shards × workers topology, in-process "children" (one cold
// scheduler per shard, all sharing one on-disk store) execute their
// partition, and the parent-style merge run over the warmed store renders
// byte-identically to the sequential engine — cold and on a warm repeat —
// with every merge job served from the store.
func TestShardTopologyByteIdentity(t *testing.T) {
	mk, src, tests := topoWorkload(t, 6)
	seq, err := mk().Assert(src, tests)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Render()
	for _, shards := range []int{1, 2, 4} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("shards=%d,workers=%d", shards, workers), func(t *testing.T) {
				st, err := store.Open(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				defer st.Close()
				childJobs, skipped := 0, 0
				for i := 0; i < shards; i++ {
					s := New()
					s.Cache().SetStore(st)
					_, stats, err := s.Assert(mk(), src, tests, Options{
						Workers: workers, ShardIndex: i, ShardCount: shards,
					})
					if err != nil {
						t.Fatalf("shard %d: %v", i, err)
					}
					childJobs += stats.Jobs
					skipped += stats.ShardSkippedSemantics
				}
				// The partition is exhaustive and disjoint: across all
				// children each of the 6 semantics is skipped by every shard
				// but its own.
				if want := 6 * (shards - 1); skipped != want {
					t.Errorf("children skipped %d semantics total, want %d", skipped, want)
				}
				if err := st.Flush(); err != nil {
					t.Fatal(err)
				}
				// Merge: a fresh scheduler (cold memory) over the warmed
				// store — the parent process of `lisa assert -shards N`.
				merge := New()
				merge.Cache().SetStore(st)
				rep, stats, err := merge.Assert(mk(), src, tests, Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if got := rep.Render(); got != want {
					t.Errorf("merge differs from sequential\n--- sequential ---\n%s\n--- merge ---\n%s", want, got)
				}
				if stats.Executed != 0 {
					t.Errorf("merge executed %d jobs, want 0 (all served from the warmed store)", stats.Executed)
				}
				if childJobs != stats.Jobs {
					t.Errorf("children ran %d jobs, merge sees %d — partition not exhaustive/disjoint", childJobs, stats.Jobs)
				}
				// Warm repeat: another cold process over the same store.
				again := New()
				again.Cache().SetStore(st)
				rep2, stats2, err := again.Assert(mk(), src, tests, Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if rep2.Render() != want {
					t.Error("warm repeat differs from sequential")
				}
				if stats2.Executed != 0 {
					t.Errorf("warm repeat executed %d jobs, want 0", stats2.Executed)
				}
			})
		}
	}
}

// TestWorkersOneNoSlowerThanSequential is the width-1 pool satellite:
// batched workers=1 runs every job inline on the calling goroutine, so its
// wall clock must stay within 2% of the sequential engine loop (plus a
// small absolute allowance for timer noise on loaded runners). Both paths
// are warmed once first so the process-wide solver and snapshot caches
// serve them symmetrically, then each takes the best of four trials with a
// cold per-trial engine and scheduler.
func TestWorkersOneNoSlowerThanSequential(t *testing.T) {
	mk, src, tests := topoWorkload(t, 8)
	seqRun := func() {
		if _, err := mk().Assert(src, tests); err != nil {
			t.Fatal(err)
		}
	}
	schedRun := func() {
		if _, _, err := New().Assert(mk(), src, tests, Options{Workers: 1}); err != nil {
			t.Fatal(err)
		}
	}
	seqRun()
	schedRun()
	best := func(run func()) time.Duration {
		b := time.Duration(1<<63 - 1)
		for i := 0; i < 4; i++ {
			start := time.Now()
			run()
			if d := time.Since(start); d < b {
				b = d
			}
		}
		return b
	}
	seqBest := best(seqRun)
	schedBest := best(schedRun)
	limit := seqBest + seqBest/50 + 25*time.Millisecond
	if schedBest > limit {
		t.Errorf("workers=1 scheduled run %v exceeds sequential %v + 2%% (+25ms noise allowance)",
			schedBest, seqBest)
	}
}
