// Package embedding provides TF-IDF text embeddings with cosine-similarity
// retrieval. It substitutes for the hosted embedding model the paper uses
// (text-embedding-3-large) in the RAG-style test-selection stage: the only
// property that stage needs is a similarity ranking between a path's
// feature description and the test corpus, which TF-IDF preserves at this
// scale.
package embedding

import (
	"math"
	"sort"
	"strings"
	"unicode"
)

// Doc is one indexed document.
type Doc struct {
	ID   string
	Text string
}

// Match is one retrieval result.
type Match struct {
	ID    string
	Score float64
}

// Index is an immutable TF-IDF index over a document set.
type Index struct {
	docs  []Doc
	vocab map[string]int
	idf   []float64
	vecs  [][]sparseEntry
}

type sparseEntry struct {
	term int
	w    float64
}

// Tokenize splits text into lowercase terms, breaking camelCase and
// punctuation, so code identifiers ("createEphemeralNode") share terms with
// prose descriptions ("create an ephemeral node").
func Tokenize(text string) []string {
	var terms []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			terms = append(terms, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	prevLower := false
	for _, r := range text {
		switch {
		case unicode.IsLetter(r):
			if unicode.IsUpper(r) && prevLower {
				flush()
			}
			cur.WriteRune(r)
			prevLower = unicode.IsLower(r)
		case unicode.IsDigit(r):
			cur.WriteRune(r)
			prevLower = false
		default:
			flush()
			prevLower = false
		}
	}
	flush()
	return terms
}

// NewIndex builds an index over docs.
func NewIndex(docs []Doc) *Index {
	ix := &Index{docs: docs, vocab: map[string]int{}}
	// Document frequencies.
	tfs := make([]map[int]int, len(docs))
	df := []int{}
	for i, d := range docs {
		tf := map[int]int{}
		for _, term := range Tokenize(d.Text) {
			id, ok := ix.vocab[term]
			if !ok {
				id = len(ix.vocab)
				ix.vocab[term] = id
				df = append(df, 0)
			}
			if tf[id] == 0 {
				df[id]++
			}
			tf[id]++
		}
		tfs[i] = tf
	}
	n := float64(len(docs))
	ix.idf = make([]float64, len(df))
	for t, c := range df {
		// Smoothed IDF keeps ubiquitous terms from zeroing out entirely.
		ix.idf[t] = math.Log((n+1)/(float64(c)+1)) + 1
	}
	ix.vecs = make([][]sparseEntry, len(docs))
	for i, tf := range tfs {
		ix.vecs[i] = ix.vectorize(tf)
	}
	return ix
}

// vectorize builds a unit-norm sparse TF-IDF vector.
func (ix *Index) vectorize(tf map[int]int) []sparseEntry {
	var vec []sparseEntry
	var norm float64
	for t, c := range tf {
		w := (1 + math.Log(float64(c))) * ix.idf[t]
		vec = append(vec, sparseEntry{term: t, w: w})
		norm += w * w
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i := range vec {
			vec[i].w /= norm
		}
	}
	sort.Slice(vec, func(i, j int) bool { return vec[i].term < vec[j].term })
	return vec
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int { return len(ix.docs) }

// Embed converts query text into the index's vector space. Terms outside
// the vocabulary are ignored.
func (ix *Index) Embed(text string) []sparseEntry {
	tf := map[int]int{}
	for _, term := range Tokenize(text) {
		if id, ok := ix.vocab[term]; ok {
			tf[id]++
		}
	}
	return ix.vectorize(tf)
}

// cosine of two unit-norm sorted sparse vectors.
func cosine(a, b []sparseEntry) float64 {
	var dot float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].term < b[j].term:
			i++
		case a[i].term > b[j].term:
			j++
		default:
			dot += a[i].w * b[j].w
			i++
			j++
		}
	}
	return dot
}

// Query returns the top-k documents by cosine similarity to text, ties
// broken by document order. Documents with zero similarity are omitted.
func (ix *Index) Query(text string, k int) []Match {
	qv := ix.Embed(text)
	matches := make([]Match, 0, len(ix.docs))
	for i, d := range ix.docs {
		if s := cosine(qv, ix.vecs[i]); s > 0 {
			matches = append(matches, Match{ID: d.ID, Score: s})
		}
	}
	sort.SliceStable(matches, func(i, j int) bool { return matches[i].Score > matches[j].Score })
	if k > 0 && len(matches) > k {
		matches = matches[:k]
	}
	return matches
}

// Similarity returns the cosine similarity between two texts in this
// index's space.
func (ix *Index) Similarity(a, b string) float64 {
	return cosine(ix.Embed(a), ix.Embed(b))
}
