package concolic

import (
	"errors"

	"lisa/internal/contract"
	"lisa/internal/smt"
)

// Verdict classifies one path against a semantic.
type Verdict int

// Verdicts.
const (
	// VerdictVerified: the path condition entails the checker; the path
	// cannot violate the semantic.
	VerdictVerified Verdict = iota
	// VerdictViolation: the path condition is satisfiable together with
	// the checker's complement — some state reaching the target on this
	// path breaks the rule (including by omitting a required check).
	VerdictViolation
	// VerdictUnknown: slot operands could not be normalized to paths;
	// the developer must review.
	VerdictUnknown
	// VerdictInconclusive: the check itself degraded — the solver ran out
	// of budget or the run was cancelled — so the path is neither verified
	// nor violating. Distinct from PASS/VIOLATED by construction: the gate
	// policy (fail-closed/fail-open) decides how to treat it.
	VerdictInconclusive
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictVerified:
		return "VERIFIED"
	case VerdictViolation:
		return "VIOLATION"
	case VerdictInconclusive:
		return "INCONCLUSIVE"
	}
	return "UNKNOWN"
}

// CheckerFor instantiates a semantic's precondition over concrete operand
// paths (one per slot). ok is false when any slot lacks a binding.
func CheckerFor(sem *contract.Semantic, bindings map[string]string) (smt.Formula, bool) {
	f := sem.Pre
	for slot := range sem.Target.Bind {
		path, ok := bindings[slot]
		if !ok {
			return nil, false
		}
		f = smt.RenameRoot(f, slot, path)
	}
	return f, true
}

// CheckPath applies the paper's complement check: the path violates the
// semantic iff pathCond ∧ ¬checker is satisfiable. Conditions missing from
// pathCond are unconstrained, so an omitted guard (e.g. a forgotten
// s.ttl > 0 test) surfaces as a violation rather than passing silently.
// A solver failure (budget, cancellation) yields VerdictInconclusive.
func CheckPath(pathCond, checker smt.Formula) Verdict {
	v, _ := CheckPathLim(pathCond, checker, smt.Limits{})
	return v
}

// CheckPathLim is CheckPath under explicit solver limits. Budget
// exhaustion is an expected degradation and yields (VerdictInconclusive,
// nil); a context error yields (VerdictInconclusive, err) so the caller
// can abandon the whole run.
func CheckPathLim(pathCond, checker smt.Formula, lim smt.Limits) (Verdict, error) {
	sat, err := smt.SATLim(smt.NewAnd(pathCond, smt.Complement(checker)), lim)
	if err != nil {
		if errors.Is(err, smt.ErrBudget) {
			return VerdictInconclusive, nil
		}
		return VerdictInconclusive, err
	}
	if sat {
		return VerdictViolation, nil
	}
	return VerdictVerified, nil
}

// CheckStaticPath computes the verdict of one enumerated static path.
func CheckStaticPath(p *StaticPath) Verdict {
	v, _ := CheckStaticPathLim(p, smt.Limits{})
	return v
}

// CheckStaticPathLim is CheckStaticPath under explicit solver limits.
func CheckStaticPathLim(p *StaticPath, lim smt.Limits) (Verdict, error) {
	checker, ok := CheckerFor(p.Site.Semantic, p.Bindings)
	if !ok {
		return VerdictUnknown, nil
	}
	return CheckPathLim(p.Cond, checker, lim)
}

// CheckStaticPathsLim computes the verdicts of a batch of enumerated static
// paths in one solver submission, deduplicating identical complement
// queries within the batch (sites instantiated over the same operand paths
// under the same conditions produce textually identical formulas). Verdicts
// are exactly what per-path CheckStaticPathLim calls in index order would
// return; the error is the first non-budget solver error in index order
// (verdicts past it are unspecified), matching the sequential loop's
// abandon-on-error behavior.
func CheckStaticPathsLim(ps []*StaticPath, lim smt.Limits) ([]Verdict, error) {
	verdicts := make([]Verdict, len(ps))
	fs := make([]smt.Formula, 0, len(ps))
	idx := make([]int, 0, len(ps))
	for i, p := range ps {
		checker, ok := CheckerFor(p.Site.Semantic, p.Bindings)
		if !ok {
			verdicts[i] = VerdictUnknown
			continue
		}
		fs = append(fs, smt.NewAnd(p.Cond, smt.Complement(checker)))
		idx = append(idx, i)
	}
	if len(fs) == 0 {
		return verdicts, nil
	}
	sats, errs := smt.SATBatchLim(fs, lim)
	for k, i := range idx {
		switch err := errs[k]; {
		case err == nil && sats[k]:
			verdicts[i] = VerdictViolation
		case err == nil:
			verdicts[i] = VerdictVerified
		case errors.Is(err, smt.ErrBudget):
			verdicts[i] = VerdictInconclusive
		default:
			return verdicts, err
		}
	}
	return verdicts, nil
}
