package core

import (
	"strings"
	"testing"

	"lisa/internal/concolic"
	"lisa/internal/corpus"
	"lisa/internal/minij"
	"lisa/internal/ticket"
)

// TestInterproceduralPreventsFalsePositive: the zksim request router guards
// the rule and delegates to an unguarded internal helper. The default
// engine inherits the caller condition and verifies the helper; the
// intraprocedural ablation flags it.
func TestInterproceduralPreventsFalsePositive(t *testing.T) {
	cs := corpus.Load().Get("zk-ephemeral")

	// Keep only the tests that compile against this early version (later
	// tests reference classes that do not exist yet).
	var tests []ticket.TestCase
	for _, tc := range cs.Tests {
		prog, err := minij.Parse(cs.Tickets[0].FixedSource + "\n" + tc.Source)
		if err != nil {
			continue
		}
		if err := minij.Check(prog); err != nil {
			continue
		}
		tests = append(tests, tc)
	}

	build := func(intraOnly bool) *AssertReport {
		t.Helper()
		e := New()
		e.IntraOnly = intraOnly
		if _, err := e.ProcessTicket(cs.Tickets[0]); err != nil {
			t.Fatal(err)
		}
		rep, err := e.Assert(cs.Tickets[0].FixedSource, tests)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	withChains := build(false)
	if withChains.Counts.Violations != 0 {
		t.Errorf("interprocedural engine has false positives: %v", withChains.Violations())
	}
	helperVerifiedCovered := false
	for _, sr := range withChains.Semantics {
		for _, site := range sr.Sites {
			if site.Site.Method.FullName() != "EphemeralHelper.doRegister" {
				continue
			}
			for _, p := range site.Paths {
				if p.Verdict == concolic.VerdictVerified && p.Covered() {
					helperVerifiedCovered = true
					if !strings.Contains(p.Static.Cond.String(), "!(sess.closing)") {
						t.Errorf("helper path lacks inherited condition: %s", p.Static.Cond)
					}
				}
			}
		}
	}
	if !helperVerifiedCovered {
		t.Error("helper path not verified+covered under chain analysis")
	}

	intraOnly := build(true)
	if intraOnly.Counts.Violations == 0 {
		t.Error("intraprocedural ablation should flag the unguarded helper")
	}
	flagged := false
	for _, v := range intraOnly.Violations() {
		if strings.Contains(v, "EphemeralHelper.doRegister") {
			flagged = true
		}
	}
	if !flagged {
		t.Errorf("expected helper violation under IntraOnly: %v", intraOnly.Violations())
	}
}

// TestStructuralRuntimeConfirmation: on the sync-serialization regression,
// the statically flagged blocking-in-sync violation is confirmed by the
// test whose replay actually blocks while holding the lock.
func TestStructuralRuntimeConfirmation(t *testing.T) {
	cs := corpus.Load().Get("zk-sync-serialize")
	e := New()
	if _, err := e.ProcessTicket(cs.Tickets[0]); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Assert(cs.Tickets[1].BuggySource, cs.Tests)
	if err != nil {
		t.Fatal(err)
	}
	confirmedAny := false
	for _, sr := range rep.Semantics {
		for i := range sr.Structural {
			if tests := sr.StructuralConfirmedBy[i]; len(tests) > 0 {
				confirmedAny = true
				found := false
				for _, name := range tests {
					if name == "SyncTest.aclCacheSerializes" {
						found = true
					}
				}
				if !found {
					t.Errorf("violation %d confirmed by %v, want the ACL serialization test", i, tests)
				}
			}
		}
	}
	if !confirmedAny {
		t.Error("no structural violation was runtime-confirmed")
	}
}
