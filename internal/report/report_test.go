package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:   "Demo",
		Headers: []string{"name", "count"},
	}
	tb.AddRow("alpha", 1)
	tb.AddRow("beta-longer", 22)
	tb.AddRow("pi", 3.14159)
	tb.AddNote("a footnote with %d items", 3)
	out := tb.Render()
	if !strings.Contains(out, "== Demo ==") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "name         count") {
		t.Errorf("columns misaligned:\n%s", out)
	}
	if !strings.Contains(out, "3.14") || strings.Contains(out, "3.14159") {
		t.Errorf("float formatting:\n%s", out)
	}
	if !strings.Contains(out, "note: a footnote with 3 items") {
		t.Errorf("missing note:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var header, rule string
	for i, l := range lines {
		if strings.HasPrefix(l, "name") {
			header, rule = l, lines[i+1]
			break
		}
	}
	if !strings.HasPrefix(rule, "----") {
		t.Errorf("missing rule under header %q: %q", header, rule)
	}
}

func TestBool(t *testing.T) {
	if Bool(true) != "yes" || Bool(false) != "no" {
		t.Error("Bool glyphs wrong")
	}
}
