package minij

import "fmt"

// ParseError describes a syntax error with its source position.
type ParseError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *ParseError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Parse parses a MiniJ compilation unit. On success the returned program has
// class/method/field lookup tables built and every statement assigned a dense
// program-unique ID in source order.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	if err := indexProgram(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse parses src and panics on error. It is a test helper only:
// production code parses with Parse (or loads through internal/program)
// and threads the error to its caller, so malformed input degrades the
// run instead of crashing the process.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	toks []Token
	i    int
}

func (p *parser) cur() Token  { return p.toks[p.i] }
func (p *parser) next() Token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) peekIs(kind TokenKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && t.Text == text
}

func (p *parser) peek2Is(kind TokenKind, text string) bool {
	if p.i+1 >= len(p.toks) {
		return false
	}
	t := p.toks[p.i+1]
	return t.Kind == kind && t.Text == text
}

func (p *parser) accept(kind TokenKind, text string) bool {
	if p.peekIs(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	t := p.cur()
	if t.Kind == kind && t.Text == text {
		p.i++
		return t, nil
	}
	return Token{}, &ParseError{Pos: t.Pos, Msg: fmt.Sprintf("expected %q, found %s", text, t)}
}

func (p *parser) expectIdent() (Token, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return Token{}, &ParseError{Pos: t.Pos, Msg: fmt.Sprintf("expected identifier, found %s", t)}
	}
	p.i++
	return t, nil
}

func (p *parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for p.cur().Kind != TokEOF {
		c, err := p.parseClass()
		if err != nil {
			return nil, err
		}
		prog.Classes = append(prog.Classes, c)
	}
	return prog, nil
}

func (p *parser) parseClass() (*Class, error) {
	kw, err := p.expect(TokKeyword, "class")
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	c := &Class{Name: name.Text, DeclPos: kw.Pos}
	for !p.peekIs(TokPunct, "}") {
		if err := p.parseMember(c); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokPunct, "}"); err != nil {
		return nil, err
	}
	return c, nil
}

// parseMember parses a field or a method and appends it to c.
func (p *parser) parseMember(c *Class) error {
	start := p.cur().Pos
	static := p.accept(TokKeyword, "static")
	ret, err := p.parseTypeOrVoid()
	if err != nil {
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if p.peekIs(TokPunct, "(") {
		m := &Method{Class: c, Name: name.Text, Static: static, Ret: ret, DeclPos: start}
		if err := p.parseParams(m); err != nil {
			return err
		}
		body, err := p.parseBlock()
		if err != nil {
			return err
		}
		m.Body = body
		c.Methods = append(c.Methods, m)
		return nil
	}
	if static {
		return &ParseError{Pos: start, Msg: "fields may not be static"}
	}
	if ret.Kind == TypeVoid {
		return &ParseError{Pos: start, Msg: "fields may not have void type"}
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return err
	}
	c.Fields = append(c.Fields, &Field{Name: name.Text, Type: ret, DeclPos: start})
	return nil
}

func (p *parser) parseParams(m *Method) error {
	if _, err := p.expect(TokPunct, "("); err != nil {
		return err
	}
	if p.accept(TokPunct, ")") {
		return nil
	}
	for {
		ty, err := p.parseType()
		if err != nil {
			return err
		}
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		m.Params = append(m.Params, &Param{Name: name.Text, Type: ty})
		if p.accept(TokPunct, ",") {
			continue
		}
		_, err = p.expect(TokPunct, ")")
		return err
	}
}

func (p *parser) parseTypeOrVoid() (Type, error) {
	if p.accept(TokKeyword, "void") {
		return Type{Kind: TypeVoid}, nil
	}
	return p.parseType()
}

func (p *parser) parseType() (Type, error) {
	t := p.cur()
	switch {
	case t.Kind == TokKeyword && t.Text == "int":
		p.i++
		return Type{Kind: TypeInt}, nil
	case t.Kind == TokKeyword && t.Text == "bool":
		p.i++
		return Type{Kind: TypeBool}, nil
	case t.Kind == TokKeyword && t.Text == "string":
		p.i++
		return Type{Kind: TypeString}, nil
	case t.Kind == TokKeyword && t.Text == "list":
		p.i++
		return Type{Kind: TypeList}, nil
	case t.Kind == TokKeyword && t.Text == "map":
		p.i++
		return Type{Kind: TypeMap}, nil
	case t.Kind == TokIdent:
		p.i++
		return Type{Kind: TypeObject, Class: t.Text}, nil
	}
	return Type{}, &ParseError{Pos: t.Pos, Msg: fmt.Sprintf("expected type, found %s", t)}
}

func (p *parser) parseBlock() (*Block, error) {
	open, err := p.expect(TokPunct, "{")
	if err != nil {
		return nil, err
	}
	b := &Block{stmtBase: stmtBase{pos: open.Pos}}
	for !p.peekIs(TokPunct, "}") {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	if _, err := p.expect(TokPunct, "}"); err != nil {
		return nil, err
	}
	return b, nil
}

// isTypeKeyword reports whether the current token begins a builtin type.
func (p *parser) isTypeKeyword() bool {
	t := p.cur()
	if t.Kind != TokKeyword {
		return false
	}
	switch t.Text {
	case "int", "bool", "string", "list", "map":
		return true
	}
	return false
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.Kind == TokKeyword && t.Text == "if":
		return p.parseIf()
	case t.Kind == TokKeyword && t.Text == "while":
		return p.parseWhile()
	case t.Kind == TokKeyword && t.Text == "for":
		return p.parseFor()
	case t.Kind == TokKeyword && t.Text == "return":
		p.i++
		r := &Return{stmtBase: stmtBase{pos: t.Pos}}
		if !p.peekIs(TokPunct, ";") {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.Value = v
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return r, nil
	case t.Kind == TokKeyword && t.Text == "break":
		p.i++
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &Break{stmtBase{pos: t.Pos}}, nil
	case t.Kind == TokKeyword && t.Text == "continue":
		p.i++
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &Continue{stmtBase{pos: t.Pos}}, nil
	case t.Kind == TokKeyword && t.Text == "throw":
		p.i++
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &Throw{stmtBase: stmtBase{pos: t.Pos}, Value: v}, nil
	case t.Kind == TokKeyword && t.Text == "try":
		return p.parseTry()
	case t.Kind == TokKeyword && t.Text == "synchronized":
		p.i++
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		lock, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &Sync{stmtBase: stmtBase{pos: t.Pos}, Lock: lock, Body: body}, nil
	case t.Kind == TokPunct && t.Text == "{":
		return p.parseBlock()
	case p.isTypeKeyword():
		return p.parseVarDecl()
	case t.Kind == TokIdent && p.tokenAt(p.i+1).Kind == TokIdent:
		// "ClassName name ..." — a declaration with a class type.
		return p.parseVarDecl()
	}
	return p.parseExprOrAssign()
}

func (p *parser) tokenAt(i int) Token {
	if i >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[i]
}

func (p *parser) parseVarDecl() (Stmt, error) {
	start := p.cur().Pos
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &VarDecl{stmtBase: stmtBase{pos: start}, Type: ty, Name: name.Text}
	if p.accept(TokOp, "=") {
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) parseIf() (Stmt, error) {
	kw := p.next() // "if"
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	node := &If{stmtBase: stmtBase{pos: kw.Pos}, Cond: cond, Then: then}
	if p.accept(TokKeyword, "else") {
		if p.peekIs(TokKeyword, "if") {
			elseIf, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			node.Else = elseIf
		} else {
			blk, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			node.Else = blk
		}
	}
	return node, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	kw := p.next() // "while"
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &While{stmtBase: stmtBase{pos: kw.Pos}, Cond: cond, Body: body}, nil
}

func (p *parser) parseFor() (Stmt, error) {
	kw := p.next() // "for"
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	// Foreach form: for (x in e) { ... }
	if p.cur().Kind == TokIdent && p.peek2Is(TokKeyword, "in") {
		name := p.next()
		p.next() // "in"
		iter, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &ForEach{stmtBase: stmtBase{pos: kw.Pos}, Var: name.Text, Iter: iter, Body: body}, nil
	}
	node := &For{stmtBase: stmtBase{pos: kw.Pos}}
	if !p.peekIs(TokPunct, ";") {
		init, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		node.Init = init
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.peekIs(TokPunct, ";") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		node.Cond = cond
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.peekIs(TokPunct, ")") {
		post, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		node.Post = post
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	node.Body = body
	return node, nil
}

// parseSimpleStmt parses a for-clause statement: a declaration, assignment,
// or call, without the trailing semicolon.
func (p *parser) parseSimpleStmt() (Stmt, error) {
	start := p.cur().Pos
	if p.isTypeKeyword() || (p.cur().Kind == TokIdent && p.tokenAt(p.i+1).Kind == TokIdent) {
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		d := &VarDecl{stmtBase: stmtBase{pos: start}, Type: ty, Name: name.Text}
		if p.accept(TokOp, "=") {
			init, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			d.Init = init
		}
		return d, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.accept(TokOp, "=") {
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !isAssignable(e) {
			return nil, &ParseError{Pos: e.Pos(), Msg: "left side of assignment must be a variable or field"}
		}
		return &Assign{stmtBase: stmtBase{pos: start}, Target: e, Value: val}, nil
	}
	return &ExprStmt{stmtBase: stmtBase{pos: start}, E: e}, nil
}

func (p *parser) parseTry() (Stmt, error) {
	kw := p.next() // "try"
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "catch"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	catch, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &Try{stmtBase: stmtBase{pos: kw.Pos}, Body: body, CatchVar: name.Text, Catch: catch}, nil
}

func (p *parser) parseExprOrAssign() (Stmt, error) {
	s, err := p.parseSimpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	return s, nil
}

func isAssignable(e Expr) bool {
	switch e.(type) {
	case *Ident, *FieldAccess:
		return true
	}
	return false
}

// Expression parsing: precedence climbing.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	x, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peekIs(TokOp, "||") {
		op := p.next()
		y, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		x = &Binary{exprBase: exprBase{pos: op.Pos}, Op: "||", X: x, Y: y}
	}
	return x, nil
}

func (p *parser) parseAnd() (Expr, error) {
	x, err := p.parseEq()
	if err != nil {
		return nil, err
	}
	for p.peekIs(TokOp, "&&") {
		op := p.next()
		y, err := p.parseEq()
		if err != nil {
			return nil, err
		}
		x = &Binary{exprBase: exprBase{pos: op.Pos}, Op: "&&", X: x, Y: y}
	}
	return x, nil
}

func (p *parser) parseEq() (Expr, error) {
	x, err := p.parseRel()
	if err != nil {
		return nil, err
	}
	for p.peekIs(TokOp, "==") || p.peekIs(TokOp, "!=") {
		op := p.next()
		y, err := p.parseRel()
		if err != nil {
			return nil, err
		}
		x = &Binary{exprBase: exprBase{pos: op.Pos}, Op: op.Text, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) parseRel() (Expr, error) {
	x, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for p.peekIs(TokOp, "<") || p.peekIs(TokOp, "<=") || p.peekIs(TokOp, ">") || p.peekIs(TokOp, ">=") {
		op := p.next()
		y, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		x = &Binary{exprBase: exprBase{pos: op.Pos}, Op: op.Text, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) parseAdd() (Expr, error) {
	x, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.peekIs(TokOp, "+") || p.peekIs(TokOp, "-") {
		op := p.next()
		y, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		x = &Binary{exprBase: exprBase{pos: op.Pos}, Op: op.Text, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) parseMul() (Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peekIs(TokOp, "*") || p.peekIs(TokOp, "/") || p.peekIs(TokOp, "%") {
		op := p.next()
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		x = &Binary{exprBase: exprBase{pos: op.Pos}, Op: op.Text, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.peekIs(TokOp, "!") || p.peekIs(TokOp, "-") {
		op := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{exprBase: exprBase{pos: op.Pos}, Op: op.Text, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.peekIs(TokPunct, ".") {
		dot := p.next()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if p.peekIs(TokPunct, "(") {
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			x = &Call{exprBase: exprBase{pos: dot.Pos}, Recv: x, Name: name.Text, Args: args}
		} else {
			x = &FieldAccess{exprBase: exprBase{pos: dot.Pos}, Recv: x, Name: name.Text}
		}
	}
	return x, nil
}

func (p *parser) parseArgs() ([]Expr, error) {
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	var args []Expr
	if p.accept(TokPunct, ")") {
		return args, nil
	}
	for {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.accept(TokPunct, ",") {
			continue
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return args, nil
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokInt:
		p.i++
		return &IntLit{exprBase: exprBase{pos: t.Pos}, Value: t.Int}, nil
	case t.Kind == TokString:
		p.i++
		return &StrLit{exprBase: exprBase{pos: t.Pos}, Value: t.Text}, nil
	case t.Kind == TokKeyword && t.Text == "true":
		p.i++
		return &BoolLit{exprBase: exprBase{pos: t.Pos}, Value: true}, nil
	case t.Kind == TokKeyword && t.Text == "false":
		p.i++
		return &BoolLit{exprBase: exprBase{pos: t.Pos}, Value: false}, nil
	case t.Kind == TokKeyword && t.Text == "null":
		p.i++
		return &NullLit{exprBase: exprBase{pos: t.Pos}}, nil
	case t.Kind == TokKeyword && t.Text == "new":
		p.i++
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		args, err := p.parseArgs()
		if err != nil {
			return nil, err
		}
		return &New{exprBase: exprBase{pos: t.Pos}, Class: name.Text, Args: args}, nil
	case t.Kind == TokIdent:
		p.i++
		if p.peekIs(TokPunct, "(") {
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return &Call{exprBase: exprBase{pos: t.Pos}, Name: t.Text, Args: args}, nil
		}
		return &Ident{exprBase: exprBase{pos: t.Pos}, Name: t.Text}, nil
	case t.Kind == TokPunct && t.Text == "(":
		p.i++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, &ParseError{Pos: t.Pos, Msg: fmt.Sprintf("expected expression, found %s", t)}
}

// indexProgram builds lookup tables and assigns dense statement IDs in
// source order. Repeated declarations of the same class merge into one
// (open classes), which lets independently authored test files contribute
// methods to a shared test class; duplicate members are an error.
func indexProgram(prog *Program) error {
	merged := make([]*Class, 0, len(prog.Classes))
	byName := make(map[string]*Class, len(prog.Classes))
	for _, c := range prog.Classes {
		base, seen := byName[c.Name]
		if !seen {
			merged = append(merged, c)
			byName[c.Name] = c
			continue
		}
		for _, f := range c.Fields {
			base.Fields = append(base.Fields, f)
		}
		for _, m := range c.Methods {
			m.Class = base
			base.Methods = append(base.Methods, m)
		}
	}
	prog.Classes = merged
	prog.byName = byName
	for _, c := range prog.Classes {
		c.fieldsByName = make(map[string]*Field, len(c.Fields))
		for _, f := range c.Fields {
			if _, dup := c.fieldsByName[f.Name]; dup {
				return &ParseError{Pos: f.DeclPos, Msg: fmt.Sprintf("duplicate field %s.%s", c.Name, f.Name)}
			}
			c.fieldsByName[f.Name] = f
		}
		c.methodsByName = make(map[string]*Method, len(c.Methods))
		for _, m := range c.Methods {
			if _, dup := c.methodsByName[m.Name]; dup {
				return &ParseError{Pos: m.DeclPos, Msg: fmt.Sprintf("duplicate method %s.%s", c.Name, m.Name)}
			}
			c.methodsByName[m.Name] = m
		}
	}
	for _, c := range prog.Classes {
		for _, m := range c.Methods {
			WalkStmts(m.Body, func(s Stmt) {
				s.setID(len(prog.stmts))
				prog.stmts = append(prog.stmts, s)
				prog.stmtMethod = append(prog.stmtMethod, m)
			})
		}
	}
	return nil
}
