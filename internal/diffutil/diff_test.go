package diffutil

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDiffIdentical(t *testing.T) {
	a := "one\ntwo\nthree\n"
	edits := Diff(a, a)
	if Changed(edits) {
		t.Errorf("identical inputs produced changes: %v", edits)
	}
	if s := DiffStats(edits); s.Kept != 3 || s.Added != 0 || s.Removed != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestDiffInsertDelete(t *testing.T) {
	a := "a\nb\nc\n"
	b := "a\nx\nc\nd\n"
	edits := Diff(a, b)
	s := DiffStats(edits)
	if s.Added != 2 || s.Removed != 1 {
		t.Errorf("stats = %+v, want 2 added 1 removed", s)
	}
}

func TestDiffEmptySides(t *testing.T) {
	if edits := Diff("", ""); len(edits) != 0 {
		t.Errorf("empty diff = %v", edits)
	}
	edits := Diff("", "a\nb\n")
	if s := DiffStats(edits); s.Added != 2 || s.Removed != 0 {
		t.Errorf("insert-only stats = %+v", s)
	}
	edits = Diff("a\nb\n", "")
	if s := DiffStats(edits); s.Removed != 2 || s.Added != 0 {
		t.Errorf("delete-only stats = %+v", s)
	}
}

// Property: reconstructing each side from the edit script yields the
// original inputs (normalized to trailing-newline form).
func TestDiffReconstructs(t *testing.T) {
	f := func(aw, bw []uint8) bool {
		a := wordsToText(aw)
		b := wordsToText(bw)
		edits := Diff(a, b)
		return ReconstructA(edits) == a && ReconstructB(edits) == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the edit script is minimal enough to never mark a line both
// kept and changed, and keeps are actually equal lines.
func TestDiffKeepsAreEqualLines(t *testing.T) {
	f := func(aw, bw []uint8) bool {
		a := wordsToText(aw)
		b := wordsToText(bw)
		al, bl := SplitLines(a), SplitLines(b)
		for _, e := range Diff(a, b) {
			if e.Kind == Keep {
				if e.ALine < 1 || e.ALine > len(al) || e.BLine < 1 || e.BLine > len(bl) {
					return false
				}
				if al[e.ALine-1] != bl[e.BLine-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// wordsToText maps random bytes onto a tiny vocabulary so diffs contain
// realistic mixes of matches and mismatches.
func wordsToText(ws []uint8) string {
	vocab := []string{"alpha", "beta", "gamma", "delta"}
	var lines []string
	for _, w := range ws {
		lines = append(lines, vocab[int(w)%len(vocab)])
	}
	if len(lines) == 0 {
		return ""
	}
	return strings.Join(lines, "\n") + "\n"
}

func TestUnifiedFormat(t *testing.T) {
	a := "one\ntwo\nthree\nfour\nfive\nsix\nseven\n"
	b := "one\ntwo\nTHREE\nfour\nfive\nsix\nseven\n"
	out := Unified("file.mj", Diff(a, b), 2)
	if !strings.HasPrefix(out, "--- a/file.mj\n+++ b/file.mj\n") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "-three\n+THREE\n") {
		t.Errorf("missing change lines:\n%s", out)
	}
	if strings.Contains(out, " seven") {
		t.Errorf("context too wide (seven beyond 2 lines of context):\n%s", out)
	}
	if !strings.Contains(out, "@@ ") {
		t.Errorf("missing hunk header:\n%s", out)
	}
}

func TestUnifiedNoChanges(t *testing.T) {
	if out := Unified("f", Diff("a\n", "a\n"), 3); out != "" {
		t.Errorf("unchanged unified = %q, want empty", out)
	}
}

func TestUnifiedMergesNearbyHunks(t *testing.T) {
	a := "1\n2\n3\n4\n5\n"
	b := "1\nX\n3\nY\n5\n"
	out := Unified("f", Diff(a, b), 2)
	if strings.Count(out, "@@ ") != 1 {
		t.Errorf("want 1 merged hunk, got:\n%s", out)
	}
}
